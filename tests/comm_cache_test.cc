// Hermetic tests of the worker-side partition cache and the streaming
// request decoder (no sockets, no forked processes): the LRU eviction
// policy, content fingerprints, the by-ref / cache-miss / stamp-mismatch
// protocol through ExecuteWireTask, chunked-feed == monolithic decode
// parity, and the net_io helpers (backoff clamp, poll-timeout truncation)
// whose failure modes were hangs and shift-overflow UB on the socket path.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "comm/net_io.h"
#include "comm/serialize.h"
#include "comm/worker_core.h"
#include "core/point.h"
#include "util/status.h"

namespace diverse {
namespace {

PointSet MakePoints(size_t n, float offset) {
  PointSet points;
  for (size_t i = 0; i < n; ++i) {
    points.push_back(Point::Dense(
        {offset + static_cast<float>(i), offset - static_cast<float>(i),
         0.5f * static_cast<float>(i)}));
  }
  return points;
}

// ---------------------------------------------------------------------------
// FingerprintPoints: the content stamp.

TEST(FingerprintTest, IsPureContent) {
  PointSet a = MakePoints(16, 1.0f);
  PointSet b = MakePoints(16, 1.0f);  // separate allocation, same content
  EXPECT_EQ(FingerprintPoints(a), FingerprintPoints(b));
}

TEST(FingerprintTest, SensitiveToValuesCountAndOrder) {
  PointSet base = MakePoints(8, 1.0f);
  const uint64_t fp = FingerprintPoints(base);

  PointSet changed = base;
  std::vector<float> vals = changed[3].dense_values();
  vals[1] += 0.25f;
  changed[3] = Point::Dense(std::move(vals));
  EXPECT_NE(FingerprintPoints(changed), fp);

  PointSet shorter = base;
  shorter.pop_back();
  EXPECT_NE(FingerprintPoints(shorter), fp);

  PointSet swapped = base;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(FingerprintPoints(swapped), fp);
}

TEST(FingerprintTest, DistinguishesDenseFromSparseAndNeverReturnsZero) {
  // A dense point and a sparse point with identical raw value bytes must
  // not collide (the per-point header word encodes the representation).
  PointSet dense;
  dense.push_back(Point::Dense({1.0f, 2.0f}));
  PointSet sparse;
  sparse.push_back(Point::Sparse({0, 1}, {1.0f, 2.0f}, 2));
  EXPECT_NE(FingerprintPoints(dense), FingerprintPoints(sparse));
  // 0 is the "untagged" wire sentinel; the empty set must not produce it.
  EXPECT_NE(FingerprintPoints(PointSet{}), 0u);
}

// ---------------------------------------------------------------------------
// WorkerPartitionCache: bytes-bounded LRU.

TEST(WorkerCacheTest, LookupMissThenInsertThenHit) {
  WorkerPartitionCache cache(size_t{1} << 20);
  EXPECT_EQ(cache.Lookup(42), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  PointSet part = MakePoints(10, 2.0f);
  const uint64_t fp = FingerprintPoints(part);
  auto stored = cache.Insert(fp, part);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->size(), 10u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.size_bytes(), 0u);

  auto hit = cache.Lookup(fp);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), stored.get());
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(WorkerCacheTest, EvictsLeastRecentlyUsedUnderPressure) {
  const size_t one_entry = ApproxPointSetBytes(MakePoints(64, 0.0f));
  // Room for two resident entries, not three.
  WorkerPartitionCache cache(2 * one_entry + one_entry / 2);
  PointSet a = MakePoints(64, 1.0f), b = MakePoints(64, 2.0f),
           c = MakePoints(64, 3.0f);
  const uint64_t fa = FingerprintPoints(a), fb = FingerprintPoints(b),
                 fc = FingerprintPoints(c);
  (void)cache.Insert(fa, a);
  (void)cache.Insert(fb, b);
  ASSERT_EQ(cache.entries(), 2u);
  // Touch `a` so `b` becomes the LRU victim.
  ASSERT_NE(cache.Lookup(fa), nullptr);
  (void)cache.Insert(fc, c);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_NE(cache.Lookup(fa), nullptr);
  EXPECT_EQ(cache.Lookup(fb), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(fc), nullptr);
}

TEST(WorkerCacheTest, OversizeEntryBypassesStorage) {
  WorkerPartitionCache cache(64);  // smaller than any real partition
  PointSet part = MakePoints(32, 0.0f);
  const uint64_t fp = FingerprintPoints(part);
  auto stored = cache.Insert(fp, part);
  ASSERT_NE(stored, nullptr);  // caller still gets the partition
  EXPECT_EQ(stored->size(), 32u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.Lookup(fp), nullptr);
}

TEST(WorkerCacheTest, EvictDropsTheEntry) {
  WorkerPartitionCache cache(size_t{1} << 20);
  PointSet part = MakePoints(8, 5.0f);
  const uint64_t fp = FingerprintPoints(part);
  (void)cache.Insert(fp, part);
  EXPECT_TRUE(cache.Evict(fp));
  EXPECT_FALSE(cache.Evict(fp));  // already gone
  EXPECT_EQ(cache.Lookup(fp), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(WorkerCacheTest, SharedPtrSurvivesEviction) {
  WorkerPartitionCache cache(size_t{1} << 20);
  PointSet part = MakePoints(8, 7.0f);
  const uint64_t fp = FingerprintPoints(part);
  auto held = cache.Insert(fp, part);
  ASSERT_TRUE(cache.Evict(fp));
  // A task computing on the partition keeps it alive past the eviction.
  EXPECT_EQ(held->size(), 8u);
}

// ---------------------------------------------------------------------------
// The cache protocol through the worker execution core.

WireRequest MakeSolveRequest(const PointSet& points, size_t k) {
  WireRequest req;
  req.type = WireTaskType::kSolve;
  req.metric = "euclidean";
  req.round = "solve";
  req.k = k;
  req.points = points;
  return req;
}

TEST(CacheProtocolTest, ByRefMissRepliesNotFoundWithCacheMissBit) {
  WorkerPartitionCache cache(size_t{1} << 20);
  WireRequest req = MakeSolveRequest(PointSet{}, 3);
  req.points_by_ref = true;
  req.points_fingerprint = 0xDEADBEEFu;
  StatusOr<WireReply> reply =
      TryDecodeWireReply(ExecuteWireTask(EncodeWireRequest(req), &cache));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(reply->cache_miss);
  EXPECT_TRUE(reply->points.empty());  // no compute happened
}

TEST(CacheProtocolTest, CachedReplyIsBitIdenticalToInlineShip) {
  const PointSet part = MakePoints(40, 3.0f);
  const uint64_t fp = FingerprintPoints(part);

  // Reference: a plain inline ship with no cache interaction.
  const std::string inline_reply =
      ExecuteWireTask(EncodeWireRequest(MakeSolveRequest(part, 5)), nullptr);

  // Ship once with cache_insert, then solve again by reference.
  WorkerPartitionCache cache(size_t{1} << 20);
  WireRequest insert = MakeSolveRequest(part, 5);
  insert.cache_insert = true;
  insert.points_fingerprint = fp;
  const std::string insert_reply =
      ExecuteWireTask(EncodeWireRequest(insert), &cache);
  EXPECT_EQ(insert_reply, inline_reply);

  WireRequest by_ref = MakeSolveRequest(PointSet{}, 5);
  by_ref.points_by_ref = true;
  by_ref.points_fingerprint = fp;
  const std::string cached_reply =
      ExecuteWireTask(EncodeWireRequest(by_ref), &cache);
  // The invariant the whole feature rests on: cached == shipped, to the
  // byte.
  EXPECT_EQ(cached_reply, inline_reply);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(CacheProtocolTest, FingerprintMismatchIsDataLossAndNothingIsCached) {
  WorkerPartitionCache cache(size_t{1} << 20);
  WireRequest req = MakeSolveRequest(MakePoints(12, 1.0f), 3);
  req.cache_insert = true;
  req.points_fingerprint = FingerprintPoints(req.points) ^ 0x1;  // corrupt
  StatusOr<WireReply> reply =
      TryDecodeWireReply(ExecuteWireTask(EncodeWireRequest(req), &cache));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status.code(), StatusCode::kDataLoss);
  EXPECT_NE(reply->status.message().find("fingerprint mismatch"),
            std::string::npos)
      << reply->status.message();
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(CacheProtocolTest, EvictFingerprintForcesTheMissPath) {
  WorkerPartitionCache cache(size_t{1} << 20);
  const PointSet part = MakePoints(20, 2.0f);
  const uint64_t fp = FingerprintPoints(part);
  WireRequest insert = MakeSolveRequest(part, 4);
  insert.cache_insert = true;
  insert.points_fingerprint = fp;
  (void)ExecuteWireTask(EncodeWireRequest(insert), &cache);
  ASSERT_EQ(cache.entries(), 1u);

  // The cache-evict fault: evict rides on the by-ref request itself, so
  // the worker drops the entry and then reports the miss.
  WireRequest by_ref = MakeSolveRequest(PointSet{}, 4);
  by_ref.points_by_ref = true;
  by_ref.points_fingerprint = fp;
  by_ref.evict_fingerprint = fp;
  StatusOr<WireReply> reply =
      TryDecodeWireReply(ExecuteWireTask(EncodeWireRequest(by_ref), &cache));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->cache_miss);
  EXPECT_EQ(reply->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.entries(), 0u);
}

// ---------------------------------------------------------------------------
// StreamingRequestDecoder: chunked feed == monolithic decode.

WireRequest MakeBigRequest() {
  WireRequest req;
  req.type = WireTaskType::kCoreset;
  req.metric = "euclidean";
  req.round = "coreset";
  req.task = 7;
  req.attempt = 1;
  req.k_prime = 9;
  req.delegates = 2;
  req.extended = true;
  req.points = MakePoints(300, 4.0f);
  req.points2 = MakePoints(5, 1.0f);
  req.gen.Add(Point::Dense({1.0f, 2.0f, 3.0f}), 3);
  req.gen.Add(Point::Sparse({1, 4}, {0.5f, -2.0f}, 8), 1);
  return req;
}

TEST(StreamingDecoderTest, ChunkedFeedMatchesMonolithicAtEverySplitSize) {
  const WireRequest req = MakeBigRequest();
  const std::string payload = EncodeWireRequest(req);
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{1000},
                       payload.size() / 2, payload.size()}) {
    StreamingRequestDecoder decoder;
    for (size_t off = 0; off < payload.size(); off += chunk) {
      ASSERT_TRUE(
          decoder
              .Feed(std::string_view(payload).substr(
                  off, std::min(chunk, payload.size() - off)))
              .ok())
          << "chunk size " << chunk << " at offset " << off;
    }
    StatusOr<WireRequest> decoded = decoder.Finish();
    ASSERT_TRUE(decoded.ok())
        << "chunk " << chunk << ": " << decoded.status().ToString();
    // Bit-identity via re-encode: the streamed decode must reproduce the
    // exact source payload.
    EXPECT_EQ(EncodeWireRequest(*decoded), payload) << "chunk " << chunk;
  }
}

TEST(StreamingDecoderTest, DecodesPointsWhileLaterChunksAreStillInFlight) {
  const std::string payload = EncodeWireRequest(MakeBigRequest());
  StreamingRequestDecoder decoder;
  // Feed 70%: the decoder must have consumed whole points already (the
  // overlap the chunked ship exists for), without buffering everything.
  ASSERT_TRUE(
      decoder.Feed(std::string_view(payload).substr(0, payload.size() * 7 / 10))
          .ok());
  EXPECT_GT(decoder.points_decoded(), 0u);
  EXPECT_LT(decoder.buffered_bytes(), payload.size() / 2);
  ASSERT_TRUE(
      decoder.Feed(std::string_view(payload).substr(payload.size() * 7 / 10))
          .ok());
  StatusOr<WireRequest> decoded = decoder.Finish();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->points.size(), 300u);
}

TEST(StreamingDecoderTest, CertainStructuralErrorsSurfaceMidStream) {
  std::string payload = EncodeWireRequest(MakeBigRequest());
  payload[0] = 0x7F;  // unknown task type: certain corruption, first byte
  StreamingRequestDecoder decoder;
  const Status fed = decoder.Feed(std::string_view(payload).substr(0, 16));
  EXPECT_EQ(fed.code(), StatusCode::kInvalidArgument);
  // Sticky: further feeds keep reporting the same error.
  EXPECT_EQ(decoder.Feed("more").code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(decoder.Finish().ok());
}

TEST(StreamingDecoderTest, TruncationIsOnlyDiagnosedAtFinish) {
  const std::string payload = EncodeWireRequest(MakeBigRequest());
  StreamingRequestDecoder decoder;
  ASSERT_TRUE(
      decoder.Feed(std::string_view(payload).substr(0, payload.size() - 3))
          .ok());
  StatusOr<WireRequest> decoded = decoder.Finish();
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().code() == StatusCode::kDataLoss ||
              decoded.status().code() == StatusCode::kInvalidArgument)
      << decoded.status().ToString();
}

TEST(StreamingDecoderTest, ByRefRequestCarriesNoPointsSection) {
  WireRequest req = MakeBigRequest();
  req.points_by_ref = true;
  req.points_fingerprint = 0x1234;
  const std::string payload = EncodeWireRequest(req);
  // Far smaller than the inline ship: the whole point of the stub.
  EXPECT_LT(payload.size(), 400u);
  StatusOr<WireRequest> decoded = TryDecodeWireRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->points_by_ref);
  EXPECT_TRUE(decoded->points.empty());
  EXPECT_EQ(decoded->points_fingerprint, 0x1234u);
  EXPECT_EQ(decoded->points2.size(), 5u);  // later sections still ship
}

// ---------------------------------------------------------------------------
// net_io: the arithmetic whose failure modes were UB and infinite hangs.

TEST(NetIoTest, RespawnBackoffClampsTheShiftBeforeShifting) {
  EXPECT_EQ(RespawnBackoffMs(10, 0), 0u);   // attempt 0: no backoff
  EXPECT_EQ(RespawnBackoffMs(10, 1), 10u);  // 10 << 0
  EXPECT_EQ(RespawnBackoffMs(10, 2), 20u);
  EXPECT_EQ(RespawnBackoffMs(10, 5), 160u);
  // The old expression `base << (attempt - 1)` was UB from attempt 65 on
  // (shift >= width) and overflowed long before; now every large attempt
  // saturates at the cap.
  for (size_t attempt : {size_t{20}, size_t{64}, size_t{65}, size_t{100},
                         size_t{1000000}}) {
    EXPECT_EQ(RespawnBackoffMs(10, attempt), kMaxRespawnBackoffMs)
        << "attempt " << attempt;
  }
  EXPECT_EQ(RespawnBackoffMs(0, 17), 0u);  // disabled backoff stays disabled
  // A base already above the cap pins to the cap immediately.
  EXPECT_EQ(RespawnBackoffMs(kMaxRespawnBackoffMs + 1, 3),
            kMaxRespawnBackoffMs);
}

TEST(NetIoTest, PollTimeoutRoundsSubMillisecondRemaindersUpNotToZero) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point now = Clock::now();
  // Expired (and exactly-now) deadlines: 0, the caller's "expired" signal.
  EXPECT_EQ(PollTimeoutMs(now, now), 0);
  EXPECT_EQ(PollTimeoutMs(now, now - std::chrono::milliseconds(5)), 0);
  // A sub-millisecond remainder must round UP to 1: a truncating cast
  // yields 0 here, and poll(0) spins — while a negative cast result would
  // make poll block forever and the RPC deadline never fire.
  EXPECT_EQ(PollTimeoutMs(now, now + std::chrono::microseconds(200)), 1);
  EXPECT_EQ(PollTimeoutMs(now, now + std::chrono::microseconds(999)), 1);
  EXPECT_EQ(PollTimeoutMs(now, now + std::chrono::milliseconds(2)), 2);
  // Huge remainders clamp to the 60s poll quantum (the deadline is
  // re-checked at the loop top, so the clamp costs nothing).
  EXPECT_EQ(PollTimeoutMs(now, now + std::chrono::hours(2)), 60000);
  // Never negative, for any remainder.
  for (int us : {-1000000, -1, 0, 1, 500, 999, 1001, 1000000}) {
    EXPECT_GE(PollTimeoutMs(now, now + std::chrono::microseconds(us)), 0)
        << us << "us";
  }
}

}  // namespace
}  // namespace diverse
