#include "mapreduce/mr_diversity.h"

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

MrOptions BasicOptions(size_t k, size_t k_prime, size_t parts) {
  MrOptions o;
  o.k = k;
  o.k_prime = k_prime;
  o.num_partitions = parts;
  o.num_workers = 4;
  o.partition = PartitionStrategy::kRandom;
  o.seed = 3;
  return o;
}

TEST(MrDiversityTest, TwoRoundsProduceKPoints) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(500, 2, /*seed=*/1);
  for (DiversityProblem p : kAllProblems) {
    MapReduceDiversity mr(&m, p, BasicOptions(6, 12, 4));
    MrResult r = mr.Run(pts);
    EXPECT_EQ(r.solution.size(), 6u) << ProblemName(p);
    EXPECT_GT(r.diversity, 0.0) << ProblemName(p);
    EXPECT_EQ(r.rounds, 2u) << ProblemName(p);
  }
}

TEST(MrDiversityTest, CoresetSizeAccounting) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(400, 2, /*seed=*/2);
  size_t k = 4, k_prime = 8, parts = 4;
  {
    // GMM family: |T| = l * k'.
    MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge,
                          BasicOptions(k, k_prime, parts));
    MrResult r = mr.Run(pts);
    EXPECT_EQ(r.coreset_size, parts * k_prime);
  }
  {
    // GMM-EXT family: |T| <= l * k' * k.
    MapReduceDiversity mr(&m, DiversityProblem::kRemoteClique,
                          BasicOptions(k, k_prime, parts));
    MrResult r = mr.Run(pts);
    EXPECT_GE(r.coreset_size, parts * k_prime);
    EXPECT_LE(r.coreset_size, parts * k_prime * k);
  }
}

TEST(MrDiversityTest, LocalMemoryIsMaxReducerInput) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(800, 2, /*seed=*/3);
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge,
                        BasicOptions(4, 8, 8));
  MrResult r = mr.Run(pts);
  // Round 1 reducers hold n/l = 100 points; round 2 holds l*k' = 64.
  EXPECT_EQ(r.max_local_memory_points, 100u);
}

TEST(MrDiversityTest, RandomizedDelegateCapShrinksCoreset) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(2000, 2, /*seed=*/4);
  MrOptions base = BasicOptions(32, 32, 4);
  MapReduceDiversity det(&m, DiversityProblem::kRemoteClique, base);
  MrOptions rand_opts = base;
  rand_opts.randomized_delegate_cap = true;
  MapReduceDiversity rnd(&m, DiversityProblem::kRemoteClique, rand_opts);
  MrResult det_r = det.Run(pts);
  MrResult rnd_r = rnd.Run(pts);
  // Theorem 7: cap max(log2 n = 11, k/l = 8) = 11 delegates/cluster vs 31.
  EXPECT_LT(rnd_r.coreset_size, det_r.coreset_size);
  EXPECT_EQ(rnd_r.solution.size(), 32u);
}

TEST(MrDiversityTest, ApproximationOnTinyInputVsExact) {
  EuclideanMetric m;
  for (DiversityProblem p : kAllProblems) {
    double alpha = SequentialAlpha(p);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      PointSet pts = GenerateUniformCube(16, 2, seed * 23);
      size_t k = 4;
      MapReduceDiversity mr(&m, p, BasicOptions(k, 8, 2));
      MrResult r = mr.Run(pts);
      double opt = ExactDiversityMaximization(p, pts, m, k).value;
      // alpha+eps bound, generous eps to absorb tiny-input effects.
      EXPECT_GE(r.diversity * alpha * 2.0 + 1e-9, opt)
          << ProblemName(p) << " seed " << seed;
    }
  }
}

TEST(MrDiversityTest, CompositionRobustToPartitioning) {
  // Composable core-sets work under ANY partition: all strategies must give
  // comparable remote-edge values on planted data.
  EuclideanMetric m;
  SphereDatasetOptions sopts;
  sopts.n = 3000;
  sopts.k = 8;
  sopts.seed = 31;
  PointSet pts = GenerateSphereDataset(sopts);
  double best = 0.0, worst = 1e100;
  for (PartitionStrategy strat :
       {PartitionStrategy::kChunked, PartitionStrategy::kRandom,
        PartitionStrategy::kAdversarial}) {
    MrOptions o = BasicOptions(8, 32, 4);
    o.partition = strat;
    MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, o);
    MrResult r = mr.Run(pts);
    best = std::max(best, r.diversity);
    worst = std::min(worst, r.diversity);
  }
  EXPECT_GT(worst, 0.0);
  EXPECT_LT(best / worst, 2.0);  // no partition collapses the quality
}

TEST(MrDiversityTest, GeneralizedThreeRounds) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(600, 2, /*seed=*/5);
  for (DiversityProblem p :
       {DiversityProblem::kRemoteClique, DiversityProblem::kRemoteStar,
        DiversityProblem::kRemoteBipartition, DiversityProblem::kRemoteTree}) {
    MapReduceDiversity mr(&m, p, BasicOptions(5, 10, 4));
    MrResult r = mr.RunGeneralized(pts);
    EXPECT_EQ(r.rounds, 3u) << ProblemName(p);
    EXPECT_EQ(r.solution.size(), 5u) << ProblemName(p);
    // Distinct points.
    for (size_t i = 0; i < r.solution.size(); ++i) {
      for (size_t j = i + 1; j < r.solution.size(); ++j) {
        EXPECT_FALSE(r.solution[i] == r.solution[j]) << ProblemName(p);
      }
    }
    EXPECT_GT(r.diversity, 0.0) << ProblemName(p);
  }
}

TEST(MrDiversityTest, GeneralizedUsesSmallerAggregateCoreset) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(2000, 2, /*seed=*/6);
  MrOptions o = BasicOptions(16, 32, 4);
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteClique, o);
  MrResult two_round = mr.Run(pts);
  MrResult three_round = mr.RunGeneralized(pts);
  // Generalized: l*k' pairs vs up to l*k'*k points.
  EXPECT_LT(three_round.coreset_size, two_round.coreset_size);
}

TEST(MrDiversityTest, GeneralizedQualityComparableToTwoRound) {
  EuclideanMetric m;
  SphereDatasetOptions sopts;
  sopts.n = 2000;
  sopts.k = 6;
  sopts.seed = 77;
  PointSet pts = GenerateSphereDataset(sopts);
  MrOptions o = BasicOptions(6, 24, 4);
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteClique, o);
  double two = mr.Run(pts).diversity;
  double three = mr.RunGeneralized(pts).diversity;
  EXPECT_GT(three, 0.5 * two);
}

TEST(MrDiversityTest, RecursiveMultiRound) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(4000, 2, /*seed=*/7);
  MrOptions o = BasicOptions(4, 8, 4);
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, o);
  // Budget 200 points per reducer: 4000 -> 20 parts * 8 = 160 <= 200, so two
  // coreset levels are NOT needed; force more with a tighter budget.
  MrResult r = mr.RunRecursive(pts, 200);
  EXPECT_EQ(r.solution.size(), 4u);
  EXPECT_GE(r.rounds, 2u);
  EXPECT_LE(r.max_local_memory_points, 200u);
}

TEST(MrDiversityTest, RecursiveDeepRecursion) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(5000, 2, /*seed=*/8);
  MrOptions o = BasicOptions(2, 4, 4);
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, o);
  MrResult r = mr.RunRecursive(pts, 50);
  EXPECT_EQ(r.solution.size(), 2u);
  EXPECT_GE(r.rounds, 3u);  // 5000 -> ~400 -> ~32 -> solve
  EXPECT_LE(r.max_local_memory_points, 50u);
  EXPECT_GT(r.diversity, 0.0);
}

TEST(MrDiversityTest, ShuffleVolumeAccounted) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(400, 2, /*seed=*/13);
  size_t k = 4, k_prime = 8, parts = 4;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge,
                        BasicOptions(k, k_prime, parts));
  MrResult r = mr.Run(pts);
  // Round 1 ships l*k' core-set points; round 2 ships the k-point solution.
  EXPECT_EQ(r.shuffle_points, parts * k_prime + k);
}

TEST(MrDiversityTest, RoundTimingAccountedPerRound) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(300, 2, /*seed=*/10);
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge,
                        BasicOptions(4, 8, 4));
  MrResult two = mr.Run(pts);
  EXPECT_EQ(two.round_seconds.size(), two.rounds);
  MapReduceDiversity mrc(&m, DiversityProblem::kRemoteClique,
                         BasicOptions(4, 8, 4));
  MrResult three = mrc.RunGeneralized(pts);
  EXPECT_EQ(three.round_seconds.size(), three.rounds);
  for (double s : three.round_seconds) EXPECT_GE(s, 0.0);
}

TEST(MrDiversityTest, GeneralizedSolutionPointsComeFromInput) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(400, 2, /*seed=*/11);
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteTree,
                        BasicOptions(5, 10, 4));
  MrResult r = mr.RunGeneralized(pts);
  for (const Point& s : r.solution) {
    bool found = false;
    for (const Point& p : pts) {
      if (p == s) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(MrDiversityDeathTest, RecursiveRejectsBudgetBelowKPrime) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(500, 2, /*seed=*/12);
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge,
                        BasicOptions(4, 64, 4));
  EXPECT_DEATH(mr.RunRecursive(pts, 32), "CHECK failed");
}

TEST(MrDiversityDeathTest, GeneralizedRejectsNonInjectiveProblems) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(100, 2, /*seed=*/9);
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge,
                        BasicOptions(4, 8, 2));
  EXPECT_DEATH(mr.RunGeneralized(pts), "CHECK failed");
}

}  // namespace
}  // namespace diverse
