#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/sparse_text.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

PointSet MixedPoints() {
  PointSet pts = GenerateUniformCube(20, 3, /*seed=*/1);
  SparseTextOptions opts;
  opts.n = 20;
  opts.vocab_size = 100;
  opts.min_terms = 2;
  opts.max_terms = 8;
  opts.seed = 2;
  PointSet docs = GenerateSparseTextDataset(opts);
  pts.insert(pts.end(), docs.begin(), docs.end());
  return pts;
}

TEST(IoTextTest, PointLineRoundTripDense) {
  Point p = Point::Dense({1.5f, -2.25f, 0.0f});
  auto back = PointFromTextLine(PointToTextLine(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == p);
}

TEST(IoTextTest, PointLineRoundTripSparse) {
  Point p = Point::Sparse({2, 7, 90}, {1.0f, 0.5f, 3.0f}, 100);
  auto back = PointFromTextLine(PointToTextLine(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == p);
}

TEST(IoTextTest, MalformedLinesRejected) {
  EXPECT_FALSE(PointFromTextLine("").has_value());
  EXPECT_FALSE(PointFromTextLine("x 1 2").has_value());
  EXPECT_FALSE(PointFromTextLine("s").has_value());
  EXPECT_FALSE(PointFromTextLine("s 10 nocolon").has_value());
  EXPECT_FALSE(PointFromTextLine("s 10 5:1.0 3:2.0").has_value());  // unsorted
  EXPECT_FALSE(PointFromTextLine("s 10 12:1.0").has_value());  // out of range
  EXPECT_FALSE(PointFromTextLine("d 1.0 abc").has_value());
}

TEST(IoTextTest, FileRoundTripMixed) {
  PointSet pts = MixedPoints();
  std::string path = TempPath("points.txt");
  ASSERT_TRUE(SavePointsText(pts, path));
  auto loaded = LoadPointsText(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE((*loaded)[i] == pts[i]) << "point " << i;
  }
  std::remove(path.c_str());
}

TEST(IoTextTest, MissingFileIsNullopt) {
  EXPECT_FALSE(LoadPointsText("/nonexistent/dir/file.txt").has_value());
}

TEST(IoBinaryTest, FileRoundTripMixed) {
  PointSet pts = MixedPoints();
  std::string path = TempPath("points.bin");
  ASSERT_TRUE(SavePointsBinary(pts, path));
  auto loaded = LoadPointsBinary(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE((*loaded)[i] == pts[i]) << "point " << i;
  }
  std::remove(path.c_str());
}

TEST(IoBinaryTest, EmptySetRoundTrips) {
  std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SavePointsBinary({}, path));
  auto loaded = LoadPointsBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(IoBinaryTest, BadMagicRejected) {
  std::string path = TempPath("garbage.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a point file at all";
    fwrite(junk, 1, sizeof(junk), f);
    fclose(f);
  }
  EXPECT_FALSE(LoadPointsBinary(path).has_value());
  std::remove(path.c_str());
}

TEST(IoBinaryTest, TruncatedFileRejected) {
  PointSet pts = GenerateUniformCube(10, 3, /*seed=*/3);
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SavePointsBinary(pts, path));
  // Truncate to half.
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  EXPECT_FALSE(LoadPointsBinary(path).has_value());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corrupt-file corpus for the Status-returning loaders: every corruption
// class must map to a specific code with a diagnosable message, never an
// abort or a silent partial load.

// Overwrites `len` bytes at `offset` of an existing file.
void PatchFile(const std::string& path, long offset, const void* bytes,
               size_t len) {
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, offset, SEEK_SET), 0);
  ASSERT_EQ(fwrite(bytes, 1, len, f), len);
  fclose(f);
}

// A fresh valid binary file of 10 dense 3-d points (12-byte header, 21-byte
// records) the corruption tests patch.
std::string WriteValidBinary(const std::string& name) {
  std::string path = TempPath(name);
  PointSet pts = GenerateUniformCube(10, 3, /*seed=*/5);
  EXPECT_TRUE(SavePointsBinary(pts, path));
  return path;
}

TEST(IoStatusTest, MissingFileIsNotFound) {
  StatusOr<PointSet> r = TryLoadPointsBinary(TempPath("does-not-exist.bin"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  StatusOr<PointSet> t = TryLoadPointsText(TempPath("does-not-exist.txt"));
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(IoStatusTest, TruncatedHeaderIsDataLoss) {
  std::string path = WriteValidBinary("header.bin");
  ASSERT_EQ(truncate(path.c_str(), 7), 0);  // mid-count
  StatusOr<PointSet> r = TryLoadPointsBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(IoStatusTest, BadMagicIsInvalidArgumentWithHex) {
  std::string path = WriteValidBinary("magic.bin");
  const uint32_t junk = 0xDEADBEEF;
  PatchFile(path, 0, &junk, sizeof(junk));
  StatusOr<PointSet> r = TryLoadPointsBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("0xDEADBEEF"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(IoStatusTest, AbsurdRecordCountRejectedBeforeAllocation) {
  std::string path = WriteValidBinary("count.bin");
  // Claim ~2^60 records in a ~222-byte file; the loader must reject from
  // the size check, not attempt the reserve.
  const uint64_t absurd = 1ULL << 60;
  PatchFile(path, 4, &absurd, sizeof(absurd));
  StatusOr<PointSet> r = TryLoadPointsBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoStatusTest, TruncatedRecordIsDataLossNamingTheRecord) {
  std::string path = WriteValidBinary("record.bin");
  // Keep the header and the first two full records, cut inside the third.
  ASSERT_EQ(truncate(path.c_str(), 12 + 2 * 21 + 5), 0);
  StatusOr<PointSet> r = TryLoadPointsBinary(path);
  EXPECT_FALSE(r.ok());
  // The count now exceeds what the payload can hold, or the read hits EOF;
  // either way the message names the file.
  EXPECT_NE(r.status().message().find("record.bin"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IoStatusTest, UnknownTagIsInvalidArgument) {
  std::string path = WriteValidBinary("tag.bin");
  const uint8_t bad_tag = 7;
  PatchFile(path, 12, &bad_tag, sizeof(bad_tag));
  StatusOr<PointSet> r = TryLoadPointsBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("record 0"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(IoStatusTest, DenseNnzDimMismatchIsInvalidArgument) {
  std::string path = WriteValidBinary("nnzdim.bin");
  const uint32_t bad_nnz = 2;  // dim stays 3
  PatchFile(path, 12 + 1 + 4, &bad_nnz, sizeof(bad_nnz));
  StatusOr<PointSet> r = TryLoadPointsBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoStatusTest, HugeNnzRejectedBeforeAllocation) {
  std::string path = WriteValidBinary("hugennz.bin");
  // dim and nnz both huge: consistent with each other, but no file this
  // size could hold the payload — must be caught by the payload bound.
  const uint32_t huge = 0x40000000;
  PatchFile(path, 12 + 1, &huge, sizeof(huge));
  PatchFile(path, 12 + 1 + 4, &huge, sizeof(huge));
  StatusOr<PointSet> r = TryLoadPointsBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(IoStatusTest, CorruptSparseRecordsRejected) {
  PointSet pts;
  pts.push_back(Point::Sparse({2, 7, 9}, {1.0f, 0.5f, 3.0f}, 10));
  std::string path = TempPath("sparse.bin");
  ASSERT_TRUE(SavePointsBinary(pts, path));
  // Record layout: tag@12, dim@13, nnz@17, indices@21.
  {
    // nnz > dim (shrink dim under the unchanged nnz of 3).
    const uint32_t bad_dim = 2;
    PatchFile(path, 13, &bad_dim, sizeof(bad_dim));
    StatusOr<PointSet> r = TryLoadPointsBinary(path);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    const uint32_t good_dim = 10;
    PatchFile(path, 13, &good_dim, sizeof(good_dim));
  }
  {
    // Unsorted indices: overwrite index[1] (7) with 1 < index[0] (2).
    const uint32_t low = 1;
    PatchFile(path, 21 + 4, &low, sizeof(low));
    StatusOr<PointSet> r = TryLoadPointsBinary(path);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("unsorted"), std::string::npos);
    const uint32_t restore = 7;
    PatchFile(path, 21 + 4, &restore, sizeof(restore));
  }
  {
    // Index out of range: last index (9) -> 10 == dim.
    const uint32_t oob = 10;
    PatchFile(path, 21 + 8, &oob, sizeof(oob));
    StatusOr<PointSet> r = TryLoadPointsBinary(path);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(IoStatusTest, MalformedTextLineNamesTheLine) {
  std::string path = TempPath("malformed.txt");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("d 1.0 2.0\nd 3.0 4.0\nnot a point\n", f);
    fclose(f);
  }
  StatusOr<PointSet> r = TryLoadPointsText(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("not a point"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IoStatusTest, TryLoadersRoundTripValidFiles) {
  PointSet pts = MixedPoints();
  std::string bin = TempPath("try-roundtrip.bin");
  std::string txt = TempPath("try-roundtrip.txt");
  ASSERT_TRUE(SavePointsBinary(pts, bin));
  ASSERT_TRUE(SavePointsText(pts, txt));
  StatusOr<PointSet> from_bin = TryLoadPointsBinary(bin);
  StatusOr<PointSet> from_txt = TryLoadPointsText(txt);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  ASSERT_TRUE(from_txt.ok()) << from_txt.status().ToString();
  ASSERT_EQ(from_bin->size(), pts.size());
  ASSERT_EQ(from_txt->size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE((*from_bin)[i] == pts[i]);
    EXPECT_TRUE((*from_txt)[i] == pts[i]);
  }
  std::remove(bin.c_str());
  std::remove(txt.c_str());
  // Dataset wrappers share the same validation path (uniform-dim input:
  // Dataset requires it).
  PointSet uniform = GenerateUniformCube(15, 4, /*seed=*/6);
  std::string upath = TempPath("try-roundtrip-ds.bin");
  ASSERT_TRUE(SavePointsBinary(uniform, upath));
  StatusOr<Dataset> ds = TryLoadDatasetBinary(upath);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->size(), uniform.size());
  std::remove(upath.c_str());
}

}  // namespace
}  // namespace diverse
