#include "data/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/sparse_text.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

PointSet MixedPoints() {
  PointSet pts = GenerateUniformCube(20, 3, /*seed=*/1);
  SparseTextOptions opts;
  opts.n = 20;
  opts.vocab_size = 100;
  opts.min_terms = 2;
  opts.max_terms = 8;
  opts.seed = 2;
  PointSet docs = GenerateSparseTextDataset(opts);
  pts.insert(pts.end(), docs.begin(), docs.end());
  return pts;
}

TEST(IoTextTest, PointLineRoundTripDense) {
  Point p = Point::Dense({1.5f, -2.25f, 0.0f});
  auto back = PointFromTextLine(PointToTextLine(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == p);
}

TEST(IoTextTest, PointLineRoundTripSparse) {
  Point p = Point::Sparse({2, 7, 90}, {1.0f, 0.5f, 3.0f}, 100);
  auto back = PointFromTextLine(PointToTextLine(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == p);
}

TEST(IoTextTest, MalformedLinesRejected) {
  EXPECT_FALSE(PointFromTextLine("").has_value());
  EXPECT_FALSE(PointFromTextLine("x 1 2").has_value());
  EXPECT_FALSE(PointFromTextLine("s").has_value());
  EXPECT_FALSE(PointFromTextLine("s 10 nocolon").has_value());
  EXPECT_FALSE(PointFromTextLine("s 10 5:1.0 3:2.0").has_value());  // unsorted
  EXPECT_FALSE(PointFromTextLine("s 10 12:1.0").has_value());  // out of range
  EXPECT_FALSE(PointFromTextLine("d 1.0 abc").has_value());
}

TEST(IoTextTest, FileRoundTripMixed) {
  PointSet pts = MixedPoints();
  std::string path = TempPath("points.txt");
  ASSERT_TRUE(SavePointsText(pts, path));
  auto loaded = LoadPointsText(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE((*loaded)[i] == pts[i]) << "point " << i;
  }
  std::remove(path.c_str());
}

TEST(IoTextTest, MissingFileIsNullopt) {
  EXPECT_FALSE(LoadPointsText("/nonexistent/dir/file.txt").has_value());
}

TEST(IoBinaryTest, FileRoundTripMixed) {
  PointSet pts = MixedPoints();
  std::string path = TempPath("points.bin");
  ASSERT_TRUE(SavePointsBinary(pts, path));
  auto loaded = LoadPointsBinary(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE((*loaded)[i] == pts[i]) << "point " << i;
  }
  std::remove(path.c_str());
}

TEST(IoBinaryTest, EmptySetRoundTrips) {
  std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SavePointsBinary({}, path));
  auto loaded = LoadPointsBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(IoBinaryTest, BadMagicRejected) {
  std::string path = TempPath("garbage.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a point file at all";
    fwrite(junk, 1, sizeof(junk), f);
    fclose(f);
  }
  EXPECT_FALSE(LoadPointsBinary(path).has_value());
  std::remove(path.c_str());
}

TEST(IoBinaryTest, TruncatedFileRejected) {
  PointSet pts = GenerateUniformCube(10, 3, /*seed=*/3);
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SavePointsBinary(pts, path));
  // Truncate to half.
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  EXPECT_FALSE(LoadPointsBinary(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace diverse
