// Recovery-path tests for the fault-tolerant MapReduce executor: every
// scripted failure mode (crash, straggler, data corruption) must either be
// recovered bit-identically — deterministic re-execution — or degrade into
// a certified DegradedResult. Faults are deterministic (FaultInjector), so
// each scenario here is a reproducible unit test, not a flake.

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/solve.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "mapreduce/fault_injector.h"
#include "mapreduce/mr_diversity.h"

namespace diverse {
namespace {

bool SameSolutions(const PointSet& a, const PointSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

MrOptions FaultyOptions(size_t k, size_t k_prime, size_t parts) {
  MrOptions o;
  o.k = k;
  o.k_prime = k_prime;
  o.num_partitions = parts;
  o.num_workers = 8;
  o.seed = 7;
  return o;
}

// ---------------------------------------------------------------------------
// FaultInjector unit tests.

TEST(FaultInjectorTest, EmptyInjectorNeverFires) {
  FaultInjector fi;
  EXPECT_TRUE(fi.empty());
  EXPECT_EQ(fi.Probe("coreset", 0, 0).kind, FaultKind::kNone);
}

TEST(FaultInjectorTest, ExplicitSpecFiresExactlyOnItsProbe) {
  FaultInjector fi;
  fi.Add({"coreset", 3, 1, FaultKind::kCrash, 0});
  EXPECT_FALSE(fi.empty());
  EXPECT_EQ(fi.Probe("coreset", 3, 1).kind, FaultKind::kCrash);
  // Any coordinate off by one misses.
  EXPECT_EQ(fi.Probe("coreset", 3, 0).kind, FaultKind::kNone);
  EXPECT_EQ(fi.Probe("coreset", 2, 1).kind, FaultKind::kNone);
  EXPECT_EQ(fi.Probe("solve", 3, 1).kind, FaultKind::kNone);
}

TEST(FaultInjectorTest, SeededDrawsAreDeterministicAndOrderIndependent) {
  FaultRates rates;
  rates.crash = 0.5;
  FaultInjector a = FaultInjector::Seeded(11, rates);
  FaultInjector b = FaultInjector::Seeded(11, rates);
  // Same (seed, probe) => same draw, in whatever order probes happen.
  std::vector<FaultKind> forward, backward;
  for (size_t t = 0; t < 32; ++t) forward.push_back(a.Probe("r", t, 0).kind);
  for (size_t t = 32; t-- > 0;) backward.push_back(b.Probe("r", t, 0).kind);
  for (size_t t = 0; t < 32; ++t) {
    EXPECT_EQ(forward[t], backward[31 - t]) << "task " << t;
  }
  // A 50% crash rate over 32 probes fires at least once.
  size_t fired = 0;
  for (FaultKind k : forward) fired += (k == FaultKind::kCrash);
  EXPECT_GT(fired, 0u);
  // A different seed gives a different (with overwhelming probability)
  // fault pattern.
  FaultInjector c = FaultInjector::Seeded(12, rates);
  size_t diffs = 0;
  for (size_t t = 0; t < 32; ++t) {
    diffs += (c.Probe("r", t, 0).kind != forward[t]);
  }
  EXPECT_GT(diffs, 0u);
}

TEST(FaultInjectorTest, ParseRoundTrip) {
  StatusOr<FaultInjector> fi = FaultInjector::Parse(
      "coreset:2:0:crash,coreset:5:0:straggler:100,solve:0:1:wrong-output");
  ASSERT_TRUE(fi.ok()) << fi.status().ToString();
  EXPECT_EQ(fi->num_specs(), 3u);
  EXPECT_EQ(fi->Probe("coreset", 2, 0).kind, FaultKind::kCrash);
  InjectedFault straggler = fi->Probe("coreset", 5, 0);
  EXPECT_EQ(straggler.kind, FaultKind::kStraggler);
  EXPECT_EQ(straggler.param, 100u);
  EXPECT_EQ(fi->Probe("solve", 0, 1).kind, FaultKind::kWrongOutput);
}

TEST(FaultInjectorTest, ParseRejectsMalformedSpecs) {
  for (const char* bad : {
           "coreset:2:0",              // too few fields
           "coreset:2:0:crash:1:2",    // too many fields
           "coreset:x:0:crash",        // non-numeric task
           "coreset:2:y:crash",        // non-numeric attempt
           "coreset:2:0:explode",      // unknown kind
           ":2:0:crash",               // empty round name
           "coreset:2:0:straggler:ms"  // non-numeric param
       }) {
    StatusOr<FaultInjector> fi = FaultInjector::Parse(bad);
    EXPECT_FALSE(fi.ok()) << bad;
    EXPECT_EQ(fi.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(FaultInjectorTest, KindNamesRoundTripThroughParse) {
  for (FaultKind k : {FaultKind::kCrash, FaultKind::kEmptyOutput,
                      FaultKind::kWrongOutput, FaultKind::kCorruptPartition,
                      FaultKind::kStraggler}) {
    std::string spec = std::string("r:0:0:") + FaultKindName(k);
    StatusOr<FaultInjector> fi = FaultInjector::Parse(spec);
    ASSERT_TRUE(fi.ok()) << spec;
    EXPECT_EQ(fi->Probe("r", 0, 0).kind, k);
  }
}

TEST(FaultInjectorTest, TransportKindsParseAndClassify) {
  // The four transport kinds of the socket runtime parse through the same
  // round:task:attempt:kind[:param] grammar as the data faults, accept '_'
  // wherever '-' appears, and classify as IsTransportFault.
  struct Case {
    const char* name;
    const char* underscored;
    FaultKind kind;
  };
  const Case cases[] = {
      {"worker-crash", "worker_crash", FaultKind::kWorkerCrash},
      {"conn-drop", "conn_drop", FaultKind::kConnDrop},
      {"frame-corrupt", "frame_corrupt", FaultKind::kFrameCorrupt},
      {"reply-delay", "reply_delay", FaultKind::kReplyDelay},
  };
  for (const Case& c : cases) {
    for (const char* spelling : {c.name, c.underscored}) {
      std::string spec = std::string("coreset:3:1:") + spelling;
      StatusOr<FaultInjector> fi = FaultInjector::Parse(spec);
      ASSERT_TRUE(fi.ok()) << spec;
      EXPECT_EQ(fi->Probe("coreset", 3, 1).kind, c.kind) << spec;
      EXPECT_TRUE(IsTransportFault(c.kind)) << spec;
    }
    EXPECT_STREQ(FaultKindName(c.kind), c.name);
  }
  for (FaultKind data :
       {FaultKind::kNone, FaultKind::kCrash, FaultKind::kEmptyOutput,
        FaultKind::kWrongOutput, FaultKind::kCorruptPartition,
        FaultKind::kStraggler}) {
    EXPECT_FALSE(IsTransportFault(data));
  }
}

TEST(FaultInjectorTest, ReplyDelayParamParses) {
  StatusOr<FaultInjector> fi =
      FaultInjector::Parse("solve:0:0:reply-delay:75");
  ASSERT_TRUE(fi.ok());
  InjectedFault f = fi->Probe("solve", 0, 0);
  EXPECT_EQ(f.kind, FaultKind::kReplyDelay);
  EXPECT_EQ(f.param, 75u);
  // No param: 0 on the probe; the transport substitutes its default.
  StatusOr<FaultInjector> bare = FaultInjector::Parse("solve:0:0:reply-delay");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->Probe("solve", 0, 0).param, 0u);
}

TEST(FaultInjectorTest, ScheduleTextOrderIsIrrelevant) {
  // A schedule is a set keyed by (round, task, attempt): listing the specs
  // in any order yields an injector with identical probes everywhere.
  const char* fwd =
      "coreset:0:0:worker-crash,coreset:1:0:conn-drop,"
      "solve:0:1:reply-delay:40,coreset:2:1:frame-corrupt";
  const char* rev =
      "coreset:2:1:frame-corrupt,solve:0:1:reply-delay:40,"
      "coreset:1:0:conn-drop,coreset:0:0:worker-crash";
  StatusOr<FaultInjector> a = FaultInjector::Parse(fwd);
  StatusOr<FaultInjector> b = FaultInjector::Parse(rev);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (const std::string& round : {std::string("coreset"), std::string("solve"),
                                   std::string("other")}) {
    for (size_t task = 0; task < 4; ++task) {
      for (size_t attempt = 0; attempt < 3; ++attempt) {
        InjectedFault fa = a->Probe(round, task, attempt);
        InjectedFault fb = b->Probe(round, task, attempt);
        EXPECT_EQ(fa.kind, fb.kind)
            << round << ":" << task << ":" << attempt;
        EXPECT_EQ(fa.param, fb.param)
            << round << ":" << task << ":" << attempt;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Executor recovery: transient faults are retried and the final solution is
// bit-identical to the fault-free run.

// The ISSUE acceptance scenario: a 16-partition run where a seeded schedule
// crashes three reducers' first attempts and delays a fourth past the
// straggler timeout must recover and match the fault-free solution bit for
// bit, with the recovery visible in the counters.
TEST(FaultInjectionTest, CrashesAndStragglerRecoverBitIdentical) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(800, 3, /*seed=*/21);
  MrOptions clean = FaultyOptions(6, 12, 16);
  MapReduceDiversity baseline(&m, DiversityProblem::kRemoteEdge, clean);
  StatusOr<MrResult> want = baseline.TryRun(pts);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  StatusOr<FaultInjector> faults = FaultInjector::Parse(
      "coreset:2:0:crash,coreset:7:0:crash,coreset:11:0:crash,"
      "coreset:5:0:straggler:400");
  ASSERT_TRUE(faults.ok());
  MrOptions faulty = clean;
  faulty.faults = &*faults;
  faulty.task_timeout_ms = 40;  // well under the 400ms straggler delay
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, faulty);
  StatusOr<MrResult> got = mr.TryRun(pts);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  EXPECT_TRUE(SameSolutions(got->solution, want->solution));
  EXPECT_EQ(got->diversity, want->diversity);
  EXPECT_FALSE(got->degraded.has_value());
  // 3 crash retries + >= 1 speculative straggler duplicate.
  EXPECT_EQ(got->faults_injected, 4u);
  EXPECT_GE(got->task_retries, 4u);
  EXPECT_GE(got->task_timeouts, 1u);
  // Every attempt beyond the 17 per-task firsts (16 core-set + 1 solve) is
  // a retry or a speculative duplicate.
  EXPECT_EQ(got->task_attempts, 17u + got->task_retries);
}

TEST(FaultInjectionTest, DataFaultsAreCaughtByValidationAndRetried) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(400, 2, /*seed=*/22);
  MrOptions clean = FaultyOptions(5, 10, 8);
  MapReduceDiversity baseline(&m, DiversityProblem::kRemoteClique, clean);
  StatusOr<MrResult> want = baseline.TryRun(pts);
  ASSERT_TRUE(want.ok());

  // One of each data fault, on distinct round-1 tasks plus the round-2
  // aggregator. Validation must reject each and the retry (pristine input,
  // no fault on attempt 1) must restore bit-identical output.
  StatusOr<FaultInjector> faults = FaultInjector::Parse(
      "coreset:1:0:empty-output,coreset:4:0:wrong-output:99,"
      "coreset:6:0:corrupt-partition:7,solve:0:0:wrong-output:3");
  ASSERT_TRUE(faults.ok());
  MrOptions faulty = clean;
  faulty.faults = &*faults;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteClique, faulty);
  StatusOr<MrResult> got = mr.TryRun(pts);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(SameSolutions(got->solution, want->solution));
  EXPECT_EQ(got->diversity, want->diversity);
  EXPECT_EQ(got->faults_injected, 4u);
  EXPECT_EQ(got->task_retries, 4u);
  EXPECT_FALSE(got->degraded.has_value());
}

TEST(FaultInjectionTest, GeneralizedDriverRecoversAcrossAllThreeRounds) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(500, 2, /*seed=*/23);
  MrOptions clean = FaultyOptions(4, 8, 8);
  MapReduceDiversity baseline(&m, DiversityProblem::kRemoteClique, clean);
  StatusOr<MrResult> want = baseline.TryRunGeneralized(pts);
  ASSERT_TRUE(want.ok());

  StatusOr<FaultInjector> faults = FaultInjector::Parse(
      "gen-coreset:3:0:crash,gen-solve:0:0:wrong-output:5,"
      "instantiate:2:0:crash");
  ASSERT_TRUE(faults.ok());
  MrOptions faulty = clean;
  faulty.faults = &*faults;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteClique, faulty);
  StatusOr<MrResult> got = mr.TryRunGeneralized(pts);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(SameSolutions(got->solution, want->solution));
  EXPECT_EQ(got->faults_injected, 3u);
  EXPECT_FALSE(got->degraded.has_value());
}

TEST(FaultInjectionTest, RecursiveDriverRecoversPerLevel) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(1200, 2, /*seed=*/24);
  MrOptions clean = FaultyOptions(4, 8, 16);
  MapReduceDiversity baseline(&m, DiversityProblem::kRemoteEdge, clean);
  StatusOr<MrResult> want = baseline.TryRunRecursive(pts, /*budget=*/64);
  ASSERT_TRUE(want.ok());
  ASSERT_GT(want->rounds, 2u);  // actually recursed

  StatusOr<FaultInjector> faults =
      FaultInjector::Parse("coreset-l0:1:0:crash,coreset-l1:0:0:crash");
  ASSERT_TRUE(faults.ok());
  MrOptions faulty = clean;
  faulty.faults = &*faults;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, faulty);
  StatusOr<MrResult> got = mr.TryRunRecursive(pts, /*budget=*/64);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(SameSolutions(got->solution, want->solution));
  EXPECT_EQ(got->faults_injected, 2u);
}

// ---------------------------------------------------------------------------
// Degradation: permanent round-1 failures drop partitions with a
// certificate; fatal rounds and disallowed degradation return errors.

// Crash every attempt of one partition (max_retries=2 => attempts 0..2).
constexpr char kKillPartition3[] =
    "coreset:3:0:crash,coreset:3:1:crash,coreset:3:2:crash";

TEST(FaultInjectionTest, PermanentPartitionFailureDegrades) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(640, 2, /*seed=*/25);
  StatusOr<FaultInjector> faults = FaultInjector::Parse(kKillPartition3);
  ASSERT_TRUE(faults.ok());
  MrOptions o = FaultyOptions(5, 10, 8);
  o.faults = &*faults;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, o);
  StatusOr<MrResult> got = mr.TryRun(pts);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->solution.size(), 5u);
  ASSERT_TRUE(got->degraded.has_value());
  const DegradedResult& d = *got->degraded;
  EXPECT_EQ(d.failed_partitions, std::vector<size_t>{3});
  EXPECT_EQ(d.total_points, 640u);
  EXPECT_EQ(d.surviving_points, 640u - 80u);  // random split: n/l = 80 each
  EXPECT_NEAR(d.surviving_fraction, 7.0 / 8.0, 1e-12);
  EXPECT_EQ(d.approx_factor,
            2.0 * SequentialAlpha(DiversityProblem::kRemoteEdge));
  // The degraded run equals the fault-free run over the surviving
  // partitions: determinism extends to the degraded path.
  StatusOr<MrResult> again = mr.TryRun(pts);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(SameSolutions(got->solution, again->solution));
}

TEST(FaultInjectionTest, DegradationDisallowedFailsTheRun) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(320, 2, /*seed=*/26);
  StatusOr<FaultInjector> faults = FaultInjector::Parse(kKillPartition3);
  ASSERT_TRUE(faults.ok());
  MrOptions o = FaultyOptions(4, 8, 8);
  o.faults = &*faults;
  o.allow_degraded = false;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, o);
  StatusOr<MrResult> got = mr.TryRun(pts);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kAborted)
      << got.status().ToString();
}

TEST(FaultInjectionTest, AllPartitionsLostIsAnError) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(64, 2, /*seed=*/27);
  FaultInjector faults;
  for (size_t task = 0; task < 2; ++task) {
    for (size_t attempt = 0; attempt < 3; ++attempt) {
      faults.Add({"coreset", task, attempt, FaultKind::kCrash, 0});
    }
  }
  MrOptions o = FaultyOptions(4, 8, 2);
  o.faults = &faults;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, o);
  StatusOr<MrResult> got = mr.TryRun(pts);
  EXPECT_FALSE(got.ok());
}

TEST(FaultInjectionTest, AggregatorFailureIsFatal) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(200, 2, /*seed=*/28);
  FaultInjector faults;
  for (size_t attempt = 0; attempt < 3; ++attempt) {
    faults.Add({"solve", 0, attempt, FaultKind::kWrongOutput, attempt + 1});
  }
  MrOptions o = FaultyOptions(4, 8, 4);
  o.faults = &faults;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, o);
  StatusOr<MrResult> got = mr.TryRun(pts);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss)
      << got.status().ToString();
}

TEST(FaultInjectionTest, RetryBudgetZeroMeansSingleAttempt) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(160, 2, /*seed=*/29);
  FaultInjector faults;
  faults.Add({"coreset", 1, 0, FaultKind::kCrash, 0});
  MrOptions o = FaultyOptions(4, 8, 4);
  o.faults = &faults;
  o.max_retries = 0;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, o);
  StatusOr<MrResult> got = mr.TryRun(pts);
  // No retries: the single crash is already permanent -> degraded.
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got->degraded.has_value());
  EXPECT_EQ(got->degraded->failed_partitions, std::vector<size_t>{1});
  EXPECT_EQ(got->task_retries, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end through the public TrySolve API.

TEST(FaultInjectionTest, TrySolveSurfacesDegradedCertificate) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(400, 2, /*seed=*/30);
  StatusOr<FaultInjector> faults = FaultInjector::Parse(kKillPartition3);
  ASSERT_TRUE(faults.ok());
  SolveOptions o;
  o.backend = Backend::kMapReduce;
  o.k = 4;
  o.k_prime = 8;
  o.num_partitions = 8;
  o.faults = &*faults;
  StatusOr<SolveResult> got = TrySolve(pts, m, o);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got->degraded.has_value());
  EXPECT_EQ(got->degraded->failed_partitions, std::vector<size_t>{3});
  EXPECT_GT(got->degraded->approx_factor, 0.0);

  o.allow_degraded = false;
  StatusOr<SolveResult> strict = TrySolve(pts, m, o);
  EXPECT_FALSE(strict.ok());
}

}  // namespace
}  // namespace diverse
