#include "core/metric.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace diverse {
namespace {

TEST(EuclideanMetricTest, KnownDistances) {
  EuclideanMetric m;
  EXPECT_DOUBLE_EQ(
      m.Distance(Point::Dense2(0.0f, 0.0f), Point::Dense2(3.0f, 4.0f)), 5.0);
  EXPECT_DOUBLE_EQ(
      m.Distance(Point::Dense2(1.0f, 1.0f), Point::Dense2(1.0f, 1.0f)), 0.0);
}

TEST(ManhattanMetricTest, KnownDistances) {
  ManhattanMetric m;
  EXPECT_DOUBLE_EQ(
      m.Distance(Point::Dense2(0.0f, 0.0f), Point::Dense2(3.0f, 4.0f)), 7.0);
}

TEST(CosineMetricTest, OrthogonalVectorsAtHalfPi) {
  CosineMetric m;
  Point x = Point::Dense2(1.0f, 0.0f);
  Point y = Point::Dense2(0.0f, 2.0f);
  EXPECT_NEAR(m.Distance(x, y), M_PI / 2.0, 1e-12);
}

TEST(CosineMetricTest, ParallelVectorsAtZero) {
  CosineMetric m;
  Point x = Point::Dense2(1.0f, 1.0f);
  Point y = Point::Dense2(3.0f, 3.0f);
  EXPECT_NEAR(m.Distance(x, y), 0.0, 1e-7);
}

TEST(CosineMetricTest, OppositeVectorsAtPi) {
  CosineMetric m;
  Point x = Point::Dense2(1.0f, 0.0f);
  Point y = Point::Dense2(-2.0f, 0.0f);
  EXPECT_NEAR(m.Distance(x, y), M_PI, 1e-7);
}

TEST(CosineMetricTest, ZeroVectorConventions) {
  CosineMetric m;
  Point zero = Point::Dense2(0.0f, 0.0f);
  Point x = Point::Dense2(1.0f, 0.0f);
  EXPECT_DOUBLE_EQ(m.Distance(zero, zero), 0.0);
  EXPECT_DOUBLE_EQ(m.Distance(zero, x), M_PI / 2.0);
}

TEST(CosineMetricTest, SparseVectors) {
  CosineMetric m;
  Point a = Point::Sparse({0, 1}, {1.0f, 1.0f}, 4);
  Point b = Point::Sparse({2, 3}, {1.0f, 1.0f}, 4);
  EXPECT_NEAR(m.Distance(a, b), M_PI / 2.0, 1e-12);  // disjoint supports
}

TEST(JaccardMetricTest, KnownDistance) {
  JaccardMetric m;
  Point a = Point::Sparse({0, 1, 2}, {1.0f, 1.0f, 1.0f}, 8);
  Point b = Point::Sparse({2, 3}, {1.0f, 1.0f}, 8);
  // Intersection 1, union 4.
  EXPECT_DOUBLE_EQ(m.Distance(a, b), 0.75);
}

TEST(CountingMetricTest, CountsAndDelegates) {
  EuclideanMetric base;
  CountingMetric counting(&base);
  Point a = Point::Dense2(0.0f, 0.0f);
  Point b = Point::Dense2(3.0f, 4.0f);
  EXPECT_EQ(counting.count(), 0u);
  EXPECT_DOUBLE_EQ(counting.Distance(a, b), 5.0);
  counting.Distance(a, b);
  EXPECT_EQ(counting.count(), 2u);
  counting.Reset();
  EXPECT_EQ(counting.count(), 0u);
  EXPECT_EQ(counting.Name(), "counting(euclidean)");
}

// ---------------------------------------------------------------------------
// Property tests: metric axioms on random point sets, for every metric and
// both point representations where applicable.
// ---------------------------------------------------------------------------

struct MetricAxiomsCase {
  std::string name;
  // Factory for the metric under test and a generator of compatible points.
  std::shared_ptr<const Metric> metric;
  PointSet points;
};

class MetricAxiomsTest : public ::testing::TestWithParam<MetricAxiomsCase> {};

TEST_P(MetricAxiomsTest, NonNegativityAndIdentity) {
  const auto& c = GetParam();
  // acos() amplifies float rounding near cosine 1 to ~1e-4 radians, so the
  // angular distance cannot promise a tighter self-distance than that.
  double identity_tol = c.metric->Name() == "cosine" ? 2e-4 : 1e-9;
  for (const Point& p : c.points) {
    EXPECT_NEAR(c.metric->Distance(p, p), 0.0, identity_tol);
  }
  for (size_t i = 0; i < c.points.size(); ++i) {
    for (size_t j = i + 1; j < c.points.size(); ++j) {
      EXPECT_GE(c.metric->Distance(c.points[i], c.points[j]), 0.0);
    }
  }
}

TEST_P(MetricAxiomsTest, Symmetry) {
  const auto& c = GetParam();
  for (size_t i = 0; i < c.points.size(); ++i) {
    for (size_t j = i + 1; j < c.points.size(); ++j) {
      EXPECT_NEAR(c.metric->Distance(c.points[i], c.points[j]),
                  c.metric->Distance(c.points[j], c.points[i]), 1e-9);
    }
  }
}

TEST_P(MetricAxiomsTest, TriangleInequality) {
  const auto& c = GetParam();
  size_t n = c.points.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      for (size_t k = 0; k < n; ++k) {
        double dij = c.metric->Distance(c.points[i], c.points[j]);
        double dik = c.metric->Distance(c.points[i], c.points[k]);
        double dkj = c.metric->Distance(c.points[k], c.points[j]);
        EXPECT_LE(dij, dik + dkj + 1e-7)
            << "triangle violated at (" << i << "," << j << "," << k << ")";
      }
    }
  }
}

std::vector<MetricAxiomsCase> MakeAxiomCases() {
  std::vector<MetricAxiomsCase> cases;
  PointSet dense = GenerateUniformCube(18, 4, /*seed=*/7);
  SparseTextOptions sparse_opts;
  sparse_opts.n = 18;
  sparse_opts.vocab_size = 60;
  sparse_opts.min_terms = 3;
  sparse_opts.max_terms = 12;
  sparse_opts.num_topics = 4;
  sparse_opts.seed = 11;
  PointSet sparse = GenerateSparseTextDataset(sparse_opts);

  cases.push_back({"euclidean_dense",
                   std::make_shared<EuclideanMetric>(), dense});
  cases.push_back({"manhattan_dense",
                   std::make_shared<ManhattanMetric>(), dense});
  cases.push_back({"cosine_dense", std::make_shared<CosineMetric>(), dense});
  cases.push_back({"euclidean_sparse",
                   std::make_shared<EuclideanMetric>(), sparse});
  cases.push_back({"cosine_sparse", std::make_shared<CosineMetric>(), sparse});
  cases.push_back({"jaccard_sparse",
                   std::make_shared<JaccardMetric>(), sparse});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricAxiomsTest, ::testing::ValuesIn(MakeAxiomCases()),
    [](const ::testing::TestParamInfo<MetricAxiomsCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace diverse
