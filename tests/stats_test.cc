#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace diverse {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 3.5);
  EXPECT_DOUBLE_EQ(s.Max(), 3.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    all.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats b = a;
  b.Merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 1.5);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 1.5);
}

}  // namespace
}  // namespace diverse
