#include "mapreduce/afz.h"

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

AfzOptions Options(size_t k, size_t parts) {
  AfzOptions o;
  o.k = k;
  o.num_partitions = parts;
  o.num_workers = 4;
  o.seed = 5;
  return o;
}

TEST(AfzTest, RemoteEdgeProducesKPoints) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(400, 2, /*seed=*/1);
  MrResult r = RunAfz(pts, m, DiversityProblem::kRemoteEdge, Options(6, 4));
  EXPECT_EQ(r.solution.size(), 6u);
  EXPECT_GT(r.diversity, 0.0);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_EQ(r.coreset_size, 4u * 6u);  // l * k
}

TEST(AfzTest, RemoteCliqueProducesKPoints) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(400, 2, /*seed=*/2);
  MrResult r = RunAfz(pts, m, DiversityProblem::kRemoteClique, Options(4, 4));
  EXPECT_EQ(r.solution.size(), 4u);
  EXPECT_GT(r.diversity, 0.0);
}

TEST(AfzTest, RemoteCliqueQualityIsReasonable) {
  // AFZ is a 6+eps composable coreset; on tiny inputs its end-to-end result
  // must be within a modest factor of optimal.
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    PointSet pts = GenerateUniformCube(16, 2, seed * 7);
    MrResult r =
        RunAfz(pts, m, DiversityProblem::kRemoteClique, Options(4, 2));
    double opt =
        ExactDiversityMaximization(DiversityProblem::kRemoteClique, pts, m, 4)
            .value;
    EXPECT_GE(r.diversity * 6.0 + 1e-9, opt) << "seed " << seed;
  }
}

TEST(AfzTest, CppuBeatsOrMatchesAfzOnPlantedData) {
  // The headline of Table 4: CPPU at k' >> k achieves at least comparable
  // remote-clique quality.
  EuclideanMetric m;
  SphereDatasetOptions sopts;
  sopts.n = 2000;
  sopts.k = 6;
  sopts.dim = 2;
  sopts.seed = 11;
  PointSet pts = GenerateSphereDataset(sopts);

  MrResult afz = RunAfz(pts, m, DiversityProblem::kRemoteClique, Options(6, 4));

  MrOptions cppu_opts;
  cppu_opts.k = 6;
  cppu_opts.k_prime = 64;
  cppu_opts.num_partitions = 4;
  cppu_opts.num_workers = 4;
  cppu_opts.seed = 5;
  MapReduceDiversity cppu(&m, DiversityProblem::kRemoteClique, cppu_opts);
  MrResult cppu_r = cppu.Run(pts);

  EXPECT_GE(cppu_r.diversity, 0.9 * afz.diversity);
}

TEST(AfzDeathTest, RejectsUnsupportedProblems) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(50, 2, /*seed=*/3);
  EXPECT_DEATH(RunAfz(pts, m, DiversityProblem::kRemoteTree, Options(4, 2)),
               "CHECK failed");
}

}  // namespace
}  // namespace diverse
