#include "core/diversity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "core/mst.h"
#include "core/tsp.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

// Four corners of the unit square — every measure has a closed form.
DistanceMatrix UnitSquare() {
  EuclideanMetric m;
  PointSet pts = {Point::Dense2(0, 0), Point::Dense2(1, 0),
                  Point::Dense2(1, 1), Point::Dense2(0, 1)};
  return DistanceMatrix(pts, m);
}

TEST(DiversityTest, ProblemNamesRoundTrip) {
  for (DiversityProblem p : kAllProblems) {
    auto parsed = ParseProblem(ProblemName(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseProblem("bogus").has_value());
}

TEST(DiversityTest, InjectiveProxyClassification) {
  EXPECT_FALSE(RequiresInjectiveProxies(DiversityProblem::kRemoteEdge));
  EXPECT_FALSE(RequiresInjectiveProxies(DiversityProblem::kRemoteCycle));
  EXPECT_TRUE(RequiresInjectiveProxies(DiversityProblem::kRemoteClique));
  EXPECT_TRUE(RequiresInjectiveProxies(DiversityProblem::kRemoteStar));
  EXPECT_TRUE(RequiresInjectiveProxies(DiversityProblem::kRemoteBipartition));
  EXPECT_TRUE(RequiresInjectiveProxies(DiversityProblem::kRemoteTree));
}

TEST(DiversityTest, SequentialAlphasMatchTable1) {
  EXPECT_DOUBLE_EQ(SequentialAlpha(DiversityProblem::kRemoteEdge), 2.0);
  EXPECT_DOUBLE_EQ(SequentialAlpha(DiversityProblem::kRemoteClique), 2.0);
  EXPECT_DOUBLE_EQ(SequentialAlpha(DiversityProblem::kRemoteStar), 2.0);
  EXPECT_DOUBLE_EQ(SequentialAlpha(DiversityProblem::kRemoteBipartition), 3.0);
  EXPECT_DOUBLE_EQ(SequentialAlpha(DiversityProblem::kRemoteTree), 4.0);
  EXPECT_DOUBLE_EQ(SequentialAlpha(DiversityProblem::kRemoteCycle), 3.0);
}

TEST(DiversityTest, TermCountsMatchLemma7) {
  EXPECT_DOUBLE_EQ(
      DiversityTermCount(DiversityProblem::kRemoteClique, 5), 10.0);
  EXPECT_DOUBLE_EQ(DiversityTermCount(DiversityProblem::kRemoteStar, 5), 4.0);
  EXPECT_DOUBLE_EQ(DiversityTermCount(DiversityProblem::kRemoteTree, 5), 4.0);
  EXPECT_DOUBLE_EQ(
      DiversityTermCount(DiversityProblem::kRemoteBipartition, 5), 6.0);
  EXPECT_DOUBLE_EQ(
      DiversityTermCount(DiversityProblem::kRemoteBipartition, 6), 9.0);
}

TEST(DiversityTest, RemoteEdgeOnSquare) {
  EXPECT_DOUBLE_EQ(
      EvaluateDiversity(DiversityProblem::kRemoteEdge, UnitSquare()), 1.0);
}

TEST(DiversityTest, RemoteCliqueOnSquare) {
  // 4 sides of length 1 + 2 diagonals of length sqrt(2).
  EXPECT_NEAR(
      EvaluateDiversity(DiversityProblem::kRemoteClique, UnitSquare()),
      4.0 + 2.0 * std::sqrt(2.0), 1e-9);
}

TEST(DiversityTest, RemoteStarOnSquare) {
  // Any center: two sides + one diagonal.
  EXPECT_NEAR(EvaluateDiversity(DiversityProblem::kRemoteStar, UnitSquare()),
              2.0 + std::sqrt(2.0), 1e-9);
}

TEST(DiversityTest, RemoteBipartitionOnSquare) {
  // Best balanced cut pairs opposite corners on each side:
  // {(0,0),(1,1)} vs {(1,0),(0,1)} -> 4 unit edges;
  // side cuts give 2 + 2*sqrt(2) > 4. Both exact and heuristic must agree.
  DistanceMatrix d = UnitSquare();
  EXPECT_NEAR(BipartitionWeightExact(d), 4.0, 1e-9);
  EXPECT_NEAR(BipartitionWeightHeuristic(d), 4.0, 1e-9);
  EXPECT_NEAR(
      EvaluateDiversity(DiversityProblem::kRemoteBipartition, d), 4.0, 1e-9);
}

TEST(DiversityTest, RemoteTreeOnSquare) {
  EXPECT_DOUBLE_EQ(
      EvaluateDiversity(DiversityProblem::kRemoteTree, UnitSquare()), 3.0);
}

TEST(DiversityTest, RemoteCycleOnSquare) {
  EXPECT_NEAR(EvaluateDiversity(DiversityProblem::kRemoteCycle, UnitSquare()),
              4.0, 1e-9);
}

TEST(DiversityTest, SingletonAndPairEdgeCases) {
  DistanceMatrix one(1);
  for (DiversityProblem p : kAllProblems) {
    EXPECT_DOUBLE_EQ(EvaluateDiversity(p, one), 0.0) << ProblemName(p);
  }
  DistanceMatrix two(2);
  two.set(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(EvaluateDiversity(DiversityProblem::kRemoteEdge, two), 3.0);
  EXPECT_DOUBLE_EQ(EvaluateDiversity(DiversityProblem::kRemoteClique, two),
                   3.0);
  EXPECT_DOUBLE_EQ(EvaluateDiversity(DiversityProblem::kRemoteStar, two), 3.0);
  EXPECT_DOUBLE_EQ(EvaluateDiversity(DiversityProblem::kRemoteTree, two), 3.0);
  EXPECT_DOUBLE_EQ(EvaluateDiversity(DiversityProblem::kRemoteCycle, two),
                   6.0);
}

TEST(DiversityTest, PointOverloadMatchesMatrixOverload) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(9, 2, /*seed=*/13);
  DistanceMatrix d(pts, m);
  for (DiversityProblem p : kAllProblems) {
    EXPECT_DOUBLE_EQ(EvaluateDiversity(p, pts, m), EvaluateDiversity(p, d))
        << ProblemName(p);
  }
}

TEST(DiversityTest, BipartitionHeuristicNeverBeatsExact) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    PointSet pts = GenerateUniformCube(10, 2, seed);
    DistanceMatrix d(pts, m);
    // The heuristic searches the same space, so it can only find a cut of
    // weight >= the true minimum.
    EXPECT_GE(BipartitionWeightHeuristic(d) + 1e-9, BipartitionWeightExact(d))
        << "seed " << seed;
  }
}

TEST(DiversityTest, BipartitionHeuristicUsuallyExactOnSmallInstances) {
  EuclideanMetric m;
  int exact_hits = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PointSet pts = GenerateUniformCube(12, 2, seed + 100);
    DistanceMatrix d(pts, m);
    if (std::abs(BipartitionWeightHeuristic(d) - BipartitionWeightExact(d)) <
        1e-9) {
      ++exact_hits;
    }
  }
  EXPECT_GE(exact_hits, 8);  // multi-restart local search is strong here
}

// Monotonicity: adding a point can only decrease (or keep) the min-based
// measures evaluated over the whole set.
TEST(DiversityTest, MinMeasuresMonotoneUnderSuperset) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(10, 2, /*seed=*/77);
  PointSet prefix(pts.begin(), pts.begin() + 6);
  double edge_small =
      EvaluateDiversity(DiversityProblem::kRemoteEdge, prefix, m);
  double edge_big = EvaluateDiversity(DiversityProblem::kRemoteEdge, pts, m);
  EXPECT_LE(edge_big, edge_small + 1e-12);
}

}  // namespace
}  // namespace diverse
