// libFuzzer harness for the wire-frame decoder (comm/frame.h) and the
// task/reply payload codecs layered on it (comm/serialize.h).
//
// The incremental frame decoder fronts every byte the driver reads from a
// worker socket, so it is the distributed runtime's parsing attack
// surface: hostile bytes must come back as "need more", a verified frame,
// or a diagnosable malformed-stream Status — never a crash, hang, or
// unbounded allocation (kMaxFramePayload bounds the length field before
// any buffering). Accepted request/reply frames are additionally decoded
// by the payload codecs and, when those accept, re-encoded as a
// consistency oracle: encode(decode(bytes)) must itself decode, or the
// harness CHECK-aborts (a fuzzer finding).
//
// Build modes match tests/fuzz/io_fuzz.cc: libFuzzer under
// DIVERSE_FUZZ_LIBFUZZER, else a standalone main() that replays the
// committed corpus (tests/fuzz/frame_corpus/) as a regression test.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "comm/frame.h"
#include "comm/serialize.h"
#include "util/check.h"

namespace {

// Streamed-decode oracle: feeding `payload` to the chunked decoder in two
// slices (split point derived from the bytes) must agree with the
// monolithic decoder — same verdict, and on acceptance the identical
// request (checked through the canonical re-encoding).
void CheckStreamingParity(std::string_view payload) {
  diverse::StatusOr<diverse::WireRequest> mono =
      diverse::TryDecodeWireRequest(payload);
  const size_t split =
      payload.empty()
          ? 0
          : (static_cast<uint8_t>(payload.back()) * 131) % payload.size();
  diverse::StreamingRequestDecoder decoder;
  // Feed errors are sticky and re-surface at Finish; ignore them here.
  (void)decoder.Feed(payload.substr(0, split));
  (void)decoder.Feed(payload.substr(split));
  diverse::StatusOr<diverse::WireRequest> streamed = decoder.Finish();
  DIVERSE_CHECK(streamed.ok() == mono.ok());
  if (mono.ok()) {
    DIVERSE_CHECK(diverse::EncodeWireRequest(*streamed) ==
                  diverse::EncodeWireRequest(*mono));
  }
}

void FuzzPayload(const diverse::Frame& frame) {
  using diverse::FrameType;
  if (frame.type == FrameType::kRequest) {
    diverse::StatusOr<diverse::WireRequest> req =
        diverse::TryDecodeWireRequest(frame.payload);
    if (!req.ok()) {
      DIVERSE_CHECK(!req.status().message().empty());
      CheckStreamingParity(frame.payload);
      return;
    }
    // Accepted request: the canonical re-encoding must decode again.
    diverse::StatusOr<diverse::WireRequest> again =
        diverse::TryDecodeWireRequest(diverse::EncodeWireRequest(*req));
    DIVERSE_CHECK(again.ok());
    CheckStreamingParity(frame.payload);
  } else if (frame.type == FrameType::kReply) {
    diverse::StatusOr<diverse::WireReply> reply =
        diverse::TryDecodeWireReply(frame.payload);
    if (!reply.ok()) {
      DIVERSE_CHECK(!reply.status().message().empty());
      return;
    }
    diverse::StatusOr<diverse::WireReply> again =
        diverse::TryDecodeWireReply(diverse::EncodeWireReply(*reply));
    DIVERSE_CHECK(again.ok());
  }
}

void FuzzOne(const uint8_t* data, size_t size) {
  std::string_view buf(reinterpret_cast<const char*>(data), size);
  // A chunked request spans kRequestChunk frames closed by kRequestLast —
  // reassembled across loop iterations exactly as the worker loop does.
  diverse::StreamingRequestDecoder chunked;
  std::string chunk_bytes;
  // Drain frames from the front exactly as ReadFrameFromSocket does.
  while (true) {
    diverse::Frame frame;
    size_t consumed = 0;
    diverse::Status st = diverse::TryDecodeFrame(buf, &frame, &consumed);
    if (!st.ok()) {
      // Malformed stream: must be diagnosed, and must not claim progress.
      DIVERSE_CHECK(!st.message().empty());
      DIVERSE_CHECK(consumed == 0);
      return;
    }
    if (consumed == 0) return;  // valid prefix; a real reader waits for more
    DIVERSE_CHECK(consumed <= buf.size());
    DIVERSE_CHECK(frame.payload.size() <= diverse::kMaxFramePayload);
    // A decoded frame re-encodes to bytes the decoder accepts verbatim.
    std::string round_trip;
    diverse::AppendFrame(frame.type, frame.payload, &round_trip);
    diverse::Frame back;
    size_t back_consumed = 0;
    DIVERSE_CHECK(diverse::TryDecodeFrame(round_trip, &back, &back_consumed).ok());
    DIVERSE_CHECK(back_consumed == round_trip.size());
    DIVERSE_CHECK(back.type == frame.type);
    DIVERSE_CHECK(back.payload == frame.payload);
    FuzzPayload(frame);
    if (frame.type == diverse::FrameType::kRequestChunk) {
      (void)chunked.Feed(frame.payload);
      chunk_bytes += frame.payload;
    } else if (frame.type == diverse::FrameType::kRequestLast) {
      (void)chunked.Feed(frame.payload);
      chunk_bytes += frame.payload;
      // The reassembled chunk stream must agree with a monolithic decode
      // of the concatenated bytes.
      diverse::StatusOr<diverse::WireRequest> streamed = chunked.Finish();
      diverse::StatusOr<diverse::WireRequest> mono =
          diverse::TryDecodeWireRequest(chunk_bytes);
      DIVERSE_CHECK(streamed.ok() == mono.ok());
      if (mono.ok()) {
        DIVERSE_CHECK(diverse::EncodeWireRequest(*streamed) ==
                      diverse::EncodeWireRequest(*mono));
      }
      chunked = diverse::StreamingRequestDecoder();
      chunk_bytes.clear();
    }
    buf.remove_prefix(consumed);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzOne(data, size);
  return 0;
}

#ifndef DIVERSE_FUZZ_LIBFUZZER
// Standalone regression driver: replays corpus files/directories given on
// the command line through FuzzOne (same contract as io_fuzz).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open corpus file " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = std::move(buf).str();
  FuzzOne(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "frame_fuzz: no corpus inputs given\n";
    return 1;
  }
  for (const auto& path : inputs) {
    if (ReplayFile(path) != 0) return 1;
  }
  std::cout << "frame_fuzz: replayed " << inputs.size() << " corpus inputs\n";
  return 0;
}
#endif  // DIVERSE_FUZZ_LIBFUZZER
