// libFuzzer harness for the hardened point loaders (data/io.h).
//
// The Status-returning parse cores are the natural fuzz target: every
// validation path (bad magic, truncated records, impossible counts,
// unsorted sparse indices, malformed text) must reject hostile bytes with
// a diagnosable error, never crash, hang, or over-allocate. The first
// input byte selects the format (text vs binary) so one corpus covers
// both parsers; accepted inputs additionally round-trip through the text
// serializer as a consistency oracle (a parse-accepts / serialize-reparse
// mismatch is a CHECK-abort, i.e. a fuzzer finding).
//
// Build modes (CMakeLists.txt):
//   * clang + DIVERSE_FUZZ_LIBFUZZER: -fsanitize=fuzzer,address — real
//     coverage-guided fuzzing (the CI analyze job runs a short smoke).
//   * otherwise: a standalone driver main() that replays the committed
//     corpus (tests/fuzz/corpus/) as a plain regression test, so the
//     harness itself cannot rot on toolchains without libFuzzer.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "data/io.h"
#include "util/check.h"

namespace {

void FuzzOne(const uint8_t* data, size_t size) {
  if (size == 0) return;
  const bool text = (data[0] & 1) != 0;
  std::string_view payload(reinterpret_cast<const char*>(data + 1), size - 1);
  diverse::StatusOr<diverse::PointSet> parsed =
      text ? diverse::TryParsePointsText(payload, "<fuzz>")
           : diverse::TryParsePointsBinary(payload, "<fuzz>");
  if (!parsed.ok()) {
    // Rejected input must carry a diagnosis, never an OK code.
    DIVERSE_CHECK(!parsed.status().message().empty());
    return;
  }
  // Accepted input: the canonical text round-trip must accept and preserve
  // every point the parser just vouched for.
  for (const diverse::Point& p : *parsed) {
    std::optional<diverse::Point> back =
        diverse::PointFromTextLine(diverse::PointToTextLine(p));
    DIVERSE_CHECK(back.has_value());
    DIVERSE_CHECK(*back == p);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzOne(data, size);
  return 0;
}

#ifndef DIVERSE_FUZZ_LIBFUZZER
// Standalone regression driver: each argv path is a corpus file or a
// directory of corpus files; every input is replayed through FuzzOne.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open corpus file " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = std::move(buf).str();
  FuzzOne(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "io_fuzz: no corpus inputs given\n";
    return 1;
  }
  for (const auto& path : inputs) {
    if (ReplayFile(path) != 0) return 1;
  }
  std::cout << "io_fuzz: replayed " << inputs.size() << " corpus inputs\n";
  return 0;
}
#endif  // DIVERSE_FUZZ_LIBFUZZER
