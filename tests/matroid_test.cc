#include "core/matroid.h"

#include <set>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/exact.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace diverse {
namespace {

PartitionMatroid UniformMatroid(size_t n, size_t categories, size_t cap,
                                uint64_t seed) {
  PartitionMatroid m;
  m.capacity.assign(categories, cap);
  m.category_of.resize(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    m.category_of[i] = rng.NextBounded(categories);
  }
  return m;
}

TEST(PartitionMatroidTest, IndependenceCheck) {
  PartitionMatroid m;
  m.capacity = {2, 1};
  m.category_of = {0, 0, 0, 1, 1};
  EXPECT_TRUE(m.IsIndependent(std::vector<size_t>{0, 1, 3}));
  EXPECT_FALSE(m.IsIndependent(std::vector<size_t>{0, 1, 2}));  // 3 of cat 0
  EXPECT_FALSE(m.IsIndependent(std::vector<size_t>{3, 4}));     // 2 of cat 1
  EXPECT_TRUE(m.IsIndependent(std::vector<size_t>{}));
}

TEST(PartitionMatroidTest, MaxFeasibleSize) {
  PartitionMatroid m;
  m.capacity = {2, 5, 1};
  m.category_of = {0, 0, 0, 1, 2, 2};  // sizes 3, 1, 2
  EXPECT_EQ(m.MaxFeasibleSize(), 2u + 1u + 1u);
}

TEST(MatroidSolveTest, RespectsCapacities) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(200, 2, /*seed=*/1);
  PartitionMatroid m = UniformMatroid(pts.size(), 4, 2, /*seed=*/2);
  MatroidSolveResult r =
      SolveRemoteCliqueUnderMatroid(pts, metric, m, /*k=*/8);
  EXPECT_EQ(r.solution.size(), 8u);
  EXPECT_TRUE(m.IsIndependent(r.solution));
  EXPECT_GT(r.diversity, 0.0);
  std::set<size_t> unique(r.solution.begin(), r.solution.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(MatroidSolveTest, ClampsToMaxFeasible) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(50, 2, /*seed=*/3);
  PartitionMatroid m = UniformMatroid(pts.size(), 3, 1, /*seed=*/4);
  // Max feasible = 3 < k = 10.
  MatroidSolveResult r = SolveRemoteCliqueUnderMatroid(pts, metric, m, 10);
  EXPECT_EQ(r.solution.size(), 3u);
  EXPECT_TRUE(m.IsIndependent(r.solution));
}

TEST(MatroidSolveTest, UnconstrainedMatchesPlainQualityApproximately) {
  // One category with capacity >= k is the plain cardinality problem; the
  // local search must be a 2-approximation vs the exact optimum.
  EuclideanMetric metric;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PointSet pts = GenerateUniformCube(14, 2, seed * 7);
    PartitionMatroid m;
    m.capacity = {14};
    m.category_of.assign(14, 0);
    size_t k = 4;
    MatroidSolveResult r = SolveRemoteCliqueUnderMatroid(pts, metric, m, k);
    double opt =
        ExactDiversityMaximization(DiversityProblem::kRemoteClique, pts,
                                   metric, k)
            .value;
    EXPECT_GE(r.diversity * 2.0 + 1e-9, opt) << "seed " << seed;
    EXPECT_LE(r.diversity, opt + 1e-9);
  }
}

TEST(MatroidSolveTest, ConstraintActuallyBinds) {
  // Plant all far-away points in one category with capacity 1: the
  // constrained optimum must use exactly one of them.
  EuclideanMetric metric;
  SphereDatasetOptions opts;
  opts.n = 300;
  opts.k = 8;
  opts.seed = 5;
  PointSet pts = GenerateSphereDataset(opts);  // first 8 on the surface
  PartitionMatroid m;
  m.capacity = {1, 8};
  m.category_of.assign(pts.size(), 1);
  for (size_t i = 0; i < 8; ++i) m.category_of[i] = 0;

  MatroidSolveResult r = SolveRemoteCliqueUnderMatroid(pts, metric, m, 6);
  EXPECT_TRUE(m.IsIndependent(r.solution));
  size_t surface_picked = 0;
  for (size_t idx : r.solution) {
    if (idx < 8) ++surface_picked;
  }
  EXPECT_LE(surface_picked, 1u);
}

TEST(MatroidSolveTest, LocalSearchImprovesOnGreedyInit) {
  // Swaps counter is exposed; on non-trivial instances local search should
  // fire at least sometimes across seeds.
  EuclideanMetric metric;
  size_t total_swaps = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PointSet pts = GenerateUniformCube(150, 2, seed * 31);
    PartitionMatroid m = UniformMatroid(pts.size(), 5, 2, seed);
    MatroidSolveResult r = SolveRemoteCliqueUnderMatroid(pts, metric, m, 8);
    total_swaps += r.swaps;
  }
  EXPECT_GT(total_swaps, 0u);
}

TEST(MatroidSolveDeathTest, SizeMismatchRejected) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(10, 2, /*seed=*/6);
  PartitionMatroid m;
  m.capacity = {5};
  m.category_of.assign(9, 0);  // wrong length
  EXPECT_DEATH(SolveRemoteCliqueUnderMatroid(pts, metric, m, 3),
               "CHECK failed");
}

}  // namespace
}  // namespace diverse
