#include "core/kcenter.h"

#include <set>

#include <gtest/gtest.h>

#include "core/distance_matrix.h"
#include "core/exact.h"
#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(KCenterGmmTest, RadiusMatchesClusteringRadius) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(150, 2, /*seed=*/1);
  KCenterResult r = SolveKCenterGmm(pts, m, 6);
  ASSERT_EQ(r.centers.size(), 6u);
  EXPECT_NEAR(r.radius, ClusteringRadius(pts, m, r.centers), 1e-12);
}

TEST(KCenterGmmTest, TwoApproximationAgainstExact) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PointSet pts = GenerateUniformCube(14, 2, seed * 41);
    DistanceMatrix d(pts, m);
    for (size_t k = 2; k <= 5; ++k) {
      KCenterResult r = SolveKCenterGmm(pts, m, k);
      EXPECT_LE(r.radius, 2.0 * ExactOptimalRange(d, k) + 1e-9)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(KCenterGmmTest, AssignmentPointsToNearestCenter) {
  EuclideanMetric m;
  PointSet pts = GenerateGaussianBlobs(120, 4, 2, 0.02, /*seed=*/2);
  KCenterResult r = SolveKCenterGmm(pts, m, 4);
  for (size_t i = 0; i < pts.size(); ++i) {
    double assigned = m.Distance(pts[i], pts[r.centers[r.assignment[i]]]);
    for (size_t c : r.centers) {
      EXPECT_LE(assigned, m.Distance(pts[i], pts[c]) + 1e-12);
    }
  }
}

TEST(KCenterDoublingTest, RadiusWithinEightOfOptimal) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PointSet pts = GenerateUniformCube(16, 2, seed * 43);
    DistanceMatrix d(pts, m);
    for (size_t k = 2; k <= 5; ++k) {
      KCenterResult r = SolveKCenterDoubling(pts, m, k);
      ASSERT_LE(r.centers.size(), k);
      EXPECT_LE(r.radius, 8.0 * ExactOptimalRange(d, k) + 1e-9)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(KCenterDoublingTest, GmmIsNoWorseOnAverage) {
  // Section 7.2's rationale: GMM (2-approx) should beat the doubling
  // algorithm (8-approx) in realized radius most of the time.
  EuclideanMetric m;
  int gmm_wins = 0, total = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PointSet pts = GenerateUniformCube(400, 2, seed * 47);
    KCenterResult gmm = SolveKCenterGmm(pts, m, 8);
    KCenterResult dbl = SolveKCenterDoubling(pts, m, 8);
    if (gmm.radius <= dbl.radius + 1e-12) ++gmm_wins;
    ++total;
  }
  EXPECT_GE(gmm_wins * 2, total);  // GMM wins at least half the time
}

TEST(KCenterDoublingTest, TinyInputsReturnAllPoints) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(3, 2, /*seed=*/3);
  KCenterResult r = SolveKCenterDoubling(pts, m, 3);
  EXPECT_EQ(r.centers.size(), 3u);
  EXPECT_NEAR(r.radius, 0.0, 1e-12);
}

TEST(KCenterDoublingTest, DuplicatePointsDoNotLoop) {
  EuclideanMetric m;
  PointSet pts(40, Point::Dense2(1, 1));
  for (int i = 0; i < 40; ++i) {
    pts.push_back(Point::Dense2(static_cast<float>(i % 5), 2.0f));
  }
  KCenterResult r = SolveKCenterDoubling(pts, m, 4);
  EXPECT_GE(r.centers.size(), 1u);
  EXPECT_LE(r.centers.size(), 4u);
}

TEST(KCenterTest, CentersAreDistinct) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(200, 3, /*seed=*/4);
  for (size_t k : {2u, 8u, 32u}) {
    KCenterResult gmm = SolveKCenterGmm(pts, m, k);
    std::set<size_t> unique(gmm.centers.begin(), gmm.centers.end());
    EXPECT_EQ(unique.size(), gmm.centers.size());
    KCenterResult dbl = SolveKCenterDoubling(pts, m, k);
    std::set<size_t> unique2(dbl.centers.begin(), dbl.centers.end());
    EXPECT_EQ(unique2.size(), dbl.centers.size());
  }
}

}  // namespace
}  // namespace diverse
