// The metric-index contract (core/cover_tree.h): every indexed traversal —
// lazy-greedy GMM and the one-shot multi-center relax — produces
// BIT-IDENTICAL selections, trajectories, assignments, distances, and radii
// to the flat screened path it accelerates, across metrics, representations,
// adversarial layouts, and thread counts; node-level prunes only retire
// work the triangle inequality (inflated by the certified kernel slack)
// proves could not change any outcome. The suite also pins the accounting
// (indexed leaf-sweep rescues never exceed the flat screened baseline, and
// CountingMetric's total equals rescues + node bound evaluations), the
// build invariants, the deterministic profitability gate, concurrent
// traversals over one shared tree, the sparse decode cache's reuse
// counters, and PersistentScreenContext amortization.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cover_tree.h"
#include "core/dataset.h"
#include "core/gmm.h"
#include "core/metric.h"
#include "core/screen.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace diverse {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ScopedIndexGate {
  IndexGate prev;
  explicit ScopedIndexGate(const IndexGate& gate) : prev(GetIndexGate()) {
    SetIndexGateForTesting(gate);
  }
  ~ScopedIndexGate() { SetIndexGateForTesting(prev); }
};

IndexGate ForcedOn() {
  IndexGate gate;
  gate.force = 1;
  return gate;
}

PointSet SparsePoints(size_t n, uint64_t seed) {
  SparseTextOptions opts;
  opts.n = n;
  opts.vocab_size = 300;
  opts.seed = seed;
  return GenerateSparseTextDataset(opts);
}

PointSet MixedPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  for (size_t i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      std::vector<float> values(dim);
      for (float& v : values) v = static_cast<float>(rng.NextDouble());
      pts.push_back(Point::Dense(std::move(values)));
    } else {
      std::vector<uint32_t> indices;
      std::vector<float> values;
      for (uint32_t j = 0; j < dim; ++j) {
        if (rng.NextDouble() < 0.4) {
          indices.push_back(j);
          values.push_back(static_cast<float>(rng.NextDouble()));
        }
      }
      pts.push_back(Point::Sparse(std::move(indices), std::move(values),
                                  static_cast<uint32_t>(dim)));
    }
  }
  return pts;
}

PointSet AllDuplicates(size_t n) {
  PointSet pts;
  for (size_t i = 0; i < n; ++i) pts.push_back(Point::Dense3(1.0f, 2.0f, 3.0f));
  return pts;
}

// Clustered SPARSE data: `clusters` disjoint-ish topic supports over the
// vocabulary; each point takes its topic's support with a few indices
// swapped, so Jaccard and angular distances are small inside a topic and
// near-maximal across topics (the regime where set-metric prunes fire).
PointSet ClusteredSparsePoints(size_t n, size_t clusters, uint64_t seed) {
  constexpr uint32_t kVocab = 400;
  constexpr size_t kSupport = 40;
  Rng rng(seed);
  PointSet pts;
  for (size_t i = 0; i < n; ++i) {
    size_t topic = i % clusters;
    std::vector<uint32_t> idx;
    std::vector<float> val;
    for (size_t j = 0; j < kSupport; ++j) {
      uint32_t base = static_cast<uint32_t>((topic * kSupport + j) % kVocab);
      if (rng.NextDouble() < 0.05) {
        base = static_cast<uint32_t>(rng.NextBounded(kVocab));
      }
      idx.push_back(base);
      val.push_back(1.0f + static_cast<float>(rng.NextDouble()));
    }
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    val.resize(idx.size());
    pts.push_back(Point::Sparse(std::move(idx), std::move(val), kVocab));
  }
  return pts;
}

PointSet OneClusterPlusOutlier(size_t n, uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  for (size_t i = 0; i + 1 < n; ++i) {
    pts.push_back(Point::Dense3(static_cast<float>(rng.NextDouble() * 0.01),
                                static_cast<float>(rng.NextDouble() * 0.01),
                                static_cast<float>(rng.NextDouble() * 0.01)));
  }
  pts.push_back(Point::Dense3(100.0f, -50.0f, 25.0f));
  return pts;
}

std::vector<std::unique_ptr<Metric>> AllMetrics() {
  std::vector<std::unique_ptr<Metric>> metrics;
  metrics.push_back(std::make_unique<EuclideanMetric>());
  metrics.push_back(std::make_unique<ManhattanMetric>());
  metrics.push_back(std::make_unique<CosineMetric>());
  metrics.push_back(std::make_unique<JaccardMetric>());
  return metrics;
}

struct NamedLayout {
  std::string name;
  PointSet pts;
};

std::vector<NamedLayout> AllLayouts() {
  std::vector<NamedLayout> layouts;
  layouts.push_back({"dense", GenerateUniformCube(140, 6, /*seed=*/301)});
  layouts.push_back({"sparse", SparsePoints(140, /*seed=*/302)});
  layouts.push_back({"mixed", MixedPoints(140, 12, /*seed=*/303)});
  layouts.push_back({"duplicates", AllDuplicates(90)});
  layouts.push_back({"outlier", OneClusterPlusOutlier(120, /*seed=*/304)});
  layouts.push_back({"singleton", OneClusterPlusOutlier(1, /*seed=*/305)});
  return layouts;
}

void ExpectSameGmm(const GmmResult& got, const GmmResult& want,
                   const std::string& ctx) {
  EXPECT_EQ(got.selected, want.selected) << ctx;
  EXPECT_EQ(got.selection_distance, want.selection_distance) << ctx;
  EXPECT_EQ(got.assignment, want.assignment) << ctx;
  EXPECT_EQ(got.distance_to_selected, want.distance_to_selected) << ctx;
  EXPECT_EQ(got.range, want.range) << ctx;
}

class ThreadCounts : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCounts, ::testing::Values(1, 2, 8));

// The headline contract: Gmm with the index forced on equals Gmm with the
// index off, byte for byte, for every metric x layout x thread count —
// including layouts engineered to stress ties (duplicates), degenerate
// radii, and single-point trees.
TEST_P(ThreadCounts, GmmIndexedBitIdenticalToFlat) {
  SetGlobalThreadPoolSize(GetParam());
  ScopedIndexGate force(ForcedOn());
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    size_t k = std::min<size_t>(10, data.size());
    for (const auto& metric : AllMetrics()) {
      GmmResult flat;
      {
        ScopedIndexing off(false);
        flat = Gmm(data, *metric, k);
      }
      ScopedIndexing on(true);
      GmmResult indexed = Gmm(data, *metric, k);
      ExpectSameGmm(indexed, flat, metric->Name() + "/" + layout.name);
    }
  }
  SetGlobalThreadPoolSize(1);
}

// Deeper trees and real pruning: clustered corpora large enough for several
// split levels, with k large enough that stale bounds and stashed ranks are
// exercised heavily.
TEST_P(ThreadCounts, GmmIndexedAtScaleBitIdenticalToFlat) {
  SetGlobalThreadPoolSize(GetParam());
  ScopedIndexGate force(ForcedOn());
  std::vector<NamedLayout> layouts;
  layouts.push_back(
      {"blobs", GenerateGaussianBlobs(4000, 8, 8, 0.02, /*seed=*/311)});
  layouts.push_back({"sparse", SparsePoints(3000, /*seed=*/312)});
  for (const NamedLayout& layout : layouts) {
    Dataset data = Dataset::FromPoints(layout.pts);
    for (const auto& metric : AllMetrics()) {
      GmmResult flat;
      {
        ScopedIndexing off(false);
        flat = Gmm(data, *metric, 48, /*first=*/7);
      }
      ScopedIndexing on(true);
      GmmResult indexed = Gmm(data, *metric, 48, /*first=*/7);
      ExpectSameGmm(indexed, flat, metric->Name() + "/" + layout.name);
    }
  }
  SetGlobalThreadPoolSize(1);
}

// The one-shot multi-center relax: indexed vs flat screened, warm and cold
// incoming dist arrays.
TEST_P(ThreadCounts, IndexedRelaxBitIdenticalToFlat) {
  SetGlobalThreadPoolSize(GetParam());
  ScopedIndexGate force(ForcedOn());
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    size_t n = data.size();
    size_t m = std::min<size_t>(24, n);
    Dataset centers;
    for (size_t i = 0; i < m; ++i) centers.Append(data.point((i * 7) % n));
    for (const auto& metric : AllMetrics()) {
      std::string ctx = metric->Name() + "/" + layout.name;
      ASSERT_TRUE(
          OneShotIndexProfitable(*metric, centers, m, data) ||
          !UseIndexing(*metric))
          << ctx;
      CoverTree tree = CoverTree::Build(data, *metric);
      std::vector<double> flat_dist(n, kInf);
      std::vector<size_t> flat_assign(n, 0);
      size_t flat_best = ScreenedRelaxTilesAndArgFarthest(
          *metric, centers, 0, m, 0, data, flat_dist, flat_assign);
      std::vector<double> dist(n, kInf);
      std::vector<size_t> assign(n, 0);
      size_t best = IndexedRelaxTilesAndArgFarthest(*metric, centers, 0, m, 0,
                                                    tree, dist, assign);
      EXPECT_EQ(best, flat_best) << ctx;
      EXPECT_EQ(dist, flat_dist) << ctx;
      EXPECT_EQ(assign, flat_assign) << ctx;
      // Warm rerun with half the centers already folded in.
      std::vector<double> warm_flat = flat_dist;
      std::vector<size_t> warm_flat_assign = flat_assign;
      size_t wf = ScreenedRelaxTilesAndArgFarthest(
          *metric, centers, m / 2, m - m / 2, m / 2, data, warm_flat,
          warm_flat_assign);
      std::vector<double> warm = dist;
      std::vector<size_t> warm_assign = assign;
      size_t wi = IndexedRelaxTilesAndArgFarthest(
          *metric, centers, m / 2, m - m / 2, m / 2, tree, warm, warm_assign);
      EXPECT_EQ(wi, wf) << ctx;
      EXPECT_EQ(warm, warm_flat) << ctx;
      EXPECT_EQ(warm_assign, warm_flat_assign) << ctx;
    }
  }
  SetGlobalThreadPoolSize(1);
}

// Build invariants: perm is a permutation, children partition their parent
// contiguously, every row lies within the (computed) node radius of the
// node center, min_orig is exact, and leaf_data holds the permuted rows.
TEST(CoverTreeBuild, Invariants) {
  EuclideanMetric metric;
  Dataset data = Dataset::FromPoints(
      GenerateGaussianBlobs(3000, 8, 6, 0.05, /*seed=*/321));
  CoverTree tree = CoverTree::Build(data, metric);
  size_t n = data.size();
  ASSERT_EQ(tree.size(), n);
  std::vector<uint8_t> seen(n, 0);
  for (size_t l = 0; l < n; ++l) {
    size_t orig = tree.perm()[l];
    ASSERT_LT(orig, n);
    EXPECT_EQ(seen[orig], 0u);
    seen[orig] = 1;
    EXPECT_EQ(tree.inv_perm()[orig], l);
    EXPECT_EQ(tree.leaf_data().norm(l), data.norm(orig));
  }
  ASSERT_FALSE(tree.nodes().empty());
  EXPECT_EQ(tree.nodes()[0].begin, 0u);
  EXPECT_EQ(tree.nodes()[0].end, n);
  EXPECT_GT(tree.build_evals(), 0u);
  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    const CoverTree::Node& nd = tree.nodes()[i];
    ASSERT_LT(nd.begin, nd.end);
    ASSERT_GE(nd.center, nd.begin);
    ASSERT_LT(nd.center, nd.end);
    size_t min_orig = tree.perm()[nd.begin];
    for (size_t l = nd.begin; l < nd.end; ++l) {
      min_orig = std::min(min_orig, tree.perm()[l]);
      EXPECT_LE(metric.DistanceRows(tree.leaf_data(), nd.center,
                                    tree.leaf_data(), l),
                nd.radius);
    }
    EXPECT_EQ(nd.min_orig, min_orig);
    if (nd.left != 0) {
      ASSERT_NE(nd.right, 0u);
      ASSERT_GT(nd.left, i);
      ASSERT_GT(nd.right, i);
      const CoverTree::Node& l = tree.nodes()[nd.left];
      const CoverTree::Node& r = tree.nodes()[nd.right];
      EXPECT_EQ(l.begin, nd.begin);
      EXPECT_EQ(l.end, r.begin);
      EXPECT_EQ(r.end, nd.end);
    }
  }
}

TEST(CoverTreeBuild, EmptyAndSingleton) {
  EuclideanMetric metric;
  Dataset empty;
  CoverTree none = CoverTree::Build(empty, metric);
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(none.nodes().empty());
  std::vector<double> no_dist;
  EXPECT_EQ(IndexedRelaxTilesAndArgFarthest(metric, empty, 0, 0, 0, none,
                                            no_dist),
            0u);

  Dataset one = Dataset::FromPoints(AllDuplicates(1));
  CoverTree single = CoverTree::Build(one, metric);
  ASSERT_EQ(single.size(), 1u);
  ASSERT_EQ(single.nodes().size(), 1u);
  EXPECT_EQ(single.nodes()[0].left, 0u);
  ScopedIndexGate force(ForcedOn());
  GmmResult r = LazyGreedyGmm(one, single, metric, 1);
  EXPECT_EQ(r.selected, std::vector<size_t>{0});
  EXPECT_EQ(r.range, 0.0);
}

// Accounting: the indexed leaf sweeps pay AT MOST the flat screened sweep's
// exact rescues (their per-pair decisions are the flat sweep's restricted
// to surviving rows), node-level prunes actually fire on clustered data,
// and CountingMetric's exact total splits exactly into leaf rescues plus
// node bound evaluations.
TEST(CoverTreeCounts, IndexedExactEvalsNeverExceedFlatScreened) {
  SetGlobalThreadPoolSize(1);
  ScopedIndexGate force(ForcedOn());
  Dataset blobs = Dataset::FromPoints(
      GenerateGaussianBlobs(3000, 8, 8, 0.02, /*seed=*/331));
  // Jaccard needs clustered SPARSE data: on dense rows every support is the
  // full dimension, all distances are 0, the root radius is 0, and the tree
  // collapses to one leaf — no node to prune.
  Dataset topics =
      Dataset::FromPoints(ClusteredSparsePoints(3000, 8, /*seed=*/332));
  for (const auto& base : AllMetrics()) {
    std::string ctx = base->Name();
    const Dataset& data = (ctx == "jaccard") ? topics : blobs;
    CountingMetric counting(base.get());
    // Flat screened baseline (index off, screen on).
    GmmResult flat;
    uint64_t flat_exact = 0;
    {
      ScopedIndexing off(false);
      flat = Gmm(data, counting, 32);
      flat_exact = counting.exact_evals();
    }
    // Indexed: tree built with the PLAIN metric (build cost accounted
    // separately), traversal through the counting wrapper.
    CoverTree tree = CoverTree::Build(data, *base);
    counting.Reset();
    CoverTreeQueryStats stats;
    GmmResult indexed = LazyGreedyGmm(data, tree, counting, 32, 0, &stats);
    ExpectSameGmm(indexed, flat, ctx);
    EXPECT_LE(stats.exact_evals, flat_exact) << ctx;
    EXPECT_EQ(counting.exact_evals(), stats.exact_evals + stats.bound_evals)
        << ctx;
    EXPECT_GT(stats.pruned_pairs, 0u) << ctx;
    EXPECT_GT(stats.node_visits, 0u) << ctx;
  }
}

// The profitability gate is a pure function of dataset statistics: verdicts
// repeat exactly, clustered low-dimensional corpora index, uniform
// high-dimensional corpora do not, and the structural minimums short-
// circuit without probing.
TEST(CoverTreeGate, DeterministicVerdicts) {
  SetGlobalThreadPoolSize(1);
  EuclideanMetric metric;
  Dataset clustered = Dataset::FromPoints(
      GenerateGaussianBlobs(8192, 8, 8, 0.02, /*seed=*/341));
  Dataset uniform =
      Dataset::FromPoints(GenerateUniformCube(8192, 32, /*seed=*/342));
  EXPECT_TRUE(IndexProfitable(clustered, metric, 64));
  EXPECT_TRUE(IndexProfitable(clustered, metric, 64));
  EXPECT_FALSE(IndexProfitable(uniform, metric, 64));
  EXPECT_FALSE(IndexProfitable(uniform, metric, 64));
  // Below the structural minimums: no probe, no index.
  EXPECT_FALSE(IndexProfitable(clustered, metric, 8));
  Dataset tiny = Dataset::FromPoints(GenerateUniformCube(64, 4, 343));
  EXPECT_FALSE(IndexProfitable(tiny, metric, 64));
  // Force overrides both ways.
  IndexGate on = ForcedOn();
  {
    ScopedIndexGate g(on);
    EXPECT_TRUE(IndexProfitable(tiny, metric, 64));
  }
  IndexGate off;
  off.force = -1;
  {
    ScopedIndexGate g(off);
    EXPECT_FALSE(IndexProfitable(clustered, metric, 64));
  }
  // One-shot slack coverage: a query whose norm undercuts the data's
  // smallest positive norm is not dominated and must take the flat path.
  {
    ScopedIndexGate g(on);
    EXPECT_TRUE(OneShotIndexProfitable(metric, clustered, 256, clustered));
    Dataset tiny_norm;
    tiny_norm.Append(Point::Dense(std::vector<float>(8, 1e-30f)));
    EXPECT_FALSE(OneShotIndexProfitable(metric, tiny_norm, 256, clustered));
  }
}

// Many traversals over ONE shared immutable tree from different threads:
// results match the single-threaded reference (the per-traversal state is
// thread-local; the tree is read-only). Run under TSan via the concurrency
// label.
TEST(CoverTreeConcurrency, ConcurrentTraversalsShareOneTree) {
  SetGlobalThreadPoolSize(1);
  ScopedIndexGate force(ForcedOn());
  EuclideanMetric metric;
  Dataset data = Dataset::FromPoints(
      GenerateGaussianBlobs(2000, 8, 6, 0.03, /*seed=*/351));
  CoverTree tree = CoverTree::Build(data, metric);
  GmmResult want = LazyGreedyGmm(data, tree, metric, 24);
  constexpr size_t kThreads = 8;
  std::vector<GmmResult> got(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      got[t] = LazyGreedyGmm(data, tree, metric, 24);
    });
  }
  for (auto& w : workers) w.join();
  for (size_t t = 0; t < kThreads; ++t) {
    ExpectSameGmm(got[t], want, "thread " + std::to_string(t));
  }
}

// Satellite proof: the sparse decode cache actually reuses query-block
// decodes across row ranges of one sweep. An all-sparse cosine tile relax
// decodes each center block once per (row-range, lane-width) shape; a
// second call on the next equal-size row range — the shape a thread's
// chunked sweep produces — must hit the cache instead of re-decoding.
TEST(SparseDecodeCache, ReusesQueryBlockDecodesAcrossRowRanges) {
  SetGlobalThreadPoolSize(1);
  CosineMetric metric;
  Dataset data = Dataset::FromPoints(SparsePoints(4000, /*seed=*/361));
  size_t n = data.size();
  Dataset centers;
  for (size_t i = 0; i < 8; ++i) centers.Append(data.point(i * 11));
  ASSERT_TRUE(metric.RelaxTileScreeningProfitableFor(centers, data));
  ScreenBound bound = metric.ScreenErrorBound(centers, data);
  ASSERT_LT(bound.rel, 1.0);
  std::vector<double> dist(n, kInf);
  std::vector<size_t> assign(n, 0);
  ResetSparseQueryDecodeStats();
  metric.ScreenedRelaxTile(centers, 0, 8, 0, data, 0, n / 2, bound, dist,
                           assign);
  uint64_t first_decodes = SparseQueryDecodeCount();
  EXPECT_GT(first_decodes, 0u);
  EXPECT_EQ(SparseQueryDecodeHits(), 0u);
  metric.ScreenedRelaxTile(centers, 0, 8, 0, data, n / 2, n - n / 2, bound,
                           dist, assign);
  // Same query block, same lane shape: the second range re-decodes nothing.
  EXPECT_EQ(SparseQueryDecodeCount(), first_decodes);
  EXPECT_GT(SparseQueryDecodeHits(), 0u);
  // The cached sweep matches an uncached exact relax bit for bit.
  std::vector<double> want_dist(n, kInf);
  std::vector<size_t> want_assign(n, 0);
  for (size_t q = 0; q < 8; ++q) {
    std::vector<double> row(n);
    metric.DistanceToMany(centers.point(q), data, 0, row);
    for (size_t r = 0; r < n; ++r) {
      if (row[r] < want_dist[r]) {
        want_dist[r] = row[r];
        want_assign[r] = q;
      }
    }
  }
  EXPECT_EQ(dist, want_dist);
  EXPECT_EQ(assign, want_assign);
  // The indexed path leans harder on the cache: one center block applied to
  // many leaf slabs re-decodes nothing.
  ScopedIndexGate force(ForcedOn());
  CoverTree tree = CoverTree::Build(data, metric);
  ResetSparseQueryDecodeStats();
  GmmResult flat;
  {
    ScopedIndexing off(false);
    flat = Gmm(data, metric, 16);
  }
  GmmResult indexed = LazyGreedyGmm(data, tree, metric, 16);
  ExpectSameGmm(indexed, flat, "cosine/sparse-decode");
}

// Satellite proof: PersistentScreenContext replays cached cutoffs across
// structurally identical sweeps (rebuilds stay O(stat changes), hits grow
// with calls) and never changes a result.
TEST(PersistentScreenContextTest, AmortizesCutoffsBitIdentically) {
  SetGlobalThreadPoolSize(1);
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(400, 8, /*seed=*/371);
  Dataset data = Dataset::FromPoints(
      std::span<const Point>(pts.data(), pts.size() / 2));
  PersistentScreenContext ctx;
  double threshold = 0.8;
  for (size_t i = pts.size() / 2; i < pts.size(); ++i) {
    ScreenedNearest with =
        ScreenedArgClosestWithin(metric, pts[i], data, threshold, &ctx);
    ScreenedNearest without =
        ScreenedArgClosestWithin(metric, pts[i], data, threshold);
    EXPECT_EQ(with.beyond, without.beyond);
    if (!with.beyond) {
      EXPECT_EQ(with.index, without.index);
      EXPECT_EQ(with.dist, without.dist);
    }
    size_t first_with =
        ScreenedFirstWithin(metric, pts[i], data, threshold, &ctx);
    size_t first_without = ScreenedFirstWithin(metric, pts[i], data, threshold);
    EXPECT_EQ(first_with, first_without);
    // Occasional appends: a valid stats cache folds the new row in, and the
    // context only rebuilds when the aggregate statistics actually move.
    if (i % 37 == 0) data.Append(pts[i]);
  }
  EXPECT_GT(ctx.hits(), 0u);
  EXPECT_LT(ctx.rebuilds(), ctx.hits());
}

}  // namespace
}  // namespace diverse
