#include "core/tsp.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "core/mst.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(TspTest, TrivialSizes) {
  EXPECT_DOUBLE_EQ(TspWeightExact(DistanceMatrix(0)), 0.0);
  EXPECT_DOUBLE_EQ(TspWeightExact(DistanceMatrix(1)), 0.0);
}

TEST(TspTest, TwoPointsCountEdgeTwice) {
  DistanceMatrix d(2);
  d.set(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(TspWeightExact(d), 6.0);
  EXPECT_DOUBLE_EQ(TourWeight(d, {0, 1}), 6.0);
}

TEST(TspTest, UnitSquareTourIsPerimeter) {
  EuclideanMetric m;
  PointSet pts = {Point::Dense2(0, 0), Point::Dense2(1, 0),
                  Point::Dense2(1, 1), Point::Dense2(0, 1)};
  DistanceMatrix d(pts, m);
  EXPECT_NEAR(TspWeightExact(d), 4.0, 1e-9);
  EXPECT_NEAR(TspWeightHeuristic(d), 4.0, 1e-9);
}

TEST(TspTest, TourWeightOfExplicitOrder) {
  EuclideanMetric m;
  PointSet pts = {Point::Dense2(0, 0), Point::Dense2(1, 1),
                  Point::Dense2(1, 0), Point::Dense2(0, 1)};
  DistanceMatrix d(pts, m);
  // The crossing order 0,1,2,3 is strictly worse than the perimeter.
  EXPECT_GT(TourWeight(d, {0, 1, 2, 3}), 4.0);
}

TEST(TspTest, ExactMatchesPermutationBruteForce) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(8, 2, /*seed=*/17);
  DistanceMatrix d(pts, m);
  // Fix vertex 0 and enumerate the remaining permutations.
  std::vector<size_t> perm(pts.size() - 1);
  std::iota(perm.begin(), perm.end(), 1);
  double best = 1e100;
  do {
    std::vector<size_t> tour = {0};
    tour.insert(tour.end(), perm.begin(), perm.end());
    best = std::min(best, TourWeight(d, tour));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(TspWeightExact(d), best, 1e-9);
}

TEST(TspTest, HeuristicVisitsEveryVertexOnce) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(40, 3, /*seed=*/21);
  DistanceMatrix d(pts, m);
  std::vector<size_t> tour = TspTourHeuristic(d);
  ASSERT_EQ(tour.size(), pts.size());
  std::vector<bool> seen(pts.size(), false);
  for (size_t v : tour) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(TspTest, HeuristicWithinTwiceMstAndAboveIt) {
  // Metric guarantees: w(MST) <= w(TSP_opt) <= heuristic <= 2 w(MST).
  EuclideanMetric m;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    PointSet pts = GenerateUniformCube(60, 2, seed);
    DistanceMatrix d(pts, m);
    double mst = MstWeight(d);
    double heur = TspWeightHeuristic(d);
    EXPECT_GE(heur, mst - 1e-9);
    EXPECT_LE(heur, 2.0 * mst + 1e-9);
  }
}

TEST(TspTest, HeuristicCloseToExactOnSmallInstances) {
  EuclideanMetric m;
  for (uint64_t seed : {7u, 8u, 9u}) {
    PointSet pts = GenerateUniformCube(10, 2, seed);
    DistanceMatrix d(pts, m);
    double exact = TspWeightExact(d);
    double heur = TspWeightHeuristic(d);
    EXPECT_GE(heur, exact - 1e-9);
    EXPECT_LE(heur, 1.3 * exact);  // 2-opt is near-optimal at this size
  }
}

TEST(TspTest, AutoDispatch) {
  EuclideanMetric m;
  PointSet small = GenerateUniformCube(9, 2, /*seed=*/31);
  DistanceMatrix ds(small, m);
  EXPECT_DOUBLE_EQ(TspWeightAuto(ds), TspWeightExact(ds));
  PointSet large = GenerateUniformCube(30, 2, /*seed=*/32);
  DistanceMatrix dl(large, m);
  EXPECT_DOUBLE_EQ(TspWeightAuto(dl), TspWeightHeuristic(dl));
}

TEST(TspDeathTest, ExactRejectsLargeInstances) {
  DistanceMatrix d(kTspExactLimit + 1);
  EXPECT_DEATH(TspWeightExact(d), "CHECK failed");
}

}  // namespace
}  // namespace diverse
