#include "data/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/metric.h"

namespace diverse {
namespace {

TEST(SphereDatasetTest, SizesAndLayout) {
  SphereDatasetOptions opts;
  opts.n = 100;
  opts.k = 8;
  opts.dim = 3;
  opts.seed = 1;
  PointSet pts = GenerateSphereDataset(opts);
  ASSERT_EQ(pts.size(), 100u);
  // First k points on the unit sphere surface.
  for (size_t i = 0; i < opts.k; ++i) {
    EXPECT_NEAR(pts[i].norm(), 1.0, 1e-5) << i;
  }
  // Remaining points inside radius 0.8.
  for (size_t i = opts.k; i < pts.size(); ++i) {
    EXPECT_LE(pts[i].norm(), 0.8 + 1e-5) << i;
  }
}

TEST(SphereDatasetTest, SeedDeterminism) {
  SphereDatasetOptions opts;
  opts.n = 50;
  opts.k = 4;
  opts.seed = 9;
  PointSet a = GenerateSphereDataset(opts);
  PointSet b = GenerateSphereDataset(opts);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  opts.seed = 10;
  PointSet c = GenerateSphereDataset(opts);
  EXPECT_FALSE(a[0] == c[0]);
}

TEST(SphereDatasetTest, CustomInnerRadiusAndDim) {
  SphereDatasetOptions opts;
  opts.n = 60;
  opts.k = 2;
  opts.dim = 5;
  opts.inner_radius = 0.5;
  opts.seed = 2;
  PointSet pts = GenerateSphereDataset(opts);
  for (size_t i = opts.k; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].dim(), 5u);
    EXPECT_LE(pts[i].norm(), 0.5 + 1e-5);
  }
}

TEST(SphereStreamTest, MatchesRequestedCountAndDistribution) {
  SphereDatasetOptions opts;
  opts.n = 1000;
  opts.k = 10;
  opts.seed = 3;
  SphereStream stream(opts);
  EXPECT_EQ(stream.size(), 1000u);
  size_t surface = 0, produced = 0;
  while (stream.HasNext()) {
    Point p = stream.Next();
    ++produced;
    if (std::abs(p.norm() - 1.0) < 1e-5) ++surface;
  }
  EXPECT_EQ(produced, 1000u);
  EXPECT_EQ(surface, 10u);  // exactly k planted points, scattered
  EXPECT_FALSE(stream.HasNext());
}

TEST(SphereStreamTest, PlantedPointsAreScattered) {
  SphereDatasetOptions opts;
  opts.n = 10000;
  opts.k = 20;
  opts.seed = 4;
  SphereStream stream(opts);
  size_t idx = 0, first_planted = 0, last_planted = 0;
  while (stream.HasNext()) {
    Point p = stream.Next();
    if (std::abs(p.norm() - 1.0) < 1e-5) {
      if (first_planted == 0) first_planted = idx;
      last_planted = idx;
    }
    ++idx;
  }
  // Not all at the front, and spread over a large portion of the stream.
  EXPECT_GT(last_planted - first_planted, opts.n / 4);
}

TEST(UniformCubeTest, InBounds) {
  PointSet pts = GenerateUniformCube(200, 4, /*seed=*/5);
  ASSERT_EQ(pts.size(), 200u);
  for (const Point& p : pts) {
    ASSERT_EQ(p.dim(), 4u);
    for (float v : p.dense_values()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LT(v, 1.0f);
    }
  }
}

TEST(GaussianBlobsTest, ClustersAreTight) {
  EuclideanMetric m;
  PointSet pts = GenerateGaussianBlobs(300, 3, 2, 0.01, /*seed=*/6);
  ASSERT_EQ(pts.size(), 300u);
  // Points i, i+3, i+6 ... share a blob: intra-blob distances are small.
  for (size_t i = 0; i + 3 < 30; ++i) {
    EXPECT_LT(m.Distance(pts[i], pts[i + 3]), 0.2);
  }
}

TEST(RandomSphereBallTest, RadiiAreRespected) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    Point s = RandomSpherePoint(rng, 3, 2.5);
    EXPECT_NEAR(s.norm(), 2.5, 1e-5);
    Point b = RandomBallPoint(rng, 3, 2.5);
    EXPECT_LE(b.norm(), 2.5 + 1e-5);
  }
}

TEST(RandomBallTest, FillsTheVolumeNotJustTheShell) {
  // In a uniform ball in 3d, P(r < R/2) = 1/8; check we see interior points.
  Rng rng(8);
  int inner = 0;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    if (RandomBallPoint(rng, 3, 1.0).norm() < 0.5) ++inner;
  }
  EXPECT_NEAR(inner, kDraws / 8, kDraws / 20);
}

TEST(SphereDatasetDeathTest, RejectsKBeyondN) {
  SphereDatasetOptions opts;
  opts.n = 5;
  opts.k = 6;
  EXPECT_DEATH(GenerateSphereDataset(opts), "CHECK failed");
}

}  // namespace
}  // namespace diverse
