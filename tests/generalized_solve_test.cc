// Focused tests for the multiplicity-aware sequential solver (Fact 2
// adaptation): budget feasibility, coherence, replica avoidance, and the
// unit-move post-pass that keeps the multiset solution competitive with
// solving on distinct kernels.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/generalized_coreset.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace diverse {
namespace {

constexpr DiversityProblem kInjective[] = {
    DiversityProblem::kRemoteClique, DiversityProblem::kRemoteStar,
    DiversityProblem::kRemoteBipartition, DiversityProblem::kRemoteTree};

GeneralizedCoreset RandomCoreset(size_t entries, size_t max_mult,
                                 uint64_t seed) {
  Rng rng(seed);
  PointSet pts = GenerateUniformCube(entries, 2, seed);
  GeneralizedCoreset gc;
  for (size_t i = 0; i < entries; ++i) {
    gc.Add(pts[i], 1 + rng.NextBounded(max_mult));
  }
  return gc;
}

class GeneralizedSolveTest : public ::testing::TestWithParam<DiversityProblem> {
};

TEST_P(GeneralizedSolveTest, CoherentAndExactlyK) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    GeneralizedCoreset gc = RandomCoreset(12, 4, seed * 61);
    for (size_t k = 2; k <= std::min<size_t>(10, gc.ExpandedSize()); k += 2) {
      GeneralizedCoreset sel =
          SolveSequentialGeneralized(GetParam(), gc, m, k);
      EXPECT_EQ(sel.ExpandedSize(), k);
      EXPECT_TRUE(sel.IsCoherentSubsetOf(gc));
    }
  }
}

TEST_P(GeneralizedSolveTest, NeverExceedsPerEntryBudget) {
  EuclideanMetric m;
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(0, 0), 2);
  gc.Add(Point::Dense2(9, 0), 1);
  gc.Add(Point::Dense2(0, 9), 1);
  GeneralizedCoreset sel = SolveSequentialGeneralized(GetParam(), gc, m, 4);
  EXPECT_EQ(sel.ExpandedSize(), 4u);
  for (const WeightedPoint& e : sel.entries()) {
    if (e.point == Point::Dense2(0, 0)) {
      EXPECT_LE(e.multiplicity, 2u);
    }
    if (e.point == Point::Dense2(9, 0)) {
      EXPECT_LE(e.multiplicity, 1u);
    }
  }
}

TEST_P(GeneralizedSolveTest, MatchesDistinctSolveWhenAllMultiplicitiesOne) {
  // With all multiplicities 1 the multiset problem IS the plain problem;
  // the generalized solver must achieve at least the plain solver's value.
  DiversityProblem problem = GetParam();
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PointSet pts = GenerateUniformCube(15, 2, seed * 71);
    GeneralizedCoreset gc;
    for (const Point& p : pts) gc.Add(p, 1);
    size_t k = 5;
    GeneralizedCoreset sel = SolveSequentialGeneralized(problem, gc, m, k);
    double gen = EvaluateGeneralizedDiversity(problem, sel, m);

    DistanceMatrix d(pts, m);
    std::vector<size_t> plain = SolveSequentialOnMatrix(problem, d, k);
    double plain_div = EvaluateDiversity(problem, d.Restrict(plain));
    EXPECT_GE(gen + 1e-9, plain_div)
        << ProblemName(problem) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Injective, GeneralizedSolveTest, ::testing::ValuesIn(kInjective),
    [](const ::testing::TestParamInfo<DiversityProblem>& info) {
      std::string name = ProblemName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(GeneralizedSolveTest, UnitMovePostPassBeatsDegenerateMatching) {
  // Degenerate case for naive multiset matching: the globally heaviest pair
  // has large multiplicities, so pair-greedy selects its replicas over and
  // over (8 units on 2 kernels, multiset value 16 * 70 = 1120), while
  // spreading over the 12 circle kernels of radius 200 scores several times
  // more (28 pairs averaging ~250). The unit-move post-pass must escape the
  // replica trap.
  EuclideanMetric m;
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(-35, 0), 8);
  gc.Add(Point::Dense2(35, 0), 8);
  for (int i = 0; i < 12; ++i) {
    double angle = 2.0 * M_PI * i / 12.0;
    gc.Add(Point::Dense2(static_cast<float>(200.0 * std::cos(angle)),
                         static_cast<float>(200.0 * std::sin(angle))),
           1);
  }
  size_t k = 8;
  GeneralizedCoreset sel = SolveSequentialGeneralized(
      DiversityProblem::kRemoteClique, gc, m, k);
  size_t distinct = sel.size();
  EXPECT_GE(distinct, 6u);
  double gen =
      EvaluateGeneralizedDiversity(DiversityProblem::kRemoteClique, sel, m);
  EXPECT_GT(gen, 4000.0);
}

TEST(GeneralizedSolveTest, ForcedReplicasWhenKernelsScarce) {
  EuclideanMetric m;
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(0, 0), 3);
  gc.Add(Point::Dense2(5, 0), 3);
  GeneralizedCoreset sel = SolveSequentialGeneralized(
      DiversityProblem::kRemoteClique, gc, m, 5);
  EXPECT_EQ(sel.ExpandedSize(), 5u);
  EXPECT_EQ(sel.size(), 2u);  // both kernels used, with replicas
}

TEST(GeneralizedSolveDeathTest, RequiresEnoughExpandedMass) {
  EuclideanMetric m;
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(0, 0), 2);
  EXPECT_DEATH(SolveSequentialGeneralized(DiversityProblem::kRemoteClique,
                                          gc, m, 3),
               "CHECK failed");
}

}  // namespace
}  // namespace diverse
