#include "core/gmm.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/distance_matrix.h"
#include "core/exact.h"
#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(GmmTest, SelectsRequestedCount) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(50, 2, /*seed=*/1);
  GmmResult r = Gmm(pts, m, 7);
  EXPECT_EQ(r.selected.size(), 7u);
  std::set<size_t> unique(r.selected.begin(), r.selected.end());
  EXPECT_EQ(unique.size(), 7u);
}

TEST(GmmTest, FirstPointIsStart) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(20, 2, /*seed=*/2);
  GmmResult r = Gmm(pts, m, 3, /*first=*/5);
  EXPECT_EQ(r.selected[0], 5u);
}

TEST(GmmTest, SelectionDistancesNonIncreasing) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(100, 3, /*seed=*/3);
  GmmResult r = Gmm(pts, m, 20);
  for (size_t j = 2; j < r.selection_distance.size(); ++j) {
    EXPECT_LE(r.selection_distance[j], r.selection_distance[j - 1] + 1e-12);
  }
}

TEST(GmmTest, RangeMatchesDirectComputation) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(60, 2, /*seed=*/4);
  GmmResult r = Gmm(pts, m, 8);
  double range = 0.0;
  for (const Point& p : pts) {
    double dist = 1e100;
    for (size_t c : r.selected) {
      dist = std::min(dist, m.Distance(p, pts[c]));
    }
    range = std::max(range, dist);
  }
  EXPECT_NEAR(r.range, range, 1e-12);
}

TEST(GmmTest, AssignmentIsNearestCenterWithEarliestTieBreak) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(40, 2, /*seed=*/5);
  GmmResult r = Gmm(pts, m, 6);
  for (size_t i = 0; i < pts.size(); ++i) {
    double best = 1e100;
    size_t best_j = 0;
    for (size_t j = 0; j < r.selected.size(); ++j) {
      double dist = m.Distance(pts[i], pts[r.selected[j]]);
      if (dist < best - 1e-15) {
        best = dist;
        best_j = j;
      }
    }
    EXPECT_EQ(r.assignment[i], best_j) << "point " << i;
    EXPECT_NEAR(r.distance_to_selected[i], best, 1e-12);
  }
}

// Anticover property (basis of Fact 1): the range of the selected set is at
// most its farness: r_T <= rho_T.
TEST(GmmTest, AnticoverProperty) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PointSet pts = GenerateUniformCube(50, 2, seed);
    GmmResult r = Gmm(pts, m, 5);
    double rho = Farness(pts, m, r.selected);
    EXPECT_LE(r.range, rho + 1e-9) << "seed " << seed;
  }
}

// GMM is a 2-approximation for the k-center problem: r_T <= 2 r*_k.
TEST(GmmTest, KCenterTwoApproximation) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PointSet pts = GenerateUniformCube(14, 2, seed * 13);
    DistanceMatrix d(pts, m);
    for (size_t k = 2; k <= 5; ++k) {
      GmmResult r = Gmm(pts, m, k);
      double opt = ExactOptimalRange(d, k);
      EXPECT_LE(r.range, 2.0 * opt + 1e-9)
          << "seed " << seed << " k " << k;
    }
  }
}

// GMM's k-prefix is a 2-approximation for remote-edge: rho_T >= rho*_k / 2.
TEST(GmmTest, RemoteEdgeTwoApproximation) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PointSet pts = GenerateUniformCube(14, 2, seed * 7);
    DistanceMatrix d(pts, m);
    for (size_t k = 2; k <= 5; ++k) {
      GmmResult r = Gmm(pts, m, k);
      double rho = Farness(pts, m, r.selected);
      double opt = ExactOptimalFarness(d, k);
      EXPECT_GE(rho, opt / 2.0 - 1e-9) << "seed " << seed << " k " << k;
    }
  }
}

// Fact 1: r*_k <= rho*_k.
TEST(GmmTest, Fact1OptimalRangeAtMostOptimalFarness) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    PointSet pts = GenerateUniformCube(12, 2, seed * 31);
    DistanceMatrix d(pts, m);
    for (size_t k = 2; k <= 5; ++k) {
      EXPECT_LE(ExactOptimalRange(d, k), ExactOptimalFarness(d, k) + 1e-12)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(GmmTest, PlantedSphereRecoversFarPoints) {
  // The k planted surface points are pairwise far; GMM with k' = k must
  // achieve farness comparable to the planted separation.
  EuclideanMetric m;
  SphereDatasetOptions opts;
  opts.n = 2000;
  opts.k = 8;
  opts.seed = 123;
  PointSet pts = GenerateSphereDataset(opts);
  GmmResult r = Gmm(pts, m, opts.k);
  // Every selected point should be (nearly) on the outer shell: the planted
  // points dominate all inner points in farthest-first order.
  double planted_farness = Farness(pts, m, r.selected);
  EXPECT_GT(planted_farness, 0.4);  // far larger than typical inner gaps
}

TEST(GmmTest, WorksWithKEqualN) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(10, 2, /*seed=*/6);
  GmmResult r = Gmm(pts, m, 10);
  EXPECT_EQ(r.selected.size(), 10u);
  EXPECT_NEAR(r.range, 0.0, 1e-12);
}

TEST(GmmTest, SingleCenter) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(10, 2, /*seed=*/7);
  GmmResult r = Gmm(pts, m, 1);
  EXPECT_EQ(r.selected.size(), 1u);
  EXPECT_GT(r.range, 0.0);
}

TEST(GmmDeathTest, RejectsKZero) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(5, 2, /*seed=*/8);
  EXPECT_DEATH(Gmm(pts, m, 0), "CHECK failed");
}

TEST(GmmDeathTest, RejectsKBeyondN) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(5, 2, /*seed=*/9);
  EXPECT_DEATH(Gmm(pts, m, 6), "CHECK failed");
}

}  // namespace
}  // namespace diverse
