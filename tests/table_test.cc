#include "util/table.h"

#include <gtest/gtest.h>

namespace diverse {
namespace {

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FmtDouble) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 3), "1.235");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 1), "2.0");
}

TEST(TablePrinterTest, FmtInt) {
  EXPECT_EQ(TablePrinter::Fmt(42ll), "42");
  EXPECT_EQ(TablePrinter::Fmt(-7ll), "-7");
}

TEST(TablePrinterDeathTest, RowWidthMismatch) {
  TablePrinter t({"only"});
  EXPECT_DEATH(t.AddRow({"a", "b"}), "CHECK failed");
}

}  // namespace
}  // namespace diverse
