// Deep invariants of the SMM phase machinery across metrics and stream
// shapes — the properties the correctness proofs of Section 4 rest on:
// threshold monotonicity, center separation, coverage, and the bounded
// memory the theorems charge for.

#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "streaming/smm.h"
#include "util/rng.h"

namespace diverse {
namespace {

struct StreamCase {
  std::string name;
  std::shared_ptr<const Metric> metric;
  PointSet stream;
};

std::vector<StreamCase> MakeStreams() {
  std::vector<StreamCase> cases;
  cases.push_back({"euclidean_cube", std::make_shared<EuclideanMetric>(),
                   GenerateUniformCube(2000, 2, 51)});
  {
    SphereDatasetOptions o;
    o.n = 2000;
    o.k = 8;
    o.seed = 52;
    cases.push_back({"euclidean_sphere", std::make_shared<EuclideanMetric>(),
                     GenerateSphereDataset(o)});
  }
  {
    SparseTextOptions o;
    o.n = 1500;
    o.vocab_size = 400;
    o.num_topics = 8;
    o.seed = 53;
    cases.push_back({"cosine_text", std::make_shared<CosineMetric>(),
                     GenerateSparseTextDataset(o)});
    cases.push_back({"jaccard_text", std::make_shared<JaccardMetric>(),
                     GenerateSparseTextDataset(o)});
  }
  cases.push_back({"manhattan_blobs", std::make_shared<ManhattanMetric>(),
                   GenerateGaussianBlobs(1800, 12, 3, 0.05, 54)});
  return cases;
}

class SmmInvariantsTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(SmmInvariantsTest, ThresholdNeverDecreases) {
  const auto& c = GetParam();
  Smm smm(c.metric.get(), 8, 16);
  double last = 0.0;
  for (const Point& p : c.stream) {
    smm.Update(p);
    double t = smm.engine().threshold();
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST_P(SmmInvariantsTest, CoverageHoldsThroughoutTheStream) {
  // Check the coverage invariant at several prefixes, not just the end.
  const auto& c = GetParam();
  Smm smm(c.metric.get(), 8, 16);
  size_t checkpoint = c.stream.size() / 4;
  for (size_t i = 0; i < c.stream.size(); ++i) {
    smm.Update(c.stream[i]);
    if ((i + 1) % checkpoint == 0) {
      PointSet centers = smm.engine().Centers();
      double bound = smm.engine().CoverageRadiusBound();
      for (size_t j = 0; j <= i; ++j) {
        double dist = 1e100;
        for (const Point& center : centers) {
          dist = std::min(dist, c.metric->Distance(c.stream[j], center));
        }
        ASSERT_LE(dist, bound + 1e-9)
            << c.name << " prefix " << i << " point " << j;
      }
    }
  }
}

TEST_P(SmmInvariantsTest, SeparationHoldsThroughoutTheStream) {
  const auto& c = GetParam();
  Smm smm(c.metric.get(), 8, 16);
  size_t checkpoint = c.stream.size() / 4;
  for (size_t i = 0; i < c.stream.size(); ++i) {
    smm.Update(c.stream[i]);
    if ((i + 1) % checkpoint == 0) {
      PointSet centers = smm.engine().Centers();
      double d_i = smm.engine().threshold();
      for (size_t a = 0; a < centers.size(); ++a) {
        for (size_t b = a + 1; b < centers.size(); ++b) {
          ASSERT_GT(c.metric->Distance(centers[a], centers[b]), d_i - 1e-9)
              << c.name << " prefix " << i;
        }
      }
    }
  }
}

TEST_P(SmmInvariantsTest, ExtMemoryWithinTheoremTwoBudget) {
  const auto& c = GetParam();
  size_t k = 6, k_prime = 12;
  SmmExt smm(c.metric.get(), k, k_prime);
  size_t peak = 0;
  for (const Point& p : c.stream) {
    smm.Update(p);
    peak = std::max(peak, smm.engine().StoredPoints());
  }
  EXPECT_LE(peak, (k_prime + 1) * k) << c.name;
  PointSet coreset = smm.Finalize();
  EXPECT_GE(coreset.size(), std::min(c.stream.size(), k)) << c.name;
}

TEST_P(SmmInvariantsTest, GenExpandedSizeMatchesExtDelegateCount) {
  const auto& c = GetParam();
  SmmExt ext(c.metric.get(), 5, 10);
  SmmGen gen(c.metric.get(), 5, 10);
  for (const Point& p : c.stream) {
    ext.Update(p);
    gen.Update(p);
  }
  EXPECT_EQ(ext.Finalize().size(), gen.Finalize().ExpandedSize()) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllStreams, SmmInvariantsTest, ::testing::ValuesIn(MakeStreams()),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      return info.param.name;
    });

TEST(SmmStressTest, AdversarialGrowingScaleStream) {
  // Exponentially growing coordinates force maximal threshold churn; the
  // memory bound and coverage must survive.
  EuclideanMetric m;
  size_t k = 4, k_prime = 8;
  Smm smm(&m, k, k_prime);
  Rng rng(55);
  PointSet stream;
  for (int i = 0; i < 3000; ++i) {
    double scale = std::pow(1.01, i);
    stream.push_back(
        Point::Dense2(static_cast<float>(scale * rng.NextDouble()),
                      static_cast<float>(scale * rng.NextDouble())));
  }
  size_t peak = 0;
  for (const Point& p : stream) {
    smm.Update(p);
    peak = std::max(peak, smm.engine().StoredPoints());
  }
  EXPECT_LE(peak, 2 * (k_prime + 1));
  PointSet centers = smm.engine().Centers();
  double bound = smm.engine().CoverageRadiusBound();
  for (const Point& p : stream) {
    double dist = 1e100;
    for (const Point& c : centers) dist = std::min(dist, m.Distance(p, c));
    ASSERT_LE(dist, bound + 1e-6);
  }
}

TEST(SmmStressTest, DecreasingScaleStream) {
  // The reverse: huge scales first, then fine detail. The doubling
  // algorithm cannot refine past its committed threshold (one-pass
  // limitation) but must remain covered and bounded.
  EuclideanMetric m;
  Smm smm(&m, 4, 8);
  Rng rng(56);
  PointSet stream;
  for (int i = 0; i < 3000; ++i) {
    double scale = std::pow(1.01, 3000 - i);
    stream.push_back(
        Point::Dense2(static_cast<float>(scale * rng.NextDouble()),
                      static_cast<float>(scale * rng.NextDouble())));
  }
  for (const Point& p : stream) smm.Update(p);
  PointSet centers = smm.engine().Centers();
  double bound = smm.engine().CoverageRadiusBound();
  for (const Point& p : stream) {
    double dist = 1e100;
    for (const Point& c : centers) dist = std::min(dist, m.Distance(p, c));
    ASSERT_LE(dist, bound + 1e-6);
  }
}

}  // namespace
}  // namespace diverse
