#include "core/distance_matrix.h"

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(DistanceMatrixTest, ZeroInitialized) {
  DistanceMatrix d(3);
  EXPECT_EQ(d.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(d.at(i, j), 0.0);
  }
}

TEST(DistanceMatrixTest, SetIsSymmetric) {
  DistanceMatrix d(2);
  d.set(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 5.0);
}

TEST(DistanceMatrixTest, FromPoints) {
  EuclideanMetric m;
  PointSet pts = {Point::Dense2(0, 0), Point::Dense2(3, 4),
                  Point::Dense2(0, 8)};
  DistanceMatrix d(pts, m);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 8.0);
  EXPECT_DOUBLE_EQ(d.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(d.at(2, 2), 0.0);
}

TEST(DistanceMatrixTest, Restrict) {
  DistanceMatrix d(4);
  d.set(1, 3, 2.5);
  d.set(1, 2, 1.0);
  std::vector<size_t> subset = {1, 3};
  DistanceMatrix r = d.Restrict(subset);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 2.5);
}

TEST(DistanceMatrixTest, TriangleInequalityHoldsForEuclidean) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(12, 3, /*seed=*/5);
  DistanceMatrix d(pts, m);
  EXPECT_TRUE(d.SatisfiesTriangleInequality());
}

TEST(DistanceMatrixTest, TriangleInequalityDetectsViolation) {
  DistanceMatrix d(3);
  d.set(0, 1, 10.0);
  d.set(0, 2, 1.0);
  d.set(1, 2, 1.0);
  EXPECT_FALSE(d.SatisfiesTriangleInequality());
}

TEST(DistanceMatrixDeathTest, SetRejectsNegative) {
  DistanceMatrix d(2);
  EXPECT_DEATH(d.set(0, 1, -1.0), "CHECK failed");
}

TEST(DistanceMatrixDeathTest, SetRejectsOutOfRange) {
  DistanceMatrix d(2);
  EXPECT_DEATH(d.set(0, 2, 1.0), "CHECK failed");
}

}  // namespace
}  // namespace diverse
