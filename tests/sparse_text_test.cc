#include "data/sparse_text.h"

#include <set>

#include <gtest/gtest.h>

#include "core/metric.h"

namespace diverse {
namespace {

SparseTextOptions SmallCorpus(uint64_t seed) {
  SparseTextOptions o;
  o.n = 200;
  o.vocab_size = 500;
  o.min_terms = 10;
  o.max_terms = 60;
  o.num_topics = 8;
  o.seed = seed;
  return o;
}

TEST(SparseTextTest, BasicShape) {
  PointSet docs = GenerateSparseTextDataset(SmallCorpus(1));
  ASSERT_EQ(docs.size(), 200u);
  for (const Point& d : docs) {
    EXPECT_TRUE(d.is_sparse());
    EXPECT_EQ(d.dim(), 500u);
    EXPECT_GE(d.nnz(), 10u);
    EXPECT_LE(d.nnz(), 60u);
    for (float v : d.sparse_values()) EXPECT_GE(v, 1.0f);
  }
}

TEST(SparseTextTest, SeedDeterminism) {
  PointSet a = GenerateSparseTextDataset(SmallCorpus(2));
  PointSet b = GenerateSparseTextDataset(SmallCorpus(2));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(SparseTextTest, ZipfMakesLowTermsFrequent) {
  SparseTextOptions o = SmallCorpus(3);
  o.num_topics = 0;  // pure background draws
  o.n = 500;
  PointSet docs = GenerateSparseTextDataset(o);
  size_t low = 0, high = 0;
  for (const Point& d : docs) {
    for (uint32_t idx : d.sparse_indices()) {
      if (idx < 50) ++low;
      if (idx >= 450) ++high;
    }
  }
  EXPECT_GT(low, 5 * high);  // head terms dominate tail terms
}

TEST(SparseTextTest, TopicsCreateFarApartDocuments) {
  CosineMetric m;
  PointSet docs = GenerateSparseTextDataset(SmallCorpus(4));
  // There must exist pairs of documents nearly orthogonal (different
  // topics): distance close to pi/2.
  double max_dist = 0.0;
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = i + 1; j < 50; ++j) {
      max_dist = std::max(max_dist, m.Distance(docs[i], docs[j]));
    }
  }
  EXPECT_GT(max_dist, 1.2);  // close to pi/2 ~ 1.5708
}

TEST(SparseTextTest, MinTermsFilterHolds) {
  SparseTextOptions o = SmallCorpus(5);
  o.min_terms = 25;
  o.max_terms = 40;
  PointSet docs = GenerateSparseTextDataset(o);
  for (const Point& d : docs) {
    EXPECT_GE(d.nnz(), 25u);
    EXPECT_LE(d.nnz(), 40u);
  }
}

TEST(SparseTextTest, NoTopicsStillWorks) {
  SparseTextOptions o = SmallCorpus(6);
  o.num_topics = 0;
  PointSet docs = GenerateSparseTextDataset(o);
  EXPECT_EQ(docs.size(), o.n);
}

TEST(SparseTextTest, IndicesAreSortedAndInRange) {
  PointSet docs = GenerateSparseTextDataset(SmallCorpus(7));
  for (const Point& d : docs) {
    const auto& idx = d.sparse_indices();
    for (size_t i = 0; i + 1 < idx.size(); ++i) {
      EXPECT_LT(idx[i], idx[i + 1]);
    }
    if (!idx.empty()) {
      EXPECT_LT(idx.back(), 500u);
    }
  }
}

}  // namespace
}  // namespace diverse
