// Equivalence, accounting, and determinism tests for the blocked
// many-vs-many tile kernels (Metric::DistanceTile / RelaxTilesAndArgFarthest)
// and their consumers:
//   * a Q x R tile equals per-query DistanceToMany for all four metrics on
//     dense, sparse, and mixed layouts — bit-exact where the scalar merge
//     kernel is shared (any sparse side), and within 1e-9 relative error on
//     the dense SIMD lane path (which is in fact bit-exact by construction:
//     the lane kernels replay the scalar operation sequence per lane);
//   * odd tile edges: Q and R not multiples of the lane width, nonzero
//     offsets, strided output;
//   * CountingMetric adds exactly nq * nr per tile;
//   * RelaxTilesAndArgFarthest reproduces the per-center RelaxAndArgFarthest
//     sweep sequence exactly (dist, assignment, argmax) at 1/2/8 threads;
//   * the tiled DistanceMatrix build matches the scalar per-pair build and
//     costs exactly n(n-1)/2 evaluations;
//   * GreedyMatchingOnDataset refill scans run on the compacted live rows
//     only: no used row's distance is ever recomputed.

#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/distance_matrix.h"
#include "core/kcenter.h"
#include "core/metric.h"
#include "core/screen.h"
#include "core/sequential.h"
#include "core/vector_kernels.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace diverse {
namespace {

PointSet DensePoints(size_t n, size_t dim, uint64_t seed) {
  return GenerateUniformCube(n, dim, seed);
}

PointSet SparsePoints(size_t n, uint64_t seed) {
  SparseTextOptions opts;
  opts.n = n;
  opts.vocab_size = 200;
  opts.seed = seed;
  return GenerateSparseTextDataset(opts);
}

PointSet MixedPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  for (size_t i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      std::vector<float> values(dim);
      for (float& v : values) v = static_cast<float>(rng.NextDouble());
      pts.push_back(Point::Dense(std::move(values)));
    } else {
      std::vector<uint32_t> indices;
      std::vector<float> values;
      for (uint32_t j = 0; j < dim; ++j) {
        if (rng.NextDouble() < 0.4) {
          indices.push_back(j);
          values.push_back(static_cast<float>(rng.NextDouble()));
        }
      }
      pts.push_back(Point::Sparse(std::move(indices), std::move(values),
                                  static_cast<uint32_t>(dim)));
    }
  }
  return pts;
}

std::vector<std::unique_ptr<Metric>> AllMetrics() {
  std::vector<std::unique_ptr<Metric>> metrics;
  metrics.push_back(std::make_unique<EuclideanMetric>());
  metrics.push_back(std::make_unique<ManhattanMetric>());
  metrics.push_back(std::make_unique<CosineMetric>());
  metrics.push_back(std::make_unique<JaccardMetric>());
  return metrics;
}

struct NamedLayout {
  const char* name;
  PointSet pts;
};

std::vector<NamedLayout> AllLayouts() {
  std::vector<NamedLayout> layouts;
  layouts.push_back({"dense", DensePoints(83, 6, /*seed=*/101)});
  layouts.push_back({"sparse", SparsePoints(83, /*seed=*/102)});
  layouts.push_back({"mixed", MixedPoints(83, 12, /*seed=*/103)});
  return layouts;
}

// Expects tile entry == reference, bit-exact when either side of the pair is
// sparse (shared scalar merge kernel), and within 1e-9 relative error on the
// dense-dense SIMD lane path.
void ExpectTileEntry(double got, double want, bool dense_pair,
                     const std::string& context) {
  if (!dense_pair) {
    EXPECT_EQ(got, want) << context;
    return;
  }
  double tol = 1e-9 * std::max(1.0, std::abs(want));
  EXPECT_NEAR(got, want, tol) << context;
}

TEST(TileKernelTest, TileMatchesPerQuerySweepsAllMetricsAllLayouts) {
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    size_t n = data.size();
    // Odd edges: neither 13 nor 37 is a multiple of the 8-lane block, and
    // both begin offsets are nonzero.
    size_t q_begin = 5, nq = 13;
    size_t r_begin = 2, nr = 37;
    for (const auto& metric : AllMetrics()) {
      std::vector<double> tile(nq * nr, -1.0);
      metric->DistanceTile(data, q_begin, nq, data, r_begin, nr, tile.data(),
                           nr);
      std::vector<double> ref(n);
      for (size_t q = 0; q < nq; ++q) {
        metric->DistanceToMany(data.point(q_begin + q), data, 0, ref);
        for (size_t r = 0; r < nr; ++r) {
          bool dense_pair = !data.row_is_sparse(q_begin + q) &&
                            !data.row_is_sparse(r_begin + r);
          ExpectTileEntry(tile[q * nr + r], ref[r_begin + r], dense_pair,
                          metric->Name() + "/" + layout.name + " q=" +
                              std::to_string(q) + " r=" + std::to_string(r));
        }
      }
    }
  }
}

TEST(TileKernelTest, TileHonorsOutputStride) {
  PointSet pts = DensePoints(40, 5, /*seed=*/104);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric metric;
  size_t nq = 7, nr = 9, stride = 23;
  std::vector<double> out(nq * stride, -7.0);
  metric.DistanceTile(data, 1, nq, data, 11, nr, out.data(), stride);
  for (size_t q = 0; q < nq; ++q) {
    for (size_t c = 0; c < stride; ++c) {
      if (c < nr) {
        EXPECT_EQ(out[q * stride + c],
                  metric.Distance(pts[1 + q], pts[11 + c]));
      } else {
        EXPECT_EQ(out[q * stride + c], -7.0) << "stride padding clobbered";
      }
    }
  }
}

TEST(TileKernelTest, TileIdenticalAtAnyThreadCount) {
  PointSet pts = DensePoints(500, 4, /*seed=*/105);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric metric;
  size_t nq = 20, nr = 400;
  std::vector<std::vector<double>> results;
  for (size_t threads : {1u, 2u, 8u}) {
    SetGlobalThreadPoolSize(threads);
    std::vector<double> tile(nq * nr);
    metric.DistanceTile(data, 0, nq, data, 50, nr, tile.data(), nr);
    results.push_back(std::move(tile));
  }
  SetGlobalThreadPoolSize(1);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(TileKernelTest, BaseClassFallbackMatchesScalarDistance) {
  // A metric that overrides nothing exercises the Metric::DistanceTile
  // scalar fallback.
  class HammingLike final : public Metric {
   public:
    double Distance(const Point& a, const Point& b) const override {
      return a == b ? 0.0 : 1.0;
    }
    std::string Name() const override { return "discrete"; }
  };
  PointSet pts = DensePoints(30, 3, /*seed=*/106);
  pts[7] = pts[3];  // one duplicate pair
  Dataset data = Dataset::FromPoints(pts);
  HammingLike metric;
  std::vector<double> tile(6 * 10);
  metric.DistanceTile(data, 2, 6, data, 5, 10, tile.data(), 10);
  for (size_t q = 0; q < 6; ++q) {
    for (size_t r = 0; r < 10; ++r) {
      EXPECT_EQ(tile[q * 10 + r], metric.Distance(pts[2 + q], pts[5 + r]));
    }
  }
}

TEST(TileKernelTest, CountingMetricCountsTilesExactly) {
  PointSet pts = DensePoints(60, 4, /*seed=*/107);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric base;
  CountingMetric counting(&base);

  std::vector<double> tile(11 * 17);
  counting.DistanceTile(data, 3, 11, data, 20, 17, tile.data(), 17);
  EXPECT_EQ(counting.count(), 11u * 17u);

  counting.Reset();
  std::vector<double> dist(data.size(),
                           std::numeric_limits<double>::infinity());
  RelaxTilesAndArgFarthest(counting, data, 0, 9, 0, data, dist);
  EXPECT_EQ(counting.count(), 9u * data.size());
}

TEST(TileKernelTest, RelaxTilesMatchesPerCenterSweepsAllMetricsAllLayouts) {
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    size_t n = data.size();
    // Centers: a scattered, non-contiguous selection appended to its own
    // Dataset, as the k-center consumers build it.
    std::vector<size_t> centers = {4, 0, 17, 33, 9, 61, 25, 48, 70, 13, 57};
    Dataset center_rows;
    for (size_t c : centers) center_rows.Append(data.point(c));
    for (const auto& metric : AllMetrics()) {
      std::vector<double> dist(n, std::numeric_limits<double>::infinity());
      std::vector<size_t> assignment(n, 0);
      size_t got = RelaxTilesAndArgFarthest(*metric, center_rows, 0,
                                            centers.size(), 0, data, dist,
                                            assignment);
      std::vector<double> ref_dist(n,
                                   std::numeric_limits<double>::infinity());
      std::vector<size_t> ref_assignment(n, 0);
      size_t want = 0;
      for (size_t c = 0; c < centers.size(); ++c) {
        want = metric->RelaxAndArgFarthest(data.point(centers[c]), data,
                                           ref_dist, ref_assignment, c);
      }
      EXPECT_EQ(got, want) << metric->Name() << "/" << layout.name;
      EXPECT_EQ(assignment, ref_assignment)
          << metric->Name() << "/" << layout.name;
      for (size_t i = 0; i < n; ++i) {
        bool dense_path = !data.row_is_sparse(i);
        ExpectTileEntry(dist[i], ref_dist[i], dense_path,
                        metric->Name() + std::string("/") + layout.name +
                            " row " + std::to_string(i));
      }
    }
  }
}

TEST(TileKernelTest, RelaxTilesDeterministicAtAnyThreadCount) {
  PointSet pts = DensePoints(20000, 4, /*seed=*/108);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric metric;
  Dataset center_rows;
  for (size_t c = 0; c < 30; ++c) center_rows.Append(data.point(c * 613));

  std::vector<double> base_dist;
  std::vector<size_t> base_assignment;
  size_t base_far = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    SetGlobalThreadPoolSize(threads);
    std::vector<double> dist(data.size(),
                             std::numeric_limits<double>::infinity());
    std::vector<size_t> assignment(data.size(), 0);
    size_t far = RelaxTilesAndArgFarthest(metric, center_rows, 0,
                                          center_rows.size(), 0, data, dist,
                                          assignment);
    if (threads == 1u) {
      base_dist = std::move(dist);
      base_assignment = std::move(assignment);
      base_far = far;
    } else {
      EXPECT_EQ(far, base_far) << threads << " threads";
      EXPECT_EQ(dist, base_dist) << threads << " threads";
      EXPECT_EQ(assignment, base_assignment) << threads << " threads";
    }
  }
  SetGlobalThreadPoolSize(1);
}

TEST(TileKernelTest, KCenterDoublingAssignmentUnchangedByTiles) {
  PointSet pts = DensePoints(800, 3, /*seed=*/109);
  EuclideanMetric metric;
  KCenterResult result = SolveKCenterDoubling(pts, metric, 12);
  // Reference: scalar nearest-center assignment.
  for (size_t i = 0; i < pts.size(); ++i) {
    size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < result.centers.size(); ++c) {
      double d = metric.Distance(pts[i], pts[result.centers[c]]);
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    EXPECT_EQ(result.assignment[i], best) << "point " << i;
  }
}

TEST(TileKernelTest, DistanceMatrixTiledMatchesScalarAllMetricsAllLayouts) {
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    size_t n = data.size();
    for (const auto& metric : AllMetrics()) {
      DistanceMatrix tiled(data, *metric);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(tiled.at(i, i), 0.0);
        for (size_t j = i + 1; j < n; ++j) {
          bool dense_pair =
              !data.row_is_sparse(i) && !data.row_is_sparse(j);
          double want = metric->Distance(layout.pts[i], layout.pts[j]);
          ExpectTileEntry(tiled.at(i, j), want, dense_pair,
                          metric->Name() + std::string("/") + layout.name);
          EXPECT_EQ(tiled.at(i, j), tiled.at(j, i));
        }
      }
    }
  }
}

TEST(TileKernelTest, DistanceMatrixBuildCostsExactlyAllPairs) {
  // Span a few block boundaries (block size 128): n = 300 has diagonal and
  // off-diagonal blocks plus ragged edges.
  PointSet pts = DensePoints(300, 3, /*seed=*/110);
  EuclideanMetric base;
  CountingMetric counting(&base);
  Dataset data = Dataset::FromPoints(pts);
  DistanceMatrix d(data, counting);
  EXPECT_EQ(counting.count(), pts.size() * (pts.size() - 1) / 2);
  // And the span constructor's tiled path agrees with it entry for entry.
  DistanceMatrix from_span(std::span<const Point>(pts), base);
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = 0; j < pts.size(); ++j) {
      EXPECT_EQ(d.at(i, j), from_span.at(i, j));
    }
  }
}

TEST(TileKernelTest, DistanceMatrixDeterministicAtAnyThreadCount) {
  PointSet pts = MixedPoints(280, 10, /*seed=*/111);
  Dataset data = Dataset::FromPoints(pts);
  CosineMetric metric;
  SetGlobalThreadPoolSize(1);
  DistanceMatrix one(data, metric);
  SetGlobalThreadPoolSize(8);
  DistanceMatrix eight(data, metric);
  SetGlobalThreadPoolSize(1);
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = 0; j < pts.size(); ++j) {
      EXPECT_EQ(one.at(i, j), eight.at(i, j));
    }
  }
}

// A hub far from a tight cluster makes every top-buffer pair share the hub:
// after the first chosen pair both endpoints are dead, the buffer runs dry,
// and the matching must rescan. The refill must only touch the live rows —
// exactly live*(live-1)/2 additional evaluations, with no distance to a
// used row recomputed.
TEST(TileKernelTest, GreedyMatchingRefillScansOnlyLiveRows) {
  size_t n = 70;
  Rng rng(112);
  PointSet pts;
  // Tight cluster near the origin...
  for (size_t i = 0; i + 1 < n; ++i) {
    pts.push_back(Point::Dense2(static_cast<float>(rng.NextDouble()),
                                static_cast<float>(rng.NextDouble())));
  }
  // ...plus one distant hub: all n-1 hub pairs dominate every buffer slot
  // (buffer cap for k=4 is max(4k^2, 64) = 64 < n-1 = 69).
  pts.push_back(Point::Dense2(1e6f, 1e6f));

  EuclideanMetric base;
  Dataset data = Dataset::FromPoints(pts);
  // Initial scan: n(n-1)/2. One refill over the 68 live rows after the hub
  // pair is consumed: 68*67/2. Nothing else.
  uint64_t initial = static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t refill = static_cast<uint64_t>(n - 2) * (n - 3) / 2;

  // Exact path: every scanned pair is an exact evaluation.
  std::vector<size_t> chosen;
  {
    ScopedScreening off(false);
    CountingMetric counting(&base);
    chosen = GreedyMatchingOnDataset(data, counting, 4);
    EXPECT_EQ(chosen.size(), 4u);
    EXPECT_EQ(counting.count(), initial + refill);
    EXPECT_EQ(counting.screened_evals(), 0u);
  }

  // Screened path: the same pairs are screened in fp32 and only the pairs
  // the buffer could keep are re-evaluated exactly — never more than the
  // pre-screening baseline, and the selection is unchanged.
  {
    ScopedScreening on(true);
    CountingMetric counting(&base);
    std::vector<size_t> screened = GreedyMatchingOnDataset(data, counting, 4);
    EXPECT_EQ(screened, chosen);
    EXPECT_EQ(counting.screened_evals(), initial + refill);
    EXPECT_LE(counting.exact_evals(), initial + refill);
    EXPECT_GT(counting.exact_evals(), 0u);
  }

  // Same selection as the matrix reference.
  DistanceMatrix d(std::span<const Point>(pts), base);
  EXPECT_EQ(chosen, GreedyMatchingOnMatrix(d, 4));
}

// --- Sparse tile engine ----------------------------------------------------

// Sparse corpora at three layouts that force different probe strategies:
// a small vocabulary (direct-index slot table), a vocabulary beyond the
// direct-index cap (merge-walk), and heavily skewed nnz ratios (galloping).
// Results must be bit-identical to the scalar merge in every case.
PointSet SparseCorpus(size_t n, uint32_t vocab, size_t min_terms,
                      size_t max_terms, uint64_t seed) {
  SparseTextOptions opts;
  opts.n = n;
  opts.vocab_size = vocab;
  opts.min_terms = min_terms;
  opts.max_terms = max_terms;
  opts.seed = seed;
  return GenerateSparseTextDataset(opts);
}

void ExpectSparseTileMatchesScalar(const PointSet& queries_pts,
                                   const PointSet& data_pts,
                                   const std::string& label) {
  Dataset queries = Dataset::FromPoints(queries_pts);
  Dataset data = Dataset::FromPoints(data_pts);
  size_t nq = std::min<size_t>(13, queries.size());
  size_t nr = data.size() > 2 ? data.size() - 2 : data.size();
  size_t r_begin = data.size() - nr;
  for (const auto& metric : AllMetrics()) {
    std::vector<double> tile(nq * nr, -1.0);
    metric->DistanceTile(queries, 0, nq, data, r_begin, nr, tile.data(), nr);
    for (size_t q = 0; q < nq; ++q) {
      for (size_t r = 0; r < nr; ++r) {
        double want =
            metric->Distance(queries.point(q), data.point(r_begin + r));
        EXPECT_EQ(tile[q * nr + r], want)
            << label << "/" << metric->Name() << " q=" << q << " r=" << r;
      }
    }
  }
}

TEST(SparseTileTest, DirectIndexStrategyMatchesScalar) {
  // vocab 150 << direct-index cap: the slot table path.
  PointSet pts = SparseCorpus(120, 150, 5, 40, /*seed=*/201);
  ExpectSparseTileMatchesScalar(pts, pts, "direct");
}

TEST(SparseTileTest, MergeWalkStrategyMatchesScalar) {
  // vocab above kDirectIndexMaxDim (2^14): merge-walk probing.
  PointSet pts = SparseCorpus(90, 40000, 5, 30, /*seed=*/202);
  ExpectSparseTileMatchesScalar(pts, pts, "merge-walk");
}

TEST(SparseTileTest, GallopingSkewedNnzMatchesScalar) {
  // Tiny queries (3-5 terms) against wide rows (300-600 terms) over a large
  // vocabulary: the intersection walk gallops through the wider list; and
  // the reverse orientation gallops the other way.
  PointSet tiny = SparseCorpus(40, 30000, 3, 5, /*seed=*/203);
  PointSet wide = SparseCorpus(60, 30000, 300, 600, /*seed=*/204);
  ExpectSparseTileMatchesScalar(tiny, wide, "gallop-rows");
  ExpectSparseTileMatchesScalar(wide, tiny, "gallop-queries");
}

TEST(SparseTileTest, StoredZeroValuesKeepSupportSemantics) {
  // Sparse vectors may store explicit zeros; SupportJaccard counts them as
  // support and the merge kernels emit their (zero) terms. The decoded
  // presence bitmask must preserve that, not conflate stored zeros with
  // absent coordinates.
  PointSet pts;
  pts.push_back(Point::Sparse({1, 4, 9}, {0.0f, 2.0f, 0.0f}, 16));
  pts.push_back(Point::Sparse({1, 5, 9}, {3.0f, 0.0f, 1.0f}, 16));
  pts.push_back(Point::Sparse({0, 4, 5}, {0.0f, 0.0f, 0.0f}, 16));
  pts.push_back(Point::Sparse({2, 3, 7, 11}, {1.0f, 2.0f, 3.0f, 4.0f}, 16));
  for (int i = 0; i < 8; ++i) {
    pts.push_back(Point::Sparse({static_cast<uint32_t>(i), 12},
                                {static_cast<float>(i), 1.0f}, 16));
  }
  ExpectSparseTileMatchesScalar(pts, pts, "stored-zeros");
}

TEST(SparseTileTest, EmptySparseRowsAndSingletons) {
  PointSet pts;
  pts.push_back(Point::Sparse({}, {}, 8));  // empty support
  pts.push_back(Point::Sparse({3}, {2.0f}, 8));
  pts.push_back(Point::Sparse({}, {}, 8));
  pts.push_back(Point::Sparse({0, 7}, {1.0f, 1.0f}, 8));
  for (int i = 0; i < 6; ++i) {
    pts.push_back(Point::Sparse({static_cast<uint32_t>(i % 8)},
                                {static_cast<float>(i + 1)}, 8));
  }
  ExpectSparseTileMatchesScalar(pts, pts, "empty-singleton");
}

TEST(SparseTileTest, ColumnOccupancyMirrorDoesNotChangeResults) {
  PointSet pts = SparseCorpus(100, 300, 5, 60, /*seed=*/205);
  Dataset plain = Dataset::FromPoints(pts);
  Dataset mirrored = Dataset::FromPoints(pts);
  mirrored.BuildColumnOccupancy();
  ASSERT_NE(mirrored.column_occupancy(), nullptr);
  ASSERT_EQ(plain.column_occupancy(), nullptr);
  size_t nq = 11, nr = 90;
  for (const auto& metric : AllMetrics()) {
    std::vector<double> a(nq * nr), b(nq * nr);
    metric->DistanceTile(plain, 2, nq, plain, 5, nr, a.data(), nr);
    metric->DistanceTile(mirrored, 2, nq, mirrored, 5, nr, b.data(), nr);
    EXPECT_EQ(a, b) << metric->Name();
  }
}

TEST(SparseTileTest, SparseStatsTrackAppendsAndClears) {
  Dataset d;
  d.Append(Point::Sparse({1, 3}, {1.0f, 2.0f}, 10));
  d.Append(Point::Dense({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  d.Append(Point::Sparse({0, 2, 4, 6}, {1, 1, 1, 1}, 10));
  EXPECT_EQ(d.sparse_stats().rows, 2u);
  EXPECT_EQ(d.sparse_stats().total_nnz, 6u);
  EXPECT_EQ(d.sparse_stats().max_nnz, 4u);
  EXPECT_DOUBLE_EQ(d.sparse_stats().AvgNnz(), 3.0);
  d.BuildColumnOccupancy();
  ASSERT_NE(d.column_occupancy(), nullptr);
  EXPECT_EQ((*d.column_occupancy())[2], 1u);
  d.Append(Point::Sparse({2}, {5.0f}, 10));
  EXPECT_EQ(d.column_occupancy(), nullptr);  // stale mirror invalidated
  d.Clear();
  EXPECT_EQ(d.sparse_stats().rows, 0u);
  EXPECT_EQ(d.sparse_stats().total_nnz, 0u);
}

TEST(SparseTileTest, CountingMetricCountsSparseTilesExactly) {
  PointSet pts = SparseCorpus(80, 200, 5, 40, /*seed=*/206);
  Dataset data = Dataset::FromPoints(pts);
  CosineMetric base;
  CountingMetric counting(&base);
  std::vector<double> tile(9 * 33);
  counting.DistanceTile(data, 4, 9, data, 10, 33, tile.data(), 33);
  EXPECT_EQ(counting.count(), 9u * 33u);
}

TEST(SparseTileTest, SparseRelaxTilesDeterministicAtAnyThreadCount) {
  PointSet pts = SparseCorpus(6000, 500, 5, 60, /*seed=*/207);
  Dataset data = Dataset::FromPoints(pts);
  Dataset center_rows;
  for (size_t c = 0; c < 24; ++c) center_rows.Append(data.point(c * 241));
  for (const auto& metric : AllMetrics()) {
    std::vector<double> base_dist;
    std::vector<size_t> base_assignment;
    size_t base_far = 0;
    for (size_t threads : {1u, 2u, 8u}) {
      SetGlobalThreadPoolSize(threads);
      std::vector<double> dist(data.size(),
                               std::numeric_limits<double>::infinity());
      std::vector<size_t> assignment(data.size(), 0);
      size_t far = RelaxTilesAndArgFarthest(*metric, center_rows, 0,
                                            center_rows.size(), 0, data,
                                            dist, assignment);
      if (threads == 1u) {
        base_dist = std::move(dist);
        base_assignment = std::move(assignment);
        base_far = far;
      } else {
        EXPECT_EQ(far, base_far) << metric->Name() << "@" << threads;
        EXPECT_EQ(dist, base_dist) << metric->Name() << "@" << threads;
        EXPECT_EQ(assignment, base_assignment)
            << metric->Name() << "@" << threads;
      }
    }
    SetGlobalThreadPoolSize(1);
  }
}

TEST(SparseTileTest, MixedTileThreadCountDeterminism) {
  PointSet pts = MixedPoints(900, 14, /*seed=*/208);
  Dataset data = Dataset::FromPoints(pts);
  for (const auto& metric : AllMetrics()) {
    std::vector<std::vector<double>> results;
    for (size_t threads : {1u, 2u, 8u}) {
      SetGlobalThreadPoolSize(threads);
      DistanceMatrix d(data, *metric);
      std::vector<double> flat;
      flat.reserve(data.size() * data.size());
      for (size_t i = 0; i < data.size(); ++i) {
        std::span<const double> row = d.row(i);
        flat.insert(flat.end(), row.begin(), row.end());
      }
      results.push_back(std::move(flat));
    }
    SetGlobalThreadPoolSize(1);
    EXPECT_EQ(results[0], results[1]) << metric->Name();
    EXPECT_EQ(results[0], results[2]) << metric->Name();
  }
}

// The kContinue local search now consumes distance tiles for its candidate
// sweeps; its trajectory (and thus the selected set) must be identical to
// the scalar reference loop, dense and sparse alike.
std::vector<size_t> ScalarLocalSearchReference(std::span<const Point> points,
                                               const Metric& metric,
                                               std::vector<size_t> current,
                                               size_t max_sweeps) {
  size_t n = points.size();
  size_t k = current.size();
  std::vector<bool> in_set(n, false);
  for (size_t idx : current) in_set[idx] = true;
  std::vector<double> contribution(k, 0.0);
  auto recompute = [&] {
    for (size_t a = 0; a < k; ++a) {
      double s = 0.0;
      for (size_t b = 0; b < k; ++b) {
        if (a != b) {
          s += metric.Distance(points[current[a]], points[current[b]]);
        }
      }
      contribution[a] = s;
    }
  };
  recompute();
  std::vector<double> dq(k);
  auto try_swap = [&](size_t q) {
    if (in_set[q]) return false;
    double total = 0.0;
    for (size_t a = 0; a < k; ++a) {
      dq[a] = metric.Distance(points[q], points[current[a]]);
      total += dq[a];
    }
    size_t best_a = k;
    double best_delta = 1e-9;
    for (size_t a = 0; a < k; ++a) {
      double delta = (total - dq[a]) - contribution[a];
      if (delta > best_delta) {
        best_delta = delta;
        best_a = a;
      }
    }
    if (best_a == k) return false;
    in_set[current[best_a]] = false;
    in_set[q] = true;
    current[best_a] = q;
    recompute();
    return true;
  };
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool improved = false;
    for (size_t q = 0; q < n; ++q) improved |= try_swap(q);
    if (!improved) break;
  }
  return current;
}

TEST(SparseTileTest, LocalSearchContinueMatchesScalarReference) {
  std::vector<size_t> initial = {0, 1, 2, 3, 4};
  {
    EuclideanMetric m;
    PointSet pts = DensePoints(300, 4, /*seed=*/209);
    EXPECT_EQ(LocalSearchRemoteClique(pts, m, initial, 16,
                                      LocalSearchScan::kContinue),
              ScalarLocalSearchReference(pts, m, initial, 16));
  }
  {
    CosineMetric m;
    PointSet docs = SparseCorpus(250, 200, 5, 40, /*seed=*/210);
    EXPECT_EQ(LocalSearchRemoteClique(docs, m, initial, 16,
                                      LocalSearchScan::kContinue),
              ScalarLocalSearchReference(docs, m, initial, 16));
  }
}

TEST(TileKernelTest, SimdFlagReport) {
  // Informational: record whether the AVX2 lane kernels are active in this
  // build+host so CI logs show which path the equivalence suite covered.
  // Either way the lane kernels must be bit-identical to the scalar path;
  // the assertion only pins the invariant that the flag is stable.
  EXPECT_EQ(kernels::TileSimdEnabled(), kernels::TileSimdEnabled());
}

}  // namespace
}  // namespace diverse
