// Wire-format tests for the distributed runtime: frames (comm/frame.h)
// and task payloads (comm/serialize.h). The load-bearing property is
// bit-identical round-trips — a partition or core-set crossing the
// transport must decode to exactly the bytes that were encoded, which the
// fault-free "distributed == in-process" tests build on — plus diagnosable
// Status (never a crash, never silent garbage) on corrupt input.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "comm/frame.h"
#include "comm/serialize.h"
#include "core/generalized_coreset.h"
#include "core/point.h"
#include "util/status.h"

namespace diverse {
namespace {

// ---------------------------------------------------------------------------
// Frame protocol.

TEST(FrameTest, RoundTripsEveryType) {
  for (FrameType type :
       {FrameType::kRequest, FrameType::kReply, FrameType::kHeartbeat,
        FrameType::kHeartbeatAck, FrameType::kShutdown}) {
    std::string buf;
    AppendFrame(type, "hello frame", &buf);
    Frame frame;
    size_t consumed = 0;
    ASSERT_TRUE(TryDecodeFrame(buf, &frame, &consumed).ok());
    EXPECT_EQ(consumed, buf.size());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, "hello frame");
  }
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  std::string buf;
  AppendFrame(FrameType::kHeartbeat, "", &buf);
  EXPECT_EQ(buf.size(), kFrameHeaderBytes);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(TryDecodeFrame(buf, &frame, &consumed).ok());
  EXPECT_EQ(consumed, buf.size());
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, IncrementalDecodeNeedsMoreBytes) {
  std::string buf;
  AppendFrame(FrameType::kRequest, "stream me byte by byte", &buf);
  // Every strict prefix is "need more" (OK + consumed == 0), never an error
  // and never a partial frame.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Frame frame;
    size_t consumed = 1;
    ASSERT_TRUE(TryDecodeFrame(buf.substr(0, cut), &frame, &consumed).ok())
        << "prefix length " << cut;
    EXPECT_EQ(consumed, 0u) << "prefix length " << cut;
  }
}

TEST(FrameTest, DecodesFirstOfTwoBackToBackFrames) {
  std::string buf;
  AppendFrame(FrameType::kRequest, "first", &buf);
  const size_t first_size = buf.size();
  AppendFrame(FrameType::kReply, "second", &buf);
  Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(TryDecodeFrame(buf, &frame, &consumed).ok());
  EXPECT_EQ(consumed, first_size);
  EXPECT_EQ(frame.payload, "first");
}

TEST(FrameTest, BadMagicIsInvalidArgument) {
  std::string buf;
  AppendFrame(FrameType::kRequest, "x", &buf);
  buf[0] = 'Z';
  Frame frame;
  size_t consumed = 0;
  Status s = TryDecodeFrame(buf, &frame, &consumed);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("magic"), std::string::npos);
}

TEST(FrameTest, UnknownTypeIsInvalidArgument) {
  std::string buf;
  AppendFrame(FrameType::kRequest, "x", &buf);
  buf[4] = '\x7f';  // type byte
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(TryDecodeFrame(buf, &frame, &consumed).code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameTest, OversizedLengthRejectedBeforeBuffering) {
  std::string buf;
  AppendFrame(FrameType::kRequest, "x", &buf);
  // Rewrite the u64 length field to 2^62: decode must reject from the
  // header alone instead of waiting for (or allocating) 4 EiB.
  uint64_t huge = uint64_t{1} << 62;
  for (int b = 0; b < 8; ++b) buf[5 + b] = static_cast<char>(huge >> (8 * b));
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(TryDecodeFrame(buf, &frame, &consumed).code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameTest, ChecksumMismatchIsDataLoss) {
  std::string buf;
  AppendFrame(FrameType::kReply, "payload under guard", &buf);
  for (size_t i = kFrameHeaderBytes; i < buf.size(); ++i) {
    std::string corrupt = buf;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    Frame frame;
    size_t consumed = 0;
    Status s = TryDecodeFrame(corrupt, &frame, &consumed);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << "flipped byte " << i;
    EXPECT_NE(s.message().find("checksum"), std::string::npos);
  }
}

TEST(FrameTest, Crc32MatchesKnownVector) {
  // The IEEE 802.3 reference value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

// ---------------------------------------------------------------------------
// Point-set payloads.

PointSet SamplePoints() {
  PointSet pts;
  pts.push_back(Point::Dense({1.0f, -2.5f, 3.25f}));
  pts.push_back(Point::Dense({0.0f, -0.0f, 1e-38f}));
  pts.push_back(Point::Sparse({1, 4, 7}, {0.5f, -1.5f, 2.0f}, 9));
  // A stored zero in CSR form must survive: dropping it would change nnz
  // and thus the bytes (and Jaccard semantics).
  pts.push_back(Point::Sparse({0, 3}, {0.0f, 4.0f}, 9));
  return pts;
}

std::string EncodeSet(const PointSet& pts) {
  std::string out;
  AppendPointSet(pts, &out);
  return out;
}

TEST(SerializeTest, PointSetRoundTripsBitIdentically) {
  const PointSet pts = SamplePoints();
  const std::string bytes = EncodeSet(pts);
  ByteReader in(bytes);
  StatusOr<PointSet> back = TryReadPointSet(&in, "test payload");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE((*back)[i] == pts[i]) << "point " << i;
  }
  // Bit-identity, not just semantic equality: re-encoding reproduces the
  // exact bytes (float payloads are moved raw, never reformatted).
  EXPECT_EQ(EncodeSet(*back), bytes);
}

TEST(SerializeTest, EmptyPointSetRoundTrips) {
  const std::string bytes = EncodeSet({});
  ByteReader in(bytes);
  StatusOr<PointSet> back = TryReadPointSet(&in, "empty payload");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(SerializeTest, TruncatedPointSetIsDiagnosed) {
  // Any truncation point must yield a diagnosable error, never a crash or
  // a silently short set: kDataLoss when a record is cut mid-bytes,
  // kInvalidArgument when the cut lands where a length field now lies
  // about the remaining payload.
  const std::string bytes = EncodeSet(SamplePoints());
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{9}}) {
    ByteReader in(std::string_view(bytes).substr(0, cut));
    StatusOr<PointSet> back = TryReadPointSet(&in, "truncated payload");
    ASSERT_FALSE(back.ok()) << "cut at " << cut;
    EXPECT_TRUE(back.status().code() == StatusCode::kDataLoss ||
                back.status().code() == StatusCode::kInvalidArgument)
        << "cut at " << cut << ": " << back.status().ToString();
  }
}

TEST(SerializeTest, PointCountBeyondPayloadRejectedBeforeAllocating) {
  // A count field claiming 2^56 points must be rejected against the bytes
  // actually present, not trusted into an allocation.
  std::string bytes = EncodeSet(SamplePoints());
  bytes[7] = '\x01';  // count is the leading u64 (little-endian)
  ByteReader in(bytes);
  StatusOr<PointSet> back = TryReadPointSet(&in, "huge count");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Generalized core-set payloads.

GeneralizedCoreset SampleGen() {
  GeneralizedCoreset gen;
  gen.Add(Point::Dense({1.0f, 2.0f}), 3);
  gen.Add(Point::Sparse({2, 5}, {0.25f, -8.0f}, 6), 1);
  return gen;
}

TEST(SerializeTest, GenCoresetRoundTrips) {
  const GeneralizedCoreset gen = SampleGen();
  std::string bytes;
  AppendGenCoreset(gen, &bytes);
  ByteReader in(bytes);
  StatusOr<GeneralizedCoreset> back = TryReadGenCoreset(&in, "gen payload");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), gen.size());
  EXPECT_EQ(back->ExpandedSize(), gen.ExpandedSize());
  for (size_t e = 0; e < gen.size(); ++e) {
    EXPECT_TRUE(back->entries()[e].point == gen.entries()[e].point);
    EXPECT_EQ(back->entries()[e].multiplicity, gen.entries()[e].multiplicity);
  }
}

TEST(SerializeTest, GenCoresetZeroMultiplicityRejected) {
  // Forge an entry with multiplicity 0 (the in-memory type forbids it, so
  // build the bytes by hand): u64 count=1, u64 multiplicity=0, then any
  // valid point record.
  std::string bytes;
  GeneralizedCoreset one;
  one.Add(Point::Dense({1.0f}), 7);
  AppendGenCoreset(one, &bytes);
  for (int b = 0; b < 8; ++b) bytes[8 + b] = '\0';  // multiplicity -> 0
  ByteReader in(bytes);
  StatusOr<GeneralizedCoreset> back = TryReadGenCoreset(&in, "zero mult");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Request / reply codecs.

WireRequest SampleRequest() {
  WireRequest req;
  req.type = WireTaskType::kCoreset;
  req.metric = "euclidean";
  req.problem = DiversityProblem::kRemoteClique;
  req.round = "coreset-l2";
  req.task = 11;
  req.attempt = 2;
  req.delay_ms = 250;
  req.k = 8;
  req.k_prime = 16;
  req.delegates = 7;
  req.extended = true;
  req.range = 0.125;
  req.points = SamplePoints();
  req.points2.push_back(Point::Dense({9.0f}));
  req.gen = SampleGen();
  return req;
}

TEST(SerializeTest, RequestRoundTripsEveryField) {
  const WireRequest req = SampleRequest();
  const std::string payload = EncodeWireRequest(req);
  StatusOr<WireRequest> back = TryDecodeWireRequest(payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->type, req.type);
  EXPECT_EQ(back->metric, req.metric);
  EXPECT_EQ(back->problem, req.problem);
  EXPECT_EQ(back->round, req.round);
  EXPECT_EQ(back->task, req.task);
  EXPECT_EQ(back->attempt, req.attempt);
  EXPECT_EQ(back->delay_ms, req.delay_ms);
  EXPECT_EQ(back->k, req.k);
  EXPECT_EQ(back->k_prime, req.k_prime);
  EXPECT_EQ(back->delegates, req.delegates);
  EXPECT_EQ(back->extended, req.extended);
  EXPECT_EQ(back->range, req.range);
  ASSERT_EQ(back->points.size(), req.points.size());
  for (size_t i = 0; i < req.points.size(); ++i) {
    EXPECT_TRUE(back->points[i] == req.points[i]);
  }
  ASSERT_EQ(back->points2.size(), req.points2.size());
  EXPECT_TRUE(back->points2[0] == req.points2[0]);
  EXPECT_EQ(back->gen.size(), req.gen.size());
  // Encode-of-decode is byte-stable.
  EXPECT_EQ(EncodeWireRequest(*back), payload);
}

TEST(SerializeTest, RequestRejectsUnknownTaskType) {
  std::string payload = EncodeWireRequest(SampleRequest());
  payload[0] = '\x2a';  // task type is the first byte
  StatusOr<WireRequest> back = TryDecodeWireRequest(payload);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, RequestRejectsTrailingBytes) {
  std::string payload = EncodeWireRequest(SampleRequest());
  payload.push_back('\0');
  StatusOr<WireRequest> back = TryDecodeWireRequest(payload);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, RequestTruncationsAllDiagnosed) {
  const std::string payload = EncodeWireRequest(SampleRequest());
  // Every strict prefix must fail with a Status (kDataLoss or
  // kInvalidArgument), never crash or decode successfully.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    StatusOr<WireRequest> back =
        TryDecodeWireRequest(std::string_view(payload).substr(0, cut));
    ASSERT_FALSE(back.ok()) << "prefix " << cut << " decoded";
    const StatusCode code = back.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << "prefix " << cut << ": " << back.status().ToString();
  }
}

TEST(SerializeTest, ReplyRoundTripsOkAndError) {
  WireReply ok_reply;
  ok_reply.type = WireTaskType::kGenCoreset;
  ok_reply.gen = SampleGen();
  ok_reply.range = 2.5;
  StatusOr<WireReply> ok_back = TryDecodeWireReply(EncodeWireReply(ok_reply));
  ASSERT_TRUE(ok_back.ok());
  EXPECT_TRUE(ok_back->status.ok());
  EXPECT_EQ(ok_back->type, WireTaskType::kGenCoreset);
  EXPECT_EQ(ok_back->gen.size(), ok_reply.gen.size());
  EXPECT_EQ(ok_back->range, 2.5);

  WireReply err_reply;
  err_reply.type = WireTaskType::kSolve;
  err_reply.status = AbortedError("synthetic worker failure");
  StatusOr<WireReply> err_back =
      TryDecodeWireReply(EncodeWireReply(err_reply));
  ASSERT_TRUE(err_back.ok());
  EXPECT_EQ(err_back->status.code(), StatusCode::kAborted);
  EXPECT_EQ(err_back->status.message(), "synthetic worker failure");
}

TEST(SerializeTest, ReplyRejectsOutOfRangeStatusCode) {
  WireReply reply;
  reply.type = WireTaskType::kSolve;
  std::string payload = EncodeWireReply(reply);
  payload[1] = '\x63';  // status code byte beyond kInternal
  StatusOr<WireReply> back = TryDecodeWireReply(payload);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace diverse
