#include "core/doubling.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/cover_tree.h"
#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace diverse {
namespace {

TEST(DoublingTest, LineHasLowDimension) {
  // Points on a line: doubling dimension 1.
  PointSet pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back(Point::Dense({static_cast<float>(i) * 0.01f}));
  }
  EuclideanMetric m;
  DoublingEstimate est = EstimateDoublingDimension(pts, m);
  EXPECT_GT(est.probes, 0u);
  EXPECT_GE(est.dimension, 0.5);
  EXPECT_LE(est.dimension, 2.5);
}

TEST(DoublingTest, PlaneExceedsLine) {
  EuclideanMetric m;
  PointSet line;
  for (int i = 0; i < 400; ++i) {
    line.push_back(Point::Dense({static_cast<float>(i) * 0.01f}));
  }
  PointSet plane = GenerateUniformCube(400, 2, /*seed=*/2);
  DoublingEstimateOptions opts;
  opts.seed = 3;
  double d_line = EstimateDoublingDimension(line, m, opts).dimension;
  double d_plane = EstimateDoublingDimension(plane, m, opts).dimension;
  EXPECT_GT(d_plane, d_line);
}

TEST(DoublingTest, DimensionGrowsWithEuclideanDim) {
  EuclideanMetric m;
  DoublingEstimateOptions opts;
  opts.seed = 4;
  double d2 = EstimateDoublingDimension(GenerateUniformCube(600, 2, 5), m,
                                        opts)
                  .dimension;
  double d6 = EstimateDoublingDimension(GenerateUniformCube(600, 6, 6), m,
                                        opts)
                  .dimension;
  EXPECT_GT(d6, d2);
}

TEST(DoublingTest, EstimateIsBoundedBySampleSizeLog) {
  // The cover can never exceed the ball size, so the estimate is at most
  // log2(sample size).
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(300, 3, /*seed=*/7);
  DoublingEstimate est = EstimateDoublingDimension(pts, m);
  EXPECT_LE(est.dimension, std::log2(300.0) + 1e-9);
}

TEST(DoublingTest, WorksOnSparseCosineData) {
  CosineMetric m;
  SparseTextOptions opts;
  opts.n = 300;
  opts.vocab_size = 400;
  opts.num_topics = 8;
  opts.seed = 8;
  PointSet docs = GenerateSparseTextDataset(opts);
  DoublingEstimate est = EstimateDoublingDimension(docs, m);
  EXPECT_GT(est.probes, 0u);
  EXPECT_GT(est.dimension, 0.0);
}

TEST(DoublingTest, DuplicatePointsHandled) {
  PointSet pts(50, Point::Dense2(1.0f, 2.0f));
  pts.push_back(Point::Dense2(3.0f, 4.0f));
  EuclideanMetric m;
  DoublingEstimate est = EstimateDoublingDimension(pts, m);
  // Balls of identical points are covered by one center.
  EXPECT_LE(est.dimension, 1.1);
}

// The tree-side estimator (no extra distance evaluations — it reads the
// half-radius frontiers the build already materialized) agrees with the
// sampling estimator on synthetic low-dimensional manifolds: both call the
// manifolds low, both order them by intrinsic dimension, and the tree
// estimate stays within a couple of bits of the sampled one even when the
// manifold is embedded in a higher-dimensional ambient space.
TEST(DoublingTest, TreeEstimatorAgreesWithSamplingOnManifolds) {
  EuclideanMetric m;
  DoublingEstimateOptions opts;
  opts.seed = 9;
  // Intrinsic dim 1 (a line in 8-dim ambient space) and intrinsic dim 2
  // (a plane patch in the same ambient space).
  PointSet line, plane;
  Rng rng(11);
  for (int i = 0; i < 1500; ++i) {
    float t = static_cast<float>(i) * 0.001f;
    line.push_back(Point::Dense({t, 2 * t, 0, t, 0, 3 * t, t, 0}));
    float u = static_cast<float>(rng.NextDouble());
    float v = static_cast<float>(rng.NextDouble());
    plane.push_back(Point::Dense({u, v, u + v, 0, u - v, 0, 2 * u, v}));
  }
  auto tree_dim = [&](const PointSet& pts) {
    CoverTree tree = CoverTree::Build(Dataset::FromPoints(pts), m);
    DoublingEstimate est = EstimateDoublingDimensionFromTree(tree);
    EXPECT_GT(est.probes, 0u);
    return est.dimension;
  };
  double tree_line = tree_dim(line);
  double tree_plane = tree_dim(plane);
  double samp_line = EstimateDoublingDimension(line, m, opts).dimension;
  double samp_plane = EstimateDoublingDimension(plane, m, opts).dimension;
  // Both estimators call the manifolds low-dimensional and order them.
  EXPECT_LE(tree_line, 3.0);
  EXPECT_LE(samp_line, 3.0);
  EXPECT_LT(tree_line, tree_plane);
  EXPECT_LT(samp_line, samp_plane);
  // Agreement within two bits on each manifold.
  EXPECT_NEAR(tree_line, samp_line, 2.0);
  EXPECT_NEAR(tree_plane, samp_plane, 2.0);
}

TEST(DoublingDeathTest, RequiresTwoPoints) {
  PointSet pts = {Point::Dense2(0, 0)};
  EuclideanMetric m;
  EXPECT_DEATH(EstimateDoublingDimension(pts, m), "CHECK failed");
}

}  // namespace
}  // namespace diverse
