#include "core/doubling.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(DoublingTest, LineHasLowDimension) {
  // Points on a line: doubling dimension 1.
  PointSet pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back(Point::Dense({static_cast<float>(i) * 0.01f}));
  }
  EuclideanMetric m;
  DoublingEstimate est = EstimateDoublingDimension(pts, m);
  EXPECT_GT(est.probes, 0u);
  EXPECT_GE(est.dimension, 0.5);
  EXPECT_LE(est.dimension, 2.5);
}

TEST(DoublingTest, PlaneExceedsLine) {
  EuclideanMetric m;
  PointSet line;
  for (int i = 0; i < 400; ++i) {
    line.push_back(Point::Dense({static_cast<float>(i) * 0.01f}));
  }
  PointSet plane = GenerateUniformCube(400, 2, /*seed=*/2);
  DoublingEstimateOptions opts;
  opts.seed = 3;
  double d_line = EstimateDoublingDimension(line, m, opts).dimension;
  double d_plane = EstimateDoublingDimension(plane, m, opts).dimension;
  EXPECT_GT(d_plane, d_line);
}

TEST(DoublingTest, DimensionGrowsWithEuclideanDim) {
  EuclideanMetric m;
  DoublingEstimateOptions opts;
  opts.seed = 4;
  double d2 = EstimateDoublingDimension(GenerateUniformCube(600, 2, 5), m,
                                        opts)
                  .dimension;
  double d6 = EstimateDoublingDimension(GenerateUniformCube(600, 6, 6), m,
                                        opts)
                  .dimension;
  EXPECT_GT(d6, d2);
}

TEST(DoublingTest, EstimateIsBoundedBySampleSizeLog) {
  // The cover can never exceed the ball size, so the estimate is at most
  // log2(sample size).
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(300, 3, /*seed=*/7);
  DoublingEstimate est = EstimateDoublingDimension(pts, m);
  EXPECT_LE(est.dimension, std::log2(300.0) + 1e-9);
}

TEST(DoublingTest, WorksOnSparseCosineData) {
  CosineMetric m;
  SparseTextOptions opts;
  opts.n = 300;
  opts.vocab_size = 400;
  opts.num_topics = 8;
  opts.seed = 8;
  PointSet docs = GenerateSparseTextDataset(opts);
  DoublingEstimate est = EstimateDoublingDimension(docs, m);
  EXPECT_GT(est.probes, 0u);
  EXPECT_GT(est.dimension, 0.0);
}

TEST(DoublingTest, DuplicatePointsHandled) {
  PointSet pts(50, Point::Dense2(1.0f, 2.0f));
  pts.push_back(Point::Dense2(3.0f, 4.0f));
  EuclideanMetric m;
  DoublingEstimate est = EstimateDoublingDimension(pts, m);
  // Balls of identical points are covered by one center.
  EXPECT_LE(est.dimension, 1.1);
}

TEST(DoublingDeathTest, RequiresTwoPoints) {
  PointSet pts = {Point::Dense2(0, 0)};
  EuclideanMetric m;
  EXPECT_DEATH(EstimateDoublingDimension(pts, m), "CHECK failed");
}

}  // namespace
}  // namespace diverse
