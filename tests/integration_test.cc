// End-to-end integration tests: streaming and MapReduce pipelines on the
// paper's data distributions, cross-checked against each other and against
// the sequential algorithm on the full input.

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "mapreduce/afz.h"
#include "mapreduce/mr_diversity.h"
#include "streaming/streaming_diversity.h"

namespace diverse {
namespace {

double SequentialBaseline(DiversityProblem p, const PointSet& pts,
                          const Metric& m, size_t k) {
  std::vector<size_t> idx = SolveSequential(p, pts, m, k);
  PointSet sol;
  for (size_t i : idx) sol.push_back(pts[i]);
  return EvaluateDiversity(p, sol, m);
}

TEST(IntegrationTest, StreamingTracksSequentialOnSphereData) {
  EuclideanMetric m;
  SphereDatasetOptions opts;
  opts.n = 20000;
  opts.k = 16;
  opts.seed = 1;
  PointSet pts = GenerateSphereDataset(opts);

  size_t k = 16;
  double seq = SequentialBaseline(DiversityProblem::kRemoteEdge, pts, m, k);

  StreamingDiversity sd(&m, DiversityProblem::kRemoteEdge, k, 4 * k);
  for (const Point& p : pts) sd.Update(p);
  double stream = sd.Finalize().diversity;

  // The streaming result must reach a large fraction of the sequential one.
  EXPECT_GE(stream, 0.5 * seq);
}

TEST(IntegrationTest, MapReduceTracksSequentialOnSphereData) {
  EuclideanMetric m;
  SphereDatasetOptions opts;
  opts.n = 20000;
  opts.k = 16;
  opts.seed = 2;
  PointSet pts = GenerateSphereDataset(opts);

  size_t k = 16;
  double seq = SequentialBaseline(DiversityProblem::kRemoteEdge, pts, m, k);

  MrOptions mr_opts;
  mr_opts.k = k;
  mr_opts.k_prime = 4 * k;
  mr_opts.num_partitions = 8;
  mr_opts.num_workers = 4;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, mr_opts);
  double dist = mr.Run(pts).diversity;

  EXPECT_GE(dist, 0.7 * seq);
}

TEST(IntegrationTest, MapReduceBeatsStreamingCoreset) {
  // Section 7.2: MR ratios are generally better than streaming because GMM
  // (2-approx k-center) builds the core-set instead of the 8-approx doubling
  // algorithm. Compare on the same data, same k'.
  EuclideanMetric m;
  SphereDatasetOptions opts;
  opts.n = 30000;
  opts.k = 8;
  opts.seed = 3;
  PointSet pts = GenerateSphereDataset(opts);
  size_t k = 8, k_prime = 32;

  StreamingDiversity sd(&m, DiversityProblem::kRemoteEdge, k, k_prime);
  for (const Point& p : pts) sd.Update(p);
  double stream = sd.Finalize().diversity;

  MrOptions mr_opts;
  mr_opts.k = k;
  mr_opts.k_prime = k_prime;
  mr_opts.num_partitions = 8;
  mr_opts.num_workers = 4;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, mr_opts);
  double dist = mr.Run(pts).diversity;

  EXPECT_GE(dist, 0.9 * stream);
}

TEST(IntegrationTest, CosineTextPipelineEndToEnd) {
  CosineMetric m;
  SparseTextOptions topts;
  topts.n = 3000;
  topts.vocab_size = 1000;
  topts.num_topics = 16;
  topts.seed = 4;
  PointSet docs = GenerateSparseTextDataset(topts);

  size_t k = 8;
  // Streaming remote-clique (SMM-EXT) on sparse cosine data.
  StreamingDiversity sd(&m, DiversityProblem::kRemoteClique, k, 2 * k);
  for (const Point& d : docs) sd.Update(d);
  StreamingResult sr = sd.Finalize();
  EXPECT_EQ(sr.solution.size(), k);
  // With 16 orthogonal-ish topics, the 8 selected docs should average
  // pairwise distance well above 1 radian.
  EXPECT_GT(sr.diversity / DiversityTermCount(DiversityProblem::kRemoteClique,
                                              k),
            1.0);

  // MapReduce on the same corpus.
  MrOptions mr_opts;
  mr_opts.k = k;
  mr_opts.k_prime = 2 * k;
  mr_opts.num_partitions = 4;
  mr_opts.num_workers = 4;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteClique, mr_opts);
  MrResult mres = mr.Run(docs);
  EXPECT_EQ(mres.solution.size(), k);
  EXPECT_GT(mres.diversity, 0.8 * sr.diversity);
}

TEST(IntegrationTest, AllProblemsAllPipelinesOnOneDataset) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(2000, 3, /*seed=*/5);
  size_t k = 6;
  for (DiversityProblem p : kAllProblems) {
    double seq = SequentialBaseline(p, pts, m, k);

    StreamingDiversity sd(&m, p, k, 3 * k);
    for (const Point& x : pts) sd.Update(x);
    double stream = sd.Finalize().diversity;

    MrOptions mr_opts;
    mr_opts.k = k;
    mr_opts.k_prime = 3 * k;
    mr_opts.num_partitions = 4;
    mr_opts.num_workers = 2;
    MapReduceDiversity mr(&m, p, mr_opts);
    double dist = mr.Run(pts).diversity;

    EXPECT_GT(stream, 0.4 * seq) << ProblemName(p);
    EXPECT_GT(dist, 0.5 * seq) << ProblemName(p);
  }
}

TEST(IntegrationTest, TwoPassMatchesOnePassQuality) {
  EuclideanMetric m;
  SphereDatasetOptions opts;
  opts.n = 10000;
  opts.k = 8;
  opts.seed = 6;
  PointSet pts = GenerateSphereDataset(opts);
  size_t k = 8, k_prime = 32;

  StreamingDiversity one(&m, DiversityProblem::kRemoteClique, k, k_prime);
  for (const Point& p : pts) one.Update(p);
  double one_div = one.Finalize().diversity;

  TwoPassStreamingDiversity two(&m, DiversityProblem::kRemoteClique, k,
                                k_prime);
  for (const Point& p : pts) two.UpdateFirstPass(p);
  two.EndFirstPass();
  for (const Point& p : pts) two.UpdateSecondPass(p);
  double two_div = two.Finalize().diversity;

  EXPECT_GE(two_div, 0.7 * one_div);
}

TEST(IntegrationTest, ThreeRoundGeneralizedMatchesTwoRoundQuality) {
  EuclideanMetric m;
  SphereDatasetOptions opts;
  opts.n = 10000;
  opts.k = 8;
  opts.seed = 7;
  PointSet pts = GenerateSphereDataset(opts);

  MrOptions mr_opts;
  mr_opts.k = 8;
  mr_opts.k_prime = 32;
  mr_opts.num_partitions = 4;
  mr_opts.num_workers = 4;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteClique, mr_opts);
  double two = mr.Run(pts).diversity;
  double three = mr.RunGeneralized(pts).diversity;
  EXPECT_GE(three, 0.7 * two);
}

}  // namespace
}  // namespace diverse
