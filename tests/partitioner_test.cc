#include "mapreduce/partitioner.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

// Every partition strategy must produce a balanced permutation of the input.
class PartitionerTest : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionerTest, IsBalancedPermutation) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(103, 2, /*seed=*/1);
  auto parts = PartitionPoints(pts, 8, GetParam(), /*seed=*/42, &m);
  ASSERT_EQ(parts.size(), 8u);
  size_t total = 0;
  for (const PointSet& part : parts) {
    EXPECT_GE(part.size(), 103u / 8);
    EXPECT_LE(part.size(), 103u / 8 + 1);
    total += part.size();
  }
  EXPECT_EQ(total, pts.size());
  // Multiset equality via sorted coordinate dumps.
  auto key = [](const Point& p) {
    return std::make_pair(p.dense_values()[0], p.dense_values()[1]);
  };
  std::multiset<std::pair<float, float>> original, partitioned;
  for (const Point& p : pts) original.insert(key(p));
  for (const PointSet& part : parts) {
    for (const Point& p : part) partitioned.insert(key(p));
  }
  EXPECT_EQ(original, partitioned);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PartitionerTest,
    ::testing::Values(PartitionStrategy::kChunked, PartitionStrategy::kRandom,
                      PartitionStrategy::kAdversarial),
    [](const ::testing::TestParamInfo<PartitionStrategy>& info) {
      return PartitionStrategyName(info.param);
    });

TEST(PartitionerTest, StrategyNames) {
  EXPECT_EQ(PartitionStrategyName(PartitionStrategy::kChunked), "chunked");
  EXPECT_EQ(PartitionStrategyName(PartitionStrategy::kRandom), "random");
  EXPECT_EQ(PartitionStrategyName(PartitionStrategy::kAdversarial),
            "adversarial");
}

TEST(PartitionerTest, ChunkedPreservesOrder) {
  PointSet pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(Point::Dense({static_cast<float>(i)}));
  }
  auto parts = PartitionPoints(pts, 2, PartitionStrategy::kChunked, 0);
  EXPECT_EQ(parts[0][0].dense_values()[0], 0.0f);
  EXPECT_EQ(parts[0][4].dense_values()[0], 4.0f);
  EXPECT_EQ(parts[1][0].dense_values()[0], 5.0f);
}

TEST(PartitionerTest, RandomIsSeedDeterministic) {
  PointSet pts = GenerateUniformCube(50, 2, /*seed=*/2);
  auto a = PartitionPoints(pts, 4, PartitionStrategy::kRandom, 7);
  auto b = PartitionPoints(pts, 4, PartitionStrategy::kRandom, 7);
  auto c = PartitionPoints(pts, 4, PartitionStrategy::kRandom, 8);
  EXPECT_EQ(a[0][0].dense_values(), b[0][0].dense_values());
  bool differs = false;
  for (size_t i = 0; i < a[0].size() && !differs; ++i) {
    differs = !(a[0][i] == c[0][i]);
  }
  EXPECT_TRUE(differs);
}

TEST(PartitionerTest, AdversarialLocalizesDensePoints) {
  // After lexicographic sorting, each part spans a narrow slab in the first
  // coordinate; total first-coordinate spread of parts is much smaller than
  // the full range for most parts.
  PointSet pts = GenerateUniformCube(1000, 2, /*seed=*/3);
  auto parts =
      PartitionPoints(pts, 10, PartitionStrategy::kAdversarial, 0);
  for (const PointSet& part : parts) {
    float lo = 1e9f, hi = -1e9f;
    for (const Point& p : part) {
      lo = std::min(lo, p.dense_values()[0]);
      hi = std::max(hi, p.dense_values()[0]);
    }
    EXPECT_LE(hi - lo, 0.25f);  // a slab of ~1/10 of the unit range + slack
  }
}

TEST(PartitionerTest, AdversarialSparseUsesMetricShells) {
  CosineMetric m;
  SparseTextOptions opts;
  opts.n = 60;
  opts.vocab_size = 100;
  opts.min_terms = 3;
  opts.max_terms = 10;
  opts.seed = 5;
  PointSet pts = GenerateSparseTextDataset(opts);
  auto parts =
      PartitionPoints(pts, 4, PartitionStrategy::kAdversarial, 0, &m);
  // Distance-to-pivot must be non-decreasing across part boundaries.
  const Point& pivot = pts[0];
  double prev_max = -1.0;
  for (const PointSet& part : parts) {
    double lo = 1e100, hi = -1.0;
    for (const Point& p : part) {
      double d = m.Distance(p, pivot);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    EXPECT_GE(lo, prev_max - 1e-9);
    prev_max = hi;
  }
}

TEST(PartitionerTest, SinglePartIsWholeInput) {
  PointSet pts = GenerateUniformCube(20, 2, /*seed=*/6);
  auto parts = PartitionPoints(pts, 1, PartitionStrategy::kRandom, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), pts.size());
}

TEST(PartitionerDeathTest, MorePartsThanPointsRejected) {
  PointSet pts = GenerateUniformCube(3, 2, /*seed=*/7);
  EXPECT_DEATH(PartitionPoints(pts, 4, PartitionStrategy::kChunked, 0),
               "CHECK failed");
}

}  // namespace
}  // namespace diverse
