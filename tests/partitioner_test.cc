#include "mapreduce/partitioner.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

// Every partition strategy must produce a balanced permutation of the input.
class PartitionerTest : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionerTest, IsBalancedPermutation) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(103, 2, /*seed=*/1);
  auto parts = PartitionPoints(pts, 8, GetParam(), /*seed=*/42, &m);
  ASSERT_EQ(parts.size(), 8u);
  size_t total = 0;
  for (const PointSet& part : parts) {
    EXPECT_GE(part.size(), 103u / 8);
    EXPECT_LE(part.size(), 103u / 8 + 1);
    total += part.size();
  }
  EXPECT_EQ(total, pts.size());
  // Multiset equality via sorted coordinate dumps.
  auto key = [](const Point& p) {
    return std::make_pair(p.dense_values()[0], p.dense_values()[1]);
  };
  std::multiset<std::pair<float, float>> original, partitioned;
  for (const Point& p : pts) original.insert(key(p));
  for (const PointSet& part : parts) {
    for (const Point& p : part) partitioned.insert(key(p));
  }
  EXPECT_EQ(original, partitioned);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PartitionerTest,
    ::testing::Values(PartitionStrategy::kChunked, PartitionStrategy::kRandom,
                      PartitionStrategy::kAdversarial),
    [](const ::testing::TestParamInfo<PartitionStrategy>& info) {
      return PartitionStrategyName(info.param);
    });

TEST(PartitionerTest, StrategyNames) {
  EXPECT_EQ(PartitionStrategyName(PartitionStrategy::kChunked), "chunked");
  EXPECT_EQ(PartitionStrategyName(PartitionStrategy::kRandom), "random");
  EXPECT_EQ(PartitionStrategyName(PartitionStrategy::kAdversarial),
            "adversarial");
}

TEST(PartitionerTest, ChunkedPreservesOrder) {
  PointSet pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(Point::Dense({static_cast<float>(i)}));
  }
  auto parts = PartitionPoints(pts, 2, PartitionStrategy::kChunked, 0);
  EXPECT_EQ(parts[0][0].dense_values()[0], 0.0f);
  EXPECT_EQ(parts[0][4].dense_values()[0], 4.0f);
  EXPECT_EQ(parts[1][0].dense_values()[0], 5.0f);
}

TEST(PartitionerTest, RandomIsSeedDeterministic) {
  PointSet pts = GenerateUniformCube(50, 2, /*seed=*/2);
  auto a = PartitionPoints(pts, 4, PartitionStrategy::kRandom, 7);
  auto b = PartitionPoints(pts, 4, PartitionStrategy::kRandom, 7);
  auto c = PartitionPoints(pts, 4, PartitionStrategy::kRandom, 8);
  EXPECT_EQ(a[0][0].dense_values(), b[0][0].dense_values());
  bool differs = false;
  for (size_t i = 0; i < a[0].size() && !differs; ++i) {
    differs = !(a[0][i] == c[0][i]);
  }
  EXPECT_TRUE(differs);
}

TEST(PartitionerTest, AdversarialLocalizesDensePoints) {
  // After lexicographic sorting, each part spans a narrow slab in the first
  // coordinate; total first-coordinate spread of parts is much smaller than
  // the full range for most parts.
  PointSet pts = GenerateUniformCube(1000, 2, /*seed=*/3);
  auto parts =
      PartitionPoints(pts, 10, PartitionStrategy::kAdversarial, 0);
  for (const PointSet& part : parts) {
    float lo = 1e9f, hi = -1e9f;
    for (const Point& p : part) {
      lo = std::min(lo, p.dense_values()[0]);
      hi = std::max(hi, p.dense_values()[0]);
    }
    EXPECT_LE(hi - lo, 0.25f);  // a slab of ~1/10 of the unit range + slack
  }
}

TEST(PartitionerTest, AdversarialSparseUsesMetricShells) {
  CosineMetric m;
  SparseTextOptions opts;
  opts.n = 60;
  opts.vocab_size = 100;
  opts.min_terms = 3;
  opts.max_terms = 10;
  opts.seed = 5;
  PointSet pts = GenerateSparseTextDataset(opts);
  auto parts =
      PartitionPoints(pts, 4, PartitionStrategy::kAdversarial, 0, &m);
  // Distance-to-pivot must be non-decreasing across part boundaries.
  const Point& pivot = pts[0];
  double prev_max = -1.0;
  for (const PointSet& part : parts) {
    double lo = 1e100, hi = -1.0;
    for (const Point& p : part) {
      double d = m.Distance(p, pivot);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    EXPECT_GE(lo, prev_max - 1e-9);
    prev_max = hi;
  }
}

TEST(PartitionerTest, SinglePartIsWholeInput) {
  PointSet pts = GenerateUniformCube(20, 2, /*seed=*/6);
  auto parts = PartitionPoints(pts, 1, PartitionStrategy::kRandom, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), pts.size());
}

TEST(PartitionerTest, MorePartsThanPointsYieldsEmptyTails) {
  PointSet pts = GenerateUniformCube(3, 2, /*seed=*/7);
  for (PartitionStrategy strategy :
       {PartitionStrategy::kChunked, PartitionStrategy::kRandom,
        PartitionStrategy::kAdversarial}) {
    EuclideanMetric m;
    auto parts = PartitionPoints(pts, 7, strategy, /*seed=*/0, &m);
    ASSERT_EQ(parts.size(), 7u) << PartitionStrategyName(strategy);
    size_t total = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      EXPECT_LE(parts[p].size(), 1u);
      total += parts[p].size();
      if (p >= pts.size()) {
        EXPECT_TRUE(parts[p].empty()) << "tail part " << p;
      }
    }
    EXPECT_EQ(total, pts.size());
  }
}

TEST(PartitionerTest, EmptyInputYieldsAllEmptyParts) {
  PointSet empty;
  for (PartitionStrategy strategy :
       {PartitionStrategy::kChunked, PartitionStrategy::kRandom,
        PartitionStrategy::kAdversarial}) {
    // No metric: the adversarial branch must not touch points[0] (or the
    // metric) when there is nothing to sort.
    auto parts = PartitionPoints(empty, 5, strategy, /*seed=*/3);
    ASSERT_EQ(parts.size(), 5u) << PartitionStrategyName(strategy);
    for (const PointSet& part : parts) EXPECT_TRUE(part.empty());
  }
}

TEST(PartitionerTest, AdversarialSparseSingletonNeedsNoSort) {
  // One sparse point, more parts than points: the pivot-distance branch
  // runs on a single element and the tails stay empty.
  CosineMetric m;
  PointSet pts;
  pts.push_back(Point::Sparse({1, 5}, {1.0f, 2.0f}, /*dim=*/10));
  auto parts =
      PartitionPoints(pts, 3, PartitionStrategy::kAdversarial, 0, &m);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 1u);
  EXPECT_TRUE(parts[1].empty());
  EXPECT_TRUE(parts[2].empty());
}

}  // namespace
}  // namespace diverse
