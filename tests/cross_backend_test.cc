// Cross-backend consistency: every pipeline in the library solves the same
// problem, so on well-separated instances (where the optimum is unambiguous)
// they must essentially agree, and on random instances their values must sit
// within the combined approximation envelope of their guarantees.

#include <algorithm>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "api/solve.h"
#include "core/exact.h"
#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace diverse {
namespace {

// On data with k planted far-away points, every backend must recover a
// solution whose diversity is close to the planted separation.
class PlantedRecoveryTest : public ::testing::TestWithParam<Backend> {};

TEST_P(PlantedRecoveryTest, EveryBackendRecoversPlantedStructure) {
  Backend backend = GetParam();
  EuclideanMetric metric;
  SphereDatasetOptions data;
  data.n = 4000;
  data.k = 6;
  data.seed = 17;
  PointSet pts = GenerateSphereDataset(data);

  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteClique;
  opts.backend = backend;
  opts.k = 6;
  opts.k_prime = 24;
  opts.num_partitions = 4;
  SolveResult r = Solve(pts, metric, opts);
  ASSERT_EQ(r.solution.size(), 6u);

  // 6 random unit vectors have expected pairwise distance ~sqrt(2); a
  // solution living on the planted surface has clique value well above what
  // any interior set can reach (diameter 1.6 at radius 0.8 only in rare
  // antipodal configurations).
  SolveOptions seq;
  seq.problem = DiversityProblem::kRemoteClique;
  seq.backend = Backend::kSequential;
  seq.k = 6;
  double reference = Solve(pts, metric, seq).diversity;
  EXPECT_GE(r.diversity, 0.75 * reference) << BackendName(backend);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PlantedRecoveryTest,
    ::testing::Values(Backend::kSequential, Backend::kStreaming,
                      Backend::kStreamingTwoPass, Backend::kMapReduce,
                      Backend::kMapReduceRandomized,
                      Backend::kMapReduceGeneralized,
                      Backend::kMapReduceRecursive),
    [](const ::testing::TestParamInfo<Backend>& info) {
      std::string name = BackendName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Exhaustive small-instance sweep: every backend x problem combination is
// compared against the brute-force optimum under a conservative envelope.
TEST(CrossBackendTest, AllBackendsWithinEnvelopeOfExactOptimum) {
  EuclideanMetric metric;
  const Backend backends[] = {Backend::kSequential, Backend::kStreaming,
                              Backend::kMapReduce,
                              Backend::kMapReduceRecursive};
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    PointSet pts = GenerateUniformCube(18, 2, seed * 997);
    for (DiversityProblem p : kAllProblems) {
      double opt = ExactDiversityMaximization(p, pts, metric, 4).value;
      for (Backend b : backends) {
        SolveOptions opts;
        opts.problem = p;
        opts.backend = b;
        opts.k = 4;
        opts.k_prime = 8;
        opts.num_partitions = 2;
        SolveResult r = Solve(pts, metric, opts);
        // alpha <= 4 for all problems; factor 2 envelope for core-set loss
        // on such tiny inputs.
        EXPECT_GE(r.diversity * SequentialAlpha(p) * 2.0 + 1e-9, opt)
            << BackendName(b) << " " << ProblemName(p) << " seed " << seed;
        EXPECT_LE(r.diversity, opt + 1e-9)
            << BackendName(b) << " " << ProblemName(p) << " seed " << seed;
      }
    }
  }
}

// Streaming is order-sensitive in principle; quality must nevertheless be
// stable across stream permutations.
TEST(CrossBackendTest, StreamingStableUnderPermutations) {
  EuclideanMetric metric;
  SphereDatasetOptions data;
  data.n = 3000;
  data.k = 8;
  data.seed = 23;
  PointSet pts = GenerateSphereDataset(data);

  double lo = 1e100, hi = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    PointSet shuffled = pts;
    Rng rng(seed);
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
    }
    SolveOptions opts;
    opts.problem = DiversityProblem::kRemoteEdge;
    opts.backend = Backend::kStreaming;
    opts.k = 8;
    opts.k_prime = 32;
    double div = Solve(shuffled, metric, opts).diversity;
    lo = std::min(lo, div);
    hi = std::max(hi, div);
  }
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi / lo, 1.75);  // no catastrophic order-sensitivity
}

// The full pipeline also works end-to-end on sparse cosine data for every
// backend (regression guard for representation-specific bugs).
TEST(CrossBackendTest, SparseCosineAllBackends) {
  CosineMetric metric;
  SparseTextOptions topts;
  topts.n = 1500;
  topts.vocab_size = 800;
  topts.num_topics = 12;
  topts.seed = 29;
  PointSet docs = GenerateSparseTextDataset(topts);
  for (Backend b : {Backend::kSequential, Backend::kStreaming,
                    Backend::kStreamingTwoPass, Backend::kMapReduce,
                    Backend::kMapReduceGeneralized}) {
    SolveOptions opts;
    opts.problem = DiversityProblem::kRemoteStar;
    opts.backend = b;
    opts.k = 5;
    opts.k_prime = 15;
    opts.num_partitions = 3;
    SolveResult r = Solve(docs, metric, opts);
    EXPECT_EQ(r.solution.size(), 5u) << BackendName(b);
    EXPECT_GT(r.diversity, 0.0) << BackendName(b);
  }
}

// Manhattan and Jaccard metrics through the full MapReduce pipeline
// (the algorithms are metric-oblivious; verify no hidden Euclidean
// assumptions).
TEST(CrossBackendTest, AlternativeMetricsEndToEnd) {
  PointSet pts = GenerateUniformCube(600, 3, /*seed=*/31);
  ManhattanMetric manhattan;
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteTree;
  opts.backend = Backend::kMapReduce;
  opts.k = 5;
  opts.k_prime = 20;
  opts.num_partitions = 4;
  SolveResult r = Solve(pts, manhattan, opts);
  EXPECT_EQ(r.solution.size(), 5u);
  EXPECT_GT(r.diversity, 0.0);

  SparseTextOptions topts;
  topts.n = 400;
  topts.vocab_size = 300;
  topts.seed = 37;
  PointSet docs = GenerateSparseTextDataset(topts);
  JaccardMetric jaccard;
  opts.problem = DiversityProblem::kRemoteEdge;
  opts.backend = Backend::kStreaming;
  SolveResult rj = Solve(docs, jaccard, opts);
  EXPECT_EQ(rj.solution.size(), 5u);
  EXPECT_GT(rj.diversity, 0.0);
}

}  // namespace
}  // namespace diverse
