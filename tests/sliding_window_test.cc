#include "streaming/sliding_window.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "core/sequential.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace diverse {
namespace {

SlidingWindowOptions Options(DiversityProblem p, size_t k, size_t k_prime,
                             size_t window, size_t block) {
  SlidingWindowOptions o;
  o.problem = p;
  o.k = k;
  o.k_prime = k_prime;
  o.window = window;
  o.block = block;
  return o;
}

TEST(SlidingWindowTest, QueryBeforeAnyPointIsEmpty) {
  EuclideanMetric m;
  SlidingWindowDiversity sw(
      &m, Options(DiversityProblem::kRemoteEdge, 4, 8, 100, 25));
  StreamingResult r = sw.Query();
  EXPECT_TRUE(r.solution.empty());
  EXPECT_DOUBLE_EQ(r.diversity, 0.0);
}

TEST(SlidingWindowTest, ShortStreamActsLikeWholeStream) {
  EuclideanMetric m;
  SlidingWindowDiversity sw(
      &m, Options(DiversityProblem::kRemoteEdge, 4, 8, 1000, 250));
  PointSet pts = GenerateUniformCube(50, 2, /*seed=*/1);
  for (const Point& p : pts) sw.Update(p);
  StreamingResult r = sw.Query();
  EXPECT_EQ(r.solution.size(), 4u);
  EXPECT_GT(r.diversity, 0.0);
}

TEST(SlidingWindowTest, OldPointsExpire) {
  // Phase 1 of the stream contains far-apart "anchor" points; phase 2 is a
  // tight cluster. Once phase 1 slides out of the window, the solution must
  // consist only of phase-2 points (small diversity).
  EuclideanMetric m;
  size_t window = 400, block = 100;
  SlidingWindowDiversity sw(
      &m, Options(DiversityProblem::kRemoteEdge, 3, 6, window, block));

  for (int i = 0; i < 200; ++i) {
    sw.Update(Point::Dense2(static_cast<float>(i % 4) * 100.0f, 0.0f));
  }
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    sw.Update(Point::Dense2(static_cast<float>(rng.NextDouble()),
                            static_cast<float>(rng.NextDouble())));
  }
  StreamingResult r = sw.Query();
  ASSERT_EQ(r.solution.size(), 3u);
  // All anchors are >= 100 apart; the cluster has diameter <= sqrt(2).
  EXPECT_LT(r.diversity, 2.0);
  for (const Point& p : r.solution) {
    EXPECT_LE(p.dense_values()[0], 1.0f);  // no expired anchor survives
  }
}

TEST(SlidingWindowTest, RecentFarPointIsFound) {
  EuclideanMetric m;
  SlidingWindowDiversity sw(
      &m, Options(DiversityProblem::kRemoteEdge, 2, 4, 300, 100));
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    sw.Update(Point::Dense2(static_cast<float>(rng.NextDouble()),
                            static_cast<float>(rng.NextDouble())));
  }
  sw.Update(Point::Dense2(1000.0f, 1000.0f));  // recent outlier
  StreamingResult r = sw.Query();
  EXPECT_GT(r.diversity, 500.0);  // the outlier must be in the solution
}

TEST(SlidingWindowTest, MemoryIndependentOfStreamLength) {
  EuclideanMetric m;
  SlidingWindowDiversity sw(
      &m, Options(DiversityProblem::kRemoteEdge, 4, 8, 1000, 250));
  Rng rng(4);
  size_t peak = 0;
  for (int i = 0; i < 20000; ++i) {
    sw.Update(Point::Dense2(static_cast<float>(rng.NextDouble()),
                            static_cast<float>(rng.NextDouble())));
    peak = std::max(peak, sw.StoredPoints());
  }
  // <= (max_blocks + 1 running engine) * ~2(k'+1) points, far below 20000.
  EXPECT_LE(peak, 200u);
  EXPECT_EQ(sw.points_processed(), 20000u);
  EXPECT_LE(sw.retained_blocks(), 4u);
}

TEST(SlidingWindowTest, QualityTracksBatchSolveOnWindow) {
  EuclideanMetric m;
  size_t window = 2000, block = 500, k = 6;
  SlidingWindowDiversity sw(
      &m, Options(DiversityProblem::kRemoteEdge, k, 4 * k, window, block));
  SphereDatasetOptions dopts;
  dopts.n = 10000;
  dopts.k = k;
  dopts.seed = 5;
  SphereStream stream(dopts);
  PointSet history;
  while (stream.HasNext()) {
    Point p = stream.Next();
    history.push_back(p);
    sw.Update(p);
  }
  StreamingResult r = sw.Query();
  // Batch reference on the retained span (window rounded up to blocks).
  size_t span = std::min(history.size(),
                         window + block);  // block-granular slack
  PointSet recent(history.end() - static_cast<ptrdiff_t>(span),
                  history.end());
  std::vector<size_t> ref = SolveSequential(DiversityProblem::kRemoteEdge,
                                            recent, m, k);
  PointSet ref_sol;
  for (size_t idx : ref) ref_sol.push_back(recent[idx]);
  double ref_div =
      EvaluateDiversity(DiversityProblem::kRemoteEdge, ref_sol, m);
  EXPECT_GE(r.diversity, 0.4 * ref_div);
}

TEST(SlidingWindowTest, InjectiveProblemsUseDelegates) {
  EuclideanMetric m;
  SlidingWindowDiversity sw(
      &m, Options(DiversityProblem::kRemoteClique, 5, 10, 800, 200));
  PointSet pts = GenerateUniformCube(3000, 2, /*seed=*/6);
  for (const Point& p : pts) sw.Update(p);
  StreamingResult r = sw.Query();
  EXPECT_EQ(r.solution.size(), 5u);
  // Distinct points (delegate machinery supplies witnesses).
  for (size_t i = 0; i < r.solution.size(); ++i) {
    for (size_t j = i + 1; j < r.solution.size(); ++j) {
      EXPECT_FALSE(r.solution[i] == r.solution[j]);
    }
  }
  EXPECT_GT(r.diversity, 0.0);
}

TEST(SlidingWindowTest, AutoBlockSizing) {
  EuclideanMetric m;
  SlidingWindowOptions o;
  o.problem = DiversityProblem::kRemoteEdge;
  o.k = 4;
  o.k_prime = 8;
  o.window = 1000;
  o.block = 0;  // auto: max(1000/8, 8) = 125
  SlidingWindowDiversity sw(&m, o);
  for (int i = 0; i < 2000; ++i) {
    sw.Update(Point::Dense2(static_cast<float>(i), 0.0f));
  }
  EXPECT_EQ(sw.retained_blocks(), 8u);
}

TEST(SlidingWindowTest, PeakMemoryIsAHighWaterMarkNotCurrentResidency) {
  // Phase 1 streams spread-out points (fat per-block core-sets); phase 2
  // streams one duplicated point (minimal core-sets). After phase 2 expires
  // every fat block, current residency is far below the peak — the reported
  // peak_memory_points must remember the fat phase.
  EuclideanMetric m;
  SlidingWindowDiversity sw(
      &m, Options(DiversityProblem::kRemoteEdge, 4, 16, 400, 100));
  Rng rng(7);
  size_t external_max = 0;
  for (int i = 0; i < 600; ++i) {
    sw.Update(Point::Dense2(static_cast<float>(rng.NextDouble() * 1000.0),
                            static_cast<float>(rng.NextDouble() * 1000.0)));
    external_max = std::max(external_max, sw.StoredPoints());
  }
  for (int i = 0; i < 2000; ++i) {
    sw.Update(Point::Dense2(5.0f, 5.0f));
  }
  // The duplicate phase collapses residency (every block core-set degenerates
  // to ~1 distinct location) while the peak was set during the spread phase.
  EXPECT_GE(sw.PeakStoredPoints(), external_max);
  EXPECT_LT(sw.StoredPoints(), external_max);
  StreamingResult r = sw.Query();
  EXPECT_EQ(r.peak_memory_points, sw.PeakStoredPoints());
  EXPECT_GT(r.peak_memory_points, sw.StoredPoints());
}

TEST(SlidingWindowTest, PeakMemoryCoversEvictedBlocks) {
  // Stream long enough that early blocks are sealed and evicted between
  // queries: the peak must be monotone and at least every residency ever
  // externally observed, even though Query() is only called at the end.
  EuclideanMetric m;
  SlidingWindowDiversity sw(
      &m, Options(DiversityProblem::kRemoteClique, 3, 6, 200, 50));
  Rng rng(8);
  size_t external_max = 0;
  size_t last_peak = 0;
  for (int i = 0; i < 3000; ++i) {
    sw.Update(Point::Dense2(static_cast<float>(rng.NextDouble()),
                            static_cast<float>(rng.NextDouble())));
    external_max = std::max(external_max, sw.StoredPoints());
    EXPECT_GE(sw.PeakStoredPoints(), last_peak);  // monotone
    last_peak = sw.PeakStoredPoints();
  }
  EXPECT_GE(sw.PeakStoredPoints(), external_max);
  EXPECT_GE(sw.Query().peak_memory_points, external_max);
}

TEST(SlidingWindowDeathTest, WindowSmallerThanBlockRejected) {
  EuclideanMetric m;
  EXPECT_DEATH(SlidingWindowDiversity(
                   &m, Options(DiversityProblem::kRemoteEdge, 4, 8, 50, 100)),
               "CHECK failed");
}

}  // namespace
}  // namespace diverse
