#include "core/generalized_coreset.h"

#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(GeneralizedCoresetTest, SizesAndExpansion) {
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(0, 0), 3);
  gc.Add(Point::Dense2(1, 0), 1);
  EXPECT_EQ(gc.size(), 2u);
  EXPECT_EQ(gc.ExpandedSize(), 4u);
  auto e = gc.Expand();
  ASSERT_EQ(e.points.size(), 4u);
  EXPECT_EQ(e.kernel_id[0], 0u);
  EXPECT_EQ(e.kernel_id[2], 0u);
  EXPECT_EQ(e.kernel_id[3], 1u);
}

TEST(GeneralizedCoresetTest, CappedExpansion) {
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(0, 0), 5);
  gc.Add(Point::Dense2(1, 0), 2);
  auto e = gc.ExpandCapped(3);
  EXPECT_EQ(e.points.size(), 5u);  // min(5,3) + min(2,3)
}

TEST(GeneralizedCoresetTest, CoherentSubsetRelation) {
  GeneralizedCoreset big;
  big.Add(Point::Dense2(0, 0), 3);
  big.Add(Point::Dense2(1, 0), 2);
  GeneralizedCoreset small;
  small.Add(Point::Dense2(0, 0), 2);
  EXPECT_TRUE(small.IsCoherentSubsetOf(big));
  EXPECT_FALSE(big.IsCoherentSubsetOf(small));
  GeneralizedCoreset over;
  over.Add(Point::Dense2(1, 0), 3);  // multiplicity exceeds big's 2
  EXPECT_FALSE(over.IsCoherentSubsetOf(big));
}

TEST(GeneralizedCoresetTest, MergeConcatenates) {
  GeneralizedCoreset a, b;
  a.Add(Point::Dense2(0, 0), 1);
  b.Add(Point::Dense2(1, 0), 2);
  std::vector<GeneralizedCoreset> parts = {a, b};
  GeneralizedCoreset merged = GeneralizedCoreset::Merge(parts);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.ExpandedSize(), 3u);
}

TEST(GeneralizedCoresetTest, ExpansionMatrixReplicasAtZero) {
  EuclideanMetric m;
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(0, 0), 2);
  gc.Add(Point::Dense2(3, 4), 1);
  auto e = gc.Expand();
  DistanceMatrix d = ExpansionDistanceMatrix(e, m);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 0.0);  // two replicas of the first entry
  EXPECT_DOUBLE_EQ(d.at(0, 2), 5.0);
}

TEST(GmmGenCoresetTest, MatchesGmmExtCounts) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(120, 2, /*seed=*/3);
  size_t k = 4, k_prime = 10;
  GeneralizedCoreset gc = GmmGenCoreset(pts, m, k, k_prime);
  EXPECT_EQ(gc.size(), k_prime);
  // Every multiplicity in [1, k]; total expanded size at most k * k'.
  for (const WeightedPoint& e : gc.entries()) {
    EXPECT_GE(e.multiplicity, 1u);
    EXPECT_LE(e.multiplicity, k);
  }
  EXPECT_LE(gc.ExpandedSize(), k * k_prime);
  EXPECT_GE(gc.ExpandedSize(), k_prime);
}

TEST(GmmGenCoresetTest, RangeOutputMatchesKernelRange) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(100, 2, /*seed=*/4);
  double range = -1.0;
  GeneralizedCoreset gc = GmmGenCoreset(pts, m, 3, 8, &range);
  ASSERT_GE(range, 0.0);
  // Every input point is within `range` of some kernel point.
  for (const Point& p : pts) {
    double dist = 1e100;
    for (const WeightedPoint& e : gc.entries()) {
      dist = std::min(dist, m.Distance(p, e.point));
    }
    EXPECT_LE(dist, range + 1e-12);
  }
}

TEST(InstantiateTest, RecoversDistinctDelegates) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(60, 2, /*seed=*/5);
  double range = 0.0;
  GeneralizedCoreset gc = GmmGenCoreset(pts, m, 3, 6, &range);
  // Select a coherent subset of expanded size 3 by solving remote-clique.
  GeneralizedCoreset sel =
      SolveSequentialGeneralized(DiversityProblem::kRemoteClique, gc, m, 3);
  auto inst = Instantiate(sel, pts, m, range);
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->size(), 3u);
  // Distinctness.
  for (size_t i = 0; i < inst->size(); ++i) {
    for (size_t j = i + 1; j < inst->size(); ++j) {
      EXPECT_FALSE((*inst)[i] == (*inst)[j]);
    }
  }
}

TEST(InstantiateTest, FailsWhenPointsCannotSupply) {
  EuclideanMetric m;
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(0, 0), 3);
  PointSet pts = {Point::Dense2(0, 0), Point::Dense2(0.01f, 0)};
  // Only 2 points within any radius of the kernel point; need 3.
  EXPECT_FALSE(Instantiate(gc, pts, m, 0.5).has_value());
}

// Lemma 7: div(I(T)) >= gen-div(T) - f(k) * 2 * delta.
TEST(InstantiateTest, Lemma7Bound) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    PointSet pts = GenerateUniformCube(80, 2, seed);
    double range = 0.0;
    size_t k = 4;
    GeneralizedCoreset gc = GmmGenCoreset(pts, m, k, 8, &range);
    for (DiversityProblem p :
         {DiversityProblem::kRemoteClique, DiversityProblem::kRemoteStar,
          DiversityProblem::kRemoteBipartition,
          DiversityProblem::kRemoteTree}) {
      GeneralizedCoreset sel = SolveSequentialGeneralized(p, gc, m, k);
      auto inst = Instantiate(sel, pts, m, range);
      ASSERT_TRUE(inst.has_value()) << ProblemName(p) << " seed " << seed;
      double gen_div = EvaluateGeneralizedDiversity(p, sel, m);
      double div = EvaluateDiversity(p, *inst, m);
      double bound = gen_div - DiversityTermCount(p, k) * 2.0 * range;
      EXPECT_GE(div + 1e-9, bound) << ProblemName(p) << " seed " << seed;
    }
  }
}

TEST(GeneralizedCoresetDeathTest, ZeroMultiplicityRejected) {
  GeneralizedCoreset gc;
  EXPECT_DEATH(gc.Add(Point::Dense2(0, 0), 0), "CHECK failed");
}

}  // namespace
}  // namespace diverse
