// End-to-end tests of the multi-process runtime (comm/socket_engine.h):
// fault-free socket runs must be bit-identical to the in-process loopback
// simulator, tree reduction must equal the single-aggregator path, and
// every transport fault — injected SIGKILL, dropped connection, corrupted
// frame, delayed reply, plus an unscripted external kill — must recover
// through the executor's retry machinery or degrade into a certified
// DegradedResult, deterministically under a fixed fault schedule.

#include <signal.h>

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "comm/socket_engine.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "mapreduce/fault_injector.h"
#include "mapreduce/mr_diversity.h"

namespace diverse {
namespace {

bool SamePoints(const PointSet& a, const PointSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

// A small mixed dense input; sparse variant built from its coordinates.
PointSet DenseInput() { return GenerateGaussianBlobs(160, 4, 3, 0.05, 11); }

PointSet SparseInput() {
  PointSet dense = DenseInput();
  PointSet sparse;
  sparse.reserve(dense.size());
  // Spread each point's coords over a wider sparse dimension, keeping one
  // explicit stored zero so the CSR path is genuinely exercised end to end.
  for (const Point& p : dense) {
    const std::vector<float>& v = p.dense_values();
    std::vector<uint32_t> idx;
    std::vector<float> val;
    for (size_t j = 0; j < v.size(); ++j) {
      idx.push_back(static_cast<uint32_t>(3 * j + 1));
      val.push_back(j == 0 ? v[j] : (v[j] == 0.0f ? 0.25f : v[j]));
    }
    sparse.push_back(Point::Sparse(std::move(idx), std::move(val), 16));
  }
  return sparse;
}

MrOptions BaseOptions() {
  MrOptions o;
  o.k = 6;
  o.k_prime = 8;
  o.num_partitions = 4;
  o.num_workers = 4;
  o.seed = 5;
  return o;
}

SocketEngineOptions SocketOptions(const std::string& metric,
                                  DiversityProblem problem) {
  SocketEngineOptions so;
  so.num_workers = 2;
  so.metric = metric;
  so.problem = problem;
  so.rpc_deadline_ms = 20000;
  return so;
}

struct MetricCase {
  const Metric* metric;
  std::string name;
};

// ---------------------------------------------------------------------------
// Fault-free bit-identity: socket == loopback.

TEST(DistributedTest, TwoRoundDriverMatchesLoopbackAcrossMetricsAndLayouts) {
  EuclideanMetric euclid;
  ManhattanMetric manhattan;
  const MetricCase cases[] = {{&euclid, "euclidean"},
                              {&manhattan, "manhattan"}};
  const DiversityProblem problem = DiversityProblem::kRemoteEdge;
  for (const MetricCase& mc : cases) {
    SocketEngine socket(SocketOptions(mc.name, problem));
    ASSERT_TRUE(socket.Healthy().ok()) << socket.Healthy().ToString();
    for (const PointSet& input : {DenseInput(), SparseInput()}) {
      MrOptions opts = BaseOptions();
      MapReduceDiversity loopback_mr(mc.metric, problem, opts);
      StatusOr<MrResult> base = loopback_mr.TryRun(input);
      ASSERT_TRUE(base.ok()) << base.status().ToString();

      opts.engine = &socket;
      MapReduceDiversity socket_mr(mc.metric, problem, opts);
      StatusOr<MrResult> remote = socket_mr.TryRun(input);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();

      EXPECT_TRUE(SamePoints(base->solution, remote->solution))
          << mc.name << ": socket solution diverged from loopback";
      EXPECT_EQ(base->diversity, remote->diversity) << mc.name;
      EXPECT_EQ(base->coreset_size, remote->coreset_size) << mc.name;
      EXPECT_FALSE(remote->degraded.has_value());
    }
  }
}

TEST(DistributedTest, GeneralizedDriverMatchesLoopback) {
  EuclideanMetric euclid;
  ManhattanMetric manhattan;
  const MetricCase cases[] = {{&euclid, "euclidean"},
                              {&manhattan, "manhattan"}};
  // An injective-proxy problem exercises GMM-GEN + gen-solve + instantiate.
  const DiversityProblem problem = DiversityProblem::kRemoteClique;
  for (const MetricCase& mc : cases) {
    SocketEngine socket(SocketOptions(mc.name, problem));
    ASSERT_TRUE(socket.Healthy().ok()) << socket.Healthy().ToString();
    for (const PointSet& input : {DenseInput(), SparseInput()}) {
      MrOptions opts = BaseOptions();
      MapReduceDiversity loopback_mr(mc.metric, problem, opts);
      StatusOr<MrResult> base = loopback_mr.TryRunGeneralized(input);
      ASSERT_TRUE(base.ok()) << base.status().ToString();

      opts.engine = &socket;
      MapReduceDiversity socket_mr(mc.metric, problem, opts);
      StatusOr<MrResult> remote = socket_mr.TryRunGeneralized(input);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();

      EXPECT_TRUE(SamePoints(base->solution, remote->solution)) << mc.name;
      EXPECT_EQ(base->diversity, remote->diversity) << mc.name;
      EXPECT_FALSE(remote->degraded.has_value());
    }
  }
}

// ---------------------------------------------------------------------------
// Tree reduction == single aggregator.

TEST(DistributedTest, TreeReduceMatchesSingleAggregator) {
  EuclideanMetric metric;
  const PointSet input = DenseInput();
  MrOptions opts = BaseOptions();
  opts.num_partitions = 7;  // odd width: exercises the carried element
  MapReduceDiversity flat(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> base = flat.TryRun(input);
  ASSERT_TRUE(base.ok());

  opts.tree_reduce = true;
  MapReduceDiversity tree(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> reduced = tree.TryRun(input);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  EXPECT_TRUE(SamePoints(base->solution, reduced->solution));
  EXPECT_EQ(base->diversity, reduced->diversity);
  EXPECT_EQ(base->coreset_size, reduced->coreset_size);
  // ceil(log2(7)) merge levels on top of coreset + solve.
  EXPECT_EQ(reduced->rounds, base->rounds + 3);

  SocketEngine socket(
      SocketOptions("euclidean", DiversityProblem::kRemoteEdge));
  ASSERT_TRUE(socket.Healthy().ok());
  opts.engine = &socket;
  MapReduceDiversity remote_tree(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> remote = remote_tree.TryRun(input);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_TRUE(SamePoints(base->solution, remote->solution));
  EXPECT_EQ(base->diversity, remote->diversity);
}

// ---------------------------------------------------------------------------
// Injected transport faults: each must recover to the fault-free result.

struct TransportFaultCase {
  const char* schedule;
  const char* name;
  uint64_t rpc_deadline_ms;
  // Crash, drop and timeout all kill + respawn the worker; frame
  // corruption leaves the stream in sync and must NOT cost a respawn.
  bool expect_respawn;
};

TEST(DistributedTest, InjectedTransportFaultsRecoverBitIdentically) {
  EuclideanMetric metric;
  const PointSet input = DenseInput();
  MrOptions opts = BaseOptions();
  MapReduceDiversity clean(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> base = clean.TryRun(input);
  ASSERT_TRUE(base.ok());

  const TransportFaultCase cases[] = {
      {"coreset:1:0:worker-crash", "worker crash", 20000, true},
      {"coreset:2:0:conn-drop", "connection drop", 20000, true},
      {"coreset:0:0:frame-corrupt", "frame corruption", 20000, false},
      // The 800ms injected delay must lose the race against this deadline.
      {"solve:0:0:reply-delay:800", "reply delay", 200, true},
  };
  for (const TransportFaultCase& tc : cases) {
    StatusOr<FaultInjector> faults = FaultInjector::Parse(tc.schedule);
    ASSERT_TRUE(faults.ok()) << tc.schedule;
    SocketEngineOptions so =
        SocketOptions("euclidean", DiversityProblem::kRemoteEdge);
    so.rpc_deadline_ms = tc.rpc_deadline_ms;
    SocketEngine socket(so);
    ASSERT_TRUE(socket.Healthy().ok());

    MrOptions faulty = opts;
    faulty.faults = &*faults;
    faulty.engine = &socket;
    MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, faulty);
    StatusOr<MrResult> result = mr.TryRun(input);
    ASSERT_TRUE(result.ok()) << tc.name << ": " << result.status().ToString();
    EXPECT_TRUE(SamePoints(base->solution, result->solution)) << tc.name;
    EXPECT_EQ(base->diversity, result->diversity) << tc.name;
    EXPECT_FALSE(result->degraded.has_value()) << tc.name;
    EXPECT_GE(result->task_retries, 1u) << tc.name;
    EXPECT_GE(result->faults_injected, 1u) << tc.name;
    EXPECT_GE(socket.stats().rpc_errors, 1u) << tc.name;
    if (tc.expect_respawn) {
      EXPECT_GE(socket.stats().respawns, 1u) << tc.name;
    } else {
      EXPECT_EQ(socket.stats().respawns, 0u) << tc.name;
    }
  }
}

// The same schedules on the loopback engine simulate the identical error
// taxonomy — backends are interchangeable under a fixed fault schedule.
TEST(DistributedTest, TransportFaultsSimulateIdenticallyOnLoopback) {
  EuclideanMetric metric;
  const PointSet input = DenseInput();
  MrOptions opts = BaseOptions();
  MapReduceDiversity clean(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> base = clean.TryRun(input);
  ASSERT_TRUE(base.ok());

  StatusOr<FaultInjector> faults = FaultInjector::Parse(
      "coreset:1:0:worker-crash,coreset:2:0:conn-drop,"
      "coreset:0:0:frame-corrupt,solve:0:0:reply-delay:800");
  ASSERT_TRUE(faults.ok());
  MrOptions faulty = opts;
  faulty.faults = &*faults;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, faulty);
  StatusOr<MrResult> result = mr.TryRun(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SamePoints(base->solution, result->solution));
  EXPECT_GE(result->task_retries, 4u);
  EXPECT_EQ(result->faults_injected, 4u);
}

// ---------------------------------------------------------------------------
// Permanent transport failure degrades deterministically.

TEST(DistributedTest, PersistentWorkerCrashDegradesDeterministically) {
  EuclideanMetric metric;
  const PointSet input = DenseInput();
  // Crash every attempt of partition 1: the task exhausts its budget and
  // the run must complete degraded on the surviving partitions.
  StatusOr<FaultInjector> faults = FaultInjector::Parse(
      "coreset:1:0:worker-crash,coreset:1:1:worker-crash,"
      "coreset:1:2:worker-crash");
  ASSERT_TRUE(faults.ok());

  MrOptions opts = BaseOptions();
  opts.faults = &*faults;
  MapReduceDiversity loopback_mr(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> base = loopback_mr.TryRun(input);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(base->degraded.has_value());

  for (int repeat = 0; repeat < 2; ++repeat) {
    SocketEngine socket(
        SocketOptions("euclidean", DiversityProblem::kRemoteEdge));
    ASSERT_TRUE(socket.Healthy().ok());
    MrOptions sopts = opts;
    sopts.engine = &socket;
    MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, sopts);
    StatusOr<MrResult> result = mr.TryRun(input);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->degraded.has_value());
    EXPECT_EQ(result->degraded->failed_partitions,
              std::vector<size_t>{1u});
    EXPECT_GT(result->degraded->surviving_points, 0u);
    EXPECT_LT(result->degraded->surviving_fraction, 1.0);
    EXPECT_GT(result->degraded->approx_factor, 0.0);
    // Deterministic across backends and repeats under the fixed schedule.
    EXPECT_TRUE(SamePoints(base->solution, result->solution));
    EXPECT_EQ(base->diversity, result->diversity);
    EXPECT_EQ(base->degraded->surviving_points,
              result->degraded->surviving_points);
  }
}

TEST(DistributedTest, DegradationDisabledSurfacesTransportError) {
  EuclideanMetric metric;
  StatusOr<FaultInjector> faults = FaultInjector::Parse(
      "coreset:1:0:conn-drop,coreset:1:1:conn-drop,coreset:1:2:conn-drop");
  ASSERT_TRUE(faults.ok());
  SocketEngine socket(
      SocketOptions("euclidean", DiversityProblem::kRemoteEdge));
  ASSERT_TRUE(socket.Healthy().ok());
  MrOptions opts = BaseOptions();
  opts.faults = &*faults;
  opts.engine = &socket;
  opts.allow_degraded = false;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> result = mr.TryRun(DenseInput());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Unscripted failures: external SIGKILL, liveness heartbeat.

TEST(DistributedTest, ExternallyKilledWorkerIsRespawnedMidRun) {
  EuclideanMetric metric;
  const PointSet input = DenseInput();
  MrOptions opts = BaseOptions();
  MapReduceDiversity clean(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> base = clean.TryRun(input);
  ASSERT_TRUE(base.ok());

  // One worker, killed from outside between runs: the first RPC of the next
  // run hits a dead process (EOF -> kAborted), the executor retries, and
  // the retry draws the respawned worker.
  SocketEngineOptions so =
      SocketOptions("euclidean", DiversityProblem::kRemoteEdge);
  so.num_workers = 1;
  SocketEngine socket(so);
  ASSERT_TRUE(socket.Healthy().ok());
  const pid_t victim = socket.WorkerPidForTest(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  MrOptions sopts = opts;
  sopts.engine = &socket;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, sopts);
  StatusOr<MrResult> result = mr.TryRun(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SamePoints(base->solution, result->solution));
  EXPECT_GE(result->task_retries, 1u);
  EXPECT_GE(socket.stats().respawns, 1u);
  EXPECT_NE(socket.WorkerPidForTest(0), victim);
}

TEST(DistributedTest, HeartbeatDetectsDeadWorkerWhileIdle) {
  SocketEngineOptions so =
      SocketOptions("euclidean", DiversityProblem::kRemoteEdge);
  so.num_workers = 1;
  so.heartbeat_ms = 40;
  SocketEngine socket(so);
  ASSERT_TRUE(socket.Healthy().ok());
  const pid_t victim = socket.WorkerPidForTest(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  // No RPC traffic at all: only the liveness probe can notice the death.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (socket.stats().heartbeat_failures == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(socket.stats().heartbeat_failures, 1u);
  EXPECT_GE(socket.stats().respawns, 1u);

  // The respawned worker serves fault-free traffic bit-identically.
  EuclideanMetric metric;
  const PointSet input = DenseInput();
  MrOptions opts = BaseOptions();
  MapReduceDiversity clean(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> base = clean.TryRun(input);
  ASSERT_TRUE(base.ok());
  opts.engine = &socket;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> result = mr.TryRun(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SamePoints(base->solution, result->solution));
}

// ---------------------------------------------------------------------------
// Write deadline: a stalled reader must fail the attempt in bounded time,
// not hang the driver in a blocking send() forever.

TEST(DistributedTest, StalledReaderFailsShipWithDeadlineNotHang) {
  // A partition far larger than the AF_UNIX socket buffer (~208KB default):
  // with the worker's read loop stalled, the driver's chunked write fills
  // the pipe and must surface kDeadlineExceeded within the deadline budget,
  // where the old blocking SendAll sat in send() until the stall ended.
  const PointSet big = GenerateGaussianBlobs(30000, 8, 3, 0.05, 17);
  SocketEngineOptions so =
      SocketOptions("euclidean", DiversityProblem::kRemoteEdge);
  so.num_workers = 1;
  so.rpc_deadline_ms = 300;
  so.worker_cache_bytes = 0;  // force the full ship every time
  SocketEngine socket(so);
  ASSERT_TRUE(socket.Healthy().ok());

  TaskEnvelope env;
  env.round = "coreset";
  env.fault = FaultKind::kReadStall;  // worker sleeps without reading
  const auto start = std::chrono::steady_clock::now();
  StatusOr<PointSet> result = socket.Coreset(env, big, CoresetSpec{8, 0, false});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  // Bounded: deadline plus generous respawn/teardown slack, nowhere near
  // the multi-second injected stall.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);

  // The respawned worker serves the retry; a fault-free call completes.
  TaskEnvelope clean_env;
  clean_env.round = "coreset";
  StatusOr<PointSet> retry =
      socket.Coreset(clean_env, big, CoresetSpec{8, 0, false});
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(DistributedTest, ReadStallFaultRecoversThroughRetryBitIdentically) {
  EuclideanMetric metric;
  const PointSet input = DenseInput();
  MrOptions opts = BaseOptions();
  MapReduceDiversity clean(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> base = clean.TryRun(input);
  ASSERT_TRUE(base.ok());

  StatusOr<FaultInjector> faults =
      FaultInjector::Parse("coreset:1:0:read-stall");
  ASSERT_TRUE(faults.ok());
  SocketEngineOptions so =
      SocketOptions("euclidean", DiversityProblem::kRemoteEdge);
  so.rpc_deadline_ms = 300;
  SocketEngine socket(so);
  ASSERT_TRUE(socket.Healthy().ok());
  MrOptions faulty = opts;
  faulty.faults = &*faults;
  faulty.engine = &socket;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, faulty);
  StatusOr<MrResult> result = mr.TryRun(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SamePoints(base->solution, result->solution));
  EXPECT_EQ(base->diversity, result->diversity);
  EXPECT_GE(result->task_retries, 1u);
  EXPECT_GE(socket.stats().rpc_errors, 1u);
}

// ---------------------------------------------------------------------------
// Worker-side partition cache, end to end over real sockets.

TEST(DistributedTest, RepeatedSolveHitsWorkerCacheBitIdentically) {
  EuclideanMetric metric;
  const PointSet input = DenseInput();
  MrOptions opts = BaseOptions();
  MapReduceDiversity loopback_mr(&metric, DiversityProblem::kRemoteEdge, opts);
  StatusOr<MrResult> base = loopback_mr.TryRun(input);
  ASSERT_TRUE(base.ok());

  // One worker makes routing deterministic: every warm-run partition is
  // asked of the worker that cached it in the cold run.
  SocketEngineOptions so =
      SocketOptions("euclidean", DiversityProblem::kRemoteEdge);
  so.num_workers = 1;
  SocketEngine socket(so);
  ASSERT_TRUE(socket.Healthy().ok());
  ASSERT_TRUE(socket.WantsPartitionCacheKeys());
  opts.engine = &socket;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, opts);

  StatusOr<MrResult> cold = mr.TryRun(input);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const size_t cold_bytes = socket.stats().request_bytes_sent;

  StatusOr<MrResult> warm = mr.TryRun(input);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // The cached solve is bit-identical to both the cold solve and loopback.
  EXPECT_TRUE(SamePoints(base->solution, warm->solution));
  EXPECT_TRUE(SamePoints(cold->solution, warm->solution));
  EXPECT_EQ(base->diversity, warm->diversity);
  // The second run's partition ships were served by reference.
  EXPECT_GE(socket.stats().cache_hits, opts.num_partitions);
  // A by-ref stub is tiny: the warm run must add far less request volume
  // than the cold run's full partition ships.
  const size_t warm_bytes = socket.stats().request_bytes_sent - cold_bytes;
  EXPECT_LT(warm_bytes, cold_bytes / 2);
}

TEST(DistributedTest, CacheEvictFaultFallsBackToFullReship) {
  EuclideanMetric metric;
  const PointSet input = DenseInput();
  MrOptions opts = BaseOptions();
  MapReduceDiversity loopback_mr(&metric, DiversityProblem::kRemoteClique,
                                 opts);
  StatusOr<MrResult> base = loopback_mr.TryRunGeneralized(input);
  ASSERT_TRUE(base.ok());

  // One worker so the gen-coreset round (round 1) warms the same cache the
  // instantiate round (round 3) reads; the injected evict then forces the
  // by-ref attempt to miss and re-ship — a success-path fault.
  StatusOr<FaultInjector> faults =
      FaultInjector::Parse("instantiate:1:0:cache-evict");
  ASSERT_TRUE(faults.ok());
  SocketEngineOptions so =
      SocketOptions("euclidean", DiversityProblem::kRemoteClique);
  so.num_workers = 1;
  SocketEngine socket(so);
  ASSERT_TRUE(socket.Healthy().ok());
  MrOptions sopts = opts;
  sopts.faults = &*faults;
  sopts.engine = &socket;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteClique, sopts);
  StatusOr<MrResult> result = mr.TryRunGeneralized(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SamePoints(base->solution, result->solution));
  EXPECT_EQ(base->diversity, result->diversity);
  // The evicted by-ref attempt came back as a miss and was transparently
  // re-shipped: no retry, no respawn, just one recorded miss.
  EXPECT_GE(socket.stats().cache_misses, 1u);
  EXPECT_EQ(socket.stats().respawns, 0u);
  EXPECT_GE(socket.stats().cache_hits, 1u);  // the non-faulted partitions
}

// ---------------------------------------------------------------------------
// Engine hygiene.

TEST(DistributedTest, MissingWorkerBinaryReportsUnhealthy) {
  SocketEngineOptions so =
      SocketOptions("euclidean", DiversityProblem::kRemoteEdge);
  so.num_workers = 1;
  so.worker_binary = "/nonexistent/diverse_worker";
  so.max_respawn_attempts = 0;
  SocketEngine socket(so);
  EXPECT_FALSE(socket.Healthy().ok());
  EXPECT_EQ(socket.Healthy().code(), StatusCode::kUnavailable);
}

TEST(DistributedTest, UnknownMetricNameSurfacesWorkerError) {
  // The engine ships metric names, not metric objects; a non-builtin name
  // must come back as a diagnosable worker-side error, not silence.
  SocketEngineOptions so =
      SocketOptions("mystery-metric", DiversityProblem::kRemoteEdge);
  so.num_workers = 1;
  SocketEngine socket(so);
  ASSERT_TRUE(socket.Healthy().ok());
  TaskEnvelope env;
  env.round = "coreset";
  StatusOr<PointSet> result =
      socket.Coreset(env, DenseInput(), CoresetSpec{4, 0, false});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("mystery-metric"),
            std::string::npos);
}

TEST(DistributedTest, BackendNamesAreDistinct) {
  EuclideanMetric metric;
  LoopbackEngine loopback(&metric, DiversityProblem::kRemoteEdge);
  SocketEngineOptions so =
      SocketOptions("euclidean", DiversityProblem::kRemoteEdge);
  so.num_workers = 1;
  SocketEngine socket(so);
  EXPECT_EQ(loopback.BackendName(), "loopback");
  EXPECT_EQ(socket.BackendName(), "socket");
}

}  // namespace
}  // namespace diverse
