#include "core/mst.h"

#include <algorithm>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(MstTest, TrivialSizes) {
  EXPECT_DOUBLE_EQ(MstWeight(DistanceMatrix(0)), 0.0);
  EXPECT_DOUBLE_EQ(MstWeight(DistanceMatrix(1)), 0.0);
  EXPECT_TRUE(MstEdges(DistanceMatrix(1)).empty());
}

TEST(MstTest, TwoPoints) {
  DistanceMatrix d(2);
  d.set(0, 1, 7.0);
  EXPECT_DOUBLE_EQ(MstWeight(d), 7.0);
  auto edges = MstEdges(d);
  ASSERT_EQ(edges.size(), 1u);
}

TEST(MstTest, PathGraphStructure) {
  // Points on a line at 0, 1, 3, 6: MST is the chain, weight 1+2+3 = 6.
  EuclideanMetric m;
  PointSet pts = {Point::Dense({0.0f}), Point::Dense({1.0f}),
                  Point::Dense({3.0f}), Point::Dense({6.0f})};
  DistanceMatrix d(pts, m);
  EXPECT_DOUBLE_EQ(MstWeight(d), 6.0);
}

TEST(MstTest, KnownSquare) {
  // Unit square: MST = 3 sides of length 1.
  EuclideanMetric m;
  PointSet pts = {Point::Dense2(0, 0), Point::Dense2(1, 0),
                  Point::Dense2(1, 1), Point::Dense2(0, 1)};
  EXPECT_DOUBLE_EQ(MstWeight(DistanceMatrix(pts, m)), 3.0);
}

TEST(MstTest, EdgesFormSpanningTree) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(20, 2, /*seed=*/3);
  DistanceMatrix d(pts, m);
  auto edges = MstEdges(d);
  ASSERT_EQ(edges.size(), pts.size() - 1);
  // Union-find connectivity check.
  std::vector<size_t> parent(pts.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (auto [a, b] : edges) {
    size_t ra = find(a), rb = find(b);
    EXPECT_NE(ra, rb) << "MST edge creates a cycle";
    parent[ra] = rb;
  }
  for (size_t i = 1; i < pts.size(); ++i) EXPECT_EQ(find(0), find(i));
}

TEST(MstTest, WeightIsMinimalOnSmallInstanceByBruteForce) {
  // Compare against brute force over all spanning trees via Cayley
  // enumeration on 5 vertices (125 labeled trees via Prufer sequences).
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(5, 2, /*seed=*/9);
  DistanceMatrix d(pts, m);
  double best = 1e100;
  // All Prufer sequences of length 3 over {0..4}.
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      for (int c = 0; c < 5; ++c) {
        int prufer[3] = {a, b, c};
        int degree[5];
        for (int i = 0; i < 5; ++i) degree[i] = 1;
        for (int x : prufer) degree[x]++;
        double w = 0.0;
        int deg[5];
        std::copy(degree, degree + 5, deg);
        bool used[5] = {false, false, false, false, false};
        for (int x : prufer) {
          for (int leaf = 0; leaf < 5; ++leaf) {
            if (deg[leaf] == 1 && !used[leaf]) {
              w += d.at(leaf, x);
              used[leaf] = true;
              deg[x]--;
              break;
            }
          }
        }
        int last[2];
        int cnt = 0;
        for (int i = 0; i < 5; ++i) {
          if (!used[i]) last[cnt++] = i;
        }
        w += d.at(last[0], last[1]);
        best = std::min(best, w);
      }
    }
  }
  EXPECT_NEAR(MstWeight(d), best, 1e-9);
}

}  // namespace
}  // namespace diverse
