// Exact-oracle approximation-ratio suite: on seeded tiny instances
// (n <= 14, every metric, dense and sparse layouts), each backend's
// returned objective must sit within the paper's proven approximation
// factor of the brute-force optimum from core/exact.cc — for ALL SIX
// DiversityProblem variants, with mixed-precision screening on and off,
// at 1/2/8 threads. Screening is bit-identical by contract and thread
// counts must not change deterministic selections, so the assertions are
// the same in every configuration; running the whole grid is what pins
// the guarantees to the oracle rather than to a lucky configuration.
//
// Factors: the sequential algorithms carry SequentialAlpha(p) (Table 1:
// 2/2/2/3/4/3). The core-set backends (streaming SMM, MapReduce) are
// (alpha + eps)-approximate with eps shrinking in k'/k; on instances this
// small a factor-2 envelope for the core-set loss is conservative (the
// same envelope cross_backend_test uses). The local-search refinement of
// remote-clique starts from the matching's 2-approximation and only ever
// improves the objective, so it inherits the factor 2.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/solve.h"
#include "comm/socket_engine.h"
#include "core/cover_tree.h"
#include "core/diversity.h"
#include "core/exact.h"
#include "core/metric.h"
#include "core/point.h"
#include "core/screen.h"
#include "core/sequential.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace diverse {
namespace {

constexpr size_t kN = 14;
constexpr size_t kK = 3;
constexpr size_t kKPrime = 6;

// Dense points with a zeroed-coordinate mix so the support-based Jaccard
// distance is nontrivial on the dense layout too.
PointSet TinyDense(uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  for (size_t i = 0; i < kN; ++i) {
    std::vector<float> v(3);
    for (float& x : v) {
      x = rng.NextDouble() < 0.3 ? 0.0f
                                 : static_cast<float>(rng.NextDouble() + 0.1);
    }
    pts.push_back(Point::Dense(std::move(v)));
  }
  return pts;
}

PointSet TinySparse(uint64_t seed) {
  SparseTextOptions opts;
  opts.n = kN;
  opts.vocab_size = 30;
  opts.min_terms = 3;
  opts.max_terms = 8;
  opts.seed = seed;
  return GenerateSparseTextDataset(opts);
}

std::vector<std::unique_ptr<Metric>> AllMetrics() {
  std::vector<std::unique_ptr<Metric>> metrics;
  metrics.push_back(std::make_unique<EuclideanMetric>());
  metrics.push_back(std::make_unique<ManhattanMetric>());
  metrics.push_back(std::make_unique<CosineMetric>());
  metrics.push_back(std::make_unique<JaccardMetric>());
  return metrics;
}

struct NamedLayout {
  std::string name;
  PointSet pts;
};

std::vector<NamedLayout> Layouts() {
  std::vector<NamedLayout> layouts;
  layouts.push_back({"dense", TinyDense(401)});
  layouts.push_back({"sparse", TinySparse(402)});
  return layouts;
}

class ApproxRatioThreads : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Threads, ApproxRatioThreads,
                         ::testing::Values(1, 2, 8));

void ExpectWithinFactor(double achieved, double opt, double factor,
                        const std::string& ctx) {
  // A valid k-subset can never beat the optimum, and an alpha-approximate
  // algorithm must reach opt / alpha.
  EXPECT_LE(achieved, opt + 1e-9) << ctx;
  EXPECT_GE(achieved * factor + 1e-9, opt) << ctx;
}

TEST_P(ApproxRatioThreads, AllBackendsWithinProvenFactorOfOracle) {
  SetGlobalThreadPoolSize(GetParam());
  // Force the metric-index gate on so the indexed dimension of the grid
  // actually exercises the cover-tree traversals on these tiny instances
  // (the real profitability probe would gate them off as too small); the
  // indexing-off dimension pins the flat sweeps. Indexing is bit-identical
  // by contract, so the assertions are unchanged.
  IndexGate forced;
  forced.force = +1;
  SetIndexGateForTesting(forced);
  for (const NamedLayout& layout : Layouts()) {
    for (const auto& metric : AllMetrics()) {
      for (DiversityProblem p : kAllProblems) {
        double opt =
            ExactDiversityMaximization(p, layout.pts, *metric, kK).value;
        double alpha = SequentialAlpha(p);
        for (bool screening : {true, false}) {
        for (bool indexing : {true, false}) {
          ScopedScreening guard(screening);
          ScopedIndexing index_guard(indexing);
          std::string ctx = layout.name + "/" + metric->Name() + "/" +
                            ProblemName(p) +
                            (screening ? "/screened" : "/exact") +
                            (indexing ? "/indexed" : "/flat") +
                            "/threads=" + std::to_string(GetParam());
          // Sequential GMM / matching (per problem family).
          {
            SolveOptions o;
            o.problem = p;
            o.backend = Backend::kSequential;
            o.k = kK;
            o.screening = screening;
            SolveResult r = Solve(layout.pts, *metric, o);
            ASSERT_EQ(r.solution.size(), kK) << ctx;
            ExpectWithinFactor(r.diversity, opt, alpha, ctx + "/sequential");
          }
          // Streaming SMM(-EXT) core-set pipeline.
          {
            SolveOptions o;
            o.problem = p;
            o.backend = Backend::kStreaming;
            o.k = kK;
            o.k_prime = kKPrime;
            o.screening = screening;
            SolveResult r = Solve(layout.pts, *metric, o);
            ASSERT_EQ(r.solution.size(), kK) << ctx;
            ExpectWithinFactor(r.diversity, opt, 2.0 * alpha,
                               ctx + "/streaming");
          }
          // MapReduce core-set pipeline.
          {
            SolveOptions o;
            o.problem = p;
            o.backend = Backend::kMapReduce;
            o.k = kK;
            o.k_prime = kKPrime;
            o.num_partitions = 2;
            o.screening = screening;
            SolveResult r = Solve(layout.pts, *metric, o);
            ASSERT_EQ(r.solution.size(), kK) << ctx;
            ExpectWithinFactor(r.diversity, opt, 2.0 * alpha,
                               ctx + "/mapreduce");
          }
          // Local-search refinement (remote-clique only): starts from the
          // greedy matching and monotonically improves the clique sum.
          if (p == DiversityProblem::kRemoteClique) {
            Dataset data = Dataset::FromPoints(layout.pts);
            std::vector<size_t> initial = SolveSequential(p, data, *metric,
                                                          kK);
            double matching_value =
                EvaluateDiversitySubset(p, data, initial, *metric);
            std::vector<size_t> improved = LocalSearchRemoteClique(
                layout.pts, *metric, initial, /*max_sweeps=*/8);
            double ls_value =
                EvaluateDiversitySubset(p, data, improved, *metric);
            EXPECT_GE(ls_value + 1e-9, matching_value)
                << ctx << "/local-search";
            ExpectWithinFactor(ls_value, opt, alpha, ctx + "/local-search");
          }
        }
        }
      }
    }
  }
  SetIndexGateForTesting(IndexGate{});
  SetGlobalThreadPoolSize(1);
}

// Certified graceful degradation: when a round-1 partition permanently
// fails, the completed run's DegradedResult claims its solution is within
// `approx_factor` of the optimum over the *surviving* points. Pin that
// certificate to the brute-force oracle: rebuild the surviving sub-instance
// from the deterministic partitioning and enumerate its optimum.
TEST(ApproxRatioTest, DegradedRunCertifiedAgainstSurvivingOracle) {
  constexpr uint64_t kSeed = 5;
  // Kill partition 0 on every attempt (default retry budget: 3 attempts).
  FaultInjector faults;
  for (size_t attempt = 0; attempt < 3; ++attempt) {
    faults.Add({"coreset", 0, attempt, FaultKind::kCrash, 0});
  }
  for (const NamedLayout& layout : Layouts()) {
    for (const auto& metric : AllMetrics()) {
      for (DiversityProblem p : kAllProblems) {
        MrOptions o;
        o.k = kK;
        o.k_prime = kKPrime;
        o.num_partitions = 2;
        o.num_workers = 2;
        o.seed = kSeed;
        o.faults = &faults;
        MapReduceDiversity mr(metric.get(), p, o);
        StatusOr<MrResult> r = mr.TryRun(layout.pts);
        std::string ctx = layout.name + "/" + metric->Name() + "/" +
                          ProblemName(p) + "/degraded";
        ASSERT_TRUE(r.ok()) << ctx << ": " << r.status().ToString();
        ASSERT_TRUE(r->degraded.has_value()) << ctx;
        const DegradedResult& d = *r->degraded;
        ASSERT_EQ(d.failed_partitions, std::vector<size_t>{0}) << ctx;
        EXPECT_EQ(d.approx_factor, 2.0 * SequentialAlpha(p)) << ctx;
        EXPECT_EQ(d.surviving_points + layout.pts.size() / 2,
                  layout.pts.size())
            << ctx;
        // Rebuild the surviving sub-instance: partitioning is a pure
        // function of (input, parts, strategy, seed), so the survivors are
        // exactly the non-failed parts of the same split.
        std::vector<PointSet> parts =
            PartitionPoints(layout.pts, o.num_partitions, o.partition, kSeed,
                            metric.get());
        const PointSet& survivors = parts[1];
        ASSERT_EQ(survivors.size(), d.surviving_points) << ctx;
        double opt =
            ExactDiversityMaximization(p, survivors, *metric, kK).value;
        ASSERT_EQ(r->solution.size(), kK) << ctx;
        ExpectWithinFactor(r->diversity, opt, d.approx_factor, ctx);
      }
    }
  }
}

// The socket backend carries the same guarantees as the in-process
// simulator: fault-free runs sit within the proven factor of the oracle,
// and a partition lost to a *transport* failure (connection dropped on
// every attempt) degrades into the same certificate the in-process crash
// path issues — pinned to the brute-force optimum of the surviving
// sub-instance, exactly as above.
TEST(ApproxRatioTest, SocketBackendCertifiedAgainstOracle) {
  constexpr uint64_t kSeed = 5;
  FaultInjector faults;
  for (size_t attempt = 0; attempt < 3; ++attempt) {
    faults.Add({"coreset", 0, attempt, FaultKind::kConnDrop, 0});
  }
  const PointSet pts = TinyDense(401);
  for (const auto& metric : AllMetrics()) {
    for (DiversityProblem p : kAllProblems) {
      SocketEngineOptions so;
      so.num_workers = 2;
      so.metric = metric->Name();
      so.problem = p;
      SocketEngine engine(so);
      ASSERT_TRUE(engine.Healthy().ok()) << engine.Healthy().ToString();
      MrOptions o;
      o.k = kK;
      o.k_prime = kKPrime;
      o.num_partitions = 2;
      o.num_workers = 2;
      o.seed = kSeed;
      o.engine = &engine;
      const std::string ctx =
          std::string(metric->Name()) + "/" + ProblemName(p) + "/socket";

      // Fault-free distributed run: within the proven factor.
      MapReduceDiversity mr(metric.get(), p, o);
      StatusOr<MrResult> clean = mr.TryRun(pts);
      ASSERT_TRUE(clean.ok()) << ctx << ": " << clean.status().ToString();
      ASSERT_FALSE(clean->degraded.has_value()) << ctx;
      double opt_all = ExactDiversityMaximization(p, pts, *metric, kK).value;
      ExpectWithinFactor(clean->diversity, opt_all, 2.0 * SequentialAlpha(p),
                         ctx + "/clean");

      // Partition 0's link drops on every attempt: certified degradation.
      MrOptions fo = o;
      fo.faults = &faults;
      MapReduceDiversity faulty(metric.get(), p, fo);
      StatusOr<MrResult> r = faulty.TryRun(pts);
      ASSERT_TRUE(r.ok()) << ctx << ": " << r.status().ToString();
      ASSERT_TRUE(r->degraded.has_value()) << ctx;
      const DegradedResult& d = *r->degraded;
      ASSERT_EQ(d.failed_partitions, std::vector<size_t>{0}) << ctx;
      EXPECT_EQ(d.approx_factor, 2.0 * SequentialAlpha(p)) << ctx;
      std::vector<PointSet> parts = PartitionPoints(
          pts, o.num_partitions, o.partition, kSeed, metric.get());
      const PointSet& survivors = parts[1];
      ASSERT_EQ(survivors.size(), d.surviving_points) << ctx;
      double opt =
          ExactDiversityMaximization(p, survivors, *metric, kK).value;
      ASSERT_EQ(r->solution.size(), kK) << ctx;
      ExpectWithinFactor(r->diversity, opt, d.approx_factor, ctx);
    }
  }
}

// The oracle itself honors the structural lower bound used throughout the
// paper's proofs: div_k under any problem evaluated at the GMM solution is
// at least opt / alpha (this is what the per-backend assertions rest on,
// so pin it once directly against the enumerator).
TEST(ApproxRatioTest, OracleDominatesEveryReportedSolution) {
  EuclideanMetric metric;
  PointSet pts = TinyDense(77);
  for (DiversityProblem p : kAllProblems) {
    ExactResult exact = ExactDiversityMaximization(p, pts, metric, kK);
    ASSERT_EQ(exact.best_subset.size(), kK);
    // Re-evaluating the reported optimal subset reproduces the reported
    // value, and every sequential solution is dominated by it.
    Dataset data = Dataset::FromPoints(pts);
    EXPECT_NEAR(EvaluateDiversitySubset(p, data, exact.best_subset, metric),
                exact.value, 1e-12)
        << ProblemName(p);
    std::vector<size_t> seq = SolveSequential(p, data, metric, kK);
    EXPECT_LE(EvaluateDiversitySubset(p, data, seq, metric),
              exact.value + 1e-9)
        << ProblemName(p);
  }
}

}  // namespace
}  // namespace diverse
