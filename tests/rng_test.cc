#include "util/rng.h"

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace diverse {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsAboutHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(7);
  const int kBuckets = 10, kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(kBuckets)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(9);
  const int kDraws = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / kDraws;
  double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(10);
  Rng child = a.Split();
  // Splitting again from the same origin seed reproduces both streams.
  Rng b(10);
  Rng child2 = b.Split();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child.Next(), child2.Next());
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, SplitStreamsDoNotCollide) {
  Rng a(11);
  Rng child = a.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == child.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextInRangeFullInt64Span) {
  // lo == INT64_MIN, hi == INT64_MAX spans 2^64 values: the naive
  // hi - lo + 1 wraps to 0 and used to fire NextBounded's bound > 0 check.
  Rng rng(13);
  bool saw_negative = false, saw_nonnegative = false;
  for (int i = 0; i < 256; ++i) {
    int64_t v = rng.NextInRange(std::numeric_limits<int64_t>::min(),
                                std::numeric_limits<int64_t>::max());
    saw_negative |= (v < 0);
    saw_nonnegative |= (v >= 0);
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_nonnegative);
  // Deterministic for a fixed seed, like every other draw.
  Rng a(14), b(14);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.NextInRange(std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()),
              b.NextInRange(std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()));
  }
  // Nearly-full spans still go through the bounded path.
  for (int i = 0; i < 64; ++i) {
    int64_t v = rng.NextInRange(std::numeric_limits<int64_t>::min() + 1,
                                std::numeric_limits<int64_t>::max());
    EXPECT_GE(v, std::numeric_limits<int64_t>::min() + 1);
  }
}

TEST(RngDeathTest, NextBoundedRejectsZero) {
  Rng rng(12);
  EXPECT_DEATH(rng.NextBounded(0), "CHECK failed");
}

}  // namespace
}  // namespace diverse
