// Equivalence, accounting, and determinism tests for the batched distance
// kernels (Metric::DistanceToMany / RelaxAndArgFarthest over Dataset):
//   * batched results match the scalar Metric::Distance reference within
//     1e-12 for all four metrics on dense, sparse, and mixed datasets;
//   * CountingMetric adds exactly the number of evaluations a batched
//     kernel performs;
//   * batched parallel GMM selects the identical index sequence as the
//     scalar reference, at any thread count;
//   * Solve() exercises the Dataset path on the sequential, streaming, and
//     MapReduce backends with results identical to the PointSet shim.

#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "api/solve.h"
#include "core/dataset.h"
#include "core/gmm.h"
#include "core/metric.h"
#include "core/screen.h"
#include "core/sequential.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace diverse {
namespace {

PointSet DensePoints(size_t n, size_t dim, uint64_t seed) {
  return GenerateUniformCube(n, dim, seed);
}

PointSet SparsePoints(size_t n, uint64_t seed) {
  SparseTextOptions opts;
  opts.n = n;
  opts.vocab_size = 200;
  opts.seed = seed;
  return GenerateSparseTextDataset(opts);
}

PointSet MixedPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  for (size_t i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      std::vector<float> values(dim);
      for (float& v : values) v = static_cast<float>(rng.NextDouble());
      pts.push_back(Point::Dense(std::move(values)));
    } else {
      std::vector<uint32_t> indices;
      std::vector<float> values;
      for (uint32_t j = 0; j < dim; ++j) {
        if (rng.NextDouble() < 0.4) {
          indices.push_back(j);
          values.push_back(static_cast<float>(rng.NextDouble()));
        }
      }
      pts.push_back(Point::Sparse(std::move(indices), std::move(values),
                                  static_cast<uint32_t>(dim)));
    }
  }
  return pts;
}

std::vector<std::unique_ptr<Metric>> AllMetrics() {
  std::vector<std::unique_ptr<Metric>> metrics;
  metrics.push_back(std::make_unique<EuclideanMetric>());
  metrics.push_back(std::make_unique<ManhattanMetric>());
  metrics.push_back(std::make_unique<CosineMetric>());
  metrics.push_back(std::make_unique<JaccardMetric>());
  return metrics;
}

std::vector<PointSet> AllDatasets() {
  std::vector<PointSet> sets;
  sets.push_back(DensePoints(60, 5, /*seed=*/11));
  sets.push_back(SparsePoints(60, /*seed=*/12));
  sets.push_back(MixedPoints(60, 12, /*seed=*/13));
  return sets;
}

TEST(BatchKernelTest, DistanceToManyMatchesScalarAllMetricsAllLayouts) {
  for (const PointSet& pts : AllDatasets()) {
    Dataset data = Dataset::FromPoints(pts);
    for (const auto& metric : AllMetrics()) {
      const Point& q = pts[7];
      std::vector<double> out(pts.size());
      metric->DistanceToMany(q, data, 0, out);
      for (size_t i = 0; i < pts.size(); ++i) {
        EXPECT_NEAR(out[i], metric->Distance(pts[i], q), 1e-12)
            << metric->Name() << " row " << i;
      }
    }
  }
}

TEST(BatchKernelTest, DistanceToManySupportsSubranges) {
  PointSet pts = MixedPoints(40, 10, /*seed=*/21);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric metric;
  const Point& q = pts[0];
  std::vector<double> out(17);
  metric.DistanceToMany(q, data, 5, out);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], metric.Distance(pts[5 + i], q), 1e-12);
  }
}

TEST(BatchKernelTest, DistanceToManyAcceptsExternalQuery) {
  PointSet pts = DensePoints(30, 3, /*seed=*/22);
  Dataset data = Dataset::FromPoints(pts);
  CosineMetric metric;
  Point q = Point::Dense3(0.3f, 0.9f, 0.1f);  // not a dataset row
  std::vector<double> out(pts.size());
  metric.DistanceToMany(q, data, 0, out);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(out[i], metric.Distance(pts[i], q), 1e-12);
  }
}

TEST(BatchKernelTest, RelaxAndArgFarthestMatchesManualRelax) {
  for (const PointSet& pts : AllDatasets()) {
    Dataset data = Dataset::FromPoints(pts);
    for (const auto& metric : AllMetrics()) {
      size_t n = pts.size();
      std::vector<double> dist(n, std::numeric_limits<double>::infinity());
      std::vector<size_t> assignment(n, 0);
      std::vector<double> ref_dist = dist;
      std::vector<size_t> ref_assignment = assignment;
      // Two relax rounds against different centers, mirroring GMM steps.
      size_t centers[2] = {3, 19};
      size_t got = 0;
      size_t want = 0;
      for (size_t rank = 0; rank < 2; ++rank) {
        const Point& c = pts[centers[rank]];
        got = metric->RelaxAndArgFarthest(c, data, dist, assignment, rank);
        double best = -std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < n; ++i) {
          double d = metric->Distance(pts[i], c);
          if (d < ref_dist[i]) {
            ref_dist[i] = d;
            ref_assignment[i] = rank;
          }
          if (ref_dist[i] > best) {
            best = ref_dist[i];
            want = i;
          }
        }
      }
      EXPECT_EQ(got, want) << metric->Name();
      for (size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(dist[i], ref_dist[i], 1e-12) << metric->Name();
        EXPECT_EQ(assignment[i], ref_assignment[i])
            << metric->Name() << " row " << i;
      }
    }
  }
}

TEST(BatchKernelTest, CountingMetricCountsBatchedEvaluationsExactly) {
  PointSet pts = DensePoints(50, 4, /*seed=*/31);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric base;
  CountingMetric counting(&base);

  std::vector<double> out(30);
  counting.DistanceToMany(pts[0], data, 5, out);
  EXPECT_EQ(counting.count(), 30u);

  counting.Reset();
  std::vector<double> dist(pts.size(),
                           std::numeric_limits<double>::infinity());
  counting.RelaxAndArgFarthest(pts[0], data, dist);
  EXPECT_EQ(counting.count(), pts.size());
}

TEST(BatchKernelTest, CountingMetricGmmCostIsExactlyKTimesN) {
  // dim >= 8: single-query sweeps below that are gated back to the exact
  // path (not enough per-row work to amortize a screen).
  PointSet pts = DensePoints(200, 8, /*seed=*/32);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric base;
  size_t k = 9;
  // Exact path: exactly k * n exact evaluations, nothing screened.
  {
    ScopedScreening off(false);
    CountingMetric counting(&base);
    Gmm(data, counting, k);
    EXPECT_EQ(counting.count(), k * pts.size());
    EXPECT_EQ(counting.screened_evals(), 0u);
  }
  // Screened path: the same k * n sweep positions go through the fp32
  // kernels, and the exact (rescue) count never exceeds the pre-screening
  // baseline. (On this workload most relax positions are certified skips.)
  {
    ScopedScreening on(true);
    CountingMetric counting(&base);
    Gmm(data, counting, k);
    EXPECT_EQ(counting.screened_evals(), k * pts.size());
    EXPECT_LE(counting.exact_evals(), k * pts.size());
    EXPECT_GT(counting.exact_evals(), 0u);
    EXPECT_LT(counting.exact_evals(), counting.screened_evals());
  }
}

TEST(BatchKernelTest, GmmMatchesScalarReferenceAllMetricsAllLayouts) {
  for (const PointSet& pts : AllDatasets()) {
    Dataset data = Dataset::FromPoints(pts);
    for (const auto& metric : AllMetrics()) {
      GmmResult batched = Gmm(data, *metric, 10);
      GmmResult scalar = GmmScalar(pts, *metric, 10);
      EXPECT_EQ(batched.selected, scalar.selected) << metric->Name();
      EXPECT_EQ(batched.assignment, scalar.assignment) << metric->Name();
      EXPECT_EQ(batched.range, scalar.range) << metric->Name();
      ASSERT_EQ(batched.selection_distance.size(),
                scalar.selection_distance.size());
      for (size_t j = 1; j < batched.selection_distance.size(); ++j) {
        EXPECT_NEAR(batched.selection_distance[j],
                    scalar.selection_distance[j], 1e-12);
      }
    }
  }
}

// The acceptance gate of the refactor: the batched parallel GMM must select
// the identical index sequence as the scalar per-pair reference, on an
// input large enough that the sweeps actually split into parallel ranges,
// and identically at 1 and at several worker threads.
TEST(BatchKernelTest, ParallelGmmIndexSequenceIsDeterministic) {
  EuclideanMetric metric;
  PointSet pts = DensePoints(20000, 4, /*seed=*/41);
  Dataset data = Dataset::FromPoints(pts);
  size_t k = 16;

  GmmResult scalar = GmmScalar(pts, metric, k);

  SetGlobalThreadPoolSize(1);
  GmmResult one_thread = Gmm(data, metric, k);
  SetGlobalThreadPoolSize(4);
  GmmResult four_threads = Gmm(data, metric, k);
  SetGlobalThreadPoolSize(7);
  GmmResult seven_threads = Gmm(data, metric, k);

  EXPECT_EQ(one_thread.selected, scalar.selected);
  EXPECT_EQ(four_threads.selected, scalar.selected);
  EXPECT_EQ(seven_threads.selected, scalar.selected);
  EXPECT_EQ(four_threads.assignment, scalar.assignment);
  EXPECT_EQ(four_threads.range, scalar.range);
}

TEST(BatchKernelTest, SolveDatasetOverloadMatchesPointSetAcrossBackends) {
  PointSet pts = DensePoints(400, 3, /*seed=*/51);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric metric;
  for (Backend backend :
       {Backend::kSequential, Backend::kStreaming, Backend::kMapReduce}) {
    for (DiversityProblem problem :
         {DiversityProblem::kRemoteEdge, DiversityProblem::kRemoteClique}) {
      SolveOptions options;
      options.problem = problem;
      options.backend = backend;
      options.k = 6;
      SolveResult from_dataset = Solve(data, metric, options);
      SolveResult from_points = Solve(pts, metric, options);
      EXPECT_EQ(from_dataset.solution, from_points.solution)
          << BackendName(backend) << "/" << ProblemName(problem);
      EXPECT_EQ(from_dataset.diversity, from_points.diversity);
      EXPECT_EQ(from_dataset.solution.size(), 6u);
    }
  }
}

}  // namespace
}  // namespace diverse
