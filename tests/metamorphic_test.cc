// Metamorphic invariance suite: properties that must hold across input
// transformations whose effect on the answer is known a priori.
//
//   * Point-order permutation. The deterministic sequential algorithms are
//     equivariant: permuting the input (and mapping GMM's start index
//     through the permutation) permutes the selection, so the selected
//     POINT SET — and hence the objective — is unchanged. Holds whenever
//     pairwise distances are tie-free, so the continuous metrics are
//     tested on random data (Jaccard's discrete value set ties by design
//     and resolves ties by index order, which permutation changes).
//     CountingMetric exact-path evaluation counts are also permutation-
//     invariant (they are functions of n and k alone).
//   * Uniform scaling by a power of two. Multiplying every coordinate by
//     2.0f scales every Euclidean/L1 distance EXACTLY (IEEE arithmetic is
//     scale-invariant under powers of two away from the subnormal/overflow
//     range), so every comparison in every backend resolves identically
//     and the returned objective is exactly 2x, bit for bit. The cosine
//     and Jaccard objectives are exactly invariant (angles and supports do
//     not move).
//   * Duplicating a point. A duplicate adds only zero-distance pairs, so
//     the exact optimum is unchanged and no backend can report a better
//     objective than the original optimum.
//
// The scaling and duplication properties run across sequential, streaming
// SMM, sliding-window, and MapReduce backends (permutation: sequential
// only — the streaming and partitioned backends are order-sensitive by
// construction).

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/solve.h"
#include "core/cover_tree.h"
#include "core/dataset.h"
#include "core/diversity.h"
#include "core/exact.h"
#include "core/gmm.h"
#include "core/metric.h"
#include "core/point.h"
#include "core/screen.h"
#include "core/sequential.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "streaming/sliding_window.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace diverse {
namespace {

std::vector<size_t> RandomPermutation(size_t n, uint64_t seed) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  return perm;
}

// perm[new_index] = old_index.
PointSet Permute(const PointSet& pts, const std::vector<size_t>& perm) {
  PointSet out;
  out.reserve(pts.size());
  for (size_t old_index : perm) out.push_back(pts[old_index]);
  return out;
}

// Maps a selection over the permuted order back to original indices and
// sorts, so two equivariant runs compare as sets.
std::vector<size_t> MappedSorted(const std::vector<size_t>& selected,
                                 const std::vector<size_t>& perm) {
  std::vector<size_t> out;
  out.reserve(selected.size());
  for (size_t idx : selected) out.push_back(perm[idx]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> Sorted(std::vector<size_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

Point Scaled(const Point& p, float factor) {
  if (p.is_sparse()) {
    std::vector<float> values = p.sparse_values();
    for (float& v : values) v *= factor;
    std::vector<uint32_t> indices = p.sparse_indices();
    return Point::Sparse(std::move(indices), std::move(values),
                         static_cast<uint32_t>(p.dim()));
  }
  std::vector<float> values = p.dense_values();
  for (float& v : values) v *= factor;
  return Point::Dense(std::move(values));
}

PointSet ScaledSet(const PointSet& pts, float factor) {
  PointSet out;
  out.reserve(pts.size());
  for (const Point& p : pts) out.push_back(Scaled(p, factor));
  return out;
}

PointSet DensePoints(size_t n, uint64_t seed) {
  return GenerateUniformCube(n, 3, seed);
}

PointSet SparsePoints(size_t n, uint64_t seed) {
  SparseTextOptions topts;
  topts.n = n;
  topts.vocab_size = 200;
  topts.min_terms = 5;
  topts.max_terms = 20;
  topts.seed = seed;
  return GenerateSparseTextDataset(topts);
}

// All properties hold at any thread pool size (results are deterministic
// by the batch-kernel and screening contracts), so the whole suite runs at
// 1/2/8 threads.
class MetamorphicThreads : public ::testing::TestWithParam<size_t> {
 protected:
  void TearDown() override { SetGlobalThreadPoolSize(1); }
};

INSTANTIATE_TEST_SUITE_P(Threads, MetamorphicThreads,
                         ::testing::Values(1, 2, 8));

// --- Permutation ----------------------------------------------------------

// Sparse vectors with CONTINUOUS random values: the text generator's
// integer term counts make L1 / Euclidean distances collide exactly all
// over a 60-point instance, and the permutation property needs tie-free
// distances.
PointSet ContinuousSparsePoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  constexpr uint32_t kDim = 200;
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> indices;
    std::vector<float> values;
    for (uint32_t j = 0; j < kDim; ++j) {
      if (rng.NextDouble() < 0.06) {
        indices.push_back(j);
        values.push_back(static_cast<float>(rng.NextDouble() + 0.1));
      }
    }
    if (indices.empty()) {
      indices.push_back(i % kDim);
      values.push_back(1.0f);
    }
    pts.push_back(Point::Sparse(std::move(indices), std::move(values), kDim));
  }
  return pts;
}

TEST_P(MetamorphicThreads, PermutationLeavesSequentialSelectionsUnchanged) {
  SetGlobalThreadPoolSize(GetParam());
  PointSet dense = DensePoints(60, /*seed=*/501);
  PointSet sparse = ContinuousSparsePoints(60, /*seed=*/502);

  std::vector<std::unique_ptr<Metric>> metrics;
  metrics.push_back(std::make_unique<EuclideanMetric>());
  metrics.push_back(std::make_unique<ManhattanMetric>());
  metrics.push_back(std::make_unique<CosineMetric>());

  // The indexed dimension forces the metric-index gate on (the probe would
  // gate these 60-point sets off); equivariance must survive because the
  // cover-tree traversal is bit-identical to the flat sweep.
  IndexGate forced;
  forced.force = +1;
  SetIndexGateForTesting(forced);
  for (bool screening : {true, false}) {
  for (bool indexing : {true, false}) {
    ScopedScreening guard(screening);
    ScopedIndexing index_guard(indexing);
    for (const PointSet* pts : {&dense, &sparse}) {
      bool sparse_layout = pts == &sparse;
      std::vector<size_t> perm = RandomPermutation(pts->size(), 503);
      PointSet permuted = Permute(*pts, perm);
      Dataset data = Dataset::FromPoints(*pts);
      Dataset pdata = Dataset::FromPoints(permuted);
      for (const auto& metric : metrics) {
        // Angular distance on sparse text ties EXACTLY at pi/2 for every
        // disjoint-support pair, and ties resolve by index order — which a
        // permutation changes. Equivariance needs tie-free distances, so
        // cosine runs on the dense layout only.
        if (sparse_layout && metric->Name() == "cosine") continue;
        std::string ctx = metric->Name() +
                          (screening ? "/screened" : "/exact") +
                          (indexing ? "/indexed" : "/flat");
        // GMM: map the start index through the permutation, then the
        // selected point set must map back exactly (tie-free distances).
        size_t pfirst = 0;
        while (perm[pfirst] != 0) ++pfirst;
        GmmResult base = Gmm(data, *metric, 8, /*first=*/0);
        GmmResult prun = Gmm(pdata, *metric, 8, pfirst);
        EXPECT_EQ(Sorted(base.selected), MappedSorted(prun.selected, perm))
            << ctx << "/gmm";
        EXPECT_EQ(base.range, prun.range) << ctx << "/gmm-range";
        // Matching: no start index; the heaviest-pair order is a pure
        // function of the (identical) distance multiset.
        std::vector<size_t> base_match =
            GreedyMatchingOnDataset(data, *metric, 8);
        std::vector<size_t> perm_match =
            GreedyMatchingOnDataset(pdata, *metric, 8);
        EXPECT_EQ(Sorted(base_match), MappedSorted(perm_match, perm))
            << ctx << "/matching";
        // The selected sets coincide, so the objectives match exactly when
        // evaluated over the same (original) dataset rows.
        EXPECT_EQ(EvaluateDiversitySubset(DiversityProblem::kRemoteClique,
                                          data, Sorted(base_match), *metric),
                  EvaluateDiversitySubset(DiversityProblem::kRemoteClique,
                                          data,
                                          MappedSorted(perm_match, perm),
                                          *metric))
            << ctx << "/objective";
      }
    }
  }
  }
  SetIndexGateForTesting(IndexGate{});
}

TEST_P(MetamorphicThreads, PermutationKeepsExactEvalCountsInvariant) {
  SetGlobalThreadPoolSize(GetParam());
  PointSet pts = DensePoints(80, /*seed=*/504);
  std::vector<size_t> perm = RandomPermutation(pts.size(), 505);
  PointSet permuted = Permute(pts, perm);
  EuclideanMetric base;
  ScopedScreening off(false);
  // The exact path's evaluation count is a function of (n, k) alone, so it
  // cannot depend on input order.
  CountingMetric c1(&base);
  Gmm(Dataset::FromPoints(pts), c1, 10);
  CountingMetric c2(&base);
  Gmm(Dataset::FromPoints(permuted), c2, 10);
  EXPECT_EQ(c1.exact_evals(), c2.exact_evals());
  EXPECT_EQ(c1.screened_evals(), 0u);
  EXPECT_EQ(c2.screened_evals(), 0u);
}

// --- Uniform scaling ------------------------------------------------------

TEST_P(MetamorphicThreads, PowerOfTwoScalingScalesObjectivesExactly) {
  SetGlobalThreadPoolSize(GetParam());
  PointSet dense = DensePoints(300, /*seed=*/511);
  PointSet sparse = SparsePoints(300, /*seed=*/512);
  constexpr float kFactor = 2.0f;

  struct MetricCase {
    std::unique_ptr<Metric> metric;
    double objective_factor;  // 2.0 for translation-free norms, 1.0 angular
  };
  std::vector<MetricCase> cases;
  cases.push_back({std::make_unique<EuclideanMetric>(), 2.0});
  cases.push_back({std::make_unique<ManhattanMetric>(), 2.0});
  cases.push_back({std::make_unique<CosineMetric>(), 1.0});
  cases.push_back({std::make_unique<JaccardMetric>(), 1.0});

  for (const PointSet* pts : {&dense, &sparse}) {
    PointSet scaled = ScaledSet(*pts, kFactor);
    for (const MetricCase& mc : cases) {
      for (DiversityProblem p :
           {DiversityProblem::kRemoteEdge, DiversityProblem::kRemoteClique,
            DiversityProblem::kRemoteTree}) {
        for (Backend b : {Backend::kSequential, Backend::kStreaming,
                          Backend::kMapReduce}) {
          SolveOptions o;
          o.problem = p;
          o.backend = b;
          o.k = 6;
          o.k_prime = 18;
          o.num_partitions = 3;
          SolveResult base = Solve(*pts, *mc.metric, o);
          SolveResult big = Solve(scaled, *mc.metric, o);
          EXPECT_EQ(big.diversity, mc.objective_factor * base.diversity)
              << mc.metric->Name() << "/" << ProblemName(p) << "/"
              << BackendName(b);
        }
        // Sliding window: same property through the block core-sets.
        SlidingWindowOptions w;
        w.problem = p;
        w.k = 6;
        w.k_prime = 12;
        w.window = 128;
        w.block = 32;
        SlidingWindowDiversity win(mc.metric.get(), w);
        SlidingWindowDiversity win_scaled(mc.metric.get(), w);
        for (const Point& q : *pts) win.Update(q);
        for (const Point& q : scaled) win_scaled.Update(q);
        EXPECT_EQ(win_scaled.Query().diversity,
                  mc.objective_factor * win.Query().diversity)
            << mc.metric->Name() << "/" << ProblemName(p) << "/window";
      }
    }
  }
}

// --- Duplication ----------------------------------------------------------
//
// What duplication provably does to div_k depends on the objective:
//   * remote-edge: a subset using both copies contains a zero-distance
//     pair (value 0), and every other subset existed before — so the
//     optimum is exactly invariant and "duplicating never improves" holds
//     unconditionally.
//   * sum-type objectives (clique/star/bipartition/tree/cycle): selecting
//     BOTH copies trades one zero pair for doubled far pairs
//     (2 d(p,x) + 2 d(p,y) + d(x,y) can beat any distinct quadruple), so
//     the optimum may legitimately GROW — the provable direction is
//     monotonicity (opt_dup >= opt; the subset family only grew) plus
//     validity (no backend beats the duplicated-input oracle).
TEST_P(MetamorphicThreads, DuplicatingAPointNeverImprovesTheObjective) {
  SetGlobalThreadPoolSize(GetParam());
  PointSet dense = DensePoints(12, /*seed=*/521);
  PointSet sparse = SparsePoints(12, /*seed=*/522);
  std::vector<std::unique_ptr<Metric>> metrics;
  metrics.push_back(std::make_unique<EuclideanMetric>());
  metrics.push_back(std::make_unique<ManhattanMetric>());
  metrics.push_back(std::make_unique<CosineMetric>());
  metrics.push_back(std::make_unique<JaccardMetric>());

  for (const PointSet* pts : {&dense, &sparse}) {
    for (const auto& metric : metrics) {
      for (DiversityProblem p : kAllProblems) {
        double opt = ExactDiversityMaximization(p, *pts, *metric, 4).value;
        for (size_t dup : {size_t{0}, pts->size() / 2}) {
          PointSet with_dup = *pts;
          with_dup.push_back((*pts)[dup]);
          double opt_dup =
              ExactDiversityMaximization(p, with_dup, *metric, 4).value;
          if (p == DiversityProblem::kRemoteEdge) {
            EXPECT_NEAR(opt_dup, opt, 1e-9)
                << metric->Name() << "/" << ProblemName(p) << "/dup=" << dup;
          } else {
            EXPECT_GE(opt_dup, opt - 1e-9)
                << metric->Name() << "/" << ProblemName(p) << "/dup=" << dup;
          }
          // No backend beats the duplicated-input oracle; for remote-edge
          // that oracle equals the original one, so duplication can never
          // help any backend there.
          double cap = p == DiversityProblem::kRemoteEdge ? opt : opt_dup;
          for (Backend b : {Backend::kSequential, Backend::kStreaming,
                            Backend::kMapReduce}) {
            SolveOptions o;
            o.problem = p;
            o.backend = b;
            o.k = 4;
            o.k_prime = 8;
            o.num_partitions = 2;
            SolveResult r = Solve(with_dup, *metric, o);
            EXPECT_LE(r.diversity, cap + 1e-9)
                << metric->Name() << "/" << ProblemName(p) << "/"
                << BackendName(b);
          }
          SlidingWindowOptions w;
          w.problem = p;
          w.k = 4;
          w.k_prime = 8;
          w.window = 16;
          w.block = 4;
          SlidingWindowDiversity win(metric.get(), w);
          for (const Point& q : with_dup) win.Update(q);
          EXPECT_LE(win.Query().diversity, cap + 1e-9)
              << metric->Name() << "/" << ProblemName(p) << "/window";
        }
      }
    }
  }
}

}  // namespace
}  // namespace diverse
