// The screen-then-certify contract (core/screen.h): every screened sweep
// produces BIT-IDENTICAL selections, radii, distances, and trajectories to
// the exact double-only path it replaces — across metrics, representations,
// and thread counts — because the fp32 pass only ever proves that skipped
// candidates could not influence the outcome. The suite covers:
//   * end-to-end consumers (GMM, k-center doubling assignment,
//     ClusteringRadius, greedy matching, SMM streams, generalized-coreset
//     instantiation) screened vs exact at 1/2/8 threads;
//   * the certified error bound itself, property-tested against sampled
//     |screened - exact| gaps for every profitable metric and layout;
//   * adversarial inputs: fp32-colliding near-ties whose doubles differ,
//     exact duplicate ties (first-index wins), stored-zero sparse rows,
//     denormal coordinates, and magnitudes that overflow the fp32
//     accumulator (screened value inf -> unconditional rescue);
//   * accounting: screened/exact split determinism at any thread count, and
//     the exact-eval count never exceeding the pre-screening baseline.

#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/generalized_coreset.h"
#include "core/gmm.h"
#include "core/kcenter.h"
#include "core/metric.h"
#include "core/screen.h"
#include "core/sequential.h"
#include "core/unfused_screen_metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "streaming/smm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace diverse {
namespace {

PointSet DensePoints(size_t n, size_t dim, uint64_t seed) {
  return GenerateUniformCube(n, dim, seed);
}

PointSet SparsePoints(size_t n, uint64_t seed) {
  SparseTextOptions opts;
  opts.n = n;
  opts.vocab_size = 300;
  opts.seed = seed;
  return GenerateSparseTextDataset(opts);
}

PointSet MixedPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  for (size_t i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      std::vector<float> values(dim);
      for (float& v : values) v = static_cast<float>(rng.NextDouble());
      pts.push_back(Point::Dense(std::move(values)));
    } else {
      std::vector<uint32_t> indices;
      std::vector<float> values;
      for (uint32_t j = 0; j < dim; ++j) {
        if (rng.NextDouble() < 0.4) {
          indices.push_back(j);
          values.push_back(static_cast<float>(rng.NextDouble()));
        }
      }
      pts.push_back(Point::Sparse(std::move(indices), std::move(values),
                                  static_cast<uint32_t>(dim)));
    }
  }
  return pts;
}

// Sparse rows that *store* zero values (support semantics differ from
// absent coordinates) plus denormal and huge magnitudes.
PointSet AdversarialMagnitudePoints() {
  PointSet pts;
  auto sparse = [](std::vector<uint32_t> idx, std::vector<float> val) {
    return Point::Sparse(std::move(idx), std::move(val), 8);
  };
  pts.push_back(sparse({0, 3}, {1.0f, 2.0f}));
  pts.push_back(sparse({0, 3}, {1.0f, 0.0f}));       // stored zero
  pts.push_back(sparse({1, 2, 7}, {0.0f, 0.0f, 0.0f}));  // all stored zeros
  pts.push_back(sparse({}, {}));                     // empty support
  pts.push_back(sparse({2, 5}, {1e-40f, 1e-41f}));   // denormal coords
  pts.push_back(sparse({2, 5}, {3e19f, 3e19f}));     // fp32 dot/sq overflow
  pts.push_back(sparse({4}, {1e20f}));
  pts.push_back(sparse({0, 1, 2, 3}, {1e-20f, 1e-20f, 1e-20f, 1e-20f}));
  Rng rng(77);
  for (size_t i = 0; i < 40; ++i) {
    std::vector<uint32_t> idx;
    std::vector<float> val;
    for (uint32_t j = 0; j < 8; ++j) {
      if (rng.NextDouble() < 0.5) {
        idx.push_back(j);
        val.push_back(static_cast<float>(rng.NextDouble() * 2.0 - 1.0));
      }
    }
    pts.push_back(sparse(std::move(idx), std::move(val)));
  }
  return pts;
}

// Dense near-ties: distances from the first center collide in fp32 but
// differ in double, plus exact duplicates for first-index tie-breaking.
PointSet DenseNearTiePoints() {
  PointSet pts;
  pts.push_back(Point::Dense3(0.0f, 0.0f, 0.0f));
  // |p| = 1 exactly vs sqrt(1 + 9e-12): indistinguishable after fp32
  // accumulation, distinct in double — the screened argmax must rescue
  // both and let the doubles decide.
  pts.push_back(Point::Dense3(1.0f, 0.0f, 0.0f));
  pts.push_back(Point::Dense3(1.0f, 3e-6f, 0.0f));
  pts.push_back(Point::Dense3(1.0f, 0.0f, 0.0f));  // duplicate: exact tie
  pts.push_back(Point::Dense3(1.0f, 0.0f, 3e-6f));
  // Denormal and huge dense coordinates.
  pts.push_back(Point::Dense3(1e-40f, 1e-40f, 0.0f));
  pts.push_back(Point::Dense3(3e19f, 3e19f, 3e19f));  // |.|^2 overflows fp32
  pts.push_back(Point::Dense3(-3e19f, 3e19f, -3e19f));
  Rng rng(78);
  for (size_t i = 0; i < 40; ++i) {
    pts.push_back(Point::Dense3(static_cast<float>(rng.NextDouble()),
                                static_cast<float>(rng.NextDouble()),
                                static_cast<float>(rng.NextDouble())));
  }
  return pts;
}

std::vector<std::unique_ptr<Metric>> AllMetrics() {
  std::vector<std::unique_ptr<Metric>> metrics;
  metrics.push_back(std::make_unique<EuclideanMetric>());
  metrics.push_back(std::make_unique<ManhattanMetric>());
  metrics.push_back(std::make_unique<CosineMetric>());
  metrics.push_back(std::make_unique<JaccardMetric>());
  return metrics;
}

struct NamedLayout {
  std::string name;
  PointSet pts;
};

std::vector<NamedLayout> AllLayouts() {
  std::vector<NamedLayout> layouts;
  layouts.push_back({"dense", DensePoints(120, 6, /*seed=*/201)});
  layouts.push_back({"sparse", SparsePoints(120, /*seed=*/202)});
  layouts.push_back({"mixed", MixedPoints(120, 12, /*seed=*/203)});
  layouts.push_back({"near-tie", DenseNearTiePoints()});
  layouts.push_back({"magnitude", AdversarialMagnitudePoints()});
  return layouts;
}

class ThreadCounts : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCounts, ::testing::Values(1, 2, 8));

TEST_P(ThreadCounts, GmmTrajectoryBitIdenticalToExact) {
  SetGlobalThreadPoolSize(GetParam());
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    for (const auto& metric : AllMetrics()) {
      GmmResult exact;
      {
        ScopedScreening off(false);
        exact = Gmm(data, *metric, 10);
      }
      ScopedScreening on(true);
      GmmResult screened = Gmm(data, *metric, 10);
      std::string ctx = metric->Name() + "/" + layout.name;
      EXPECT_EQ(screened.selected, exact.selected) << ctx;
      EXPECT_EQ(screened.assignment, exact.assignment) << ctx;
      EXPECT_EQ(screened.range, exact.range) << ctx;
      EXPECT_EQ(screened.selection_distance, exact.selection_distance) << ctx;
      EXPECT_EQ(screened.distance_to_selected, exact.distance_to_selected)
          << ctx;
    }
  }
  SetGlobalThreadPoolSize(1);
}

TEST_P(ThreadCounts, ScreenedTileRelaxBitIdenticalToExact) {
  SetGlobalThreadPoolSize(GetParam());
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    size_t n = data.size();
    for (const auto& metric : AllMetrics()) {
      std::vector<double> exact_dist(n,
                                     std::numeric_limits<double>::infinity());
      std::vector<size_t> exact_assign(n, 0);
      size_t exact_best = RelaxTilesAndArgFarthest(
          *metric, data, 0, std::min<size_t>(20, n), 0, data, exact_dist,
          exact_assign);
      std::vector<double> dist(n, std::numeric_limits<double>::infinity());
      std::vector<size_t> assign(n, 0);
      size_t best = ScreenedRelaxTilesAndArgFarthest(
          *metric, data, 0, std::min<size_t>(20, n), 0, data, dist, assign);
      std::string ctx = metric->Name() + "/" + layout.name;
      EXPECT_EQ(best, exact_best) << ctx;
      EXPECT_EQ(dist, exact_dist) << ctx;
      EXPECT_EQ(assign, exact_assign) << ctx;
    }
  }
  SetGlobalThreadPoolSize(1);
}

TEST_P(ThreadCounts, KCenterAndMatchingAndRadiusBitIdenticalToExact) {
  SetGlobalThreadPoolSize(GetParam());
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    for (const auto& metric : AllMetrics()) {
      std::string ctx = metric->Name() + "/" + layout.name;
      KCenterResult exact_kc;
      std::vector<size_t> exact_match;
      double exact_radius;
      {
        ScopedScreening off(false);
        exact_kc = SolveKCenterDoubling(layout.pts, *metric, 6);
        exact_match = GreedyMatchingOnDataset(data, *metric, 9);
        exact_radius = ClusteringRadius(data, *metric, exact_kc.centers);
      }
      ScopedScreening on(true);
      KCenterResult kc = SolveKCenterDoubling(layout.pts, *metric, 6);
      EXPECT_EQ(kc.centers, exact_kc.centers) << ctx;
      EXPECT_EQ(kc.assignment, exact_kc.assignment) << ctx;
      EXPECT_EQ(kc.radius, exact_kc.radius) << ctx;
      EXPECT_EQ(GreedyMatchingOnDataset(data, *metric, 9), exact_match) << ctx;
      EXPECT_EQ(ClusteringRadius(data, *metric, kc.centers), exact_radius)
          << ctx;
    }
  }
  SetGlobalThreadPoolSize(1);
}

TEST_P(ThreadCounts, SmmStreamsBitIdenticalToExact) {
  SetGlobalThreadPoolSize(GetParam());
  for (const NamedLayout& layout : AllLayouts()) {
    for (const auto& metric : AllMetrics()) {
      std::string ctx = metric->Name() + "/" + layout.name;
      PointSet exact_centers, exact_ext;
      GeneralizedCoreset exact_gen;
      double exact_threshold;
      size_t exact_phases;
      {
        ScopedScreening off(false);
        Smm smm(metric.get(), 4, 8);
        SmmExt ext(metric.get(), 4, 8);
        SmmGen gen(metric.get(), 4, 8);
        for (const Point& p : layout.pts) {
          smm.Update(p);
          ext.Update(p);
          gen.Update(p);
        }
        exact_threshold = smm.engine().threshold();
        exact_phases = smm.engine().phases();
        exact_centers = smm.Finalize();
        exact_ext = ext.Finalize();
        exact_gen = gen.Finalize();
      }
      ScopedScreening on(true);
      Smm smm(metric.get(), 4, 8);
      SmmExt ext(metric.get(), 4, 8);
      SmmGen gen(metric.get(), 4, 8);
      for (const Point& p : layout.pts) {
        smm.Update(p);
        ext.Update(p);
        gen.Update(p);
      }
      EXPECT_EQ(smm.engine().threshold(), exact_threshold) << ctx;
      EXPECT_EQ(smm.engine().phases(), exact_phases) << ctx;
      EXPECT_EQ(smm.Finalize(), exact_centers) << ctx;
      EXPECT_EQ(ext.Finalize(), exact_ext) << ctx;
      GeneralizedCoreset gen_result = gen.Finalize();
      ASSERT_EQ(gen_result.size(), exact_gen.size()) << ctx;
      for (size_t i = 0; i < gen_result.size(); ++i) {
        EXPECT_EQ(gen_result.entries()[i].point, exact_gen.entries()[i].point)
            << ctx;
        EXPECT_EQ(gen_result.entries()[i].multiplicity,
                  exact_gen.entries()[i].multiplicity)
            << ctx;
      }
    }
  }
  SetGlobalThreadPoolSize(1);
}

TEST_P(ThreadCounts, InstantiateBitIdenticalToExact) {
  SetGlobalThreadPoolSize(GetParam());
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    for (const auto& metric : AllMetrics()) {
      std::string ctx = metric->Name() + "/" + layout.name;
      double range = 0.0;
      GeneralizedCoreset coreset =
          GmmGenCoreset(data, *metric, 4, 10, &range);
      std::optional<PointSet> exact;
      {
        ScopedScreening off(false);
        exact = Instantiate(coreset, layout.pts, *metric, range);
      }
      ScopedScreening on(true);
      std::optional<PointSet> screened =
          Instantiate(coreset, layout.pts, *metric, range);
      ASSERT_EQ(screened.has_value(), exact.has_value()) << ctx;
      if (exact.has_value()) EXPECT_EQ(*screened, *exact) << ctx;
    }
  }
  SetGlobalThreadPoolSize(1);
}

// The certified bound itself: sample every (query, row) pair of each layout
// through both tile kernels and check |screened - exact| <= rel*s + abs
// whenever the screened value is finite. This is the property every
// certified skip relies on.
TEST(ScreenTest, ErrorBoundCoversSampledPairsAllMetricsAllLayouts) {
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    size_t n = data.size();
    for (const auto& metric : AllMetrics()) {
      ScreenBound bound = metric->ScreenErrorBound(data, data);
      std::vector<float> screened(n * n);
      std::vector<double> exact(n * n);
      metric->DistanceTileF32(data, 0, n, data, 0, n, screened.data(), n);
      metric->DistanceTile(data, 0, n, data, 0, n, exact.data(), n);
      for (size_t i = 0; i < n * n; ++i) {
        float s = screened[i];
        if (!std::isfinite(s)) continue;  // certifies nothing; always rescued
        double band = bound.rel * static_cast<double>(s) + bound.abs;
        EXPECT_LE(std::abs(static_cast<double>(s) - exact[i]), band)
            << metric->Name() << "/" << layout.name << " pair " << i
            << " screened=" << s << " exact=" << exact[i];
      }
      // Point-query sweep against its own bound.
      const Point& q = layout.pts[layout.pts.size() / 2];
      ScreenBound qbound = metric->ScreenErrorBound(q, data);
      std::vector<float> srow(n);
      std::vector<double> erow(n);
      metric->DistanceToManyF32(q, data, 0, srow);
      metric->DistanceToMany(q, data, 0, erow);
      for (size_t i = 0; i < n; ++i) {
        if (!std::isfinite(srow[i])) continue;
        double band = qbound.rel * static_cast<double>(srow[i]) + qbound.abs;
        EXPECT_LE(std::abs(static_cast<double>(srow[i]) - erow[i]), band)
            << metric->Name() << "/" << layout.name << " row " << i;
      }
    }
  }
}

TEST(ScreenTest, ArgClosestAndFirstWithinMatchExactIncludingBoundaries) {
  for (const NamedLayout& layout : AllLayouts()) {
    Dataset data = Dataset::FromPoints(layout.pts);
    for (const auto& metric : AllMetrics()) {
      std::string ctx = metric->Name() + "/" + layout.name;
      for (size_t qi : {size_t{0}, layout.pts.size() / 2}) {
        const Point& q = layout.pts[qi];
        double exact_min, min_dist;
        size_t exact_idx, idx;
        {
          ScopedScreening off(false);
          exact_idx = ScreenedArgClosest(*metric, q, data, &exact_min);
        }
        {
          ScopedScreening on(true);
          idx = ScreenedArgClosest(*metric, q, data, &min_dist);
        }
        EXPECT_EQ(idx, exact_idx) << ctx;
        EXPECT_EQ(min_dist, exact_min) << ctx;
        // Thresholds at an exact distance value (inclusive boundary), just
        // below it, and far out.
        std::vector<double> all(data.size());
        metric->DistanceToMany(q, data, 0, all);
        double mid = all[data.size() / 3];
        for (double threshold :
             {exact_min, std::nextafter(exact_min, -1.0), mid,
              std::nextafter(mid, -1.0), 1e300, -1.0}) {
          size_t exact_first, first;
          {
            ScopedScreening off(false);
            exact_first = ScreenedFirstWithin(*metric, q, data, threshold);
          }
          {
            ScopedScreening on(true);
            first = ScreenedFirstWithin(*metric, q, data, threshold);
          }
          EXPECT_EQ(first, exact_first) << ctx << " threshold " << threshold;
        }
      }
    }
  }
}

// Rescue decisions are a function of fp32 values and bounds alone, so the
// screened/exact evaluation split must be identical at any thread count,
// and the exact (rescue) count can never exceed the pre-screening baseline
// of nq * n evaluations.
TEST(ScreenTest, ScreenedCountsDeterministicAcrossThreadCounts) {
  // dim >= 8 so the single-query work gate keeps the sweeps screened.
  PointSet pts = DensePoints(700, 8, /*seed=*/210);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric base;
  uint64_t exact_ref = 0, screened_ref = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    SetGlobalThreadPoolSize(threads);
    CountingMetric counting(&base);
    GmmResult r = Gmm(data, counting, 24);
    ASSERT_EQ(r.selected.size(), 24u);
    if (threads == 1) {
      exact_ref = counting.exact_evals();
      screened_ref = counting.screened_evals();
      EXPECT_EQ(screened_ref, 24u * pts.size());
      EXPECT_LE(exact_ref, 24u * pts.size());
    } else {
      EXPECT_EQ(counting.exact_evals(), exact_ref) << threads;
      EXPECT_EQ(counting.screened_evals(), screened_ref) << threads;
    }
  }
  SetGlobalThreadPoolSize(1);
}


// The fused tile kernels (Metric::ScreenedRelaxTile overrides) must match
// the unfused materialize-then-collect loop bit for bit AND never pay more
// exact rescues than it: the dense kernels certify skips against the same
// thresholds and screen the remaining candidates with a per-row argmin
// test that can only shrink the rescue set.
TEST(ScreenTest, FusedTileRelaxNoMoreExactEvalsThanUnfused) {
  for (size_t dim : {3u, 16u}) {
    Dataset data = Dataset::FromPoints(DensePoints(3000, dim, /*seed=*/230));
    EuclideanMetric inner;
    UnfusedScreenMetric unfused_inner(&inner);
    size_t nq = 48;

    CountingMetric fused(&inner);
    std::vector<double> fdist(data.size(),
                              std::numeric_limits<double>::infinity());
    std::vector<size_t> fassign(data.size(), 0);
    size_t fbest = ScreenedRelaxTilesAndArgFarthest(fused, data, 0, nq, 0,
                                                    data, fdist, fassign);

    CountingMetric unfused(&unfused_inner);
    std::vector<double> udist(data.size(),
                              std::numeric_limits<double>::infinity());
    std::vector<size_t> uassign(data.size(), 0);
    size_t ubest = ScreenedRelaxTilesAndArgFarthest(unfused, data, 0, nq, 0,
                                                    data, udist, uassign);

    EXPECT_EQ(fbest, ubest) << dim;
    EXPECT_EQ(fdist, udist) << dim;
    EXPECT_EQ(fassign, uassign) << dim;
    EXPECT_EQ(fused.screened_evals(), unfused.screened_evals()) << dim;
    EXPECT_GT(fused.screened_evals(), 0u) << dim;
    EXPECT_LE(fused.exact_evals(), unfused.exact_evals()) << dim;
    EXPECT_LE(fused.exact_evals(), nq * data.size()) << dim;
  }
}

// The fused SMM sweeps dropped the >=8-coords-per-row gate: a dim-3 dense
// stream now actually screens (screened_evals > 0) while staying
// bit-identical (covered by SmmStreamsBitIdenticalToExact above), and the
// exact (rescue) count stays below the pre-screening baseline.
TEST(ScreenTest, FusedSmmSweepsScreenAtLowDimension) {
  PointSet pts = DensePoints(400, 3, /*seed=*/231);
  EuclideanMetric base;
  CountingMetric counting(&base);
  ScopedScreening on(true);
  Smm smm(&counting, 8, 16);
  for (const Point& p : pts) smm.Update(p);
  EXPECT_GT(counting.screened_evals(), 0u);
  // Coverage certificates and argmin screening keep the exact evals well
  // under one-per-(point, center) pair.
  EXPECT_LT(counting.exact_evals(),
            counting.screened_evals() + 17 * 17 * pts.size() / 100);
  EXPECT_GE(smm.Finalize().size(), 1u);
}

// The cosine-space angular screen: all-sparse cosine tiles now pass the
// fused gate (RelaxTileScreeningProfitableFor) and screen — bit-identical
// to the exact tile relax, with deterministic counts across thread counts.
TEST(ScreenTest, SparseCosineTileRelaxScreensAndMatchesExact) {
  PointSet docs = SparsePoints(600, /*seed=*/232);
  Dataset data = Dataset::FromPoints(docs);
  CosineMetric base;
  ASSERT_TRUE(base.RelaxTileScreeningProfitableFor(data, data));
  size_t nq = 24;
  std::vector<double> exact_dist(data.size(),
                                 std::numeric_limits<double>::infinity());
  std::vector<size_t> exact_assign(data.size(), 0);
  size_t exact_best;
  {
    ScopedScreening off(false);
    exact_best = RelaxTilesAndArgFarthest(base, data, 0, nq, 0, data,
                                          exact_dist, exact_assign);
  }
  uint64_t screened_ref = 0, exact_ref = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    SetGlobalThreadPoolSize(threads);
    ScopedScreening on(true);
    CountingMetric counting(&base);
    std::vector<double> dist(data.size(),
                             std::numeric_limits<double>::infinity());
    std::vector<size_t> assign(data.size(), 0);
    size_t best = ScreenedRelaxTilesAndArgFarthest(counting, data, 0, nq, 0,
                                                   data, dist, assign);
    EXPECT_EQ(best, exact_best) << threads;
    EXPECT_EQ(dist, exact_dist) << threads;
    EXPECT_EQ(assign, exact_assign) << threads;
    EXPECT_EQ(counting.screened_evals(), nq * data.size()) << threads;
    EXPECT_LE(counting.exact_evals(), nq * data.size()) << threads;
    EXPECT_GT(counting.exact_evals(), 0u) << threads;
    if (threads == 1) {
      screened_ref = counting.screened_evals();
      exact_ref = counting.exact_evals();
    } else {
      EXPECT_EQ(counting.screened_evals(), screened_ref) << threads;
      EXPECT_EQ(counting.exact_evals(), exact_ref) << threads;
    }
  }
  SetGlobalThreadPoolSize(1);
}

// The global toggle and the SolveOptions flag: screening off means zero
// fp32 evaluations; results agree bit for bit either way.
TEST(ScreenTest, ToggleDisablesScreeningEntirely) {
  PointSet pts = DensePoints(300, 8, /*seed=*/211);
  Dataset data = Dataset::FromPoints(pts);
  EuclideanMetric base;
  {
    ScopedScreening off(false);
    CountingMetric counting(&base);
    Gmm(data, counting, 8);
    EXPECT_EQ(counting.screened_evals(), 0u);
    EXPECT_EQ(counting.exact_evals(), 8u * pts.size());
  }
  // Jaccard never screens (ScreeningProfitable false), even when enabled.
  {
    ScopedScreening on(true);
    JaccardMetric jaccard;
    CountingMetric counting(&jaccard);
    Dataset sparse = Dataset::FromPoints(SparsePoints(150, /*seed=*/212));
    Gmm(sparse, counting, 8);
    EXPECT_EQ(counting.screened_evals(), 0u);
    EXPECT_EQ(counting.exact_evals(), 8u * sparse.size());
  }
}

}  // namespace
}  // namespace diverse
