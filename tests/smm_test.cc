#include "streaming/smm.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

using internal_smm::SmmEngine;

PointSet StreamOf(size_t n, uint64_t seed) {
  return GenerateUniformCube(n, 2, seed);
}

TEST(SmmTest, ShortStreamKeepsEverything) {
  EuclideanMetric m;
  Smm smm(&m, 3, 8);
  PointSet pts = StreamOf(5, 1);  // fewer than k'+1 = 9
  for (const Point& p : pts) smm.Update(p);
  PointSet coreset = smm.Finalize();
  EXPECT_EQ(coreset.size(), 5u);
}

TEST(SmmTest, CoresetHasAtLeastKPoints) {
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Smm smm(&m, 8, 12);
    for (const Point& p : StreamOf(500, seed)) smm.Update(p);
    EXPECT_GE(smm.Finalize().size(), 8u) << "seed " << seed;
  }
}

TEST(SmmTest, MemoryBoundedByKPrimePlusOne) {
  EuclideanMetric m;
  size_t k_prime = 16;
  Smm smm(&m, 4, k_prime);
  size_t peak_centers = 0;
  for (const Point& p : StreamOf(2000, 3)) {
    smm.Update(p);
    peak_centers = std::max(peak_centers, smm.engine().Centers().size());
  }
  EXPECT_LE(peak_centers, k_prime + 1);
}

TEST(SmmTest, CoverageInvariant) {
  // Every stream point must end up within CoverageRadiusBound of a center.
  EuclideanMetric m;
  PointSet pts = StreamOf(1000, 4);
  Smm smm(&m, 4, 10);
  for (const Point& p : pts) smm.Update(p);
  PointSet centers = smm.engine().Centers();
  double bound = smm.engine().CoverageRadiusBound();
  for (const Point& p : pts) {
    double dist = 1e100;
    for (const Point& c : centers) dist = std::min(dist, m.Distance(p, c));
    EXPECT_LE(dist, bound + 1e-9);
  }
}

TEST(SmmTest, SeparationInvariant) {
  // After each update, centers are pairwise more than d_i apart (invariant 2
  // of the doubling algorithm).
  EuclideanMetric m;
  PointSet pts = StreamOf(800, 5);
  Smm smm(&m, 4, 10);
  for (const Point& p : pts) smm.Update(p);
  PointSet centers = smm.engine().Centers();
  double d_i = smm.engine().threshold();
  for (size_t i = 0; i < centers.size(); ++i) {
    for (size_t j = i + 1; j < centers.size(); ++j) {
      EXPECT_GT(m.Distance(centers[i], centers[j]), d_i - 1e-9);
    }
  }
}

TEST(SmmTest, HandlesDuplicatePoints) {
  EuclideanMetric m;
  Smm smm(&m, 2, 4);
  Point a = Point::Dense2(0, 0), b = Point::Dense2(1, 1);
  for (int i = 0; i < 50; ++i) {
    smm.Update(a);
    smm.Update(b);
  }
  PointSet coreset = smm.Finalize();
  EXPECT_GE(coreset.size(), 2u);
}

TEST(SmmTest, PhasesIncreaseWithStreamSpread) {
  EuclideanMetric m;
  Smm smm(&m, 4, 8);
  // Exponentially growing coordinates force repeated threshold doubling.
  for (int i = 0; i < 200; ++i) {
    smm.Update(Point::Dense({static_cast<float>(std::pow(1.2, i % 60)),
                             static_cast<float>(i % 7)}));
  }
  EXPECT_GE(smm.engine().phases(), 2u);
}

TEST(SmmExtTest, DelegateCountsBounded) {
  EuclideanMetric m;
  size_t k = 5, k_prime = 10;
  SmmExt smm(&m, k, k_prime);
  for (const Point& p : StreamOf(2000, 6)) smm.Update(p);
  // Total delegates <= (k'+1) * k at any time.
  EXPECT_LE(smm.engine().StoredPoints(), (k_prime + 1) * k);
  PointSet coreset = smm.Finalize();
  EXPECT_GE(coreset.size(), k);
  EXPECT_LE(coreset.size(), (k_prime + 1) * k);
}

TEST(SmmExtTest, CoresetContainsOnlyStreamPoints) {
  EuclideanMetric m;
  PointSet pts = StreamOf(300, 7);
  SmmExt smm(&m, 3, 6);
  for (const Point& p : pts) smm.Update(p);
  for (const Point& c : smm.Finalize()) {
    bool found = std::any_of(pts.begin(), pts.end(),
                             [&c](const Point& p) { return p == c; });
    EXPECT_TRUE(found);
  }
}

TEST(SmmExtTest, DelegatesAreDistinctPoints) {
  // Streams without duplicates must yield coresets without duplicates.
  EuclideanMetric m;
  PointSet pts = StreamOf(500, 8);
  SmmExt smm(&m, 4, 8);
  for (const Point& p : pts) smm.Update(p);
  PointSet coreset = smm.Finalize();
  for (size_t i = 0; i < coreset.size(); ++i) {
    for (size_t j = i + 1; j < coreset.size(); ++j) {
      EXPECT_FALSE(coreset[i] == coreset[j]) << i << "," << j;
    }
  }
}

TEST(SmmGenTest, MultiplicitiesBoundedByK) {
  EuclideanMetric m;
  size_t k = 6, k_prime = 12;
  SmmGen smm(&m, k, k_prime);
  for (const Point& p : StreamOf(2000, 9)) smm.Update(p);
  GeneralizedCoreset gc = smm.Finalize();
  EXPECT_LE(gc.size(), k_prime + 1);
  for (const WeightedPoint& e : gc.entries()) {
    EXPECT_GE(e.multiplicity, 1u);
    EXPECT_LE(e.multiplicity, k);
  }
  EXPECT_GE(gc.ExpandedSize(), k);
}

TEST(SmmGenTest, StoresOnlyKernelPoints) {
  EuclideanMetric m;
  SmmGen smm(&m, 4, 8);
  for (const Point& p : StreamOf(1000, 10)) smm.Update(p);
  // Memory in counts mode = number of centers <= k'+1.
  EXPECT_LE(smm.engine().StoredPoints(), 9u);
}

TEST(SmmGenTest, ExpandedSizeMatchesDelegateVariant) {
  // On the same stream, SMM-GEN's total multiplicity equals SMM-EXT's
  // delegate count: the two variants follow identical phase trajectories.
  EuclideanMetric m;
  PointSet pts = StreamOf(800, 11);
  SmmExt ext(&m, 5, 9);
  SmmGen gen(&m, 5, 9);
  for (const Point& p : pts) {
    ext.Update(p);
    gen.Update(p);
  }
  EXPECT_EQ(ext.Finalize().size(), gen.Finalize().ExpandedSize());
}

TEST(SmmDeathTest, RequiresKPrimeAtLeastK) {
  EuclideanMetric m;
  EXPECT_DEATH(Smm(&m, 5, 4), "CHECK failed");
}

// Parameterized sweep: the coreset size grows with k' and the coverage
// bound shrinks (better locality) across a range of configurations.
class SmmSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SmmSweepTest, InvariantsAcrossConfigurations) {
  auto [k, mult] = GetParam();
  size_t k_prime = k * mult;
  EuclideanMetric m;
  PointSet pts = StreamOf(1500, 17 + k + mult);
  Smm smm(&m, k, k_prime);
  for (const Point& p : pts) smm.Update(p);
  PointSet coreset = smm.Finalize();
  EXPECT_GE(coreset.size(), k);
  EXPECT_LE(coreset.size(), k_prime + 1);
  PointSet centers = smm.engine().Centers();
  double bound = smm.engine().CoverageRadiusBound();
  for (const Point& p : pts) {
    double dist = 1e100;
    for (const Point& c : centers) dist = std::min(dist, m.Distance(p, c));
    ASSERT_LE(dist, bound + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmmSweepTest,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, size_t>>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_mult" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace diverse
