#include "core/point.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace diverse {
namespace {

TEST(PointTest, DenseConstruction) {
  Point p = Point::Dense({1.0f, 2.0f, 3.0f});
  EXPECT_FALSE(p.is_sparse());
  EXPECT_EQ(p.dim(), 3u);
  EXPECT_EQ(p.nnz(), 3u);
  EXPECT_DOUBLE_EQ(p.norm(), std::sqrt(14.0));
}

TEST(PointTest, Dense2And3Helpers) {
  Point p2 = Point::Dense2(3.0f, 4.0f);
  EXPECT_EQ(p2.dim(), 2u);
  EXPECT_DOUBLE_EQ(p2.norm(), 5.0);
  Point p3 = Point::Dense3(1.0f, 2.0f, 2.0f);
  EXPECT_EQ(p3.dim(), 3u);
  EXPECT_DOUBLE_EQ(p3.norm(), 3.0);
}

TEST(PointTest, SparseConstruction) {
  Point p = Point::Sparse({1, 5, 9}, {1.0f, 2.0f, 2.0f}, 10);
  EXPECT_TRUE(p.is_sparse());
  EXPECT_EQ(p.dim(), 10u);
  EXPECT_EQ(p.nnz(), 3u);
  EXPECT_DOUBLE_EQ(p.norm(), 3.0);
}

TEST(PointTest, EmptySparse) {
  Point p = Point::Sparse({}, {}, 4);
  EXPECT_EQ(p.nnz(), 0u);
  EXPECT_DOUBLE_EQ(p.norm(), 0.0);
}

TEST(PointTest, DenseDot) {
  Point a = Point::Dense({1.0f, 2.0f, 3.0f});
  Point b = Point::Dense({4.0f, -5.0f, 6.0f});
  EXPECT_DOUBLE_EQ(a.Dot(b), 4.0 - 10.0 + 18.0);
}

TEST(PointTest, SparseSparseDot) {
  Point a = Point::Sparse({0, 2, 4}, {1.0f, 2.0f, 3.0f}, 6);
  Point b = Point::Sparse({1, 2, 4}, {7.0f, 5.0f, 2.0f}, 6);
  // Common coordinates: 2 (2*5) and 4 (3*2).
  EXPECT_DOUBLE_EQ(a.Dot(b), 16.0);
}

TEST(PointTest, MixedDot) {
  Point sparse = Point::Sparse({0, 3}, {2.0f, 4.0f}, 4);
  Point dense = Point::Dense({1.0f, 1.0f, 1.0f, 0.5f});
  EXPECT_DOUBLE_EQ(sparse.Dot(dense), 2.0 + 2.0);
  EXPECT_DOUBLE_EQ(dense.Dot(sparse), 4.0);  // symmetric
}

TEST(PointTest, DotDisjointSupportsIsZero) {
  Point a = Point::Sparse({0, 1}, {1.0f, 1.0f}, 4);
  Point b = Point::Sparse({2, 3}, {1.0f, 1.0f}, 4);
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
}

TEST(PointTest, SquaredEuclideanDense) {
  Point a = Point::Dense({0.0f, 0.0f});
  Point b = Point::Dense({3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(a.SquaredEuclideanDistanceTo(b), 25.0);
}

TEST(PointTest, SquaredEuclideanSparseMatchesDense) {
  Point sa = Point::Sparse({1, 3}, {2.0f, 5.0f}, 4);
  Point sb = Point::Sparse({0, 3}, {1.0f, 2.0f}, 4);
  Point da = Point::Dense({0.0f, 2.0f, 0.0f, 5.0f});
  Point db = Point::Dense({1.0f, 0.0f, 0.0f, 2.0f});
  EXPECT_NEAR(sa.SquaredEuclideanDistanceTo(sb),
              da.SquaredEuclideanDistanceTo(db), 1e-9);
  EXPECT_NEAR(sa.SquaredEuclideanDistanceTo(db),
              da.SquaredEuclideanDistanceTo(sb), 1e-9);
}

TEST(PointTest, SquaredEuclideanToSelfIsZero) {
  Point a = Point::Sparse({2, 7}, {1.5f, -2.5f}, 10);
  EXPECT_DOUBLE_EQ(a.SquaredEuclideanDistanceTo(a), 0.0);
}

TEST(PointTest, L1DistanceDense) {
  Point a = Point::Dense({1.0f, -2.0f});
  Point b = Point::Dense({4.0f, 2.0f});
  EXPECT_DOUBLE_EQ(a.L1DistanceTo(b), 3.0 + 4.0);
}

TEST(PointTest, L1DistanceSparse) {
  Point a = Point::Sparse({0, 2}, {1.0f, 3.0f}, 4);
  Point b = Point::Sparse({1, 2}, {2.0f, 1.0f}, 4);
  // |1-0| + |0-2| + |3-1| + |0-0| = 5.
  EXPECT_DOUBLE_EQ(a.L1DistanceTo(b), 5.0);
}

TEST(PointTest, L1DistanceMixed) {
  Point sparse = Point::Sparse({1}, {2.0f}, 3);
  Point dense = Point::Dense({1.0f, 1.0f, 1.0f});
  EXPECT_DOUBLE_EQ(sparse.L1DistanceTo(dense), 1.0 + 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(dense.L1DistanceTo(sparse), 3.0);
}

TEST(PointTest, SupportJaccard) {
  Point a = Point::Sparse({0, 1, 2}, {1.0f, 1.0f, 1.0f}, 8);
  Point b = Point::Sparse({1, 2, 3}, {5.0f, 5.0f, 5.0f}, 8);
  // Intersection 2, union 4.
  EXPECT_DOUBLE_EQ(a.SupportJaccardDistanceTo(b), 0.5);
}

TEST(PointTest, SupportJaccardIdentical) {
  Point a = Point::Sparse({3, 4}, {1.0f, 2.0f}, 8);
  EXPECT_DOUBLE_EQ(a.SupportJaccardDistanceTo(a), 0.0);
}

TEST(PointTest, SupportJaccardDisjoint) {
  Point a = Point::Sparse({0}, {1.0f}, 8);
  Point b = Point::Sparse({7}, {1.0f}, 8);
  EXPECT_DOUBLE_EQ(a.SupportJaccardDistanceTo(b), 1.0);
}

TEST(PointTest, SupportJaccardDenseIgnoresZeros) {
  Point a = Point::Dense({1.0f, 0.0f, 2.0f});
  Point b = Point::Dense({1.0f, 3.0f, 0.0f});
  // Supports {0,2} and {0,1}: intersection 1, union 3.
  EXPECT_NEAR(a.SupportJaccardDistanceTo(b), 2.0 / 3.0, 1e-12);
}

TEST(PointTest, EqualityAndInequality) {
  Point a = Point::Dense({1.0f, 2.0f});
  Point b = Point::Dense({1.0f, 2.0f});
  Point c = Point::Dense({1.0f, 2.5f});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  Point s = Point::Sparse({0, 1}, {1.0f, 2.0f}, 2);
  EXPECT_FALSE(a == s);  // different representation
}

TEST(PointTest, ToStringRenders) {
  EXPECT_EQ(Point::Dense({1.0f, 2.5f}).ToString(), "(1, 2.5)");
  EXPECT_EQ(Point::Sparse({3}, {1.0f}, 5).ToString(), "sparse{3:1 | dim=5}");
}

TEST(PointTest, MemoryBytesIsPositiveAndGrowsWithSize) {
  Point small = Point::Dense({1.0f});
  Point big = Point::Dense(std::vector<float>(100, 1.0f));
  EXPECT_GT(small.MemoryBytes(), 0u);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(PointDeathTest, SparseRequiresSortedIndices) {
  EXPECT_DEATH(Point::Sparse({2, 1}, {1.0f, 1.0f}, 4), "CHECK failed");
}

TEST(PointDeathTest, SparseRequiresIndicesInRange) {
  EXPECT_DEATH(Point::Sparse({5}, {1.0f}, 4), "CHECK failed");
}

TEST(PointDeathTest, DotRequiresMatchingDims) {
  Point a = Point::Dense({1.0f});
  Point b = Point::Dense({1.0f, 2.0f});
  EXPECT_DEATH(a.Dot(b), "CHECK failed");
}

}  // namespace
}  // namespace diverse
