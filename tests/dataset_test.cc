#include "core/dataset.h"

#include <gtest/gtest.h>

#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace diverse {
namespace {

PointSet MixedPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  for (size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      std::vector<float> values(dim);
      for (float& v : values) v = static_cast<float>(rng.NextDouble());
      pts.push_back(Point::Dense(std::move(values)));
    } else {
      std::vector<uint32_t> indices;
      std::vector<float> values;
      for (uint32_t j = 0; j < dim; ++j) {
        if (rng.NextDouble() < 0.3) {
          indices.push_back(j);
          values.push_back(static_cast<float>(rng.NextDouble()));
        }
      }
      pts.push_back(Point::Sparse(std::move(indices), std::move(values),
                                  static_cast<uint32_t>(dim)));
    }
  }
  return pts;
}

TEST(DatasetTest, DenseConstruction) {
  PointSet pts = GenerateUniformCube(25, 4, /*seed=*/1);
  Dataset data = Dataset::FromPoints(pts);
  EXPECT_EQ(data.size(), 25u);
  EXPECT_EQ(data.dim(), 4u);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_FALSE(data.row_is_sparse(i));
    EXPECT_EQ(data.point(i), pts[i]);
    EXPECT_EQ(data.norm(i), pts[i].norm());
    kernels::VecView row = data.row(i);
    ASSERT_EQ(row.nnz, 4u);
    EXPECT_EQ(row.dim, 4u);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(row.values[j], pts[i].dense_values()[j]);
    }
  }
}

TEST(DatasetTest, SparseConstruction) {
  SparseTextOptions opts;
  opts.n = 30;
  opts.seed = 2;
  PointSet docs = GenerateSparseTextDataset(opts);
  Dataset data = Dataset::FromPoints(docs);
  EXPECT_EQ(data.size(), docs.size());
  EXPECT_EQ(data.dim(), docs[0].dim());
  for (size_t i = 0; i < docs.size(); ++i) {
    ASSERT_TRUE(data.row_is_sparse(i));
    kernels::VecView row = data.row(i);
    ASSERT_EQ(row.nnz, docs[i].nnz());
    EXPECT_EQ(row.norm, docs[i].norm());
    for (size_t j = 0; j < row.nnz; ++j) {
      EXPECT_EQ(row.indices[j], docs[i].sparse_indices()[j]);
      EXPECT_EQ(row.values[j], docs[i].sparse_values()[j]);
    }
  }
}

TEST(DatasetTest, MixedRepresentationRows) {
  PointSet pts = MixedPoints(20, 8, /*seed=*/3);
  Dataset data = Dataset::FromPoints(pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(data.row_is_sparse(i), pts[i].is_sparse()) << "row " << i;
    EXPECT_EQ(data.point(i), pts[i]);
  }
}

TEST(DatasetTest, AppendMatchesFromPoints) {
  PointSet pts = MixedPoints(15, 6, /*seed=*/4);
  Dataset bulk = Dataset::FromPoints(pts);
  Dataset incremental;
  EXPECT_TRUE(incremental.empty());
  for (const Point& p : pts) incremental.Append(p);
  ASSERT_EQ(incremental.size(), bulk.size());
  EXPECT_EQ(incremental.dim(), bulk.dim());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(incremental.point(i), bulk.point(i));
    EXPECT_EQ(incremental.norm(i), bulk.norm(i));
  }
}

TEST(DatasetTest, ClearResetsDimension) {
  Dataset data;
  data.Append(Point::Dense2(1.0f, 2.0f));
  EXPECT_EQ(data.dim(), 2u);
  data.Clear();
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.dim(), 0u);
  data.Append(Point::Dense3(1.0f, 2.0f, 3.0f));
  EXPECT_EQ(data.dim(), 3u);
}

TEST(DatasetTest, OwningConstructorKeepsPoints) {
  PointSet pts = GenerateUniformCube(10, 3, /*seed=*/5);
  PointSet copy = pts;
  Dataset data(std::move(copy));
  ASSERT_EQ(data.points().size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(data.point(i), pts[i]);
}

TEST(DatasetTest, MemoryBytesCoversColumnarArrays) {
  PointSet pts = GenerateUniformCube(100, 8, /*seed=*/6);
  Dataset data = Dataset::FromPoints(pts);
  // At least the raw coordinate storage (row-major floats) twice: once in
  // the points, once columnar.
  EXPECT_GT(data.MemoryBytes(), 2 * 100 * 8 * sizeof(float));
}

TEST(DatasetDeathTest, RejectsMismatchedDimensions) {
  Dataset data;
  data.Append(Point::Dense2(1.0f, 2.0f));
  EXPECT_DEATH(data.Append(Point::Dense3(1.0f, 2.0f, 3.0f)), "CHECK failed");
}

}  // namespace
}  // namespace diverse
