#include "mapreduce/mapreduce.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "mapreduce/afz.h"
#include "mapreduce/executor_clock.h"
#include "mapreduce/fault_injector.h"
#include "mapreduce/mr_diversity.h"
#include "util/status.h"

namespace diverse {
namespace {

TEST(MapReduceSimulatorTest, RunsAllReducers) {
  MapReduceSimulator sim(4);
  std::vector<std::atomic<int>> hits(10);
  sim.RunRound("test", 10, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(sim.num_rounds(), 1u);
}

TEST(MapReduceSimulatorTest, RecordsRoundStats) {
  MapReduceSimulator sim(2);
  sim.RunRoundWithSizes(
      "sized", 3, [](size_t) {},
      [](size_t i) { return 100 * (i + 1); },
      [](size_t i) { return 10 * (i + 1); });
  ASSERT_EQ(sim.rounds().size(), 1u);
  const RoundStats& r = sim.rounds()[0];
  EXPECT_EQ(r.name, "sized");
  EXPECT_EQ(r.num_reducers, 3u);
  EXPECT_EQ(r.MaxInputPoints(), 300u);
  EXPECT_EQ(r.TotalOutputPoints(), 60u);
  EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(MapReduceSimulatorTest, MultipleRoundsAccumulate) {
  MapReduceSimulator sim(2);
  sim.RunRound("r1", 2, [](size_t) {});
  sim.RunRound("r2", 5, [](size_t) {});
  ASSERT_EQ(sim.num_rounds(), 2u);
  EXPECT_EQ(sim.rounds()[0].name, "r1");
  EXPECT_EQ(sim.rounds()[1].name, "r2");
  EXPECT_EQ(sim.rounds()[1].num_reducers, 5u);
}

TEST(MapReduceSimulatorTest, MoreReducersThanWorkers) {
  MapReduceSimulator sim(2);
  std::atomic<int> counter{0};
  sim.RunRound("over", 100, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(MapReduceSimulatorTest, WorkerCountExposed) {
  MapReduceSimulator sim(7);
  EXPECT_EQ(sim.num_workers(), 7u);
}

// A fixed reducer fleet larger than the input must run: the partitioner
// hands the tail reducers empty partitions and their core-sets stay empty
// (the former DIVERSE_CHECK_LE(num_parts, n) crash).
TEST(MapReduceDriverTest, MorePartitionsThanPointsRunsEmptyReducers) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(5, 2, /*seed=*/1);
  MrOptions o;
  o.k = 3;
  o.k_prime = 4;
  o.num_partitions = 8;
  o.num_workers = 4;
  MapReduceDiversity driver(&m, DiversityProblem::kRemoteEdge, o);
  MrResult r = driver.Run(pts);
  EXPECT_EQ(r.solution.size(), 3u);
  EXPECT_GT(r.diversity, 0.0);
}

TEST(MapReduceDriverTest, GeneralizedMorePartitionsThanPoints) {
  CosineMetric m;
  SparseTextOptions sopts;
  sopts.n = 6;
  sopts.vocab_size = 100;
  sopts.min_terms = 3;
  sopts.max_terms = 20;
  sopts.seed = 2;
  PointSet docs = GenerateSparseTextDataset(sopts);
  MrOptions o;
  o.k = 3;
  o.k_prime = 5;
  o.num_partitions = 10;
  o.num_workers = 3;
  MapReduceDiversity driver(&m, DiversityProblem::kRemoteClique, o);
  MrResult r = driver.RunGeneralized(docs);
  EXPECT_EQ(r.solution.size(), 3u);
  EXPECT_GE(r.diversity, 0.0);
}

TEST(MapReduceDriverTest, AdversarialPartitionMorePartsThanSparsePoints) {
  // Adversarial partitioning of sparse points reads a pivot; with more
  // parts than points the pivot guard and the empty tails must both hold.
  CosineMetric m;
  SparseTextOptions sopts;
  sopts.n = 3;
  sopts.vocab_size = 50;
  sopts.min_terms = 3;
  sopts.max_terms = 15;
  sopts.seed = 3;
  PointSet docs = GenerateSparseTextDataset(sopts);
  MrOptions o;
  o.k = 2;
  o.k_prime = 2;
  o.num_partitions = 5;
  o.num_workers = 2;
  o.partition = PartitionStrategy::kAdversarial;
  MapReduceDiversity driver(&m, DiversityProblem::kRemoteEdge, o);
  MrResult r = driver.Run(docs);
  EXPECT_EQ(r.solution.size(), 2u);
}

// ---------------------------------------------------------------------------
// Fault-tolerant executor (RunFallibleRound) unit tests. Reducers here are
// synthetic counters, not diversity tasks: the contract under test is the
// executor's — bounded retry, first-commit-wins, speculative duplicates,
// per-round accounting.

TEST(FallibleRoundTest, CleanRoundCommitsEveryTaskOnce) {
  MapReduceSimulator sim(4);
  std::vector<int> committed(8, 0);
  RoundOutcome out = sim.RunFallibleRound(
      "clean", 8,
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        size_t i = ctx.task;
        *commit = [&committed, i] { committed[i]++; };
        return OkStatus();
      },
      FallibleRoundOptions{}, [](size_t) { return 1; },
      [](size_t) { return 1; });
  EXPECT_TRUE(out.ok());
  for (int c : committed) EXPECT_EQ(c, 1);
  const RoundStats& r = sim.rounds().back();
  EXPECT_EQ(r.attempts, 8u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.faults_injected, 0u);
  EXPECT_TRUE(r.failed_tasks.empty());
}

TEST(FallibleRoundTest, TransientFailureIsRetriedUntilSuccess) {
  MapReduceSimulator sim(2);
  std::vector<std::atomic<int>> tries(4);
  std::atomic<int> commits{0};
  FallibleRoundOptions opts;
  opts.max_attempts = 3;
  RoundOutcome out = sim.RunFallibleRound(
      "flaky", 4,
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        tries[ctx.task].fetch_add(1);
        // Task 2 fails its first two attempts, succeeds on the third.
        if (ctx.task == 2 && ctx.attempt < 2) {
          return UnavailableError("transient");
        }
        *commit = [&commits] { commits.fetch_add(1); };
        return OkStatus();
      },
      opts, [](size_t) { return 1; }, [](size_t) { return 1; });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(commits.load(), 4);
  EXPECT_EQ(tries[2].load(), 3);
  const RoundStats& r = sim.rounds().back();
  EXPECT_EQ(r.attempts, 6u);
  EXPECT_EQ(r.retries, 2u);
}

TEST(FallibleRoundTest, ExhaustedBudgetReportsFailedTasksAscending) {
  MapReduceSimulator sim(4);
  FallibleRoundOptions opts;
  opts.max_attempts = 2;
  RoundOutcome out = sim.RunFallibleRound(
      "doomed", 6,
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        if (ctx.task == 5 || ctx.task == 1) {
          return AbortedError("task " + std::to_string(ctx.task) + " dead");
        }
        *commit = [] {};
        return OkStatus();
      },
      opts, [](size_t) { return 1; }, [](size_t) { return 1; });
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.failed_tasks, (std::vector<size_t>{1, 5}));
  EXPECT_FALSE(out.first_error.ok());
  EXPECT_EQ(out.first_error.code(), StatusCode::kAborted);
  const RoundStats& r = sim.rounds().back();
  EXPECT_EQ(r.failed_tasks, (std::vector<size_t>{1, 5}));
  EXPECT_EQ(r.attempts, 8u);  // 4 clean + 2 tasks x 2 attempts
}

TEST(FallibleRoundTest, StragglerTimeoutLaunchesSpeculativeDuplicate) {
  MapReduceSimulator sim(4);
  FaultInjector faults;
  faults.Add({"slow", 0, 0, FaultKind::kStraggler, /*delay_ms=*/300});
  FallibleRoundOptions opts;
  opts.task_timeout_ms = 30;
  opts.faults = &faults;
  std::atomic<int> commits{0};
  RoundOutcome out = sim.RunFallibleRound(
      "slow", 2,
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        *commit = [&commits] { commits.fetch_add(1); };
        return OkStatus();
      },
      opts, [](size_t) { return 1; }, [](size_t) { return 1; });
  EXPECT_TRUE(out.ok());
  // First-commit-wins: the straggler's late commit must have been dropped.
  EXPECT_EQ(commits.load(), 2);
  const RoundStats& r = sim.rounds().back();
  EXPECT_GE(r.timeouts, 1u);
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.attempts, 2u + r.retries);
}

TEST(FallibleRoundTest, CrashFaultNeverRunsTheTaskBody) {
  MapReduceSimulator sim(2);
  FaultInjector faults;
  faults.Add({"crashy", 1, 0, FaultKind::kCrash, 0});
  FallibleRoundOptions opts;
  opts.faults = &faults;
  std::vector<std::atomic<int>> body_runs(2);
  RoundOutcome out = sim.RunFallibleRound(
      "crashy", 2,
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        body_runs[ctx.task].fetch_add(1);
        EXPECT_EQ(ctx.fault, FaultKind::kNone);  // crash handled upstream
        *commit = [] {};
        return OkStatus();
      },
      opts, [](size_t) { return 1; }, [](size_t) { return 1; });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(body_runs[0].load(), 1);
  EXPECT_EQ(body_runs[1].load(), 1);  // only the retry ran the body
  const RoundStats& r = sim.rounds().back();
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.faults_injected, 1u);
}

TEST(FallibleRoundTest, DataFaultsReachTheTaskContext) {
  MapReduceSimulator sim(2);
  FaultInjector faults;
  faults.Add({"ctx", 0, 0, FaultKind::kWrongOutput, /*param=*/42});
  FallibleRoundOptions opts;
  opts.faults = &faults;
  std::atomic<int> faulted_seen{0};
  RoundOutcome out = sim.RunFallibleRound(
      "ctx", 1,
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        if (ctx.attempt == 0) {
          EXPECT_EQ(ctx.fault, FaultKind::kWrongOutput);
          EXPECT_EQ(ctx.fault_param, 42u);
          faulted_seen.fetch_add(1);
          return DataLossError("garbled as instructed");
        }
        EXPECT_EQ(ctx.fault, FaultKind::kNone);
        *commit = [] {};
        return OkStatus();
      },
      opts, [](size_t) { return 1; }, [](size_t) { return 1; });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(faulted_seen.load(), 1);
}

// ---------------------------------------------------------------------------
// Injectable clock: straggler deadlines fire on fake time, so the
// speculative-relaunch branch is exercised deterministically — no
// sleep-calibrated real delay that can flake on a loaded machine.

TEST(FallibleRoundTest, ManualClockFiresStragglerDeterministically) {
  MapReduceSimulator sim(4);
  FaultInjector faults;
  // The injected delay (real sleep) dwarfs the timeout; under the manual
  // clock the deadline fires on the driver's FIRST wait regardless of how
  // fast or slow the machine actually is.
  faults.Add({"slow", 0, 0, FaultKind::kStraggler, /*delay_ms=*/200});
  ManualExecutorClock clock;
  FallibleRoundOptions opts;
  opts.task_timeout_ms = 30;
  opts.faults = &faults;
  opts.clock = &clock;
  std::atomic<int> commits{0};
  RoundOutcome out = sim.RunFallibleRound(
      "slow", 2,
      [&](const MrTaskContext&, std::function<void()>* commit) -> Status {
        *commit = [&commits] { commits.fetch_add(1); };
        return OkStatus();
      },
      opts, [](size_t) { return 1; }, [](size_t) { return 1; });
  EXPECT_TRUE(out.ok());
  // First-commit-wins: exactly one commit per task, and the timeout branch
  // provably ran — on fake time, not after a real 30ms elapsed. (Every
  // attempt still in flight at a wait is eligible for duplication, so the
  // exact attempt count depends on thread scheduling; the guarantee is
  // that the straggler was raced and the round still converged.)
  EXPECT_EQ(commits.load(), 2);
  const RoundStats& r = sim.rounds().back();
  EXPECT_GE(r.timeouts, 1u);
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_GE(r.attempts, 3u);  // 2 tasks + at least the straggler's duplicate
}

TEST(FallibleRoundTest, ManualClockWithoutTimeoutNeverRelaunches) {
  // With the straggler timeout disabled the clock is never consulted for
  // deadlines: fake time cannot conjure spurious speculative attempts.
  MapReduceSimulator sim(2);
  ManualExecutorClock clock;
  FallibleRoundOptions opts;
  opts.task_timeout_ms = 0;
  opts.clock = &clock;
  RoundOutcome out = sim.RunFallibleRound(
      "fast", 3,
      [](const MrTaskContext&, std::function<void()>* commit) -> Status {
        *commit = [] {};
        return OkStatus();
      },
      opts, [](size_t) { return 1; }, [](size_t) { return 1; });
  EXPECT_TRUE(out.ok());
  const RoundStats& r = sim.rounds().back();
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.timeouts, 0u);
}

TEST(MapReduceDriverTest, InjectedClockDrivesSpeculationEndToEnd) {
  // MrOptions::clock plumbs through the driver: a scripted straggler in
  // round 1 triggers a deterministic speculative re-launch, and the result
  // stays bit-identical to the fault-free run (deterministic reducers).
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(300, 3, /*seed=*/13);
  MrOptions o;
  o.k = 4;
  o.k_prime = 6;
  o.num_partitions = 4;
  o.num_workers = 4;
  MapReduceDiversity clean(&m, DiversityProblem::kRemoteEdge, o);
  StatusOr<MrResult> base = clean.TryRun(pts);
  ASSERT_TRUE(base.ok());

  FaultInjector faults;
  faults.Add({"coreset", 2, 0, FaultKind::kStraggler, /*delay_ms=*/150});
  ManualExecutorClock clock;
  MrOptions slow = o;
  slow.faults = &faults;
  slow.clock = &clock;
  slow.task_timeout_ms = 20;
  MapReduceDiversity mr(&m, DiversityProblem::kRemoteEdge, slow);
  StatusOr<MrResult> got = mr.TryRun(pts);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GE(got->task_timeouts, 1u);
  EXPECT_EQ(got->faults_injected, 1u);
  ASSERT_EQ(base->solution.size(), got->solution.size());
  for (size_t i = 0; i < base->solution.size(); ++i) {
    EXPECT_TRUE(base->solution[i] == got->solution[i]) << "point " << i;
  }
  EXPECT_EQ(base->diversity, got->diversity);
}

TEST(MapReduceDriverTest, AfzMorePartitionsThanPoints) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(4, 2, /*seed=*/4);
  AfzOptions o;
  o.k = 2;
  o.num_partitions = 6;
  o.num_workers = 2;
  MrResult r = RunAfz(pts, m, DiversityProblem::kRemoteClique, o);
  EXPECT_EQ(r.solution.size(), 2u);
}

}  // namespace
}  // namespace diverse
