#include "mapreduce/mapreduce.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "mapreduce/afz.h"
#include "mapreduce/mr_diversity.h"

namespace diverse {
namespace {

TEST(MapReduceSimulatorTest, RunsAllReducers) {
  MapReduceSimulator sim(4);
  std::vector<std::atomic<int>> hits(10);
  sim.RunRound("test", 10, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(sim.num_rounds(), 1u);
}

TEST(MapReduceSimulatorTest, RecordsRoundStats) {
  MapReduceSimulator sim(2);
  sim.RunRoundWithSizes(
      "sized", 3, [](size_t) {},
      [](size_t i) { return 100 * (i + 1); },
      [](size_t i) { return 10 * (i + 1); });
  ASSERT_EQ(sim.rounds().size(), 1u);
  const RoundStats& r = sim.rounds()[0];
  EXPECT_EQ(r.name, "sized");
  EXPECT_EQ(r.num_reducers, 3u);
  EXPECT_EQ(r.MaxInputPoints(), 300u);
  EXPECT_EQ(r.TotalOutputPoints(), 60u);
  EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(MapReduceSimulatorTest, MultipleRoundsAccumulate) {
  MapReduceSimulator sim(2);
  sim.RunRound("r1", 2, [](size_t) {});
  sim.RunRound("r2", 5, [](size_t) {});
  ASSERT_EQ(sim.num_rounds(), 2u);
  EXPECT_EQ(sim.rounds()[0].name, "r1");
  EXPECT_EQ(sim.rounds()[1].name, "r2");
  EXPECT_EQ(sim.rounds()[1].num_reducers, 5u);
}

TEST(MapReduceSimulatorTest, MoreReducersThanWorkers) {
  MapReduceSimulator sim(2);
  std::atomic<int> counter{0};
  sim.RunRound("over", 100, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(MapReduceSimulatorTest, WorkerCountExposed) {
  MapReduceSimulator sim(7);
  EXPECT_EQ(sim.num_workers(), 7u);
}

// A fixed reducer fleet larger than the input must run: the partitioner
// hands the tail reducers empty partitions and their core-sets stay empty
// (the former DIVERSE_CHECK_LE(num_parts, n) crash).
TEST(MapReduceDriverTest, MorePartitionsThanPointsRunsEmptyReducers) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(5, 2, /*seed=*/1);
  MrOptions o;
  o.k = 3;
  o.k_prime = 4;
  o.num_partitions = 8;
  o.num_workers = 4;
  MapReduceDiversity driver(&m, DiversityProblem::kRemoteEdge, o);
  MrResult r = driver.Run(pts);
  EXPECT_EQ(r.solution.size(), 3u);
  EXPECT_GT(r.diversity, 0.0);
}

TEST(MapReduceDriverTest, GeneralizedMorePartitionsThanPoints) {
  CosineMetric m;
  SparseTextOptions sopts;
  sopts.n = 6;
  sopts.vocab_size = 100;
  sopts.min_terms = 3;
  sopts.max_terms = 20;
  sopts.seed = 2;
  PointSet docs = GenerateSparseTextDataset(sopts);
  MrOptions o;
  o.k = 3;
  o.k_prime = 5;
  o.num_partitions = 10;
  o.num_workers = 3;
  MapReduceDiversity driver(&m, DiversityProblem::kRemoteClique, o);
  MrResult r = driver.RunGeneralized(docs);
  EXPECT_EQ(r.solution.size(), 3u);
  EXPECT_GE(r.diversity, 0.0);
}

TEST(MapReduceDriverTest, AdversarialPartitionMorePartsThanSparsePoints) {
  // Adversarial partitioning of sparse points reads a pivot; with more
  // parts than points the pivot guard and the empty tails must both hold.
  CosineMetric m;
  SparseTextOptions sopts;
  sopts.n = 3;
  sopts.vocab_size = 50;
  sopts.min_terms = 3;
  sopts.max_terms = 15;
  sopts.seed = 3;
  PointSet docs = GenerateSparseTextDataset(sopts);
  MrOptions o;
  o.k = 2;
  o.k_prime = 2;
  o.num_partitions = 5;
  o.num_workers = 2;
  o.partition = PartitionStrategy::kAdversarial;
  MapReduceDiversity driver(&m, DiversityProblem::kRemoteEdge, o);
  MrResult r = driver.Run(docs);
  EXPECT_EQ(r.solution.size(), 2u);
}

TEST(MapReduceDriverTest, AfzMorePartitionsThanPoints) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(4, 2, /*seed=*/4);
  AfzOptions o;
  o.k = 2;
  o.num_partitions = 6;
  o.num_workers = 2;
  MrResult r = RunAfz(pts, m, DiversityProblem::kRemoteClique, o);
  EXPECT_EQ(r.solution.size(), 2u);
}

}  // namespace
}  // namespace diverse
