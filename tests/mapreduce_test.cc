#include "mapreduce/mapreduce.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace diverse {
namespace {

TEST(MapReduceSimulatorTest, RunsAllReducers) {
  MapReduceSimulator sim(4);
  std::vector<std::atomic<int>> hits(10);
  sim.RunRound("test", 10, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(sim.num_rounds(), 1u);
}

TEST(MapReduceSimulatorTest, RecordsRoundStats) {
  MapReduceSimulator sim(2);
  sim.RunRoundWithSizes(
      "sized", 3, [](size_t) {},
      [](size_t i) { return 100 * (i + 1); },
      [](size_t i) { return 10 * (i + 1); });
  ASSERT_EQ(sim.rounds().size(), 1u);
  const RoundStats& r = sim.rounds()[0];
  EXPECT_EQ(r.name, "sized");
  EXPECT_EQ(r.num_reducers, 3u);
  EXPECT_EQ(r.MaxInputPoints(), 300u);
  EXPECT_EQ(r.TotalOutputPoints(), 60u);
  EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(MapReduceSimulatorTest, MultipleRoundsAccumulate) {
  MapReduceSimulator sim(2);
  sim.RunRound("r1", 2, [](size_t) {});
  sim.RunRound("r2", 5, [](size_t) {});
  ASSERT_EQ(sim.num_rounds(), 2u);
  EXPECT_EQ(sim.rounds()[0].name, "r1");
  EXPECT_EQ(sim.rounds()[1].name, "r2");
  EXPECT_EQ(sim.rounds()[1].num_reducers, 5u);
}

TEST(MapReduceSimulatorTest, MoreReducersThanWorkers) {
  MapReduceSimulator sim(2);
  std::atomic<int> counter{0};
  sim.RunRound("over", 100, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(MapReduceSimulatorTest, WorkerCountExposed) {
  MapReduceSimulator sim(7);
  EXPECT_EQ(sim.num_workers(), 7u);
}

}  // namespace
}  // namespace diverse
