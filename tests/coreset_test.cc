#include "core/coreset.h"

#include <set>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(GmmCoresetTest, SizeAndMembership) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(100, 2, /*seed=*/1);
  Coreset c = GmmCoreset(pts, m, 12);
  EXPECT_EQ(c.size(), 12u);
  ASSERT_EQ(c.points.size(), c.indices.size());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_TRUE(c.points[i] == pts[c.indices[i]]);
  }
}

TEST(GmmExtCoresetTest, CentersPlusDelegates) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(200, 2, /*seed=*/2);
  size_t k_prime = 10, delegates = 3;
  Coreset c = GmmExtCoreset(pts, m, k_prime, delegates);
  EXPECT_GE(c.size(), k_prime);
  EXPECT_LE(c.size(), k_prime * (1 + delegates));
  // No duplicates.
  std::set<size_t> unique(c.indices.begin(), c.indices.end());
  EXPECT_EQ(unique.size(), c.size());
}

TEST(GmmExtCoresetTest, ZeroDelegatesEqualsPlainGmm) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(80, 2, /*seed=*/3);
  Coreset plain = GmmCoreset(pts, m, 9);
  Coreset ext = GmmExtCoreset(pts, m, 9, 0);
  ASSERT_EQ(plain.size(), ext.size());
  std::set<size_t> a(plain.indices.begin(), plain.indices.end());
  std::set<size_t> b(ext.indices.begin(), ext.indices.end());
  EXPECT_EQ(a, b);
}

TEST(GmmExtCoresetTest, FullDelegatesCoverEntireTinyInput) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(20, 2, /*seed=*/4);
  // k' = 5 clusters, up to 19 delegates each: every point must be included.
  Coreset c = GmmExtCoreset(pts, m, 5, pts.size() - 1);
  EXPECT_EQ(c.size(), pts.size());
}

TEST(GmmExtCoresetTest, DelegatesComeFromOwnCluster) {
  EuclideanMetric m;
  PointSet pts = GenerateGaussianBlobs(90, 3, 2, 0.01, /*seed=*/5);
  size_t k_prime = 3;
  Coreset c = GmmExtCoreset(pts, m, k_prime, 4);
  // With 3 tight blobs and k'=3, each point's nearest center is its blob
  // center; delegates follow their center in the output layout, so each
  // group of consecutive points must lie within a blob diameter.
  // Verify: all coreset points are within 0.2 of some center.
  Coreset kernel = GmmCoreset(pts, m, k_prime);
  for (const Point& p : c.points) {
    double dist = 1e100;
    for (const Point& center : kernel.points) {
      dist = std::min(dist, m.Distance(p, center));
    }
    EXPECT_LT(dist, 0.2);
  }
}

TEST(GmmExtCoresetTest, KPrimeEqualsNIsIdentitylike) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(15, 2, /*seed=*/6);
  Coreset c = GmmExtCoreset(pts, m, pts.size(), 2);
  EXPECT_EQ(c.size(), pts.size());  // every point is its own center
}

}  // namespace
}  // namespace diverse
