#include "core/sequential.h"

#include <set>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(GmmOnMatrixTest, MatchesPointBasedGmm) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(40, 2, /*seed=*/1);
  DistanceMatrix d(pts, m);
  std::vector<size_t> via_matrix = GmmOnMatrix(d, 6);
  std::vector<size_t> via_points =
      SolveSequential(DiversityProblem::kRemoteEdge, pts, m, 6);
  EXPECT_EQ(via_matrix, via_points);
}

TEST(GreedyMatchingTest, EvenKPicksDistinctPoints) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(30, 2, /*seed=*/2);
  DistanceMatrix d(pts, m);
  std::vector<size_t> sol = GreedyMatchingOnMatrix(d, 6);
  EXPECT_EQ(sol.size(), 6u);
  std::set<size_t> unique(sol.begin(), sol.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(GreedyMatchingTest, OddK) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(30, 2, /*seed=*/3);
  DistanceMatrix d(pts, m);
  std::vector<size_t> sol = GreedyMatchingOnMatrix(d, 7);
  EXPECT_EQ(sol.size(), 7u);
  std::set<size_t> unique(sol.begin(), sol.end());
  EXPECT_EQ(unique.size(), 7u);
}

TEST(GreedyMatchingTest, FirstPairIsDiameter) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(25, 2, /*seed=*/4);
  DistanceMatrix d(pts, m);
  std::vector<size_t> sol = GreedyMatchingOnMatrix(d, 2);
  double diameter = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < pts.size(); ++j) {
      diameter = std::max(diameter, d.at(i, j));
    }
  }
  EXPECT_DOUBLE_EQ(d.at(sol[0], sol[1]), diameter);
}

TEST(GreedyMatchingTest, PointAndMatrixVariantsAgree) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(35, 2, /*seed=*/5);
  DistanceMatrix d(pts, m);
  EXPECT_EQ(GreedyMatchingOnMatrix(d, 8), GreedyMatchingOnPoints(pts, m, 8));
  EXPECT_EQ(GreedyMatchingOnMatrix(d, 5), GreedyMatchingOnPoints(pts, m, 5));
}

// Approximation guarantees of Table 1 against brute-force optima.
class SequentialApproxTest
    : public ::testing::TestWithParam<DiversityProblem> {};

TEST_P(SequentialApproxTest, WithinAlphaOfOptimal) {
  DiversityProblem problem = GetParam();
  double alpha = SequentialAlpha(problem);
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PointSet pts = GenerateUniformCube(13, 2, seed * 17);
    DistanceMatrix d(pts, m);
    for (size_t k = 2; k <= 6; ++k) {
      std::vector<size_t> sol = SolveSequentialOnMatrix(problem, d, k);
      ASSERT_EQ(sol.size(), k);
      double got = EvaluateDiversity(problem, d.Restrict(sol));
      double opt = ExactDiversityMaximization(problem, d, k).value;
      EXPECT_GE(got * alpha + 1e-9, opt)
          << ProblemName(problem) << " seed " << seed << " k " << k
          << " got " << got << " opt " << opt;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProblems, SequentialApproxTest, ::testing::ValuesIn(kAllProblems),
    [](const ::testing::TestParamInfo<DiversityProblem>& info) {
      std::string name = ProblemName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(LocalSearchRemoteCliqueTest, NeverDecreasesObjective) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(50, 2, /*seed=*/6);
  std::vector<size_t> initial = {0, 1, 2, 3};
  double before = EvaluateDiversity(
      DiversityProblem::kRemoteClique,
      DistanceMatrix(pts, m).Restrict(initial));
  std::vector<size_t> improved =
      LocalSearchRemoteClique(pts, m, initial, /*max_sweeps=*/16);
  double after = EvaluateDiversity(
      DiversityProblem::kRemoteClique,
      DistanceMatrix(pts, m).Restrict(improved));
  EXPECT_GE(after + 1e-9, before);
}

TEST(LocalSearchRemoteCliqueTest, ReachesLocalOptimum) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(30, 2, /*seed=*/7);
  std::vector<size_t> sol =
      LocalSearchRemoteClique(pts, m, {0, 1, 2}, /*max_sweeps=*/64);
  DistanceMatrix d(pts, m);
  double value =
      EvaluateDiversity(DiversityProblem::kRemoteClique, d.Restrict(sol));
  // No single swap can improve a local optimum.
  std::set<size_t> in_set(sol.begin(), sol.end());
  for (size_t q = 0; q < pts.size(); ++q) {
    if (in_set.count(q)) continue;
    for (size_t a = 0; a < sol.size(); ++a) {
      std::vector<size_t> swapped = sol;
      swapped[a] = q;
      double v = EvaluateDiversity(DiversityProblem::kRemoteClique,
                                   d.Restrict(swapped));
      EXPECT_LE(v, value + 1e-6);
    }
  }
}

TEST(SolveSequentialGeneralizedTest, ExpandedSizeIsExactlyK) {
  EuclideanMetric m;
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(0, 0), 3);
  gc.Add(Point::Dense2(10, 0), 3);
  gc.Add(Point::Dense2(0, 10), 3);
  for (size_t k = 2; k <= 6; ++k) {
    GeneralizedCoreset sel = SolveSequentialGeneralized(
        DiversityProblem::kRemoteClique, gc, m, k);
    EXPECT_EQ(sel.ExpandedSize(), k);
    EXPECT_TRUE(sel.IsCoherentSubsetOf(gc));
  }
}

TEST(SolveSequentialGeneralizedTest, PrefersDistinctPointsOverReplicas) {
  EuclideanMetric m;
  GeneralizedCoreset gc;
  gc.Add(Point::Dense2(0, 0), 5);
  gc.Add(Point::Dense2(10, 0), 5);
  gc.Add(Point::Dense2(0, 10), 5);
  // k = 3: a replica contributes 0 distance, so all three distinct kernel
  // points must be picked.
  GeneralizedCoreset sel =
      SolveSequentialGeneralized(DiversityProblem::kRemoteClique, gc, m, 3);
  EXPECT_EQ(sel.size(), 3u);
  for (const WeightedPoint& e : sel.entries()) {
    EXPECT_EQ(e.multiplicity, 1u);
  }
}

}  // namespace
}  // namespace diverse
