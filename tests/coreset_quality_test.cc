// Property tests for the paper's central claims: core-sets built by the
// GMM family (MapReduce side) and the SMM family (streaming side) preserve
// the k-diversity of the input up to a factor that shrinks as k' grows.
//
// These tests evaluate div_k exactly (brute force) on small inputs, i.e.
// they check Definition 1 (beta-core-set) directly: div_k(T) >= div_k(S)/beta.

#include <gtest/gtest.h>

#include "core/coreset.h"
#include "core/diversity.h"
#include "core/exact.h"
#include "core/generalized_coreset.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/synthetic.h"
#include "mapreduce/partitioner.h"
#include "streaming/smm.h"

namespace diverse {
namespace {

constexpr size_t kN = 20;   // small enough for exact div_k
constexpr size_t kK = 4;

double ExactDivK(DiversityProblem p, const PointSet& pts, const Metric& m,
                 size_t k) {
  return ExactDiversityMaximization(p, pts, m, k).value;
}

// --- GMM / GMM-EXT (composable core-sets, Theorems 4 and 5) ---------------

class GmmCoresetQualityTest
    : public ::testing::TestWithParam<DiversityProblem> {};

TEST_P(GmmCoresetQualityTest, CoresetPreservesDiversityWithinFactor) {
  DiversityProblem problem = GetParam();
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    PointSet pts = GenerateUniformCube(kN, 2, seed * 101);
    double opt = ExactDivK(problem, pts, m, kK);
    // k' = 2k already gives a strong core-set in 2 dimensions.
    PointSet coreset;
    if (RequiresInjectiveProxies(problem)) {
      coreset = GmmExtCoreset(pts, m, 2 * kK, kK - 1).points;
    } else {
      coreset = GmmCoreset(pts, m, 2 * kK).points;
    }
    ASSERT_GE(coreset.size(), kK);
    ASSERT_LE(coreset.size(), kN);
    double core_opt = ExactDivK(problem, coreset, m, kK);
    // beta = 2 is far looser than the (1+eps) the theory gives for adequate
    // k'; it catches construction bugs without flaking on tiny instances.
    EXPECT_GE(core_opt * 2.0 + 1e-9, opt)
        << ProblemName(problem) << " seed " << seed;
    // A core-set is a subset: it can never exceed the optimum.
    EXPECT_LE(core_opt, opt + 1e-9);
  }
}

TEST_P(GmmCoresetQualityTest, QualityImprovesWithKPrime) {
  DiversityProblem problem = GetParam();
  EuclideanMetric m;
  double worst_small = 1.0, worst_large = 1.0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PointSet pts = GenerateUniformCube(kN, 2, seed * 211);
    double opt = ExactDivK(problem, pts, m, kK);
    if (opt <= 0.0) continue;
    auto ratio_for = [&](size_t k_prime) {
      PointSet coreset =
          RequiresInjectiveProxies(problem)
              ? GmmExtCoreset(pts, m, k_prime, kK - 1).points
              : GmmCoreset(pts, m, k_prime).points;
      return ExactDivK(problem, coreset, m, kK) / opt;
    };
    worst_small = std::min(worst_small, ratio_for(kK));
    worst_large = std::min(worst_large, ratio_for(3 * kK));
  }
  EXPECT_GE(worst_large + 0.05, worst_small);
}

INSTANTIATE_TEST_SUITE_P(
    AllProblems, GmmCoresetQualityTest, ::testing::ValuesIn(kAllProblems),
    [](const ::testing::TestParamInfo<DiversityProblem>& info) {
      std::string name = ProblemName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Composability (Definition 2): union of per-partition core-sets -------

class ComposabilityTest : public ::testing::TestWithParam<PartitionStrategy> {
};

TEST_P(ComposabilityTest, UnionOfPartitionCoresetsIsACoreset) {
  EuclideanMetric m;
  for (DiversityProblem problem :
       {DiversityProblem::kRemoteEdge, DiversityProblem::kRemoteClique}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      PointSet pts = GenerateUniformCube(kN, 2, seed * 307);
      double opt = ExactDivK(problem, pts, m, kK);
      auto parts = PartitionPoints(pts, 2, GetParam(), seed, &m);
      PointSet united;
      for (const PointSet& part : parts) {
        PointSet c =
            RequiresInjectiveProxies(problem)
                ? GmmExtCoreset(part, m, std::min(2 * kK, part.size()),
                                kK - 1)
                      .points
                : GmmCoreset(part, m, std::min(2 * kK, part.size())).points;
        united.insert(united.end(), c.begin(), c.end());
      }
      ASSERT_GE(united.size(), kK);
      double core_opt = ExactDivK(problem, united, m, kK);
      EXPECT_GE(core_opt * 2.0 + 1e-9, opt)
          << ProblemName(problem) << " seed " << seed << " strategy "
          << PartitionStrategyName(GetParam());
      EXPECT_LE(core_opt, opt + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ComposabilityTest,
    ::testing::Values(PartitionStrategy::kChunked, PartitionStrategy::kRandom,
                      PartitionStrategy::kAdversarial),
    [](const ::testing::TestParamInfo<PartitionStrategy>& info) {
      return PartitionStrategyName(info.param);
    });

// --- SMM / SMM-EXT (streaming core-sets, Theorems 1 and 2) ----------------

class SmmCoresetQualityTest
    : public ::testing::TestWithParam<DiversityProblem> {};

TEST_P(SmmCoresetQualityTest, StreamCoresetPreservesDiversity) {
  DiversityProblem problem = GetParam();
  EuclideanMetric m;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    PointSet pts = GenerateUniformCube(kN, 2, seed * 401);
    double opt = ExactDivK(problem, pts, m, kK);
    PointSet coreset;
    if (RequiresInjectiveProxies(problem)) {
      SmmExt smm(&m, kK, 2 * kK);
      for (const Point& p : pts) smm.Update(p);
      coreset = smm.Finalize();
    } else {
      Smm smm(&m, kK, 2 * kK);
      for (const Point& p : pts) smm.Update(p);
      coreset = smm.Finalize();
    }
    ASSERT_GE(coreset.size(), kK);
    double core_opt = ExactDivK(problem, coreset, m, kK);
    // The streaming construction is an 8-approximation doubling algorithm,
    // weaker than GMM; allow beta = 3 on these tiny adversarial inputs.
    EXPECT_GE(core_opt * 3.0 + 1e-9, opt)
        << ProblemName(problem) << " seed " << seed;
    EXPECT_LE(core_opt, opt + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProblems, SmmCoresetQualityTest, ::testing::ValuesIn(kAllProblems),
    [](const ::testing::TestParamInfo<DiversityProblem>& info) {
      std::string name = ProblemName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Generalized core-sets (Section 6) -------------------------------------

TEST(GeneralizedCoresetQualityTest, GenDivKDominatesScaledOptimum) {
  // Lemma 8: gen-div_k(T) >= (1 - eps'/2alpha) div_k(S). We check the loose
  // version gen-div_k(T) * 2 >= div_k(S).
  EuclideanMetric m;
  for (DiversityProblem problem :
       {DiversityProblem::kRemoteClique, DiversityProblem::kRemoteStar,
        DiversityProblem::kRemoteBipartition, DiversityProblem::kRemoteTree}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      PointSet pts = GenerateUniformCube(kN, 2, seed * 503);
      double opt = ExactDivK(problem, pts, m, kK);
      GeneralizedCoreset gc = GmmGenCoreset(pts, m, kK, 2 * kK);
      // Evaluate gen-div_k by brute force over the capped expansion.
      auto expansion = gc.ExpandCapped(kK);
      DistanceMatrix d = ExpansionDistanceMatrix(expansion, m);
      double gen_div_k =
          ExactDiversityMaximization(problem, d, kK).value;
      EXPECT_GE(gen_div_k * 2.0 + 1e-9, opt)
          << ProblemName(problem) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace diverse
