#include "util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace diverse {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForWithZeroItems) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForWithFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.ParallelFor(20, [&counter](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForRangesCoversAllRanges) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelForRanges(hits.size(), 64, [&hits](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Two external threads racing ParallelForRanges on one pool: the first
// takes the arena, the second must fall back to the queued path — both
// loops must still cover every index exactly once.
TEST(ThreadPoolTest, ConcurrentParallelForRangesCallers) {
  ThreadPool pool(4);
  constexpr size_t kCallers = 6;
  constexpr size_t kN = 20000;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kN, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      for (int round = 0; round < 5; ++round) {
        pool.ParallelForRanges(kN, 64, [&hits, c](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) ++hits[c][i];
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[c][i], 5) << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForFallibleCleanRoundRunsEveryIndex) {
  ThreadPool pool(4);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  bool ok = pool.ParallelForFallible(kN, [&hits](size_t i) {
    hits[i].fetch_add(1);
    return true;
  });
  EXPECT_TRUE(ok);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

// A failing index poisons the round: ParallelForFallible returns false, no
// index runs twice, and the barrier still waits for every started
// invocation (no body running after the call returns).
TEST(ThreadPoolTest, ParallelForFalliblePoisonedRoundStopsEarly) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<size_t> started{0};
  bool ok = pool.ParallelForFallible(kN, [&hits, &started](size_t i) {
    started.fetch_add(1);
    hits[i].fetch_add(1);
    return i != 17;  // poison on one early index
  });
  EXPECT_FALSE(ok);
  size_t after_return = started.load();
  // The poison flag is checked at every claim, so the round stops well
  // short of the full range (17 runs early; even with 4 threads racing the
  // flag only a bounded overshoot is possible).
  EXPECT_LT(after_return, kN);
  for (size_t i = 0; i < kN; ++i) ASSERT_LE(hits[i].load(), 1) << i;
  // Barrier: nothing is still running.
  EXPECT_EQ(started.load(), after_return);
}

TEST(ThreadPoolTest, ParallelForFallibleNestedInsideWorkerRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  std::atomic<int> inner_failures{0};
  pool.ParallelFor(4, [&pool, &inner_hits, &inner_failures](size_t outer) {
    // Nested call on a worker thread must run inline (no deadlock) and
    // still report poisoning.
    bool ok = pool.ParallelForFallible(8, [&inner_hits, outer](size_t i) {
      inner_hits.fetch_add(1);
      return !(outer == 1 && i == 3);
    });
    if (!ok) inner_failures.fetch_add(1);
  });
  EXPECT_EQ(inner_failures.load(), 1);
  // Outer 1 stops at index 3 (inline path stops at first failure); the
  // other three outers run all 8.
  EXPECT_EQ(inner_hits.load(), 3 * 8 + 4);
}

TEST(ThreadPoolTest, DestructionWaitsForTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace diverse
