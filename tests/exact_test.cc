#include "core/exact.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(ExactTest, RemoteEdgeOnColinearPoints) {
  // Points at 0, 1, 2, 10 on a line. k=2 -> {0, 10}, value 10;
  // k=3 -> {0, 2?, 10}: best min pairwise = min(2, 8) = 2... check {0,2,10}
  // gives 2; {0,1,10} gives 1; so value 2.
  EuclideanMetric m;
  PointSet pts = {Point::Dense({0.0f}), Point::Dense({1.0f}),
                  Point::Dense({2.0f}), Point::Dense({10.0f})};
  DistanceMatrix d(pts, m);
  auto r2 = ExactDiversityMaximization(DiversityProblem::kRemoteEdge, d, 2);
  EXPECT_DOUBLE_EQ(r2.value, 10.0);
  auto r3 = ExactDiversityMaximization(DiversityProblem::kRemoteEdge, d, 3);
  EXPECT_DOUBLE_EQ(r3.value, 2.0);
}

TEST(ExactTest, RemoteCliqueSelectsSpreadPoints) {
  EuclideanMetric m;
  PointSet pts = {Point::Dense2(0, 0), Point::Dense2(0.1f, 0),
                  Point::Dense2(5, 0), Point::Dense2(0, 5)};
  auto r = ExactDiversityMaximization(DiversityProblem::kRemoteClique, pts, m,
                                      3);
  // Best triple is {0, 2, 3} (or with the 0.1 twin, slightly less).
  EXPECT_NEAR(r.value, 5.0 + 5.0 + 5.0 * std::sqrt(2.0), 1e-6);
}

TEST(ExactTest, BestSubsetHasRequestedSize) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(10, 2, /*seed=*/1);
  for (DiversityProblem p : kAllProblems) {
    auto r = ExactDiversityMaximization(p, pts, m, 4);
    EXPECT_EQ(r.best_subset.size(), 4u) << ProblemName(p);
    EXPECT_GT(r.value, 0.0) << ProblemName(p);
  }
}

TEST(ExactTest, ValueMatchesReevaluation) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(9, 2, /*seed=*/2);
  DistanceMatrix d(pts, m);
  for (DiversityProblem p : kAllProblems) {
    auto r = ExactDiversityMaximization(p, d, 3);
    EXPECT_NEAR(r.value, EvaluateDiversity(p, d.Restrict(r.best_subset)),
                1e-12)
        << ProblemName(p);
  }
}

TEST(ExactTest, KEqualsNReturnsWholeSet) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(6, 2, /*seed=*/3);
  DistanceMatrix d(pts, m);
  auto r = ExactDiversityMaximization(DiversityProblem::kRemoteEdge, d, 6);
  EXPECT_EQ(r.best_subset.size(), 6u);
  EXPECT_NEAR(r.value, EvaluateDiversity(DiversityProblem::kRemoteEdge, d),
              1e-12);
}

TEST(ExactTest, OptimalRangeOnLine) {
  // Points 0, 1, 2, 3 with k = 2: best centers {0 or 1, 2 or 3} -> range 1.
  EuclideanMetric m;
  PointSet pts = {Point::Dense({0.0f}), Point::Dense({1.0f}),
                  Point::Dense({2.0f}), Point::Dense({3.0f})};
  DistanceMatrix d(pts, m);
  EXPECT_DOUBLE_EQ(ExactOptimalRange(d, 2), 1.0);
  EXPECT_DOUBLE_EQ(ExactOptimalRange(d, 4), 0.0);
}

TEST(ExactTest, OptimalFarnessOnLine) {
  EuclideanMetric m;
  PointSet pts = {Point::Dense({0.0f}), Point::Dense({1.0f}),
                  Point::Dense({2.0f}), Point::Dense({3.0f})};
  DistanceMatrix d(pts, m);
  EXPECT_DOUBLE_EQ(ExactOptimalFarness(d, 2), 3.0);
  // k=3: best is {0, 1.5?, 3} unavailable; {0,1,3} or {0,2,3} -> min gap 1.
  EXPECT_DOUBLE_EQ(ExactOptimalFarness(d, 3), 1.0);
}

TEST(ExactTest, FarnessEqualsRemoteEdgeOptimum) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(11, 2, /*seed=*/4);
  DistanceMatrix d(pts, m);
  for (size_t k = 2; k <= 5; ++k) {
    EXPECT_NEAR(
        ExactOptimalFarness(d, k),
        ExactDiversityMaximization(DiversityProblem::kRemoteEdge, d, k).value,
        1e-12);
  }
}

TEST(ExactDeathTest, RejectsOversizedInstance) {
  DistanceMatrix d(30);
  EXPECT_DEATH(
      ExactDiversityMaximization(DiversityProblem::kRemoteEdge, d, 2),
      "CHECK failed");
}

}  // namespace
}  // namespace diverse
