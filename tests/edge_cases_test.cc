// Degenerate and adversarial inputs across the whole stack: duplicates,
// k = 1, k = n, all-identical points, collinear points, zero vectors,
// single-partition MapReduce, streams shorter than k'. These are the inputs
// that crash naive implementations of farthest-first / doubling algorithms.

#include <gtest/gtest.h>

#include "api/solve.h"
#include "core/exact.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "streaming/sliding_window.h"
#include "streaming/smm.h"

namespace diverse {
namespace {

PointSet AllIdentical(size_t n) {
  return PointSet(n, Point::Dense2(1.0f, -2.0f));
}

PointSet Collinear(size_t n) {
  PointSet pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(Point::Dense({static_cast<float>(i), 0.0f}));
  }
  return pts;
}

PointSet WithDuplicates(size_t n, uint64_t seed) {
  PointSet pts = GenerateUniformCube(n / 2, 2, seed);
  PointSet out;
  for (size_t i = 0; i < n; ++i) out.push_back(pts[i % pts.size()]);
  return out;
}

class EdgeCaseBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(EdgeCaseBackendTest, AllIdenticalPoints) {
  EuclideanMetric metric;
  PointSet pts = AllIdentical(300);
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteClique;
  opts.backend = GetParam();
  opts.k = 4;
  opts.k_prime = 8;
  opts.num_partitions = 2;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 4u);
  EXPECT_DOUBLE_EQ(r.diversity, 0.0);
}

TEST_P(EdgeCaseBackendTest, HeavyDuplicates) {
  EuclideanMetric metric;
  PointSet pts = WithDuplicates(400, /*seed=*/5);
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteEdge;
  opts.backend = GetParam();
  opts.k = 5;
  opts.k_prime = 10;
  opts.num_partitions = 2;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 5u);
  EXPECT_GT(r.diversity, 0.0);  // 200 distinct locations exist
}

TEST_P(EdgeCaseBackendTest, CollinearPoints) {
  EuclideanMetric metric;
  PointSet pts = Collinear(200);
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteTree;
  opts.backend = GetParam();
  opts.k = 4;
  opts.k_prime = 8;
  opts.num_partitions = 2;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 4u);
  // Best 4-point MST on [0,199] has weight 199 (the endpoints plus any two
  // inner points chained); any solution must reach at least half of that via
  // the coreset guarantee.
  EXPECT_GE(r.diversity, 99.0);
}

TEST_P(EdgeCaseBackendTest, KEqualsOne) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(100, 2, /*seed=*/7);
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteEdge;
  opts.backend = GetParam();
  opts.k = 1;
  opts.k_prime = 4;
  opts.num_partitions = 2;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 1u);
  EXPECT_DOUBLE_EQ(r.diversity, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, EdgeCaseBackendTest,
    ::testing::Values(Backend::kSequential, Backend::kStreaming,
                      Backend::kMapReduce, Backend::kMapReduceRecursive),
    [](const ::testing::TestParamInfo<Backend>& info) {
      std::string name = BackendName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(EdgeCaseTest, StreamShorterThanKPrime) {
  EuclideanMetric metric;
  Smm smm(&metric, 4, 100);
  PointSet pts = GenerateUniformCube(20, 2, /*seed=*/9);
  for (const Point& p : pts) smm.Update(p);
  EXPECT_EQ(smm.Finalize().size(), 20u);
}

TEST(EdgeCaseTest, SmmAllIdenticalStream) {
  EuclideanMetric metric;
  Smm smm(&metric, 2, 4);
  for (int i = 0; i < 100; ++i) smm.Update(Point::Dense2(3, 3));
  PointSet coreset = smm.Finalize();
  EXPECT_GE(coreset.size(), 1u);  // cannot produce 2 distinct locations
}

TEST(EdgeCaseTest, SmmTwoLocationsStream) {
  EuclideanMetric metric;
  SmmExt smm(&metric, 3, 6);
  for (int i = 0; i < 200; ++i) {
    smm.Update(Point::Dense2(0, 0));
    smm.Update(Point::Dense2(5, 5));
  }
  PointSet coreset = smm.Finalize();
  EXPECT_GE(coreset.size(), 3u);  // delegates supply the third point
}

TEST(EdgeCaseTest, GreedyMatchingCollinearForcesBufferReuse) {
  // On a line the heaviest pairs massively share endpoints (0 and n-1),
  // stressing the top-pair buffer's skip/refill logic. Matrix variant is the
  // ground truth.
  EuclideanMetric metric;
  PointSet pts = Collinear(300);
  DistanceMatrix d(pts, metric);
  for (size_t k : {2u, 4u, 7u, 12u}) {
    EXPECT_EQ(GreedyMatchingOnPoints(pts, metric, k),
              GreedyMatchingOnMatrix(d, k))
        << "k=" << k;
  }
}

TEST(EdgeCaseTest, GreedyMatchingTinyInputs) {
  EuclideanMetric metric;
  PointSet two = Collinear(2);
  EXPECT_EQ(GreedyMatchingOnPoints(two, metric, 2).size(), 2u);
  PointSet three = Collinear(3);
  EXPECT_EQ(GreedyMatchingOnPoints(three, metric, 3).size(), 3u);
  EXPECT_EQ(GreedyMatchingOnPoints(three, metric, 1).size(), 1u);
}

TEST(EdgeCaseTest, ZeroVectorsUnderCosine) {
  CosineMetric metric;
  PointSet pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back(i % 5 == 0 ? Point::Dense2(0, 0)
                             : Point::Dense2(static_cast<float>(i), 1.0f));
  }
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteEdge;
  opts.backend = Backend::kStreaming;
  opts.k = 3;
  opts.k_prime = 6;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 3u);
}

TEST(EdgeCaseTest, ExactSolversOnDegenerateMatrices) {
  // All-zero distance matrix: every subset is optimal with value 0.
  DistanceMatrix zero(6);
  for (DiversityProblem p : kAllProblems) {
    auto r = ExactDiversityMaximization(p, zero, 3);
    EXPECT_DOUBLE_EQ(r.value, 0.0) << ProblemName(p);
    EXPECT_EQ(r.best_subset.size(), 3u);
  }
  EXPECT_DOUBLE_EQ(ExactOptimalRange(zero, 2), 0.0);
  EXPECT_DOUBLE_EQ(ExactOptimalFarness(zero, 2), 0.0);
}

// --- Sparse degenerate inputs across all backends --------------------------
// Empty, singleton, and all-duplicate CSR inputs through the sequential,
// streaming (SMM), sliding-window, and MapReduce paths. These drive the
// sparse tile engine on its hardest blocks (empty unions, single-lane
// blocks, identical supports) and — via a reducer fleet larger than the
// input — the partitioner's empty-tail handling at the same time.

Point SparseDoc() {
  return Point::Sparse({2, 7, 19}, {1.0f, 2.0f, 1.0f}, 32);
}

PointSet AllDuplicateSparse(size_t n) { return PointSet(n, SparseDoc()); }

TEST_P(EdgeCaseBackendTest, EmptyInputYieldsEmptySolution) {
  CosineMetric metric;
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteEdge;
  opts.backend = GetParam();
  opts.k = 3;
  opts.k_prime = 6;
  opts.num_partitions = 4;
  SolveResult r = Solve(PointSet{}, metric, opts);
  EXPECT_TRUE(r.solution.empty());
  EXPECT_DOUBLE_EQ(r.diversity, 0.0);
}

TEST_P(EdgeCaseBackendTest, SingletonSparseInput) {
  CosineMetric metric;
  PointSet pts;
  pts.push_back(SparseDoc());
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteEdge;
  opts.backend = GetParam();
  opts.k = 3;
  opts.k_prime = 6;
  // More reducers than points: three of the four partitions are empty.
  opts.num_partitions = 4;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 1u);
  EXPECT_DOUBLE_EQ(r.diversity, 0.0);
}

TEST_P(EdgeCaseBackendTest, AllDuplicateSparsePoints) {
  CosineMetric metric;
  PointSet pts = AllDuplicateSparse(120);
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteClique;
  opts.backend = GetParam();
  opts.k = 4;
  opts.k_prime = 8;
  opts.num_partitions = 3;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 4u);
  EXPECT_DOUBLE_EQ(r.diversity, 0.0);
}

TEST(EdgeCaseTest, SmmSingletonSparseStream) {
  CosineMetric metric;
  Smm smm(&metric, 2, 4);
  smm.Update(SparseDoc());
  PointSet coreset = smm.Finalize();
  ASSERT_EQ(coreset.size(), 1u);
  EXPECT_TRUE(coreset[0] == SparseDoc());
}

TEST(EdgeCaseTest, SmmAllDuplicateSparseStream) {
  CosineMetric metric;
  SmmExt smm(&metric, 3, 6);
  for (int i = 0; i < 200; ++i) smm.Update(SparseDoc());
  EXPECT_GE(smm.Finalize().size(), 1u);
}

TEST(EdgeCaseTest, SlidingWindowSparseStream) {
  CosineMetric metric;
  SlidingWindowOptions o;
  o.problem = DiversityProblem::kRemoteEdge;
  o.k = 3;
  o.k_prime = 6;
  o.window = 40;
  o.block = 10;
  SlidingWindowDiversity sw(&metric, o);
  SparseTextOptions sopts;
  sopts.n = 150;
  sopts.vocab_size = 100;
  sopts.min_terms = 3;
  sopts.max_terms = 15;
  sopts.seed = 17;
  for (const Point& p : GenerateSparseTextDataset(sopts)) sw.Update(p);
  StreamingResult r = sw.Query();
  EXPECT_EQ(r.solution.size(), 3u);
  EXPECT_GT(r.diversity, 0.0);
  EXPECT_GE(r.peak_memory_points, sw.StoredPoints());
}

TEST(EdgeCaseTest, SlidingWindowSingletonAndDuplicateSparse) {
  CosineMetric metric;
  SlidingWindowOptions o;
  o.problem = DiversityProblem::kRemoteClique;
  o.k = 2;
  o.k_prime = 4;
  o.window = 20;
  o.block = 5;
  SlidingWindowDiversity single(&metric, o);
  single.Update(SparseDoc());
  StreamingResult r1 = single.Query();
  EXPECT_EQ(r1.solution.size(), 1u);
  EXPECT_DOUBLE_EQ(r1.diversity, 0.0);

  SlidingWindowDiversity dup(&metric, o);
  for (int i = 0; i < 100; ++i) dup.Update(SparseDoc());
  StreamingResult r2 = dup.Query();
  EXPECT_GE(r2.solution.size(), 1u);
  EXPECT_DOUBLE_EQ(r2.diversity, 0.0);
}

TEST(EdgeCaseTest, MapReduceSinglePartition) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(100, 2, /*seed=*/11);
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteCycle;
  opts.backend = Backend::kMapReduce;
  opts.k = 4;
  opts.k_prime = 8;
  opts.num_partitions = 1;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 4u);
  EXPECT_GT(r.diversity, 0.0);
}

}  // namespace
}  // namespace diverse
