// Reproducibility guarantees: every pipeline in the library is a pure
// function of (input, seed). Experiments in the paper are averages over
// many runs; bit-level determinism per seed is what makes those runs
// re-creatable and regressions bisectable.

#include <gtest/gtest.h>

#include "api/solve.h"
#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "mapreduce/afz.h"
#include "mapreduce/mr_diversity.h"
#include "streaming/streaming_diversity.h"

namespace diverse {
namespace {

bool SameSolutions(const PointSet& a, const PointSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

TEST(DeterminismTest, GeneratorsAreSeedPure) {
  SphereDatasetOptions s;
  s.n = 500;
  s.k = 8;
  s.seed = 11;
  EXPECT_TRUE(SameSolutions(GenerateSphereDataset(s), GenerateSphereDataset(s)));

  SparseTextOptions t;
  t.n = 300;
  t.vocab_size = 200;
  t.seed = 13;
  EXPECT_TRUE(SameSolutions(GenerateSparseTextDataset(t),
                            GenerateSparseTextDataset(t)));

  // Stream and batch generators draw different variates but are each pure.
  SphereStream sa(s), sb(s);
  while (sa.HasNext()) {
    ASSERT_TRUE(sb.HasNext());
    EXPECT_TRUE(sa.Next() == sb.Next());
  }
}

TEST(DeterminismTest, AllBackendsAreSeedPure) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(600, 2, /*seed=*/17);
  for (Backend b : {Backend::kSequential, Backend::kStreaming,
                    Backend::kStreamingTwoPass, Backend::kMapReduce,
                    Backend::kMapReduceRandomized,
                    Backend::kMapReduceGeneralized,
                    Backend::kMapReduceRecursive}) {
    SolveOptions opts;
    opts.problem = RequiresInjectiveProxies(DiversityProblem::kRemoteClique)
                       ? DiversityProblem::kRemoteClique
                       : DiversityProblem::kRemoteEdge;
    opts.backend = b;
    opts.k = 5;
    opts.k_prime = 15;
    opts.num_partitions = 4;
    opts.seed = 23;
    SolveResult r1 = Solve(pts, metric, opts);
    SolveResult r2 = Solve(pts, metric, opts);
    EXPECT_TRUE(SameSolutions(r1.solution, r2.solution)) << BackendName(b);
    EXPECT_DOUBLE_EQ(r1.diversity, r2.diversity) << BackendName(b);
    EXPECT_EQ(r1.coreset_size, r2.coreset_size) << BackendName(b);
  }
}

TEST(DeterminismTest, MapReduceParallelismDoesNotChangeResult) {
  // Reducers run concurrently, but each writes only its own slot: the
  // result must not depend on the number of worker threads.
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(800, 2, /*seed=*/19);
  MrResult results[3];
  size_t workers[] = {1, 3, 8};
  for (int i = 0; i < 3; ++i) {
    MrOptions o;
    o.k = 6;
    o.k_prime = 12;
    o.num_partitions = 6;
    o.num_workers = workers[i];
    o.seed = 29;
    MapReduceDiversity mr(&metric, DiversityProblem::kRemoteTree, o);
    results[i] = mr.Run(pts);
  }
  EXPECT_TRUE(SameSolutions(results[0].solution, results[1].solution));
  EXPECT_TRUE(SameSolutions(results[1].solution, results[2].solution));
}

TEST(DeterminismTest, DifferentSeedsUsuallyDiffer) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(600, 2, /*seed=*/31);
  MrOptions o;
  o.k = 5;
  o.k_prime = 10;
  o.num_partitions = 4;
  o.partition = PartitionStrategy::kRandom;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, o);
  MrOptions o2 = o;
  o2.seed = o.seed + 1;
  MapReduceDiversity mr2(&metric, DiversityProblem::kRemoteEdge, o2);
  // Different random partitions -> (almost surely) different core-sets.
  MrResult r1 = mr.Run(pts);
  MrResult r2 = mr2.Run(pts);
  // Values may coincide; the partitions should not produce byte-identical
  // core-set orderings AND identical solutions AND identical sizes all at
  // once more often than rarely. We assert only the weak property that the
  // two runs executed (guarding against seed being ignored entirely would
  // need distribution tests); but if solutions are identical, diversity
  // must also be identical (consistency check).
  if (SameSolutions(r1.solution, r2.solution)) {
    EXPECT_DOUBLE_EQ(r1.diversity, r2.diversity);
  }
}

TEST(DeterminismTest, AfzIsSeedPure) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(300, 2, /*seed=*/37);
  AfzOptions o;
  o.k = 4;
  o.num_partitions = 3;
  o.seed = 41;
  MrResult r1 = RunAfz(pts, metric, DiversityProblem::kRemoteClique, o);
  MrResult r2 = RunAfz(pts, metric, DiversityProblem::kRemoteClique, o);
  EXPECT_TRUE(SameSolutions(r1.solution, r2.solution));
  EXPECT_DOUBLE_EQ(r1.diversity, r2.diversity);
}

// Recovery determinism: the fault-tolerant executor's re-execution is
// bit-identical, so a run under a deterministic fault schedule equals both
// (a) itself on a second run and (b) the fault-free run — retries and
// speculative duplicates must leave no trace in the output.
TEST(DeterminismTest, RecoveryIsBitIdenticalUnderFaultSchedule) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(600, 2, /*seed=*/19);
  MrOptions base;
  base.k = 5;
  base.k_prime = 10;
  base.num_partitions = 8;
  base.num_workers = 4;
  base.seed = 19;
  MapReduceDiversity clean(&metric, DiversityProblem::kRemoteClique, base);
  StatusOr<MrResult> want = clean.TryRun(pts);
  ASSERT_TRUE(want.ok());

  StatusOr<FaultInjector> faults = FaultInjector::Parse(
      "coreset:0:0:crash,coreset:4:0:wrong-output:13,"
      "coreset:6:0:straggler:200");
  ASSERT_TRUE(faults.ok());
  MrOptions faulty = base;
  faulty.faults = &*faults;
  faulty.task_timeout_ms = 25;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteClique, faulty);
  StatusOr<MrResult> r1 = mr.TryRun(pts);
  StatusOr<MrResult> r2 = mr.TryRun(pts);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(SameSolutions(r1->solution, r2->solution));
  EXPECT_TRUE(SameSolutions(r1->solution, want->solution));
  EXPECT_EQ(r1->diversity, want->diversity);
  // The schedule itself is deterministic too: both faulty runs saw the
  // same number of injected faults.
  EXPECT_EQ(r1->faults_injected, 3u);
  EXPECT_EQ(r2->faults_injected, 3u);
}

TEST(DeterminismTest, StreamingIsInputPure) {
  CosineMetric metric;
  SparseTextOptions t;
  t.n = 800;
  t.vocab_size = 300;
  t.seed = 43;
  PointSet docs = GenerateSparseTextDataset(t);
  StreamingResult results[2];
  for (int i = 0; i < 2; ++i) {
    StreamingDiversity sd(&metric, DiversityProblem::kRemoteStar, 5, 15);
    for (const Point& d : docs) sd.Update(d);
    results[i] = sd.Finalize();
  }
  EXPECT_TRUE(SameSolutions(results[0].solution, results[1].solution));
  EXPECT_EQ(results[0].phases, results[1].phases);
  EXPECT_EQ(results[0].coreset_size, results[1].coreset_size);
}

}  // namespace
}  // namespace diverse
