// Negative compile test: discarding a StatusOr (a Try* API result) must
// NOT compile. Registered with WILL_FAIL in CMakeLists.txt.

#include <string>

#include "util/status.h"

namespace {

diverse::StatusOr<int> TryParse(const std::string& s) {
  if (s.empty()) return diverse::InvalidArgumentError("empty");
  return 42;
}

}  // namespace

int main() {
  TryParse("7");  // error: ignoring return value declared 'nodiscard'
  return 0;
}
