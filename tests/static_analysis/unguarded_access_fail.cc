// Negative compile test: an unguarded access to GUARDED_BY state must NOT
// compile under clang -Wthread-safety -Werror. Registered with WILL_FAIL
// in CMakeLists.txt (clang only — g++ has no thread-safety analysis, so
// the test is simply not registered there). If this ever compiles under
// clang, the annotation shim or the CI flags have rotted.

#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {  // missing MutexLock / DIVERSE_REQUIRES(mu_)
    ++value_;  // error: writing variable 'value_' requires holding 'mu_'
  }

 private:
  diverse::Mutex mu_;
  int value_ DIVERSE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
