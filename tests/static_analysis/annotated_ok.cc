// Positive control for the static-analysis gate: correctly annotated code
// must compile warning-free under clang -Wthread-safety -Werror (and under
// g++, where the annotations are no-ops). Exercises every construct the
// library relies on: GUARDED_BY members, MutexLock scoping with manual
// Unlock/Lock, REQUIRES helpers, TryLock branches, explicit while-loop
// condition waits, and consumed / explicitly-discarded Status values. If
// this file fails to compile, the gate is over-rejecting and the negative
// tests prove nothing.

#include "util/status.h"
#include "util/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push(int v) DIVERSE_EXCLUDES(mu_) {
    {
      diverse::MutexLock lock(&mu_);
      PushLocked(v);
    }
    ready_.NotifyOne();
  }

  int BlockingPop() DIVERSE_EXCLUDES(mu_) {
    diverse::MutexLock lock(&mu_);
    while (size_ == 0) ready_.Wait(mu_);
    --size_;
    return last_;
  }

  bool TryPush(int v) DIVERSE_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    PushLocked(v);
    mu_.Unlock();
    ready_.NotifyOne();
    return true;
  }

  void PopAllThenWork() DIVERSE_EXCLUDES(mu_) {
    diverse::MutexLock lock(&mu_);
    int drained = size_;
    size_ = 0;
    lock.Unlock();
    // ... lock-free work on `drained` ...
    lock.Lock();
    last_ = drained;
  }

 private:
  void PushLocked(int v) DIVERSE_REQUIRES(mu_) {
    ++size_;
    last_ = v;
  }

  diverse::Mutex mu_;
  diverse::CondVar ready_;
  int size_ DIVERSE_GUARDED_BY(mu_) = 0;
  int last_ DIVERSE_GUARDED_BY(mu_) = 0;
};

diverse::Status MightFail(bool fail) {
  if (fail) return diverse::InternalError("asked to");
  return diverse::OkStatus();
}

diverse::StatusOr<int> TryAnswer() { return 42; }

diverse::Status UseStatuses() {
  DIVERSE_RETURN_IF_ERROR(MightFail(false));
  DIVERSE_ASSIGN_OR_RETURN(int answer, TryAnswer());
  diverse::StatusOr<int> checked = TryAnswer();
  if (!checked.ok()) return checked.status();
  (void)MightFail(false);  // explicit discard is the sanctioned escape
  return answer + *checked == 84 ? diverse::OkStatus()
                                 : diverse::InternalError("math");
}

}  // namespace

int main() {
  Queue q;
  q.Push(1);
  if (!q.TryPush(2)) q.Push(2);
  q.PopAllThenWork();
  q.Push(3);
  int popped = q.BlockingPop();
  diverse::Status s = UseStatuses();
  return (s.ok() && popped >= 0) ? 0 : 1;
}
