// Negative compile test: discarding a Status must NOT compile.
//
// Registered in CMakeLists.txt with WILL_FAIL — the test passes when the
// compiler (g++ or clang++, -Werror=unused-result) REJECTS this file. If
// this ever compiles, the [[nodiscard]] gate on Status has rotted.

#include "util/status.h"

namespace {

diverse::Status MightFail() {
  return diverse::InvalidArgumentError("always fails");
}

}  // namespace

int main() {
  MightFail();  // error: ignoring return value declared 'nodiscard'
  return 0;
}
