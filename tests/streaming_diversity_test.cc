#include "streaming/streaming_diversity.h"

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(StreamingDiversityTest, ProducesKPoints) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(400, 2, /*seed=*/1);
  for (DiversityProblem p : kAllProblems) {
    StreamingDiversity sd(&m, p, 6, 12);
    for (const Point& x : pts) sd.Update(x);
    StreamingResult r = sd.Finalize();
    EXPECT_EQ(r.solution.size(), 6u) << ProblemName(p);
    EXPECT_GT(r.diversity, 0.0) << ProblemName(p);
    EXPECT_GE(r.coreset_size, 6u) << ProblemName(p);
  }
}

TEST(StreamingDiversityTest, ShortStreamReturnsEverything) {
  EuclideanMetric m;
  StreamingDiversity sd(&m, DiversityProblem::kRemoteEdge, 8, 16);
  PointSet pts = GenerateUniformCube(5, 2, /*seed=*/2);
  for (const Point& x : pts) sd.Update(x);
  StreamingResult r = sd.Finalize();
  EXPECT_EQ(r.solution.size(), 5u);
}

TEST(StreamingDiversityTest, SolutionPointsComeFromStream) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(300, 2, /*seed=*/3);
  StreamingDiversity sd(&m, DiversityProblem::kRemoteClique, 5, 10);
  for (const Point& x : pts) sd.Update(x);
  StreamingResult r = sd.Finalize();
  for (const Point& s : r.solution) {
    bool found = false;
    for (const Point& p : pts) {
      if (p == s) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(StreamingDiversityTest, MemoryIndependentOfStreamLength) {
  EuclideanMetric m;
  size_t k = 4, k_prime = 8;
  size_t peak_short, peak_long;
  {
    StreamingDiversity sd(&m, DiversityProblem::kRemoteEdge, k, k_prime);
    for (const Point& x : GenerateUniformCube(500, 2, 4)) sd.Update(x);
    peak_short = sd.peak_memory_points();
  }
  {
    StreamingDiversity sd(&m, DiversityProblem::kRemoteEdge, k, k_prime);
    for (const Point& x : GenerateUniformCube(20000, 2, 5)) sd.Update(x);
    peak_long = sd.peak_memory_points();
  }
  // Both runs are bounded by ~2(k'+1); the long stream may not use more.
  EXPECT_LE(peak_long, 2 * (k_prime + 1));
  EXPECT_LE(peak_short, 2 * (k_prime + 1));
}

// Quality against the exact optimum on small inputs: the streaming pipeline
// is an (alpha + eps)-approximation; we assert the conservative bound
// alpha * (1 + 1) to absorb small-k' effects, and also record that larger k'
// does not hurt.
TEST(StreamingDiversityTest, ApproximationOnTinyInput) {
  EuclideanMetric m;
  for (DiversityProblem p : kAllProblems) {
    double alpha = SequentialAlpha(p);
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      PointSet pts = GenerateUniformCube(16, 2, seed * 11);
      size_t k = 4;
      StreamingDiversity sd(&m, p, k, 8);
      for (const Point& x : pts) sd.Update(x);
      StreamingResult r = sd.Finalize();
      double opt = ExactDiversityMaximization(p, pts, m, k).value;
      EXPECT_GE(r.diversity * alpha * 2.0 + 1e-9, opt)
          << ProblemName(p) << " seed " << seed;
    }
  }
}

TEST(StreamingDiversityTest, LargerKPrimeImprovesPlantedRecovery) {
  // On the planted-sphere data, remote-edge value must approach the planted
  // separation as k' grows.
  EuclideanMetric m;
  SphereDatasetOptions opts;
  opts.n = 5000;
  opts.k = 8;
  opts.seed = 9;
  double prev = 0.0;
  double first = 0.0, last = 0.0;
  for (size_t mult : {1u, 4u, 16u}) {
    SphereStream stream(opts);
    StreamingDiversity sd(&m, DiversityProblem::kRemoteEdge, opts.k,
                          opts.k * mult);
    while (stream.HasNext()) sd.Update(stream.Next());
    StreamingResult r = sd.Finalize();
    if (mult == 1u) first = r.diversity;
    last = r.diversity;
    prev = r.diversity;
  }
  (void)prev;
  EXPECT_GE(last + 0.05, first);  // no degradation, usually improvement
  EXPECT_GT(last, 0.3);           // clearly separated planted points found
}

TEST(TwoPassStreamingTest, EndToEndProducesKDistinctPoints) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(600, 2, /*seed=*/6);
  for (DiversityProblem p :
       {DiversityProblem::kRemoteClique, DiversityProblem::kRemoteStar,
        DiversityProblem::kRemoteBipartition, DiversityProblem::kRemoteTree}) {
    TwoPassStreamingDiversity sd(&m, p, 6, 12);
    for (const Point& x : pts) sd.UpdateFirstPass(x);
    sd.EndFirstPass();
    for (const Point& x : pts) sd.UpdateSecondPass(x);
    StreamingResult r = sd.Finalize();
    EXPECT_EQ(r.solution.size(), 6u) << ProblemName(p);
    for (size_t i = 0; i < r.solution.size(); ++i) {
      for (size_t j = i + 1; j < r.solution.size(); ++j) {
        EXPECT_FALSE(r.solution[i] == r.solution[j]) << ProblemName(p);
      }
    }
    EXPECT_GT(r.diversity, 0.0) << ProblemName(p);
  }
}

TEST(TwoPassStreamingTest, SelectedSubsetIsCoherentWithSizeK) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(500, 2, /*seed=*/7);
  TwoPassStreamingDiversity sd(&m, DiversityProblem::kRemoteClique, 5, 10);
  for (const Point& x : pts) sd.UpdateFirstPass(x);
  sd.EndFirstPass();
  EXPECT_EQ(sd.selected().ExpandedSize(), 5u);
  EXPECT_GT(sd.delta(), 0.0);
}

TEST(TwoPassStreamingTest, UsesLessMemoryThanOnePassExt) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(5000, 2, /*seed=*/8);
  size_t k = 16, k_prime = 32;

  StreamingDiversity one_pass(&m, DiversityProblem::kRemoteClique, k, k_prime);
  for (const Point& x : pts) one_pass.Update(x);
  size_t one_pass_mem = one_pass.peak_memory_points();
  one_pass.Finalize();

  TwoPassStreamingDiversity two_pass(&m, DiversityProblem::kRemoteClique, k,
                                     k_prime);
  for (const Point& x : pts) two_pass.UpdateFirstPass(x);
  two_pass.EndFirstPass();
  for (const Point& x : pts) two_pass.UpdateSecondPass(x);
  StreamingResult r = two_pass.Finalize();
  // Theorem 9: pass-1 memory is O(k') pairs vs O(k k') points for SMM-EXT.
  EXPECT_LT(r.peak_memory_points, one_pass_mem);
}

TEST(TwoPassStreamingDeathTest, RejectsNonInjectiveProblems) {
  EuclideanMetric m;
  EXPECT_DEATH(
      TwoPassStreamingDiversity(&m, DiversityProblem::kRemoteEdge, 4, 8),
      "CHECK failed");
}

}  // namespace
}  // namespace diverse
