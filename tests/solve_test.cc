#include "api/solve.h"

#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(SolveTest, BackendNamesRoundTrip) {
  for (Backend b :
       {Backend::kSequential, Backend::kStreaming, Backend::kStreamingTwoPass,
        Backend::kMapReduce, Backend::kMapReduceRandomized,
        Backend::kMapReduceGeneralized, Backend::kMapReduceRecursive}) {
    bool ok = false;
    EXPECT_EQ(ParseBackend(BackendName(b), &ok), b);
    EXPECT_TRUE(ok);
  }
  bool ok = true;
  ParseBackend("nope", &ok);
  EXPECT_FALSE(ok);
}

// Every backend must return k points with positive diversity for every
// problem it supports.
struct SolveCase {
  Backend backend;
  DiversityProblem problem;
};

class SolveBackendTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(SolveBackendTest, ProducesValidSolution) {
  const SolveCase& c = GetParam();
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(800, 2, /*seed=*/11);
  SolveOptions opts;
  opts.problem = c.problem;
  opts.backend = c.backend;
  opts.k = 6;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 6u);
  EXPECT_GT(r.diversity, 0.0);
  EXPECT_GE(r.seconds, 0.0);
  if (c.backend != Backend::kSequential) {
    EXPECT_GT(r.coreset_size, 0u);
    EXPECT_GE(r.rounds_or_passes, 1u);
  }
}

std::vector<SolveCase> MakeCases() {
  std::vector<SolveCase> cases;
  for (DiversityProblem p : kAllProblems) {
    for (Backend b : {Backend::kSequential, Backend::kStreaming,
                      Backend::kMapReduce, Backend::kMapReduceRandomized,
                      Backend::kMapReduceRecursive}) {
      cases.push_back({b, p});
    }
    if (RequiresInjectiveProxies(p)) {
      cases.push_back({Backend::kStreamingTwoPass, p});
      cases.push_back({Backend::kMapReduceGeneralized, p});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SolveBackendTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<SolveCase>& info) {
      std::string name = BackendName(info.param.backend) + "_" +
                         ProblemName(info.param.problem);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(SolveTest, AutoDefaultsApplied) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(200, 2, /*seed=*/12);
  SolveOptions opts;
  opts.backend = Backend::kMapReduce;
  opts.k = 4;  // k_prime, partitions, workers all auto
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 4u);
  // auto k' = 16, auto partitions = 8 -> coreset 8*16.
  EXPECT_EQ(r.coreset_size, 128u);
}

TEST(SolveTest, SmallInputClampsKAndPartitions) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(3, 2, /*seed=*/13);
  SolveOptions opts;
  opts.backend = Backend::kMapReduce;
  opts.k = 8;
  opts.num_partitions = 16;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 3u);  // whole input
}

// ---------------------------------------------------------------------------
// TrySolve: the strictly validated entry point. Solve() keeps its clamping
// contract (asserted elsewhere); TrySolve must reject what Solve absorbs.

TEST(TrySolveTest, RejectsZeroK) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(50, 2, /*seed=*/31);
  SolveOptions opts;
  opts.k = 0;
  StatusOr<SolveResult> r = TrySolve(pts, metric, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TrySolveTest, RejectsKLargerThanInput) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(10, 2, /*seed=*/32);
  SolveOptions opts;
  opts.k = 11;
  StatusOr<SolveResult> r = TrySolve(pts, metric, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Empty input is the same violation (k > 0 = n), not a special case.
  StatusOr<SolveResult> empty = TrySolve(PointSet{}, metric, opts);
  EXPECT_FALSE(empty.ok());
}

TEST(TrySolveTest, RejectsKPrimeBelowK) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(100, 2, /*seed=*/33);
  SolveOptions opts;
  opts.k = 8;
  opts.k_prime = 4;  // nonzero and < k
  StatusOr<SolveResult> r = TrySolve(pts, metric, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TrySolveTest, RejectsNonFiniteCoordinates) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(20, 2, /*seed=*/34);
  pts[7] = Point::Dense({0.5f, std::numeric_limits<float>::quiet_NaN()});
  SolveOptions opts;
  opts.k = 3;
  StatusOr<SolveResult> r = TrySolve(pts, metric, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The error names the offending point.
  EXPECT_NE(r.status().message().find("7"), std::string::npos)
      << r.status().message();
}

TEST(TrySolveTest, RejectsGeneralizedBackendOnNonInjectiveProblem) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(100, 2, /*seed=*/35);
  for (Backend b : {Backend::kStreamingTwoPass,
                    Backend::kMapReduceGeneralized}) {
    SolveOptions opts;
    opts.backend = b;
    opts.problem = DiversityProblem::kRemoteEdge;  // not injective-proxy
    opts.k = 4;
    StatusOr<SolveResult> r = TrySolve(pts, metric, opts);
    EXPECT_FALSE(r.ok()) << BackendName(b);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(TrySolveTest, ValidInputMatchesSolve) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(300, 2, /*seed=*/36);
  for (Backend b : {Backend::kSequential, Backend::kStreaming,
                    Backend::kMapReduce}) {
    SolveOptions opts;
    opts.backend = b;
    opts.k = 6;
    opts.seed = 36;
    SolveResult want = Solve(pts, metric, opts);
    StatusOr<SolveResult> got = TrySolve(pts, metric, opts);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->solution.size(), want.solution.size());
    for (size_t i = 0; i < want.solution.size(); ++i) {
      EXPECT_TRUE(got->solution[i] == want.solution[i]) << BackendName(b);
    }
    EXPECT_EQ(got->diversity, want.diversity) << BackendName(b);
    EXPECT_FALSE(got->degraded.has_value());
  }
}

// The legacy entry point must keep absorbing what TrySolve rejects — both
// contracts are load-bearing.
TEST(TrySolveTest, LegacySolveStillClamps) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(5, 2, /*seed=*/37);
  SolveOptions opts;
  opts.k = 50;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 5u);  // clamped, not rejected
  EXPECT_TRUE(Solve(PointSet{}, metric, opts).solution.empty());
}

TEST(SolveTest, SequentialMatchesDirectCall) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(100, 2, /*seed=*/14);
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteEdge;
  opts.k = 5;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.rounds_or_passes, 0u);
  EXPECT_EQ(r.coreset_size, 0u);
  EXPECT_EQ(r.solution.size(), 5u);
}

}  // namespace
}  // namespace diverse
