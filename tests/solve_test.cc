#include "api/solve.h"

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

TEST(SolveTest, BackendNamesRoundTrip) {
  for (Backend b :
       {Backend::kSequential, Backend::kStreaming, Backend::kStreamingTwoPass,
        Backend::kMapReduce, Backend::kMapReduceRandomized,
        Backend::kMapReduceGeneralized, Backend::kMapReduceRecursive}) {
    bool ok = false;
    EXPECT_EQ(ParseBackend(BackendName(b), &ok), b);
    EXPECT_TRUE(ok);
  }
  bool ok = true;
  ParseBackend("nope", &ok);
  EXPECT_FALSE(ok);
}

// Every backend must return k points with positive diversity for every
// problem it supports.
struct SolveCase {
  Backend backend;
  DiversityProblem problem;
};

class SolveBackendTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(SolveBackendTest, ProducesValidSolution) {
  const SolveCase& c = GetParam();
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(800, 2, /*seed=*/11);
  SolveOptions opts;
  opts.problem = c.problem;
  opts.backend = c.backend;
  opts.k = 6;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 6u);
  EXPECT_GT(r.diversity, 0.0);
  EXPECT_GE(r.seconds, 0.0);
  if (c.backend != Backend::kSequential) {
    EXPECT_GT(r.coreset_size, 0u);
    EXPECT_GE(r.rounds_or_passes, 1u);
  }
}

std::vector<SolveCase> MakeCases() {
  std::vector<SolveCase> cases;
  for (DiversityProblem p : kAllProblems) {
    for (Backend b : {Backend::kSequential, Backend::kStreaming,
                      Backend::kMapReduce, Backend::kMapReduceRandomized,
                      Backend::kMapReduceRecursive}) {
      cases.push_back({b, p});
    }
    if (RequiresInjectiveProxies(p)) {
      cases.push_back({Backend::kStreamingTwoPass, p});
      cases.push_back({Backend::kMapReduceGeneralized, p});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SolveBackendTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<SolveCase>& info) {
      std::string name = BackendName(info.param.backend) + "_" +
                         ProblemName(info.param.problem);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(SolveTest, AutoDefaultsApplied) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(200, 2, /*seed=*/12);
  SolveOptions opts;
  opts.backend = Backend::kMapReduce;
  opts.k = 4;  // k_prime, partitions, workers all auto
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 4u);
  // auto k' = 16, auto partitions = 8 -> coreset 8*16.
  EXPECT_EQ(r.coreset_size, 128u);
}

TEST(SolveTest, SmallInputClampsKAndPartitions) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(3, 2, /*seed=*/13);
  SolveOptions opts;
  opts.backend = Backend::kMapReduce;
  opts.k = 8;
  opts.num_partitions = 16;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.solution.size(), 3u);  // whole input
}

TEST(SolveTest, SequentialMatchesDirectCall) {
  EuclideanMetric metric;
  PointSet pts = GenerateUniformCube(100, 2, /*seed=*/14);
  SolveOptions opts;
  opts.problem = DiversityProblem::kRemoteEdge;
  opts.k = 5;
  SolveResult r = Solve(pts, metric, opts);
  EXPECT_EQ(r.rounds_or_passes, 0u);
  EXPECT_EQ(r.coreset_size, 0u);
  EXPECT_EQ(r.solution.size(), 5u);
}

}  // namespace
}  // namespace diverse
