#include "util/status.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace diverse {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkStatusFactory) {
  Status s = OkStatus();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* label;
  };
  const std::vector<Case> cases = {
      {InvalidArgumentError("bad k"), StatusCode::kInvalidArgument,
       "INVALID_ARGUMENT"},
      {NotFoundError("no file"), StatusCode::kNotFound, "NOT_FOUND"},
      {DataLossError("truncated"), StatusCode::kDataLoss, "DATA_LOSS"},
      {DeadlineExceededError("late"), StatusCode::kDeadlineExceeded,
       "DEADLINE_EXCEEDED"},
      {FailedPreconditionError("order"), StatusCode::kFailedPrecondition,
       "FAILED_PRECONDITION"},
      {AbortedError("crash"), StatusCode::kAborted, "ABORTED"},
      {InternalError("bug"), StatusCode::kInternal, "INTERNAL"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    // ToString leads with the code label so log lines are greppable.
    EXPECT_NE(c.status.ToString().find(c.label), std::string::npos)
        << c.status.ToString();
    EXPECT_NE(c.status.ToString().find(c.status.message()), std::string::npos);
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(v.status().message(), "nope");
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  std::vector<int> taken = std::move(*v);
  EXPECT_EQ(taken.size(), 3u);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 5u);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("must be positive");
  return x;
}

Status Chain(int x) {
  StatusOr<int> v = ParsePositive(x);
  DIVERSE_RETURN_IF_ERROR(v.status());
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(5).ok());
  Status bad = Chain(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace diverse
