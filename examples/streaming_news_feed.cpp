// Streaming diversification of a live feed (paper §7.1 discusses sustaining
// Twitter-scale rates: the 2013 average was 5,700 tweets/s).
//
// A news aggregator wants to keep, at all times, a panel of k maximally
// different stories from a stream it sees exactly once and cannot store.
// The 1-pass streaming algorithm of Theorem 3 does this in memory
// independent of the stream length: SMM-EXT maintains the core-set online,
// and the panel is extracted on demand.

#include <cstdio>

#include "core/diversity.h"
#include "core/metric.h"
#include "data/sparse_text.h"
#include "streaming/sliding_window.h"
#include "streaming/streaming_diversity.h"
#include "util/timer.h"

int main() {
  using namespace diverse;

  // The day's stream: 50k documents over a 5000-term vocabulary, 24 evolving
  // topics. Generated up front here, but consumed strictly one at a time.
  SparseTextOptions feed;
  feed.n = 50000;
  feed.vocab_size = 5000;
  feed.num_topics = 24;
  feed.seed = 99;
  PointSet stream = GenerateSparseTextDataset(feed);

  CosineMetric metric;
  const size_t k = 12;
  const size_t k_prime = 4 * k;

  StreamingDiversity panel(&metric, DiversityProblem::kRemoteClique, k,
                           k_prime);

  Timer timer;
  size_t processed = 0;
  for (const Point& story : stream) {
    panel.Update(story);
    ++processed;
    if (processed % 20000 == 0) {
      std::printf("... %zu stories ingested, %zu points in memory\n",
                  processed, panel.peak_memory_points());
    }
  }
  double ingest_seconds = timer.Seconds();

  StreamingResult result = panel.Finalize();
  std::printf("\nstream length:        %zu stories\n", processed);
  std::printf("ingest throughput:    %.0f stories/s\n",
              processed / ingest_seconds);
  std::printf("peak memory:          %zu points (independent of stream size)\n",
              result.peak_memory_points);
  std::printf("panel size:           %zu stories\n", result.solution.size());
  std::printf("panel diversity:      %.3f (remote-clique, cosine)\n",
              result.diversity);
  std::printf("avg pairwise angle:   %.3f rad\n",
              result.diversity /
                  DiversityTermCount(DiversityProblem::kRemoteClique, k));

  // --- Sliding window: "most diverse stories of the last 10k" ------------
  // The whole-stream panel above never forgets; a news page usually should.
  // SlidingWindowDiversity keeps one core-set per block of the stream and
  // answers queries over the most recent `window` points in block
  // granularity, with memory independent of the stream length.
  SlidingWindowOptions wopts;
  wopts.problem = DiversityProblem::kRemoteClique;
  wopts.k = k;
  wopts.k_prime = k_prime;
  wopts.window = 10000;
  wopts.block = 2500;
  SlidingWindowDiversity window_panel(&metric, wopts);
  for (const Point& story : stream) window_panel.Update(story);
  StreamingResult recent = window_panel.Query();
  std::printf("\nsliding window (last ~%zu stories):\n", wopts.window);
  std::printf("window panel size:    %zu stories\n", recent.solution.size());
  std::printf("window diversity:     %.3f\n", recent.diversity);
  std::printf("window memory:        %zu points across %zu block core-sets\n",
              recent.peak_memory_points, window_panel.retained_blocks());
  return 0;
}
