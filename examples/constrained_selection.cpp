// Diversity under partition-matroid constraints — the generalization the
// paper points to in its related work ("diversity maximization under
// matroid constraints ... generalize the cardinality constraints").
//
// Scenario: assemble a k-item "editor's picks" panel that is maximally
// diverse (remote-clique) but may include at most 2 items per provider.
// Without the constraint, the most diverse picks may all come from one
// prolific provider; the matroid keeps the panel fair while the local
// search keeps it diverse.

#include <cstdio>
#include <vector>

#include "core/diversity.h"
#include "core/matroid.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/synthetic.h"
#include "util/rng.h"

int main() {
  using namespace diverse;

  // 5000 items in feature space; 10 providers of very different sizes
  // (provider 0 contributes half the catalog — and, adversarially, the most
  // extreme items).
  EuclideanMetric metric;
  SphereDatasetOptions data;
  data.n = 5000;
  data.k = 16;  // 16 extreme items...
  data.seed = 7;
  PointSet items = GenerateSphereDataset(data);

  Rng rng(11);
  std::vector<size_t> provider(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    // The 16 extreme items all belong to provider 0; the bulk is split
    // between provider 0 (half) and providers 1..9.
    if (i < data.k) {
      provider[i] = 0;
    } else {
      provider[i] = rng.NextDouble() < 0.5 ? 0 : 1 + rng.NextBounded(9);
    }
  }

  const size_t k = 8;

  // Unconstrained selection: greedy matching.
  std::vector<size_t> unconstrained =
      SolveSequential(DiversityProblem::kRemoteClique, items, metric, k);
  size_t from_p0 = 0;
  for (size_t idx : unconstrained) from_p0 += (provider[idx] == 0);
  PointSet usel;
  for (size_t idx : unconstrained) usel.push_back(items[idx]);
  double udiv =
      EvaluateDiversity(DiversityProblem::kRemoteClique, usel, metric);
  std::printf("unconstrained: div = %.2f, %zu of %zu items from provider 0\n",
              udiv, from_p0, k);

  // Constrained: at most 2 items per provider.
  PartitionMatroid matroid;
  matroid.capacity.assign(10, 2);
  matroid.category_of = provider;
  MatroidSolveResult constrained =
      SolveRemoteCliqueUnderMatroid(items, metric, matroid, k);
  std::vector<size_t> per_provider(10, 0);
  for (size_t idx : constrained.solution) per_provider[provider[idx]]++;
  std::printf("constrained:   div = %.2f (%.0f%% of unconstrained), "
              "provider histogram:",
              constrained.diversity, 100.0 * constrained.diversity / udiv);
  for (size_t c : per_provider) std::printf(" %zu", c);
  std::printf("\nlocal-search swaps applied: %zu\n", constrained.swaps);
  return 0;
}
