// Quickstart: pick the k most diverse points from a small dataset with the
// sequential algorithms, then do the same at scale with streaming and
// MapReduce.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/diversity.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/synthetic.h"
#include "mapreduce/mr_diversity.h"
#include "streaming/streaming_diversity.h"

int main() {
  using namespace diverse;

  // --- 1. Sequential: k diverse points from an in-memory dataset. ---------
  EuclideanMetric metric;
  PointSet points = GenerateUniformCube(/*n=*/1000, /*dim=*/2, /*seed=*/42);
  const size_t k = 5;

  std::vector<size_t> picked =
      SolveSequential(DiversityProblem::kRemoteEdge, points, metric, k);
  PointSet solution;
  for (size_t idx : picked) solution.push_back(points[idx]);
  double div =
      EvaluateDiversity(DiversityProblem::kRemoteEdge, solution, metric);
  std::printf("sequential remote-edge: div = %.4f, points:\n", div);
  for (const Point& p : solution) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  // --- 2. Streaming: one pass, memory independent of stream length. -------
  StreamingDiversity stream(&metric, DiversityProblem::kRemoteEdge, k,
                            /*k_prime=*/4 * k);
  for (const Point& p : points) stream.Update(p);
  StreamingResult sres = stream.Finalize();
  std::printf("streaming remote-edge:  div = %.4f (coreset %zu pts, peak mem %zu pts)\n",
              sres.diversity, sres.coreset_size, sres.peak_memory_points);

  // --- 3. MapReduce: two rounds over 8 simulated reducers. ----------------
  MrOptions opts;
  opts.k = k;
  opts.k_prime = 4 * k;
  opts.num_partitions = 8;
  opts.num_workers = 4;
  MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, opts);
  MrResult mres = mr.Run(points);
  std::printf("mapreduce remote-edge:  div = %.4f (%zu rounds, |T| = %zu, M_L = %zu pts)\n",
              mres.diversity, mres.rounds, mres.coreset_size,
              mres.max_local_memory_points);

  // All three pipelines solve the same problem; the distributed ones trade a
  // little accuracy (controlled by k') for memory/passes.
  return 0;
}
