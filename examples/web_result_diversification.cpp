// Web-result diversification (paper §1: "after filtering and ranking for
// relevance, the output set is often too large to be presented to the user;
// a practical solution is to present a diverse subset of the results").
//
// We model a result set as bag-of-words documents under the cosine distance
// (the metric the paper uses for the musiXmatch corpus) and pick k results
// maximizing remote-clique — the sum of pairwise distances — so the user
// sees the variety of topics the query matched.

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/diversity.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/sparse_text.h"

int main() {
  using namespace diverse;

  // A "query result set": 2000 documents over a 2000-term vocabulary with
  // 12 latent topics (the query matched several senses of the query terms).
  SparseTextOptions corpus;
  corpus.n = 2000;
  corpus.vocab_size = 2000;
  corpus.num_topics = 12;
  corpus.topic_fraction = 0.7;
  corpus.seed = 7;
  PointSet results = GenerateSparseTextDataset(corpus);

  CosineMetric metric;
  const size_t k = 10;

  // remote-clique: matching-based 2-approximation.
  std::vector<size_t> picked =
      SolveSequential(DiversityProblem::kRemoteClique, results, metric, k);
  PointSet page;
  for (size_t idx : picked) page.push_back(results[idx]);

  double clique =
      EvaluateDiversity(DiversityProblem::kRemoteClique, page, metric);
  double pairs = DiversityTermCount(DiversityProblem::kRemoteClique, k);
  std::printf("picked %zu of %zu results\n", page.size(), results.size());
  std::printf("sum of pairwise cosine distances: %.3f\n", clique);
  std::printf("average pairwise distance: %.3f rad (pi/2 = orthogonal topics)\n",
              clique / pairs);

  // Contrast with plain relevance ranking: a similarity-ranked result list
  // fills the first page with near-duplicates of the best hit. Model it as
  // the k results most similar to the top result.
  std::vector<std::pair<double, size_t>> by_similarity;
  for (size_t i = 0; i < results.size(); ++i) {
    by_similarity.emplace_back(metric.Distance(results[0], results[i]), i);
  }
  std::sort(by_similarity.begin(), by_similarity.end());
  PointSet top_k;
  for (size_t i = 0; i < k; ++i) {
    top_k.push_back(results[by_similarity[i].second]);
  }
  double naive =
      EvaluateDiversity(DiversityProblem::kRemoteClique, top_k, metric);
  std::printf("similarity-ranked top-k (no diversification): %.3f (avg %.3f rad)\n",
              naive, naive / pairs);
  std::printf("diversification gain: %.2fx\n", clique / naive);
  return 0;
}
