// Dataset summarization on a (simulated) cluster — the paper's headline use
// case: "diversity maximization provides a succinct summary of a dataset
// while preserving the diversity of the data".
//
// A 2-round MapReduce run summarizes a large point cloud into k
// representatives; we then compare the deterministic 2-round, randomized
// 2-round (Theorem 7) and 3-round generalized (Theorem 10) variants on the
// same input, showing the memory/round trade-offs of Table 3.

#include <cstdio>

#include "core/diversity.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "mapreduce/mr_diversity.h"

int main() {
  using namespace diverse;

  // 100k points in R^3: k planted far-away points on the unit sphere plus a
  // uniform bulk (the paper's most challenging synthetic distribution).
  // Note on sizing: remote-clique's final sequential step (greedy matching)
  // is quadratic in the aggregate core-set size l*k'*k, so k and k' are the
  // knobs that dominate end-to-end cost, not n.
  SphereDatasetOptions data;
  data.n = 100000;
  data.k = 32;
  data.seed = 2024;
  PointSet points = GenerateSphereDataset(data);

  EuclideanMetric metric;
  MrOptions opts;
  // k > log2(n) so Theorem 7's randomized delegate cap actually bites.
  opts.k = 32;
  opts.k_prime = 32;
  opts.num_partitions = 16;
  opts.num_workers = 8;
  opts.partition = PartitionStrategy::kRandom;

  DiversityProblem problem = DiversityProblem::kRemoteClique;
  MapReduceDiversity mr(&metric, problem, opts);

  std::printf("%-28s %8s %10s %10s %10s %8s\n", "variant", "rounds",
              "|T| pts", "M_L pts", "shuffle", "div");
  auto report = [](const char* name, const MrResult& r) {
    std::printf("%-28s %8zu %10zu %10zu %10zu %8.2f\n", name, r.rounds,
                r.coreset_size, r.max_local_memory_points, r.shuffle_points,
                r.diversity);
  };

  report("2-round deterministic", mr.Run(points));

  MrOptions ropts = opts;
  ropts.randomized_delegate_cap = true;
  MapReduceDiversity mr_rand(&metric, problem, ropts);
  report("2-round randomized (Thm 7)", mr_rand.Run(points));

  report("3-round generalized (Thm 10)", mr.RunGeneralized(points));

  // Multi-round recursion (Theorem 8) under a tight local-memory budget.
  report("recursive (Thm 8, ML=4096)",
         mr.RunRecursive(points, /*local_memory_budget=*/4096));
  return 0;
}
