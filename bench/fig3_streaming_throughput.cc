// Figure 3: throughput (points/s) of the *kernel* of the streaming
// algorithm — the per-point Update() cost, excluding data generation /
// acquisition, exactly as the paper isolates it — on the text corpus
// (cosine distance), for the same (k, k') grid as Figure 1.
//
// Paper reading: throughput is inversely proportional to both k and k',
// ranging 3,078 .. 544,920 points/s on musiXmatch (and higher, 78k..850k,
// on the cheaper synthetic distance).

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "streaming/streaming_diversity.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("n", 20000));
  size_t n_synth = static_cast<size_t>(flags.GetInt("n_synth", 200000));

  bench::Banner("Figure 3",
                "Throughput of the streaming kernel (Update() only, stream "
                "pre-materialized in memory).\nText corpus under cosine "
                "distance; synthetic R^3 under Euclidean for contrast.");

  const std::vector<size_t> ks = {8, 32, 128};
  const std::vector<size_t> mults = {1, 2, 4, 8};

  {
    CosineMetric metric;
    SparseTextOptions opts;
    opts.n = n;
    opts.vocab_size = 5000;
    opts.num_topics = 32;
    opts.seed = 42;
    PointSet docs = GenerateSparseTextDataset(opts);

    TablePrinter table({"k", "k'", "throughput (points/s)"});
    for (size_t k : ks) {
      for (size_t mult : mults) {
        StreamingDiversity sd(&metric, DiversityProblem::kRemoteEdge, k,
                              k * mult);
        Timer timer;
        for (const Point& d : docs) sd.Update(d);
        double seconds = timer.Seconds();
        table.AddRow({TablePrinter::Fmt(static_cast<long long>(k)),
                      std::to_string(mult) + "k",
                      TablePrinter::Fmt(
                          static_cast<long long>(docs.size() / seconds))});
      }
    }
    std::printf("--- text corpus (cosine) ---\n%s\n", table.ToString().c_str());
  }

  {
    EuclideanMetric metric;
    SphereDatasetOptions opts;
    opts.n = n_synth;
    opts.k = 128;
    opts.seed = 43;
    PointSet pts = GenerateSphereDataset(opts);

    TablePrinter table({"k", "k'", "throughput (points/s)"});
    for (size_t k : ks) {
      for (size_t mult : mults) {
        StreamingDiversity sd(&metric, DiversityProblem::kRemoteEdge, k,
                              k * mult);
        Timer timer;
        for (const Point& p : pts) sd.Update(p);
        double seconds = timer.Seconds();
        table.AddRow({TablePrinter::Fmt(static_cast<long long>(k)),
                      std::to_string(mult) + "k",
                      TablePrinter::Fmt(
                          static_cast<long long>(pts.size() / seconds))});
      }
    }
    std::printf("--- synthetic R^3 (euclidean) ---\n%s\n",
                table.ToString().c_str());
  }

  std::printf("Paper (Fig. 3): throughput inversely proportional to k and "
              "k'; cosine-distance corpus\nslower than the synthetic data "
              "because each distance evaluation is costlier.\n");
  return 0;
}
