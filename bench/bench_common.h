// Shared helpers for the per-figure/table benchmark harnesses.
//
// Each bench binary prints the rows/series of one paper experiment. All
// accept `--key=value` flags (sizes, repetitions, seeds) so the scaled-down
// laptop defaults can be raised toward the paper's original sizes on bigger
// machines.

#ifndef DIVERSE_BENCH_BENCH_COMMON_H_
#define DIVERSE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/diversity.h"
#include "core/metric.h"
#include "core/point.h"
#include "core/sequential.h"

namespace diverse {
namespace bench {

/// Minimal --key=value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      size_t eq = arg.find('=');
      // insert_or_assign with an explicit std::string sidesteps a GCC 12
      // -Wrestrict false positive (PR105651) on map-subscript assignment.
      if (eq == std::string::npos) {
        values_.insert_or_assign(arg.substr(2), std::string("1"));
      } else {
        values_.insert_or_assign(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    }
  }

  long long GetInt(const std::string& key, long long def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }

  std::string GetString(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// div(solution) where `solution` indexes into `points`.
inline double SolutionDiversity(DiversityProblem problem,
                                const PointSet& points,
                                const std::vector<size_t>& indices,
                                const Metric& metric) {
  PointSet sol;
  sol.reserve(indices.size());
  for (size_t i : indices) sol.push_back(points[i]);
  return EvaluateDiversity(problem, sol, metric);
}

/// Prints a header banner so bench outputs are self-describing.
inline void Banner(const char* experiment, const char* description) {
  std::printf("=== %s ===\n%s\n\n", experiment, description);
}

}  // namespace bench
}  // namespace diverse

#endif  // DIVERSE_BENCH_BENCH_COMMON_H_
