// Table 2 (empirical counterpart): approximation quality of our composable
// core-sets for all six diversity measures, compared with the theoretical
// factors of previous general-metric-space constructions [Indyk et al. 14;
// Aghamolaei et al. 15].
//
// The paper's Table 2 is theoretical (our core-sets: 1 + eps on bounded
// doubling dimension; previous: 3 / 6+eps / 12 / 18 / 4 / 3). Here we
// *measure* the core-set approximation on planted-sphere data: ratio =
// div_k(best reference solution) / div_k(solution from the core-set). The
// measured ratios should sit near 1, far below the general-metric-space
// guarantees.

#include <vector>

#include "bench_common.h"
#include "core/coreset.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/synthetic.h"
#include "mapreduce/partitioner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("n", 20000));
  size_t k = static_cast<size_t>(flags.GetInt("k", 8));
  size_t parts = static_cast<size_t>(flags.GetInt("parts", 4));
  int runs = static_cast<int>(flags.GetInt("runs", 5));

  bench::Banner("Table 2 (empirical)",
                "Measured composable core-set approximation ratio per "
                "diversity measure (k' = 4k,\nplanted-sphere R^3 data) vs "
                "the theoretical factors of general-metric-space\n"
                "constructions from prior work.");

  EuclideanMetric metric;
  const double prior[] = {3.0, 6.0, 12.0, 18.0, 4.0, 3.0};  // Table 2, prior work

  TablePrinter table({"problem", "measured ratio (ours)",
                      "prior work factor (theory)"});
  size_t pi = 0;
  for (DiversityProblem problem : kAllProblems) {
    double ratio_sum = 0.0;
    for (int run = 0; run < runs; ++run) {
      SphereDatasetOptions opts;
      opts.n = n;
      opts.k = k;
      opts.seed = 6000 + static_cast<uint64_t>(run);
      PointSet pts = GenerateSphereDataset(opts);

      // Reference: the sequential algorithm on the full input.
      std::vector<size_t> ref_idx =
          SolveSequential(problem, pts, metric, k);
      double ref = bench::SolutionDiversity(problem, pts, ref_idx, metric);

      // Composable core-set: per-partition construction, then solve on the
      // union.
      auto partitions = PartitionPoints(pts, parts,
                                        PartitionStrategy::kRandom,
                                        100 + static_cast<uint64_t>(run));
      PointSet united;
      for (const PointSet& part : partitions) {
        PointSet c = RequiresInjectiveProxies(problem)
                         ? GmmExtCoreset(part, metric, 4 * k, k - 1).points
                         : GmmCoreset(part, metric, 4 * k).points;
        united.insert(united.end(), c.begin(), c.end());
      }
      std::vector<size_t> core_idx =
          SolveSequential(problem, united, metric, k);
      double core =
          bench::SolutionDiversity(problem, united, core_idx, metric);

      ratio_sum += std::max(ref, core) / core;
    }
    table.AddRow({ProblemName(problem),
                  TablePrinter::Fmt(ratio_sum / runs, 3),
                  TablePrinter::Fmt(prior[pi], 0)});
    ++pi;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper (Table 2): our construction guarantees 1 + eps for all "
              "six measures on bounded\ndoubling dimension; prior "
              "general-metric constructions guarantee 3 .. 18. Measured\n"
              "ratios near 1.0 confirm the (1+eps) behaviour.\n");
  return 0;
}
