// Figure 2: approximation ratio of the streaming algorithm for different
// values of k and k' on the synthetic planted-sphere dataset in R^3
// (remote-edge). Because R^3 has small doubling dimension, the paper sweeps
// k' linearly: k' in {k, k+4, k+16, k+64}.
//
// Paper setup: 100M points. Default here: 1M (--n to change); the ratio
// curves depend on the distribution, not n, once n >> k'.
//
// Paper reading: ratios can be large (5-45) at k' = k and collapse toward 1
// already at k' = k + 64.

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "streaming/streaming_diversity.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("n", 1000000));
  int runs = static_cast<int>(flags.GetInt("runs", 3));

  bench::Banner("Figure 2",
                "Streaming approximation ratio vs k and k' (synthetic R^3 "
                "planted-sphere data,\nremote-edge; linear k' progression "
                "because R^3 has small doubling dimension).");

  EuclideanMetric metric;
  const DiversityProblem problem = DiversityProblem::kRemoteEdge;
  const std::vector<size_t> ks = {8, 32, 128};
  const std::vector<size_t> adds = {0, 4, 16, 64};

  TablePrinter table({"k", "k'", "div", "ratio"});
  for (size_t k : ks) {
    std::vector<std::vector<double>> div(adds.size(),
                                         std::vector<double>(runs, 0.0));
    for (int run = 0; run < runs; ++run) {
      SphereDatasetOptions opts;
      opts.n = n;
      opts.k = k;
      opts.seed = 2000 + static_cast<uint64_t>(run);
      for (size_t ai = 0; ai < adds.size(); ++ai) {
        SphereStream stream(opts);
        StreamingDiversity sd(&metric, problem, k, k + adds[ai]);
        while (stream.HasNext()) sd.Update(stream.Next());
        div[ai][run] = sd.Finalize().diversity;
      }
    }
    for (size_t ai = 0; ai < adds.size(); ++ai) {
      double ratio_sum = 0.0, div_sum = 0.0;
      for (int run = 0; run < runs; ++run) {
        double best = 0.0;
        for (size_t aj = 0; aj < adds.size(); ++aj) {
          best = std::max(best, div[aj][run]);
        }
        ratio_sum += best / div[ai][run];
        div_sum += div[ai][run];
      }
      std::string kp = adds[ai] == 0 ? "k" : "k+" + std::to_string(adds[ai]);
      table.AddRow({TablePrinter::Fmt(static_cast<long long>(k)), kp,
                    TablePrinter::Fmt(div_sum / runs, 4),
                    TablePrinter::Fmt(ratio_sum / runs, 3)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper (Fig. 2): large ratios (up to ~45) at k'=k, rapid drop "
              "with small additive\nincreases of k'; harder for larger k.\n");
  return 0;
}
