// Kernel microbenchmarks (google-benchmark): distance evaluations, GMM
// steps, SMM updates, diversity evaluators. These track the constants behind
// the throughput numbers of Figure 3.

#include <benchmark/benchmark.h>

#include "core/coreset.h"
#include "core/diversity.h"
#include "core/gmm.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "streaming/smm.h"

namespace diverse {
namespace {

void BM_EuclideanDistanceDense3(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(2, 3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Distance(pts[0], pts[1]));
  }
}
BENCHMARK(BM_EuclideanDistanceDense3);

void BM_CosineDistanceSparse(benchmark::State& state) {
  CosineMetric m;
  SparseTextOptions opts;
  opts.n = 2;
  opts.max_terms = static_cast<size_t>(state.range(0));
  opts.min_terms = opts.max_terms / 2;
  opts.seed = 1;
  PointSet docs = GenerateSparseTextDataset(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Distance(docs[0], docs[1]));
  }
}
BENCHMARK(BM_CosineDistanceSparse)->Arg(20)->Arg(60)->Arg(120);

void BM_Gmm(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  PointSet pts = GenerateUniformCube(n, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gmm(pts, m, k));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Gmm)->Args({10000, 32})->Args({10000, 128})->Args({50000, 32});

void BM_GmmExtCoreset(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(10000, 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GmmExtCoreset(pts, m, 64, 15));
  }
}
BENCHMARK(BM_GmmExtCoreset);

void BM_SmmUpdate(benchmark::State& state) {
  EuclideanMetric m;
  size_t k_prime = static_cast<size_t>(state.range(0));
  PointSet pts = GenerateUniformCube(100000, 3, 4);
  Smm smm(&m, k_prime / 2, k_prime);
  size_t i = 0;
  for (auto _ : state) {
    smm.Update(pts[i++ % pts.size()]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SmmUpdate)->Arg(32)->Arg(128)->Arg(512);

void BM_EvaluateDiversity(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(64, 3, 5);
  DistanceMatrix d(pts, m);
  auto problem = static_cast<DiversityProblem>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateDiversity(problem, d));
  }
  state.SetLabel(ProblemName(problem));
}
BENCHMARK(BM_EvaluateDiversity)
    ->Arg(static_cast<int>(DiversityProblem::kRemoteEdge))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteClique))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteStar))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteBipartition))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteTree))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteCycle));

void BM_GreedyMatching(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  PointSet pts = GenerateUniformCube(n, 3, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMatchingOnPoints(pts, m, 8));
  }
}
BENCHMARK(BM_GreedyMatching)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace diverse
