// Kernel microbenchmarks (google-benchmark): distance evaluations, GMM
// steps, SMM updates, diversity evaluators, and scalar-vs-batched/tiled
// kernel comparisons. These track the constants behind the throughput
// numbers of Figure 3 and measure (rather than assert) the speedup of the
// columnar Dataset + batched/tiled kernel paths over the scalar
// virtual-dispatch loops.
//
// Besides the usual console output, the binary writes a machine-readable
// BENCH_micro.json (override the path with the BENCH_MICRO_JSON environment
// variable): a {"meta": ..., "entries": [...]} document whose meta block
// records the run configuration (git sha, hardware thread count, AVX2
// dispatch state, fp32 screening mode) so trajectories are comparable
// across commits and machines, and whose entries each carry
// {op, n, dim, threads, metric, ns_per_op, rescue_pct, pruned_pct}.
// Benchmarks report n / dim / threads / rescue_pct / pruned_pct through
// counters of those names and the metric through the label.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/coreset.h"
#include "core/cover_tree.h"
#include "core/dataset.h"
#include "core/distance_matrix.h"
#include "core/diversity.h"
#include "core/gmm.h"
#include "core/kcenter.h"
#include "core/metric.h"
#include "core/screen.h"
#include "core/sequential.h"
#include "core/unfused_screen_metric.h"
#include "core/vector_kernels.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "mapreduce/mr_diversity.h"
#include "streaming/smm.h"
#include "util/thread_pool.h"

namespace diverse {
namespace {

void BM_EuclideanDistanceDense3(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(2, 3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Distance(pts[0], pts[1]));
  }
  state.counters["n"] = 2;
  state.counters["dim"] = 3;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_EuclideanDistanceDense3);

void BM_CosineDistanceSparse(benchmark::State& state) {
  CosineMetric m;
  SparseTextOptions opts;
  opts.n = 2;
  opts.max_terms = static_cast<size_t>(state.range(0));
  opts.min_terms = opts.max_terms / 2;
  opts.seed = 1;
  PointSet docs = GenerateSparseTextDataset(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Distance(docs[0], docs[1]));
  }
  state.counters["n"] = 2;
  state.counters["dim"] = static_cast<double>(opts.max_terms);
  state.SetLabel("cosine");
}
BENCHMARK(BM_CosineDistanceSparse)->Arg(20)->Arg(60)->Arg(120);

void BM_Gmm(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  PointSet pts = GenerateUniformCube(n, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gmm(pts, m, k));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 3;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_Gmm)->Args({10000, 32})->Args({10000, 128})->Args({50000, 32});

void BM_GmmExtCoreset(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(10000, 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GmmExtCoreset(pts, m, 64, 15));
  }
  state.counters["n"] = 10000;
  state.counters["dim"] = 3;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_GmmExtCoreset);

void BM_SmmUpdate(benchmark::State& state) {
  EuclideanMetric m;
  size_t k_prime = static_cast<size_t>(state.range(0));
  PointSet pts = GenerateUniformCube(100000, 3, 4);
  Smm smm(&m, k_prime / 2, k_prime);
  size_t i = 0;
  for (auto _ : state) {
    smm.Update(pts[i++ % pts.size()]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["n"] = static_cast<double>(k_prime);
  state.counters["dim"] = 3;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_SmmUpdate)->Arg(32)->Arg(128)->Arg(512);

void BM_EvaluateDiversity(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(64, 3, 5);
  DistanceMatrix d(pts, m);
  auto problem = static_cast<DiversityProblem>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateDiversity(problem, d));
  }
  state.SetLabel(ProblemName(problem));
}
BENCHMARK(BM_EvaluateDiversity)
    ->Arg(static_cast<int>(DiversityProblem::kRemoteEdge))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteClique))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteStar))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteBipartition))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteTree))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteCycle));

void BM_GreedyMatching(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  PointSet pts = GenerateUniformCube(n, 3, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMatchingOnPoints(pts, m, 8));
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 3;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_GreedyMatching)->Arg(500)->Arg(2000);

// --- Scalar vs batched kernels -------------------------------------------
// One query against n points of the given dimension: the scalar loop pays a
// virtual Distance call and two heap-pointer dereferences per evaluation;
// the batched sweep runs devirtualized over contiguous rows.

void BM_DistanceSweepScalar(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  size_t dim = static_cast<size_t>(state.range(1));
  PointSet pts = GenerateUniformCube(n, dim, 7);
  const Metric& metric = m;  // force virtual dispatch, as the old hot loops
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) acc += metric.Distance(pts[i], pts[0]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = static_cast<double>(dim);
  state.SetLabel("euclidean");
}
BENCHMARK(BM_DistanceSweepScalar)->Args({50000, 3})->Args({50000, 64});

void BM_DistanceSweepBatched(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  size_t dim = static_cast<size_t>(state.range(1));
  // Pin to one worker so this measures devirtualization + layout, not
  // parallelism (BM_GmmBatched50k covers the thread axis).
  SetGlobalThreadPoolSize(1);
  Dataset data = Dataset::FromPoints(GenerateUniformCube(n, dim, 7));
  std::vector<double> out(n);
  for (auto _ : state) {
    m.DistanceToMany(data.point(0), data, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = static_cast<double>(dim);
  state.SetLabel("euclidean");
}
BENCHMARK(BM_DistanceSweepBatched)->Args({50000, 3})->Args({50000, 64});

// --- Scalar vs batched (and 1-vs-N-thread) GMM ---------------------------
// The acceptance workload of the Dataset refactor: GMM on 50k dense points.

void BM_GmmScalar50k(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(50000, 3, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GmmScalar(pts, m, 32));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
  state.counters["n"] = 50000;
  state.counters["dim"] = 3;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_GmmScalar50k)->Unit(benchmark::kMillisecond);

void BM_GmmBatched50k(benchmark::State& state) {
  EuclideanMetric m;
  size_t threads = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(threads);
  Dataset data = Dataset::FromPoints(GenerateUniformCube(50000, 3, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gmm(data, m, 32));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
  state.counters["n"] = 50000;
  state.counters["dim"] = 3;
  state.counters["threads"] = static_cast<double>(threads);
  state.SetLabel("euclidean");
  SetGlobalThreadPoolSize(1);
}
BENCHMARK(BM_GmmBatched50k)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- Per-center sweeps vs blocked multi-center tiles ---------------------
// The acceptance workload of the tile layer: dense k-center assignment of
// k=64 centers over n=50k points, single-threaded. The per-center variant
// is the PR 1 path (one RelaxAndArgFarthest sweep per center, n rows
// streamed k times); the tiled variant loads each row block once for all
// centers (RelaxTilesAndArgFarthest).

constexpr size_t kAssignN = 50000;
constexpr size_t kAssignK = 64;
constexpr size_t kAssignDim = 3;

void BM_KCenterAssignPerCenter(benchmark::State& state) {
  EuclideanMetric m;
  SetGlobalThreadPoolSize(1);
  Dataset data =
      Dataset::FromPoints(GenerateUniformCube(kAssignN, kAssignDim, 9));
  std::vector<size_t> centers = Gmm(data, m, kAssignK).selected;
  std::vector<double> dist;
  std::vector<size_t> assignment(kAssignN);
  for (auto _ : state) {
    dist.assign(kAssignN, std::numeric_limits<double>::infinity());
    size_t farthest = 0;
    for (size_t c = 0; c < centers.size(); ++c) {
      farthest = m.RelaxAndArgFarthest(data.point(centers[c]), data, dist,
                                       assignment, c);
    }
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kAssignN * kAssignK));
  state.counters["n"] = static_cast<double>(kAssignN);
  state.counters["dim"] = static_cast<double>(kAssignDim);
  state.SetLabel("euclidean");
}
BENCHMARK(BM_KCenterAssignPerCenter)->Unit(benchmark::kMillisecond);

void BM_KCenterAssignTiled(benchmark::State& state) {
  EuclideanMetric m;
  SetGlobalThreadPoolSize(1);
  Dataset data =
      Dataset::FromPoints(GenerateUniformCube(kAssignN, kAssignDim, 9));
  Dataset center_rows;
  for (size_t c : Gmm(data, m, kAssignK).selected) {
    center_rows.Append(data.point(c));
  }
  std::vector<double> dist;
  std::vector<size_t> assignment(kAssignN);
  for (auto _ : state) {
    dist.assign(kAssignN, std::numeric_limits<double>::infinity());
    size_t farthest = RelaxTilesAndArgFarthest(
        m, center_rows, 0, center_rows.size(), 0, data, dist, assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kAssignN * kAssignK));
  state.counters["n"] = static_cast<double>(kAssignN);
  state.counters["dim"] = static_cast<double>(kAssignDim);
  state.SetLabel("euclidean");
}
BENCHMARK(BM_KCenterAssignTiled)->Unit(benchmark::kMillisecond);

// One Q x R distance tile against the equivalent per-query DistanceToMany
// sweeps, dense rows.
void BM_DistanceTile(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = 4096;
  size_t q = static_cast<size_t>(state.range(0));
  size_t dim = static_cast<size_t>(state.range(1));
  SetGlobalThreadPoolSize(1);
  Dataset data = Dataset::FromPoints(GenerateUniformCube(n, dim, 10));
  std::vector<double> out(q * n);
  for (auto _ : state) {
    m.DistanceTile(data, 0, q, data, 0, n, out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(q * n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = static_cast<double>(dim);
  state.SetLabel("euclidean");
}
BENCHMARK(BM_DistanceTile)->Args({16, 3})->Args({16, 64})->Args({64, 16});

void BM_DistanceTilePerQuery(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = 4096;
  size_t q = static_cast<size_t>(state.range(0));
  size_t dim = static_cast<size_t>(state.range(1));
  SetGlobalThreadPoolSize(1);
  Dataset data = Dataset::FromPoints(GenerateUniformCube(n, dim, 10));
  std::vector<double> out(n);
  for (auto _ : state) {
    for (size_t i = 0; i < q; ++i) {
      m.DistanceToMany(data.point(i), data, 0, out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(q * n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = static_cast<double>(dim);
  state.SetLabel("euclidean");
}
BENCHMARK(BM_DistanceTilePerQuery)
    ->Args({16, 3})
    ->Args({16, 64})
    ->Args({64, 16});

// Full pairwise matrix build: tiled columnar path vs scalar per-pair loop.
void BM_DistanceMatrixTiled(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  Dataset data = Dataset::FromPoints(GenerateUniformCube(n, 3, 11));
  for (auto _ : state) {
    DistanceMatrix d(data, m);
    benchmark::DoNotOptimize(d.at(0, n - 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * (n - 1) / 2));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 3;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_DistanceMatrixTiled)->Arg(2000);

void BM_DistanceMatrixScalar(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  PointSet pts = GenerateUniformCube(n, 3, 11);
  const Metric& metric = m;  // virtual dispatch, as the pre-tile build
  for (auto _ : state) {
    DistanceMatrix d(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        d.set(i, j, metric.Distance(pts[i], pts[j]));
      }
    }
    benchmark::DoNotOptimize(d.at(0, n - 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * (n - 1) / 2));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 3;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_DistanceMatrixScalar)->Arg(2000);

// --- Sparse tile engine vs per-pair scalar merge -------------------------
// The acceptance workload of the sparse tile layer (PR 3): a 64-query block
// of CSR documents against every row of the corpus, single-threaded. The
// per-pair variants replicate the pre-engine DistanceTile fallback exactly
// (devirtualized scalar merge per pair over the columnar views); the tiled
// variants decode the query block once and stream each CSR row a single
// time against all lanes. Configurations: the paper-sized vocabulary of
// 5000 with ~100-term documents, and the heavy 1k-nnz documents the
// blocked intersection targets.

Dataset SparseBenchCorpus(size_t n, uint32_t vocab, size_t max_terms,
                          uint64_t seed) {
  SparseTextOptions opts;
  opts.n = n;
  opts.vocab_size = vocab;
  opts.min_terms = max_terms / 2;
  opts.max_terms = max_terms;
  opts.seed = seed;
  return Dataset::FromPoints(GenerateSparseTextDataset(opts));
}

constexpr size_t kSparseTileQueries = 64;

template <typename MetricT>
void SparseTileBench(benchmark::State& state, const char* label,
                     uint32_t vocab) {
  MetricT m;
  size_t n = static_cast<size_t>(state.range(0));
  size_t nnz = static_cast<size_t>(state.range(1));
  SetGlobalThreadPoolSize(1);
  Dataset data = SparseBenchCorpus(n, vocab, nnz, 12);
  std::vector<double> out(kSparseTileQueries * n);
  for (auto _ : state) {
    m.DistanceTile(data, 0, kSparseTileQueries, data, 0, n, out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparseTileQueries * n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = static_cast<double>(vocab);
  state.SetLabel(label);
}

template <typename PairKernel>
void SparseTilePerPairBench(benchmark::State& state, const char* label,
                            uint32_t vocab, const PairKernel& pair) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t nnz = static_cast<size_t>(state.range(1));
  SetGlobalThreadPoolSize(1);
  Dataset data = SparseBenchCorpus(n, vocab, nnz, 12);
  std::vector<double> out(kSparseTileQueries * n);
  for (auto _ : state) {
    for (size_t q = 0; q < kSparseTileQueries; ++q) {
      kernels::VecView qv = data.row(q);
      for (size_t r = 0; r < n; ++r) {
        out[q * n + r] = pair(data.row(r), qv);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparseTileQueries * n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = static_cast<double>(vocab);
  state.SetLabel(label);
}

void BM_SparseTileCosine(benchmark::State& state) {
  SparseTileBench<CosineMetric>(state, "cosine", 5000);
}
BENCHMARK(BM_SparseTileCosine)->Args({4096, 120})->Args({2048, 1000});

void BM_SparseTileCosinePerPair(benchmark::State& state) {
  SparseTilePerPairBench(
      state, "cosine", 5000,
      [](const kernels::VecView& a, const kernels::VecView& b) {
        return kernels::AngularCosine(a, b);
      });
}
BENCHMARK(BM_SparseTileCosinePerPair)->Args({4096, 120})->Args({2048, 1000});

void BM_SparseTileJaccard(benchmark::State& state) {
  SparseTileBench<JaccardMetric>(state, "jaccard", 5000);
}
BENCHMARK(BM_SparseTileJaccard)->Args({4096, 120});

void BM_SparseTileJaccardPerPair(benchmark::State& state) {
  SparseTilePerPairBench(
      state, "jaccard", 5000,
      [](const kernels::VecView& a, const kernels::VecView& b) {
        return kernels::SupportJaccard(a, b);
      });
}
BENCHMARK(BM_SparseTileJaccardPerPair)->Args({4096, 120});

// Euclidean exercises the union-walk engine at two support layouts: the
// overlapping vocabulary of 500 (block union far below the summed lane
// supports) and the wide vocabulary of 5000 (nearly disjoint lanes — the
// regime the profitability gate polices).
void BM_SparseTileEuclidean(benchmark::State& state) {
  SparseTileBench<EuclideanMetric>(state, "euclidean", 500);
}
BENCHMARK(BM_SparseTileEuclidean)->Args({4096, 120});

void BM_SparseTileEuclideanPerPair(benchmark::State& state) {
  SparseTilePerPairBench(
      state, "euclidean", 500,
      [](const kernels::VecView& a, const kernels::VecView& b) {
        return kernels::Euclidean(a, b);
      });
}
BENCHMARK(BM_SparseTileEuclideanPerPair)->Args({4096, 120});

void BM_SparseTileEuclideanWideVocab(benchmark::State& state) {
  SparseTileBench<EuclideanMetric>(state, "euclidean", 5000);
}
BENCHMARK(BM_SparseTileEuclideanWideVocab)->Args({4096, 120});

void BM_SparseTileEuclideanWideVocabPerPair(benchmark::State& state) {
  SparseTilePerPairBench(
      state, "euclidean", 5000,
      [](const kernels::VecView& a, const kernels::VecView& b) {
        return kernels::Euclidean(a, b);
      });
}
BENCHMARK(BM_SparseTileEuclideanWideVocabPerPair)->Args({4096, 120});

// --- Screened (fp32 screen-then-certify) argmax sweeps -------------------
// The acceptance workload of the mixed-precision engine: the k-center
// assignment argmax of k=64 centers over n=50k rows, screened
// (ScreenedRelaxTilesAndArgFarthest: fp32 tiles + certified-band exact
// rescues) against the PR 2 exact tile path on the same inputs. Setup
// verifies bit-identity of dist / assignment / argmax between the two paths
// (SkipWithError drops the entry from BENCH_micro.json on mismatch, which
// the CI smoke job treats as a failure) and reports the rescue rate —
// exact re-evaluations as a percentage of screened evaluations — through
// the rescue_pct counter.

constexpr size_t kScreenN = 50000;
constexpr size_t kScreenK = 64;

struct ScreenedSweepSetup {
  Dataset data;
  Dataset center_rows;
  std::vector<double> dist;
  std::vector<size_t> assignment;

  // Returns false (after SkipWithError) if screened != exact.
  bool VerifyAndReportRescue(benchmark::State& state, const Metric& metric) {
    std::vector<double> exact_dist(data.size(),
                                   std::numeric_limits<double>::infinity());
    std::vector<size_t> exact_assign(data.size(), 0);
    size_t exact_far;
    {
      ScopedScreening off(false);
      exact_far = RelaxTilesAndArgFarthest(metric, center_rows, 0,
                                           center_rows.size(), 0, data,
                                           exact_dist, exact_assign);
    }
    CountingMetric counting(&metric);
    std::vector<double> sdist(data.size(),
                              std::numeric_limits<double>::infinity());
    std::vector<size_t> sassign(data.size(), 0);
    size_t far = ScreenedRelaxTilesAndArgFarthest(
        counting, center_rows, 0, center_rows.size(), 0, data, sdist,
        sassign);
    if (far != exact_far || sdist != exact_dist || sassign != exact_assign) {
      state.SkipWithError("screened sweep diverged from exact sweep");
      return false;
    }
    state.counters["rescue_pct"] =
        counting.screened_evals() == 0
            ? 0.0
            : 100.0 * static_cast<double>(counting.exact_evals()) /
                  static_cast<double>(counting.screened_evals());
    return true;
  }
};

ScreenedSweepSetup MakeDenseScreenedSweep(size_t dim) {
  ScreenedSweepSetup s;
  s.data = Dataset::FromPoints(GenerateUniformCube(kScreenN, dim, 13));
  EuclideanMetric m;
  for (size_t c : Gmm(s.data, m, kScreenK).selected) {
    s.center_rows.Append(s.data.point(c));
  }
  s.assignment.resize(kScreenN);
  return s;
}

void BM_ScreenedSweepDense(benchmark::State& state) {
  EuclideanMetric m;
  size_t dim = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeDenseScreenedSweep(dim);
  if (!s.VerifyAndReportRescue(state, m)) return;
  for (auto _ : state) {
    s.dist.assign(kScreenN, std::numeric_limits<double>::infinity());
    size_t farthest = ScreenedRelaxTilesAndArgFarthest(
        m, s.center_rows, 0, s.center_rows.size(), 0, s.data, s.dist,
        s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kScreenN * kScreenK));
  state.counters["n"] = static_cast<double>(kScreenN);
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["threads"] = 1;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_ScreenedSweepDense)->Arg(3)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The PR 2 exact tile argmax on the identical inputs — the denominator of
// the screened speedup.
void BM_ScreenedSweepDenseExact(benchmark::State& state) {
  EuclideanMetric m;
  size_t dim = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeDenseScreenedSweep(dim);
  ScopedScreening off(false);
  for (auto _ : state) {
    s.dist.assign(kScreenN, std::numeric_limits<double>::infinity());
    size_t farthest =
        RelaxTilesAndArgFarthest(m, s.center_rows, 0, s.center_rows.size(), 0,
                                 s.data, s.dist, s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kScreenN * kScreenK));
  state.counters["n"] = static_cast<double>(kScreenN);
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["threads"] = 1;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_ScreenedSweepDenseExact)->Arg(3)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Dense angular sweeps exercise the fp32 dot lanes plus the certified
// polynomial acos (the exact path pays a libm acos per pair).
ScreenedSweepSetup MakeDenseCosineScreenedSweep(size_t dim) {
  ScreenedSweepSetup s;
  s.data = Dataset::FromPoints(GenerateUniformCube(kScreenN, dim, 15));
  CosineMetric m;
  for (size_t c : Gmm(s.data, m, kScreenK).selected) {
    s.center_rows.Append(s.data.point(c));
  }
  s.assignment.resize(kScreenN);
  return s;
}

void BM_ScreenedSweepDenseCosine(benchmark::State& state) {
  CosineMetric m;
  size_t dim = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeDenseCosineScreenedSweep(dim);
  if (!s.VerifyAndReportRescue(state, m)) return;
  for (auto _ : state) {
    s.dist.assign(kScreenN, std::numeric_limits<double>::infinity());
    size_t farthest = ScreenedRelaxTilesAndArgFarthest(
        m, s.center_rows, 0, s.center_rows.size(), 0, s.data, s.dist,
        s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kScreenN * kScreenK));
  state.counters["n"] = static_cast<double>(kScreenN);
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["threads"] = 1;
  state.SetLabel("cosine");
}
BENCHMARK(BM_ScreenedSweepDenseCosine)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_ScreenedSweepDenseCosineExact(benchmark::State& state) {
  CosineMetric m;
  size_t dim = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeDenseCosineScreenedSweep(dim);
  ScopedScreening off(false);
  for (auto _ : state) {
    s.dist.assign(kScreenN, std::numeric_limits<double>::infinity());
    size_t farthest =
        RelaxTilesAndArgFarthest(m, s.center_rows, 0, s.center_rows.size(), 0,
                                 s.data, s.dist, s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kScreenN * kScreenK));
  state.counters["n"] = static_cast<double>(kScreenN);
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["threads"] = 1;
  state.SetLabel("cosine");
}
BENCHMARK(BM_ScreenedSweepDenseCosineExact)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Sparse screened sweeps run the fp32 union-walk engine (Euclidean; the
// angular sparse tile is gated unprofitable — see
// CosineMetric::ScreeningProfitableFor).
ScreenedSweepSetup MakeSparseScreenedSweep(size_t n) {
  ScreenedSweepSetup s;
  SparseTextOptions opts;
  opts.n = n;
  opts.vocab_size = 5000;
  opts.min_terms = 60;
  opts.max_terms = 120;
  opts.seed = 14;
  s.data = Dataset::FromPoints(GenerateSparseTextDataset(opts));
  EuclideanMetric m;
  for (size_t c : Gmm(s.data, m, kScreenK).selected) {
    s.center_rows.Append(s.data.point(c));
  }
  s.assignment.resize(n);
  return s;
}

void BM_ScreenedSweepSparseEuclidean(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeSparseScreenedSweep(n);
  if (!s.VerifyAndReportRescue(state, m)) return;
  for (auto _ : state) {
    s.dist.assign(n, std::numeric_limits<double>::infinity());
    size_t farthest = ScreenedRelaxTilesAndArgFarthest(
        m, s.center_rows, 0, s.center_rows.size(), 0, s.data, s.dist,
        s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * kScreenK));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 5000;
  state.counters["threads"] = 1;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_ScreenedSweepSparseEuclidean)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ScreenedSweepSparseEuclideanExact(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeSparseScreenedSweep(n);
  ScopedScreening off(false);
  for (auto _ : state) {
    s.dist.assign(n, std::numeric_limits<double>::infinity());
    size_t farthest =
        RelaxTilesAndArgFarthest(m, s.center_rows, 0, s.center_rows.size(), 0,
                                 s.data, s.dist, s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * kScreenK));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 5000;
  state.counters["threads"] = 1;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_ScreenedSweepSparseEuclideanExact)->Arg(4096)
    ->Unit(benchmark::kMillisecond);


void BM_FusedScreenRelaxDense(benchmark::State& state) {
  EuclideanMetric m;
  size_t dim = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeDenseScreenedSweep(dim);
  if (!s.VerifyAndReportRescue(state, m)) return;
  for (auto _ : state) {
    s.dist.assign(kScreenN, std::numeric_limits<double>::infinity());
    size_t farthest = ScreenedRelaxTilesAndArgFarthest(
        m, s.center_rows, 0, s.center_rows.size(), 0, s.data, s.dist,
        s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kScreenN * kScreenK));
  state.counters["n"] = static_cast<double>(kScreenN);
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["threads"] = 1;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_FusedScreenRelaxDense)->Arg(3)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_FusedScreenRelaxDenseUnfused(benchmark::State& state) {
  EuclideanMetric inner;
  UnfusedScreenMetric m(&inner);
  size_t dim = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeDenseScreenedSweep(dim);
  if (!s.VerifyAndReportRescue(state, m)) return;
  for (auto _ : state) {
    s.dist.assign(kScreenN, std::numeric_limits<double>::infinity());
    size_t farthest = ScreenedRelaxTilesAndArgFarthest(
        m, s.center_rows, 0, s.center_rows.size(), 0, s.data, s.dist,
        s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kScreenN * kScreenK));
  state.counters["n"] = static_cast<double>(kScreenN);
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["threads"] = 1;
  state.SetLabel("euclidean/unfused");
}
BENCHMARK(BM_FusedScreenRelaxDenseUnfused)->Arg(3)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The fused SMM "argmin + threshold" update sweep at dim 3 — below the old
// >=8-coords-per-row gate, so the pre-fusion engine ran this exact. Arg(1)
// screens (fused sweep), Arg(0) is the exact baseline.
void BM_FusedScreenSmmUpdate(benchmark::State& state) {
  EuclideanMetric m;
  bool screening = state.range(0) != 0;
  SetGlobalThreadPoolSize(1);
  PointSet pts = GenerateUniformCube(100000, 3, 4);
  ScopedScreening guard(screening);
  Smm smm(&m, 64, 128);
  size_t i = 0;
  for (auto _ : state) {
    smm.Update(pts[i++ % pts.size()]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["n"] = 128;
  state.counters["dim"] = 3;
  state.counters["threads"] = 1;
  state.SetLabel(screening ? "euclidean/screened" : "euclidean/exact");
}
BENCHMARK(BM_FusedScreenSmmUpdate)->Arg(1)->Arg(0);

// The cosine-space angular screen on an all-sparse corpus: the skip path
// pays one multiply-compare per lane off the blocked CSR dot engine — no
// arccos — which is what finally lets sparse cosine screen profitably
// (the pre-fusion gate kept it on the exact path).
ScreenedSweepSetup MakeSparseCosineScreenedSweep(size_t n) {
  ScreenedSweepSetup s;
  SparseTextOptions opts;
  opts.n = n;
  opts.vocab_size = 5000;
  opts.min_terms = 60;
  opts.max_terms = 120;
  opts.seed = 16;
  s.data = Dataset::FromPoints(GenerateSparseTextDataset(opts));
  CosineMetric m;
  for (size_t c : Gmm(s.data, m, kScreenK).selected) {
    s.center_rows.Append(s.data.point(c));
  }
  s.assignment.resize(n);
  return s;
}

void BM_FusedScreenSparseCosine(benchmark::State& state) {
  CosineMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeSparseCosineScreenedSweep(n);
  if (!s.VerifyAndReportRescue(state, m)) return;
  for (auto _ : state) {
    s.dist.assign(n, std::numeric_limits<double>::infinity());
    size_t farthest = ScreenedRelaxTilesAndArgFarthest(
        m, s.center_rows, 0, s.center_rows.size(), 0, s.data, s.dist,
        s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * kScreenK));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 5000;
  state.counters["threads"] = 1;
  state.SetLabel("cosine");
}
BENCHMARK(BM_FusedScreenSparseCosine)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_FusedScreenSparseCosineExact(benchmark::State& state) {
  CosineMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  ScreenedSweepSetup s = MakeSparseCosineScreenedSweep(n);
  ScopedScreening off(false);
  for (auto _ : state) {
    s.dist.assign(n, std::numeric_limits<double>::infinity());
    size_t farthest =
        RelaxTilesAndArgFarthest(m, s.center_rows, 0, s.center_rows.size(), 0,
                                 s.data, s.dist, s.assignment);
    benchmark::DoNotOptimize(farthest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * kScreenK));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 5000;
  state.counters["threads"] = 1;
  state.SetLabel("cosine");
}
BENCHMARK(BM_FusedScreenSparseCosineExact)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// Screened GMM end to end at dim 16 (single-query sweeps below ~dim 8 are
// gated back to the exact path — too little per-row work to amortize the
// screen; dim 3 therefore ties by construction).
void BM_ScreenedGmm50k(benchmark::State& state) {
  EuclideanMetric m;
  bool screening = state.range(0) != 0;
  SetGlobalThreadPoolSize(1);
  Dataset data = Dataset::FromPoints(GenerateUniformCube(50000, 16, 8));
  ScopedScreening guard(screening);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gmm(data, m, 32));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
  state.counters["n"] = 50000;
  state.counters["dim"] = 16;
  state.counters["threads"] = 1;
  state.SetLabel(screening ? "euclidean/screened" : "euclidean/exact");
}
BENCHMARK(BM_ScreenedGmm50k)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// ParallelForRanges dispatch overhead: a near-empty body over a mid-size
// index space, so the arena's no-allocation dispatch dominates the timing.
void BM_ParallelForRangesDispatch(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(threads);
  std::vector<double> sink(16384, 1.0);
  for (auto _ : state) {
    GlobalThreadPool().ParallelForRanges(
        sink.size(), 256, [&](size_t lo, size_t hi) {
          double s = 0.0;
          for (size_t i = lo; i < hi; ++i) s += sink[i];
          benchmark::DoNotOptimize(s);
        });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["n"] = static_cast<double>(sink.size());
  state.counters["threads"] = static_cast<double>(threads);
  SetGlobalThreadPoolSize(1);
}
BENCHMARK(BM_ParallelForRangesDispatch)->Arg(2)->Arg(4);

// --- Cover-tree metric index (third screening tier) ----------------------
// Clustered corpus in the regime the index targets: 8 well-separated blobs
// at dim 16 with small spread, so the profitability probe sees low doubling
// dimension and gates the index ON (setup SkipWithErrors if it ever gates
// off — the acceptance criterion). The uniform dim-32 corpus is the
// complement: the probe must gate OFF and the gated Gmm() must ride within
// a few percent of the pinned flat path (the probe is the only overhead).

Dataset MakeClusteredCorpus(size_t n) {
  return Dataset::FromPoints(GenerateGaussianBlobs(n, 8, 16, 0.02, 17));
}

void BM_CoverTreeBuild(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(1);
  EuclideanMetric m;
  Dataset data = MakeClusteredCorpus(n);
  for (auto _ : state) {
    CoverTree tree = CoverTree::Build(data, m);
    benchmark::DoNotOptimize(tree.nodes().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 16;
  state.counters["threads"] = 1;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_CoverTreeBuild)->Arg(20000)->Arg(200000)
    ->Unit(benchmark::kMillisecond);

// End-to-end gated GMM on the clustered corpus: probe + build + lazy-greedy
// traversal per call (the honest cost an API caller pays). Setup verifies
// the gate fires and the indexed result is bit-identical to the flat
// screened sweep, and reports the node-prune rate through pruned_pct.
void BM_LazyGreedyGmmClustered(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  SetGlobalThreadPoolSize(1);
  EuclideanMetric m;
  Dataset data = MakeClusteredCorpus(n);
  if (!IndexProfitable(data, m, k)) {
    state.SkipWithError("index gated off on the clustered corpus");
    return;
  }
  GmmResult flat;
  {
    ScopedIndexing off(false);
    flat = Gmm(data, m, k);
  }
  CoverTree tree = CoverTree::Build(data, m);
  CoverTreeQueryStats stats;
  GmmResult indexed = LazyGreedyGmm(data, tree, m, k, 0, &stats);
  if (indexed.selected != flat.selected || indexed.range != flat.range ||
      indexed.assignment != flat.assignment ||
      indexed.distance_to_selected != flat.distance_to_selected) {
    state.SkipWithError("indexed GMM diverged from flat screened GMM");
    return;
  }
  for (auto _ : state) {
    GmmResult r = Gmm(data, m, k);
    benchmark::DoNotOptimize(r.range);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * k));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 16;
  state.counters["threads"] = 1;
  state.counters["pruned_pct"] =
      100.0 * static_cast<double>(stats.pruned_pairs) /
      static_cast<double>(stats.pruned_pairs + stats.applied_pairs);
  state.SetLabel("euclidean");
}
BENCHMARK(BM_LazyGreedyGmmClustered)->Args({20000, 64})->Args({200000, 256})
    ->Unit(benchmark::kMillisecond);

// The flat screened baseline on the identical corpus and k (indexing pinned
// off) — the pair of entries is the measured speedup.
void BM_LazyGreedyGmmClusteredFlat(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  SetGlobalThreadPoolSize(1);
  EuclideanMetric m;
  Dataset data = MakeClusteredCorpus(n);
  ScopedIndexing off(false);
  for (auto _ : state) {
    GmmResult r = Gmm(data, m, k);
    benchmark::DoNotOptimize(r.range);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * k));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dim"] = 16;
  state.counters["threads"] = 1;
  state.SetLabel("euclidean");
}
BENCHMARK(BM_LazyGreedyGmmClusteredFlat)->Args({20000, 64})
    ->Args({200000, 256})->Unit(benchmark::kMillisecond);

// Uniform high-dimensional corpus: the probe gates OFF (setup verifies) and
// Gmm() pays only the probe before falling back — Arg(1) measures the gated
// call, Arg(0) the flat path with indexing pinned off. Their ratio is the
// gated-off regression the acceptance bound caps at 5%.
void BM_LazyGreedyGmmUniformGated(benchmark::State& state) {
  bool gated = state.range(0) != 0;
  SetGlobalThreadPoolSize(1);
  EuclideanMetric m;
  Dataset data = Dataset::FromPoints(GenerateUniformCube(20000, 32, 19));
  if (IndexProfitable(data, m, 64)) {
    state.SkipWithError("index gated on for the uniform corpus");
    return;
  }
  ScopedIndexing guard(gated);
  for (auto _ : state) {
    GmmResult r = Gmm(data, m, 64);
    benchmark::DoNotOptimize(r.range);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(20000 * 64));
  state.counters["n"] = 20000;
  state.counters["dim"] = 32;
  state.counters["threads"] = 1;
  state.SetLabel(gated ? "euclidean/gated-off" : "euclidean/flat");
}
BENCHMARK(BM_LazyGreedyGmmUniformGated)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// Fault-tolerant executor overhead. The 2-round MR driver now runs every
// round through RunFallibleRound (per-attempt bookkeeping, commit closures,
// injector probes) even when no injector is configured; the acceptance
// bound caps the fault-free overhead at 2% of end-to-end driver time.
//   Arg(0): fault-free — the number CI tracks.
//   Arg(1): a 4-fault schedule (3 crashes + 1 corrupt partition) on 16
//           partitions — the recovery cost when faults DO fire, for
//           context (not bounded).
void BM_MrFaultRecovery(benchmark::State& state) {
  const bool faulty = state.range(0) != 0;
  SetGlobalThreadPoolSize(4);
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(20000, 8, /*seed=*/23);
  FaultInjector faults;
  if (faulty) {
    faults.Add({"coreset", 2, 0, FaultKind::kCrash, 0});
    faults.Add({"coreset", 7, 0, FaultKind::kCrash, 0});
    faults.Add({"coreset", 11, 0, FaultKind::kCrash, 0});
    faults.Add({"coreset", 5, 0, FaultKind::kCorruptPartition, 9});
  }
  MrOptions o;
  o.k = 16;
  o.k_prime = 64;
  o.num_partitions = 16;
  o.num_workers = 4;
  o.seed = 23;
  if (faulty) o.faults = &faults;
  MapReduceDiversity driver(&m, DiversityProblem::kRemoteEdge, o);
  for (auto _ : state) {
    StatusOr<MrResult> r = driver.TryRun(pts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->diversity);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
  state.counters["n"] = static_cast<double>(pts.size());
  state.counters["dim"] = 8;
  state.counters["threads"] = 4;
  state.SetLabel(faulty ? "euclidean/faulty" : "euclidean/fault-free");
}
BENCHMARK(BM_MrFaultRecovery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace diverse

namespace {

// Console reporter that also collects one {op, n, dim, metric, ns_per_op,
// rescue_pct} record per iteration run and writes them — under a meta block
// describing the run configuration — as BENCH_micro.json.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string op;
    double n = 0.0;
    double dim = 0.0;
    double threads = 0.0;
    std::string metric;
    double ns_per_op = 0.0;
    double rescue_pct = -1.0;  // < 0: benchmark did not screen
    double pruned_pct = -1.0;  // < 0: benchmark did not index
  };

  // google-benchmark < 1.8 reports failures via Run::error_occurred; 1.8
  // replaced it with Run::skipped. Probe for whichever member exists so the
  // reporter compiles against both.
  template <typename R>
  static bool RunFailedOrSkipped(const R& run) {
    if constexpr (requires { run.error_occurred; }) {
      if (run.error_occurred) return true;
    }
    if constexpr (requires { run.skipped; }) {
      if (static_cast<int>(run.skipped) != 0) return true;
    }
    return false;
  }

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || RunFailedOrSkipped(run)) {
        continue;
      }
      Entry e;
      e.op = run.benchmark_name();
      auto n_it = run.counters.find("n");
      if (n_it != run.counters.end()) e.n = n_it->second.value;
      auto dim_it = run.counters.find("dim");
      if (dim_it != run.counters.end()) e.dim = dim_it->second.value;
      auto t_it = run.counters.find("threads");
      if (t_it != run.counters.end()) e.threads = t_it->second.value;
      auto rescue_it = run.counters.find("rescue_pct");
      if (rescue_it != run.counters.end()) e.rescue_pct = rescue_it->second.value;
      auto pruned_it = run.counters.find("pruned_pct");
      if (pruned_it != run.counters.end()) e.pruned_pct = pruned_it->second.value;
      e.metric = run.report_label;
      if (run.iterations > 0) {
        e.ns_per_op =
            run.real_accumulated_time / static_cast<double>(run.iterations) *
            1e9;
      }
      entries_.push_back(std::move(e));
    }
  }

  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n");
    std::fprintf(
        f,
        "  \"meta\": {\"git_sha\": \"%s\", \"hw_threads\": %u, "
        "\"avx2\": %s, \"screening\": %s},\n",
        Escaped(GitSha()).c_str(), std::thread::hardware_concurrency(),
        diverse::kernels::TileSimdEnabled() ? "true" : "false",
        diverse::ScreeningEnabled() ? "true" : "false");
    std::fprintf(f, "  \"entries\": [\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"op\": \"%s\", \"n\": %.0f, \"dim\": %.0f, "
                   "\"threads\": %.0f, \"metric\": \"%s\", "
                   "\"ns_per_op\": %.3f",
                   Escaped(e.op).c_str(), e.n, e.dim, e.threads,
                   Escaped(e.metric).c_str(), e.ns_per_op);
      if (e.rescue_pct >= 0.0) {
        std::fprintf(f, ", \"rescue_pct\": %.3f", e.rescue_pct);
      }
      if (e.pruned_pct >= 0.0) {
        std::fprintf(f, ", \"pruned_pct\": %.3f", e.pruned_pct);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  // Commit of the benchmarked tree: GITHUB_SHA in CI, `git rev-parse` when
  // run from a work tree, "unknown" otherwise.
  static std::string GitSha() {
    const char* env = std::getenv("GITHUB_SHA");
    if (env != nullptr && env[0] != '\0') return env;
    std::string sha;
    if (std::FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
      char buf[64];
      if (std::fgets(buf, sizeof(buf), p) != nullptr) {
        buf[std::strcspn(buf, "\r\n")] = '\0';
        sha = buf;
      }
      pclose(p);
    }
    return sha.empty() ? "unknown" : sha;
  }

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = std::getenv("BENCH_MICRO_JSON");
  std::string out = path != nullptr ? path : "BENCH_micro.json";
  if (!reporter.WriteJson(out)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", out.c_str());
  return 0;
}
