// Kernel microbenchmarks (google-benchmark): distance evaluations, GMM
// steps, SMM updates, diversity evaluators, and scalar-vs-batched kernel
// comparisons. These track the constants behind the throughput numbers of
// Figure 3 and measure (rather than assert) the speedup of the columnar
// Dataset + batched-kernel path over the scalar virtual-dispatch loop.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/coreset.h"
#include "core/dataset.h"
#include "core/diversity.h"
#include "core/gmm.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "streaming/smm.h"
#include "util/thread_pool.h"

namespace diverse {
namespace {

void BM_EuclideanDistanceDense3(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(2, 3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Distance(pts[0], pts[1]));
  }
}
BENCHMARK(BM_EuclideanDistanceDense3);

void BM_CosineDistanceSparse(benchmark::State& state) {
  CosineMetric m;
  SparseTextOptions opts;
  opts.n = 2;
  opts.max_terms = static_cast<size_t>(state.range(0));
  opts.min_terms = opts.max_terms / 2;
  opts.seed = 1;
  PointSet docs = GenerateSparseTextDataset(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Distance(docs[0], docs[1]));
  }
}
BENCHMARK(BM_CosineDistanceSparse)->Arg(20)->Arg(60)->Arg(120);

void BM_Gmm(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  PointSet pts = GenerateUniformCube(n, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gmm(pts, m, k));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Gmm)->Args({10000, 32})->Args({10000, 128})->Args({50000, 32});

void BM_GmmExtCoreset(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(10000, 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GmmExtCoreset(pts, m, 64, 15));
  }
}
BENCHMARK(BM_GmmExtCoreset);

void BM_SmmUpdate(benchmark::State& state) {
  EuclideanMetric m;
  size_t k_prime = static_cast<size_t>(state.range(0));
  PointSet pts = GenerateUniformCube(100000, 3, 4);
  Smm smm(&m, k_prime / 2, k_prime);
  size_t i = 0;
  for (auto _ : state) {
    smm.Update(pts[i++ % pts.size()]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SmmUpdate)->Arg(32)->Arg(128)->Arg(512);

void BM_EvaluateDiversity(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(64, 3, 5);
  DistanceMatrix d(pts, m);
  auto problem = static_cast<DiversityProblem>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateDiversity(problem, d));
  }
  state.SetLabel(ProblemName(problem));
}
BENCHMARK(BM_EvaluateDiversity)
    ->Arg(static_cast<int>(DiversityProblem::kRemoteEdge))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteClique))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteStar))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteBipartition))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteTree))
    ->Arg(static_cast<int>(DiversityProblem::kRemoteCycle));

void BM_GreedyMatching(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  PointSet pts = GenerateUniformCube(n, 3, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMatchingOnPoints(pts, m, 8));
  }
}
BENCHMARK(BM_GreedyMatching)->Arg(500)->Arg(2000);

// --- Scalar vs batched kernels -------------------------------------------
// One query against n points of the given dimension: the scalar loop pays a
// virtual Distance call and two heap-pointer dereferences per evaluation;
// the batched sweep runs devirtualized over contiguous rows.

void BM_DistanceSweepScalar(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  size_t dim = static_cast<size_t>(state.range(1));
  PointSet pts = GenerateUniformCube(n, dim, 7);
  const Metric& metric = m;  // force virtual dispatch, as the old hot loops
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) acc += metric.Distance(pts[i], pts[0]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DistanceSweepScalar)->Args({50000, 3})->Args({50000, 64});

void BM_DistanceSweepBatched(benchmark::State& state) {
  EuclideanMetric m;
  size_t n = static_cast<size_t>(state.range(0));
  size_t dim = static_cast<size_t>(state.range(1));
  // Pin to one worker so this measures devirtualization + layout, not
  // parallelism (BM_GmmBatched50k covers the thread axis).
  SetGlobalThreadPoolSize(1);
  Dataset data = Dataset::FromPoints(GenerateUniformCube(n, dim, 7));
  std::vector<double> out(n);
  for (auto _ : state) {
    m.DistanceToMany(data.point(0), data, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DistanceSweepBatched)->Args({50000, 3})->Args({50000, 64});

// --- Scalar vs batched (and 1-vs-N-thread) GMM ---------------------------
// The acceptance workload of the Dataset refactor: GMM on 50k dense points.

void BM_GmmScalar50k(benchmark::State& state) {
  EuclideanMetric m;
  PointSet pts = GenerateUniformCube(50000, 3, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GmmScalar(pts, m, 32));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_GmmScalar50k)->Unit(benchmark::kMillisecond);

void BM_GmmBatched50k(benchmark::State& state) {
  EuclideanMetric m;
  size_t threads = static_cast<size_t>(state.range(0));
  SetGlobalThreadPoolSize(threads);
  Dataset data = Dataset::FromPoints(GenerateUniformCube(50000, 3, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gmm(data, m, 32));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
  state.SetLabel(std::to_string(threads) + " thread(s)");
  SetGlobalThreadPoolSize(1);
}
BENCHMARK(BM_GmmBatched50k)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace diverse
