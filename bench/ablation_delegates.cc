// Ablation: delegate strategies for the injective-proxy problems.
//
// The design space DESIGN.md calls out: how many nearby witnesses should a
// core-set carry per kernel point?
//   * full delegates (k-1 per cluster)      — deterministic Theorem 6,
//   * capped delegates (max(log n, k/l))    — randomized Theorem 7,
//   * multiplicities only + instantiation   — generalized Theorem 10,
//   * no delegates at all                   — the (unsound for these
//     problems) kernel-only core-set, as a control showing why delegates
//     exist.
// Reported: aggregate core-set size vs achieved remote-clique diversity.

#include <vector>

#include "bench_common.h"
#include "core/coreset.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/synthetic.h"
#include "mapreduce/mr_diversity.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("n", 100000));
  size_t k = static_cast<size_t>(flags.GetInt("k", 32));
  size_t k_prime = static_cast<size_t>(flags.GetInt("k_prime", 32));
  size_t parts = static_cast<size_t>(flags.GetInt("parts", 8));
  int runs = static_cast<int>(flags.GetInt("runs", 3));

  bench::Banner("Ablation: delegate strategies",
                "Aggregate core-set size vs remote-clique quality for the "
                "four ways of witnessing\ninjective proxies (n = 100k "
                "planted-sphere R^3, k = 32, k' = 32, 8 partitions).");

  EuclideanMetric metric;
  const DiversityProblem problem = DiversityProblem::kRemoteClique;

  struct Row {
    const char* name;
    double coreset = 0.0;
    double div = 0.0;
  };
  Row rows[] = {{"full delegates (Thm 6)"},
                {"capped delegates (Thm 7)"},
                {"multiplicities (Thm 10)"},
                {"kernel only (control)"}};

  for (int run = 0; run < runs; ++run) {
    SphereDatasetOptions dopts;
    dopts.n = n;
    dopts.k = k;
    dopts.seed = 9000 + static_cast<uint64_t>(run);
    PointSet pts = GenerateSphereDataset(dopts);

    MrOptions base;
    base.k = k;
    base.k_prime = k_prime;
    base.num_partitions = parts;
    base.num_workers = 4;
    base.seed = 20 + static_cast<uint64_t>(run);

    {
      MapReduceDiversity mr(&metric, problem, base);
      MrResult r = mr.Run(pts);
      rows[0].coreset += static_cast<double>(r.coreset_size);
      rows[0].div += r.diversity;
    }
    {
      MrOptions o = base;
      o.randomized_delegate_cap = true;
      MapReduceDiversity mr(&metric, problem, o);
      MrResult r = mr.Run(pts);
      rows[1].coreset += static_cast<double>(r.coreset_size);
      rows[1].div += r.diversity;
    }
    {
      MapReduceDiversity mr(&metric, problem, base);
      MrResult r = mr.RunGeneralized(pts);
      rows[2].coreset += static_cast<double>(r.coreset_size);
      rows[2].div += r.diversity;
    }
    {
      // Control: run the remote-EDGE pipeline's kernel-only core-set but
      // solve remote-clique on it. The union still has >= k points, but the
      // injective-proxy guarantee is gone.
      MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, base);
      // Build kernel-only core-sets by hand through the public pieces:
      auto partitions = PartitionPoints(pts, parts, base.partition, base.seed,
                                        &metric);
      PointSet united;
      for (const auto& part : partitions) {
        PointSet c = GmmCoreset(part, metric, k_prime).points;
        united.insert(united.end(), c.begin(), c.end());
      }
      std::vector<size_t> picked =
          SolveSequential(problem, united, metric, k);
      rows[3].coreset += static_cast<double>(united.size());
      rows[3].div += bench::SolutionDiversity(problem, united, picked, metric);
    }
  }

  TablePrinter table({"strategy", "aggregate coreset (pts)", "remote-clique div"});
  for (const Row& r : rows) {
    table.AddRow({r.name, TablePrinter::Fmt(r.coreset / runs, 0),
                  TablePrinter::Fmt(r.div / runs, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: capped delegates shrink the aggregate core-set at nearly no "
      "quality cost\n(Thm 7); multiplicities shrink it by another factor k "
      "for a small instantiation loss\n(Thm 10) — the cheapest memory/"
      "quality point; kernel-only looks similar here but\nforfeits the "
      "injective-proxy worst-case guarantee (it can return < k usable "
      "points\nwhen optima cluster inside single cells).\n");
  return 0;
}
