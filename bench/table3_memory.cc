// Table 3 (empirical counterpart): measured memory footprint of every
// streaming and MapReduce variant, next to the asymptotic bounds the paper
// tabulates.
//
//   streaming 1-pass:    Theta((1/eps)^D k)      [r-edge/cycle, SMM]
//                        Theta((1/eps)^D k^2)    [other four, SMM-EXT]
//   streaming 2-pass:    Theta((1/eps)^D k)      [generalized core-set]
//   MR 2-round det:      M_L = sqrt((1/eps)^D k n)  or  k sqrt((1/eps)^D n)
//   MR 2-round rand:     max(...k^2, sqrt(... k n log n))
//   MR 3-round det:      M_L = sqrt((1/eps)^D k n)
//
// We report points held per reducer / per pass on a fixed workload.

#include <vector>

#include "bench_common.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "mapreduce/mr_diversity.h"
#include "streaming/streaming_diversity.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("n", 100000));
  size_t k = static_cast<size_t>(flags.GetInt("k", 16));
  size_t k_prime = static_cast<size_t>(flags.GetInt("k_prime", 64));
  size_t parts = static_cast<size_t>(flags.GetInt("parts", 8));

  bench::Banner("Table 3 (empirical)",
                "Measured memory (points) of each algorithm variant on one "
                "workload\n(n = 100k planted-sphere R^3, k = 16, k' = 64, 8 "
                "partitions).");

  EuclideanMetric metric;
  SphereDatasetOptions dopts;
  dopts.n = n;
  dopts.k = k;
  dopts.seed = 7000;
  PointSet pts = GenerateSphereDataset(dopts);

  TablePrinter table({"algorithm", "problem family", "measured memory (pts)",
                      "paper bound"});

  {  // streaming 1-pass, SMM
    StreamingDiversity sd(&metric, DiversityProblem::kRemoteEdge, k, k_prime);
    for (const Point& p : pts) sd.Update(p);
    StreamingResult r = sd.Finalize();
    table.AddRow({"streaming 1-pass (SMM)", "r-edge / r-cycle",
                  TablePrinter::Fmt(
                      static_cast<long long>(r.peak_memory_points)),
                  "Theta((1/eps)^D k)"});
  }
  {  // streaming 1-pass, SMM-EXT
    StreamingDiversity sd(&metric, DiversityProblem::kRemoteClique, k,
                          k_prime);
    for (const Point& p : pts) sd.Update(p);
    StreamingResult r = sd.Finalize();
    table.AddRow({"streaming 1-pass (SMM-EXT)", "other four",
                  TablePrinter::Fmt(
                      static_cast<long long>(r.peak_memory_points)),
                  "Theta((1/eps)^D k^2)"});
  }
  {  // streaming 2-pass generalized
    TwoPassStreamingDiversity sd(&metric, DiversityProblem::kRemoteClique, k,
                                 k_prime);
    for (const Point& p : pts) sd.UpdateFirstPass(p);
    sd.EndFirstPass();
    for (const Point& p : pts) sd.UpdateSecondPass(p);
    StreamingResult r = sd.Finalize();
    table.AddRow({"streaming 2-pass (SMM-GEN)", "other four",
                  TablePrinter::Fmt(
                      static_cast<long long>(r.peak_memory_points)),
                  "Theta((a^2/eps)^D k)"});
  }
  MrOptions o;
  o.k = k;
  o.k_prime = k_prime;
  o.num_partitions = parts;
  o.num_workers = 4;
  {  // MR 2-round, GMM family
    MapReduceDiversity mr(&metric, DiversityProblem::kRemoteEdge, o);
    MrResult r = mr.Run(pts);
    table.AddRow({"MR 2-round det (GMM)", "r-edge / r-cycle",
                  TablePrinter::Fmt(
                      static_cast<long long>(r.max_local_memory_points)),
                  "Theta(sqrt((1/eps)^D k n))"});
  }
  {  // MR 2-round, GMM-EXT family
    MapReduceDiversity mr(&metric, DiversityProblem::kRemoteClique, o);
    MrResult r = mr.Run(pts);
    table.AddRow({"MR 2-round det (GMM-EXT)", "other four",
                  TablePrinter::Fmt(
                      static_cast<long long>(r.max_local_memory_points)),
                  "Theta(k sqrt((1/eps)^D n))"});
  }
  {  // MR 2-round randomized
    MrOptions ro = o;
    ro.randomized_delegate_cap = true;
    MapReduceDiversity mr(&metric, DiversityProblem::kRemoteClique, ro);
    MrResult r = mr.Run(pts);
    table.AddRow({"MR 2-round randomized", "other four",
                  TablePrinter::Fmt(
                      static_cast<long long>(r.max_local_memory_points)),
                  "max(k^2, sqrt(k n log n)) * (1/eps)^D terms"});
  }
  {  // MR 3-round generalized
    MapReduceDiversity mr(&metric, DiversityProblem::kRemoteClique, o);
    MrResult r = mr.RunGeneralized(pts);
    table.AddRow({"MR 3-round det (GMM-GEN)", "other four",
                  TablePrinter::Fmt(
                      static_cast<long long>(r.max_local_memory_points)),
                  "Theta(sqrt((a^2/eps)^D k n))"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Note: in the MR rows the measured value is dominated by the "
      "partition size n/l; the\ninteresting comparison is the round-2 "
      "aggregate (|T|): GMM %zu, GMM-EXT up to %zu,\nGMM-GEN %zu pairs — "
      "matching the k-factor separation in the bounds.\n",
      parts * k_prime, parts * k_prime * k, parts * k_prime);
  return 0;
}
