// Table 4: our MapReduce algorithm (CPPU) vs the state-of-the-art AFZ
// baseline on remote-clique: approximation ratio and running time for
// k in {4, 6, 8}, 16 reducers, 2-D Euclidean planted-sphere data,
// CPPU at k' = 128.
//
// Paper setup: 4M points (AFZ "prohibitively slow for higher dimensions and
// bigger datasets"). Default here: 200k (--n to change). Paper reading:
// CPPU achieves slightly better ratios while being >= 3 orders of magnitude
// faster (807s..4625s vs ~1.2s). Our AFZ reimplementation shows the same
// shape (superlinear local search vs one GMM pass); the exact speedup factor
// depends on dataset size and the local-search convergence cap.

#include <vector>

#include "bench_common.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "mapreduce/afz.h"
#include "mapreduce/mr_diversity.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("n", 400000));
  size_t reducers = static_cast<size_t>(flags.GetInt("reducers", 16));
  size_t workers = static_cast<size_t>(flags.GetInt("workers", 8));

  bench::Banner("Table 4",
                "CPPU (k' = 128) vs AFZ on remote-clique, 2-D planted-sphere "
                "data, 16 reducers.\nRatio = best div observed for that k / "
                "achieved div.");

  EuclideanMetric metric;
  const DiversityProblem problem = DiversityProblem::kRemoteClique;
  const std::vector<size_t> ks = {4, 6, 8};
  // Two dataset sizes so the *scaling* of the gap is visible: AFZ's local
  // search is superlinear in n while CPPU's GMM pass is linear (and its
  // round-2 cost is independent of n).
  const std::vector<size_t> sizes = {n / 2, n};

  TablePrinter table({"n", "k", "AFZ ratio", "CPPU ratio", "AFZ time (s)",
                      "CPPU time (s)", "speedup"});
  for (size_t size : sizes) {
    for (size_t k : ks) {
      SphereDatasetOptions dopts;
      dopts.n = size;
      dopts.k = k;
      dopts.dim = 2;
      dopts.seed = 4000 + k;
      PointSet pts = GenerateSphereDataset(dopts);

      AfzOptions aopts;
      aopts.k = k;
      aopts.num_partitions = reducers;
      aopts.num_workers = workers;
      MrResult afz = RunAfz(pts, metric, problem, aopts);

      MrOptions copts;
      copts.k = k;
      copts.k_prime = 128;
      copts.num_partitions = reducers;
      copts.num_workers = workers;
      MapReduceDiversity cppu(&metric, problem, copts);
      MrResult cppu_r = cppu.Run(pts);

      double best = std::max(afz.diversity, cppu_r.diversity);
      table.AddRow({TablePrinter::Fmt(static_cast<long long>(size)),
                    TablePrinter::Fmt(static_cast<long long>(k)),
                    TablePrinter::Fmt(best / afz.diversity, 3),
                    TablePrinter::Fmt(best / cppu_r.diversity, 3),
                    TablePrinter::Fmt(afz.total_seconds, 2),
                    TablePrinter::Fmt(cppu_r.total_seconds, 2),
                    TablePrinter::Fmt(
                        afz.total_seconds / cppu_r.total_seconds, 1) +
                        "x"});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper (Table 4): CPPU ratio <= AFZ ratio at every k, and CPPU "
              "is >= 3 orders of magnitude\nfaster at the paper's 4M-point "
              "scale. The speedup grows with n: AFZ's restart-scan\nlocal "
              "search is superlinear in n, CPPU's GMM pass is linear and its "
              "final round does not\ndepend on n at all.\n");
  return 0;
}
