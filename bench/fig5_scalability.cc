// Figure 5: scalability — running time vs number of processors for several
// dataset sizes (synthetic R^3, remote-edge).
//
// As in the paper, the size s of the aggregate core-set delivered to the
// final reducer is FIXED across parallelism levels, so each of the p
// round-1 reducers builds a core-set of k' = s/p points from n/p points:
// per-reducer work is O(n s / p^2) and total work is O(n s / p). On a
// multi-core host this yields the paper's ~4x time drop per doubling of p
// (work / p^2); on a single core the wall time still drops ~2x per doubling
// (total work / p). The p = 1 data point runs the streaming algorithm with
// k' = s, matching the paper's single-machine setup.
//
// Paper setup: n in {1e8 .. 1.6e9}, p in {1,2,4,8,16}, s = 2048 * 16.
// Default here: n in {125k .. 1M} (--max_n), s = 1024 (--s).

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "mapreduce/mr_diversity.h"
#include "streaming/streaming_diversity.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t max_n = static_cast<size_t>(flags.GetInt("max_n", 1000000));
  size_t k = static_cast<size_t>(flags.GetInt("k", 64));
  size_t s = static_cast<size_t>(flags.GetInt("s", 1024));

  bench::Banner("Figure 5",
                "Scalability: wall time (s) vs processors p, one series per "
                "dataset size (synthetic R^3,\nremote-edge). Aggregate "
                "core-set size s is fixed, so k' = s/p per reducer; p = 1 "
                "is the\nstreaming algorithm with k' = s.");

  EuclideanMetric metric;
  const DiversityProblem problem = DiversityProblem::kRemoteEdge;
  const std::vector<size_t> procs = {1, 2, 4, 8, 16};
  std::vector<size_t> sizes;
  for (size_t n = max_n / 8; n <= max_n; n *= 2) sizes.push_back(n);

  std::vector<std::string> headers = {"n \\ p"};
  for (size_t p : procs) headers.push_back("p=" + std::to_string(p));
  TablePrinter table(headers);

  for (size_t n : sizes) {
    SphereDatasetOptions opts;
    opts.n = n;
    opts.k = k;
    opts.seed = 5000;
    PointSet pts = GenerateSphereDataset(opts);
    std::vector<std::string> row = {std::to_string(n)};
    for (size_t p : procs) {
      Timer timer;
      if (p == 1) {
        StreamingDiversity sd(&metric, problem, k, s);
        for (const Point& x : pts) sd.Update(x);
        sd.Finalize();
      } else {
        MrOptions o;
        o.k = k;
        o.k_prime = std::max(k, s / p);
        o.num_partitions = p;
        o.num_workers = p;
        MapReduceDiversity mr(&metric, problem, o);
        mr.Run(pts);
      }
      row.push_back(TablePrinter::Fmt(timer.Seconds(), 2));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  // Paper §7.4 (text): "for a fixed number of processors the time increases
  // linearly with k'". Fixed n and p, sweep k'.
  {
    size_t n = sizes.back();
    SphereDatasetOptions opts;
    opts.n = n;
    opts.k = k;
    opts.seed = 5001;
    PointSet pts = GenerateSphereDataset(opts);
    TablePrinter ktable({"k' per reducer", "time (s)"});
    for (size_t kp : {64u, 128u, 256u, 512u}) {
      MrOptions o;
      o.k = std::min(k, kp);
      o.k_prime = kp;
      o.num_partitions = 8;
      o.num_workers = 8;
      MapReduceDiversity mr(&metric, problem, o);
      Timer timer;
      mr.Run(pts);
      ktable.AddRow({std::to_string(kp), TablePrinter::Fmt(timer.Seconds(), 2)});
    }
    std::printf("fixed n = %zu, p = 8: time vs k' (expected linear):\n%s\n",
                n, ktable.ToString().c_str());
  }

  std::printf(
      "Paper (Fig. 5): for fixed n, doubling p gives ~4x speedup on a real "
      "cluster\n(per-reducer work O(n s / p^2)); on a single-core host expect "
      "~2x (total work O(n s / p)).\nFor fixed p, time grows linearly in n "
      "and in k'. The streaming point (p = 1) is faster\nthan a 1-processor "
      "MR run would be (cache-friendlier single pass).\n");
  return 0;
}
