// Figure 4: approximation ratio of the MapReduce algorithm for different
// levels of parallelism (number of reducers) and k', with k = 128, on the
// synthetic planted-sphere dataset (remote-edge).
//
// Also reproduces the adversarial-partitioning observation of Section 7.2:
// confining each reducer to a small-volume region worsens the ratio by up
// to ~10%.
//
// Paper setup: 100M points, parallelism in {2,4,8,16}, k' in {k,2k,4k,8k}.
// Default here: 1M points (--n to change). Paper reading: ratio decreases
// with k' and (mildly) with parallelism at fixed k'; all ratios are close
// to 1 (1.00-1.10).

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/metric.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"
#include "mapreduce/mr_diversity.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("n", 200000));
  size_t k = static_cast<size_t>(flags.GetInt("k", 128));
  int runs = static_cast<int>(flags.GetInt("runs", 2));

  bench::Banner("Figure 4",
                "MapReduce approximation ratio vs parallelism and k' "
                "(synthetic R^3, remote-edge, k = 128).\nRatio = best div "
                "across all configs / achieved div (per run), as in the "
                "paper.");

  EuclideanMetric metric;
  const DiversityProblem problem = DiversityProblem::kRemoteEdge;
  const std::vector<size_t> parallelisms = {2, 4, 8, 16};
  const std::vector<size_t> mults = {1, 2, 4, 8};

  // div[run][p][m] for the random partitioning; adv[run] for adversarial.
  std::vector<std::vector<std::vector<double>>> div(
      static_cast<size_t>(runs),
      std::vector<std::vector<double>>(parallelisms.size(),
                                       std::vector<double>(mults.size())));
  std::vector<double> adv(static_cast<size_t>(runs));

  for (int run = 0; run < runs; ++run) {
    SphereDatasetOptions opts;
    opts.n = n;
    opts.k = k;
    opts.seed = 3000 + static_cast<uint64_t>(run);
    PointSet pts = GenerateSphereDataset(opts);
    for (size_t pi = 0; pi < parallelisms.size(); ++pi) {
      for (size_t mi = 0; mi < mults.size(); ++mi) {
        MrOptions o;
        o.k = k;
        o.k_prime = k * mults[mi];
        o.num_partitions = parallelisms[pi];
        o.num_workers = parallelisms[pi];
        o.partition = PartitionStrategy::kRandom;
        o.seed = 17 + static_cast<uint64_t>(run);
        MapReduceDiversity mr(&metric, problem, o);
        div[run][pi][mi] = mr.Run(pts).diversity;
      }
    }
    // Adversarial partition at parallelism 16, k' = k (the tightest core-set
    // budget, where confining reducers to small-volume regions hurts most).
    MrOptions o;
    o.k = k;
    o.k_prime = k;
    o.num_partitions = 16;
    o.num_workers = 16;
    o.partition = PartitionStrategy::kAdversarial;
    MapReduceDiversity mr(&metric, problem, o);
    adv[run] = mr.Run(pts).diversity;
  }

  auto best_of_run = [&](int run) {
    double best = 0.0;
    for (size_t pi = 0; pi < parallelisms.size(); ++pi) {
      for (size_t mi = 0; mi < mults.size(); ++mi) {
        best = std::max(best, div[run][pi][mi]);
      }
    }
    return best;
  };

  TablePrinter table({"parallelism", "k'", "ratio"});
  for (size_t pi = 0; pi < parallelisms.size(); ++pi) {
    for (size_t mi = 0; mi < mults.size(); ++mi) {
      double ratio = 0.0;
      for (int run = 0; run < runs; ++run) {
        ratio += best_of_run(run) / div[run][pi][mi];
      }
      table.AddRow(
          {TablePrinter::Fmt(static_cast<long long>(parallelisms[pi])),
           std::to_string(mults[mi]) + "k",
           TablePrinter::Fmt(ratio / runs, 4)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  double adv_ratio = 0.0, rnd_ratio = 0.0;
  for (int run = 0; run < runs; ++run) {
    adv_ratio += best_of_run(run) / adv[run];
    rnd_ratio += best_of_run(run) / div[run][3][0];  // parallelism 16, k'=k
  }
  std::printf("adversarial partitioning, synthetic R^3 (parallelism 16, "
              "k' = k): ratio %.4f vs random %.4f (%+.1f%% worse)\n",
              adv_ratio / runs, rnd_ratio / runs,
              100.0 * (adv_ratio / rnd_ratio - 1.0));

  // The effect is clearer on the text corpus: distance-to-pivot shells
  // confine each reducer to a topical neighbourhood, obfuscating the global
  // view (the planted-sphere optima, by contrast, are extreme points of any
  // region containing them, so GMM keeps them under any partition).
  {
    CosineMetric cosine;
    SparseTextOptions topts;
    topts.n = 30000;
    topts.vocab_size = 5000;
    topts.num_topics = 0;
    topts.zipf_exponent = 1.3;
    topts.min_terms = 20;
    topts.max_terms = 150;
    topts.seed = 3;
    PointSet docs = GenerateSparseTextDataset(topts);
    double text_div[2];
    PartitionStrategy strategies[2] = {PartitionStrategy::kRandom,
                                       PartitionStrategy::kAdversarial};
    for (int s = 0; s < 2; ++s) {
      MrOptions o;
      o.k = 32;
      o.k_prime = 32;
      o.num_partitions = 16;
      o.num_workers = 16;
      o.partition = strategies[s];
      MapReduceDiversity mr(&cosine, problem, o);
      text_div[s] = mr.Run(docs).diversity;
    }
    std::printf("adversarial partitioning, text corpus (k = k' = 32): div "
                "%.4f vs random %.4f (%.1f%% worse)\n\n",
                text_div[1], text_div[0],
                100.0 * (text_div[0] / text_div[1] - 1.0));
  }
  std::printf("Paper (Fig. 4 + §7.2): ratio decreases as k' grows and as "
              "parallelism grows at fixed k';\nadversarial partitioning "
              "worsens ratios by up to ~10%%.\n");
  return 0;
}
