// Figure 1: approximation ratio of the streaming algorithm for different
// values of k and k' on the musiXmatch dataset (here: the synthetic sparse
// word-count substitute, cosine distance, remote-edge).
//
// Paper setup: k in {8, 32, 128}, k' in {k, 2k, 4k, 8k}, 234k docs x 5000
// dims. Paper reading: ratios start around 1.5-2.4 at k' = k and drop toward
// ~1.1-1.3 at k' = 8k; larger k is harder.
//
// Flags: --n (docs, default 20000), --vocab (default 5000), --runs
// (averaging repetitions, default 3).

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/metric.h"
#include "data/sparse_text.h"
#include "streaming/streaming_diversity.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("n", 20000));
  uint32_t vocab = static_cast<uint32_t>(flags.GetInt("vocab", 5000));
  int runs = static_cast<int>(flags.GetInt("runs", 3));

  bench::Banner("Figure 1",
                "Streaming approximation ratio vs k and k' "
                "(text corpus, cosine distance, remote-edge).\n"
                "Ratio = best-known div / achieved div; best-known is the max "
                "over all configurations\nper (k, run), as in the paper.");

  CosineMetric metric;
  const DiversityProblem problem = DiversityProblem::kRemoteEdge;
  const std::vector<size_t> ks = {8, 32, 128};
  const std::vector<size_t> mults = {1, 2, 4, 8};

  TablePrinter table({"k", "k'", "div", "ratio"});
  for (size_t k : ks) {
    // diversity[mult][run]
    std::vector<std::vector<double>> div(mults.size(),
                                         std::vector<double>(runs, 0.0));
    for (int run = 0; run < runs; ++run) {
      // Corpus tuned the way the paper tuned musiXmatch: no easy orthogonal
      // outliers (they filtered short rare-word songs for exactly this
      // reason). A steep Zipf head shared by all documents compresses the
      // angle distribution into a continuum whose extreme k-subsets are
      // subtle, so core-set granularity (k') actually matters.
      SparseTextOptions opts;
      opts.n = n;
      opts.vocab_size = vocab;
      opts.num_topics = 0;
      opts.zipf_exponent = 1.3;
      opts.min_terms = 20;
      opts.max_terms = 150;
      opts.seed = 1000 + static_cast<uint64_t>(run);
      PointSet docs = GenerateSparseTextDataset(opts);
      for (size_t mi = 0; mi < mults.size(); ++mi) {
        StreamingDiversity sd(&metric, problem, k, k * mults[mi]);
        for (const Point& d : docs) sd.Update(d);
        div[mi][run] = sd.Finalize().diversity;
      }
    }
    for (size_t mi = 0; mi < mults.size(); ++mi) {
      double ratio_sum = 0.0, div_sum = 0.0;
      for (int run = 0; run < runs; ++run) {
        double best = 0.0;
        for (size_t mj = 0; mj < mults.size(); ++mj) {
          best = std::max(best, div[mj][run]);
        }
        ratio_sum += best / div[mi][run];
        div_sum += div[mi][run];
      }
      table.AddRow({TablePrinter::Fmt(static_cast<long long>(k)),
                    std::to_string(mults[mi]) + "k",
                    TablePrinter::Fmt(div_sum / runs, 4),
                    TablePrinter::Fmt(ratio_sum / runs, 3)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper (Fig. 1): ratios decrease in k' (from ~1.4-2.4 at k'=k "
              "toward ~1.05-1.3 at k'=8k)\nand increase in k.\n");
  return 0;
}
