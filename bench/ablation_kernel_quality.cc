// Ablation: GMM (2-approximate k-center, MapReduce side) vs SMM
// (8-approximate doubling algorithm, streaming side) as the core-set kernel,
// at equal core-set sizes.
//
// Section 7.2 of the paper attributes the MR algorithm's better ratios to
// exactly this difference: "in MapReduce we use a 2-approximation k'-center
// algorithm to build the core-sets, while in Streaming only a weaker
// 8-approximation k'-center algorithm is available". This bench isolates
// the effect: same data, same k', one pass each, remote-edge value of the
// solution extracted from each core-set.

#include <vector>

#include "bench_common.h"
#include "core/coreset.h"
#include "core/metric.h"
#include "core/sequential.h"
#include "data/synthetic.h"
#include "streaming/smm.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("n", 100000));
  size_t k = static_cast<size_t>(flags.GetInt("k", 32));
  int runs = static_cast<int>(flags.GetInt("runs", 5));

  bench::Banner("Ablation: core-set kernel quality",
                "GMM (MapReduce kernel) vs SMM (streaming kernel) at equal "
                "core-set size k',\nremote-edge value of the extracted "
                "solution (higher is better).");

  EuclideanMetric metric;
  const DiversityProblem problem = DiversityProblem::kRemoteEdge;
  const std::vector<size_t> mults = {1, 2, 4, 8};

  TablePrinter table({"k'", "GMM coreset div", "SMM coreset div",
                      "GMM advantage"});
  for (size_t mult : mults) {
    size_t k_prime = k * mult;
    double gmm_sum = 0.0, smm_sum = 0.0;
    for (int run = 0; run < runs; ++run) {
      SphereDatasetOptions opts;
      opts.n = n;
      opts.k = k;
      opts.seed = 8000 + static_cast<uint64_t>(run);
      PointSet pts = GenerateSphereDataset(opts);

      PointSet gmm_coreset = GmmCoreset(pts, metric, k_prime).points;
      std::vector<size_t> gi =
          SolveSequential(problem, gmm_coreset, metric, k);
      gmm_sum += bench::SolutionDiversity(problem, gmm_coreset, gi, metric);

      Smm smm(&metric, k, k_prime);
      for (const Point& p : pts) smm.Update(p);
      PointSet smm_coreset = smm.Finalize();
      std::vector<size_t> si =
          SolveSequential(problem, smm_coreset, metric,
                          std::min(k, smm_coreset.size()));
      smm_sum += bench::SolutionDiversity(problem, smm_coreset, si, metric);
    }
    table.AddRow({std::to_string(mult) + "k",
                  TablePrinter::Fmt(gmm_sum / runs, 4),
                  TablePrinter::Fmt(smm_sum / runs, 4),
                  TablePrinter::Fmt(gmm_sum / smm_sum, 3) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected: GMM >= SMM at every k', with the gap closing as k' "
              "grows (both converge to\nthe optimum); explains Fig. 4's "
              "better ratios vs Fig. 2 at equal k'.\n");
  return 0;
}
