// Distributed-runtime benchmark: the 2-round CPPU driver on the socket
// transport at 1/2/4/8 worker processes vs the in-process loopback
// baseline, on a synthetic R^3 sphere dataset (n >= 1M by default), plus a
// repeated-solve pair (socket-cold / socket-warm on one engine) that
// isolates the worker-side partition cache: the warm run ships by-ref
// stubs instead of partition bytes, and the bench reports the resulting
// ship-time speedup.
//
// The partitioning is FIXED across transport configurations (the pool size
// only changes how many RPCs are in flight), so every configuration must
// return the bit-identical solution — the bench verifies that on every row
// and refuses to report a run that diverged. Wall time therefore isolates
// pure transport cost; the per-row ship/reply split separates data
// movement from compute-plus-queueing.
//
// Output: a human-readable table plus BENCH_distributed.json (override the
// path with the BENCH_DISTRIBUTED_JSON environment variable), one record
// per configuration with meta describing the instance — CI checks the file
// for the expected worker counts, the ship-vs-compute fields and the
// warm-cache row.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/socket_engine.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "mapreduce/mr_diversity.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct Row {
  std::string transport;
  size_t workers = 0;
  double seconds = 0.0;
  size_t shuffle_points = 0;
  size_t coreset_size = 0;
  double diversity = 0.0;
  bool identical = true;
  // Transport split (zero on the loopback row, which has no transport).
  double ship_seconds = 0.0;
  double reply_seconds = 0.0;
  size_t request_bytes = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  // Only meaningful on the socket-warm row: cold ship_seconds / warm
  // ship_seconds of the repeated-solve pair.
  double ship_speedup_vs_cold = 0.0;
};

double HitRate(size_t hits, size_t misses) {
  const size_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 1000000));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 8));
  const size_t k_prime = static_cast<size_t>(flags.GetInt("k_prime", 16));
  const size_t partitions =
      static_cast<size_t>(flags.GetInt("partitions", 8));
  const size_t chunk_kb = static_cast<size_t>(flags.GetInt("chunk-kb", 256));
  const size_t cache_mb =
      static_cast<size_t>(flags.GetInt("worker-cache-mb", 1024));

  bench::Banner(
      "Distributed runtime",
      "2-round CPPU on the socket transport (worker processes) vs the\n"
      "in-process loopback engine. Fixed partitioning: every row must be\n"
      "bit-identical; wall-time deltas are pure transport cost. The\n"
      "cold/warm pair reruns one engine to measure the partition cache.");

  EuclideanMetric metric;
  const DiversityProblem problem = DiversityProblem::kRemoteEdge;
  SphereDatasetOptions dopts;
  dopts.n = n;
  dopts.k = k;
  dopts.seed = 6001;
  PointSet pts = GenerateSphereDataset(dopts);

  MrOptions mr;
  mr.k = k;
  mr.k_prime = k_prime;
  mr.num_partitions = partitions;
  mr.num_workers = partitions;
  mr.seed = 11;

  std::vector<Row> rows;

  MapReduceDiversity loopback_driver(&metric, problem, mr);
  Timer timer;
  StatusOr<MrResult> base = loopback_driver.TryRun(pts);
  double base_seconds = timer.Seconds();
  if (!base.ok()) {
    std::fprintf(stderr, "loopback run failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  {
    Row r;
    r.transport = "loopback";
    r.seconds = base_seconds;
    r.shuffle_points = base->shuffle_points;
    r.coreset_size = base->coreset_size;
    r.diversity = base->diversity;
    rows.push_back(r);
  }

  auto check_identical = [&base](const MrResult& run) {
    bool identical = run.solution.size() == base->solution.size() &&
                     run.diversity == base->diversity;
    for (size_t i = 0; identical && i < run.solution.size(); ++i) {
      identical = run.solution[i] == base->solution[i];
    }
    return identical;
  };

  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    SocketEngineOptions so;
    so.num_workers = workers;
    so.metric = "euclidean";
    so.problem = problem;
    so.chunk_bytes = chunk_kb * 1024;
    so.worker_cache_bytes = cache_mb << 20;
    SocketEngine engine(so);
    Status healthy = engine.Healthy();
    if (!healthy.ok()) {
      std::fprintf(stderr, "socket pool (%zu workers) failed: %s\n", workers,
                   healthy.ToString().c_str());
      return 1;
    }
    MrOptions smr = mr;
    smr.engine = &engine;
    MapReduceDiversity driver(&metric, problem, smr);
    Timer t;
    StatusOr<MrResult> run = driver.TryRun(pts);
    double seconds = t.Seconds();
    if (!run.ok()) {
      std::fprintf(stderr, "socket run (%zu workers) failed: %s\n", workers,
                   run.status().ToString().c_str());
      return 1;
    }
    if (!check_identical(*run)) {
      std::fprintf(stderr,
                   "socket run (%zu workers) diverged from loopback — "
                   "refusing to report\n",
                   workers);
      return 1;
    }
    const SocketEngineStats stats = engine.stats();
    Row r;
    r.transport = "socket";
    r.workers = workers;
    r.seconds = seconds;
    r.shuffle_points = run->shuffle_points;
    r.coreset_size = run->coreset_size;
    r.diversity = run->diversity;
    r.ship_seconds = stats.ship_seconds;
    r.reply_seconds = stats.reply_seconds;
    r.request_bytes = stats.request_bytes_sent;
    r.cache_hits = stats.cache_hits;
    r.cache_misses = stats.cache_misses;
    r.cache_hit_rate = HitRate(stats.cache_hits, stats.cache_misses);
    rows.push_back(r);
  }

  // Repeated-solve pair: the same engine serves the driver twice. One
  // worker makes the warm routing deterministic (every partition is asked
  // of the worker that cached it), so the warm run's partition ships are
  // all by-ref stubs and the ship-time delta measures the cache, not
  // scheduling luck.
  {
    SocketEngineOptions so;
    so.num_workers = 1;
    so.metric = "euclidean";
    so.problem = problem;
    so.chunk_bytes = chunk_kb * 1024;
    so.worker_cache_bytes = cache_mb << 20;
    SocketEngine engine(so);
    Status healthy = engine.Healthy();
    if (!healthy.ok()) {
      std::fprintf(stderr, "repeated-solve pool failed: %s\n",
                   healthy.ToString().c_str());
      return 1;
    }
    MrOptions smr = mr;
    smr.engine = &engine;
    MapReduceDiversity driver(&metric, problem, smr);

    auto run_once = [&](const char* label, Row* r) {
      Timer t;
      StatusOr<MrResult> run = driver.TryRun(pts);
      r->seconds = t.Seconds();
      if (!run.ok()) {
        std::fprintf(stderr, "%s run failed: %s\n", label,
                     run.status().ToString().c_str());
        return false;
      }
      if (!check_identical(*run)) {
        std::fprintf(stderr, "%s run diverged from loopback — refusing to "
                             "report\n",
                     label);
        return false;
      }
      r->transport = label;
      r->workers = 1;
      r->shuffle_points = run->shuffle_points;
      r->coreset_size = run->coreset_size;
      r->diversity = run->diversity;
      return true;
    };

    Row cold, warm;
    if (!run_once("socket-cold", &cold)) return 1;
    const SocketEngineStats after_cold = engine.stats();
    cold.ship_seconds = after_cold.ship_seconds;
    cold.reply_seconds = after_cold.reply_seconds;
    cold.request_bytes = after_cold.request_bytes_sent;
    cold.cache_hits = after_cold.cache_hits;
    cold.cache_misses = after_cold.cache_misses;
    cold.cache_hit_rate = HitRate(cold.cache_hits, cold.cache_misses);

    if (!run_once("socket-warm", &warm)) return 1;
    const SocketEngineStats after_warm = engine.stats();
    warm.ship_seconds = after_warm.ship_seconds - after_cold.ship_seconds;
    warm.reply_seconds = after_warm.reply_seconds - after_cold.reply_seconds;
    warm.request_bytes =
        after_warm.request_bytes_sent - after_cold.request_bytes_sent;
    warm.cache_hits = after_warm.cache_hits - after_cold.cache_hits;
    warm.cache_misses = after_warm.cache_misses - after_cold.cache_misses;
    warm.cache_hit_rate = HitRate(warm.cache_hits, warm.cache_misses);
    warm.ship_speedup_vs_cold =
        warm.ship_seconds > 0.0 ? cold.ship_seconds / warm.ship_seconds : 0.0;
    rows.push_back(cold);
    rows.push_back(warm);

    std::printf(
        "\nwarm-cache repeated solve: ship %.4fs -> %.4fs (%.1fx), "
        "%zu -> %zu request bytes, %zu cache hits\n",
        cold.ship_seconds, warm.ship_seconds, warm.ship_speedup_vs_cold,
        cold.request_bytes, warm.request_bytes, warm.cache_hits);
  }

  TablePrinter table({"transport", "workers", "time (s)", "ship (s)",
                      "reply (s)", "hit rate", "shuffle pts", "|T|", "div"});
  for (const Row& r : rows) {
    table.AddRow({r.transport,
                  r.workers == 0 ? "-" : std::to_string(r.workers),
                  TablePrinter::Fmt(r.seconds, 4),
                  TablePrinter::Fmt(r.ship_seconds, 4),
                  TablePrinter::Fmt(r.reply_seconds, 4),
                  TablePrinter::Fmt(r.cache_hit_rate, 2),
                  std::to_string(r.shuffle_points),
                  std::to_string(r.coreset_size),
                  TablePrinter::Fmt(r.diversity, 6)});
  }
  std::printf("%s", table.ToString().c_str());

  const char* env = std::getenv("BENCH_DISTRIBUTED_JSON");
  const std::string path = env != nullptr ? env : "BENCH_distributed.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"meta\": {\"bench\": \"distributed\", \"n\": %zu, "
               "\"k\": %zu, \"k_prime\": %zu, \"partitions\": %zu, "
               "\"chunk_kb\": %zu, \"worker_cache_mb\": %zu, "
               "\"metric\": \"euclidean\", \"problem\": \"remote-edge\"},\n"
               "  \"runs\": [\n",
               n, k, k_prime, partitions, chunk_kb, cache_mb);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"transport\": \"%s\", \"workers\": %zu, "
                 "\"seconds\": %.6f, \"ship_seconds\": %.6f, "
                 "\"reply_seconds\": %.6f, \"request_bytes\": %zu, "
                 "\"cache_hits\": %zu, \"cache_misses\": %zu, "
                 "\"cache_hit_rate\": %.4f, \"ship_speedup_vs_cold\": %.2f, "
                 "\"shuffle_points\": %zu, "
                 "\"coreset_size\": %zu, \"diversity\": %.17g, "
                 "\"identical_to_loopback\": %s}%s\n",
                 r.transport.c_str(), r.workers, r.seconds, r.ship_seconds,
                 r.reply_seconds, r.request_bytes, r.cache_hits,
                 r.cache_misses, r.cache_hit_rate, r.ship_speedup_vs_cold,
                 r.shuffle_points, r.coreset_size, r.diversity,
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
