// Distributed-runtime benchmark: the 2-round CPPU driver on the socket
// transport at 1/2/4/8 worker processes vs the in-process loopback
// baseline, on a synthetic R^3 sphere dataset (n >= 1M by default).
//
// The partitioning is FIXED across transport configurations (the pool size
// only changes how many RPCs are in flight), so every configuration must
// return the bit-identical solution — the bench verifies that on every row
// and refuses to report a run that diverged. Wall time therefore isolates
// pure transport cost: serialization, frame checksums, socket hops, and
// scheduling across the worker pool.
//
// Output: a human-readable table plus BENCH_distributed.json (override the
// path with the BENCH_DISTRIBUTED_JSON environment variable), one record
// per configuration with meta describing the instance — CI checks the file
// for the expected worker counts.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/socket_engine.h"
#include "core/metric.h"
#include "data/synthetic.h"
#include "mapreduce/mr_diversity.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace diverse;
  bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 1000000));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 8));
  const size_t k_prime = static_cast<size_t>(flags.GetInt("k_prime", 16));
  const size_t partitions =
      static_cast<size_t>(flags.GetInt("partitions", 8));

  bench::Banner(
      "Distributed runtime",
      "2-round CPPU on the socket transport (worker processes) vs the\n"
      "in-process loopback engine. Fixed partitioning: every row must be\n"
      "bit-identical; wall-time deltas are pure transport cost.");

  EuclideanMetric metric;
  const DiversityProblem problem = DiversityProblem::kRemoteEdge;
  SphereDatasetOptions dopts;
  dopts.n = n;
  dopts.k = k;
  dopts.seed = 6001;
  PointSet pts = GenerateSphereDataset(dopts);

  MrOptions mr;
  mr.k = k;
  mr.k_prime = k_prime;
  mr.num_partitions = partitions;
  mr.num_workers = partitions;
  mr.seed = 11;

  struct Row {
    std::string transport;
    size_t workers = 0;
    double seconds = 0.0;
    size_t shuffle_points = 0;
    size_t coreset_size = 0;
    double diversity = 0.0;
    bool identical = true;
  };
  std::vector<Row> rows;

  MapReduceDiversity loopback_driver(&metric, problem, mr);
  Timer timer;
  StatusOr<MrResult> base = loopback_driver.TryRun(pts);
  double base_seconds = timer.Seconds();
  if (!base.ok()) {
    std::fprintf(stderr, "loopback run failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  rows.push_back({"loopback", 0, base_seconds, base->shuffle_points,
                  base->coreset_size, base->diversity, true});

  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    SocketEngineOptions so;
    so.num_workers = workers;
    so.metric = "euclidean";
    so.problem = problem;
    SocketEngine engine(so);
    Status healthy = engine.Healthy();
    if (!healthy.ok()) {
      std::fprintf(stderr, "socket pool (%zu workers) failed: %s\n", workers,
                   healthy.ToString().c_str());
      return 1;
    }
    MrOptions smr = mr;
    smr.engine = &engine;
    MapReduceDiversity driver(&metric, problem, smr);
    Timer t;
    StatusOr<MrResult> run = driver.TryRun(pts);
    double seconds = t.Seconds();
    if (!run.ok()) {
      std::fprintf(stderr, "socket run (%zu workers) failed: %s\n", workers,
                   run.status().ToString().c_str());
      return 1;
    }
    bool identical = run->solution.size() == base->solution.size() &&
                     run->diversity == base->diversity;
    for (size_t i = 0; identical && i < run->solution.size(); ++i) {
      identical = run->solution[i] == base->solution[i];
    }
    if (!identical) {
      std::fprintf(stderr,
                   "socket run (%zu workers) diverged from loopback — "
                   "refusing to report\n",
                   workers);
      return 1;
    }
    rows.push_back({"socket", workers, seconds, run->shuffle_points,
                    run->coreset_size, run->diversity, identical});
  }

  TablePrinter table(
      {"transport", "workers", "time (s)", "shuffle pts", "|T|", "div"});
  for (const Row& r : rows) {
    table.AddRow({r.transport,
                  r.workers == 0 ? "-" : std::to_string(r.workers),
                  TablePrinter::Fmt(r.seconds, 4),
                  std::to_string(r.shuffle_points),
                  std::to_string(r.coreset_size),
                  TablePrinter::Fmt(r.diversity, 6)});
  }
  std::printf("%s", table.ToString().c_str());

  const char* env = std::getenv("BENCH_DISTRIBUTED_JSON");
  const std::string path = env != nullptr ? env : "BENCH_distributed.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"meta\": {\"bench\": \"distributed\", \"n\": %zu, "
               "\"k\": %zu, \"k_prime\": %zu, \"partitions\": %zu, "
               "\"metric\": \"euclidean\", \"problem\": \"remote-edge\"},\n"
               "  \"runs\": [\n",
               n, k, k_prime, partitions);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"transport\": \"%s\", \"workers\": %zu, "
                 "\"seconds\": %.6f, \"shuffle_points\": %zu, "
                 "\"coreset_size\": %zu, \"diversity\": %.17g, "
                 "\"identical_to_loopback\": %s}%s\n",
                 r.transport.c_str(), r.workers, r.seconds, r.shuffle_points,
                 r.coreset_size, r.diversity, r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
