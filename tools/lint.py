#!/usr/bin/env python3
"""Project linter: repo-specific invariants clang-tidy cannot express.

Run from the repository root (CI `analyze` job, or locally):

    python3 tools/lint.py            # lint src/ (library code)
    python3 tools/lint.py --list     # describe the rules

Rules (library code under src/ only; tests and benches are exempt unless
noted). Suppress a finding by appending a justification on the same line:

    srand(seed);  // lint: allow(no-unseeded-rand) reproducing legacy trace

rules:
  no-unseeded-rand    std::rand/srand/time(nullptr) are banned in library
                      code: every random draw must flow through util/rng.h
                      (seeded, splittable, deterministic) and every clock
                      read through util/timer.h, or results stop being
                      reproducible.
  no-naked-new        No naked `new`/`delete` in library code: ownership is
                      std::unique_ptr/std::make_unique or containers.
                      (Placement new into preallocated storage is allowed.)
  tile-test-coverage  Every class overriding Metric::DistanceTile* must be
                      exercised by tests/tile_kernel_test.cc — a tile
                      override that skips the tile<->scalar equivalence
                      matrix is an unverified kernel.
  statusor-value-guard  `.value()` on a StatusOr/optional requires a
                      visible guard (`ok()` / `has_value()` check or the
                      DIVERSE_ASSIGN_OR_RETURN macro) within the preceding
                      8 lines; an unguarded .value() is a latent
                      CHECK-abort with no diagnosis.
  tsa-escape-justified  DIVERSE_NO_THREAD_SAFETY_ANALYSIS requires a
                      same-line justification comment: the analysis
                      escape hatch must say why the analysis is wrong.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z0-9-]+)\)")

findings = []


def finding(rule, path, line_no, message):
    findings.append(f"{path.relative_to(REPO)}:{line_no}: [{rule}] {message}")


def code_lines(path):
    """Yields (line_no, code, full_line) with string/char literals blanked
    and // and /* */ comments stripped, so patterns never match prose."""
    in_block_comment = False
    text = path.read_text(encoding="utf-8", errors="replace")
    for line_no, full in enumerate(text.splitlines(), start=1):
        line = full
        # Blank string and char literals (naive but sufficient: the repo
        # bans multi-line raw strings in library code).
        line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
        line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        cut = line.find("//")
        if cut >= 0:
            line = line[:cut]
        yield line_no, line, full


def allowed(full_line, rule):
    m = ALLOW_RE.search(full_line)
    return m is not None and m.group(1) == rule


def lint_file(path):
    lines = list(code_lines(path))
    full_by_no = {n: f for n, _, f in lines}

    rand_re = re.compile(
        r"(?:\bstd::rand\b|(?<![\w:])rand\s*\(\s*\)|(?<![\w:])srand\s*\(|"
        r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\))")
    new_re = re.compile(r"(?<![\w:])new\b(?!\s*\()")  # `new (addr)` allowed
    delete_re = re.compile(r"(?<![\w:])delete(?:\[\])?\s")
    value_re = re.compile(r"\.\s*value\s*\(\s*\)")
    guard_re = re.compile(r"\.ok\s*\(\s*\)|has_value\s*\(\s*\)|"
                          r"DIVERSE_ASSIGN_OR_RETURN|DIVERSE_CHECK")
    tsa_escape_re = re.compile(r"DIVERSE_NO_THREAD_SAFETY_ANALYSIS")

    for i, (line_no, code, full) in enumerate(lines):
        if rand_re.search(code) and not allowed(full, "no-unseeded-rand"):
            finding("no-unseeded-rand", path, line_no,
                    "std::rand/srand/time(nullptr) in library code; use "
                    "util/rng.h / util/timer.h")
        if (new_re.search(code) or delete_re.search(code)) \
                and not allowed(full, "no-naked-new"):
            finding("no-naked-new", path, line_no,
                    "naked new/delete in library code; use make_unique or "
                    "containers")
        if value_re.search(code) and not allowed(full, "statusor-value-guard"):
            window = [lines[j][1] for j in range(max(0, i - 8), i + 1)]
            if not any(guard_re.search(w) for w in window):
                finding("statusor-value-guard", path, line_no,
                        ".value() without a visible ok()/has_value() guard "
                        "or DIVERSE_ASSIGN_OR_RETURN in the preceding 8 "
                        "lines")
        if tsa_escape_re.search(code):
            comment = full[full.find("//"):] if "//" in full else ""
            # The macro definition itself (thread_annotations.h) is exempt.
            if "#define" in code:
                continue
            if len(comment.replace("/", "").strip()) < 8:
                finding("tsa-escape-justified", path, line_no,
                        "DIVERSE_NO_THREAD_SAFETY_ANALYSIS without a "
                        "same-line justification comment")


def lint_tile_coverage():
    """Every Metric subclass overriding a DistanceTile* kernel must appear
    in the tile equivalence test matrix."""
    tile_test = (REPO / "tests" / "tile_kernel_test.cc").read_text(
        encoding="utf-8", errors="replace")
    override_re = re.compile(r"\bDistanceTile\w*\s*\(")
    class_re = re.compile(r"^\s*class\s+(\w+)[^;]*$")
    for path in sorted(SRC.rglob("*.h")):
        current_class = None
        brace_depth = 0
        class_depth = None
        for _, code, _full in code_lines(path):
            m = class_re.match(code)
            if m and "{" in code:
                current_class = m.group(1)
                class_depth = brace_depth
            elif m:
                current_class = m.group(1)
                class_depth = brace_depth  # brace arrives on a later line
            brace_depth += code.count("{") - code.count("}")
            if current_class and brace_depth <= (class_depth or 0) \
                    and "}" in code and ";" in code:
                current_class = None
            if current_class and override_re.search(code) \
                    and "override" in code:
                if current_class not in tile_test:
                    finding("tile-test-coverage", path, 0,
                            f"{current_class} overrides a DistanceTile* "
                            "kernel but never appears in "
                            "tests/tile_kernel_test.cc")
                    current_class = None  # one finding per class


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--list", action="store_true",
                        help="describe the rules and exit")
    args = parser.parse_args()
    if args.list:
        print(__doc__)
        return 0

    for path in sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cc")):
        lint_file(path)
    lint_tile_coverage()

    if findings:
        print(f"tools/lint.py: {len(findings)} finding(s)", file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("tools/lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
