#include "core/generalized_coreset.h"

#include <algorithm>
#include <utility>

#include "core/dataset.h"
#include "core/gmm.h"
#include "core/screen.h"
#include "core/vector_kernels.h"
#include "util/check.h"

namespace diverse {

void GeneralizedCoreset::Add(Point point, size_t multiplicity) {
  DIVERSE_CHECK_GE(multiplicity, 1u);
  entries_.push_back(WeightedPoint{std::move(point), multiplicity});
}

size_t GeneralizedCoreset::ExpandedSize() const {
  size_t m = 0;
  for (const WeightedPoint& e : entries_) m += e.multiplicity;
  return m;
}

GeneralizedCoreset::Expansion GeneralizedCoreset::Expand() const {
  return ExpandCapped(SIZE_MAX);
}

GeneralizedCoreset::Expansion GeneralizedCoreset::ExpandCapped(
    size_t cap) const {
  Expansion out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t reps = std::min(entries_[i].multiplicity, cap);
    for (size_t r = 0; r < reps; ++r) {
      out.points.push_back(entries_[i].point);
      out.kernel_id.push_back(i);
    }
  }
  return out;
}

bool GeneralizedCoreset::IsCoherentSubsetOf(
    const GeneralizedCoreset& other) const {
  for (const WeightedPoint& e : entries_) {
    bool found = false;
    for (const WeightedPoint& o : other.entries_) {
      if (o.point == e.point && o.multiplicity >= e.multiplicity) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

GeneralizedCoreset GeneralizedCoreset::Merge(
    std::span<const GeneralizedCoreset> parts) {
  GeneralizedCoreset out;
  for (const GeneralizedCoreset& part : parts) {
    for (const WeightedPoint& e : part.entries()) {
      out.Add(e.point, e.multiplicity);
    }
  }
  return out;
}

DistanceMatrix ExpansionDistanceMatrix(
    const GeneralizedCoreset::Expansion& expansion, const Metric& metric) {
  size_t n = expansion.points.size();
  DistanceMatrix d(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (expansion.kernel_id[i] == expansion.kernel_id[j]) continue;  // 0
      d.set(i, j, metric.Distance(expansion.points[i], expansion.points[j]));
    }
  }
  return d;
}

double EvaluateGeneralizedDiversity(DiversityProblem problem,
                                    const GeneralizedCoreset& coreset,
                                    const Metric& metric) {
  auto expansion = coreset.Expand();
  return EvaluateDiversity(problem, ExpansionDistanceMatrix(expansion, metric));
}

GeneralizedCoreset GmmGenCoreset(const Dataset& data, const Metric& metric,
                                 size_t k, size_t k_prime,
                                 double* range_out) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_GE(k_prime, 1u);
  DIVERSE_CHECK_LE(k_prime, n);
  GmmResult gmm = Gmm(data, metric, k_prime);
  if (range_out != nullptr) *range_out = gmm.range;

  // m_{c_i} = |E_i| of GMM-EXT = min(|C_i|, k): the center plus up to k-1
  // delegates, but never more than the cluster can supply.
  std::vector<size_t> cluster_size(k_prime, 0);
  for (size_t i = 0; i < n; ++i) cluster_size[gmm.assignment[i]]++;

  GeneralizedCoreset out;
  for (size_t j = 0; j < k_prime; ++j) {
    // Duplicate inputs can leave a later-selected center with an empty
    // cluster: once every point is at distance 0 from the selection, GMM
    // picks centers that tie to an earlier one, and their points assign to
    // the earliest copy. Such a center supplies no delegates (|C_i| = 0) —
    // omit it instead of tripping the multiplicity >= 1 invariant. The
    // remaining multiplicities still sum to >= min(n, k) because every
    // point belongs to exactly one cluster.
    if (cluster_size[j] == 0) continue;
    out.Add(data.point(gmm.selected[j]), std::min(cluster_size[j], k));
  }
  return out;
}

GeneralizedCoreset GmmGenCoreset(std::span<const Point> points,
                                 const Metric& metric, size_t k,
                                 size_t k_prime, double* range_out) {
  return GmmGenCoreset(Dataset::FromPoints(points), metric, k, k_prime,
                       range_out);
}

std::optional<PointSet> Instantiate(const GeneralizedCoreset& coreset,
                                    std::span<const Point> points,
                                    const Metric& metric, double delta) {
  const auto& entries = coreset.entries();
  std::vector<size_t> needed(entries.size());
  for (size_t e = 0; e < entries.size(); ++e) {
    needed[e] = entries[e].multiplicity;
  }

  PointSet chosen;
  std::vector<bool> used(points.size(), false);

  // First serve each entry its own kernel point if it occurs in `points`
  // (distance 0, always a legal delegate); then give each entry its m_p
  // *nearest* unused points within delta. Nearest-first keeps the realized
  // proxy distances (and hence the Lemma 7 loss f(k) * 2 * delta) as small
  // as possible in practice while preserving the worst-case guarantee.
  // Since every delegate of the construction lies within delta of its own
  // kernel point, the sweep can only run out of candidates if `points` is
  // not the originating set.
  for (size_t e = 0; e < entries.size(); ++e) {
    if (needed[e] == 0) continue;
    for (size_t i = 0; i < points.size(); ++i) {
      if (!used[i] && points[i] == entries[e].point) {
        used[i] = true;
        chosen.push_back(points[i]);
        --needed[e];
        break;
      }
    }
  }
  // Delegate search: one blocked multi-center tile sweep over the columnar
  // rows instead of one full scan per entry. Entries still in need are
  // processed in lane-sized chunks; each chunk makes a single pass over the
  // points, collecting its in-radius candidates from Q x R distance tiles,
  // and then serves the chunk's entries in order. Distances are independent
  // of the used[] bookkeeping, and candidates are filtered against used[] at
  // consumption time, so the chosen delegates are identical to the
  // scan-per-entry loop this replaces. When screening is active, the tiles
  // are fp32 and only rows whose certified lower bound reaches delta are
  // re-evaluated exactly (candidates need exact distances — the nearest-
  // first serving order sorts on them) — most of a delta-ball query's
  // complement is skipped after the float pass.
  std::vector<size_t> pending;
  for (size_t e = 0; e < entries.size(); ++e) {
    if (needed[e] > 0) pending.push_back(e);
  }
  if (!pending.empty()) {
    Dataset data = Dataset::FromPoints(points);
    const bool screened = UseScreening(metric);
    constexpr size_t kChunk = kernels::kTileLanes;
    constexpr size_t kRowBlock = 256;
    std::vector<double> tile(kChunk * kRowBlock);
    std::vector<float> ftile(screened ? kChunk * kRowBlock : 0);
    std::vector<uint32_t> band;   // screened in-band rows, batched rescue
    std::vector<double> band_d;
    std::vector<std::vector<std::pair<double, size_t>>> candidates(kChunk);
    for (size_t c0 = 0; c0 < pending.size(); c0 += kChunk) {
      size_t cn = std::min(kChunk, pending.size() - c0);
      Dataset queries;
      for (size_t q = 0; q < cn; ++q) {
        queries.Append(entries[pending[c0 + q]].point);
        candidates[q].clear();
      }
      bool chunk_screened =
          screened && metric.ScreeningProfitableFor(queries, data);
      ScreenBound bound;
      if (chunk_screened) bound = metric.ScreenErrorBound(queries, data);
      for (size_t rb = 0; rb < data.size(); rb += kRowBlock) {
        size_t rn = std::min(kRowBlock, data.size() - rb);
        if (chunk_screened) {
          metric.DistanceTileF32(queries, 0, cn, data, rb, rn, ftile.data(),
                                 rn);
          // Gather each query's in-band rows and resolve them with one
          // batched exact call (the same rescue shape as the screened
          // relax sweeps — for a delta-ball most survivors are genuine
          // candidates, so the batch is the common case, not the tail).
          for (size_t q = 0; q < cn; ++q) {
            band.clear();
            for (size_t r = 0; r < rn; ++r) {
              if (ScreenedLower(ftile[q * rn + r], bound) > delta) continue;
              band.push_back(static_cast<uint32_t>(rb + r));
            }
            if (band.empty()) continue;
            band_d.resize(band.size());
            metric.DistanceRowsMany(queries, q, data, band, band_d.data());
            for (size_t t = 0; t < band.size(); ++t) {
              if (band_d[t] <= delta) {
                candidates[q].emplace_back(band_d[t], band[t]);
              }
            }
          }
          continue;
        }
        metric.DistanceTile(queries, 0, cn, data, rb, rn, tile.data(), rn);
        for (size_t q = 0; q < cn; ++q) {
          for (size_t r = 0; r < rn; ++r) {
            double dist = tile[q * rn + r];
            if (dist <= delta) candidates[q].emplace_back(dist, rb + r);
          }
        }
      }
      for (size_t q = 0; q < cn; ++q) {
        size_t e = pending[c0 + q];
        std::sort(candidates[q].begin(), candidates[q].end());
        for (const auto& [dist, i] : candidates[q]) {
          if (needed[e] == 0) break;
          if (used[i]) continue;
          used[i] = true;
          chosen.push_back(points[i]);
          --needed[e];
        }
      }
    }
  }
  for (size_t e = 0; e < entries.size(); ++e) {
    if (needed[e] > 0) return std::nullopt;
  }
  return chosen;
}

}  // namespace diverse
