// Dense symmetric distance matrix over a small point set.
//
// Diversity objectives are functions of the pairwise distances of a k-subset
// (k is small: tens to a few hundred). Evaluators, the exact solvers, and
// the sequential approximation algorithms all work on a `DistanceMatrix`
// rather than on raw points, so they can be unit-tested against hand-built
// metrics and reused for generalized (multiplicity-weighted) core-sets.

#ifndef DIVERSE_CORE_DISTANCE_MATRIX_H_
#define DIVERSE_CORE_DISTANCE_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// A symmetric n-by-n matrix of nonnegative distances with zero diagonal.
class DistanceMatrix {
 public:
  /// Creates an n-by-n zero matrix.
  explicit DistanceMatrix(size_t n);

  /// Builds the full pairwise matrix of `points` under `metric`
  /// (n(n-1)/2 distance evaluations).
  DistanceMatrix(std::span<const Point> points, const Metric& metric);

  /// Number of points.
  size_t size() const { return n_; }

  /// Distance between points i and j.
  double at(size_t i, size_t j) const { return d_[i * n_ + j]; }

  /// Sets d(i,j) and d(j,i). Used by tests to construct explicit metrics.
  void set(size_t i, size_t j, double value);

  /// Restriction of this matrix to the rows/columns in `subset`.
  DistanceMatrix Restrict(std::span<const size_t> subset) const;

  /// True if the entries satisfy the triangle inequality up to `tol`
  /// (O(n^3); intended for tests).
  bool SatisfiesTriangleInequality(double tol = 1e-9) const;

 private:
  size_t n_;
  std::vector<double> d_;
};

}  // namespace diverse

#endif  // DIVERSE_CORE_DISTANCE_MATRIX_H_
