// Dense symmetric distance matrix over a small point set.
//
// Diversity objectives are functions of the pairwise distances of a k-subset
// (k is small: tens to a few hundred). Evaluators, the exact solvers, and
// the sequential approximation algorithms all work on a `DistanceMatrix`
// rather than on raw points, so they can be unit-tested against hand-built
// metrics and reused for generalized (multiplicity-weighted) core-sets.

#ifndef DIVERSE_CORE_DISTANCE_MATRIX_H_
#define DIVERSE_CORE_DISTANCE_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// A symmetric n-by-n matrix of nonnegative distances with zero diagonal.
class DistanceMatrix {
 public:
  /// Creates an n-by-n zero matrix.
  explicit DistanceMatrix(size_t n);

  /// Builds the full pairwise matrix of `points` under `metric`
  /// (n(n-1)/2 distance evaluations). Above a small size cutover, and when
  /// all points share one dimension, the build re-lays the points out
  /// columnar and streams blocked tiles (see the Dataset constructor);
  /// otherwise it runs the scalar per-pair loop. Both paths produce
  /// bit-identical entries.
  DistanceMatrix(std::span<const Point> points, const Metric& metric);

  /// Builds the full pairwise matrix of the rows of `data` under `metric`,
  /// streaming blocked Q x R tiles (Metric::DistanceTile) directly into the
  /// matrix storage, parallelized over block pairs on GlobalThreadPool().
  /// Exactly n(n-1)/2 distance evaluations (diagonal blocks run per-row
  /// suffix sweeps); every entry is computed independently, so the result
  /// is identical at any thread count.
  DistanceMatrix(const Dataset& data, const Metric& metric);

  /// Number of points.
  size_t size() const { return n_; }

  /// Distance between points i and j.
  double at(size_t i, size_t j) const { return d_[i * n_ + j]; }

  /// Row i as a contiguous span (row[j] == at(i, j)): the streaming-friendly
  /// accessor for scans that consume whole rows.
  std::span<const double> row(size_t i) const {
    return std::span<const double>(d_.data() + i * n_, n_);
  }

  /// Sets d(i,j) and d(j,i). Used by tests to construct explicit metrics.
  void set(size_t i, size_t j, double value);

  /// Restriction of this matrix to the rows/columns in `subset`.
  DistanceMatrix Restrict(std::span<const size_t> subset) const;

  /// True if the entries satisfy the triangle inequality up to `tol`
  /// (O(n^3); intended for tests).
  bool SatisfiesTriangleInequality(double tol = 1e-9) const;

 private:
  void BuildTiled(const Dataset& data, const Metric& metric);

  size_t n_;
  std::vector<double> d_;
};

}  // namespace diverse

#endif  // DIVERSE_CORE_DISTANCE_MATRIX_H_
