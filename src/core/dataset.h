// Columnar dataset storage — the memory layout the batched distance kernels
// run on.
//
// `PointSet` (a vector of `Point`) is an array-of-structs: every point owns
// its own heap-allocated coordinate vectors, so a distance sweep over n
// points chases 2n pointers and takes a virtual call per evaluation. For the
// O(k n)-evaluation hot loops (GMM, SMM updates, coreset rounds) that layout
// is the dominant cost. `Dataset` stores the same points contiguously:
//
//   * dense rows in one row-major float array (`dim` floats per row);
//   * sparse rows in CSR form (one shared indices array + values array, with
//     per-row offsets);
//   * precomputed Euclidean norms for all rows (the cosine kernel reads them
//     on every evaluation).
//
// Rows may mix representations: each row keeps a dense-or-sparse tag, so a
// dataset built from a mixed PointSet is still valid (dense rows sweep the
// dense pool, sparse rows the CSR pool).
//
// A Dataset also retains the originating `Point`s (`points()`): algorithms
// frequently need value-typed points for coresets, solutions, and shims, and
// the retention is what makes the PointSet-based entry points thin wrappers
// (construction copies the points once; no per-call conversions afterwards).
// The columnar arrays add ~1x the coordinate storage on top — an explicit
// space-for-time trade documented in the README.

#ifndef DIVERSE_CORE_DATASET_H_
#define DIVERSE_CORE_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/point.h"
#include "core/vector_kernels.h"

namespace diverse {

/// Contiguous column-oriented storage for a point collection. Append-only;
/// all rows must share one ambient dimension.
class Dataset {
 public:
  /// An empty dataset. The first appended point fixes the dimension.
  Dataset() = default;

  /// Takes ownership of `points` and builds the columnar arrays.
  explicit Dataset(PointSet points);

  /// Builds from a span by copying the points.
  static Dataset FromPoints(std::span<const Point> points);

  /// Number of rows.
  size_t size() const { return rows_.size(); }

  bool empty() const { return rows_.empty(); }

  /// Ambient dimension (0 while empty).
  size_t dim() const { return dim_; }

  /// The stored points, in row order.
  const PointSet& points() const { return points_; }

  /// Row i as a value-typed point.
  const Point& point(size_t i) const { return points_[i]; }

  /// True if row i uses the sparse representation.
  bool row_is_sparse(size_t i) const { return rows_[i].sparse != 0; }

  /// Kernel view of row i over the columnar arrays (not the Point's own
  /// heap vectors), valid until the next Append/Clear.
  kernels::VecView row(size_t i) const {
    const RowRef& r = rows_[i];
    kernels::VecView v;
    if (r.sparse != 0) {
      v.indices = csr_indices_.data() + r.start;
      v.values = csr_values_.data() + r.start;
      v.sparse = true;
    } else {
      v.values = dense_.data() + r.start;
    }
    v.nnz = r.len;
    v.dim = dim_;
    v.norm = norms_[i];
    return v;
  }

  /// Precomputed Euclidean norm of row i.
  double norm(size_t i) const { return norms_[i]; }

  /// Aggregate statistics over the sparse rows, maintained incrementally by
  /// Append/Assign. The sparse tile engine (core/metric.cc over
  /// core/sparse_kernels.h) reads them to choose its probe strategy per
  /// query block — decisions depend only on these totals and the block
  /// content, never on scheduling, so tiled results stay deterministic.
  struct SparseStats {
    size_t rows = 0;       ///< rows stored in CSR form
    size_t total_nnz = 0;  ///< stored coordinates across all sparse rows
    size_t max_nnz = 0;    ///< largest single sparse row

    /// Mean stored coordinates per sparse row (0 when there are none).
    double AvgNnz() const {
      return rows == 0 ? 0.0
                       : static_cast<double>(total_nnz) /
                             static_cast<double>(rows);
    }
  };
  const SparseStats& sparse_stats() const { return sparse_stats_; }

  /// Builds the optional transposed index mirror: a per-column occupancy
  /// count over the sparse rows (column_occupancy()[c] = number of sparse
  /// rows storing column c). O(total_nnz + dim); invalidated by
  /// Append/Assign/Clear. Not safe to call concurrently with itself — build
  /// once before sharing the dataset across threads.
  void BuildColumnOccupancy();

  /// The column occupancy mirror, or nullptr when not built (or stale).
  /// Purely advisory: strategy pickers use it to estimate intersection
  /// density; results are identical with or without it.
  const std::vector<uint32_t>* column_occupancy() const {
    return col_occupancy_valid_ ? &col_occupancy_ : nullptr;
  }

  /// Aggregate inputs to the certified fp32 screening bounds
  /// (Metric::ScreenErrorBound), built lazily on first use and cached until
  /// the next Append/Assign/Clear. The fp32 "shadow columns" of the
  /// screening engine are the primary SoA/CSR arrays themselves (this class
  /// has stored fp32 coordinates since PR 1), so the only cached screening
  /// state is these norm statistics. Like BuildColumnOccupancy, the lazy
  /// build is not safe to race with itself: the screened sweeps
  /// (core/screen.h) touch it once on the calling thread before fanning
  /// out, so only concurrent *first* uses from different threads on one
  /// dataset would race — build it eagerly first in that scenario.
  struct ScreenStats {
    /// Smallest strictly positive row norm (+inf when every row has norm
    /// 0); the cosine screening bound divides by it.
    double min_positive_norm = 0.0;
    /// Largest row norm.
    double max_norm = 0.0;
  };
  const ScreenStats& screen_stats() const;

  /// True if any row uses the dense representation (the screening bounds
  /// use dim() as the worst-case term count for such rows).
  bool has_dense_rows() const { return rows_.size() > sparse_stats_.rows; }

  /// Content identity stamp: every mutation (Append/Assign/Clear) draws a
  /// fresh value from a process-global monotonic counter, so two datasets
  /// reporting the SAME nonzero stamp hold identical content — copies share
  /// the stamp until either side mutates, and stamps are never reused. The
  /// sparse decode cache (core/metric.cc) keys thread-local query-block
  /// scratch on it. 0 means "never mutated" (necessarily empty) and is
  /// treated as uncacheable. Moved-from datasets are valid-but-unspecified
  /// as usual; mutate (or Clear) before reusing one.
  uint64_t content_stamp() const { return content_stamp_; }

  /// Appends one row. The first row fixes dim(); later rows must match it.
  void Append(const Point& p);

  /// Replaces the contents with `points`: Clear() + Append for each point,
  /// reusing the existing columnar array capacity. This is the scratch-reuse
  /// path for per-partition re-layouts (MapReduce reducers rebuild a Dataset
  /// per partition; assigning into one scratch avoids re-allocating the
  /// dense/CSR/norm arrays every round).
  void Assign(std::span<const Point> points);

  /// Removes all rows (dimension resets with the next Append).
  void Clear();

  /// Replaces the contents with src rows `rows` (in that order), copying
  /// ONLY the columnar arrays, norms, and aggregate statistics — points()
  /// stays empty, so the value-typed accessors (point(), points()) must not
  /// be used on the result. Kernels, norms, and screening statistics see
  /// exactly the content Append of the same rows would have produced, at
  /// raw array-copy speed instead of per-Point heap copies. This is the
  /// scratch path of the metric-index build (core/cover_tree.cc), which
  /// re-materializes every tree node's row range once to keep its pole
  /// sweeps on contiguous rows.
  void AssignGatherColumnar(const Dataset& src,
                            std::span<const uint32_t> rows);

  /// Approximate heap footprint in bytes (points + columnar arrays).
  size_t MemoryBytes() const;

 private:
  struct RowRef {
    size_t start = 0;   // offset into dense_ or csr_{indices_,values_}
    uint32_t len = 0;   // stored coordinates (== dim for dense rows)
    uint8_t sparse = 0;
  };

  void AppendColumnar(const Point& p);

  PointSet points_;
  size_t dim_ = 0;
  std::vector<float> dense_;
  std::vector<uint32_t> csr_indices_;
  std::vector<float> csr_values_;
  std::vector<RowRef> rows_;
  std::vector<double> norms_;
  SparseStats sparse_stats_;
  std::vector<uint32_t> col_occupancy_;
  bool col_occupancy_valid_ = false;
  // Lazy screening-bound cache (see screen_stats()); mutable so the
  // const accessor can build it on first use. Appends keep a valid cache
  // valid by folding the new row's norm in, so append-heavy loops that
  // screen between appends (SMM's growing merge mirror) never pay a full
  // O(n) rebuild per append.
  //
  // Concurrency note: this mutable-under-const cache makes screen_stats()
  // NOT safe to call concurrently on a cold cache. The parallel engines
  // respect the contract by warming it (one screen_stats() call) before
  // fanning a dataset out to the thread pool, after which all access is
  // read-only. Guarding it with a mutex instead would put a lock in the
  // hot screening loop for a race that the warm-before-share discipline
  // already prevents.
  mutable ScreenStats screen_stats_;
  mutable bool screen_stats_valid_ = false;
  uint64_t content_stamp_ = 0;
};

}  // namespace diverse

#endif  // DIVERSE_CORE_DATASET_H_
