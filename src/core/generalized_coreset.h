// Generalized core-sets (Section 6 of the paper).
//
// A generalized core-set is a set of (point, multiplicity) pairs — a compact
// representation of a multiset in which each kernel point stands for itself
// plus multiplicity-1 nearby delegates that were *not* stored. Solving the
// diversity problem on the multiset (replicas at distance zero) and then
// re-materializing ("instantiating") distinct delegates from the input
// within distance delta of each kernel point loses at most f(k) * 2 * delta
// of diversity (Lemma 7). This trades the O(k k') memory of GMM-EXT/SMM-EXT
// for O(k') plus an extra pass (Streaming, Thm 9) or round (MapReduce,
// Thm 10).

#ifndef DIVERSE_CORE_GENERALIZED_CORESET_H_
#define DIVERSE_CORE_GENERALIZED_CORESET_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/distance_matrix.h"
#include "core/diversity.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// One entry of a generalized core-set: a kernel point and the number of
/// input points it stands for (including itself), capped at k by the
/// constructions.
struct WeightedPoint {
  Point point;
  size_t multiplicity = 1;
};

/// A generalized core-set T: entries with distinct points and positive
/// multiplicities.
class GeneralizedCoreset {
 public:
  GeneralizedCoreset() = default;

  /// Appends an entry. `multiplicity` must be positive.
  void Add(Point point, size_t multiplicity);

  /// Number of stored pairs, s(T).
  size_t size() const { return entries_.size(); }

  /// Total multiplicity, m(T) — the size of the represented multiset.
  size_t ExpandedSize() const;

  const std::vector<WeightedPoint>& entries() const { return entries_; }

  /// The expansion: each point repeated multiplicity times, paired with the
  /// index of its originating entry (the "kernel id"). Two expansion elements
  /// with equal kernel id are replicas at conceptual distance 0.
  struct Expansion {
    PointSet points;
    std::vector<size_t> kernel_id;
  };
  Expansion Expand() const;

  /// Like Expand(), but keeps at most `cap` replicas per entry. A diversity
  /// solution of size k never benefits from more than k replicas of one
  /// point, so Expand with cap = k preserves gen-div_k while bounding the
  /// expansion size by s(T) * k.
  Expansion ExpandCapped(size_t cap) const;

  /// True if for every pair (p, m) of *this there is a pair (p, m') in
  /// `other` with m' >= m (the coherent-subset relation, written T1 ⊑ T2).
  bool IsCoherentSubsetOf(const GeneralizedCoreset& other) const;

  /// Union of several generalized core-sets with distinct points (the
  /// round-2 aggregation of Theorem 10). Entries are concatenated.
  static GeneralizedCoreset Merge(
      std::span<const GeneralizedCoreset> parts);

 private:
  std::vector<WeightedPoint> entries_;
};

/// Pairwise distances of an expansion under `metric`, with replicas of the
/// same kernel entry at distance 0. This is the matrix on which gen-div is
/// evaluated and on which the adapted sequential algorithms (Fact 2) run.
DistanceMatrix ExpansionDistanceMatrix(
    const GeneralizedCoreset::Expansion& expansion, const Metric& metric);

/// gen-div(T): the diversity of the (capped) expansion of `coreset`,
/// replicas at distance 0.
double EvaluateGeneralizedDiversity(DiversityProblem problem,
                                    const GeneralizedCoreset& coreset,
                                    const Metric& metric);

/// GMM-GEN(S, k, k'): the multiplicity form of GMM-EXT. Runs GMM(S, k'),
/// clusters S around the kernel, and records for entry i the size of the
/// delegate set E_i (at most k, including the center). Composable
/// generalized core-set for the four injective-proxy problems (Lemma 8).
/// If `range_out` is non-null it receives the kernel range
/// r_T = max_p d(p, kernel) — the radius within which the instantiation
/// round of Theorem 10 finds its delegates.
GeneralizedCoreset GmmGenCoreset(const Dataset& data, const Metric& metric,
                                 size_t k, size_t k_prime,
                                 double* range_out = nullptr);

/// Shim: copies `points` into a Dataset and builds the core-set on it.
GeneralizedCoreset GmmGenCoreset(std::span<const Point> points,
                                 const Metric& metric, size_t k,
                                 size_t k_prime, double* range_out = nullptr);

/// A delta-instantiation I(T) of a generalized core-set: for each pair
/// (p, m_p), m_p distinct delegates from `points` (including p itself when
/// present), each within `delta` of p, disjoint across pairs. Returns
/// nullopt if `points` cannot supply enough delegates, which cannot happen
/// when T was built from `points` with the same delta used at construction.
std::optional<PointSet> Instantiate(const GeneralizedCoreset& coreset,
                                    std::span<const Point> points,
                                    const Metric& metric, double delta);

}  // namespace diverse

#endif  // DIVERSE_CORE_GENERALIZED_CORESET_H_
