#include "core/screen.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

#if defined(__x86_64__) && defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace diverse {

namespace {

std::atomic<bool> g_screening_enabled{true};

// Same grain rule as the exact batched sweeps (core/metric.cc): a fixed
// amount of coordinate work per range, boundaries a function of (n, grain)
// only. The screened argmax combines ranges ascending with strict
// comparisons, so — like the exact path — ties resolve to the globally
// first index no matter how the ranges are cut.
constexpr size_t kGrainOps = 16384;
constexpr size_t kMinGrainRows = 256;

size_t GrainRows(const Dataset& data) {
  size_t dim = std::max<size_t>(data.dim(), 1);
  return std::max(kMinGrainRows, kGrainOps / dim);
}

// Single-query *relax* sweeps (GMM's per-center loop) still gate on per-row
// coordinate work: their fp32 pass re-reads a materialized buffer and the
// rescue band stays populated throughout the k-step trajectory, so below
// ~8 coords per row the screen only ties the exact sweep. The fused SMM
// sweeps (ScreenedArgClosest / ScreenedArgClosestWithin /
// ScreenedFirstWithin) carry no such gate: their skip path is one float
// compare against precomputed cutoffs, profitable at any dimension. The
// decision reads only dataset statistics — deterministic, and either
// verdict is bit-identical.
bool SingleQueryScreenWorthwhile(const Dataset& data) {
  size_t work = data.has_dense_rows() ? data.dim() : 0;
  const Dataset::SparseStats& ss = data.sparse_stats();
  if (ss.rows > 0) {
    work = std::max(work, static_cast<size_t>(2.0 * ss.AvgNnz()));
  }
  return work >= 8;
}

// Exact (unscreened) first-strict-argmin sweep — the fallback of the fused
// nearest-center sweeps.
size_t ExactArgClosest(const Metric& metric, const Point& query,
                       const Dataset& data, double* min_dist) {
  size_t n = data.size();
  thread_local std::vector<double> d;
  d.resize(n);
  metric.DistanceToMany(query, data, 0, std::span<double>(d.data(), n));
  size_t best = 0;
  double best_val = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    if (d[i] < best_val) {
      best_val = d[i];
      best = i;
    }
  }
  if (min_dist != nullptr) *min_dist = best_val;
  return best;
}

}  // namespace

void CollectScreenRescues(const float* t, const float* thr, size_t count,
                          uint32_t base, std::vector<uint32_t>& out) {
  const float flt_max = std::numeric_limits<float>::max();
  size_t i = 0;
#if defined(__x86_64__) && defined(__SSE2__)
  // The SSE2 fast path tests four lanes per compare and decodes lanes only
  // when at least one of the four rescues — on realistic sweeps the vast
  // majority of quads skip in two packed compares.
  const __m128 vmax = _mm_set1_ps(flt_max);
  for (; i + 4 <= count; i += 4) {
    __m128 tv = _mm_loadu_ps(t + i);
    __m128 skip = _mm_and_ps(_mm_cmpgt_ps(tv, _mm_loadu_ps(thr + i)),
                             _mm_cmple_ps(tv, vmax));
    int mask = _mm_movemask_ps(skip);
    if (mask == 0xF) continue;
    for (uint32_t j = 0; j < 4; ++j) {
      if ((mask & (1 << j)) == 0) {
        out.push_back(base + static_cast<uint32_t>(i) + j);
      }
    }
  }
#endif
  for (; i < count; ++i) {
    float v = t[i];
    if (v > thr[i] && v <= flt_max) continue;
    out.push_back(base + static_cast<uint32_t>(i));
  }
}

bool ScreeningEnabled() {
  return g_screening_enabled.load(std::memory_order_relaxed);
}

void SetScreeningEnabled(bool enabled) {
  g_screening_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedScreening::ScopedScreening(bool enabled) : prev_(ScreeningEnabled()) {
  SetScreeningEnabled(enabled);
}

ScopedScreening::~ScopedScreening() { SetScreeningEnabled(prev_); }

bool UseScreening(const Metric& metric) {
  return ScreeningEnabled() && metric.ScreeningProfitable();
}

size_t ScreenedRelaxTilesAndArgFarthest(const Metric& metric,
                                        const Dataset& queries, size_t q_begin,
                                        size_t nq, size_t rank_base,
                                        const Dataset& data,
                                        std::span<double> dist,
                                        std::span<size_t> assignment) {
  if (!UseScreening(metric) ||
      !metric.RelaxTileScreeningProfitableFor(queries, data)) {
    return RelaxTilesAndArgFarthest(metric, queries, q_begin, nq, rank_base,
                                    data, dist, assignment);
  }
  size_t n = data.size();
  DIVERSE_CHECK_GE(nq, 1u);
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  // One bound for the whole sweep; reading it also builds both datasets'
  // lazy screen stats on this thread, before the parallel fan-out. A
  // degenerate bound (rel >= 1 — possible only at astronomical term
  // counts) would invert the skip-threshold transform, so such sweeps run
  // exact instead.
  const ScreenBound bound = metric.ScreenErrorBound(queries, data);
  if (!(bound.rel < 1.0)) {
    return RelaxTilesAndArgFarthest(metric, queries, q_begin, nq, rank_base,
                                    data, dist, assignment);
  }

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(n, grain, [&](size_t lo, size_t hi) {
    // The whole screen + relax + rescue loop for this row range runs inside
    // the metric's fused kernel — no intermediate fp32 tile for the dense
    // metrics, cosine-space thresholds for all-sparse cosine tiles, and
    // the unfused materialize-then-collect fallback otherwise.
    metric.ScreenedRelaxTile(queries, q_begin, nq, rank_base, data, lo,
                             hi - lo, bound, dist, assignment);
    size_t local_best = lo;
    double local_val = -std::numeric_limits<double>::infinity();
    for (size_t i = lo; i < hi; ++i) {
      if (dist[i] > local_val) {
        local_val = dist[i];
        local_best = i;
      }
    }
    range_best[lo / grain] = local_best;
  });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

RelaxScreenPlan PlanScreenedRelax(const Metric& metric, const Dataset& queries,
                                  const Dataset& data) {
  RelaxScreenPlan plan;
  if (!UseScreening(metric) || !SingleQueryScreenWorthwhile(data) ||
      !metric.ScreeningProfitableFor(queries, data)) {
    return plan;
  }
  plan.bound = metric.ScreenErrorBound(queries, data);
  if (!(plan.bound.rel < 1.0)) return plan;  // degenerate: run exact
  plan.inv_rel = (1.0 + 1e-12) / (1.0 - plan.bound.rel);
  plan.screen = true;
  return plan;
}

size_t ScreenedRelaxRange(const Metric& metric, const Dataset& queries,
                          size_t q_index, const Dataset& data, size_t begin,
                          size_t count, const RelaxScreenPlan& plan,
                          std::span<double> dist, std::span<size_t> assignment,
                          size_t center_rank) {
  DIVERSE_CHECK_LT(q_index, queries.size());
  DIVERSE_CHECK_LE(begin + count, data.size());
  DIVERSE_CHECK_EQ(dist.size(), data.size());
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), data.size());
  if (count == 0) return 0;
  const Point& query = queries.point(q_index);
  constexpr size_t kChunk = 512;
  size_t end = begin + count;
  if (!plan.screen) {
    // Exact per-pair relax through the batched kernel — the same doubles
    // Metric::RelaxAndArgFarthest folds, chunked to bound scratch.
    thread_local std::vector<double> dbuf;
    for (size_t c0 = begin; c0 < end; c0 += kChunk) {
      size_t cn = std::min(kChunk, end - c0);
      dbuf.resize(cn);
      metric.DistanceToMany(query, data, c0,
                            std::span<double>(dbuf.data(), cn));
      for (size_t i = 0; i < cn; ++i) {
        if (dbuf[i] < dist[c0 + i]) {
          dist[c0 + i] = dbuf[i];
          if (!assignment.empty()) assignment[c0 + i] = center_rank;
        }
      }
    }
    return count;
  }
  // The flat sweep's chunk body verbatim, over [begin, end). Per-row fp32
  // values, skip thresholds, and rescue verdicts are functions of the pair
  // and the row's incoming dist alone (the per-row kernels do not couple
  // rows), so chunk alignment cannot move a decision: this IS the flat
  // sweep restricted to these rows.
  thread_local std::vector<float> buf;
  thread_local std::vector<float> thr;
  thread_local std::vector<uint32_t> rescue;
  thread_local std::vector<double> rescued_d;
  size_t exact_evals = 0;
  for (size_t c0 = begin; c0 < end; c0 += kChunk) {
    size_t cn = std::min(kChunk, end - c0);
    buf.resize(cn);
    thr.resize(cn);
    metric.DistanceToManyF32(query, data, c0,
                             std::span<float>(buf.data(), cn));
    for (size_t i = 0; i < cn; ++i) {
      thr[i] = ScreenSkipThreshold(dist[c0 + i], plan.bound.abs, plan.inv_rel);
    }
    rescue.clear();
    CollectScreenRescues(buf.data(), thr.data(), cn,
                         static_cast<uint32_t>(c0), rescue);
    if (!rescue.empty()) {
      rescued_d.resize(rescue.size());
      metric.DistanceRowsMany(queries, q_index, data, rescue,
                              rescued_d.data());
      exact_evals += rescue.size();
      for (size_t t = 0; t < rescue.size(); ++t) {
        size_t row = rescue[t];
        if (rescued_d[t] < dist[row]) {
          dist[row] = rescued_d[t];
          if (!assignment.empty()) assignment[row] = center_rank;
        }
      }
    }
  }
  return exact_evals;
}

size_t ScreenedRelaxArgFarthest(const Metric& metric, const Dataset& queries,
                                size_t q_index, const Dataset& data,
                                std::span<double> dist,
                                std::span<size_t> assignment,
                                size_t center_rank) {
  DIVERSE_CHECK_LT(q_index, queries.size());
  if (!UseScreening(metric) || !SingleQueryScreenWorthwhile(data) ||
      !metric.ScreeningProfitableFor(queries, data)) {
    return metric.RelaxAndArgFarthest(queries.point(q_index), data, dist,
                                      assignment, center_rank);
  }
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  const ScreenBound bound = metric.ScreenErrorBound(queries, data);
  if (!(bound.rel < 1.0)) {  // degenerate bound: the transform would invert
    return metric.RelaxAndArgFarthest(queries.point(q_index), data, dist,
                                      assignment, center_rank);
  }
  const Point& query = queries.point(q_index);
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  constexpr size_t kChunk = 512;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(n, grain, [&](size_t lo, size_t hi) {
    thread_local std::vector<float> buf;
    thread_local std::vector<float> thr;
    thread_local std::vector<uint32_t> rescue;
    thread_local std::vector<double> rescued_d;
    size_t local_best = lo;
    double local_val = -std::numeric_limits<double>::infinity();
    for (size_t c0 = lo; c0 < hi; c0 += kChunk) {
      size_t cn = std::min(kChunk, hi - c0);
      buf.resize(cn);
      thr.resize(cn);
      metric.DistanceToManyF32(query, data, c0,
                               std::span<float>(buf.data(), cn));
      for (size_t i = 0; i < cn; ++i) {
        thr[i] = ScreenSkipThreshold(dist[c0 + i], bound.abs, inv_rel);
      }
      rescue.clear();
      CollectScreenRescues(buf.data(), thr.data(), cn,
                           static_cast<uint32_t>(c0), rescue);
      if (!rescue.empty()) {
        rescued_d.resize(rescue.size());
        metric.DistanceRowsMany(queries, q_index, data, rescue,
                                rescued_d.data());
        for (size_t t = 0; t < rescue.size(); ++t) {
          size_t row = rescue[t];
          if (rescued_d[t] < dist[row]) {
            dist[row] = rescued_d[t];
            if (!assignment.empty()) assignment[row] = center_rank;
          }
        }
      }
      for (size_t i = c0; i < c0 + cn; ++i) {
        if (dist[i] > local_val) {
          local_val = dist[i];
          local_best = i;
        }
      }
    }
    range_best[lo / grain] = local_best;
  });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

namespace {

// The fused argmin + coverage sweep under an already-resolved bound: shared
// by the one-shot overload (per-query bound) and the persistent-context
// overload (cached dataset-worst-case bound). `beyond` is the precomputed
// certify-beyond cutoff at the caller's cover threshold.
ScreenedNearest ScreenedArgClosestWithinBody(const Metric& metric,
                                             const Point& query,
                                             const Dataset& data,
                                             const ScreenBound& bound,
                                             double inv_rel, float beyond) {
  size_t n = data.size();
  ScreenedNearest out;
  const float flt_max = std::numeric_limits<float>::max();
  thread_local std::vector<float> s;
  s.resize(n);
  metric.DistanceToManyF32(query, data, 0, std::span<float>(s.data(), n));
  // Smallest finite screened value; non-finite values (overflowed fp32
  // accumulators) certify nothing and keep every certificate off.
  float smin = std::numeric_limits<float>::infinity();
  bool any_nonfinite = false;
  for (size_t i = 0; i < n; ++i) {
    float v = s[i];
    if (v >= -flt_max && v <= flt_max) {
      smin = std::min(smin, v);
    } else {
      any_nonfinite = true;
    }
  }
  // Coverage certificate: when every row's certified lower bound clears the
  // cover threshold, the caller's coverage decision is settled with zero
  // exact evaluations (the skip-threshold transform is exactly the
  // "certify exact > t" test, applied with t = cover_threshold).
  if (!any_nonfinite && smin > beyond) {
    out.beyond = true;
    return out;
  }
  // Argmin: every index whose certified lower bound is at or below the
  // smallest certified upper bound could be (or tie) the minimum; the true
  // argmin is always among them, and no skipped index can match the
  // minimum (its lower bound strictly exceeds it), so the first-strict-min
  // scan over the candidates in ascending order picks the same index as
  // the exact sweep. Both transforms are monotone in the screened value,
  // so the candidate test is one float compare against a precomputed
  // cutoff.
  double min_upper = ScreenedUpper(smin, bound);
  float candidate_cutoff =
      NextUpNonNegativeF32(static_cast<float>((min_upper + bound.abs) *
                                              inv_rel));
  size_t best = n;
  double best_val = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    float v = s[i];
    bool finite = v >= -flt_max && v <= flt_max;
    if (finite && v > candidate_cutoff) continue;
    double d = metric.Distance(query, data.point(i));
    if (d < best_val) {
      best_val = d;
      best = i;
    }
  }
  DIVERSE_CHECK_LT(best, n);
  out.index = best;
  out.dist = best_val;
  return out;
}

// The fused first-within loop under already-resolved cutoffs: shared by
// the one-shot and persistent-context overloads of ScreenedFirstWithin.
size_t ScreenedFirstWithinBody(const Metric& metric, const Point& query,
                               const Dataset& data, double threshold,
                               float within, float beyond) {
  size_t n = data.size();
  constexpr size_t kChunk = 16;
  const float flt_max = std::numeric_limits<float>::max();
  float buf[kChunk];
  for (size_t b = 0; b < n; b += kChunk) {
    size_t bn = std::min(kChunk, n - b);
    metric.DistanceToManyF32(query, data, b, std::span<float>(buf, bn));
    for (size_t i = 0; i < bn; ++i) {
      float v = buf[i];
      if (v >= -flt_max && v <= within) return b + i;
      if (v > beyond && v <= flt_max) continue;
      if (metric.Distance(query, data.point(b + i)) <= threshold) {
        return b + i;
      }
    }
  }
  return n;
}

}  // namespace

ScreenedNearest ScreenedArgClosestWithin(const Metric& metric,
                                         const Point& query,
                                         const Dataset& data,
                                         double cover_threshold) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(n, 1u);
  DIVERSE_CHECK_GE(cover_threshold, 0.0);
  ScreenedNearest out;
  if (!UseScreening(metric) || !metric.ScreeningProfitableFor(query, data)) {
    out.index = ExactArgClosest(metric, query, data, &out.dist);
    return out;
  }
  const ScreenBound bound = metric.ScreenErrorBound(query, data);
  if (!(bound.rel < 1.0)) {
    out.index = ExactArgClosest(metric, query, data, &out.dist);
    return out;
  }
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  const float beyond = ScreenSkipThreshold(cover_threshold, bound.abs,
                                           inv_rel);
  return ScreenedArgClosestWithinBody(metric, query, data, bound, inv_rel,
                                      beyond);
}

// True when the context's cached dataset-worst-case bound covers `query`:
// the query's side statistics are dominated by the data's own extremes, so
// the cached bound is at least as wide as the per-call bound (see the
// header's soundness note).
bool ScreenContextCovers(const PersistentScreenContext& ctx,
                         const Point& query) {
  if (query.is_sparse()) {
    if (query.sparse_values().size() > ctx.max_nnz_) return false;
  } else if (!ctx.has_dense_) {
    return false;
  }
  double qn = query.norm();
  return qn == 0.0 || qn >= ctx.min_positive_norm_;
}

// Rebuilds the context's cached bound and cutoffs when the (data stats,
// threshold) key moved; counts a hit otherwise. Returns false when the
// cached bound is degenerate (rel >= 1) and callers must take the one-shot
// path.
bool RefreshScreenContext(PersistentScreenContext& ctx, const Metric& metric,
                          const Dataset& data, double threshold) {
  const Dataset::ScreenStats& ss = data.screen_stats();
  bool same = ctx.valid_ && ctx.dim_ == data.dim() &&
              ctx.has_dense_ == data.has_dense_rows() &&
              ctx.max_nnz_ == data.sparse_stats().max_nnz &&
              ctx.min_positive_norm_ == ss.min_positive_norm &&
              ctx.threshold_ == threshold;
  if (same) {
    ++ctx.hits_;
  } else {
    ctx.dim_ = data.dim();
    ctx.has_dense_ = data.has_dense_rows();
    ctx.max_nnz_ = data.sparse_stats().max_nnz;
    ctx.min_positive_norm_ = ss.min_positive_norm;
    ctx.threshold_ = threshold;
    ctx.bound_ = metric.ScreenErrorBound(data, data);
    if (ctx.bound_.rel < 1.0) {
      ctx.inv_rel_ = (1.0 + 1e-12) / (1.0 - ctx.bound_.rel);
      ctx.beyond_ = ScreenSkipThreshold(threshold, ctx.bound_.abs,
                                        ctx.inv_rel_);
      ctx.within_ = ScreenCertifiedBelow(threshold, ctx.bound_);
    }
    ctx.valid_ = true;
    ++ctx.rebuilds_;
  }
  return ctx.bound_.rel < 1.0;
}

ScreenedNearest ScreenedArgClosestWithin(const Metric& metric,
                                         const Point& query,
                                         const Dataset& data,
                                         double cover_threshold,
                                         PersistentScreenContext* ctx) {
  if (ctx == nullptr) {
    return ScreenedArgClosestWithin(metric, query, data, cover_threshold);
  }
  size_t n = data.size();
  DIVERSE_CHECK_GE(n, 1u);
  DIVERSE_CHECK_GE(cover_threshold, 0.0);
  if (!UseScreening(metric) || !metric.ScreeningProfitableFor(query, data)) {
    ScreenedNearest out;
    out.index = ExactArgClosest(metric, query, data, &out.dist);
    return out;
  }
  if (!RefreshScreenContext(*ctx, metric, data, cover_threshold) ||
      !ScreenContextCovers(*ctx, query)) {
    return ScreenedArgClosestWithin(metric, query, data, cover_threshold);
  }
  return ScreenedArgClosestWithinBody(metric, query, data, ctx->bound_,
                                      ctx->inv_rel_, ctx->beyond_);
}

size_t ScreenedArgClosest(const Metric& metric, const Point& query,
                          const Dataset& data, double* min_dist) {
  // +inf cover threshold: the coverage certificate can never fire, so this
  // is the plain fused screened argmin.
  ScreenedNearest r = ScreenedArgClosestWithin(
      metric, query, data, std::numeric_limits<double>::infinity());
  if (min_dist != nullptr) *min_dist = r.dist;
  return r.index;
}

size_t ScreenedFirstWithin(const Metric& metric, const Point& query,
                           const Dataset& data, double threshold) {
  size_t n = data.size();
  constexpr size_t kChunk = 16;
  if (!UseScreening(metric) || !metric.ScreeningProfitableFor(query, data)) {
    double buf[kChunk];
    for (size_t b = 0; b < n; b += kChunk) {
      size_t bn = std::min(kChunk, n - b);
      metric.DistanceToMany(query, data, b, std::span<double>(buf, bn));
      for (size_t i = 0; i < bn; ++i) {
        if (buf[i] <= threshold) return b + i;
      }
    }
    return n;
  }
  if (threshold < 0.0) return n;  // distances are nonnegative; nothing fits
  const ScreenBound bound = metric.ScreenErrorBound(query, data);
  if (!(bound.rel < 1.0)) {
    double buf[kChunk];
    for (size_t b = 0; b < n; b += kChunk) {
      size_t bn = std::min(kChunk, n - b);
      metric.DistanceToMany(query, data, b, std::span<double>(buf, bn));
      for (size_t i = 0; i < bn; ++i) {
        if (buf[i] <= threshold) return b + i;
      }
    }
    return n;
  }
  // Two precomputed float cutoffs replace the per-row double bound
  // transforms: s <= within certifies d < threshold (qualify), a finite
  // s > beyond certifies d > threshold (skip), and only band hits pay an
  // exact evaluation. Chunked so a merge-heavy scan keeps its early exit.
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  const float within = ScreenCertifiedBelow(threshold, bound);
  const float beyond = ScreenSkipThreshold(threshold, bound.abs, inv_rel);
  return ScreenedFirstWithinBody(metric, query, data, threshold, within,
                                 beyond);
}

size_t ScreenedFirstWithin(const Metric& metric, const Point& query,
                           const Dataset& data, double threshold,
                           PersistentScreenContext* ctx) {
  if (ctx == nullptr) {
    return ScreenedFirstWithin(metric, query, data, threshold);
  }
  size_t n = data.size();
  if (n == 0) return 0;
  if (!UseScreening(metric) || !metric.ScreeningProfitableFor(query, data) ||
      threshold < 0.0) {
    return ScreenedFirstWithin(metric, query, data, threshold);
  }
  if (!RefreshScreenContext(*ctx, metric, data, threshold) ||
      !ScreenContextCovers(*ctx, query)) {
    return ScreenedFirstWithin(metric, query, data, threshold);
  }
  return ScreenedFirstWithinBody(metric, query, data, threshold,
                                 ctx->within_, ctx->beyond_);
}

}  // namespace diverse
