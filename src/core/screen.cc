#include "core/screen.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

#if defined(__x86_64__) && defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace diverse {

namespace {

std::atomic<bool> g_screening_enabled{true};

// Same grain rule as the exact batched sweeps (core/metric.cc): a fixed
// amount of coordinate work per range, boundaries a function of (n, grain)
// only. The screened argmax combines ranges ascending with strict
// comparisons, so — like the exact path — ties resolve to the globally
// first index no matter how the ranges are cut.
constexpr size_t kGrainOps = 16384;
constexpr size_t kMinGrainRows = 256;

size_t GrainRows(const Dataset& data) {
  size_t dim = std::max<size_t>(data.dim(), 1);
  return std::max(kMinGrainRows, kGrainOps / dim);
}

// Conservative skip machinery for the hot relax loops. The mathematically
// exact skip test is ScreenedLower(t, bound) > cur; evaluating it per pair
// costs a multiply-add, and the tile sweep compares each row's dist against
// up to 64 centers. Instead, SkipThreshold precomputes — once per row, or
// on a rescue that improves the row — the float threshold T(cur) such that
// a finite screened value t > T certifies exact > cur: the exact condition
// is t > (cur + abs) / (1 - rel), inflated by 1e-12 against the double
// rounding of the transform and rounded UP to the next float (both slops
// only widen the rescue band — more rescues, never an unsafe skip). The
// inner loops then run one float compare per pair, vectorized four wide by
// CollectRescues. NaN and +inf screened values (overflowed fp32
// accumulators certify nothing) always rescue: NaN fails every comparison
// and +inf fails t <= FLT_MAX.

// Next float up for nonnegative input (+inf stays +inf): for positive IEEE
// floats the bit pattern is monotone, so incrementing it is nextafterf
// without the libm call.
float NextUpNonNegative(float f) {
  if (!(f < std::numeric_limits<float>::infinity())) {
    return std::numeric_limits<float>::infinity();
  }
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  ++bits;
  std::memcpy(&f, &bits, sizeof(bits));
  return f;
}

float SkipThreshold(double cur, double abs_term, double inv_one_minus_rel) {
  if (!(cur < std::numeric_limits<double>::infinity())) {
    return std::numeric_limits<float>::infinity();
  }
  double thr = (cur + abs_term) * inv_one_minus_rel;
  return NextUpNonNegative(static_cast<float>(thr));
}

// Appends base + i for every position whose screened value cannot be
// certified-skipped: rescue iff !(t[i] > thr[i] && t[i] <= FLT_MAX). The
// SSE2 fast path tests four lanes per compare and decodes lanes only when
// at least one of the four rescues — on realistic sweeps the vast majority
// of quads skip in two packed compares.
void CollectRescues(const float* t, const float* thr, size_t count,
                    uint32_t base, std::vector<uint32_t>& out) {
  const float flt_max = std::numeric_limits<float>::max();
  size_t i = 0;
#if defined(__x86_64__) && defined(__SSE2__)
  const __m128 vmax = _mm_set1_ps(flt_max);
  for (; i + 4 <= count; i += 4) {
    __m128 tv = _mm_loadu_ps(t + i);
    __m128 skip = _mm_and_ps(_mm_cmpgt_ps(tv, _mm_loadu_ps(thr + i)),
                             _mm_cmple_ps(tv, vmax));
    int mask = _mm_movemask_ps(skip);
    if (mask == 0xF) continue;
    for (uint32_t j = 0; j < 4; ++j) {
      if ((mask & (1 << j)) == 0) {
        out.push_back(base + static_cast<uint32_t>(i) + j);
      }
    }
  }
#endif
  for (; i < count; ++i) {
    float v = t[i];
    if (v > thr[i] && v <= flt_max) continue;
    out.push_back(base + static_cast<uint32_t>(i));
  }
}

// Single-query sweeps (one center against all rows) screen only when each
// row carries enough coordinate work to amortize the per-row screening
// overhead (threshold transform, rescue bookkeeping, the extra pass over
// the fp32 buffer). Measured crossover on dense uniform cubes is ~dim 8;
// sparse rows count their average stored coordinates on both operands. The
// decision reads only dataset statistics — deterministic, and either
// verdict is bit-identical. Tile sweeps amortize the same overhead across
// the whole center chunk and are not gated.
bool SingleQueryScreenWorthwhile(const Dataset& data) {
  size_t work = data.has_dense_rows() ? data.dim() : 0;
  const Dataset::SparseStats& ss = data.sparse_stats();
  if (ss.rows > 0) {
    work = std::max(work, static_cast<size_t>(2.0 * ss.AvgNnz()));
  }
  return work >= 8;
}

}  // namespace

bool ScreeningEnabled() {
  return g_screening_enabled.load(std::memory_order_relaxed);
}

void SetScreeningEnabled(bool enabled) {
  g_screening_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedScreening::ScopedScreening(bool enabled) : prev_(ScreeningEnabled()) {
  SetScreeningEnabled(enabled);
}

ScopedScreening::~ScopedScreening() { SetScreeningEnabled(prev_); }

bool UseScreening(const Metric& metric) {
  return ScreeningEnabled() && metric.ScreeningProfitable();
}

size_t ScreenedRelaxTilesAndArgFarthest(const Metric& metric,
                                        const Dataset& queries, size_t q_begin,
                                        size_t nq, size_t rank_base,
                                        const Dataset& data,
                                        std::span<double> dist,
                                        std::span<size_t> assignment) {
  if (!UseScreening(metric) || !metric.ScreeningProfitableFor(queries, data)) {
    return RelaxTilesAndArgFarthest(metric, queries, q_begin, nq, rank_base,
                                    data, dist, assignment);
  }
  size_t n = data.size();
  DIVERSE_CHECK_GE(nq, 1u);
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  // One bound for the whole sweep; reading it also builds both datasets'
  // lazy screen stats on this thread, before the parallel fan-out. A
  // degenerate bound (rel >= 1 — possible only at astronomical term
  // counts) would invert the skip-threshold transform below, so such
  // sweeps run exact instead.
  const ScreenBound bound = metric.ScreenErrorBound(queries, data);
  if (!(bound.rel < 1.0)) {
    return RelaxTilesAndArgFarthest(metric, queries, q_begin, nq, rank_base,
                                    data, dist, assignment);
  }

  // Same tile geometry as the exact path; the fp32 scratch is half the
  // bytes, so a kQChunk x kRowBlock tile is 64 KiB.
  constexpr size_t kRowBlock = 256;
  constexpr size_t kQChunk = 64;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  GlobalThreadPool().ParallelForRanges(n, grain, [&](size_t lo, size_t hi) {
    thread_local std::vector<float> tile;
    thread_local std::vector<float> thr;       // per-row skip thresholds
    thread_local std::vector<uint32_t> rescue;  // absolute rescued row ids
    thread_local std::vector<double> rescued_d;
    size_t local_best = lo;
    double local_val = -std::numeric_limits<double>::infinity();
    for (size_t rb = lo; rb < hi; rb += kRowBlock) {
      size_t rn = std::min(kRowBlock, hi - rb);
      // Cache each row's skip threshold for the whole center sweep; it only
      // changes when a rescue improves the row's distance.
      thr.resize(rn);
      for (size_t i = 0; i < rn; ++i) {
        thr[i] = SkipThreshold(dist[rb + i], bound.abs, inv_rel);
      }
      for (size_t qc = 0; qc < nq; qc += kQChunk) {
        size_t qn = std::min(kQChunk, nq - qc);
        tile.resize(qn * rn);
        metric.DistanceTileF32(queries, q_begin + qc, qn, data, rb, rn,
                               tile.data(), rn);
        // Relax centers in ascending rank order, exactly like the exact
        // tile path — but a row is touched only when the screened value
        // cannot rule out an improvement (one float compare per pair); the
        // block's rescues are batched into one exact DistanceRowsMany call
        // and then relaxed with the exact comparison.
        for (size_t q = 0; q < qn; ++q) {
          const float* tile_row = tile.data() + q * rn;
          rescue.clear();
          CollectRescues(tile_row, thr.data(), rn, static_cast<uint32_t>(rb),
                         rescue);
          if (rescue.empty()) continue;
          rescued_d.resize(rescue.size());
          metric.DistanceRowsMany(queries, q_begin + qc + q, data, rescue,
                                  rescued_d.data());
          size_t rank = rank_base + qc + q;
          for (size_t t = 0; t < rescue.size(); ++t) {
            size_t row = rescue[t];
            double d = rescued_d[t];
            if (d < dist[row]) {
              dist[row] = d;
              if (!assignment.empty()) assignment[row] = rank;
              thr[row - rb] = SkipThreshold(d, bound.abs, inv_rel);
            }
          }
        }
      }
      for (size_t i = rb; i < rb + rn; ++i) {
        if (dist[i] > local_val) {
          local_val = dist[i];
          local_best = i;
        }
      }
    }
    range_best[lo / grain] = local_best;
  });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

size_t ScreenedRelaxArgFarthest(const Metric& metric, const Dataset& queries,
                                size_t q_index, const Dataset& data,
                                std::span<double> dist,
                                std::span<size_t> assignment,
                                size_t center_rank) {
  DIVERSE_CHECK_LT(q_index, queries.size());
  if (!UseScreening(metric) || !SingleQueryScreenWorthwhile(data) ||
      !metric.ScreeningProfitableFor(queries, data)) {
    return metric.RelaxAndArgFarthest(queries.point(q_index), data, dist,
                                      assignment, center_rank);
  }
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  const ScreenBound bound = metric.ScreenErrorBound(queries, data);
  if (!(bound.rel < 1.0)) {  // degenerate bound: the transform would invert
    return metric.RelaxAndArgFarthest(queries.point(q_index), data, dist,
                                      assignment, center_rank);
  }
  const Point& query = queries.point(q_index);
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  constexpr size_t kChunk = 512;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(n, grain, [&](size_t lo, size_t hi) {
    thread_local std::vector<float> buf;
    thread_local std::vector<float> thr;
    thread_local std::vector<uint32_t> rescue;
    thread_local std::vector<double> rescued_d;
    size_t local_best = lo;
    double local_val = -std::numeric_limits<double>::infinity();
    for (size_t c0 = lo; c0 < hi; c0 += kChunk) {
      size_t cn = std::min(kChunk, hi - c0);
      buf.resize(cn);
      thr.resize(cn);
      metric.DistanceToManyF32(query, data, c0,
                               std::span<float>(buf.data(), cn));
      for (size_t i = 0; i < cn; ++i) {
        thr[i] = SkipThreshold(dist[c0 + i], bound.abs, inv_rel);
      }
      rescue.clear();
      CollectRescues(buf.data(), thr.data(), cn, static_cast<uint32_t>(c0),
                     rescue);
      if (!rescue.empty()) {
        rescued_d.resize(rescue.size());
        metric.DistanceRowsMany(queries, q_index, data, rescue,
                                rescued_d.data());
        for (size_t t = 0; t < rescue.size(); ++t) {
          size_t row = rescue[t];
          if (rescued_d[t] < dist[row]) {
            dist[row] = rescued_d[t];
            if (!assignment.empty()) assignment[row] = center_rank;
          }
        }
      }
      for (size_t i = c0; i < c0 + cn; ++i) {
        if (dist[i] > local_val) {
          local_val = dist[i];
          local_best = i;
        }
      }
    }
    range_best[lo / grain] = local_best;
  });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

size_t ScreenedArgClosest(const Metric& metric, const Point& query,
                          const Dataset& data, double* min_dist) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(n, 1u);
  if (!UseScreening(metric) || !SingleQueryScreenWorthwhile(data) ||
      !metric.ScreeningProfitableFor(query, data)) {
    thread_local std::vector<double> d;
    d.resize(n);
    metric.DistanceToMany(query, data, 0, std::span<double>(d.data(), n));
    size_t best = 0;
    double best_val = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (d[i] < best_val) {
        best_val = d[i];
        best = i;
      }
    }
    if (min_dist != nullptr) *min_dist = best_val;
    return best;
  }
  const ScreenBound bound = metric.ScreenErrorBound(query, data);
  thread_local std::vector<float> s;
  s.resize(n);
  metric.DistanceToManyF32(query, data, 0, std::span<float>(s.data(), n));
  // Every index whose certified lower bound is at or below the smallest
  // certified upper bound could be (or tie) the minimum; the true argmin is
  // always among them, and no skipped index can match the minimum (its
  // lower bound strictly exceeds it), so the first-strict-min scan over the
  // rescued indices in ascending order picks the same index as the exact
  // sweep.
  double best_upper = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    best_upper = std::min(best_upper, ScreenedUpper(s[i], bound));
  }
  size_t best = n;
  double best_val = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    if (ScreenedLower(s[i], bound) > best_upper) continue;
    double d = metric.Distance(query, data.point(i));
    if (d < best_val) {
      best_val = d;
      best = i;
    }
  }
  DIVERSE_CHECK_LT(best, n);
  if (min_dist != nullptr) *min_dist = best_val;
  return best;
}

size_t ScreenedFirstWithin(const Metric& metric, const Point& query,
                           const Dataset& data, double threshold) {
  size_t n = data.size();
  constexpr size_t kChunk = 16;
  if (!UseScreening(metric) || !SingleQueryScreenWorthwhile(data) ||
      !metric.ScreeningProfitableFor(query, data)) {
    double buf[kChunk];
    for (size_t b = 0; b < n; b += kChunk) {
      size_t bn = std::min(kChunk, n - b);
      metric.DistanceToMany(query, data, b, std::span<double>(buf, bn));
      for (size_t i = 0; i < bn; ++i) {
        if (buf[i] <= threshold) return b + i;
      }
    }
    return n;
  }
  const ScreenBound bound = metric.ScreenErrorBound(query, data);
  float buf[kChunk];
  for (size_t b = 0; b < n; b += kChunk) {
    size_t bn = std::min(kChunk, n - b);
    metric.DistanceToManyF32(query, data, b, std::span<float>(buf, bn));
    for (size_t i = 0; i < bn; ++i) {
      if (ScreenedUpper(buf[i], bound) <= threshold) return b + i;
      if (ScreenedLower(buf[i], bound) > threshold) continue;
      if (metric.Distance(query, data.point(b + i)) <= threshold) {
        return b + i;
      }
    }
  }
  return n;
}

}  // namespace diverse
