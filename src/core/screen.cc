#include "core/screen.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

#if defined(__x86_64__) && defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace diverse {

namespace {

std::atomic<bool> g_screening_enabled{true};

// Same grain rule as the exact batched sweeps (core/metric.cc): a fixed
// amount of coordinate work per range, boundaries a function of (n, grain)
// only. The screened argmax combines ranges ascending with strict
// comparisons, so — like the exact path — ties resolve to the globally
// first index no matter how the ranges are cut.
constexpr size_t kGrainOps = 16384;
constexpr size_t kMinGrainRows = 256;

size_t GrainRows(const Dataset& data) {
  size_t dim = std::max<size_t>(data.dim(), 1);
  return std::max(kMinGrainRows, kGrainOps / dim);
}

// Single-query *relax* sweeps (GMM's per-center loop) still gate on per-row
// coordinate work: their fp32 pass re-reads a materialized buffer and the
// rescue band stays populated throughout the k-step trajectory, so below
// ~8 coords per row the screen only ties the exact sweep. The fused SMM
// sweeps (ScreenedArgClosest / ScreenedArgClosestWithin /
// ScreenedFirstWithin) carry no such gate: their skip path is one float
// compare against precomputed cutoffs, profitable at any dimension. The
// decision reads only dataset statistics — deterministic, and either
// verdict is bit-identical.
bool SingleQueryScreenWorthwhile(const Dataset& data) {
  size_t work = data.has_dense_rows() ? data.dim() : 0;
  const Dataset::SparseStats& ss = data.sparse_stats();
  if (ss.rows > 0) {
    work = std::max(work, static_cast<size_t>(2.0 * ss.AvgNnz()));
  }
  return work >= 8;
}

// Exact (unscreened) first-strict-argmin sweep — the fallback of the fused
// nearest-center sweeps.
size_t ExactArgClosest(const Metric& metric, const Point& query,
                       const Dataset& data, double* min_dist) {
  size_t n = data.size();
  thread_local std::vector<double> d;
  d.resize(n);
  metric.DistanceToMany(query, data, 0, std::span<double>(d.data(), n));
  size_t best = 0;
  double best_val = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    if (d[i] < best_val) {
      best_val = d[i];
      best = i;
    }
  }
  if (min_dist != nullptr) *min_dist = best_val;
  return best;
}

}  // namespace

void CollectScreenRescues(const float* t, const float* thr, size_t count,
                          uint32_t base, std::vector<uint32_t>& out) {
  const float flt_max = std::numeric_limits<float>::max();
  size_t i = 0;
#if defined(__x86_64__) && defined(__SSE2__)
  // The SSE2 fast path tests four lanes per compare and decodes lanes only
  // when at least one of the four rescues — on realistic sweeps the vast
  // majority of quads skip in two packed compares.
  const __m128 vmax = _mm_set1_ps(flt_max);
  for (; i + 4 <= count; i += 4) {
    __m128 tv = _mm_loadu_ps(t + i);
    __m128 skip = _mm_and_ps(_mm_cmpgt_ps(tv, _mm_loadu_ps(thr + i)),
                             _mm_cmple_ps(tv, vmax));
    int mask = _mm_movemask_ps(skip);
    if (mask == 0xF) continue;
    for (uint32_t j = 0; j < 4; ++j) {
      if ((mask & (1 << j)) == 0) {
        out.push_back(base + static_cast<uint32_t>(i) + j);
      }
    }
  }
#endif
  for (; i < count; ++i) {
    float v = t[i];
    if (v > thr[i] && v <= flt_max) continue;
    out.push_back(base + static_cast<uint32_t>(i));
  }
}

bool ScreeningEnabled() {
  return g_screening_enabled.load(std::memory_order_relaxed);
}

void SetScreeningEnabled(bool enabled) {
  g_screening_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedScreening::ScopedScreening(bool enabled) : prev_(ScreeningEnabled()) {
  SetScreeningEnabled(enabled);
}

ScopedScreening::~ScopedScreening() { SetScreeningEnabled(prev_); }

bool UseScreening(const Metric& metric) {
  return ScreeningEnabled() && metric.ScreeningProfitable();
}

size_t ScreenedRelaxTilesAndArgFarthest(const Metric& metric,
                                        const Dataset& queries, size_t q_begin,
                                        size_t nq, size_t rank_base,
                                        const Dataset& data,
                                        std::span<double> dist,
                                        std::span<size_t> assignment) {
  if (!UseScreening(metric) ||
      !metric.RelaxTileScreeningProfitableFor(queries, data)) {
    return RelaxTilesAndArgFarthest(metric, queries, q_begin, nq, rank_base,
                                    data, dist, assignment);
  }
  size_t n = data.size();
  DIVERSE_CHECK_GE(nq, 1u);
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  // One bound for the whole sweep; reading it also builds both datasets'
  // lazy screen stats on this thread, before the parallel fan-out. A
  // degenerate bound (rel >= 1 — possible only at astronomical term
  // counts) would invert the skip-threshold transform, so such sweeps run
  // exact instead.
  const ScreenBound bound = metric.ScreenErrorBound(queries, data);
  if (!(bound.rel < 1.0)) {
    return RelaxTilesAndArgFarthest(metric, queries, q_begin, nq, rank_base,
                                    data, dist, assignment);
  }

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(n, grain, [&](size_t lo, size_t hi) {
    // The whole screen + relax + rescue loop for this row range runs inside
    // the metric's fused kernel — no intermediate fp32 tile for the dense
    // metrics, cosine-space thresholds for all-sparse cosine tiles, and
    // the unfused materialize-then-collect fallback otherwise.
    metric.ScreenedRelaxTile(queries, q_begin, nq, rank_base, data, lo,
                             hi - lo, bound, dist, assignment);
    size_t local_best = lo;
    double local_val = -std::numeric_limits<double>::infinity();
    for (size_t i = lo; i < hi; ++i) {
      if (dist[i] > local_val) {
        local_val = dist[i];
        local_best = i;
      }
    }
    range_best[lo / grain] = local_best;
  });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

size_t ScreenedRelaxArgFarthest(const Metric& metric, const Dataset& queries,
                                size_t q_index, const Dataset& data,
                                std::span<double> dist,
                                std::span<size_t> assignment,
                                size_t center_rank) {
  DIVERSE_CHECK_LT(q_index, queries.size());
  if (!UseScreening(metric) || !SingleQueryScreenWorthwhile(data) ||
      !metric.ScreeningProfitableFor(queries, data)) {
    return metric.RelaxAndArgFarthest(queries.point(q_index), data, dist,
                                      assignment, center_rank);
  }
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  const ScreenBound bound = metric.ScreenErrorBound(queries, data);
  if (!(bound.rel < 1.0)) {  // degenerate bound: the transform would invert
    return metric.RelaxAndArgFarthest(queries.point(q_index), data, dist,
                                      assignment, center_rank);
  }
  const Point& query = queries.point(q_index);
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  constexpr size_t kChunk = 512;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(n, grain, [&](size_t lo, size_t hi) {
    thread_local std::vector<float> buf;
    thread_local std::vector<float> thr;
    thread_local std::vector<uint32_t> rescue;
    thread_local std::vector<double> rescued_d;
    size_t local_best = lo;
    double local_val = -std::numeric_limits<double>::infinity();
    for (size_t c0 = lo; c0 < hi; c0 += kChunk) {
      size_t cn = std::min(kChunk, hi - c0);
      buf.resize(cn);
      thr.resize(cn);
      metric.DistanceToManyF32(query, data, c0,
                               std::span<float>(buf.data(), cn));
      for (size_t i = 0; i < cn; ++i) {
        thr[i] = ScreenSkipThreshold(dist[c0 + i], bound.abs, inv_rel);
      }
      rescue.clear();
      CollectScreenRescues(buf.data(), thr.data(), cn,
                           static_cast<uint32_t>(c0), rescue);
      if (!rescue.empty()) {
        rescued_d.resize(rescue.size());
        metric.DistanceRowsMany(queries, q_index, data, rescue,
                                rescued_d.data());
        for (size_t t = 0; t < rescue.size(); ++t) {
          size_t row = rescue[t];
          if (rescued_d[t] < dist[row]) {
            dist[row] = rescued_d[t];
            if (!assignment.empty()) assignment[row] = center_rank;
          }
        }
      }
      for (size_t i = c0; i < c0 + cn; ++i) {
        if (dist[i] > local_val) {
          local_val = dist[i];
          local_best = i;
        }
      }
    }
    range_best[lo / grain] = local_best;
  });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

ScreenedNearest ScreenedArgClosestWithin(const Metric& metric,
                                         const Point& query,
                                         const Dataset& data,
                                         double cover_threshold) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(n, 1u);
  DIVERSE_CHECK_GE(cover_threshold, 0.0);
  ScreenedNearest out;
  if (!UseScreening(metric) || !metric.ScreeningProfitableFor(query, data)) {
    out.index = ExactArgClosest(metric, query, data, &out.dist);
    return out;
  }
  const ScreenBound bound = metric.ScreenErrorBound(query, data);
  if (!(bound.rel < 1.0)) {
    out.index = ExactArgClosest(metric, query, data, &out.dist);
    return out;
  }
  const float flt_max = std::numeric_limits<float>::max();
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  thread_local std::vector<float> s;
  s.resize(n);
  metric.DistanceToManyF32(query, data, 0, std::span<float>(s.data(), n));
  // Smallest finite screened value; non-finite values (overflowed fp32
  // accumulators) certify nothing and keep every certificate off.
  float smin = std::numeric_limits<float>::infinity();
  bool any_nonfinite = false;
  for (size_t i = 0; i < n; ++i) {
    float v = s[i];
    if (v >= -flt_max && v <= flt_max) {
      smin = std::min(smin, v);
    } else {
      any_nonfinite = true;
    }
  }
  // Coverage certificate: when every row's certified lower bound clears the
  // cover threshold, the caller's coverage decision is settled with zero
  // exact evaluations (the skip-threshold transform is exactly the
  // "certify exact > t" test, applied with t = cover_threshold).
  float beyond = ScreenSkipThreshold(cover_threshold, bound.abs, inv_rel);
  if (!any_nonfinite && smin > beyond) {
    out.beyond = true;
    return out;
  }
  // Argmin: every index whose certified lower bound is at or below the
  // smallest certified upper bound could be (or tie) the minimum; the true
  // argmin is always among them, and no skipped index can match the
  // minimum (its lower bound strictly exceeds it), so the first-strict-min
  // scan over the candidates in ascending order picks the same index as
  // the exact sweep. Both transforms are monotone in the screened value,
  // so the candidate test is one float compare against a precomputed
  // cutoff.
  double min_upper = ScreenedUpper(smin, bound);
  float candidate_cutoff =
      NextUpNonNegativeF32(static_cast<float>((min_upper + bound.abs) *
                                              inv_rel));
  size_t best = n;
  double best_val = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    float v = s[i];
    bool finite = v >= -flt_max && v <= flt_max;
    if (finite && v > candidate_cutoff) continue;
    double d = metric.Distance(query, data.point(i));
    if (d < best_val) {
      best_val = d;
      best = i;
    }
  }
  DIVERSE_CHECK_LT(best, n);
  out.index = best;
  out.dist = best_val;
  return out;
}

size_t ScreenedArgClosest(const Metric& metric, const Point& query,
                          const Dataset& data, double* min_dist) {
  // +inf cover threshold: the coverage certificate can never fire, so this
  // is the plain fused screened argmin.
  ScreenedNearest r = ScreenedArgClosestWithin(
      metric, query, data, std::numeric_limits<double>::infinity());
  if (min_dist != nullptr) *min_dist = r.dist;
  return r.index;
}

size_t ScreenedFirstWithin(const Metric& metric, const Point& query,
                           const Dataset& data, double threshold) {
  size_t n = data.size();
  constexpr size_t kChunk = 16;
  if (!UseScreening(metric) || !metric.ScreeningProfitableFor(query, data)) {
    double buf[kChunk];
    for (size_t b = 0; b < n; b += kChunk) {
      size_t bn = std::min(kChunk, n - b);
      metric.DistanceToMany(query, data, b, std::span<double>(buf, bn));
      for (size_t i = 0; i < bn; ++i) {
        if (buf[i] <= threshold) return b + i;
      }
    }
    return n;
  }
  if (threshold < 0.0) return n;  // distances are nonnegative; nothing fits
  const ScreenBound bound = metric.ScreenErrorBound(query, data);
  if (!(bound.rel < 1.0)) {
    double buf[kChunk];
    for (size_t b = 0; b < n; b += kChunk) {
      size_t bn = std::min(kChunk, n - b);
      metric.DistanceToMany(query, data, b, std::span<double>(buf, bn));
      for (size_t i = 0; i < bn; ++i) {
        if (buf[i] <= threshold) return b + i;
      }
    }
    return n;
  }
  // Two precomputed float cutoffs replace the per-row double bound
  // transforms: s <= within certifies d < threshold (qualify), a finite
  // s > beyond certifies d > threshold (skip), and only band hits pay an
  // exact evaluation. Chunked so a merge-heavy scan keeps its early exit.
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  const float within = ScreenCertifiedBelow(threshold, bound);
  const float beyond = ScreenSkipThreshold(threshold, bound.abs, inv_rel);
  const float flt_max = std::numeric_limits<float>::max();
  float buf[kChunk];
  for (size_t b = 0; b < n; b += kChunk) {
    size_t bn = std::min(kChunk, n - b);
    metric.DistanceToManyF32(query, data, b, std::span<float>(buf, bn));
    for (size_t i = 0; i < bn; ++i) {
      float v = buf[i];
      if (v >= -flt_max && v <= within) return b + i;
      if (v > beyond && v <= flt_max) continue;
      if (metric.Distance(query, data.point(b + i)) <= threshold) {
        return b + i;
      }
    }
  }
  return n;
}

}  // namespace diverse
