#include "core/exact.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace diverse {

namespace {

// Invokes `fn(subset)` for every k-subset of {0..n-1}, reusing one buffer.
template <typename Fn>
void ForEachSubset(size_t n, size_t k, Fn fn) {
  std::vector<size_t> subset(k);
  for (size_t i = 0; i < k; ++i) subset[i] = i;
  for (;;) {
    fn(subset);
    // Advance to the next combination in lexicographic order.
    size_t i = k;
    while (i > 0) {
      --i;
      if (subset[i] != i + n - k) {
        ++subset[i];
        for (size_t j = i + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

constexpr size_t kMaxExactN = 24;

}  // namespace

ExactResult ExactDiversityMaximization(DiversityProblem problem,
                                       const DistanceMatrix& d, size_t k) {
  size_t n = d.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);
  DIVERSE_CHECK_LE(n, kMaxExactN);

  ExactResult result;
  result.value = -std::numeric_limits<double>::infinity();
  ForEachSubset(n, k, [&](const std::vector<size_t>& subset) {
    double v = EvaluateDiversity(problem, d.Restrict(subset));
    if (v > result.value) {
      result.value = v;
      result.best_subset = subset;
    }
  });
  return result;
}

ExactResult ExactDiversityMaximization(DiversityProblem problem,
                                       std::span<const Point> points,
                                       const Metric& metric, size_t k) {
  return ExactDiversityMaximization(problem, DistanceMatrix(points, metric),
                                    k);
}

double ExactOptimalRange(const DistanceMatrix& d, size_t k) {
  size_t n = d.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);
  DIVERSE_CHECK_LE(n, kMaxExactN);

  double best = std::numeric_limits<double>::infinity();
  ForEachSubset(n, k, [&](const std::vector<size_t>& subset) {
    double range = 0.0;
    for (size_t p = 0; p < n; ++p) {
      double dist = std::numeric_limits<double>::infinity();
      for (size_t c : subset) dist = std::min(dist, d.at(p, c));
      range = std::max(range, dist);
    }
    best = std::min(best, range);
  });
  return best;
}

double ExactOptimalFarness(const DistanceMatrix& d, size_t k) {
  size_t n = d.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);
  DIVERSE_CHECK_LE(n, kMaxExactN);
  if (k < 2) {
    // A single point has farness 0 by the minimum-over-empty convention used
    // by Farness(); keep the two solvers consistent.
    return 0.0;
  }

  double best = 0.0;
  ForEachSubset(n, k, [&](const std::vector<size_t>& subset) {
    double farness = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < subset.size(); ++i) {
      for (size_t j = i + 1; j < subset.size(); ++j) {
        farness = std::min(farness, d.at(subset[i], subset[j]));
      }
    }
    best = std::max(best, farness);
  });
  return best;
}

}  // namespace diverse
