#include "core/gmm.h"

#include <algorithm>
#include <limits>

#include "core/cover_tree.h"
#include "core/screen.h"
#include "util/check.h"

namespace diverse {

namespace {

// The k-sequential-sweep path: one screened relax-and-argmax sweep over all
// n rows per selected center. The public Gmm below routes here whenever the
// metric index is off, unsupported, or gated unprofitable.
GmmResult GmmFlat(const Dataset& data, const Metric& metric, size_t k,
                  size_t first) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);
  DIVERSE_CHECK_LT(first, n);

  GmmResult result;
  result.selected.reserve(k);
  result.selection_distance.reserve(k);
  result.assignment.assign(n, 0);
  result.distance_to_selected.assign(n,
                                     std::numeric_limits<double>::infinity());

  size_t current = first;
  result.selected.push_back(current);
  result.selection_distance.push_back(
      std::numeric_limits<double>::infinity());

  std::span<double> dist(result.distance_to_selected);
  std::span<size_t> assignment(result.assignment);
  for (size_t step = 1; step <= k; ++step) {
    // Relax distances against the most recently added center and pick the
    // farthest point as the next center, in one fused sweep per step. The
    // sweep is screened (fp32 pass + exact rescue of rows the new center
    // could improve — the center is a dataset row, so the rescue runs on
    // columnar views); selections, trajectories, and the final range are
    // bit-identical to the exact path, which it falls back to when
    // screening is off or the per-row work gate of core/screen.cc says a
    // single-query screen cannot pay (the multi-center tile sweeps have no
    // such gate — their fused kernel amortizes across the center block).
    size_t farthest = ScreenedRelaxArgFarthest(
        metric, data, current, data, dist, assignment,
        result.selected.size() - 1);
    double farthest_dist = result.distance_to_selected[farthest];
    if (step == k) {
      result.range = farthest_dist;
      break;
    }
    result.selected.push_back(farthest);
    result.selection_distance.push_back(farthest_dist);
    current = farthest;
  }
  return result;
}

}  // namespace

GmmResult Gmm(const Dataset& data, const Metric& metric, size_t k,
              size_t first) {
  // Third screening tier: when the metric satisfies the triangle inequality
  // and the deterministic probe says the corpus has low doubling dimension,
  // build the metric index once and run the lazy-greedy traversal — bit-
  // identical selections, trajectories, assignments, and range, with per-
  // step work proportional to the contended frontier instead of n.
  if (UseIndexing(metric) && IndexProfitable(data, metric, k)) {
    CoverTree tree = CoverTree::Build(data, metric);
    return LazyGreedyGmm(data, tree, metric, k, first);
  }
  return GmmFlat(data, metric, k, first);
}

GmmResult Gmm(std::span<const Point> points, const Metric& metric, size_t k,
              size_t first) {
  return Gmm(Dataset::FromPoints(points), metric, k, first);
}

GmmResult GmmScalar(std::span<const Point> points, const Metric& metric,
                    size_t k, size_t first) {
  size_t n = points.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);
  DIVERSE_CHECK_LT(first, n);

  GmmResult result;
  result.selected.reserve(k);
  result.selection_distance.reserve(k);
  result.assignment.assign(n, 0);
  result.distance_to_selected.assign(n,
                                     std::numeric_limits<double>::infinity());

  size_t current = first;
  result.selected.push_back(current);
  result.selection_distance.push_back(
      std::numeric_limits<double>::infinity());

  for (size_t step = 1; step <= k; ++step) {
    // Relax distances against the most recently added center, then pick the
    // farthest point as the next center. One pass per step: O(k n) total.
    const Point& c = points[current];
    size_t farthest = current;
    double farthest_dist = -1.0;
    for (size_t i = 0; i < n; ++i) {
      double dist = metric.Distance(points[i], c);
      if (dist < result.distance_to_selected[i]) {
        result.distance_to_selected[i] = dist;
        result.assignment[i] = result.selected.size() - 1;
      }
      if (result.distance_to_selected[i] > farthest_dist) {
        farthest_dist = result.distance_to_selected[i];
        farthest = i;
      }
    }
    if (step == k) {
      result.range = farthest_dist;
      break;
    }
    result.selected.push_back(farthest);
    result.selection_distance.push_back(farthest_dist);
    current = farthest;
  }
  return result;
}

double Farness(std::span<const Point> points, const Metric& metric,
               std::span<const size_t> subset) {
  if (subset.size() < 2) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < subset.size(); ++i) {
    for (size_t j = i + 1; j < subset.size(); ++j) {
      best = std::min(best,
                      metric.Distance(points[subset[i]], points[subset[j]]));
    }
  }
  return best;
}

}  // namespace diverse
