// Test/bench support: the pre-fusion screened baseline.
//
// UnfusedScreenMetric forwards every kernel to a wrapped metric but
// deliberately does NOT override Metric::ScreenedRelaxTile, so screened
// tile sweeps over it run the BASE materialize-then-collect loop (fp32
// tile through DistanceTileF32 + CollectScreenRescues + batched
// DistanceRowsMany) on the wrapped metric's fp32 kernels. screen_test
// pins the fused kernels' results and exact-eval accounting against it,
// and BM_FusedScreenRelaxDenseUnfused reports its timing as the fused
// speedup's denominator. Not used by any production path.

#ifndef DIVERSE_CORE_UNFUSED_SCREEN_METRIC_H_
#define DIVERSE_CORE_UNFUSED_SCREEN_METRIC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "core/metric.h"
#include "core/point.h"

namespace diverse {

class UnfusedScreenMetric final : public Metric {
 public:
  /// Wraps `base`, which must outlive this object.
  explicit UnfusedScreenMetric(const Metric* base) : base_(base) {}

  double Distance(const Point& a, const Point& b) const override {
    return base_->Distance(a, b);
  }
  void DistanceToMany(const Point& query, const Dataset& data, size_t begin,
                      std::span<double> out) const override {
    base_->DistanceToMany(query, data, begin, out);
  }
  void DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                    const Dataset& data, size_t r_begin, size_t nr,
                    double* out, size_t out_stride) const override {
    base_->DistanceTile(queries, q_begin, nq, data, r_begin, nr, out,
                        out_stride);
  }
  void DistanceTileF32(const Dataset& queries, size_t q_begin, size_t nq,
                       const Dataset& data, size_t r_begin, size_t nr,
                       float* out, size_t out_stride) const override {
    base_->DistanceTileF32(queries, q_begin, nq, data, r_begin, nr, out,
                           out_stride);
  }
  void DistanceToManyF32(const Point& query, const Dataset& data,
                         size_t begin, std::span<float> out) const override {
    base_->DistanceToManyF32(query, data, begin, out);
  }
  double DistanceRows(const Dataset& a, size_t i, const Dataset& b,
                      size_t j) const override {
    return base_->DistanceRows(a, i, b, j);
  }
  void DistanceRowsMany(const Dataset& a, size_t i, const Dataset& b,
                        std::span<const uint32_t> rows,
                        double* out) const override {
    base_->DistanceRowsMany(a, i, b, rows, out);
  }
  // ScreenedRelaxTile deliberately NOT overridden: the base unfused loop
  // is the point of this wrapper.
  ScreenBound ScreenErrorBound(const Dataset& queries,
                               const Dataset& data) const override {
    return base_->ScreenErrorBound(queries, data);
  }
  ScreenBound ScreenErrorBound(const Point& query,
                               const Dataset& data) const override {
    return base_->ScreenErrorBound(query, data);
  }
  bool ScreeningProfitable() const override {
    return base_->ScreeningProfitable();
  }
  bool ScreeningProfitableFor(const Dataset& queries,
                              const Dataset& data) const override {
    return base_->ScreeningProfitableFor(queries, data);
  }
  bool ScreeningProfitableFor(const Point& query,
                              const Dataset& data) const override {
    return base_->ScreeningProfitableFor(query, data);
  }
  bool RelaxTileScreeningProfitableFor(const Dataset& queries,
                                       const Dataset& data) const override {
    return base_->RelaxTileScreeningProfitableFor(queries, data);
  }
  std::string Name() const override {
    return "unfused(" + base_->Name() + ")";
  }

 private:
  const Metric* base_;
};

}  // namespace diverse

#endif  // DIVERSE_CORE_UNFUSED_SCREEN_METRIC_H_
