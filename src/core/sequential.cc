#include "core/sequential.h"

#include <algorithm>
#include <limits>

#include "core/gmm.h"
#include "util/check.h"

namespace diverse {

std::vector<size_t> GmmOnMatrix(const DistanceMatrix& d, size_t k,
                                size_t first) {
  size_t n = d.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);
  DIVERSE_CHECK_LT(first, n);

  std::vector<size_t> selected;
  selected.reserve(k);
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  size_t current = first;
  selected.push_back(current);
  while (selected.size() < k) {
    size_t farthest = current;
    double farthest_dist = -1.0;
    for (size_t i = 0; i < n; ++i) {
      dist[i] = std::min(dist[i], d.at(i, current));
      if (dist[i] > farthest_dist) {
        farthest_dist = dist[i];
        farthest = i;
      }
    }
    selected.push_back(farthest);
    current = farthest;
  }
  return selected;
}

std::vector<size_t> GreedyMatchingOnMatrix(const DistanceMatrix& d, size_t k) {
  size_t n = d.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);

  std::vector<size_t> chosen;
  chosen.reserve(k);
  std::vector<bool> used(n, false);
  while (chosen.size() + 1 < k) {
    // Heaviest unused pair.
    size_t best_i = n, best_j = n;
    double best = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (used[j]) continue;
        if (d.at(i, j) > best) {
          best = d.at(i, j);
          best_i = i;
          best_j = j;
        }
      }
    }
    DIVERSE_CHECK_LT(best_i, n);
    used[best_i] = used[best_j] = true;
    chosen.push_back(best_i);
    chosen.push_back(best_j);
  }
  if (chosen.size() < k) {
    // Odd k: add the unused point with the largest distance sum to the
    // chosen set (any point preserves the approximation bound; this choice
    // helps in practice).
    size_t best_i = n;
    double best = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      double s = 0.0;
      for (size_t c : chosen) s += d.at(i, c);
      if (s > best) {
        best = s;
        best_i = i;
      }
    }
    DIVERSE_CHECK_LT(best_i, n);
    chosen.push_back(best_i);
  }
  return chosen;
}

std::vector<size_t> GreedyMatchingOnDataset(const Dataset& data,
                                            const Metric& metric, size_t k) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);

  std::vector<size_t> chosen;
  chosen.reserve(k);
  std::vector<bool> used(n, false);

  // One O(n^2) scan collects the heaviest kBuffer pairs; the greedy loop
  // then consumes the heaviest pair whose endpoints are both unused. Exact:
  // a chosen pair only removes 2 points, so the next heaviest *surviving*
  // pair is the true global maximum; if the buffer runs dry (pathological
  // overlap among the top pairs), it is refilled with a fresh scan over the
  // unused points. This turns k/2 quadratic scans into ~1.
  struct Pair {
    double dist;
    size_t i, j;
    bool operator<(const Pair& other) const { return dist < other.dist; }
  };
  const size_t buffer_cap = std::max<size_t>(4 * k * k, 64);
  std::vector<Pair> heap;  // min-heap of the current top pairs
  heap.reserve(buffer_cap + 1);
  std::vector<double> row_dist(n > 0 ? n - 1 : 0);
  auto scan = [&] {
    heap.clear();
    // The initial scan (no rows used yet) runs as batched suffix sweeps:
    // distances from row i to all rows j > i in one devirtualized pass over
    // the columnar storage. Rare refill scans fall back to the scalar
    // skip-used loop so no distances to dead rows are evaluated (or
    // counted) — exactly the pre-batching cost.
    bool batched = chosen.empty();
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      std::span<double> suffix(row_dist.data(), n - i - 1);
      if (batched) {
        metric.DistanceToMany(data.point(i), data, i + 1, suffix);
      }
      for (size_t j = i + 1; j < n; ++j) {
        if (used[j]) continue;
        double dist = batched
                          ? suffix[j - i - 1]
                          : metric.Distance(data.point(i), data.point(j));
        if (heap.size() < buffer_cap) {
          heap.push_back({dist, i, j});
          std::push_heap(heap.begin(), heap.end(),
                         [](const Pair& a, const Pair& b) { return b < a; });
        } else if (dist > heap.front().dist) {
          std::pop_heap(heap.begin(), heap.end(),
                        [](const Pair& a, const Pair& b) { return b < a; });
          heap.back() = {dist, i, j};
          std::push_heap(heap.begin(), heap.end(),
                         [](const Pair& a, const Pair& b) { return b < a; });
        }
      }
    }
    // Sort descending by distance for in-order consumption.
    std::sort(heap.begin(), heap.end(),
              [](const Pair& a, const Pair& b) { return b < a; });
  };
  scan();
  size_t cursor = 0;
  while (chosen.size() + 1 < k) {
    while (cursor < heap.size() &&
           (used[heap[cursor].i] || used[heap[cursor].j])) {
      ++cursor;
    }
    if (cursor == heap.size()) {
      scan();
      cursor = 0;
      DIVERSE_CHECK_LT(cursor, heap.size());
      continue;
    }
    used[heap[cursor].i] = used[heap[cursor].j] = true;
    chosen.push_back(heap[cursor].i);
    chosen.push_back(heap[cursor].j);
  }
  if (chosen.size() < k) {
    size_t best_i = n;
    double best = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      double s = 0.0;
      for (size_t c : chosen) {
        s += metric.Distance(data.point(i), data.point(c));
      }
      if (s > best) {
        best = s;
        best_i = i;
      }
    }
    DIVERSE_CHECK_LT(best_i, n);
    chosen.push_back(best_i);
  }
  return chosen;
}

std::vector<size_t> GreedyMatchingOnPoints(std::span<const Point> points,
                                           const Metric& metric, size_t k) {
  return GreedyMatchingOnDataset(Dataset::FromPoints(points), metric, k);
}

std::vector<size_t> SolveSequentialOnMatrix(DiversityProblem problem,
                                            const DistanceMatrix& d,
                                            size_t k) {
  switch (problem) {
    case DiversityProblem::kRemoteEdge:
    case DiversityProblem::kRemoteTree:
    case DiversityProblem::kRemoteCycle:
      return GmmOnMatrix(d, k);
    case DiversityProblem::kRemoteClique:
    case DiversityProblem::kRemoteStar:
    case DiversityProblem::kRemoteBipartition:
      return GreedyMatchingOnMatrix(d, k);
  }
  return {};
}

std::vector<size_t> SolveSequential(DiversityProblem problem,
                                    const Dataset& data, const Metric& metric,
                                    size_t k) {
  switch (problem) {
    case DiversityProblem::kRemoteEdge:
    case DiversityProblem::kRemoteTree:
    case DiversityProblem::kRemoteCycle:
      return Gmm(data, metric, k).selected;
    case DiversityProblem::kRemoteClique:
    case DiversityProblem::kRemoteStar:
    case DiversityProblem::kRemoteBipartition:
      return GreedyMatchingOnDataset(data, metric, k);
  }
  return {};
}

std::vector<size_t> SolveSequential(DiversityProblem problem,
                                    std::span<const Point> points,
                                    const Metric& metric, size_t k) {
  return SolveSequential(problem, Dataset::FromPoints(points), metric, k);
}

std::vector<size_t> LocalSearchRemoteClique(std::span<const Point> points,
                                            const Metric& metric,
                                            std::vector<size_t> initial,
                                            size_t max_sweeps,
                                            LocalSearchScan scan) {
  size_t n = points.size();
  size_t k = initial.size();
  DIVERSE_CHECK_GE(k, 1u);
  std::vector<size_t> current = std::move(initial);
  std::vector<bool> in_set(n, false);
  for (size_t idx : current) {
    DIVERSE_CHECK_LT(idx, n);
    in_set[idx] = true;
  }

  // contribution[c] = sum of distances from current[c] to the rest of the
  // set; swapping current[c] for q changes the objective by
  // sum_d(q, set minus current[c]) - contribution[c].
  std::vector<double> contribution(k, 0.0);
  auto recompute = [&] {
    for (size_t a = 0; a < k; ++a) {
      double s = 0.0;
      for (size_t b = 0; b < k; ++b) {
        if (a != b) s += metric.Distance(points[current[a]], points[current[b]]);
      }
      contribution[a] = s;
    }
  };
  recompute();

  std::vector<double> dq(k);
  // Evaluates candidate q and applies the best improving swap, if any.
  auto try_swap = [&](size_t q) {
    if (in_set[q]) return false;
    double total = 0.0;
    for (size_t a = 0; a < k; ++a) {
      dq[a] = metric.Distance(points[q], points[current[a]]);
      total += dq[a];
    }
    // Best member to evict: the one whose removal keeps the most of q's
    // contribution while dropping the least of its own.
    size_t best_a = k;
    double best_delta = 1e-9;
    for (size_t a = 0; a < k; ++a) {
      double delta = (total - dq[a]) - contribution[a];
      if (delta > best_delta) {
        best_delta = delta;
        best_a = a;
      }
    }
    if (best_a == k) return false;
    in_set[current[best_a]] = false;
    in_set[q] = true;
    current[best_a] = q;
    recompute();
    return true;
  };

  if (scan == LocalSearchScan::kContinue) {
    for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
      bool improved = false;
      for (size_t q = 0; q < n; ++q) improved |= try_swap(q);
      if (!improved) break;
    }
    return current;
  }

  // kRestart: the literal published local search — every candidate swap
  // (q in, current[a] out) is evaluated by recomputing the objective of the
  // swapped set from scratch (O(k^2) distances), and after every accepted
  // swap the scan restarts from the beginning. Cost is
  // O(#improvements * n * k^3); the superlinear growth of #improvements
  // with n is what Table 4 measures. `max_sweeps` caps accepted swaps as a
  // termination safety valve only.
  auto set_value = [&](const std::vector<size_t>& s) {
    double v = 0.0;
    for (size_t a = 0; a < s.size(); ++a) {
      for (size_t b = a + 1; b < s.size(); ++b) {
        v += metric.Distance(points[s[a]], points[s[b]]);
      }
    }
    return v;
  };
  double value = set_value(current);
  size_t swaps = 0;
  bool improved = true;
  std::vector<size_t> trial = current;
  while (improved && swaps < max_sweeps) {
    improved = false;
    for (size_t q = 0; q < n && !improved; ++q) {
      if (in_set[q]) continue;
      for (size_t a = 0; a < k; ++a) {
        trial = current;
        trial[a] = q;
        double v = set_value(trial);
        if (v > value + 1e-9) {
          in_set[current[a]] = false;
          in_set[q] = true;
          current[a] = q;
          value = v;
          ++swaps;
          improved = true;  // restart the scan
          break;
        }
      }
    }
  }
  return current;
}

namespace {

// gen-div of the multiset encoded by per-kernel counts, evaluated under the
// given problem (replicas of one kernel at distance 0).
double GenDivOfCounts(DiversityProblem problem, const DistanceMatrix& kernels,
                      const std::vector<size_t>& count) {
  std::vector<size_t> units;
  for (size_t i = 0; i < count.size(); ++i) {
    for (size_t c = 0; c < count[i]; ++c) units.push_back(i);
  }
  DistanceMatrix d(units.size());
  for (size_t a = 0; a < units.size(); ++a) {
    for (size_t b = a + 1; b < units.size(); ++b) {
      if (units[a] != units[b]) d.set(a, b, kernels.at(units[a], units[b]));
    }
  }
  return EvaluateDiversity(problem, d);
}

}  // namespace

GeneralizedCoreset SolveSequentialGeneralized(DiversityProblem problem,
                                              const GeneralizedCoreset& coreset,
                                              const Metric& metric, size_t k) {
  DIVERSE_CHECK_GE(coreset.ExpandedSize(), k);
  size_t s = coreset.size();

  // Work on the s distinct kernel points with multiplicity budgets, instead
  // of materializing the (s * k)^2 expansion matrix: replica distances equal
  // kernel distances, so nothing is lost.
  PointSet kernel_points;
  std::vector<size_t> budget(s);
  kernel_points.reserve(s);
  for (size_t i = 0; i < s; ++i) {
    kernel_points.push_back(coreset.entries()[i].point);
    budget[i] = std::min(coreset.entries()[i].multiplicity, k);
  }
  DistanceMatrix d(kernel_points, metric);

  // Greedy multiset selection. GMM-family (remote-tree): farthest-first over
  // distinct kernels; matching-family: heaviest-pair over kernels with
  // remaining budget. Same-kernel pairs weigh 0, so replicas only enter when
  // the budgeted distinct kernels run out.
  std::vector<size_t> count(s, 0);
  size_t selected = 0;
  auto remaining = [&](size_t i) { return budget[i] - count[i]; };

  if (problem == DiversityProblem::kRemoteTree) {
    std::vector<size_t> order = GmmOnMatrix(d, std::min(k, s));
    for (size_t i : order) {
      if (selected == k) break;
      count[i] = 1;
      ++selected;
    }
  } else {
    while (selected + 1 < k) {
      size_t best_i = s, best_j = s;
      double best = -1.0;
      for (size_t i = 0; i < s; ++i) {
        if (remaining(i) == 0) continue;
        for (size_t j = i + 1; j < s; ++j) {
          if (remaining(j) == 0) continue;
          if (d.at(i, j) > best) {
            best = d.at(i, j);
            best_i = i;
            best_j = j;
          }
        }
      }
      if (best_i == s) break;  // fewer than 2 kernels with budget left
      ++count[best_i];
      ++count[best_j];
      selected += 2;
    }
  }
  // Top up to exactly k units from the remaining budget. Among fresh
  // kernels (which add positive distance, unlike replicas) pick the one
  // with the largest distance sum to the current selection — the same rule
  // the plain matching uses for an odd last point.
  while (selected < k) {
    size_t pick = s;
    double pick_score = -1.0;
    bool pick_fresh = false;
    for (size_t i = 0; i < s; ++i) {
      if (remaining(i) == 0) continue;
      bool fresh = count[i] == 0;
      if (pick_fresh && !fresh) continue;
      double score = 0.0;
      for (size_t u = 0; u < s; ++u) {
        score += static_cast<double>(count[u]) * d.at(i, u);
      }
      if (pick == s || (fresh && !pick_fresh) || score > pick_score) {
        pick = i;
        pick_score = score;
        pick_fresh = fresh;
      }
    }
    DIVERSE_CHECK_LT(pick, s);
    ++count[pick];
    ++selected;
  }

  // Unit-move local search on the remote-clique surrogate: move one selected
  // unit from kernel x to kernel y while the multiset distance sum improves.
  // S[z] = sum_u count[u] * d(z, u).
  std::vector<size_t> improved = count;
  {
    std::vector<double> sum_to(s, 0.0);
    auto recompute = [&] {
      for (size_t z = 0; z < s; ++z) {
        double acc = 0.0;
        for (size_t u = 0; u < s; ++u) {
          acc += static_cast<double>(improved[u]) * d.at(z, u);
        }
        sum_to[z] = acc;
      }
    };
    recompute();
    bool moved = true;
    size_t guard = 0;
    while (moved && guard < 4 * k * s) {
      moved = false;
      for (size_t x = 0; x < s && !moved; ++x) {
        if (improved[x] == 0) continue;
        for (size_t y = 0; y < s; ++y) {
          if (y == x || improved[y] >= budget[y]) continue;
          double delta = (sum_to[y] - d.at(x, y)) - sum_to[x];
          if (delta > 1e-9) {
            --improved[x];
            ++improved[y];
            recompute();
            ++guard;
            moved = true;
            break;
          }
        }
      }
    }
  }
  // The surrogate targets the clique sum; keep the post-passed counts only
  // if they are at least as good under the actual objective.
  if (GenDivOfCounts(problem, d, improved) >=
      GenDivOfCounts(problem, d, count)) {
    count = improved;
  }

  GeneralizedCoreset out;
  for (size_t i = 0; i < s; ++i) {
    if (count[i] > 0) out.Add(kernel_points[i], count[i]);
  }
  DIVERSE_CHECK_EQ(out.ExpandedSize(), k);
  return out;
}

}  // namespace diverse
