#include "core/sequential.h"

#include <algorithm>
#include <limits>

#include "core/gmm.h"
#include "core/screen.h"
#include "util/check.h"

namespace diverse {

std::vector<size_t> GmmOnMatrix(const DistanceMatrix& d, size_t k,
                                size_t first) {
  size_t n = d.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);
  DIVERSE_CHECK_LT(first, n);

  std::vector<size_t> selected;
  selected.reserve(k);
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  size_t current = first;
  selected.push_back(current);
  while (selected.size() < k) {
    size_t farthest = current;
    double farthest_dist = -1.0;
    // Stream the current center's row (d is symmetric) instead of probing
    // the strided column.
    std::span<const double> row = d.row(current);
    for (size_t i = 0; i < n; ++i) {
      dist[i] = std::min(dist[i], row[i]);
      if (dist[i] > farthest_dist) {
        farthest_dist = dist[i];
        farthest = i;
      }
    }
    selected.push_back(farthest);
    current = farthest;
  }
  return selected;
}

namespace {

// A candidate pair for the heaviest-pair greedy matching. `Heavier` is the
// total order the matching consumes pairs in: by distance descending, ties
// by (i, j) ascending — the same pair the row-major first-strict-max scan
// of the pre-buffered implementation selected. Because the order is total,
// the surviving top-`cap` buffer and the selection are independent of the
// order in which a scan emits pairs (and hence of tile shapes).
struct HeavyPair {
  double dist;
  size_t i, j;
};

bool Heavier(const HeavyPair& a, const HeavyPair& b) {
  if (a.dist != b.dist) return a.dist > b.dist;
  if (a.i != b.i) return a.i < b.i;
  return a.j < b.j;
}

// Greedy heaviest-pair matching core shared by the matrix and dataset
// variants. `scan(emit, cutoff)` must call emit(i, j, dist) for every
// unordered pair (i < j) of currently unused rows, in any order — except
// that pairs whose distance is certainly *strictly below* cutoff() at the
// moment they are considered may be skipped: such a pair can never displace
// the buffer's lightest kept entry (ties are decided by indices, so only a
// strict comparison is safe to prune on), and the buffer therefore ends up
// with exactly the pairs the unpruned scan would have kept. cutoff() is
// -inf until the buffer is full and then the lightest kept distance; the
// screened dataset scan uses it to skip the exact re-evaluation of pairs
// whose fp32 upper bound is already below it. One scan collects the
// heaviest `buffer_cap` pairs; the greedy loop then consumes them in
// `Heavier` order. Exact: a chosen pair only removes 2 points, so the next
// heaviest *surviving* pair is the true global maximum; if the buffer runs
// dry (pathological overlap among the top pairs), it is refilled with a
// fresh scan over the unused rows only. This turns k/2 quadratic scans
// into ~1.
template <typename ScanFn>
std::vector<size_t> GreedyHeaviestPairs(size_t n, size_t k,
                                        std::vector<bool>& used,
                                        const ScanFn& scan) {
  std::vector<size_t> chosen;
  chosen.reserve(k);
  // Clamp to the number of pairs that can ever exist so large k on small n
  // does not preallocate an oversized buffer.
  size_t max_pairs = n >= 2 ? n * (n - 1) / 2 : 1;
  const size_t buffer_cap =
      std::min(std::max<size_t>(4 * k * k, 64), max_pairs);
  std::vector<HeavyPair> heap;  // min-heap: front() = lightest kept pair
  heap.reserve(buffer_cap + 1);
  auto lighter_on_top = [](const HeavyPair& a, const HeavyPair& b) {
    return Heavier(a, b);
  };
  auto rescan = [&] {
    heap.clear();
    scan(
        [&](size_t i, size_t j, double dist) {
          HeavyPair e{dist, i, j};
          if (heap.size() < buffer_cap) {
            heap.push_back(e);
            std::push_heap(heap.begin(), heap.end(), lighter_on_top);
          } else if (Heavier(e, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), lighter_on_top);
            heap.back() = e;
            std::push_heap(heap.begin(), heap.end(), lighter_on_top);
          }
        },
        [&]() {
          return heap.size() < buffer_cap
                     ? -std::numeric_limits<double>::infinity()
                     : heap.front().dist;
        });
    std::sort(heap.begin(), heap.end(), Heavier);  // heaviest first
  };
  if (k < 2) return chosen;  // no pairs to pick; skip the scan entirely
  rescan();
  size_t cursor = 0;
  while (chosen.size() + 1 < k) {
    while (cursor < heap.size() &&
           (used[heap[cursor].i] || used[heap[cursor].j])) {
      ++cursor;
    }
    if (cursor == heap.size()) {
      rescan();
      cursor = 0;
      DIVERSE_CHECK_LT(cursor, heap.size());
      continue;
    }
    used[heap[cursor].i] = used[heap[cursor].j] = true;
    chosen.push_back(heap[cursor].i);
    chosen.push_back(heap[cursor].j);
  }
  return chosen;
}

// Emits all live pairs of `data` under `metric` through blocked tiles.
// When some rows are already used (a refill scan), the live rows are first
// compacted into a scratch Dataset so the tile sweeps touch no dead row and
// used rows' distances are never recomputed. When screening is active, each
// tile is computed in fp32 first and a pair is re-evaluated exactly (and
// emitted) only when its certified upper bound reaches cutoff() — pairs the
// buffer could not keep are skipped without an exact evaluation, which is
// legal per the GreedyHeaviestPairs contract and keeps the kept buffer
// bit-identical to the exact scan's.
template <typename EmitFn, typename CutoffFn>
void ScanLivePairsTiled(const Dataset& data, const Metric& metric,
                        const std::vector<bool>& used, const EmitFn& emit,
                        const CutoffFn& cutoff) {
  size_t n = data.size();
  std::vector<size_t> live;
  live.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!used[i]) live.push_back(i);
  }
  Dataset compact;
  const Dataset* src = &data;
  if (live.size() < n) {
    for (size_t idx : live) compact.Append(data.point(idx));
    src = &compact;
  }
  size_t m = live.size();
  const bool screened =
      UseScreening(metric) && metric.ScreeningProfitableFor(*src, *src);
  ScreenBound bound;
  if (screened) bound = metric.ScreenErrorBound(*src, *src);
  // Fused cutoff test: instead of a double bound transform plus a cutoff()
  // probe per pair, the cutoff is transformed ONCE into a float
  // (ScreenCertifiedBelow: s <= fcut certifies exact < cutoff strictly,
  // which is the only pruning the GreedyHeaviestPairs contract allows) and
  // refreshed only when an emit may have advanced the heap — cutoff() is
  // monotone nondecreasing and changes only on emits, so the refreshed
  // value is exactly as fresh as the old per-pair probe.
  double cut = 0.0;
  float fcut = -1.0f;
  auto refresh_cut = [&] {
    cut = cutoff();
    fcut = screened ? ScreenCertifiedBelow(cut, bound) : -1.0f;
  };
  refresh_cut();
  auto emit_tracking_cutoff = [&](size_t i, size_t j, double d) {
    emit(i, j, d);
    if (cutoff() != cut) refresh_cut();
  };
  const float flt_max = std::numeric_limits<float>::max();
  constexpr size_t kQBlock = 64;   // pair-scan tile: kQBlock x kRBlock
  constexpr size_t kRBlock = 256;
  std::vector<double> tile(std::max(kQBlock * kRBlock, kQBlock));
  std::vector<float> ftile(screened ? std::max(kQBlock * kRBlock, kQBlock)
                                    : 0);
  for (size_t ib = 0; ib < m; ib += kQBlock) {
    size_t in = std::min(kQBlock, m - ib);
    // Triangular corner within the block: per-row suffix sweeps keep the
    // evaluation count at i < j pairs exactly.
    for (size_t i = ib; i + 1 < ib + in; ++i) {
      size_t count = ib + in - i - 1;
      if (screened) {
        std::span<float> out(ftile.data(), count);
        metric.DistanceToManyF32(src->point(i), *src, i + 1, out);
        for (size_t j = i + 1; j < ib + in; ++j) {
          float s = out[j - i - 1];
          if (s >= -flt_max && s <= fcut) continue;
          emit_tracking_cutoff(live[i], live[j],
                               metric.DistanceRows(*src, i, *src, j));
        }
      } else {
        std::span<double> out(tile.data(), count);
        metric.DistanceToMany(src->point(i), *src, i + 1, out);
        for (size_t j = i + 1; j < ib + in; ++j) {
          emit(live[i], live[j], out[j - i - 1]);
        }
      }
    }
    // Rectangular panels to the right of the block.
    for (size_t jb = ib + in; jb < m; jb += kRBlock) {
      size_t jn = std::min(kRBlock, m - jb);
      if (screened) {
        metric.DistanceTileF32(*src, ib, in, *src, jb, jn, ftile.data(), jn);
        for (size_t q = 0; q < in; ++q) {
          for (size_t r = 0; r < jn; ++r) {
            float s = ftile[q * jn + r];
            if (s >= -flt_max && s <= fcut) continue;
            emit_tracking_cutoff(live[ib + q], live[jb + r],
                                 metric.DistanceRows(*src, ib + q, *src,
                                                     jb + r));
          }
        }
      } else {
        metric.DistanceTile(*src, ib, in, *src, jb, jn, tile.data(), jn);
        for (size_t q = 0; q < in; ++q) {
          for (size_t r = 0; r < jn; ++r) {
            emit(live[ib + q], live[jb + r], tile[q * jn + r]);
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<size_t> GreedyMatchingOnMatrix(const DistanceMatrix& d, size_t k) {
  size_t n = d.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);

  std::vector<bool> used(n, false);
  // Stream whole matrix rows through the buffered core: one O(n^2) scan
  // (plus rare refills over live rows only) replaces the former k/2 full
  // argmax rescans, and rows are consumed as contiguous memory instead of
  // per-element at(i, j) probes. Distances are exact (already computed), so
  // the cutoff only prunes heap probes for pairs strictly below the kept
  // buffer — which could not enter it anyway.
  std::vector<size_t> chosen =
      GreedyHeaviestPairs(n, k, used, [&](auto&& emit, auto&& cutoff) {
        for (size_t i = 0; i < n; ++i) {
          if (used[i]) continue;
          std::span<const double> row = d.row(i);
          for (size_t j = i + 1; j < n; ++j) {
            if (used[j]) continue;
            if (row[j] < cutoff()) continue;
            emit(i, j, row[j]);
          }
        }
      });
  if (chosen.size() < k) {
    // Odd k: add the unused point with the largest distance sum to the
    // chosen set (any point preserves the approximation bound; this choice
    // helps in practice).
    size_t best_i = n;
    double best = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      double s = 0.0;
      std::span<const double> row = d.row(i);
      for (size_t c : chosen) s += row[c];
      if (s > best) {
        best = s;
        best_i = i;
      }
    }
    DIVERSE_CHECK_LT(best_i, n);
    chosen.push_back(best_i);
  }
  return chosen;
}

std::vector<size_t> GreedyMatchingOnDataset(const Dataset& data,
                                            const Metric& metric, size_t k) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);

  std::vector<bool> used(n, false);
  std::vector<size_t> chosen =
      GreedyHeaviestPairs(n, k, used, [&](auto&& emit, auto&& cutoff) {
        ScanLivePairsTiled(data, metric, used, emit, cutoff);
      });
  if (chosen.size() < k) {
    size_t best_i = n;
    double best = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      double s = 0.0;
      for (size_t c : chosen) {
        s += metric.Distance(data.point(i), data.point(c));
      }
      if (s > best) {
        best = s;
        best_i = i;
      }
    }
    DIVERSE_CHECK_LT(best_i, n);
    chosen.push_back(best_i);
  }
  return chosen;
}

std::vector<size_t> GreedyMatchingOnPoints(std::span<const Point> points,
                                           const Metric& metric, size_t k) {
  return GreedyMatchingOnDataset(Dataset::FromPoints(points), metric, k);
}

std::vector<size_t> SolveSequentialOnMatrix(DiversityProblem problem,
                                            const DistanceMatrix& d,
                                            size_t k) {
  switch (problem) {
    case DiversityProblem::kRemoteEdge:
    case DiversityProblem::kRemoteTree:
    case DiversityProblem::kRemoteCycle:
      return GmmOnMatrix(d, k);
    case DiversityProblem::kRemoteClique:
    case DiversityProblem::kRemoteStar:
    case DiversityProblem::kRemoteBipartition:
      return GreedyMatchingOnMatrix(d, k);
  }
  return {};
}

std::vector<size_t> SolveSequential(DiversityProblem problem,
                                    const Dataset& data, const Metric& metric,
                                    size_t k) {
  switch (problem) {
    case DiversityProblem::kRemoteEdge:
    case DiversityProblem::kRemoteTree:
    case DiversityProblem::kRemoteCycle:
      return Gmm(data, metric, k).selected;
    case DiversityProblem::kRemoteClique:
    case DiversityProblem::kRemoteStar:
    case DiversityProblem::kRemoteBipartition:
      return GreedyMatchingOnDataset(data, metric, k);
  }
  return {};
}

std::vector<size_t> SolveSequential(DiversityProblem problem,
                                    std::span<const Point> points,
                                    const Metric& metric, size_t k) {
  return SolveSequential(problem, Dataset::FromPoints(points), metric, k);
}

std::vector<size_t> LocalSearchRemoteClique(std::span<const Point> points,
                                            const Metric& metric,
                                            std::vector<size_t> initial,
                                            size_t max_sweeps,
                                            LocalSearchScan scan) {
  size_t n = points.size();
  size_t k = initial.size();
  DIVERSE_CHECK_GE(k, 1u);
  std::vector<size_t> current = std::move(initial);
  std::vector<bool> in_set(n, false);
  for (size_t idx : current) {
    DIVERSE_CHECK_LT(idx, n);
    in_set[idx] = true;
  }

  // contribution[c] = sum of distances from current[c] to the rest of the
  // set; swapping current[c] for q changes the objective by
  // sum_d(q, set minus current[c]) - contribution[c].
  std::vector<double> contribution(k, 0.0);
  auto recompute = [&] {
    for (size_t a = 0; a < k; ++a) {
      double s = 0.0;
      for (size_t b = 0; b < k; ++b) {
        if (a != b) s += metric.Distance(points[current[a]], points[current[b]]);
      }
      contribution[a] = s;
    }
  };
  recompute();

  if (scan == LocalSearchScan::kContinue) {
    // Tiled candidate sweeps: the distances from a block of candidates to
    // the whole current set are one Q x k DistanceTile instead of k scalar
    // virtual calls per candidate, so sparse corpora run the blocked CSR
    // kernels and dense data the lane kernels. The tile entries are
    // bit-identical to the scalar Distance calls and the swap decisions
    // consume them in the same candidate order, so the search trajectory is
    // unchanged; after an accepted swap the remainder of the block is
    // recomputed against the updated set (exactly what the scalar loop saw).
    Dataset candidates = Dataset::FromPoints(points);
    Dataset current_rows;
    PointSet current_points;
    auto rebuild_current = [&] {
      current_points.clear();
      for (size_t idx : current) current_points.push_back(points[idx]);
      current_rows.Assign(current_points);
    };
    rebuild_current();
    constexpr size_t kCandidateBlock = 128;
    std::vector<double> tile(kCandidateBlock * k);
    // Applies the best improving swap for candidate q given its distances
    // to the current set (dq_row[a] = d(q, current[a])), if any.
    auto try_swap = [&](size_t q, const double* dq_row) {
      double total = 0.0;
      for (size_t a = 0; a < k; ++a) total += dq_row[a];
      // Best member to evict: the one whose removal keeps the most of q's
      // contribution while dropping the least of its own.
      size_t best_a = k;
      double best_delta = 1e-9;
      for (size_t a = 0; a < k; ++a) {
        double delta = (total - dq_row[a]) - contribution[a];
        if (delta > best_delta) {
          best_delta = delta;
          best_a = a;
        }
      }
      if (best_a == k) return false;
      in_set[current[best_a]] = false;
      in_set[q] = true;
      current[best_a] = q;
      recompute();
      rebuild_current();
      return true;
    };
    for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
      bool improved = false;
      for (size_t q0 = 0; q0 < n; q0 += kCandidateBlock) {
        size_t qn = std::min(kCandidateBlock, n - q0);
        metric.DistanceTile(candidates, q0, qn, current_rows, 0, k,
                            tile.data(), k);
        for (size_t qi = 0; qi < qn; ++qi) {
          size_t q = q0 + qi;
          if (in_set[q]) continue;
          if (try_swap(q, tile.data() + qi * k)) {
            improved = true;
            if (qi + 1 < qn) {
              metric.DistanceTile(candidates, q + 1, qn - qi - 1,
                                  current_rows, 0, k,
                                  tile.data() + (qi + 1) * k, k);
            }
          }
        }
      }
      if (!improved) break;
    }
    return current;
  }

  // kRestart: the literal published local search — every candidate swap
  // (q in, current[a] out) is evaluated by recomputing the objective of the
  // swapped set from scratch (O(k^2) distances), and after every accepted
  // swap the scan restarts from the beginning. Cost is
  // O(#improvements * n * k^3); the superlinear growth of #improvements
  // with n is what Table 4 measures. `max_sweeps` caps accepted swaps as a
  // termination safety valve only.
  auto set_value = [&](const std::vector<size_t>& s) {
    double v = 0.0;
    for (size_t a = 0; a < s.size(); ++a) {
      for (size_t b = a + 1; b < s.size(); ++b) {
        v += metric.Distance(points[s[a]], points[s[b]]);
      }
    }
    return v;
  };
  double value = set_value(current);
  size_t swaps = 0;
  bool improved = true;
  std::vector<size_t> trial = current;
  while (improved && swaps < max_sweeps) {
    improved = false;
    for (size_t q = 0; q < n && !improved; ++q) {
      if (in_set[q]) continue;
      for (size_t a = 0; a < k; ++a) {
        trial = current;
        trial[a] = q;
        double v = set_value(trial);
        if (v > value + 1e-9) {
          in_set[current[a]] = false;
          in_set[q] = true;
          current[a] = q;
          value = v;
          ++swaps;
          improved = true;  // restart the scan
          break;
        }
      }
    }
  }
  return current;
}

namespace {

// gen-div of the multiset encoded by per-kernel counts, evaluated under the
// given problem (replicas of one kernel at distance 0).
double GenDivOfCounts(DiversityProblem problem, const DistanceMatrix& kernels,
                      const std::vector<size_t>& count) {
  std::vector<size_t> units;
  for (size_t i = 0; i < count.size(); ++i) {
    for (size_t c = 0; c < count[i]; ++c) units.push_back(i);
  }
  DistanceMatrix d(units.size());
  for (size_t a = 0; a < units.size(); ++a) {
    for (size_t b = a + 1; b < units.size(); ++b) {
      if (units[a] != units[b]) d.set(a, b, kernels.at(units[a], units[b]));
    }
  }
  return EvaluateDiversity(problem, d);
}

}  // namespace

GeneralizedCoreset SolveSequentialGeneralized(DiversityProblem problem,
                                              const GeneralizedCoreset& coreset,
                                              const Metric& metric, size_t k) {
  DIVERSE_CHECK_GE(coreset.ExpandedSize(), k);
  size_t s = coreset.size();

  // Work on the s distinct kernel points with multiplicity budgets, instead
  // of materializing the (s * k)^2 expansion matrix: replica distances equal
  // kernel distances, so nothing is lost.
  PointSet kernel_points;
  std::vector<size_t> budget(s);
  kernel_points.reserve(s);
  for (size_t i = 0; i < s; ++i) {
    kernel_points.push_back(coreset.entries()[i].point);
    budget[i] = std::min(coreset.entries()[i].multiplicity, k);
  }
  DistanceMatrix d(kernel_points, metric);

  // Greedy multiset selection. GMM-family (remote-tree): farthest-first over
  // distinct kernels; matching-family: heaviest-pair over kernels with
  // remaining budget. Same-kernel pairs weigh 0, so replicas only enter when
  // the budgeted distinct kernels run out.
  std::vector<size_t> count(s, 0);
  size_t selected = 0;
  auto remaining = [&](size_t i) { return budget[i] - count[i]; };

  if (problem == DiversityProblem::kRemoteTree) {
    std::vector<size_t> order = GmmOnMatrix(d, std::min(k, s));
    for (size_t i : order) {
      if (selected == k) break;
      count[i] = 1;
      ++selected;
    }
  } else {
    while (selected + 1 < k) {
      size_t best_i = s, best_j = s;
      double best = -1.0;
      for (size_t i = 0; i < s; ++i) {
        if (remaining(i) == 0) continue;
        for (size_t j = i + 1; j < s; ++j) {
          if (remaining(j) == 0) continue;
          if (d.at(i, j) > best) {
            best = d.at(i, j);
            best_i = i;
            best_j = j;
          }
        }
      }
      if (best_i == s) break;  // fewer than 2 kernels with budget left
      ++count[best_i];
      ++count[best_j];
      selected += 2;
    }
  }
  // Top up to exactly k units from the remaining budget. Among fresh
  // kernels (which add positive distance, unlike replicas) pick the one
  // with the largest distance sum to the current selection — the same rule
  // the plain matching uses for an odd last point.
  while (selected < k) {
    size_t pick = s;
    double pick_score = -1.0;
    bool pick_fresh = false;
    for (size_t i = 0; i < s; ++i) {
      if (remaining(i) == 0) continue;
      bool fresh = count[i] == 0;
      if (pick_fresh && !fresh) continue;
      double score = 0.0;
      for (size_t u = 0; u < s; ++u) {
        score += static_cast<double>(count[u]) * d.at(i, u);
      }
      if (pick == s || (fresh && !pick_fresh) || score > pick_score) {
        pick = i;
        pick_score = score;
        pick_fresh = fresh;
      }
    }
    DIVERSE_CHECK_LT(pick, s);
    ++count[pick];
    ++selected;
  }

  // Unit-move local search on the remote-clique surrogate: move one selected
  // unit from kernel x to kernel y while the multiset distance sum improves.
  // S[z] = sum_u count[u] * d(z, u).
  std::vector<size_t> improved = count;
  {
    std::vector<double> sum_to(s, 0.0);
    auto recompute = [&] {
      for (size_t z = 0; z < s; ++z) {
        double acc = 0.0;
        for (size_t u = 0; u < s; ++u) {
          acc += static_cast<double>(improved[u]) * d.at(z, u);
        }
        sum_to[z] = acc;
      }
    };
    recompute();
    bool moved = true;
    size_t guard = 0;
    while (moved && guard < 4 * k * s) {
      moved = false;
      for (size_t x = 0; x < s && !moved; ++x) {
        if (improved[x] == 0) continue;
        for (size_t y = 0; y < s; ++y) {
          if (y == x || improved[y] >= budget[y]) continue;
          double delta = (sum_to[y] - d.at(x, y)) - sum_to[x];
          if (delta > 1e-9) {
            --improved[x];
            ++improved[y];
            recompute();
            ++guard;
            moved = true;
            break;
          }
        }
      }
    }
  }
  // The surrogate targets the clique sum; keep the post-passed counts only
  // if they are at least as good under the actual objective.
  if (GenDivOfCounts(problem, d, improved) >=
      GenDivOfCounts(problem, d, count)) {
    count = improved;
  }

  GeneralizedCoreset out;
  for (size_t i = 0; i < s; ++i) {
    if (count[i] > 0) out.Add(kernel_points[i], count[i]);
  }
  DIVERSE_CHECK_EQ(out.ExpandedSize(), k);
  return out;
}

}  // namespace diverse
