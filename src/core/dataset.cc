#include "core/dataset.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <utility>

#include "util/check.h"

namespace diverse {

namespace {

// Process-global stamp source for Dataset::content_stamp(): relaxed is
// enough (the counter only needs uniqueness, not ordering), and 64 bits
// never wrap in practice.
std::atomic<uint64_t> g_next_content_stamp{1};

uint64_t NextContentStamp() {
  return g_next_content_stamp.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Dataset::Dataset(PointSet points) {
  points_.reserve(points.size());
  rows_.reserve(points.size());
  norms_.reserve(points.size());
  for (Point& p : points) {
    AppendColumnar(p);
    points_.push_back(std::move(p));
  }
}

Dataset Dataset::FromPoints(std::span<const Point> points) {
  Dataset d;
  d.Assign(points);
  return d;
}

void Dataset::Append(const Point& p) {
  AppendColumnar(p);
  points_.push_back(p);
}

void Dataset::AppendColumnar(const Point& p) {
  if (rows_.empty()) {
    dim_ = p.dim();
  } else {
    DIVERSE_CHECK_EQ(p.dim(), dim_);
  }
  col_occupancy_valid_ = false;
  content_stamp_ = NextContentStamp();
  // A valid screen-stats cache stays valid: fold the new row's norm in
  // instead of invalidating (the lazy rebuild is O(n), and SMM's merge loop
  // appends to a mirror it screens against after every append).
  if (screen_stats_valid_) {
    double n = p.norm();
    if (n > 0.0) {
      screen_stats_.min_positive_norm =
          std::min(screen_stats_.min_positive_norm, n);
    }
    screen_stats_.max_norm = std::max(screen_stats_.max_norm, n);
  }
  RowRef r;
  if (p.is_sparse()) {
    const auto& idx = p.sparse_indices();
    const auto& val = p.sparse_values();
    r.start = csr_values_.size();
    r.len = static_cast<uint32_t>(val.size());
    r.sparse = 1;
    csr_indices_.insert(csr_indices_.end(), idx.begin(), idx.end());
    csr_values_.insert(csr_values_.end(), val.begin(), val.end());
    ++sparse_stats_.rows;
    sparse_stats_.total_nnz += val.size();
    sparse_stats_.max_nnz = std::max<size_t>(sparse_stats_.max_nnz,
                                             val.size());
  } else {
    const auto& val = p.dense_values();
    r.start = dense_.size();
    r.len = static_cast<uint32_t>(val.size());
    r.sparse = 0;
    dense_.insert(dense_.end(), val.begin(), val.end());
  }
  rows_.push_back(r);
  norms_.push_back(p.norm());
}

void Dataset::Assign(std::span<const Point> points) {
  Clear();
  points_.reserve(points.size());
  rows_.reserve(points.size());
  norms_.reserve(points.size());
  for (const Point& p : points) {
    AppendColumnar(p);
    points_.push_back(p);
  }
}

void Dataset::Clear() {
  points_.clear();
  dense_.clear();
  csr_indices_.clear();
  csr_values_.clear();
  rows_.clear();
  norms_.clear();
  dim_ = 0;
  sparse_stats_ = SparseStats();
  col_occupancy_valid_ = false;
  screen_stats_valid_ = false;
  content_stamp_ = NextContentStamp();
}

void Dataset::AssignGatherColumnar(const Dataset& src,
                                   std::span<const uint32_t> rows) {
  DIVERSE_CHECK(this != &src);
  Clear();
  dim_ = src.dim_;
  rows_.reserve(rows.size());
  norms_.reserve(rows.size());
  size_t dense_total = 0;
  size_t csr_total = 0;
  for (uint32_t ri : rows) {
    const RowRef& rr = src.rows_[ri];
    (rr.sparse != 0 ? csr_total : dense_total) += rr.len;
  }
  dense_.reserve(dense_total);
  csr_indices_.reserve(csr_total);
  csr_values_.reserve(csr_total);
  ScreenStats s;
  s.min_positive_norm = std::numeric_limits<double>::infinity();
  for (uint32_t ri : rows) {
    const RowRef& rr = src.rows_[ri];
    RowRef out = rr;
    if (rr.sparse != 0) {
      out.start = csr_values_.size();
      csr_indices_.insert(csr_indices_.end(),
                          src.csr_indices_.begin() + rr.start,
                          src.csr_indices_.begin() + rr.start + rr.len);
      csr_values_.insert(csr_values_.end(),
                         src.csr_values_.begin() + rr.start,
                         src.csr_values_.begin() + rr.start + rr.len);
      ++sparse_stats_.rows;
      sparse_stats_.total_nnz += rr.len;
      sparse_stats_.max_nnz = std::max<size_t>(sparse_stats_.max_nnz, rr.len);
    } else {
      out.start = dense_.size();
      dense_.insert(dense_.end(), src.dense_.begin() + rr.start,
                    src.dense_.begin() + rr.start + rr.len);
    }
    rows_.push_back(out);
    double n = src.norms_[ri];
    norms_.push_back(n);
    if (n > 0.0) s.min_positive_norm = std::min(s.min_positive_norm, n);
    s.max_norm = std::max(s.max_norm, n);
  }
  screen_stats_ = s;
  screen_stats_valid_ = true;
  content_stamp_ = NextContentStamp();
}

const Dataset::ScreenStats& Dataset::screen_stats() const {
  if (!screen_stats_valid_) {
    ScreenStats s;
    s.min_positive_norm = std::numeric_limits<double>::infinity();
    for (double n : norms_) {
      if (n > 0.0) s.min_positive_norm = std::min(s.min_positive_norm, n);
      s.max_norm = std::max(s.max_norm, n);
    }
    screen_stats_ = s;
    screen_stats_valid_ = true;
  }
  return screen_stats_;
}

void Dataset::BuildColumnOccupancy() {
  col_occupancy_.assign(dim_, 0);
  for (uint32_t idx : csr_indices_) ++col_occupancy_[idx];
  col_occupancy_valid_ = true;
}

size_t Dataset::MemoryBytes() const {
  size_t bytes = sizeof(Dataset) + dense_.capacity() * sizeof(float) +
                 csr_indices_.capacity() * sizeof(uint32_t) +
                 csr_values_.capacity() * sizeof(float) +
                 rows_.capacity() * sizeof(RowRef) +
                 norms_.capacity() * sizeof(double) +
                 col_occupancy_.capacity() * sizeof(uint32_t);
  for (const Point& p : points_) bytes += p.MemoryBytes();
  return bytes;
}

}  // namespace diverse
