#include "core/dataset.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace diverse {

Dataset::Dataset(PointSet points) {
  points_.reserve(points.size());
  rows_.reserve(points.size());
  norms_.reserve(points.size());
  for (Point& p : points) {
    AppendColumnar(p);
    points_.push_back(std::move(p));
  }
}

Dataset Dataset::FromPoints(std::span<const Point> points) {
  Dataset d;
  d.Assign(points);
  return d;
}

void Dataset::Append(const Point& p) {
  AppendColumnar(p);
  points_.push_back(p);
}

void Dataset::AppendColumnar(const Point& p) {
  if (points_.empty()) {
    dim_ = p.dim();
  } else {
    DIVERSE_CHECK_EQ(p.dim(), dim_);
  }
  col_occupancy_valid_ = false;
  screen_stats_valid_ = false;
  RowRef r;
  if (p.is_sparse()) {
    const auto& idx = p.sparse_indices();
    const auto& val = p.sparse_values();
    r.start = csr_values_.size();
    r.len = static_cast<uint32_t>(val.size());
    r.sparse = 1;
    csr_indices_.insert(csr_indices_.end(), idx.begin(), idx.end());
    csr_values_.insert(csr_values_.end(), val.begin(), val.end());
    ++sparse_stats_.rows;
    sparse_stats_.total_nnz += val.size();
    sparse_stats_.max_nnz = std::max<size_t>(sparse_stats_.max_nnz,
                                             val.size());
  } else {
    const auto& val = p.dense_values();
    r.start = dense_.size();
    r.len = static_cast<uint32_t>(val.size());
    r.sparse = 0;
    dense_.insert(dense_.end(), val.begin(), val.end());
  }
  rows_.push_back(r);
  norms_.push_back(p.norm());
}

void Dataset::Assign(std::span<const Point> points) {
  Clear();
  points_.reserve(points.size());
  rows_.reserve(points.size());
  norms_.reserve(points.size());
  for (const Point& p : points) {
    AppendColumnar(p);
    points_.push_back(p);
  }
}

void Dataset::Clear() {
  points_.clear();
  dense_.clear();
  csr_indices_.clear();
  csr_values_.clear();
  rows_.clear();
  norms_.clear();
  dim_ = 0;
  sparse_stats_ = SparseStats();
  col_occupancy_valid_ = false;
  screen_stats_valid_ = false;
}

const Dataset::ScreenStats& Dataset::screen_stats() const {
  if (!screen_stats_valid_) {
    ScreenStats s;
    s.min_positive_norm = std::numeric_limits<double>::infinity();
    for (double n : norms_) {
      if (n > 0.0) s.min_positive_norm = std::min(s.min_positive_norm, n);
      s.max_norm = std::max(s.max_norm, n);
    }
    screen_stats_ = s;
    screen_stats_valid_ = true;
  }
  return screen_stats_;
}

void Dataset::BuildColumnOccupancy() {
  col_occupancy_.assign(dim_, 0);
  for (uint32_t idx : csr_indices_) ++col_occupancy_[idx];
  col_occupancy_valid_ = true;
}

size_t Dataset::MemoryBytes() const {
  size_t bytes = sizeof(Dataset) + dense_.capacity() * sizeof(float) +
                 csr_indices_.capacity() * sizeof(uint32_t) +
                 csr_values_.capacity() * sizeof(float) +
                 rows_.capacity() * sizeof(RowRef) +
                 norms_.capacity() * sizeof(double) +
                 col_occupancy_.capacity() * sizeof(uint32_t);
  for (const Point& p : points_) bytes += p.MemoryBytes();
  return bytes;
}

}  // namespace diverse
