#include "core/distance_matrix.h"

#include "util/check.h"

namespace diverse {

DistanceMatrix::DistanceMatrix(size_t n) : n_(n), d_(n * n, 0.0) {}

DistanceMatrix::DistanceMatrix(std::span<const Point> points,
                               const Metric& metric)
    : n_(points.size()), d_(points.size() * points.size(), 0.0) {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      double dist = metric.Distance(points[i], points[j]);
      d_[i * n_ + j] = dist;
      d_[j * n_ + i] = dist;
    }
  }
}

void DistanceMatrix::set(size_t i, size_t j, double value) {
  DIVERSE_CHECK_LT(i, n_);
  DIVERSE_CHECK_LT(j, n_);
  DIVERSE_CHECK_GE(value, 0.0);
  d_[i * n_ + j] = value;
  d_[j * n_ + i] = value;
}

DistanceMatrix DistanceMatrix::Restrict(std::span<const size_t> subset) const {
  DistanceMatrix out(subset.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    DIVERSE_CHECK_LT(subset[i], n_);
    for (size_t j = i + 1; j < subset.size(); ++j) {
      out.set(i, j, at(subset[i], subset[j]));
    }
  }
  return out;
}

bool DistanceMatrix::SatisfiesTriangleInequality(double tol) const {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      for (size_t k = 0; k < n_; ++k) {
        if (at(i, j) > at(i, k) + at(k, j) + tol) return false;
      }
    }
  }
  return true;
}

}  // namespace diverse
