#include "core/distance_matrix.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace diverse {

namespace {

// Rows per tile block. Diagonal blocks run per-row suffix sweeps of at most
// kMatrixBlock - 1 distances, which Metric::DistanceToMany executes inline
// (below its parallel grain), so the block-pair parallel loop never nests
// pool waits.
constexpr size_t kMatrixBlock = 128;

// Builds of at least this many points take the columnar tile path; below it
// the per-pair scalar loop wins (no Dataset re-layout).
constexpr size_t kTiledBuildMin = 64;

}  // namespace

DistanceMatrix::DistanceMatrix(size_t n) : n_(n), d_(n * n, 0.0) {}

DistanceMatrix::DistanceMatrix(std::span<const Point> points,
                               const Metric& metric)
    : n_(points.size()), d_(points.size() * points.size(), 0.0) {
  bool uniform_dims = true;
  for (size_t i = 1; i < n_ && uniform_dims; ++i) {
    uniform_dims = points[i].dim() == points[0].dim();
  }
  if (n_ >= kTiledBuildMin && uniform_dims) {
    BuildTiled(Dataset::FromPoints(points), metric);
    return;
  }
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      double dist = metric.Distance(points[i], points[j]);
      d_[i * n_ + j] = dist;
      d_[j * n_ + i] = dist;
    }
  }
}

DistanceMatrix::DistanceMatrix(const Dataset& data, const Metric& metric)
    : n_(data.size()), d_(data.size() * data.size(), 0.0) {
  BuildTiled(data, metric);
}

void DistanceMatrix::BuildTiled(const Dataset& data, const Metric& metric) {
  size_t nb = (n_ + kMatrixBlock - 1) / kMatrixBlock;
  // Unordered block pairs (bi <= bj), enumerated row-major; each pair is an
  // independent cache-resident tile, so the parallel loop is deterministic
  // trivially (disjoint writes, no reductions).
  size_t num_pairs = nb * (nb + 1) / 2;
  GlobalThreadPool().ParallelForRanges(
      num_pairs, 1, [&](size_t lo, size_t hi) {
        for (size_t idx = lo; idx < hi; ++idx) {
          // Decode idx -> (bi, bj) with bi <= bj.
          size_t bi = 0;
          size_t rem = idx;
          size_t row_len = nb;
          while (rem >= row_len) {
            rem -= row_len;
            ++bi;
            --row_len;
          }
          size_t bj = bi + rem;
          size_t ib = bi * kMatrixBlock;
          size_t in = std::min(kMatrixBlock, n_ - ib);
          if (bi == bj) {
            // Diagonal block: per-row suffix sweeps keep the evaluation
            // count at exactly i < j pairs.
            for (size_t i = ib; i + 1 < ib + in; ++i) {
              std::span<double> out(d_.data() + i * n_ + i + 1,
                                    ib + in - i - 1);
              metric.DistanceToMany(data.point(i), data, i + 1, out);
              for (size_t j = i + 1; j < ib + in; ++j) {
                d_[j * n_ + i] = d_[i * n_ + j];
              }
            }
          } else {
            size_t jb = bj * kMatrixBlock;
            size_t jn = std::min(kMatrixBlock, n_ - jb);
            metric.DistanceTile(data, ib, in, data, jb, jn,
                                d_.data() + ib * n_ + jb, n_);
            for (size_t q = 0; q < in; ++q) {
              for (size_t r = 0; r < jn; ++r) {
                d_[(jb + r) * n_ + ib + q] = d_[(ib + q) * n_ + jb + r];
              }
            }
          }
        }
      });
}

void DistanceMatrix::set(size_t i, size_t j, double value) {
  DIVERSE_CHECK_LT(i, n_);
  DIVERSE_CHECK_LT(j, n_);
  DIVERSE_CHECK_GE(value, 0.0);
  d_[i * n_ + j] = value;
  d_[j * n_ + i] = value;
}

DistanceMatrix DistanceMatrix::Restrict(std::span<const size_t> subset) const {
  DistanceMatrix out(subset.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    DIVERSE_CHECK_LT(subset[i], n_);
    for (size_t j = i + 1; j < subset.size(); ++j) {
      out.set(i, j, at(subset[i], subset[j]));
    }
  }
  return out;
}

bool DistanceMatrix::SatisfiesTriangleInequality(double tol) const {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      for (size_t k = 0; k < n_; ++k) {
        if (at(i, j) > at(i, k) + at(k, j) + tol) return false;
      }
    }
  }
  return true;
}

}  // namespace diverse
