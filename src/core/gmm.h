// GMM: the farthest-first traversal of Gonzalez [18].
//
// GMM(S, k) greedily grows a set T: start from an arbitrary point, then
// repeatedly add the point of S maximizing the distance to the points picked
// so far. Classic guarantees used throughout the paper:
//   * r_T <= 2 r*_k            (2-approximation for k-center),
//   * r_T <= rho_T             (the "anticover" property, Fact 1),
//   * the k-prefix of the selection is a 2-approximation for remote-edge and
//     constant-factor for remote-tree / remote-cycle (Table 1).
// With k' > k it is the composable core-set construction of Theorem 4.

#ifndef DIVERSE_CORE_GMM_H_
#define DIVERSE_CORE_GMM_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// Result of a farthest-first traversal.
struct GmmResult {
  /// Indices (into the input set) of the selected points, in selection order.
  std::vector<size_t> selected;

  /// selection_distance[j] = distance of selected[j] to the set of previously
  /// selected points at the time it was chosen (infinity for j = 0). This
  /// sequence is non-increasing; selection_distance[k] upper-bounds r_T of
  /// the k-prefix (anticover property).
  std::vector<double> selection_distance;

  /// assignment[i] = position in `selected` of the center closest to input
  /// point i, with ties broken toward the earliest-selected center (this
  /// matches the cluster definition C_j of Algorithm 1, GMM-EXT).
  std::vector<size_t> assignment;

  /// distance_to_selected[i] = d(points[i], T) for the final T.
  std::vector<double> distance_to_selected;

  /// max_i distance_to_selected[i], i.e. the range r_T of the final set.
  double range = 0.0;
};

/// Runs GMM for k steps on columnar `data` under `metric`, starting from
/// row `first`. Requires 1 <= k <= data.size() and first < data.size().
/// Cost: exactly k * n distance evaluations, executed as k fused
/// relax-and-argmax sweeps (Metric::RelaxAndArgFarthest) — devirtualized
/// over the columnar rows and parallelized for large n. The selected index
/// sequence is deterministic and identical to the scalar reference at any
/// thread count.
GmmResult Gmm(const Dataset& data, const Metric& metric, size_t k,
              size_t first = 0);

/// Convenience shim: copies `points` into a Dataset and runs the batched
/// GMM. Callers with a Dataset (or running GMM repeatedly on one input)
/// should build it once and use the overload above.
GmmResult Gmm(std::span<const Point> points, const Metric& metric, size_t k,
              size_t first = 0);

/// Scalar reference implementation: the classic per-pair loop over
/// Metric::Distance, with no Dataset, batching, or threading. Kept for
/// equivalence tests and the scalar-vs-batched microbenchmarks.
GmmResult GmmScalar(std::span<const Point> points, const Metric& metric,
                    size_t k, size_t first = 0);

/// Farness rho_T = min_{c in T} d(c, T \ {c}) of the rows `subset` of
/// `points` (the remote-edge value of the subset).
double Farness(std::span<const Point> points, const Metric& metric,
               std::span<const size_t> subset);

}  // namespace diverse

#endif  // DIVERSE_CORE_GMM_H_
