#include "core/kcenter.h"

#include <algorithm>
#include <limits>

#include "core/cover_tree.h"
#include "core/gmm.h"
#include "core/screen.h"
#include "util/check.h"

namespace diverse {

KCenterResult SolveKCenterGmm(const Dataset& data, const Metric& metric,
                              size_t k) {
  GmmResult gmm = Gmm(data, metric, k);
  KCenterResult result;
  result.centers = std::move(gmm.selected);
  result.assignment = std::move(gmm.assignment);
  result.radius = gmm.range;
  return result;
}

KCenterResult SolveKCenterGmm(std::span<const Point> points,
                              const Metric& metric, size_t k) {
  return SolveKCenterGmm(Dataset::FromPoints(points), metric, k);
}

namespace {

// One maximal-independent-set merge over center indices at the given radius.
std::vector<size_t> MergeCenters(std::span<const Point> points,
                                 const Metric& metric,
                                 const std::vector<size_t>& centers,
                                 double radius) {
  std::vector<size_t> kept;
  kept.reserve(centers.size());
  for (size_t c : centers) {
    bool blocked = false;
    for (size_t other : kept) {
      if (metric.Distance(points[c], points[other]) <= radius) {
        blocked = true;
        break;
      }
    }
    if (!blocked) kept.push_back(c);
  }
  return kept;
}

}  // namespace

KCenterResult SolveKCenterDoubling(std::span<const Point> points,
                                   const Metric& metric, size_t k) {
  size_t n = points.size();
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_LE(k, n);

  std::vector<size_t> centers;
  double threshold = 0.0;

  if (n <= k) {
    centers.resize(n);
    for (size_t i = 0; i < n; ++i) centers[i] = i;
  } else {
    // Initialization: first k+1 points, d_1 = their min pairwise distance.
    for (size_t i = 0; i <= k; ++i) centers.push_back(i);
    threshold = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i <= k; ++i) {
      for (size_t j = i + 1; j <= k; ++j) {
        threshold =
            std::min(threshold, metric.Distance(points[i], points[j]));
      }
    }
    auto shrink = [&] {
      for (;;) {
        centers = MergeCenters(points, metric, centers, 2.0 * threshold);
        if (centers.size() <= k) return;
        if (threshold > 0.0) {
          threshold *= 2.0;
        } else {
          double min_positive = std::numeric_limits<double>::infinity();
          for (size_t i = 0; i < centers.size(); ++i) {
            for (size_t j = i + 1; j < centers.size(); ++j) {
              double d =
                  metric.Distance(points[centers[i]], points[centers[j]]);
              if (d > 0.0) min_positive = std::min(min_positive, d);
            }
          }
          DIVERSE_CHECK_LT(min_positive,
                           std::numeric_limits<double>::infinity());
          threshold = min_positive;
        }
      }
    };
    shrink();
    for (size_t i = k + 1; i < n; ++i) {
      double dist = std::numeric_limits<double>::infinity();
      for (size_t c : centers) {
        dist = std::min(dist, metric.Distance(points[i], points[c]));
      }
      if (dist > 4.0 * threshold) {
        centers.push_back(i);
        if (centers.size() == k + 1) {
          threshold *= 2.0;
          shrink();
        }
      }
    }
  }

  KCenterResult result;
  result.centers = std::move(centers);
  result.assignment.assign(n, 0);
  // Final assignment: one blocked multi-center tile pass over the columnar
  // rows (every row block is loaded once for all centers instead of once per
  // center), recording the rank of the first nearest center exactly like the
  // per-center relax sweeps did. The pass is screened through the fused
  // Metric::ScreenedRelaxTile kernel: fp32 lane values prove most
  // (center, row) pairs cannot improve the row's distance without ever
  // materializing an fp32 tile, and only band hits are re-evaluated
  // exactly — assignment, radius, and ties are bit-identical to the exact
  // tile pass.
  Dataset data = Dataset::FromPoints(points);
  Dataset center_rows;
  for (size_t c : result.centers) center_rows.Append(points[c]);
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  size_t farthest;
  // When both sides are large and the centers' statistics are dominated by
  // the data's (OneShotIndexProfitable), a one-shot cover-tree traversal
  // prunes whole row ranges per center before the tile screen even runs —
  // still bit-identical.
  if (OneShotIndexProfitable(metric, center_rows, center_rows.size(), data)) {
    CoverTree tree = CoverTree::Build(data, metric);
    farthest = IndexedRelaxTilesAndArgFarthest(metric, center_rows, 0,
                                               center_rows.size(), 0, tree,
                                               dist, result.assignment);
  } else {
    farthest = ScreenedRelaxTilesAndArgFarthest(
        metric, center_rows, 0, center_rows.size(), 0, data, dist,
        result.assignment);
  }
  result.radius = dist[farthest];
  return result;
}

double ClusteringRadius(const Dataset& data, const Metric& metric,
                        std::span<const size_t> centers) {
  DIVERSE_CHECK(!centers.empty());
  Dataset center_rows;
  for (size_t c : centers) center_rows.Append(data.point(c));
  std::vector<double> dist(data.size(),
                           std::numeric_limits<double>::infinity());
  size_t farthest;
  if (OneShotIndexProfitable(metric, center_rows, center_rows.size(), data)) {
    CoverTree tree = CoverTree::Build(data, metric);
    farthest = IndexedRelaxTilesAndArgFarthest(
        metric, center_rows, 0, center_rows.size(), 0, tree, dist);
  } else {
    farthest = ScreenedRelaxTilesAndArgFarthest(
        metric, center_rows, 0, center_rows.size(), 0, data, dist);
  }
  return dist[farthest];
}

double ClusteringRadius(std::span<const Point> points, const Metric& metric,
                        std::span<const size_t> centers) {
  return ClusteringRadius(Dataset::FromPoints(points), metric, centers);
}

}  // namespace diverse
