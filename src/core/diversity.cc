#include "core/diversity.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "core/mst.h"
#include "core/tsp.h"
#include "util/check.h"
#include "util/rng.h"

namespace diverse {

std::string ProblemName(DiversityProblem problem) {
  switch (problem) {
    case DiversityProblem::kRemoteEdge:
      return "remote-edge";
    case DiversityProblem::kRemoteClique:
      return "remote-clique";
    case DiversityProblem::kRemoteStar:
      return "remote-star";
    case DiversityProblem::kRemoteBipartition:
      return "remote-bipartition";
    case DiversityProblem::kRemoteTree:
      return "remote-tree";
    case DiversityProblem::kRemoteCycle:
      return "remote-cycle";
  }
  return "unknown";
}

std::optional<DiversityProblem> ParseProblem(const std::string& name) {
  for (DiversityProblem p : kAllProblems) {
    if (ProblemName(p) == name) return p;
  }
  return std::nullopt;
}

bool RequiresInjectiveProxies(DiversityProblem problem) {
  switch (problem) {
    case DiversityProblem::kRemoteEdge:
    case DiversityProblem::kRemoteCycle:
      return false;
    case DiversityProblem::kRemoteClique:
    case DiversityProblem::kRemoteStar:
    case DiversityProblem::kRemoteBipartition:
    case DiversityProblem::kRemoteTree:
      return true;
  }
  return true;
}

double SequentialAlpha(DiversityProblem problem) {
  switch (problem) {
    case DiversityProblem::kRemoteEdge:
      return 2.0;  // GMM [Tamir 91 / Ravi et al.]
    case DiversityProblem::kRemoteClique:
      return 2.0;  // matching [Hassin-Rubinstein-Tamir 97]
    case DiversityProblem::kRemoteStar:
      return 2.0;  // matching [Chandra-Halldorsson 01]
    case DiversityProblem::kRemoteBipartition:
      return 3.0;  // matching [Chandra-Halldorsson 01]
    case DiversityProblem::kRemoteTree:
      return 4.0;  // greedy [Halldorsson et al. 99]
    case DiversityProblem::kRemoteCycle:
      return 3.0;  // greedy [Halldorsson et al. 99]
  }
  return 0.0;
}

double DiversityTermCount(DiversityProblem problem, size_t k) {
  double kd = static_cast<double>(k);
  switch (problem) {
    case DiversityProblem::kRemoteEdge:
      return 1.0;
    case DiversityProblem::kRemoteClique:
      return kd * (kd - 1.0) / 2.0;
    case DiversityProblem::kRemoteStar:
    case DiversityProblem::kRemoteTree:
      return kd - 1.0;
    case DiversityProblem::kRemoteBipartition:
      return static_cast<double>(k / 2) * static_cast<double>(k - k / 2);
    case DiversityProblem::kRemoteCycle:
      return kd;
  }
  return 0.0;
}

namespace {

double RemoteEdge(const DistanceMatrix& d) {
  size_t n = d.size();
  if (n < 2) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) best = std::min(best, d.at(i, j));
  }
  return best;
}

double RemoteClique(const DistanceMatrix& d) {
  size_t n = d.size();
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) sum += d.at(i, j);
  }
  return sum;
}

double RemoteStar(const DistanceMatrix& d) {
  size_t n = d.size();
  if (n < 2) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < n; ++c) {
    double s = 0.0;
    for (size_t q = 0; q < n; ++q) s += d.at(c, q);
    best = std::min(best, s);
  }
  return best;
}

// Cut weight of the bipartition encoded by `side` (side[i] == true -> Q).
double CutWeight(const DistanceMatrix& d, const std::vector<bool>& side) {
  double w = 0.0;
  size_t n = d.size();
  for (size_t i = 0; i < n; ++i) {
    if (!side[i]) continue;
    for (size_t j = 0; j < n; ++j) {
      if (!side[j]) w += d.at(i, j);
    }
  }
  return w;
}

}  // namespace

double BipartitionWeightExact(const DistanceMatrix& d) {
  size_t n = d.size();
  DIVERSE_CHECK_LE(n, kBipartitionExactLimit);
  if (n < 2) return 0.0;
  size_t q = n / 2;
  double best = std::numeric_limits<double>::infinity();
  std::vector<bool> side(n, false);
  // Enumerate all subsets of size q via bitmasks. Fixing element 0's side
  // would halve the work only for even n; plain enumeration keeps it simple.
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if (static_cast<size_t>(__builtin_popcountll(mask)) != q) continue;
    for (size_t i = 0; i < n; ++i) side[i] = (mask >> i) & 1;
    best = std::min(best, CutWeight(d, side));
  }
  return best;
}

double BipartitionWeightHeuristic(const DistanceMatrix& d) {
  size_t n = d.size();
  if (n < 2) return 0.0;
  size_t q = n / 2;
  Rng rng(0xB197A27ULL ^ n);  // fixed seed: deterministic evaluation
  double best = std::numeric_limits<double>::infinity();
  constexpr int kRestarts = 8;
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (int r = 0; r < kRestarts; ++r) {
    // Random balanced start.
    for (size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
    }
    std::vector<bool> side(n, false);
    for (size_t i = 0; i < q; ++i) side[perm[i]] = true;
    // Swap improvement: exchange one member of Q with one of S\Q while the
    // cut weight decreases.
    double cur = CutWeight(d, side);
    bool improved = true;
    while (improved) {
      improved = false;
      for (size_t a = 0; a < n && !improved; ++a) {
        if (!side[a]) continue;
        for (size_t b = 0; b < n; ++b) {
          if (side[b]) continue;
          // Delta of swapping a (in Q) with b (out): recompute incident cut
          // contributions. For every other vertex v: pairs (a,v) and (b,v)
          // flip their cut membership except the (a,b) pair itself.
          double delta = 0.0;
          for (size_t v = 0; v < n; ++v) {
            if (v == a || v == b) continue;
            if (side[v]) {
              delta += d.at(a, v) - d.at(b, v);
            } else {
              delta += d.at(b, v) - d.at(a, v);
            }
          }
          if (delta < -1e-12) {
            side[a] = false;
            side[b] = true;
            cur += delta;
            improved = true;
            break;
          }
        }
      }
    }
    best = std::min(best, cur);
  }
  return best;
}

double EvaluateDiversity(DiversityProblem problem, const DistanceMatrix& d) {
  switch (problem) {
    case DiversityProblem::kRemoteEdge:
      return RemoteEdge(d);
    case DiversityProblem::kRemoteClique:
      return RemoteClique(d);
    case DiversityProblem::kRemoteStar:
      return RemoteStar(d);
    case DiversityProblem::kRemoteBipartition:
      return d.size() <= kBipartitionExactLimit ? BipartitionWeightExact(d)
                                                : BipartitionWeightHeuristic(d);
    case DiversityProblem::kRemoteTree:
      return MstWeight(d);
    case DiversityProblem::kRemoteCycle:
      return TspWeightAuto(d);
  }
  return 0.0;
}

double EvaluateDiversity(DiversityProblem problem,
                         std::span<const Point> solution,
                         const Metric& metric) {
  return EvaluateDiversity(problem, DistanceMatrix(solution, metric));
}

double EvaluateDiversitySubset(DiversityProblem problem, const Dataset& data,
                               std::span<const size_t> rows,
                               const Metric& metric) {
  Dataset subset;
  for (size_t idx : rows) subset.Append(data.point(idx));
  return EvaluateDiversity(problem, DistanceMatrix(subset, metric));
}

}  // namespace diverse
