// Sequential approximation algorithms for the six diversity problems — the
// "alpha" algorithms of Table 1 that run on (core-sets of) the data.
//
// Following the paper (Section 6: "the best sequential approximation
// algorithms ... are essentially based on either finding a maximal matching
// or running GMM on the input set"):
//   * remote-edge, remote-tree, remote-cycle: the k-prefix of GMM
//     (2-, 4-, 3-approximate respectively);
//   * remote-clique, remote-star, remote-bipartition: greedy heaviest-pair
//     matching [Hassin-Rubinstein-Tamir 97; Chandra-Halldorsson 01]
//     (2-, 2-, 3-approximate).
// Both families have multiplicity-aware adaptations (Fact 2) used with
// generalized core-sets.

#ifndef DIVERSE_CORE_SEQUENTIAL_H_
#define DIVERSE_CORE_SEQUENTIAL_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/distance_matrix.h"
#include "core/diversity.h"
#include "core/generalized_coreset.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// Farthest-first traversal driven by a distance matrix instead of points.
/// Returns the k selected row indices in selection order.
std::vector<size_t> GmmOnMatrix(const DistanceMatrix& d, size_t k,
                                size_t first = 0);

/// Greedy heaviest-pair matching on a distance matrix: repeatedly picks the
/// farthest pair among unused rows until k points are chosen; for odd k the
/// last point maximizes its distance sum to the chosen set. One streaming
/// O(n^2) row scan fills a top-pair buffer that the greedy loop consumes
/// (plus rare refill scans over live rows), so the former k/2 full rescans
/// are gone: ~O(n^2 + k^2 log k) total.
std::vector<size_t> GreedyMatchingOnMatrix(const DistanceMatrix& d, size_t k);

/// Greedy heaviest-pair matching evaluated on the fly (no matrix storage),
/// for point sets too large to materialize n^2 distances. The pair scans
/// stream blocked Q x R distance tiles over the columnar storage; refill
/// scans first compact the live rows into a scratch Dataset so used rows'
/// distances are never recomputed (exactly live*(live-1)/2 evaluations per
/// refill).
std::vector<size_t> GreedyMatchingOnDataset(const Dataset& data,
                                            const Metric& metric, size_t k);

/// Shim: copies `points` into a Dataset and matches on it.
std::vector<size_t> GreedyMatchingOnPoints(std::span<const Point> points,
                                           const Metric& metric, size_t k);

/// Solves the problem on the rows of `d`, returning k row indices.
/// Dispatches to GmmOnMatrix or GreedyMatchingOnMatrix by problem family.
std::vector<size_t> SolveSequentialOnMatrix(DiversityProblem problem,
                                            const DistanceMatrix& d, size_t k);

/// Solves the problem on the rows of `data`, returning k row indices.
/// GMM-family problems cost O(k n) distances; matching-family ~n^2/2 (one
/// buffered pair scan plus rare refills). Both run on the columnar batch
/// kernels. Requires k <= data.size().
std::vector<size_t> SolveSequential(DiversityProblem problem,
                                    const Dataset& data, const Metric& metric,
                                    size_t k);

/// Shim: copies `points` into a Dataset and solves on it.
std::vector<size_t> SolveSequential(DiversityProblem problem,
                                    std::span<const Point> points,
                                    const Metric& metric, size_t k);

/// Scan policy for LocalSearchRemoteClique.
enum class LocalSearchScan : uint8_t {
  /// Continue the candidate sweep after an improving swap (our optimized
  /// variant: converges in few sweeps).
  kContinue,
  /// Restart the candidate scan from the beginning after every improving
  /// swap — the literal reading of the published local-search pseudocode,
  /// and the source of the AFZ baseline's superlinear running time
  /// (cost ~ #improvements * n * k).
  kRestart,
};

/// Local-search improvement for remote-clique: starting from `initial`
/// (k indices into `points`), repeatedly swaps a chosen point for an outside
/// point while the sum of pairwise distances improves. With kContinue,
/// `max_sweeps` bounds the number of full candidate sweeps; with kRestart it
/// bounds the number of accepted swaps (a termination safety valve — the
/// search normally stops at a local optimum). This is the (intentionally
/// expensive) core-set construction of the AFZ baseline
/// [Aghamolaei et al., CCCG 15]; exposed here so tests can exercise it.
std::vector<size_t> LocalSearchRemoteClique(
    std::span<const Point> points, const Metric& metric,
    std::vector<size_t> initial, size_t max_sweeps,
    LocalSearchScan scan = LocalSearchScan::kContinue);

/// Fact 2: the multiplicity-aware adaptation. Runs the sequential algorithm
/// for `problem` on the capped expansion of `coreset` (replicas at distance
/// zero) and returns the selected multiset as a coherent subset T-hat with
/// expanded size exactly k. Requires coreset.ExpandedSize() >= k.
GeneralizedCoreset SolveSequentialGeneralized(DiversityProblem problem,
                                              const GeneralizedCoreset& coreset,
                                              const Metric& metric, size_t k);

}  // namespace diverse

#endif  // DIVERSE_CORE_SEQUENTIAL_H_
