#include "core/cover_tree.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "core/screen.h"
#include "util/check.h"
#include "util/rng.h"

namespace diverse {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Leaf ranges hold up to this many rows: large enough that the screened
// leaf sweeps amortize their per-range setup (one fp32 chunk), small enough
// that node prunes retire meaningful work.
constexpr size_t kLeafRows = 256;

// Hard depth cap: the two-pole split provably makes progress whenever the
// node radius is positive, but adversarial layouts (near-duplicates under a
// coarse metric) could split 1-vs-rest for a long time; the cap bounds both
// build recursion and traversal recursion.
constexpr size_t kMaxDepth = 64;

std::atomic<bool> g_indexing_enabled{true};

IndexGate g_index_gate;

// Merge two ascending rank lists (each rank enters the tree once per
// traversal, so the inputs are disjoint and the output stays strictly
// ascending).
void MergeRanks(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
                std::vector<uint32_t>& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
}

}  // namespace

bool IndexingEnabled() {
  return g_indexing_enabled.load(std::memory_order_relaxed);
}

void SetIndexingEnabled(bool enabled) {
  g_indexing_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedIndexing::ScopedIndexing(bool enabled) : prev_(IndexingEnabled()) {
  SetIndexingEnabled(enabled);
}

ScopedIndexing::~ScopedIndexing() { SetIndexingEnabled(prev_); }

bool UseIndexing(const Metric& metric) {
  return IndexingEnabled() && metric.SupportsMetricIndexing();
}

const IndexGate& GetIndexGate() { return g_index_gate; }

void SetIndexGateForTesting(const IndexGate& gate) { g_index_gate = gate; }

bool IndexProfitable(const Dataset& data, const Metric& metric, size_t k) {
  const IndexGate& g = GetIndexGate();
  if (g.force < 0) return false;
  if (g.force > 0) return true;
  if (data.size() < g.min_rows || k < g.min_k) return false;
  // Probe: a deterministic fixed-seed sample runs a short farthest-first
  // loop; the decay of its selection distances estimates the doubling
  // dimension. For m centers on a d-dimensional corpus
  // sel[j] ~ diam * j^(-1/d), so d_hat = log(m - 1) / log(sel[1] /
  // sel[m - 1]). The probe costs O(sample * m) screened evaluations — a few
  // percent of ONE flat sweep at the gate minimums, against the k sweeps at
  // stake. The sample is drawn with a FIXED seed (same data + k -> same
  // verdict, always) rather than by striding: stride sampling resonates
  // with interleaved cluster layouts (stride == cluster count samples a
  // single cluster) and misestimates badly.
  size_t sample = std::min(g.probe_sample, data.size() / 8);
  size_t m = std::min(g.probe_centers, k / 4);
  if (m < 4 || sample < 2 * m) return false;  // unprobeable (custom gate)
  Rng rng(0x1dcbULL * 0x9E3779B97F4A7C15ULL);
  Dataset probe;
  for (size_t i = 0; i < sample; ++i) {
    probe.Append(data.point(rng.NextBounded(data.size())));
  }
  std::vector<double> dist(sample, kInf);
  std::vector<double> sel(m, 0.0);
  size_t cur = 0;
  for (size_t j = 1; j < m; ++j) {
    size_t far = ScreenedRelaxArgFarthest(metric, probe, cur, probe, dist);
    sel[j] = dist[far];
    cur = far;
  }
  double d1 = sel[1];
  double dm = sel[m - 1];
  if (!(d1 > 0.0)) return true;  // duplicate-dominated sample: trivial prunes
  double ratio = dm / d1;
  if (!(ratio > 0.0)) return true;  // at most m clusters in the sample
  if (ratio >= 1.0) return false;   // no decay: no usable geometry
  double d_hat =
      std::log(static_cast<double>(m - 1)) / std::log(1.0 / ratio);
  return d_hat <= g.max_probe_dim;
}

bool OneShotIndexProfitable(const Metric& metric, const Dataset& queries,
                            size_t nq, const Dataset& data) {
  if (!UseIndexing(metric)) return false;
  const IndexGate& g = GetIndexGate();
  if (g.force < 0) return false;
  if (g.force == 0 && (data.size() < g.oneshot_min_rows ||
                       nq < g.oneshot_min_centers)) {
    return false;
  }
  // Slack coverage (soundness, not profitability — enforced even under
  // force): the tree's certified band reads the DATA's statistics, so every
  // query row's must be dominated by them; Metric::IndexSlack is monotone
  // in these statistics, exactly like the PersistentScreenContext bound.
  if (queries.dim() != data.dim()) return false;
  if (queries.has_dense_rows() && !data.has_dense_rows()) return false;
  if (queries.sparse_stats().max_nnz > data.sparse_stats().max_nnz) {
    return false;
  }
  if (queries.screen_stats().min_positive_norm <
      data.screen_stats().min_positive_norm) {
    return false;
  }
  return true;
}

CoverTree CoverTree::Build(const Dataset& data, const Metric& metric) {
  CoverTree t;
  const size_t n = data.size();
  t.perm_.resize(n);
  std::iota(t.perm_.begin(), t.perm_.end(), size_t{0});
  if (n == 0) {
    t.slack_ = metric.IndexSlack(data);
    return t;
  }
  struct Frame {
    size_t begin, end, parent;
    size_t center;  // ORIGINAL id of the node center (a row of the range)
    bool is_left;
  };
  std::vector<Frame> level, next_level;
  level.push_back({0, n, SIZE_MAX, t.perm_[0], false});
  std::vector<double> da;
  // Center distances, position-aligned with the current perm: dc_cur[pos] =
  // computed d(center of the owning frame, row at pos). Children INHERIT
  // their center distances from the parent's split arrays (left center is
  // pole A whose distances are `da`, right center is the parent center
  // whose distances are dc_cur), so only the root pays a center sweep —
  // every other node pays exactly one sweep, for its own pole A.
  std::vector<double> dc_cur(n), dc_next(n);
  std::vector<std::pair<double, uint32_t>> keys, kscratch;
  std::vector<size_t> scratch;
  // Certified fp32 build sweeps. The build needs two things from each
  // sweep: pole choices (ANY deterministic rule is correct) and a SOUND
  // node radius. When screening is enabled and the certified fp32 bound is
  // usable, sweep in fp32 and inflate the stored radius by the bound
  // (true <= (computed + abs) / (1 - rel)), roughly halving the build's
  // kernel cost. Tree SHAPE can differ from an exact-double build, but
  // every traversal result is shape-independent — prunes are sound for any
  // radius upper bound, and the fold/argmax replay the flat sweep's
  // original-id order — so results stay bit-identical either way.
  ScreenBound build_sb{};
  double build_sb_inv = 0.0;
  bool f32_sweeps = false;
  if (UseScreening(metric)) {
    build_sb = metric.ScreenErrorBound(data, data);
    if (build_sb.rel < 1.0) {
      build_sb_inv = (1.0 + 1e-12) / (1.0 - build_sb.rel);
      f32_sweeps = true;
    }
  }
  std::vector<float> fbuf;
  // BFS over levels with a PING-PONG materialization of the current perm:
  // `cur` always holds the rows in the present perm order, so every node
  // range is a contiguous slab of it and the pole sweeps run with no
  // per-node gather at all. After each level with splits, the next buffer
  // is gathered once from the (cache-warm) current one via the local
  // new-position -> old-position map; when the loop ends the live buffer
  // IS the leaf-order dataset and is moved into leaf_data_ for free.
  // Scattered per-row access would cost ~5x the kernel itself at depth,
  // and re-gathering every node from the original dataset costs another
  // ~40% of the build — this keeps all copies sequential and local.
  Dataset buf_a, buf_b;
  const Dataset* cur = &data;  // level 0: perm is the identity
  Dataset* cur_mut = nullptr;  // set once a gather produced `cur`
  std::vector<uint32_t> next_local;
  auto sweep = [&](size_t q_orig, size_t begin, size_t m, double* out) {
    if (f32_sweeps) {
      fbuf.resize(m);
      metric.DistanceToManyF32(data.point(q_orig), *cur, begin,
                               std::span<float>(fbuf.data(), m));
      for (size_t i = 0; i < m; ++i) out[i] = fbuf[i];
    } else {
      metric.DistanceToMany(data.point(q_orig), *cur, begin,
                            std::span<double>(out, m));
    }
    t.build_evals_ += m;
  };
  // Only the root pays a center sweep; every other node inherits its center
  // distances from its parent's split.
  sweep(t.perm_[0], 0, n, dc_cur.data());
  size_t depth = 0;
  while (!level.empty()) {
    bool any_split = false;
    next_level.clear();
    for (const Frame& f : level) {
      const size_t id = t.nodes_.size();
      t.nodes_.emplace_back();
      if (f.parent != SIZE_MAX) {
        (f.is_left ? t.nodes_[f.parent].left : t.nodes_[f.parent].right) = id;
      }
      const size_t m = f.end - f.begin;
      // The frame's center is an ORIGINAL id (a row of the range); its
      // distances to the range sit in dc_cur, inherited from the parent's
      // split. Centers are stored as original ids for now: later splits
      // reorder perm_ inside descendant ranges, so leaf positions are only
      // final after the build; a post-pass rewrites every center through
      // inv_perm_.
      const size_t center_orig = f.center;
      double radius = 0.0;
      size_t a_idx = 0;   // first argmax: pole A
      size_t c_idx = 0;   // position of the center row within the range
      size_t min_orig = t.perm_[f.begin];
      for (size_t i = 0; i < m; ++i) {
        const double d = dc_cur[f.begin + i];
        if (d > radius) {
          radius = d;
          a_idx = i;
        }
        const size_t orig = t.perm_[f.begin + i];
        if (orig == center_orig) c_idx = i;
        min_orig = std::min(min_orig, orig);
      }
      Node& nd = t.nodes_[id];
      nd.begin = f.begin;
      nd.end = f.end;
      nd.center = center_orig;
      nd.min_orig = min_orig;
      // fp32 sweeps store the certified upper bound on the true max
      // distance; the split decision below keys off the raw computed max
      // (a zero fp32 max with a tiny inflated radius would only produce a
      // degenerate split, which the forced poles below resolve anyway).
      nd.radius =
          f32_sweeps ? (radius + build_sb.abs) * build_sb_inv : radius;
      if (m <= kLeafRows || radius == 0.0 || depth >= kMaxDepth) continue;
      // Balanced bisector split: pole A = farthest row from the center,
      // split key = (d(row, A) - d(row, center), original id) — rows sort
      // along the center->A axis (the classic two-pole rule compares the
      // same kind of difference), and the median pivot (nth_element on a
      // copy, stable linear partition by key <= pivot) keeps the tree
      // depth-balanced even on tie-heavy metrics like Jaccard, where the
      // id tiebreak resolves equal keys deterministically. A is FORCED
      // left and the center FORCED right (their keys are extremal up to
      // ties, so this moves at most a tie): the left child keeps A as its
      // center with `da` as its inherited distances, the right keeps the
      // parent center with dc_cur — membership holds by induction and no
      // child ever pays a center sweep.
      const size_t a_orig = t.perm_[f.begin + a_idx];
      da.resize(m);
      sweep(a_orig, f.begin, m, da.data());
      keys.resize(m);
      for (size_t i = 0; i < m; ++i) {
        keys[i] = {da[i] - dc_cur[f.begin + i],
                   static_cast<uint32_t>(t.perm_[f.begin + i])};
      }
      const size_t half = m / 2;
      kscratch = keys;
      std::nth_element(kscratch.begin(), kscratch.begin() + (half - 1),
                       kscratch.end());
      const std::pair<double, uint32_t> pivot = kscratch[half - 1];
      if (!any_split) {
        any_split = true;
        next_local.resize(n);
        std::iota(next_local.begin(), next_local.end(), uint32_t{0});
      }
      // One stable pass per side fills the new perm slice (original ids),
      // the gather map (positions within `cur`), and the child's inherited
      // center distances.
      scratch.clear();
      size_t pos = f.begin;
      for (size_t i = 0; i < m; ++i) {
        const bool left = (i == a_idx) ||
                          (i != c_idx && keys[i] <= pivot);
        if (left) {
          scratch.push_back(keys[i].second);
          dc_next[pos] = da[i];
          next_local[pos++] = static_cast<uint32_t>(f.begin + i);
        }
      }
      const size_t nl = pos - f.begin;
      for (size_t i = 0; i < m; ++i) {
        const bool left = (i == a_idx) ||
                          (i != c_idx && keys[i] <= pivot);
        if (!left) {
          scratch.push_back(keys[i].second);
          dc_next[pos] = dc_cur[f.begin + i];
          next_local[pos++] = static_cast<uint32_t>(f.begin + i);
        }
      }
      DIVERSE_CHECK_GE(nl, size_t{1});
      DIVERSE_CHECK_LT(nl, m);
      std::copy(scratch.begin(), scratch.end(), t.perm_.begin() + f.begin);
      next_level.push_back({f.begin, f.begin + nl, id, a_orig, true});
      next_level.push_back({f.begin + nl, f.end, id, center_orig, false});
    }
    if (any_split) {
      Dataset& dst = (cur == &buf_a) ? buf_b : buf_a;
      dst.AssignGatherColumnar(*cur, next_local);
      cur = &dst;
      cur_mut = &dst;
      // The children's inherited center distances were written at the NEW
      // positions; positions outside split frames go stale, but only child
      // frames (all freshly written) are ever read next level.
      dc_cur.swap(dc_next);
    }
    level.swap(next_level);
    ++depth;
  }
  t.inv_perm_.resize(n);
  for (size_t l = 0; l < n; ++l) t.inv_perm_[t.perm_[l]] = l;
  for (Node& nd : t.nodes_) nd.center = t.inv_perm_[nd.center];
  if (cur_mut != nullptr) {
    t.leaf_data_ = std::move(*cur_mut);
  } else {
    // Never split: the leaf order is the identity.
    next_local.resize(n);
    std::iota(next_local.begin(), next_local.end(), uint32_t{0});
    t.leaf_data_.AssignGatherColumnar(data, next_local);
  }
  t.slack_ = metric.IndexSlack(t.leaf_data_);
  return t;
}

namespace {

// One traversal over a shared tree: per-node stale upper bounds `ub` on
// max_{r in node} d(r, selected set), per-node stashed center ranks `pend`
// (sorted, replayed on the next visit), and `hpb` ("has pending below") so
// Flush can skip fully-materialized subtrees. Soundness invariants:
//
//   * ub[v] >= max_{r in v} dist*(r) at all times, where dist*(r) is the
//     TRUE fold min of r over every rank seen so far (materialized or not).
//     dist* only decreases, so stale bounds stay valid. Tightening by
//     Inflate(dc + radius) is valid for ANY tested rank (triangle
//     inequality through the node center, slack-inflated); leaf refreshes
//     are exact because at a visited leaf the applied fold equals dist*.
//   * A center prune (Deflate(dc) - radius > cur_ub) certifies
//     d(rank, r) > dist*(r) STRICTLY for every row of the node: the rank
//     can neither improve any row nor tie one (assignments keep their
//     first-rank-wins winner). Prune tests are order-independent, so
//     stashed ranks may be re-tested later under tighter bounds.
//   * An argmax prune (child_ub < best_val, or equal with min_orig >
//     best_orig) certifies no row of the child can beat — or tie with a
//     smaller original id — the current best, matching the flat argmax's
//     ascending-original-index strict-> fold.
//
// Traversals are strictly sequential (deterministic counters at any thread
// count); the tree itself is read-only and shareable.
struct LazyTraversal {
  const CoverTree& tree;
  const Metric& metric;
  const Dataset& centers;  // dataset the center rows live in
  const Dataset& leaf;     // tree.leaf_data()
  RelaxScreenPlan plan;
  std::span<double> dist;    // leaf-order running fold
  std::span<size_t> assign;  // leaf-order assignment (may be empty)
  std::vector<uint32_t> center_rows;  // rank -> row id in `centers`
  size_t rank_base = 0;
  CoverTreeQueryStats* stats = nullptr;
  std::vector<double> ub;
  std::vector<std::vector<uint32_t>> pend;
  std::vector<uint8_t> hpb;
  bool track_best = false;
  double best_val = -kInf;
  size_t best_orig = SIZE_MAX;

  LazyTraversal(const CoverTree& t, const Metric& m, const Dataset& c,
                std::span<double> d, std::span<size_t> a,
                CoverTreeQueryStats* s)
      : tree(t), metric(m), centers(c), leaf(t.leaf_data()), dist(d),
        assign(a), stats(s) {
    plan = PlanScreenedRelax(metric, centers, leaf);
    ub.assign(tree.nodes().size(), kInf);
    pend.resize(tree.nodes().size());
    hpb.assign(tree.nodes().size(), 0);
  }

  // Exact max of the materialized fold over a leaf range (equals the true
  // max dist* there — every row's minimizing rank is always applied).
  double LeafMax(const CoverTree::Node& nd) const {
    double mx = 0.0;
    for (size_t r = nd.begin; r < nd.end; ++r) mx = std::max(mx, dist[r]);
    return mx;
  }

  // Tests `down` + stashed ranks against the node bound; survivors land in
  // `keeps` and tighten cur_ub. Shared by Search and Flush.
  double TestRanks(size_t v, const std::vector<uint32_t>& down,
                   double inherited, std::vector<uint32_t>& keeps) {
    const CoverTree::Node& nd = tree.nodes()[v];
    std::vector<uint32_t> merged;
    MergeRanks(pend[v], down, merged);
    pend[v].clear();
    double cur_ub = std::min(ub[v], inherited);
    keeps.clear();
    keeps.reserve(merged.size());
    const size_t span_rows = nd.end - nd.begin;
    for (uint32_t rank : merged) {
      double dc =
          metric.DistanceRows(centers, center_rows[rank], leaf, nd.center);
      ++stats->bound_evals;
      if (tree.Deflate(dc) - nd.radius > cur_ub) {
        stats->pruned_pairs += span_rows;
      } else {
        keeps.push_back(rank);
        cur_ub = std::min(cur_ub, tree.Inflate(dc + nd.radius));
      }
    }
    return cur_ub;
  }

  // Applies the surviving ranks to a leaf range through the flat screened
  // kernel (ascending rank order — the flat sweep's center order, so the
  // per-pair fold and every rescue decision is the flat sweep's restricted
  // to these rows).
  void ApplyLeaf(const CoverTree::Node& nd,
                 const std::vector<uint32_t>& keeps) {
    ++stats->leaf_opens;
    const size_t span_rows = nd.end - nd.begin;
    for (uint32_t rank : keeps) {
      stats->applied_pairs += span_rows;
      stats->exact_evals += ScreenedRelaxRange(
          metric, centers, center_rows[rank], leaf, nd.begin, span_rows, plan,
          dist, assign, rank_base + rank);
    }
  }

  // One GMM step: push the newest rank down, replay stashes, track the
  // global argmax, and argmax-prune subtrees that provably cannot win.
  void Search(size_t v, const std::vector<uint32_t>& down, double inherited) {
    ++stats->node_visits;
    const CoverTree::Node& nd = tree.nodes()[v];
    std::vector<uint32_t> keeps;
    double cur_ub = TestRanks(v, down, inherited, keeps);
    if (nd.left == 0) {
      ApplyLeaf(nd, keeps);
      const auto& perm = tree.perm();
      for (size_t r = nd.begin; r < nd.end; ++r) {
        double val = dist[r];
        if (val > best_val || (val == best_val && perm[r] < best_orig)) {
          best_val = val;
          best_orig = perm[r];
        }
      }
      ub[v] = LeafMax(nd);
      return;
    }
    const size_t l = nd.left;
    const size_t r = nd.right;
    // Visit the higher-bound child first (ties left): its leaves raise
    // best_val fastest, so the sibling — and most of the frontier — argmax-
    // prunes.
    const size_t first =
        (std::min(ub[r], cur_ub) > std::min(ub[l], cur_ub)) ? r : l;
    const size_t second = (first == l) ? r : l;
    for (size_t w : {first, second}) {
      const double child_ub = std::min(ub[w], cur_ub);
      const CoverTree::Node& cw = tree.nodes()[w];
      if (child_ub < best_val ||
          (child_ub == best_val && cw.min_orig > best_orig)) {
        // No row below can win the argmax; stash the surviving ranks for
        // the subtree's next visit instead of descending.
        if (!keeps.empty()) {
          std::vector<uint32_t> merged;
          MergeRanks(pend[w], keeps, merged);
          pend[w] = std::move(merged);
        }
      } else {
        Search(w, keeps, cur_ub);
      }
    }
    ub[v] = std::min(cur_ub, std::max(ub[l], ub[r]));
    hpb[v] = static_cast<uint8_t>(!pend[l].empty() || !pend[r].empty() ||
                                  hpb[l] != 0 || hpb[r] != 0);
  }

  // Materializes every row: drains stashes (and carries `down` ranks) with
  // the same center-prune test, no argmax. After Flush(root) the leaf-order
  // fold equals the full flat fold at every row.
  void Flush(size_t v, const std::vector<uint32_t>& down, double inherited) {
    ++stats->node_visits;
    const CoverTree::Node& nd = tree.nodes()[v];
    std::vector<uint32_t> keeps;
    double cur_ub = TestRanks(v, down, inherited, keeps);
    if (nd.left == 0) {
      if (!keeps.empty()) {
        ApplyLeaf(nd, keeps);
        ub[v] = LeafMax(nd);
      } else {
        ub[v] = cur_ub;
      }
      return;
    }
    const size_t l = nd.left;
    const size_t r = nd.right;
    for (size_t w : {l, r}) {
      if (!keeps.empty() || !pend[w].empty() || hpb[w] != 0) {
        Flush(w, keeps, cur_ub);
      }
    }
    ub[v] = std::min(cur_ub, std::max(ub[l], ub[r]));
    hpb[v] = 0;
  }
};

}  // namespace

GmmResult LazyGreedyGmm(const Dataset& data, const CoverTree& tree,
                        const Metric& metric, size_t k, size_t first,
                        CoverTreeQueryStats* stats) {
  const size_t n = data.size();
  DIVERSE_CHECK_EQ(n, tree.size());
  DIVERSE_CHECK_GE(k, size_t{1});
  DIVERSE_CHECK_LE(k, n);
  DIVERSE_CHECK_LT(first, n);
  CoverTreeQueryStats local;
  if (stats == nullptr) stats = &local;
  // The QUERY side of the traversal is the original dataset: center rows
  // are addressed by original id, so the screened kernels read value-typed
  // query points from `data` (leaf_data is columnar-only scratch). The two
  // datasets hold the same multiset of rows, so every aggregate screening
  // statistic — and therefore the plan and bound — is identical either way.
  std::vector<double> dist_leaf(n, kInf);
  std::vector<size_t> assign_leaf(n, 0);
  LazyTraversal trav(tree, metric, data, dist_leaf, assign_leaf, stats);
  GmmResult result;
  result.selected.reserve(k);
  result.selection_distance.reserve(k);
  result.selected.push_back(first);
  result.selection_distance.push_back(kInf);
  trav.center_rows.push_back(static_cast<uint32_t>(first));
  std::vector<uint32_t> down(1);
  for (size_t step = 1; step <= k; ++step) {
    trav.best_val = -kInf;
    trav.best_orig = SIZE_MAX;
    down[0] = static_cast<uint32_t>(step - 1);
    trav.Search(0, down, kInf);
    if (step == k) {
      result.range = trav.best_val;
      break;
    }
    result.selected.push_back(trav.best_orig);
    result.selection_distance.push_back(trav.best_val);
    trav.center_rows.push_back(static_cast<uint32_t>(trav.best_orig));
  }
  const std::vector<uint32_t> none;
  trav.Flush(0, none, kInf);
  result.assignment.resize(n);
  result.distance_to_selected.resize(n);
  const auto& perm = tree.perm();
  for (size_t l = 0; l < n; ++l) {
    result.distance_to_selected[perm[l]] = dist_leaf[l];
    result.assignment[perm[l]] = assign_leaf[l];
  }
  return result;
}

size_t IndexedRelaxTilesAndArgFarthest(const Metric& metric,
                                       const Dataset& queries, size_t q_begin,
                                       size_t nq, size_t rank_base,
                                       const CoverTree& tree,
                                       std::span<double> dist,
                                       std::span<size_t> assignment,
                                       CoverTreeQueryStats* stats) {
  const size_t n = tree.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  if (n == 0) return 0;
  CoverTreeQueryStats local;
  if (stats == nullptr) stats = &local;
  const auto& perm = tree.perm();
  std::vector<double> dist_leaf(n);
  for (size_t l = 0; l < n; ++l) dist_leaf[l] = dist[perm[l]];
  std::vector<size_t> assign_leaf;
  if (!assignment.empty()) {
    assign_leaf.resize(n);
    for (size_t l = 0; l < n; ++l) assign_leaf[l] = assignment[perm[l]];
  }
  LazyTraversal trav(tree, metric, queries, dist_leaf, assign_leaf, stats);
  trav.rank_base = rank_base;
  trav.center_rows.resize(nq);
  for (size_t q = 0; q < nq; ++q) {
    trav.center_rows[q] = static_cast<uint32_t>(q_begin + q);
  }
  // Bounds start from the INCOMING fold (reverse id order visits children
  // before parents), so later centers prune against both earlier centers
  // and whatever the caller's dist already achieved.
  const auto& nodes = tree.nodes();
  for (size_t i = nodes.size(); i-- > 0;) {
    const CoverTree::Node& nd = nodes[i];
    if (nd.left == 0) {
      trav.ub[i] = trav.LeafMax(nd);
    } else {
      trav.ub[i] = std::max(trav.ub[nd.left], trav.ub[nd.right]);
    }
  }
  std::vector<uint32_t> all(nq);
  std::iota(all.begin(), all.end(), uint32_t{0});
  trav.Flush(0, all, kInf);
  for (size_t l = 0; l < n; ++l) dist[perm[l]] = dist_leaf[l];
  if (!assignment.empty()) {
    for (size_t l = 0; l < n; ++l) assignment[perm[l]] = assign_leaf[l];
  }
  size_t best = 0;
  double best_val = dist[0];
  for (size_t i = 1; i < n; ++i) {
    if (dist[i] > best_val) {
      best_val = dist[i];
      best = i;
    }
  }
  return best;
}

}  // namespace diverse
