#include "core/mst.h"

#include <limits>

#include "util/check.h"

namespace diverse {

std::vector<std::pair<size_t, size_t>> MstEdges(const DistanceMatrix& d) {
  size_t n = d.size();
  std::vector<std::pair<size_t, size_t>> edges;
  if (n < 2) return edges;
  edges.reserve(n - 1);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);
  std::vector<size_t> parent(n, 0);
  std::vector<bool> in_tree(n, false);

  in_tree[0] = true;
  for (size_t j = 1; j < n; ++j) best[j] = d.at(0, j);

  for (size_t added = 1; added < n; ++added) {
    size_t next = n;
    double next_dist = kInf;
    for (size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < next_dist) {
        next_dist = best[j];
        next = j;
      }
    }
    DIVERSE_CHECK_LT(next, n);
    in_tree[next] = true;
    edges.emplace_back(parent[next], next);
    for (size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && d.at(next, j) < best[j]) {
        best[j] = d.at(next, j);
        parent[j] = next;
      }
    }
  }
  return edges;
}

double MstWeight(const DistanceMatrix& d) {
  double w = 0.0;
  for (const auto& [a, b] : MstEdges(d)) w += d.at(a, b);
  return w;
}

}  // namespace diverse
