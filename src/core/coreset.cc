#include "core/coreset.h"

#include "util/check.h"

namespace diverse {

Coreset GmmCoreset(const Dataset& data, const Metric& metric,
                   size_t k_prime) {
  GmmResult gmm = Gmm(data, metric, k_prime);
  Coreset out;
  out.points.reserve(gmm.selected.size());
  out.indices = gmm.selected;
  for (size_t idx : gmm.selected) out.points.push_back(data.point(idx));
  return out;
}

Coreset GmmCoreset(std::span<const Point> points, const Metric& metric,
                   size_t k_prime) {
  return GmmCoreset(Dataset::FromPoints(points), metric, k_prime);
}

Coreset GmmExtCoreset(const Dataset& data, const Metric& metric,
                      size_t k_prime, size_t delegates_per_cluster) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(k_prime, 1u);
  DIVERSE_CHECK_LE(k_prime, n);
  GmmResult gmm = Gmm(data, metric, k_prime);

  // Collect each cluster's members; gmm.assignment already breaks ties
  // toward the earliest-selected center, matching the C_j of Algorithm 1.
  Coreset out;
  out.points.reserve(k_prime);
  out.indices.reserve(k_prime);
  std::vector<std::vector<size_t>> cluster(k_prime);
  for (size_t i = 0; i < n; ++i) {
    cluster[gmm.assignment[i]].push_back(i);
  }
  for (size_t j = 0; j < k_prime; ++j) {
    size_t center = gmm.selected[j];
    out.points.push_back(data.point(center));
    out.indices.push_back(center);
    size_t taken = 0;
    for (size_t member : cluster[j]) {
      if (member == center) continue;
      if (taken == delegates_per_cluster) break;
      out.points.push_back(data.point(member));
      out.indices.push_back(member);
      ++taken;
    }
  }
  return out;
}

Coreset GmmExtCoreset(std::span<const Point> points, const Metric& metric,
                      size_t k_prime, size_t delegates_per_cluster) {
  return GmmExtCoreset(Dataset::FromPoints(points), metric, k_prime,
                       delegates_per_cluster);
}

}  // namespace diverse
