// Point representation for metric-space algorithms.
//
// The paper's experiments use two kinds of points: low-dimensional dense
// Euclidean vectors (synthetic R^2 / R^3 datasets) and high-dimensional
// sparse word-count vectors under the cosine distance (musiXmatch, 5000
// dims). `Point` supports both in a single value type so that the same
// algorithms (GMM, SMM, MapReduce drivers) run unchanged on either.

#ifndef DIVERSE_CORE_POINT_H_
#define DIVERSE_CORE_POINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/vector_kernels.h"

namespace diverse {

/// An immutable point: either a dense vector of floats, or a sparse vector
/// (sorted coordinate indices plus values) over a conceptual `dim()`-sized
/// space. The Euclidean norm is precomputed at construction because the
/// cosine distance evaluates it on every call.
class Point {
 public:
  /// Default-constructs an empty dense point (needed by containers).
  Point() = default;

  Point(const Point&) = default;
  Point(Point&&) = default;
  Point& operator=(const Point&) = default;
  Point& operator=(Point&&) = default;

  /// Creates a dense point from coordinate values.
  static Point Dense(std::vector<float> values);

  /// Convenience for small literals: Dense({x, y, z}).
  static Point Dense2(float x, float y);
  static Point Dense3(float x, float y, float z);

  /// Creates a sparse point. `indices` must be strictly increasing and all
  /// less than `dim`; `values` must have the same length as `indices`.
  static Point Sparse(std::vector<uint32_t> indices, std::vector<float> values,
                      uint32_t dim);

  /// True if this point uses the sparse representation.
  bool is_sparse() const { return is_sparse_; }

  /// Dimensionality of the ambient space.
  size_t dim() const { return dim_; }

  /// Number of stored coordinates (== dim() for dense points).
  size_t nnz() const { return values_.size(); }

  /// Dense coordinate access. Valid only for dense points.
  const std::vector<float>& dense_values() const;

  /// Sparse coordinate access. Valid only for sparse points.
  const std::vector<uint32_t>& sparse_indices() const;
  const std::vector<float>& sparse_values() const;

  /// Euclidean (L2) norm, precomputed.
  double norm() const { return norm_; }

  /// Non-owning kernel view of this point's coordinates, for the shared
  /// distance kernels of core/vector_kernels.h. Valid while the point lives.
  kernels::VecView View() const {
    kernels::VecView v;
    v.indices = is_sparse_ ? indices_.data() : nullptr;
    v.values = values_.data();
    v.nnz = values_.size();
    v.dim = dim_;
    v.norm = norm_;
    v.sparse = is_sparse_;
    return v;
  }

  /// Inner product with another point. Both points may be dense or sparse in
  /// any combination, but must share the same `dim()`.
  double Dot(const Point& other) const;

  /// Squared Euclidean distance to another point.
  double SquaredEuclideanDistanceTo(const Point& other) const;

  /// L1 distance to another point.
  double L1DistanceTo(const Point& other) const;

  /// Jaccard distance between coordinate supports:
  /// 1 - |supp(a) ∩ supp(b)| / |supp(a) ∪ supp(b)|. Defined for any mix of
  /// representations; dense points treat nonzero coordinates as the support.
  double SupportJaccardDistanceTo(const Point& other) const;

  /// Structural equality of representation and coordinates.
  bool operator==(const Point& other) const;

  /// Debug rendering, e.g. "(1.0, 2.5)" or "sparse{3:1.0, 17:2.0 | dim=5000}".
  std::string ToString() const;

  /// Approximate heap footprint in bytes (used by the MapReduce simulator's
  /// local-memory accounting).
  size_t MemoryBytes() const;

 private:
  // For dense points `indices_` is empty and `values_` holds all dim_
  // coordinates; for sparse points the two arrays run in parallel.
  std::vector<uint32_t> indices_;
  std::vector<float> values_;
  size_t dim_ = 0;
  double norm_ = 0.0;
  bool is_sparse_ = false;

  void ComputeNorm();
};

/// A dataset is simply a vector of points.
using PointSet = std::vector<Point>;

}  // namespace diverse

#endif  // DIVERSE_CORE_POINT_H_
