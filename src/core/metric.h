// Distance metrics.
//
// All algorithms in this library are metric-oblivious: they depend only on a
// `Metric` that returns pairwise distances satisfying the metric axioms. The
// paper evaluates on Euclidean distance (synthetic R^2/R^3 data) and the
// cosine distance arccos(u.v / (|u||v|)) (musiXmatch); the Jaccard distance is
// called out as a practically important case, and L1 is included because the
// (1+eps)-approximation results of [Fekete-Meijer 04] concern rectilinear
// spaces. All four are genuine metrics (the cosine distance here is the
// *angular* distance, which satisfies the triangle inequality).

#ifndef DIVERSE_CORE_METRIC_H_
#define DIVERSE_CORE_METRIC_H_

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>

#include "core/point.h"

namespace diverse {

class Dataset;

/// Certified error bound of an fp32 screening kernel: for every finite
/// screened value s approximating an exact distance d,
///   |s - d| <= rel * s + abs.
/// Non-finite screened values (fp32 overflow) certify nothing — the helpers
/// below map them to unbounded intervals so they are always rescued. Bounds
/// are derived from worst-case float-accumulation analysis over the term
/// counts and norms of the datasets involved (derivations in the README);
/// they are deliberately conservative — an over-wide band costs extra exact
/// re-evaluations, never a wrong result.
struct ScreenBound {
  double rel = 0.0;
  double abs = 0.0;
};

/// Smallest exact distance compatible with screened value `s` under `b`
/// (-inf when s is not finite). `exact > t` is certified iff
/// ScreenedLower(s, b) > t.
inline double ScreenedLower(float s, const ScreenBound& b) {
  double d = s;
  if (!std::isfinite(d)) return -std::numeric_limits<double>::infinity();
  return d - (b.rel * d + b.abs);
}

/// Largest exact distance compatible with screened value `s` under `b`
/// (+inf when s is not finite). `exact < t` is certified iff
/// ScreenedUpper(s, b) < t.
inline double ScreenedUpper(float s, const ScreenBound& b) {
  double d = s;
  if (!std::isfinite(d)) return std::numeric_limits<double>::infinity();
  return d + (b.rel * d + b.abs);
}

/// Interface for a distance function over `Point`s.
///
/// Implementations must satisfy the metric axioms: nonnegativity,
/// d(x,x) = 0, symmetry, and the triangle inequality (property-tested in
/// tests/metric_test.cc).
///
/// Besides the scalar `Distance`, metrics expose *batched* kernels over
/// columnar `Dataset` storage (core/dataset.h). The batch-kernel contract:
///   * out[i] == Distance(query, data.point(begin + i)) bit-for-bit — the
///     batch path runs the same shared kernels (core/vector_kernels.h) in
///     the same order as the scalar path;
///   * exactly as many distance evaluations are performed as the signature
///     implies (out.size(), resp. data.size()) — CountingMetric relies on
///     this to keep work accounting machine-independent;
///   * results are deterministic at any thread count: rows are partitioned
///     into ranges that depend only on the input size, and reductions
///     combine ranges in ascending order.
/// The concrete metrics below override the batch kernels with devirtualized
/// loops over the columnar rows, parallelized on GlobalThreadPool() for
/// large sweeps; the base-class implementations are scalar fallbacks so
/// user-defined metrics stay correct without overriding anything.
class Metric {
 public:
  virtual ~Metric() = default;

  /// Distance between two points. Must be thread-safe.
  virtual double Distance(const Point& a, const Point& b) const = 0;

  /// Batched kernel: out[i] = Distance(query, data.point(begin + i)) for
  /// i in [0, out.size()). Requires begin + out.size() <= data.size().
  virtual void DistanceToMany(const Point& query, const Dataset& data,
                              size_t begin, std::span<double> out) const;

  /// Fused one-vs-rest relax-and-argmax — one GMM / k-center step in a
  /// single sweep. For every row i:
  ///   d = Distance(query, data.point(i));
  ///   if (d < dist[i]) { dist[i] = d; if assignment given:
  ///                      assignment[i] = center_rank; }
  /// Returns the smallest index maximizing the post-update dist[] (the
  /// farthest point from the center set dist[] summarizes). Requires
  /// dist.size() == data.size(), and assignment empty or the same size.
  virtual size_t RelaxAndArgFarthest(const Point& query, const Dataset& data,
                                     std::span<double> dist,
                                     std::span<size_t> assignment = {},
                                     size_t center_rank = 0) const;

  /// Blocked many-vs-many kernel: a Q x R tile of distances,
  ///   out[q * out_stride + r] =
  ///       Distance(queries.point(q_begin + q), data.point(r_begin + r))
  /// for q in [0, nq), r in [0, nr). Requires q_begin + nq <= queries.size(),
  /// r_begin + nr <= data.size(), and out_stride >= nr (out_stride lets
  /// callers write tiles directly into a larger row-major matrix).
  ///
  /// The concrete metrics compute dense x dense blocks with the multi-query
  /// lane kernels of core/vector_kernels.h and sparse x sparse blocks with
  /// the blocked CSR intersection kernels of core/sparse_kernels.h (each
  /// sparse query block is decoded once and every CSR row streamed a single
  /// time against all lanes) — both bit-identical to the scalar kernels.
  /// Mixed dense/sparse pairs run the exact per-pair scalar merge, as do
  /// sparse blocks whose layout the strategy picker deems unprofitable
  /// (the choice reads only the block and the Dataset's nnz statistics, so
  /// it never changes results or determinism). Evaluation count is exactly
  /// nq * nr. The tile is computed on the calling thread: callers that want
  /// parallelism partition their work into tiles across the thread pool
  /// (see RelaxTilesAndArgFarthest / DistanceMatrix), which keeps nested
  /// kernel calls deadlock-free and results independent of thread count.
  virtual void DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                            const Dataset& data, size_t r_begin, size_t nr,
                            double* out, size_t out_stride) const;

  /// fp32 screening tile: same geometry as DistanceTile but float outputs,
  /// each approximating the exact distance within the bound returned by
  /// ScreenErrorBound(queries, data). Computed on the calling thread. The
  /// base implementation runs the exact DistanceTile and narrows to float
  /// (bound: one fp32 rounding); the concrete metrics whose
  /// ScreeningProfitable() is true override it with true fp32-accumulation
  /// kernels (16 dense lanes, fp32 sparse union/intersection walks).
  /// Overriding this without overriding ScreenErrorBound to match is a
  /// correctness bug — the screened sweeps certify skips against the bound.
  virtual void DistanceTileF32(const Dataset& queries, size_t q_begin,
                               size_t nq, const Dataset& data, size_t r_begin,
                               size_t nr, float* out,
                               size_t out_stride) const;

  /// fp32 screening sweep: out[i] approximates
  /// Distance(query, data.point(begin + i)) within
  /// ScreenErrorBound(query, data). Unlike DistanceToMany this is computed
  /// on the calling thread — screened sweeps partition work themselves.
  virtual void DistanceToManyF32(const Point& query, const Dataset& data,
                                 size_t begin, std::span<float> out) const;

  /// Exact distance between two columnar rows — the rescue path of the
  /// screened sweeps. Bit-identical to Distance(a.point(i), b.point(j)):
  /// the concrete metrics run the same shared kernels on the columnar row
  /// views, and every kernel is symmetric in its operands bit for bit.
  virtual double DistanceRows(const Dataset& a, size_t i, const Dataset& b,
                              size_t j) const;

  /// Batched rescue: out[t] = DistanceRows(a, i, b, rows[t]) for every
  /// listed row, in one call — the screened sweeps gather a tile's rescued
  /// rows and pay one virtual dispatch (and, for Euclidean, one batched
  /// SQRTPD pass) instead of one per rescue. Computed on the calling
  /// thread.
  virtual void DistanceRowsMany(const Dataset& a, size_t i, const Dataset& b,
                                std::span<const uint32_t> rows,
                                double* out) const;

  /// Fused screen + relax + rescue over a row range — the screened tile
  /// sweep without the intermediate fp32 tile. Produces EXACTLY the relax
  /// fold of RelaxTilesAndArgFarthest over centers [q_begin, q_begin + nq)
  /// and rows [r_begin, r_begin + nr): final dist[r] is the exact minimum
  /// over the incoming value and all center distances, assignment[r] the
  /// rank_base-relative rank of the FIRST center achieving it (strict-min
  /// semantics, exact ties to the lowest rank) — bit-identical to the
  /// exact tile path. The fp32 screen and the certified skip tests (per-
  /// row thresholds derived from dist[r] and `bound`; see core/screen.h)
  /// only decide WHICH pairs pay an exact evaluation. Returns that number
  /// of exact evaluations, which CountingMetric adds to its exact counter.
  /// Implementations may certify skips more aggressively than the base
  /// loop — the count is deterministic (a function of fp32 values and the
  /// bound alone) and never exceeds nq * nr, but it is NOT promised equal
  /// across implementations: the fused overrides typically rescue fewer
  /// pairs than the base loop (tested fused <= unfused in screen_test).
  /// dist/assignment span the whole dataset (absolute row indexing);
  /// computed on the calling thread (screened sweeps partition rows
  /// themselves). Requires bound.rel < 1 and bound == the value
  /// ScreenErrorBound(queries, data) returned; callers gate on
  /// RelaxTileScreeningProfitableFor first.
  ///
  /// The base implementation materializes thread-local fp32 tiles through
  /// DistanceTileF32 and batches rescues through DistanceRowsMany — correct
  /// for any metric. The concrete dense metrics override it with a
  /// register-resident fused loop (one 16-lane fp32 kernel call and one
  /// packed threshold compare per row, band hits resolved by a certified
  /// per-row argmin screen), and CosineMetric additionally screens sparse
  /// blocks in cosine space (per-row cos thresholds — no acos on the skip
  /// path).
  virtual size_t ScreenedRelaxTile(const Dataset& queries, size_t q_begin,
                                   size_t nq, size_t rank_base,
                                   const Dataset& data, size_t r_begin,
                                   size_t nr, const ScreenBound& bound,
                                   std::span<double> dist,
                                   std::span<size_t> assignment) const;

  /// Certified |screened - exact| bound valid for every (query row, data
  /// row) pair of DistanceTileF32 over these datasets. Reads only dataset
  /// statistics (dim, nnz maxima, norm extrema), so the bound — and hence
  /// every rescue decision — is deterministic.
  virtual ScreenBound ScreenErrorBound(const Dataset& queries,
                                       const Dataset& data) const;

  /// Same bound for a single-point query (DistanceToManyF32).
  virtual ScreenBound ScreenErrorBound(const Point& query,
                                       const Dataset& data) const;

  /// True when the fp32 kernels above are real reduced-precision
  /// implementations that make a screening pass cheaper than the exact
  /// sweep. The base class returns false (its default F32 kernels do full
  /// exact work and then narrow), as does Jaccard (integer-exact support
  /// counting is already the cheap path, and its discrete value set makes
  /// screened ties — which always rescue — common). The screened sweeps of
  /// core/screen.h fall back to the exact path when this is false.
  virtual bool ScreeningProfitable() const { return false; }

  /// Layout-aware refinement of ScreeningProfitable for a concrete sweep —
  /// the gate the screened sweeps actually consult. Reads only dataset
  /// statistics, so the decision (like every rescue decision) is
  /// deterministic and thread-count independent; either verdict yields
  /// bit-identical results, the gate only moves cost. The base forwards to
  /// ScreeningProfitable(); CosineMetric narrows it to dense-only layouts
  /// (the sparse angular tile is intersection-walk bound — index probing,
  /// not arithmetic — so halving the accumulator width gains little while
  /// rescues pay full per-pair merges).
  virtual bool ScreeningProfitableFor(const Dataset& queries,
                                      const Dataset& data) const;
  virtual bool ScreeningProfitableFor(const Point& query,
                                      const Dataset& data) const;

  /// Gate for the fused screened tile relax (ScreenedRelaxTile). Defaults
  /// to ScreeningProfitableFor(queries, data); CosineMetric widens it to
  /// all-sparse layouts, which its fused kernel screens in cosine space —
  /// profitable where the unfused angular tile (an acos per pair even on
  /// the skip path) measured a net loss. Reads only dataset statistics.
  virtual bool RelaxTileScreeningProfitableFor(const Dataset& queries,
                                               const Dataset& data) const;

  /// True when Distance is a genuine metric whose triangle inequality the
  /// metric index (core/cover_tree.h) may prune with, and IndexSlack()
  /// below returns a certified rounding band for the exact kernels. The
  /// base class returns false: user-defined "distances" (dot-product
  /// similarity and friends) need not satisfy the triangle inequality at
  /// all, so indexing stays gated off unless a metric opts in. All four
  /// built-in metrics opt in — the cosine distance here is the *angular*
  /// distance, a genuine metric, so its node bounds prune in angular space.
  virtual bool SupportsMetricIndexing() const { return false; }

  /// Certified rounding slack of the *exact double* kernels: for every row
  /// pair, |computed - true| <= rel * computed + abs. The metric index
  /// chains three computed distances through the triangle inequality
  /// (center-to-center, node radius, and the bounded pair), so it inflates
  /// each bound by a 4x multiple of this band before pruning — a prune is
  /// then sound even though the chained values are computed doubles, not
  /// true reals (derivation in the README). Reads only dataset statistics,
  /// so every prune decision is deterministic. The base returns an
  /// unbounded band (abs = +inf): every prune test fails — sound, and
  /// consistent with SupportsMetricIndexing() == false.
  virtual ScreenBound IndexSlack(const Dataset& data) const;

  /// Human-readable metric name, e.g. "euclidean".
  virtual std::string Name() const = 0;
};

/// Fused multi-center relax-and-argmax over blocked tiles: exactly
/// equivalent to calling
///   metric.RelaxAndArgFarthest(queries.point(q_begin + q), data, dist,
///                              assignment, rank_base + q)
/// once per q in ascending order and keeping the last return value, but
/// executed as one blocked pass over `data` (each row block is loaded once
/// for all nq centers instead of once per center). Parallelized over row
/// ranges on GlobalThreadPool(); range boundaries and the first-max argmax
/// combination depend only on the input sizes, so results are deterministic
/// at any thread count. Costs exactly nq * data.size() evaluations through
/// metric.DistanceTile. Requires nq >= 1 and dist.size() == data.size().
size_t RelaxTilesAndArgFarthest(const Metric& metric, const Dataset& queries,
                                size_t q_begin, size_t nq, size_t rank_base,
                                const Dataset& data, std::span<double> dist,
                                std::span<size_t> assignment = {});

/// Standard Euclidean (L2) distance.
class EuclideanMetric final : public Metric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  void DistanceToMany(const Point& query, const Dataset& data, size_t begin,
                      std::span<double> out) const override;
  size_t RelaxAndArgFarthest(const Point& query, const Dataset& data,
                             std::span<double> dist,
                             std::span<size_t> assignment = {},
                             size_t center_rank = 0) const override;
  void DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                    const Dataset& data, size_t r_begin, size_t nr,
                    double* out, size_t out_stride) const override;
  void DistanceTileF32(const Dataset& queries, size_t q_begin, size_t nq,
                       const Dataset& data, size_t r_begin, size_t nr,
                       float* out, size_t out_stride) const override;
  void DistanceToManyF32(const Point& query, const Dataset& data,
                         size_t begin, std::span<float> out) const override;
  double DistanceRows(const Dataset& a, size_t i, const Dataset& b,
                      size_t j) const override;
  void DistanceRowsMany(const Dataset& a, size_t i, const Dataset& b,
                        std::span<const uint32_t> rows,
                        double* out) const override;
  size_t ScreenedRelaxTile(const Dataset& queries, size_t q_begin, size_t nq,
                           size_t rank_base, const Dataset& data,
                           size_t r_begin, size_t nr, const ScreenBound& bound,
                           std::span<double> dist,
                           std::span<size_t> assignment) const override;
  ScreenBound ScreenErrorBound(const Dataset& queries,
                               const Dataset& data) const override;
  ScreenBound ScreenErrorBound(const Point& query,
                               const Dataset& data) const override;
  bool ScreeningProfitable() const override { return true; }
  bool SupportsMetricIndexing() const override { return true; }
  ScreenBound IndexSlack(const Dataset& data) const override;
  std::string Name() const override { return "euclidean"; }
};

/// Rectilinear (L1 / Manhattan) distance.
class ManhattanMetric final : public Metric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  void DistanceToMany(const Point& query, const Dataset& data, size_t begin,
                      std::span<double> out) const override;
  size_t RelaxAndArgFarthest(const Point& query, const Dataset& data,
                             std::span<double> dist,
                             std::span<size_t> assignment = {},
                             size_t center_rank = 0) const override;
  void DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                    const Dataset& data, size_t r_begin, size_t nr,
                    double* out, size_t out_stride) const override;
  void DistanceTileF32(const Dataset& queries, size_t q_begin, size_t nq,
                       const Dataset& data, size_t r_begin, size_t nr,
                       float* out, size_t out_stride) const override;
  void DistanceToManyF32(const Point& query, const Dataset& data,
                         size_t begin, std::span<float> out) const override;
  double DistanceRows(const Dataset& a, size_t i, const Dataset& b,
                      size_t j) const override;
  size_t ScreenedRelaxTile(const Dataset& queries, size_t q_begin, size_t nq,
                           size_t rank_base, const Dataset& data,
                           size_t r_begin, size_t nr, const ScreenBound& bound,
                           std::span<double> dist,
                           std::span<size_t> assignment) const override;
  ScreenBound ScreenErrorBound(const Dataset& queries,
                               const Dataset& data) const override;
  ScreenBound ScreenErrorBound(const Point& query,
                               const Dataset& data) const override;
  bool ScreeningProfitable() const override { return true; }
  bool SupportsMetricIndexing() const override { return true; }
  ScreenBound IndexSlack(const Dataset& data) const override;
  std::string Name() const override { return "manhattan"; }
};

/// Angular cosine distance arccos(u.v / (|u||v|)) in radians, exactly the
/// `dist` function of the paper's Section 7. Zero vectors are at distance 0
/// from each other and pi/2 from any nonzero vector (the convention that
/// keeps the function a metric on the datasets we generate, which exclude
/// zero vectors anyway).
class CosineMetric final : public Metric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  void DistanceToMany(const Point& query, const Dataset& data, size_t begin,
                      std::span<double> out) const override;
  size_t RelaxAndArgFarthest(const Point& query, const Dataset& data,
                             std::span<double> dist,
                             std::span<size_t> assignment = {},
                             size_t center_rank = 0) const override;
  void DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                    const Dataset& data, size_t r_begin, size_t nr,
                    double* out, size_t out_stride) const override;
  void DistanceTileF32(const Dataset& queries, size_t q_begin, size_t nq,
                       const Dataset& data, size_t r_begin, size_t nr,
                       float* out, size_t out_stride) const override;
  void DistanceToManyF32(const Point& query, const Dataset& data,
                         size_t begin, std::span<float> out) const override;
  double DistanceRows(const Dataset& a, size_t i, const Dataset& b,
                      size_t j) const override;
  size_t ScreenedRelaxTile(const Dataset& queries, size_t q_begin, size_t nq,
                           size_t rank_base, const Dataset& data,
                           size_t r_begin, size_t nr, const ScreenBound& bound,
                           std::span<double> dist,
                           std::span<size_t> assignment) const override;
  ScreenBound ScreenErrorBound(const Dataset& queries,
                               const Dataset& data) const override;
  ScreenBound ScreenErrorBound(const Point& query,
                               const Dataset& data) const override;
  bool ScreeningProfitable() const override { return true; }
  bool ScreeningProfitableFor(const Dataset& queries,
                              const Dataset& data) const override;
  bool ScreeningProfitableFor(const Point& query,
                              const Dataset& data) const override;
  /// Dense tiles screen in angular space (fused); all-sparse tiles screen
  /// in cosine space through the blocked CSR dot engine — the skip path
  /// pays one multiply-compare per pair instead of an arccos.
  bool RelaxTileScreeningProfitableFor(const Dataset& queries,
                                       const Dataset& data) const override;
  bool SupportsMetricIndexing() const override { return true; }
  ScreenBound IndexSlack(const Dataset& data) const override;
  std::string Name() const override { return "cosine"; }
};

/// Jaccard distance between coordinate supports (the "dissimilarity distance
/// in database queries" of the paper's introduction).
class JaccardMetric final : public Metric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  void DistanceToMany(const Point& query, const Dataset& data, size_t begin,
                      std::span<double> out) const override;
  size_t RelaxAndArgFarthest(const Point& query, const Dataset& data,
                             std::span<double> dist,
                             std::span<size_t> assignment = {},
                             size_t center_rank = 0) const override;
  void DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                    const Dataset& data, size_t r_begin, size_t nr,
                    double* out, size_t out_stride) const override;
  // Keeps the base-class fp32 kernels (exact work + narrow) and the
  // ScreeningProfitable() = false default: support counting is
  // integer-exact, so there is no cheaper reduced-precision form, and the
  // discrete value set would make screened ties (always rescued) common.
  double DistanceRows(const Dataset& a, size_t i, const Dataset& b,
                      size_t j) const override;
  bool SupportsMetricIndexing() const override { return true; }
  ScreenBound IndexSlack(const Dataset& data) const override;
  std::string Name() const override { return "jaccard"; }
};

/// Decorator that counts distance evaluations. The count is the standard
/// machine-independent cost measure for diversity/clustering algorithms and
/// is used by tests (complexity assertions) and benches (work accounting).
/// Batched kernels count the exact number of evaluations they perform
/// (out.size() / data.size() per the batch-kernel contract), so the counter
/// agrees with the scalar path for identical work regardless of batching or
/// thread count. Screened (fp32) and exact (double) evaluations are
/// accounted separately: the exact count of a screened sweep is its rescue
/// work and never exceeds the count the pre-screening path would have paid
/// for the same sweep.
class CountingMetric final : public Metric {
 public:
  /// Wraps `base`, which must outlive this object.
  explicit CountingMetric(const Metric* base) : base_(base) {}

  double Distance(const Point& a, const Point& b) const override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return base_->Distance(a, b);
  }

  void DistanceToMany(const Point& query, const Dataset& data, size_t begin,
                      std::span<double> out) const override {
    count_.fetch_add(out.size(), std::memory_order_relaxed);
    base_->DistanceToMany(query, data, begin, out);
  }

  size_t RelaxAndArgFarthest(const Point& query, const Dataset& data,
                             std::span<double> dist,
                             std::span<size_t> assignment = {},
                             size_t center_rank = 0) const override {
    count_.fetch_add(dist.size(), std::memory_order_relaxed);
    return base_->RelaxAndArgFarthest(query, data, dist, assignment,
                                      center_rank);
  }

  void DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                    const Dataset& data, size_t r_begin, size_t nr,
                    double* out, size_t out_stride) const override {
    count_.fetch_add(nq * nr, std::memory_order_relaxed);
    base_->DistanceTile(queries, q_begin, nq, data, r_begin, nr, out,
                        out_stride);
  }

  void DistanceTileF32(const Dataset& queries, size_t q_begin, size_t nq,
                       const Dataset& data, size_t r_begin, size_t nr,
                       float* out, size_t out_stride) const override {
    screened_.fetch_add(nq * nr, std::memory_order_relaxed);
    base_->DistanceTileF32(queries, q_begin, nq, data, r_begin, nr, out,
                           out_stride);
  }

  void DistanceToManyF32(const Point& query, const Dataset& data,
                         size_t begin, std::span<float> out) const override {
    screened_.fetch_add(out.size(), std::memory_order_relaxed);
    base_->DistanceToManyF32(query, data, begin, out);
  }

  double DistanceRows(const Dataset& a, size_t i, const Dataset& b,
                      size_t j) const override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return base_->DistanceRows(a, i, b, j);
  }

  void DistanceRowsMany(const Dataset& a, size_t i, const Dataset& b,
                        std::span<const uint32_t> rows,
                        double* out) const override {
    count_.fetch_add(rows.size(), std::memory_order_relaxed);
    base_->DistanceRowsMany(a, i, b, rows, out);
  }

  size_t ScreenedRelaxTile(const Dataset& queries, size_t q_begin, size_t nq,
                           size_t rank_base, const Dataset& data,
                           size_t r_begin, size_t nr, const ScreenBound& bound,
                           std::span<double> dist,
                           std::span<size_t> assignment) const override {
    // Every pair is screened in fp32; the fused kernel reports its exact
    // rescue evaluations in the return value (its internal exact calls run
    // devirtualized on base_, so this is the only accounting point).
    screened_.fetch_add(nq * nr, std::memory_order_relaxed);
    size_t rescued = base_->ScreenedRelaxTile(queries, q_begin, nq, rank_base,
                                              data, r_begin, nr, bound, dist,
                                              assignment);
    count_.fetch_add(rescued, std::memory_order_relaxed);
    return rescued;
  }

  ScreenBound ScreenErrorBound(const Dataset& queries,
                               const Dataset& data) const override {
    return base_->ScreenErrorBound(queries, data);
  }

  ScreenBound ScreenErrorBound(const Point& query,
                               const Dataset& data) const override {
    return base_->ScreenErrorBound(query, data);
  }

  bool ScreeningProfitable() const override {
    return base_->ScreeningProfitable();
  }

  bool ScreeningProfitableFor(const Dataset& queries,
                              const Dataset& data) const override {
    return base_->ScreeningProfitableFor(queries, data);
  }

  bool ScreeningProfitableFor(const Point& query,
                              const Dataset& data) const override {
    return base_->ScreeningProfitableFor(query, data);
  }

  bool RelaxTileScreeningProfitableFor(const Dataset& queries,
                                       const Dataset& data) const override {
    return base_->RelaxTileScreeningProfitableFor(queries, data);
  }

  bool SupportsMetricIndexing() const override {
    return base_->SupportsMetricIndexing();
  }

  ScreenBound IndexSlack(const Dataset& data) const override {
    return base_->IndexSlack(data);
  }

  std::string Name() const override { return "counting(" + base_->Name() + ")"; }

  /// Number of exact distance evaluations since construction or the last
  /// Reset(). (Kept as `count` for the pre-screening callers.)
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Exact (double) evaluations — alias of count().
  uint64_t exact_evals() const { return count(); }

  /// Screened (fp32) evaluations through the F32 kernels.
  uint64_t screened_evals() const {
    return screened_.load(std::memory_order_relaxed);
  }

  /// Resets both counters to zero.
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    screened_.store(0, std::memory_order_relaxed);
  }

 private:
  const Metric* base_;
  mutable std::atomic<uint64_t> count_{0};
  mutable std::atomic<uint64_t> screened_{0};
};

/// Constructs a built-in metric by its Name(): "euclidean", "manhattan",
/// "cosine" or "jaccard". Returns null for any other name. This is the
/// factory the CLI and the distributed workers resolve --metric / wire
/// metric names through; user-defined Metric subclasses have no portable
/// name, which is why the socket transport accepts only these four.
std::unique_ptr<Metric> MakeMetricByName(const std::string& name);

/// Sparse query-block decode-cache instrumentation (the CountingMetric-style
/// proof of reuse asked of the cache): the blocked sparse engines decode
/// each query block's CSR lanes into per-thread scratch
/// (kernels::PackSparseQueryLanes) before streaming data rows. The decode is
/// now cached per thread, keyed on (Dataset::content_stamp, absolute block
/// rows, lane count, direct-index dim), so a block re-swept by the same
/// thread — consecutive row ranges of one tiled sweep, or one center
/// applied to many cover-tree leaf slabs — skips the re-decode. Counters
/// are process-global, relaxed, and test-only.
uint64_t SparseQueryDecodeCount();  ///< decodes performed (cache misses)
uint64_t SparseQueryDecodeHits();   ///< decodes skipped by the cache
void ResetSparseQueryDecodeStats();

}  // namespace diverse

#endif  // DIVERSE_CORE_METRIC_H_
