// Diversity maximization under partition matroid constraints — the
// generalization of remote-clique studied by Abbassi-Mirrokni-Thakur
// (KDD 13) and Cevallos-Eisenbrand-Zenklusen (SoCG 16), which the paper
// cites as the natural extension of its cardinality-constrained setting
// ("the remote-clique problem has been considered under matroid
// constraints, which generalize the cardinality constraints considered in
// previous literature").
//
// A partition matroid assigns each point a category and caps the number of
// selected points per category; the solution must additionally have total
// size k. This captures, e.g., "a diverse result page with at most 2 hits
// per site". We implement the standard local-search 2-approximation of
// Abbassi et al.: start from any feasible basis, repeatedly apply
// feasibility-preserving swaps (same-category exchanges) while the
// remote-clique value improves.

#ifndef DIVERSE_CORE_MATROID_H_
#define DIVERSE_CORE_MATROID_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// A partition matroid over point indices: point i belongs to
/// `category_of[i]` (values in [0, num_categories)), and at most
/// `capacity[c]` points of category c may be selected.
struct PartitionMatroid {
  std::vector<size_t> category_of;
  std::vector<size_t> capacity;

  /// Number of categories.
  size_t num_categories() const { return capacity.size(); }

  /// True if `subset` (point indices) respects all category capacities.
  bool IsIndependent(std::span<const size_t> subset) const;

  /// Maximum feasible solution size: sum of per-category min(capacity,
  /// category size).
  size_t MaxFeasibleSize() const;
};

/// Result of constrained maximization.
struct MatroidSolveResult {
  /// Selected point indices (size k, or MaxFeasibleSize() if smaller).
  std::vector<size_t> solution;
  /// Remote-clique value (sum of pairwise distances) of the solution.
  double diversity = 0.0;
  /// Local-search swaps applied.
  size_t swaps = 0;
};

/// Maximizes remote-clique diversity subject to |S| = k and the partition
/// matroid: greedy feasible initialization (farthest-first respecting
/// capacities) followed by feasibility-preserving local search
/// (2-approximation up to the 1/k term of Abbassi et al.). Requires
/// matroid.category_of.size() == points.size() and k >= 1.
MatroidSolveResult SolveRemoteCliqueUnderMatroid(std::span<const Point> points,
                                                 const Metric& metric,
                                                 const PartitionMatroid& matroid,
                                                 size_t k,
                                                 size_t max_sweeps = 64);

}  // namespace diverse

#endif  // DIVERSE_CORE_MATROID_H_
