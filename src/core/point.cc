#include "core/point.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace diverse {

Point Point::Dense(std::vector<float> values) {
  Point p;
  p.dim_ = values.size();
  p.values_ = std::move(values);
  p.is_sparse_ = false;
  p.ComputeNorm();
  return p;
}

Point Point::Dense2(float x, float y) { return Dense({x, y}); }

Point Point::Dense3(float x, float y, float z) { return Dense({x, y, z}); }

Point Point::Sparse(std::vector<uint32_t> indices, std::vector<float> values,
                    uint32_t dim) {
  DIVERSE_CHECK_EQ(indices.size(), values.size());
  for (size_t i = 0; i + 1 < indices.size(); ++i) {
    DIVERSE_CHECK_LT(indices[i], indices[i + 1]);
  }
  if (!indices.empty()) DIVERSE_CHECK_LT(indices.back(), dim);
  Point p;
  p.dim_ = dim;
  p.indices_ = std::move(indices);
  p.values_ = std::move(values);
  p.is_sparse_ = true;
  p.ComputeNorm();
  return p;
}

const std::vector<float>& Point::dense_values() const {
  DIVERSE_CHECK(!is_sparse_);
  return values_;
}

const std::vector<uint32_t>& Point::sparse_indices() const {
  DIVERSE_CHECK(is_sparse_);
  return indices_;
}

const std::vector<float>& Point::sparse_values() const {
  DIVERSE_CHECK(is_sparse_);
  return values_;
}

void Point::ComputeNorm() {
  double s = 0.0;
  for (float v : values_) s += static_cast<double>(v) * v;
  norm_ = std::sqrt(s);
}

// The representation dispatch and accumulation order live in
// core/vector_kernels.h, shared with the batched columnar kernels so the two
// paths stay bit-identical.

double Point::Dot(const Point& other) const {
  DIVERSE_CHECK_EQ(dim_, other.dim_);
  return kernels::Dot(View(), other.View());
}

double Point::SquaredEuclideanDistanceTo(const Point& other) const {
  DIVERSE_CHECK_EQ(dim_, other.dim_);
  return kernels::SquaredEuclidean(View(), other.View());
}

double Point::L1DistanceTo(const Point& other) const {
  DIVERSE_CHECK_EQ(dim_, other.dim_);
  return kernels::L1(View(), other.View());
}

double Point::SupportJaccardDistanceTo(const Point& other) const {
  DIVERSE_CHECK_EQ(dim_, other.dim_);
  return kernels::SupportJaccard(View(), other.View());
}

bool Point::operator==(const Point& other) const {
  return is_sparse_ == other.is_sparse_ && dim_ == other.dim_ &&
         indices_ == other.indices_ && values_ == other.values_;
}

std::string Point::ToString() const {
  std::ostringstream out;
  if (is_sparse_) {
    out << "sparse{";
    for (size_t i = 0; i < indices_.size(); ++i) {
      if (i) out << ", ";
      out << indices_[i] << ":" << values_[i];
    }
    out << " | dim=" << dim_ << "}";
  } else {
    out << "(";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i) out << ", ";
      out << values_[i];
    }
    out << ")";
  }
  return out.str();
}

size_t Point::MemoryBytes() const {
  return sizeof(Point) + indices_.capacity() * sizeof(uint32_t) +
         values_.capacity() * sizeof(float);
}

}  // namespace diverse
