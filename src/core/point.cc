#include "core/point.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace diverse {

Point Point::Dense(std::vector<float> values) {
  Point p;
  p.dim_ = values.size();
  p.values_ = std::move(values);
  p.is_sparse_ = false;
  p.ComputeNorm();
  return p;
}

Point Point::Dense2(float x, float y) { return Dense({x, y}); }

Point Point::Dense3(float x, float y, float z) { return Dense({x, y, z}); }

Point Point::Sparse(std::vector<uint32_t> indices, std::vector<float> values,
                    uint32_t dim) {
  DIVERSE_CHECK_EQ(indices.size(), values.size());
  for (size_t i = 0; i + 1 < indices.size(); ++i) {
    DIVERSE_CHECK_LT(indices[i], indices[i + 1]);
  }
  if (!indices.empty()) DIVERSE_CHECK_LT(indices.back(), dim);
  Point p;
  p.dim_ = dim;
  p.indices_ = std::move(indices);
  p.values_ = std::move(values);
  p.is_sparse_ = true;
  p.ComputeNorm();
  return p;
}

const std::vector<float>& Point::dense_values() const {
  DIVERSE_CHECK(!is_sparse_);
  return values_;
}

const std::vector<uint32_t>& Point::sparse_indices() const {
  DIVERSE_CHECK(is_sparse_);
  return indices_;
}

const std::vector<float>& Point::sparse_values() const {
  DIVERSE_CHECK(is_sparse_);
  return values_;
}

void Point::ComputeNorm() {
  double s = 0.0;
  for (float v : values_) s += static_cast<double>(v) * v;
  norm_ = std::sqrt(s);
}

namespace {

// Iterates the sparse-sparse intersection of two sorted index arrays,
// invoking `both` on common coordinates and `only_a`/`only_b` elsewhere.
template <typename FBoth, typename FOnlyA, typename FOnlyB>
void MergeSparse(const std::vector<uint32_t>& ia, const std::vector<float>& va,
                 const std::vector<uint32_t>& ib, const std::vector<float>& vb,
                 FBoth both, FOnlyA only_a, FOnlyB only_b) {
  size_t a = 0, b = 0;
  while (a < ia.size() && b < ib.size()) {
    if (ia[a] == ib[b]) {
      both(va[a], vb[b]);
      ++a;
      ++b;
    } else if (ia[a] < ib[b]) {
      only_a(va[a]);
      ++a;
    } else {
      only_b(vb[b]);
      ++b;
    }
  }
  for (; a < ia.size(); ++a) only_a(va[a]);
  for (; b < ib.size(); ++b) only_b(vb[b]);
}

}  // namespace

double Point::Dot(const Point& other) const {
  DIVERSE_CHECK_EQ(dim_, other.dim_);
  if (!is_sparse_ && !other.is_sparse_) {
    double s = 0.0;
    for (size_t i = 0; i < values_.size(); ++i) {
      s += static_cast<double>(values_[i]) * other.values_[i];
    }
    return s;
  }
  if (is_sparse_ && other.is_sparse_) {
    double s = 0.0;
    MergeSparse(
        indices_, values_, other.indices_, other.values_,
        [&s](float x, float y) { s += static_cast<double>(x) * y; },
        [](float) {}, [](float) {});
    return s;
  }
  // Mixed: iterate the sparse one.
  const Point& sparse = is_sparse_ ? *this : other;
  const Point& dense = is_sparse_ ? other : *this;
  double s = 0.0;
  for (size_t i = 0; i < sparse.indices_.size(); ++i) {
    s += static_cast<double>(sparse.values_[i]) *
         dense.values_[sparse.indices_[i]];
  }
  return s;
}

double Point::SquaredEuclideanDistanceTo(const Point& other) const {
  DIVERSE_CHECK_EQ(dim_, other.dim_);
  if (!is_sparse_ && !other.is_sparse_) {
    double s = 0.0;
    for (size_t i = 0; i < values_.size(); ++i) {
      double d = static_cast<double>(values_[i]) - other.values_[i];
      s += d * d;
    }
    return s;
  }
  if (is_sparse_ && other.is_sparse_) {
    // Direct coordinate merge: exact (no cancellation), unlike the
    // ||a||^2 + ||b||^2 - 2 a.b identity, which loses ~1e-7 of relative
    // precision and breaks d(p, p) == 0.
    double s = 0.0;
    MergeSparse(
        indices_, values_, other.indices_, other.values_,
        [&s](float x, float y) {
          double d = static_cast<double>(x) - y;
          s += d * d;
        },
        [&s](float x) { s += static_cast<double>(x) * x; },
        [&s](float y) { s += static_cast<double>(y) * y; });
    return s;
  }
  // Mixed dense/sparse: walk the dense values with a sparse cursor.
  const Point& sp = is_sparse_ ? *this : other;
  const Point& de = is_sparse_ ? other : *this;
  double s = 0.0;
  size_t j = 0;
  for (size_t i = 0; i < de.values_.size(); ++i) {
    double sparse_v = 0.0;
    if (j < sp.indices_.size() && sp.indices_[j] == i) {
      sparse_v = sp.values_[j];
      ++j;
    }
    double d = static_cast<double>(de.values_[i]) - sparse_v;
    s += d * d;
  }
  return s;
}

double Point::L1DistanceTo(const Point& other) const {
  DIVERSE_CHECK_EQ(dim_, other.dim_);
  double s = 0.0;
  if (!is_sparse_ && !other.is_sparse_) {
    for (size_t i = 0; i < values_.size(); ++i) {
      s += std::abs(static_cast<double>(values_[i]) - other.values_[i]);
    }
    return s;
  }
  if (is_sparse_ && other.is_sparse_) {
    MergeSparse(
        indices_, values_, other.indices_, other.values_,
        [&s](float x, float y) { s += std::abs(static_cast<double>(x) - y); },
        [&s](float x) { s += std::abs(static_cast<double>(x)); },
        [&s](float y) { s += std::abs(static_cast<double>(y)); });
    return s;
  }
  const Point& sp = is_sparse_ ? *this : other;
  const Point& de = is_sparse_ ? other : *this;
  size_t j = 0;
  for (size_t i = 0; i < de.values_.size(); ++i) {
    float sparse_v = 0.0f;
    if (j < sp.indices_.size() && sp.indices_[j] == i) {
      sparse_v = sp.values_[j];
      ++j;
    }
    s += std::abs(static_cast<double>(de.values_[i]) - sparse_v);
  }
  return s;
}

namespace {

// Number of nonzero coordinates of a dense value array.
size_t DenseSupportSize(const std::vector<float>& values) {
  size_t n = 0;
  for (float v : values) n += (v != 0.0f);
  return n;
}

}  // namespace

double Point::SupportJaccardDistanceTo(const Point& other) const {
  DIVERSE_CHECK_EQ(dim_, other.dim_);
  size_t inter = 0, size_a = 0, size_b = 0;
  if (is_sparse_ && other.is_sparse_) {
    size_a = indices_.size();
    size_b = other.indices_.size();
    MergeSparse(
        indices_, values_, other.indices_, other.values_,
        [&inter](float, float) { ++inter; }, [](float) {}, [](float) {});
  } else if (!is_sparse_ && !other.is_sparse_) {
    size_a = DenseSupportSize(values_);
    size_b = DenseSupportSize(other.values_);
    for (size_t i = 0; i < values_.size(); ++i) {
      inter += (values_[i] != 0.0f && other.values_[i] != 0.0f);
    }
  } else {
    const Point& sp = is_sparse_ ? *this : other;
    const Point& de = is_sparse_ ? other : *this;
    size_a = sp.indices_.size();
    size_b = DenseSupportSize(de.values_);
    for (size_t i = 0; i < sp.indices_.size(); ++i) {
      inter += (de.values_[sp.indices_[i]] != 0.0f);
    }
  }
  size_t uni = size_a + size_b - inter;
  if (uni == 0) return 0.0;  // both points are all-zero: identical supports
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

bool Point::operator==(const Point& other) const {
  return is_sparse_ == other.is_sparse_ && dim_ == other.dim_ &&
         indices_ == other.indices_ && values_ == other.values_;
}

std::string Point::ToString() const {
  std::ostringstream out;
  if (is_sparse_) {
    out << "sparse{";
    for (size_t i = 0; i < indices_.size(); ++i) {
      if (i) out << ", ";
      out << indices_[i] << ":" << values_[i];
    }
    out << " | dim=" << dim_ << "}";
  } else {
    out << "(";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i) out << ", ";
      out << values_[i];
    }
    out << ")";
  }
  return out.str();
}

size_t Point::MemoryBytes() const {
  return sizeof(Point) + indices_.capacity() * sizeof(uint32_t) +
         values_.capacity() * sizeof(float);
}

}  // namespace diverse
