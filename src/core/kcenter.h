// k-center solvers — the substrate primitive of the paper.
//
// Both core-set families are k-center algorithms run with k' >= k centers:
// GMM (Gonzalez' 2-approximation) on the MapReduce side and the
// Charikar-Chekuri-Feder-Motwani doubling algorithm (8-approximation) on the
// streaming side. Fact 1 (r*_k <= rho*_k) connects the k-center optimum to
// the remote-edge optimum. This header exposes both solvers directly, for
// callers that want clustering rather than diversity, and for the ablation
// experiments comparing the two kernels.

#ifndef DIVERSE_CORE_KCENTER_H_
#define DIVERSE_CORE_KCENTER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// A k-center solution over a point set.
struct KCenterResult {
  /// Indices of the chosen centers.
  std::vector<size_t> centers;
  /// assignment[i] = position in `centers` of point i's center.
  std::vector<size_t> assignment;
  /// Realized clustering radius: max_i d(points[i], centers).
  double radius = 0.0;
};

/// Gonzalez' farthest-first 2-approximation. O(k n) distances, run as
/// batched sweeps over the columnar rows. Requires 1 <= k <= data.size().
KCenterResult SolveKCenterGmm(const Dataset& data, const Metric& metric,
                              size_t k);

/// Shim: copies `points` into a Dataset and solves on it.
KCenterResult SolveKCenterGmm(std::span<const Point> points,
                              const Metric& metric, size_t k);

/// Offline run of the streaming doubling algorithm (8-approximation,
/// O(n k) distances amortized). Provided to quantify the GMM-vs-doubling
/// quality gap (Section 7.2 of the paper) outside the streaming harness.
/// May return fewer than k centers when the input has fewer distinct
/// locations. Requires 1 <= k <= points.size().
KCenterResult SolveKCenterDoubling(std::span<const Point> points,
                                   const Metric& metric, size_t k);

/// Radius max_i d(data[i], {data[c] : c in centers}) of an explicit center
/// set, computed as one blocked multi-center tile pass
/// (RelaxTilesAndArgFarthest) over the columnar rows.
double ClusteringRadius(const Dataset& data, const Metric& metric,
                        std::span<const size_t> centers);

/// Shim: copies `points` into a Dataset and evaluates on it.
double ClusteringRadius(std::span<const Point> points, const Metric& metric,
                        std::span<const size_t> centers);

}  // namespace diverse

#endif  // DIVERSE_CORE_KCENTER_H_
