// Minimum spanning tree over a distance matrix.
//
// The remote-tree diversity objective is w(MST(S)); MST weight is also the
// base of the TSP 2-approximation used to evaluate remote-cycle, and the GMM
// prefix heuristic is a 4-approximation for it (Table 1 of the paper).

#ifndef DIVERSE_CORE_MST_H_
#define DIVERSE_CORE_MST_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/distance_matrix.h"

namespace diverse {

/// Weight of the minimum spanning tree of the complete graph whose edge
/// weights are given by `d` (Prim's algorithm, O(n^2)). A matrix of size
/// 0 or 1 has MST weight 0.
double MstWeight(const DistanceMatrix& d);

/// The n-1 edges of a minimum spanning tree of `d`, as index pairs.
/// Empty if d.size() < 2.
std::vector<std::pair<size_t, size_t>> MstEdges(const DistanceMatrix& d);

}  // namespace diverse

#endif  // DIVERSE_CORE_MST_H_
