// Screen-then-certify sweeps: the mixed-precision engine behind every
// argmax / argmin / threshold hot loop.
//
// Every distance-dominated loop in this library — k-center farthest-point
// argmax, GMM's per-center relax sweeps, greedy matching's heaviest-pair
// scans, SMM's nearest-center and merge threshold scans, generalized-coreset
// instantiation — needs *exact* distances only for the handful of candidates
// that decide the outcome. The sweeps here run a cheap fp32 pass first
// (Metric::DistanceTileF32 / DistanceToManyF32: twice the SIMD lanes, half
// the bandwidth of the exact tile engine), keep every candidate whose
// screened value lies within a certified error band
// (Metric::ScreenErrorBound) of the decision threshold, and re-evaluate only
// those in exact double (Metric::DistanceRows / Distance — the same shared
// kernels as the exact sweeps). Consequences:
//
//   * Results are bit-identical to the double-only path: every value that
//     can influence a comparison, a stored distance, or a reported radius is
//     an exact double; the fp32 pass only *proves* that skipped candidates
//     could not have influenced anything (tested across metrics x
//     representations x thread counts in tests/screen_test.cc).
//   * Rescue decisions depend only on the fp32 values (fixed accumulation
//     orders, deterministic bounds), never on scheduling — so evaluation
//     counts (CountingMetric: screened_evals / exact_evals) are
//     deterministic at any thread count, and the exact-eval count of a
//     screened sweep never exceeds what the pre-screening path paid.
//   * Every sweep falls back to the exact path when screening is disabled
//     (SetScreeningEnabled / SolveOptions::screening) or the metric reports
//     ScreeningProfitable() == false (Jaccard, user-defined metrics).
//
// Screening changes *when* exactness is paid for, never the answer.

#ifndef DIVERSE_CORE_SCREEN_H_
#define DIVERSE_CORE_SCREEN_H_

#include <cstddef>
#include <span>

#include "core/dataset.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// Process-global screening toggle, default on. Results are bit-identical
/// either way; the toggle exists for A/B benchmarking and as an escape
/// hatch. Concurrent Solves with opposing SolveOptions::screening flags see
/// a racy-but-harmless value (each sweep reads it once on entry).
bool ScreeningEnabled();
void SetScreeningEnabled(bool enabled);

/// RAII override of the global toggle (used by Solve and tests).
class ScopedScreening {
 public:
  explicit ScopedScreening(bool enabled);
  ScopedScreening(const ScopedScreening&) = delete;
  ScopedScreening& operator=(const ScopedScreening&) = delete;
  ~ScopedScreening();

 private:
  bool prev_;
};

/// True when the screened sweeps should screen for `metric` (toggle on and
/// the metric's fp32 kernels are genuinely cheaper than exact).
bool UseScreening(const Metric& metric);

/// Screened drop-in for RelaxTilesAndArgFarthest (core/metric.h): identical
/// dist / assignment updates and return value, but each tile is swept in
/// fp32 first and only rows the new centers could improve are re-evaluated
/// exactly. Falls back to the exact tile path when screening is off.
size_t ScreenedRelaxTilesAndArgFarthest(const Metric& metric,
                                        const Dataset& queries, size_t q_begin,
                                        size_t nq, size_t rank_base,
                                        const Dataset& data,
                                        std::span<double> dist,
                                        std::span<size_t> assignment = {});

/// Screened drop-in for Metric::RelaxAndArgFarthest with the query drawn
/// from a dataset row (queries.point(q_index) — for GMM, queries == data):
/// identical dist / assignment updates and return value. Falls back to the
/// exact batched sweep when screening is off.
size_t ScreenedRelaxArgFarthest(const Metric& metric, const Dataset& queries,
                                size_t q_index, const Dataset& data,
                                std::span<double> dist,
                                std::span<size_t> assignment = {},
                                size_t center_rank = 0);

/// First row index minimizing Distance(query, row) — ties to the smallest
/// index, exactly like a sequential strict-min scan — with the exact
/// minimum distance in *min_dist. Requires data nonempty. (SMM's
/// nearest-center update scan.)
size_t ScreenedArgClosest(const Metric& metric, const Point& query,
                          const Dataset& data, double* min_dist);

/// First row index with Distance(query, row) <= threshold, or data.size()
/// when no row qualifies, scanning ascending with chunked early exit.
/// (SMM's merge-step membership scan.)
size_t ScreenedFirstWithin(const Metric& metric, const Point& query,
                           const Dataset& data, double threshold);

}  // namespace diverse

#endif  // DIVERSE_CORE_SCREEN_H_
