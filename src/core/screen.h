// Screen-then-certify sweeps: the mixed-precision engine behind every
// argmax / argmin / threshold hot loop.
//
// Every distance-dominated loop in this library — k-center farthest-point
// argmax, GMM's per-center relax sweeps, greedy matching's heaviest-pair
// scans, SMM's nearest-center and merge threshold scans, generalized-coreset
// instantiation — needs *exact* distances only for the handful of candidates
// that decide the outcome. The sweeps here run a cheap fp32 pass first
// (Metric::DistanceTileF32 / DistanceToManyF32: twice the SIMD lanes, half
// the bandwidth of the exact tile engine), keep every candidate whose
// screened value lies within a certified error band
// (Metric::ScreenErrorBound) of the decision threshold, and re-evaluate only
// those in exact double (Metric::DistanceRows / Distance — the same shared
// kernels as the exact sweeps). Consequences:
//
//   * Results are bit-identical to the double-only path: every value that
//     can influence a comparison, a stored distance, or a reported radius is
//     an exact double; the fp32 pass only *proves* that skipped candidates
//     could not have influenced anything (tested across metrics x
//     representations x thread counts in tests/screen_test.cc).
//   * Rescue decisions depend only on the fp32 values (fixed accumulation
//     orders, deterministic bounds), never on scheduling — so evaluation
//     counts (CountingMetric: screened_evals / exact_evals) are
//     deterministic at any thread count, and the exact-eval count of a
//     screened sweep never exceeds what the pre-screening path paid.
//   * Every sweep falls back to the exact path when screening is disabled
//     (SetScreeningEnabled / SolveOptions::screening) or the metric reports
//     ScreeningProfitable() == false (Jaccard, user-defined metrics).
//
// Screening changes *when* exactness is paid for, never the answer.

#ifndef DIVERSE_CORE_SCREEN_H_
#define DIVERSE_CORE_SCREEN_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

// --- Certified-skip machinery ---------------------------------------------
// Shared by the screened sweeps below and by the fused tile kernels
// (Metric::ScreenedRelaxTile in core/metric.cc). The mathematically exact
// skip test is ScreenedLower(s, bound) > cur; evaluating it per pair costs
// a multiply-add in double. Instead, the sweeps precompute — once per row,
// or on a rescue that improves the row — the float threshold T(cur) such
// that a finite screened value s > T certifies exact > cur: the exact
// condition is s > (cur + abs) / (1 - rel), inflated by 1e-12 against the
// double rounding of the transform and rounded UP to the next float (both
// slops only widen the rescue band — more rescues, never an unsafe skip).
// Inner loops then run one float compare per pair. NaN and +inf screened
// values (overflowed fp32 accumulators certify nothing) always rescue: NaN
// fails every comparison and +inf fails s <= FLT_MAX.

/// Next float up for nonnegative input (+inf stays +inf): for positive IEEE
/// floats the bit pattern is monotone, so incrementing it is nextafterf
/// without the libm call.
inline float NextUpNonNegativeF32(float f) {
  if (!(f < std::numeric_limits<float>::infinity())) {
    return std::numeric_limits<float>::infinity();
  }
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  ++bits;
  std::memcpy(&f, &bits, sizeof(bits));
  return f;
}

/// Float threshold T such that a screened value s with s > T && s <= FLT_MAX
/// certifies exact > cur under the bound whose abs term is `abs_term` and
/// whose precomputed (1 + 1e-12) / (1 - rel) is `inv_one_minus_rel`.
/// Requires cur >= 0 (distances) or +inf (never skip).
inline float ScreenSkipThreshold(double cur, double abs_term,
                                 double inv_one_minus_rel) {
  if (!(cur < std::numeric_limits<double>::infinity())) {
    return std::numeric_limits<float>::infinity();
  }
  double thr = (cur + abs_term) * inv_one_minus_rel;
  return NextUpNonNegativeF32(static_cast<float>(thr));
}

/// Largest float W such that a screened value s <= W certifies
/// exact < threshold (strictly) under `bound`; returns -1.0f when no
/// nonnegative screened value can certify it (threshold too small — every
/// candidate falls to the exact test). Monotone-safe: W under-approximates
/// the real transform by a relative 1e-12 margin that absorbs every double
/// rounding in the chain.
inline float ScreenCertifiedBelow(double threshold, const ScreenBound& bound) {
  double w = (threshold - bound.abs) / (1.0 + bound.rel) * (1.0 - 1e-12);
  if (!(w > 0.0)) return -1.0f;
  float f = static_cast<float>(w);
  while (static_cast<double>(f) >= w && f > 0.0f) {
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    --bits;
    std::memcpy(&f, &bits, sizeof(bits));
  }
  return f;
}

/// Appends base + i for every position whose screened value cannot be
/// certified-skipped against its per-row threshold: rescue iff
/// !(t[i] > thr[i] && t[i] <= FLT_MAX). Vectorized four-wide on x86-64.
void CollectScreenRescues(const float* t, const float* thr, size_t count,
                          uint32_t base, std::vector<uint32_t>& out);

/// Process-global screening toggle, default on. Results are bit-identical
/// either way; the toggle exists for A/B benchmarking and as an escape
/// hatch. Concurrent Solves with opposing SolveOptions::screening flags see
/// a racy-but-harmless value (each sweep reads it once on entry).
bool ScreeningEnabled();
void SetScreeningEnabled(bool enabled);

/// RAII override of the global toggle (used by Solve and tests).
class ScopedScreening {
 public:
  explicit ScopedScreening(bool enabled);
  ScopedScreening(const ScopedScreening&) = delete;
  ScopedScreening& operator=(const ScopedScreening&) = delete;
  ~ScopedScreening();

 private:
  bool prev_;
};

/// True when the screened sweeps should screen for `metric` (toggle on and
/// the metric's fp32 kernels are genuinely cheaper than exact).
bool UseScreening(const Metric& metric);

/// Screened drop-in for RelaxTilesAndArgFarthest (core/metric.h): identical
/// dist / assignment updates and return value, but each row range is swept
/// through the metric's fused Metric::ScreenedRelaxTile kernel — fp32
/// screen, certified skip test, and exact rescue in one register-resident
/// loop, with no intermediate fp32 tile. Falls back to the exact tile path
/// when screening is off or Metric::RelaxTileScreeningProfitableFor says
/// the layout does not pay.
size_t ScreenedRelaxTilesAndArgFarthest(const Metric& metric,
                                        const Dataset& queries, size_t q_begin,
                                        size_t nq, size_t rank_base,
                                        const Dataset& data,
                                        std::span<double> dist,
                                        std::span<size_t> assignment = {});

/// Screened drop-in for Metric::RelaxAndArgFarthest with the query drawn
/// from a dataset row (queries.point(q_index) — for GMM, queries == data):
/// identical dist / assignment updates and return value. Falls back to the
/// exact batched sweep when screening is off.
size_t ScreenedRelaxArgFarthest(const Metric& metric, const Dataset& queries,
                                size_t q_index, const Dataset& data,
                                std::span<double> dist,
                                std::span<size_t> assignment = {},
                                size_t center_rank = 0);

/// Precomputed decision state of one ScreenedRelaxArgFarthest-style sweep:
/// whether the sweep screens at all (all the flat path's gates folded in —
/// the global toggle, the metric's profitability verdicts, the per-row-work
/// gate, and the degenerate-bound check), and when it does, the certified
/// bound plus its precomputed (1 + 1e-12) / (1 - rel). The metric index
/// (core/cover_tree.h) plans ONCE per relax step and applies the plan to
/// each surviving leaf range, so per-pair screening decisions — fp32
/// values, skip thresholds, rescue sets — are exactly the flat sweep's
/// restricted to those rows; that containment is what keeps indexed exact-
/// eval counts at or below the flat screened baseline.
struct RelaxScreenPlan {
  bool screen = false;  ///< false: every pair pays the exact kernel
  ScreenBound bound;    ///< valid when screen
  double inv_rel = 0.0; ///< (1 + 1e-12) / (1 - bound.rel) when screen
};

/// Builds the plan ScreenedRelaxArgFarthest would follow for a sweep of
/// queries-rows against `data` (reads both datasets' lazy screen stats on
/// the calling thread, like the flat sweep does before fanning out).
RelaxScreenPlan PlanScreenedRelax(const Metric& metric, const Dataset& queries,
                                  const Dataset& data);

/// The relax body of ScreenedRelaxArgFarthest restricted to rows
/// [begin, begin + count): relaxes dist/assignment (full-dataset spans,
/// absolute row indexing) against queries.point(q_index) under `plan`, with
/// per-pair decisions identical to the flat sweep's, and returns the number
/// of exact evaluations paid. No argmax — callers (the cover-tree leaf
/// scan) fold their own.
size_t ScreenedRelaxRange(const Metric& metric, const Dataset& queries,
                          size_t q_index, const Dataset& data, size_t begin,
                          size_t count, const RelaxScreenPlan& plan,
                          std::span<double> dist, std::span<size_t> assignment,
                          size_t center_rank);

/// First row index minimizing Distance(query, row) — ties to the smallest
/// index, exactly like a sequential strict-min scan — with the exact
/// minimum distance in *min_dist. Requires data nonempty. (SMM's
/// nearest-center update scan.) The fused sweep compares raw fp32 values
/// against precomputed float cutoffs (no per-row double bound transforms)
/// and carries no per-row work gate: it screens at any dimension.
size_t ScreenedArgClosest(const Metric& metric, const Point& query,
                          const Dataset& data, double* min_dist);

/// Outcome of the fused nearest-center + coverage sweep.
struct ScreenedNearest {
  /// True when the screen certified min distance > cover_threshold without
  /// any exact evaluation; index/dist are then unset.
  bool beyond = false;
  /// First strict argmin row (exact tie semantics) when !beyond.
  size_t index = 0;
  /// Exact minimum distance when !beyond.
  double dist = 0.0;
};

/// Fused screened "argmin + threshold" sweep (SMM's update step): one fp32
/// pass decides, per row, whether it can be the nearest center and whether
/// the whole sweep can certify min distance > cover_threshold. When it can,
/// the caller's coverage decision needs no exact evaluation at all;
/// otherwise the exact first-strict argmin and minimum are returned, bit-
/// identical to the exact scan. Requires data nonempty.
ScreenedNearest ScreenedArgClosestWithin(const Metric& metric,
                                         const Point& query,
                                         const Dataset& data,
                                         double cover_threshold);

/// First row index with Distance(query, row) <= threshold, or data.size()
/// when no row qualifies, scanning ascending with chunked early exit.
/// (SMM's merge-step membership scan.) Fused like ScreenedArgClosest: two
/// precomputed float cutoffs (certainly-within / certainly-beyond) replace
/// the per-row double bound transforms, and no per-row work gate applies.
size_t ScreenedFirstWithin(const Metric& metric, const Point& query,
                           const Dataset& data, double threshold);

/// Reusable screening state for engines that issue MANY structurally
/// identical point-vs-dataset sweeps against a slowly changing dataset and
/// a slowly changing threshold (SMM: one nearest-center sweep per stream
/// point, one membership sweep per merge candidate). The one-shot sweeps
/// above recompute the error bound and both float cutoffs on every call —
/// fixed work that dominates at low dimension. A context snapshots that
/// state keyed on the dataset's aggregate statistics (dim, dense presence,
/// max sparse support, smallest positive norm) plus the threshold, and
/// replays it until the key moves (appends rarely move the stats).
///
/// Soundness: the cached bound is the dataset-vs-dataset worst case
/// ScreenErrorBound(data, data), substituted for the per-query bound only
/// when the query's side statistics are dominated by the data's own
/// extremes (a dense query needs dense rows present; a sparse query's
/// support must not exceed the data's max; a positive query norm must not
/// undercut the data's smallest positive norm). Dominated queries see a
/// bound at least as wide as their per-call bound — wider bounds rescue
/// more and skip less, never unsafely — because every ScreenErrorBound
/// here is monotone in those statistics (the base default is constant).
/// Non-dominated queries silently take the one-shot path. Results are
/// bit-identical with or without a context; only evaluation counts move.
///
/// Thread-compatibility: a context is per-engine mutable state (SMM owns
/// one per instance) and is refreshed unlocked on the calling thread —
/// share one across threads and the cache key races. One context per
/// engine, like the engines themselves (see streaming/smm.h).
class PersistentScreenContext {
 public:
  PersistentScreenContext() = default;

  /// Times the cached cutoffs were rebuilt because the key moved (tests
  /// assert amortization: rebuilds stay O(stat changes), not O(calls)).
  uint64_t rebuilds() const { return rebuilds_; }
  /// Calls that replayed the cached cutoffs without rebuilding.
  uint64_t hits() const { return hits_; }

 private:
  friend ScreenedNearest ScreenedArgClosestWithin(
      const Metric& metric, const Point& query, const Dataset& data,
      double cover_threshold, PersistentScreenContext* ctx);
  friend size_t ScreenedFirstWithin(const Metric& metric, const Point& query,
                                    const Dataset& data, double threshold,
                                    PersistentScreenContext* ctx);
  friend bool RefreshScreenContext(PersistentScreenContext& ctx,
                                   const Metric& metric, const Dataset& data,
                                   double threshold);
  friend bool ScreenContextCovers(const PersistentScreenContext& ctx,
                                  const Point& query);

  // Snapshot key.
  bool valid_ = false;
  size_t dim_ = 0;
  bool has_dense_ = false;
  size_t max_nnz_ = 0;
  double min_positive_norm_ = 0.0;
  double threshold_ = -1.0;
  // Cached derived state (meaningful while valid_).
  ScreenBound bound_;
  double inv_rel_ = 0.0;
  float beyond_ = 0.0f;   // certify exact > threshold_ cutoff
  float within_ = -1.0f;  // certify exact < threshold_ cutoff
  uint64_t rebuilds_ = 0;
  uint64_t hits_ = 0;
};

/// ScreenedArgClosestWithin with a persistent context (nullptr falls back
/// to the one-shot overload). Bit-identical results; the context only
/// amortizes the per-call bound and cutoff precomputation.
ScreenedNearest ScreenedArgClosestWithin(const Metric& metric,
                                         const Point& query,
                                         const Dataset& data,
                                         double cover_threshold,
                                         PersistentScreenContext* ctx);

/// ScreenedFirstWithin with a persistent context (nullptr falls back to
/// the one-shot overload). Bit-identical results.
size_t ScreenedFirstWithin(const Metric& metric, const Point& query,
                           const Dataset& data, double threshold,
                           PersistentScreenContext* ctx);

}  // namespace diverse

#endif  // DIVERSE_CORE_SCREEN_H_
