// The six diversity objectives of the paper (Table 1) and their evaluators.
//
//   remote-edge         min_{p,q in S} d(p,q)
//   remote-clique       sum_{p,q in S} d(p,q)          (unordered pairs)
//   remote-star         min_{c in S} sum_{q != c} d(c,q)
//   remote-bipartition  min_{|Q| = floor(|S|/2)} sum_{q in Q, z in S\Q} d(q,z)
//   remote-tree         w(MST(S))
//   remote-cycle        w(TSP(S))
//
// Evaluation notes: remote-bipartition and remote-cycle are themselves
// NP-hard to evaluate; we evaluate them exactly for small sets (subset
// enumeration / Held-Karp) and with standard local-search heuristics above
// that, applied uniformly to every algorithm under comparison so that ratio
// experiments remain apples-to-apples.

#ifndef DIVERSE_CORE_DIVERSITY_H_
#define DIVERSE_CORE_DIVERSITY_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/distance_matrix.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// The diversity maximization problems considered in the paper.
enum class DiversityProblem : uint8_t {
  kRemoteEdge,
  kRemoteClique,
  kRemoteStar,
  kRemoteBipartition,
  kRemoteTree,
  kRemoteCycle,
};

/// All six problems, for iteration in tests/benches.
inline constexpr DiversityProblem kAllProblems[] = {
    DiversityProblem::kRemoteEdge,         DiversityProblem::kRemoteClique,
    DiversityProblem::kRemoteStar,         DiversityProblem::kRemoteBipartition,
    DiversityProblem::kRemoteTree,         DiversityProblem::kRemoteCycle,
};

/// Short name, e.g. "remote-edge".
std::string ProblemName(DiversityProblem problem);

/// Inverse of ProblemName; nullopt for unknown names.
std::optional<DiversityProblem> ParseProblem(const std::string& name);

/// True for the problems whose core-set proof needs an *injective* proxy
/// function (Lemma 2): remote-clique, -star, -bipartition, -tree. These are
/// the problems requiring delegate-augmented core-sets (GMM-EXT / SMM-EXT)
/// or generalized core-sets.
bool RequiresInjectiveProxies(DiversityProblem problem);

/// Approximation factor alpha of the best known linear-space sequential
/// algorithm (Table 1): 2, 2, 2, 3, 4, 3 respectively.
double SequentialAlpha(DiversityProblem problem);

/// The number of distance terms f(k) in div(S) for |S| = k (Lemma 7):
/// C(k,2) for remote-clique, k-1 for remote-star/tree, floor(k/2)*ceil(k/2)
/// for remote-bipartition. Returns 1 for remote-edge and k for remote-cycle
/// (the count of tour edges), which Lemma 7 does not use but evaluators do.
double DiversityTermCount(DiversityProblem problem, size_t k);

/// Evaluates div(S) for the full set behind `d` (all rows are the set S).
/// Exact for edge/clique/star/tree; exact for bipartition when
/// d.size() <= kBipartitionExactLimit and for cycle when
/// d.size() <= kTspExactLimit, heuristic otherwise.
double EvaluateDiversity(DiversityProblem problem, const DistanceMatrix& d);

/// Convenience overload: builds the pairwise matrix of `solution` under
/// `metric` and evaluates.
double EvaluateDiversity(DiversityProblem problem,
                         std::span<const Point> solution, const Metric& metric);

/// Evaluates div over the subset `rows` of `data`: re-lays the selected rows
/// out columnar and builds the restricted pairwise matrix through the
/// blocked tile kernels (bit-identical values to the span overload on the
/// same points). The efficient path when the solution is already a set of
/// Dataset row indices — no intermediate PointSet.
double EvaluateDiversitySubset(DiversityProblem problem, const Dataset& data,
                               std::span<const size_t> rows,
                               const Metric& metric);

/// Maximum set size for exact remote-bipartition evaluation by enumeration.
inline constexpr size_t kBipartitionExactLimit = 20;

/// Exact remote-bipartition by enumerating all balanced bipartitions.
/// Requires d.size() <= kBipartitionExactLimit.
double BipartitionWeightExact(const DistanceMatrix& d);

/// Heuristic remote-bipartition: best of several random balanced cuts, each
/// improved by pairwise swaps to a local minimum (Kernighan-Lin style).
double BipartitionWeightHeuristic(const DistanceMatrix& d);

}  // namespace diverse

#endif  // DIVERSE_CORE_DIVERSITY_H_
