#include "core/matroid.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace diverse {

bool PartitionMatroid::IsIndependent(std::span<const size_t> subset) const {
  std::vector<size_t> used(capacity.size(), 0);
  for (size_t idx : subset) {
    DIVERSE_CHECK_LT(idx, category_of.size());
    size_t c = category_of[idx];
    DIVERSE_CHECK_LT(c, capacity.size());
    if (++used[c] > capacity[c]) return false;
  }
  return true;
}

size_t PartitionMatroid::MaxFeasibleSize() const {
  std::vector<size_t> size_of(capacity.size(), 0);
  for (size_t c : category_of) {
    DIVERSE_CHECK_LT(c, capacity.size());
    ++size_of[c];
  }
  size_t total = 0;
  for (size_t c = 0; c < capacity.size(); ++c) {
    total += std::min(capacity[c], size_of[c]);
  }
  return total;
}

MatroidSolveResult SolveRemoteCliqueUnderMatroid(
    std::span<const Point> points, const Metric& metric,
    const PartitionMatroid& matroid, size_t k, size_t max_sweeps) {
  size_t n = points.size();
  DIVERSE_CHECK_EQ(matroid.category_of.size(), n);
  DIVERSE_CHECK_GE(k, 1u);

  MatroidSolveResult result;
  size_t target = std::min(k, matroid.MaxFeasibleSize());
  if (target == 0) return result;

  std::vector<size_t> used(matroid.num_categories(), 0);
  std::vector<bool> in_set(n, false);
  std::vector<size_t> current;
  current.reserve(target);

  // Greedy farthest-first initialization restricted to feasible additions:
  // the same GMM rule, skipping points whose category is saturated.
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  while (current.size() < target) {
    size_t best = n;
    double best_dist = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (in_set[i]) continue;
      if (used[matroid.category_of[i]] >=
          matroid.capacity[matroid.category_of[i]]) {
        continue;
      }
      double d = current.empty() ? 1.0 : dist[i];
      if (d > best_dist) {
        best_dist = d;
        best = i;
      }
    }
    DIVERSE_CHECK_LT(best, n);
    in_set[best] = true;
    ++used[matroid.category_of[best]];
    current.push_back(best);
    for (size_t i = 0; i < n; ++i) {
      dist[i] = std::min(dist[i], metric.Distance(points[i], points[best]));
    }
  }

  // contribution[a] = sum of distances from current[a] to the rest.
  std::vector<double> contribution(target, 0.0);
  auto recompute = [&] {
    for (size_t a = 0; a < target; ++a) {
      double s = 0.0;
      for (size_t b = 0; b < target; ++b) {
        if (a != b) {
          s += metric.Distance(points[current[a]], points[current[b]]);
        }
      }
      contribution[a] = s;
    }
  };
  recompute();

  // Local search with feasibility-preserving swaps: candidate q may replace
  // member current[a] iff the swap stays independent — i.e. q's category has
  // spare capacity, or current[a] shares q's category.
  std::vector<double> dq(target);
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool improved = false;
    for (size_t q = 0; q < n; ++q) {
      if (in_set[q]) continue;
      size_t cq = matroid.category_of[q];
      bool spare = used[cq] < matroid.capacity[cq];
      double total = 0.0;
      for (size_t a = 0; a < target; ++a) {
        dq[a] = metric.Distance(points[q], points[current[a]]);
        total += dq[a];
      }
      size_t best_a = target;
      double best_delta = 1e-9;
      for (size_t a = 0; a < target; ++a) {
        if (!spare && matroid.category_of[current[a]] != cq) continue;
        double delta = (total - dq[a]) - contribution[a];
        if (delta > best_delta) {
          best_delta = delta;
          best_a = a;
        }
      }
      if (best_a < target) {
        size_t evicted = current[best_a];
        in_set[evicted] = false;
        --used[matroid.category_of[evicted]];
        in_set[q] = true;
        ++used[cq];
        current[best_a] = q;
        recompute();
        ++result.swaps;
        improved = true;
      }
    }
    if (!improved) break;
  }

  result.solution = std::move(current);
  double sum = 0.0;
  for (size_t i = 0; i < result.solution.size(); ++i) {
    for (size_t j = i + 1; j < result.solution.size(); ++j) {
      sum += metric.Distance(points[result.solution[i]],
                             points[result.solution[j]]);
    }
  }
  result.diversity = sum;
  return result;
}

}  // namespace diverse
