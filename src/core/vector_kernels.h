// Shared low-level distance kernels over raw coordinate arrays.
//
// Both the scalar Point methods (core/point.cc) and the batched columnar
// kernels (core/metric.cc over core/dataset.h) call these functions, so the
// two paths are bit-identical by construction: same representation
// dispatch, same accumulation order, same double-precision arithmetic. That
// identity is what lets tests require the batched kernels to reproduce the
// scalar reference exactly, and lets parallel GMM select the same index
// sequence as the sequential loop.
//
// A `VecView` is a non-owning view of one vector in either representation:
//   dense:  indices == nullptr, values has `dim` coordinates;
//   sparse: indices/values hold `nnz` sorted coordinate pairs over a
//           conceptual `dim`-sized space.

#ifndef DIVERSE_CORE_VECTOR_KERNELS_H_
#define DIVERSE_CORE_VECTOR_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace diverse {
namespace kernels {

/// Non-owning view of a dense or sparse vector.
struct VecView {
  const uint32_t* indices = nullptr;  // nullptr for dense vectors
  const float* values = nullptr;
  size_t nnz = 0;  // stored coordinates; == dim for dense
  size_t dim = 0;
  double norm = 0.0;  // precomputed Euclidean norm

  bool is_sparse() const { return indices != nullptr; }
};

namespace internal {

// Iterates the sparse-sparse union of two sorted index arrays, invoking
// `both` on common coordinates and `only_a`/`only_b` elsewhere. Mirrors the
// merge in core/point.cc exactly.
template <typename FBoth, typename FOnlyA, typename FOnlyB>
inline void MergeSparse(const VecView& a, const VecView& b, FBoth both,
                        FOnlyA only_a, FOnlyB only_b) {
  size_t i = 0, j = 0;
  while (i < a.nnz && j < b.nnz) {
    if (a.indices[i] == b.indices[j]) {
      both(a.values[i], b.values[j]);
      ++i;
      ++j;
    } else if (a.indices[i] < b.indices[j]) {
      only_a(a.values[i]);
      ++i;
    } else {
      only_b(b.values[j]);
      ++j;
    }
  }
  for (; i < a.nnz; ++i) only_a(a.values[i]);
  for (; j < b.nnz; ++j) only_b(b.values[j]);
}

inline size_t DenseSupportSize(const VecView& v) {
  size_t n = 0;
  for (size_t i = 0; i < v.nnz; ++i) n += (v.values[i] != 0.0f);
  return n;
}

}  // namespace internal

/// Inner product <a, b>. Representations may be mixed; dims must agree.
inline double Dot(const VecView& a, const VecView& b) {
  if (!a.is_sparse() && !b.is_sparse()) {
    double s = 0.0;
    for (size_t i = 0; i < a.nnz; ++i) {
      s += static_cast<double>(a.values[i]) * b.values[i];
    }
    return s;
  }
  if (a.is_sparse() && b.is_sparse()) {
    double s = 0.0;
    internal::MergeSparse(
        a, b, [&s](float x, float y) { s += static_cast<double>(x) * y; },
        [](float) {}, [](float) {});
    return s;
  }
  // Mixed: iterate the sparse one.
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  double s = 0.0;
  for (size_t i = 0; i < sp.nnz; ++i) {
    s += static_cast<double>(sp.values[i]) * de.values[sp.indices[i]];
  }
  return s;
}

/// Squared Euclidean distance |a - b|^2.
inline double SquaredEuclidean(const VecView& a, const VecView& b) {
  if (!a.is_sparse() && !b.is_sparse()) {
    double s = 0.0;
    for (size_t i = 0; i < a.nnz; ++i) {
      double d = static_cast<double>(a.values[i]) - b.values[i];
      s += d * d;
    }
    return s;
  }
  if (a.is_sparse() && b.is_sparse()) {
    // Direct coordinate merge: exact (no cancellation), unlike the
    // ||a||^2 + ||b||^2 - 2 a.b identity, which loses ~1e-7 of relative
    // precision and breaks d(p, p) == 0.
    double s = 0.0;
    internal::MergeSparse(
        a, b,
        [&s](float x, float y) {
          double d = static_cast<double>(x) - y;
          s += d * d;
        },
        [&s](float x) { s += static_cast<double>(x) * x; },
        [&s](float y) { s += static_cast<double>(y) * y; });
    return s;
  }
  // Mixed dense/sparse: walk the dense values with a sparse cursor.
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  double s = 0.0;
  size_t j = 0;
  for (size_t i = 0; i < de.nnz; ++i) {
    double sparse_v = 0.0;
    if (j < sp.nnz && sp.indices[j] == i) {
      sparse_v = sp.values[j];
      ++j;
    }
    double d = static_cast<double>(de.values[i]) - sparse_v;
    s += d * d;
  }
  return s;
}

/// L1 (rectilinear) distance |a - b|_1.
inline double L1(const VecView& a, const VecView& b) {
  double s = 0.0;
  if (!a.is_sparse() && !b.is_sparse()) {
    for (size_t i = 0; i < a.nnz; ++i) {
      s += std::abs(static_cast<double>(a.values[i]) - b.values[i]);
    }
    return s;
  }
  if (a.is_sparse() && b.is_sparse()) {
    internal::MergeSparse(
        a, b,
        [&s](float x, float y) { s += std::abs(static_cast<double>(x) - y); },
        [&s](float x) { s += std::abs(static_cast<double>(x)); },
        [&s](float y) { s += std::abs(static_cast<double>(y)); });
    return s;
  }
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  size_t j = 0;
  for (size_t i = 0; i < de.nnz; ++i) {
    float sparse_v = 0.0f;
    if (j < sp.nnz && sp.indices[j] == i) {
      sparse_v = sp.values[j];
      ++j;
    }
    s += std::abs(static_cast<double>(de.values[i]) - sparse_v);
  }
  return s;
}

/// Jaccard distance between coordinate supports:
/// 1 - |supp(a) ∩ supp(b)| / |supp(a) ∪ supp(b)|.
inline double SupportJaccard(const VecView& a, const VecView& b) {
  size_t inter = 0, size_a = 0, size_b = 0;
  if (a.is_sparse() && b.is_sparse()) {
    size_a = a.nnz;
    size_b = b.nnz;
    internal::MergeSparse(
        a, b, [&inter](float, float) { ++inter; }, [](float) {},
        [](float) {});
  } else if (!a.is_sparse() && !b.is_sparse()) {
    size_a = internal::DenseSupportSize(a);
    size_b = internal::DenseSupportSize(b);
    for (size_t i = 0; i < a.nnz; ++i) {
      inter += (a.values[i] != 0.0f && b.values[i] != 0.0f);
    }
  } else {
    const VecView& sp = a.is_sparse() ? a : b;
    const VecView& de = a.is_sparse() ? b : a;
    size_a = sp.nnz;
    size_b = internal::DenseSupportSize(de);
    for (size_t i = 0; i < sp.nnz; ++i) {
      inter += (de.values[sp.indices[i]] != 0.0f);
    }
  }
  size_t uni = size_a + size_b - inter;
  if (uni == 0) return 0.0;  // both vectors all-zero: identical supports
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

/// Angular cosine distance arccos(<a,b> / (|a||b|)), with the zero-vector
/// conventions of CosineMetric (core/metric.h).
inline double AngularCosine(const VecView& a, const VecView& b) {
  double na = a.norm, nb = b.norm;
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return M_PI / 2.0;
  double c = Dot(a, b) / (na * nb);
  // Guard against rounding pushing the cosine outside [-1, 1].
  c = c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
  return std::acos(c);
}

/// Euclidean distance |a - b|.
inline double Euclidean(const VecView& a, const VecView& b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

}  // namespace kernels
}  // namespace diverse

#endif  // DIVERSE_CORE_VECTOR_KERNELS_H_
