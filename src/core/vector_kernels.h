// Shared low-level distance kernels over raw coordinate arrays.
//
// Both the scalar Point methods (core/point.cc) and the batched columnar
// kernels (core/metric.cc over core/dataset.h) call these functions, so the
// two paths are bit-identical by construction: same representation
// dispatch, same accumulation order, same double-precision arithmetic. That
// identity is what lets tests require the batched kernels to reproduce the
// scalar reference exactly, and lets parallel GMM select the same index
// sequence as the sequential loop.
//
// A `VecView` is a non-owning view of one vector in either representation:
//   dense:  indices == nullptr, values has `dim` coordinates;
//   sparse: indices/values hold `nnz` sorted coordinate pairs over a
//           conceptual `dim`-sized space.

#ifndef DIVERSE_CORE_VECTOR_KERNELS_H_
#define DIVERSE_CORE_VECTOR_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(DIVERSE_ENABLE_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DIVERSE_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#elif defined(__x86_64__) && defined(__SSE2__)
#define DIVERSE_HAVE_AVX2_KERNELS 0
#include <emmintrin.h>
#else
#define DIVERSE_HAVE_AVX2_KERNELS 0
#endif

namespace diverse {
namespace kernels {

/// Non-owning view of a dense or sparse vector.
struct VecView {
  const uint32_t* indices = nullptr;  // nullptr for dense vectors
  const float* values = nullptr;
  size_t nnz = 0;  // stored coordinates; == dim for dense
  size_t dim = 0;
  double norm = 0.0;  // precomputed Euclidean norm
  // Explicit representation tag. A sparse vector with zero stored
  // coordinates has indices == nullptr (an empty array has no storage), so
  // the pointer alone cannot distinguish it from a dense vector — and a
  // dense kernel would then walk the other operand's `dim` values against a
  // null values pointer.
  bool sparse = false;

  bool is_sparse() const { return sparse; }
};

namespace internal {

// Iterates the sparse-sparse union of two sorted index arrays, invoking
// `both` on common coordinates and `only_a`/`only_b` elsewhere. Mirrors the
// merge in core/point.cc exactly.
template <typename FBoth, typename FOnlyA, typename FOnlyB>
inline void MergeSparse(const VecView& a, const VecView& b, FBoth both,
                        FOnlyA only_a, FOnlyB only_b) {
  size_t i = 0, j = 0;
  while (i < a.nnz && j < b.nnz) {
    if (a.indices[i] == b.indices[j]) {
      both(a.values[i], b.values[j]);
      ++i;
      ++j;
    } else if (a.indices[i] < b.indices[j]) {
      only_a(a.values[i]);
      ++i;
    } else {
      only_b(b.values[j]);
      ++j;
    }
  }
  for (; i < a.nnz; ++i) only_a(a.values[i]);
  for (; j < b.nnz; ++j) only_b(b.values[j]);
}

inline size_t DenseSupportSize(const VecView& v) {
  size_t n = 0;
  for (size_t i = 0; i < v.nnz; ++i) n += (v.values[i] != 0.0f);
  return n;
}

}  // namespace internal

/// Inner product <a, b>. Representations may be mixed; dims must agree.
inline double Dot(const VecView& a, const VecView& b) {
  if (!a.is_sparse() && !b.is_sparse()) {
    double s = 0.0;
    for (size_t i = 0; i < a.nnz; ++i) {
      s += static_cast<double>(a.values[i]) * b.values[i];
    }
    return s;
  }
  if (a.is_sparse() && b.is_sparse()) {
    double s = 0.0;
    internal::MergeSparse(
        a, b, [&s](float x, float y) { s += static_cast<double>(x) * y; },
        [](float) {}, [](float) {});
    return s;
  }
  // Mixed: iterate the sparse one.
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  double s = 0.0;
  for (size_t i = 0; i < sp.nnz; ++i) {
    s += static_cast<double>(sp.values[i]) * de.values[sp.indices[i]];
  }
  return s;
}

/// Squared Euclidean distance |a - b|^2.
inline double SquaredEuclidean(const VecView& a, const VecView& b) {
  if (!a.is_sparse() && !b.is_sparse()) {
    double s = 0.0;
    for (size_t i = 0; i < a.nnz; ++i) {
      double d = static_cast<double>(a.values[i]) - b.values[i];
      s += d * d;
    }
    return s;
  }
  if (a.is_sparse() && b.is_sparse()) {
    // Direct coordinate merge: exact (no cancellation), unlike the
    // ||a||^2 + ||b||^2 - 2 a.b identity, which loses ~1e-7 of relative
    // precision and breaks d(p, p) == 0.
    double s = 0.0;
    internal::MergeSparse(
        a, b,
        [&s](float x, float y) {
          double d = static_cast<double>(x) - y;
          s += d * d;
        },
        [&s](float x) { s += static_cast<double>(x) * x; },
        [&s](float y) { s += static_cast<double>(y) * y; });
    return s;
  }
  // Mixed dense/sparse: walk the dense values with a sparse cursor.
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  double s = 0.0;
  size_t j = 0;
  for (size_t i = 0; i < de.nnz; ++i) {
    double sparse_v = 0.0;
    if (j < sp.nnz && sp.indices[j] == i) {
      sparse_v = sp.values[j];
      ++j;
    }
    double d = static_cast<double>(de.values[i]) - sparse_v;
    s += d * d;
  }
  return s;
}

/// L1 (rectilinear) distance |a - b|_1.
inline double L1(const VecView& a, const VecView& b) {
  double s = 0.0;
  if (!a.is_sparse() && !b.is_sparse()) {
    for (size_t i = 0; i < a.nnz; ++i) {
      s += std::abs(static_cast<double>(a.values[i]) - b.values[i]);
    }
    return s;
  }
  if (a.is_sparse() && b.is_sparse()) {
    internal::MergeSparse(
        a, b,
        [&s](float x, float y) { s += std::abs(static_cast<double>(x) - y); },
        [&s](float x) { s += std::abs(static_cast<double>(x)); },
        [&s](float y) { s += std::abs(static_cast<double>(y)); });
    return s;
  }
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  size_t j = 0;
  for (size_t i = 0; i < de.nnz; ++i) {
    float sparse_v = 0.0f;
    if (j < sp.nnz && sp.indices[j] == i) {
      sparse_v = sp.values[j];
      ++j;
    }
    s += std::abs(static_cast<double>(de.values[i]) - sparse_v);
  }
  return s;
}

/// Jaccard distance between coordinate supports:
/// 1 - |supp(a) ∩ supp(b)| / |supp(a) ∪ supp(b)|.
inline double SupportJaccard(const VecView& a, const VecView& b) {
  size_t inter = 0, size_a = 0, size_b = 0;
  if (a.is_sparse() && b.is_sparse()) {
    size_a = a.nnz;
    size_b = b.nnz;
    internal::MergeSparse(
        a, b, [&inter](float, float) { ++inter; }, [](float) {},
        [](float) {});
  } else if (!a.is_sparse() && !b.is_sparse()) {
    size_a = internal::DenseSupportSize(a);
    size_b = internal::DenseSupportSize(b);
    for (size_t i = 0; i < a.nnz; ++i) {
      inter += (a.values[i] != 0.0f && b.values[i] != 0.0f);
    }
  } else {
    const VecView& sp = a.is_sparse() ? a : b;
    const VecView& de = a.is_sparse() ? b : a;
    size_a = sp.nnz;
    size_b = internal::DenseSupportSize(de);
    for (size_t i = 0; i < sp.nnz; ++i) {
      inter += (de.values[sp.indices[i]] != 0.0f);
    }
  }
  size_t uni = size_a + size_b - inter;
  if (uni == 0) return 0.0;  // both vectors all-zero: identical supports
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

/// Angular cosine distance arccos(<a,b> / (|a||b|)), with the zero-vector
/// conventions of CosineMetric (core/metric.h).
inline double AngularCosine(const VecView& a, const VecView& b) {
  double na = a.norm, nb = b.norm;
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return M_PI / 2.0;
  double c = Dot(a, b) / (na * nb);
  // Guard against rounding pushing the cosine outside [-1, 1].
  c = c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
  return std::acos(c);
}

/// Euclidean distance |a - b|.
inline double Euclidean(const VecView& a, const VecView& b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

// ---------------------------------------------------------------------------
// Multi-query tile lane kernels (dense rows only).
//
// The blocked many-vs-many kernels (Metric::DistanceTile, core/metric.cc)
// vectorize *across queries*, not within a row: a block of up to kTileLanes
// dense queries is transposed into a [dim][kTileLanes] lane layout, and each
// data row is streamed once while every lane accumulates its own distance in
// coordinate order. Because each lane performs exactly the operations of the
// scalar kernels above, in the same order, with the same double-precision
// intermediates (sub, mul, add — deliberately no FMA), the lane kernels are
// bit-identical to the scalar reference. The optional AVX2 variants
// (DIVERSE_ENABLE_AVX2 + runtime CPU check) keep this property: 8 lanes are
// two 4-wide double vectors and every vector op maps 1:1 onto the scalar
// sequence. Sparse or mixed rows never reach these kernels — the tile layer
// falls back to the exact scalar merge kernels above.

/// Queries per transposed lane block.
inline constexpr size_t kTileLanes = 8;

/// Packs `nq` (<= kTileLanes) dense query views into the transposed lane
/// layout qt[d * kTileLanes + lane]; unused lanes are zero-filled. `qt` must
/// hold dim * kTileLanes floats.
inline void PackQueryLanes(const VecView* queries, size_t nq, size_t dim,
                           float* qt) {
  for (size_t d = 0; d < dim; ++d) {
    for (size_t lane = 0; lane < kTileLanes; ++lane) {
      qt[d * kTileLanes + lane] =
          lane < nq ? queries[lane].values[d] : 0.0f;
    }
  }
}

namespace internal {

inline void SquaredEuclideanLanesGeneric(const float* qt, const float* row,
                                         size_t dim, double* out) {
  double acc[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t d = 0; d < dim; ++d) {
    double rv = row[d];
    const float* q = qt + d * kTileLanes;
    for (size_t lane = 0; lane < kTileLanes; ++lane) {
      double diff = static_cast<double>(q[lane]) - rv;
      acc[lane] += diff * diff;
    }
  }
  for (size_t lane = 0; lane < kTileLanes; ++lane) out[lane] = acc[lane];
}

inline void L1LanesGeneric(const float* qt, const float* row, size_t dim,
                           double* out) {
  double acc[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t d = 0; d < dim; ++d) {
    double rv = row[d];
    const float* q = qt + d * kTileLanes;
    for (size_t lane = 0; lane < kTileLanes; ++lane) {
      acc[lane] += std::abs(static_cast<double>(q[lane]) - rv);
    }
  }
  for (size_t lane = 0; lane < kTileLanes; ++lane) out[lane] = acc[lane];
}

inline void DotLanesGeneric(const float* qt, const float* row, size_t dim,
                            double* out) {
  double acc[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t d = 0; d < dim; ++d) {
    double rv = row[d];
    const float* q = qt + d * kTileLanes;
    for (size_t lane = 0; lane < kTileLanes; ++lane) {
      acc[lane] += static_cast<double>(q[lane]) * rv;
    }
  }
  for (size_t lane = 0; lane < kTileLanes; ++lane) out[lane] = acc[lane];
}

#if DIVERSE_HAVE_AVX2_KERNELS

// The AVX2 lane kernels mirror the generic ones vector-op for scalar-op
// (sub/mul/add, no FMA contraction), so each lane's result is bit-identical
// to the scalar kernels regardless of which variant ran.

__attribute__((target("avx2"))) inline void SquaredEuclideanLanesAvx2(
    const float* qt, const float* row, size_t dim, double* out) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (size_t d = 0; d < dim; ++d) {
    __m256d rv = _mm256_set1_pd(static_cast<double>(row[d]));
    __m256 q8 = _mm256_loadu_ps(qt + d * kTileLanes);
    __m256d q0 = _mm256_cvtps_pd(_mm256_castps256_ps128(q8));
    __m256d q1 = _mm256_cvtps_pd(_mm256_extractf128_ps(q8, 1));
    __m256d d0 = _mm256_sub_pd(q0, rv);
    __m256d d1 = _mm256_sub_pd(q1, rv);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
  }
  _mm256_storeu_pd(out, acc0);
  _mm256_storeu_pd(out + 4, acc1);
}

__attribute__((target("avx2"))) inline void L1LanesAvx2(const float* qt,
                                                        const float* row,
                                                        size_t dim,
                                                        double* out) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (size_t d = 0; d < dim; ++d) {
    __m256d rv = _mm256_set1_pd(static_cast<double>(row[d]));
    __m256 q8 = _mm256_loadu_ps(qt + d * kTileLanes);
    __m256d q0 = _mm256_cvtps_pd(_mm256_castps256_ps128(q8));
    __m256d q1 = _mm256_cvtps_pd(_mm256_extractf128_ps(q8, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_and_pd(_mm256_sub_pd(q0, rv), abs_mask));
    acc1 = _mm256_add_pd(acc1, _mm256_and_pd(_mm256_sub_pd(q1, rv), abs_mask));
  }
  _mm256_storeu_pd(out, acc0);
  _mm256_storeu_pd(out + 4, acc1);
}

__attribute__((target("avx2"))) inline void DotLanesAvx2(const float* qt,
                                                         const float* row,
                                                         size_t dim,
                                                         double* out) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (size_t d = 0; d < dim; ++d) {
    __m256d rv = _mm256_set1_pd(static_cast<double>(row[d]));
    __m256 q8 = _mm256_loadu_ps(qt + d * kTileLanes);
    __m256d q0 = _mm256_cvtps_pd(_mm256_castps256_ps128(q8));
    __m256d q1 = _mm256_cvtps_pd(_mm256_extractf128_ps(q8, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(q0, rv));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(q1, rv));
  }
  _mm256_storeu_pd(out, acc0);
  _mm256_storeu_pd(out + 4, acc1);
}

#endif  // DIVERSE_HAVE_AVX2_KERNELS

}  // namespace internal

/// True when the AVX2 lane kernels are compiled in and the CPU supports
/// them. Informational: lane results are bit-identical either way.
inline bool TileSimdEnabled() {
#if DIVERSE_HAVE_AVX2_KERNELS
  static const bool enabled = __builtin_cpu_supports("avx2") != 0;
  return enabled;
#else
  return false;
#endif
}

/// out[lane] = |q_lane - row|^2 for each packed query lane, bit-identical
/// per lane to SquaredEuclidean on the same pair.
inline void SquaredEuclideanLanes(const float* qt, const float* row,
                                  size_t dim, double* out) {
#if DIVERSE_HAVE_AVX2_KERNELS
  if (TileSimdEnabled()) {
    internal::SquaredEuclideanLanesAvx2(qt, row, dim, out);
    return;
  }
#endif
  internal::SquaredEuclideanLanesGeneric(qt, row, dim, out);
}

/// out[lane] = |q_lane - row|_1, bit-identical per lane to L1.
inline void L1Lanes(const float* qt, const float* row, size_t dim,
                    double* out) {
#if DIVERSE_HAVE_AVX2_KERNELS
  if (TileSimdEnabled()) {
    internal::L1LanesAvx2(qt, row, dim, out);
    return;
  }
#endif
  internal::L1LanesGeneric(qt, row, dim, out);
}

/// In-place sqrt over `count` doubles. Uses packed SQRTPD where available:
/// IEEE 754 square root is correctly rounded, so the packed instruction is
/// bit-identical to std::sqrt on every element.
inline void SqrtLanes(double* vals, size_t count) {
#if defined(__x86_64__) && defined(__SSE2__)
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    _mm_storeu_pd(vals + i, _mm_sqrt_pd(_mm_loadu_pd(vals + i)));
  }
  for (; i < count; ++i) vals[i] = std::sqrt(vals[i]);
#else
  for (size_t i = 0; i < count; ++i) vals[i] = std::sqrt(vals[i]);
#endif
}

/// out[lane] = <q_lane, row>, bit-identical per lane to Dot.
inline void DotLanes(const float* qt, const float* row, size_t dim,
                     double* out) {
#if DIVERSE_HAVE_AVX2_KERNELS
  if (TileSimdEnabled()) {
    internal::DotLanesAvx2(qt, row, dim, out);
    return;
  }
#endif
  internal::DotLanesGeneric(qt, row, dim, out);
}

}  // namespace kernels
}  // namespace diverse

#endif  // DIVERSE_CORE_VECTOR_KERNELS_H_
