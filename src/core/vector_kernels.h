// Shared low-level distance kernels over raw coordinate arrays.
//
// Both the scalar Point methods (core/point.cc) and the batched columnar
// kernels (core/metric.cc over core/dataset.h) call these functions, so the
// two paths are bit-identical by construction: same representation
// dispatch, same accumulation order, same double-precision arithmetic. That
// identity is what lets tests require the batched kernels to reproduce the
// scalar reference exactly, and lets parallel GMM select the same index
// sequence as the sequential loop.
//
// A `VecView` is a non-owning view of one vector in either representation:
//   dense:  indices == nullptr, values has `dim` coordinates;
//   sparse: indices/values hold `nnz` sorted coordinate pairs over a
//           conceptual `dim`-sized space.

#ifndef DIVERSE_CORE_VECTOR_KERNELS_H_
#define DIVERSE_CORE_VECTOR_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#if defined(DIVERSE_ENABLE_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DIVERSE_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#elif defined(__x86_64__) && defined(__SSE2__)
#define DIVERSE_HAVE_AVX2_KERNELS 0
#include <emmintrin.h>
#else
#define DIVERSE_HAVE_AVX2_KERNELS 0
#endif

namespace diverse {
namespace kernels {

/// Non-owning view of a dense or sparse vector.
struct VecView {
  const uint32_t* indices = nullptr;  // nullptr for dense vectors
  const float* values = nullptr;
  size_t nnz = 0;  // stored coordinates; == dim for dense
  size_t dim = 0;
  double norm = 0.0;  // precomputed Euclidean norm
  // Explicit representation tag. A sparse vector with zero stored
  // coordinates has indices == nullptr (an empty array has no storage), so
  // the pointer alone cannot distinguish it from a dense vector — and a
  // dense kernel would then walk the other operand's `dim` values against a
  // null values pointer.
  bool sparse = false;

  bool is_sparse() const { return sparse; }
};

namespace internal {

// Iterates the sparse-sparse union of two sorted index arrays, invoking
// `both` on common coordinates and `only_a`/`only_b` elsewhere. Mirrors the
// merge in core/point.cc exactly.
template <typename FBoth, typename FOnlyA, typename FOnlyB>
inline void MergeSparse(const VecView& a, const VecView& b, FBoth both,
                        FOnlyA only_a, FOnlyB only_b) {
  size_t i = 0, j = 0;
  while (i < a.nnz && j < b.nnz) {
    if (a.indices[i] == b.indices[j]) {
      both(a.values[i], b.values[j]);
      ++i;
      ++j;
    } else if (a.indices[i] < b.indices[j]) {
      only_a(a.values[i]);
      ++i;
    } else {
      only_b(b.values[j]);
      ++j;
    }
  }
  for (; i < a.nnz; ++i) only_a(a.values[i]);
  for (; j < b.nnz; ++j) only_b(b.values[j]);
}

inline size_t DenseSupportSize(const VecView& v) {
  size_t n = 0;
  for (size_t i = 0; i < v.nnz; ++i) n += (v.values[i] != 0.0f);
  return n;
}

}  // namespace internal

/// Inner product <a, b>. Representations may be mixed; dims must agree.
inline double Dot(const VecView& a, const VecView& b) {
  if (!a.is_sparse() && !b.is_sparse()) {
    double s = 0.0;
    for (size_t i = 0; i < a.nnz; ++i) {
      s += static_cast<double>(a.values[i]) * b.values[i];
    }
    return s;
  }
  if (a.is_sparse() && b.is_sparse()) {
    double s = 0.0;
    internal::MergeSparse(
        a, b, [&s](float x, float y) { s += static_cast<double>(x) * y; },
        [](float) {}, [](float) {});
    return s;
  }
  // Mixed: iterate the sparse one.
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  double s = 0.0;
  for (size_t i = 0; i < sp.nnz; ++i) {
    s += static_cast<double>(sp.values[i]) * de.values[sp.indices[i]];
  }
  return s;
}

/// Squared Euclidean distance |a - b|^2.
inline double SquaredEuclidean(const VecView& a, const VecView& b) {
  if (!a.is_sparse() && !b.is_sparse()) {
    double s = 0.0;
    for (size_t i = 0; i < a.nnz; ++i) {
      double d = static_cast<double>(a.values[i]) - b.values[i];
      s += d * d;
    }
    return s;
  }
  if (a.is_sparse() && b.is_sparse()) {
    // Direct coordinate merge: exact (no cancellation), unlike the
    // ||a||^2 + ||b||^2 - 2 a.b identity, which loses ~1e-7 of relative
    // precision and breaks d(p, p) == 0.
    double s = 0.0;
    internal::MergeSparse(
        a, b,
        [&s](float x, float y) {
          double d = static_cast<double>(x) - y;
          s += d * d;
        },
        [&s](float x) { s += static_cast<double>(x) * x; },
        [&s](float y) { s += static_cast<double>(y) * y; });
    return s;
  }
  // Mixed dense/sparse: walk the dense values with a sparse cursor.
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  double s = 0.0;
  size_t j = 0;
  for (size_t i = 0; i < de.nnz; ++i) {
    double sparse_v = 0.0;
    if (j < sp.nnz && sp.indices[j] == i) {
      sparse_v = sp.values[j];
      ++j;
    }
    double d = static_cast<double>(de.values[i]) - sparse_v;
    s += d * d;
  }
  return s;
}

/// L1 (rectilinear) distance |a - b|_1.
inline double L1(const VecView& a, const VecView& b) {
  double s = 0.0;
  if (!a.is_sparse() && !b.is_sparse()) {
    for (size_t i = 0; i < a.nnz; ++i) {
      s += std::abs(static_cast<double>(a.values[i]) - b.values[i]);
    }
    return s;
  }
  if (a.is_sparse() && b.is_sparse()) {
    internal::MergeSparse(
        a, b,
        [&s](float x, float y) { s += std::abs(static_cast<double>(x) - y); },
        [&s](float x) { s += std::abs(static_cast<double>(x)); },
        [&s](float y) { s += std::abs(static_cast<double>(y)); });
    return s;
  }
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  size_t j = 0;
  for (size_t i = 0; i < de.nnz; ++i) {
    float sparse_v = 0.0f;
    if (j < sp.nnz && sp.indices[j] == i) {
      sparse_v = sp.values[j];
      ++j;
    }
    s += std::abs(static_cast<double>(de.values[i]) - sparse_v);
  }
  return s;
}

/// Jaccard distance between coordinate supports:
/// 1 - |supp(a) ∩ supp(b)| / |supp(a) ∪ supp(b)|.
inline double SupportJaccard(const VecView& a, const VecView& b) {
  size_t inter = 0, size_a = 0, size_b = 0;
  if (a.is_sparse() && b.is_sparse()) {
    size_a = a.nnz;
    size_b = b.nnz;
    internal::MergeSparse(
        a, b, [&inter](float, float) { ++inter; }, [](float) {},
        [](float) {});
  } else if (!a.is_sparse() && !b.is_sparse()) {
    size_a = internal::DenseSupportSize(a);
    size_b = internal::DenseSupportSize(b);
    for (size_t i = 0; i < a.nnz; ++i) {
      inter += (a.values[i] != 0.0f && b.values[i] != 0.0f);
    }
  } else {
    const VecView& sp = a.is_sparse() ? a : b;
    const VecView& de = a.is_sparse() ? b : a;
    size_a = sp.nnz;
    size_b = internal::DenseSupportSize(de);
    for (size_t i = 0; i < sp.nnz; ++i) {
      inter += (de.values[sp.indices[i]] != 0.0f);
    }
  }
  size_t uni = size_a + size_b - inter;
  if (uni == 0) return 0.0;  // both vectors all-zero: identical supports
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

/// Angular cosine distance arccos(<a,b> / (|a||b|)), with the zero-vector
/// conventions of CosineMetric (core/metric.h).
inline double AngularCosine(const VecView& a, const VecView& b) {
  double na = a.norm, nb = b.norm;
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return M_PI / 2.0;
  double c = Dot(a, b) / (na * nb);
  // Guard against rounding pushing the cosine outside [-1, 1].
  c = c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
  return std::acos(c);
}

/// Euclidean distance |a - b|.
inline double Euclidean(const VecView& a, const VecView& b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

// ---------------------------------------------------------------------------
// Multi-query tile lane kernels (dense rows only).
//
// The blocked many-vs-many kernels (Metric::DistanceTile, core/metric.cc)
// vectorize *across queries*, not within a row: a block of up to kTileLanes
// dense queries is transposed into a [dim][kTileLanes] lane layout, and each
// data row is streamed once while every lane accumulates its own distance in
// coordinate order. Because each lane performs exactly the operations of the
// scalar kernels above, in the same order, with the same double-precision
// intermediates (sub, mul, add — deliberately no FMA), the lane kernels are
// bit-identical to the scalar reference. The optional AVX2 variants
// (DIVERSE_ENABLE_AVX2 + runtime CPU check) keep this property: 8 lanes are
// two 4-wide double vectors and every vector op maps 1:1 onto the scalar
// sequence. Sparse or mixed rows never reach these kernels — the tile layer
// falls back to the exact scalar merge kernels above.

/// Queries per transposed lane block.
inline constexpr size_t kTileLanes = 8;

/// Packs `nq` (<= kTileLanes) dense query views into the transposed lane
/// layout qt[d * kTileLanes + lane]; unused lanes are zero-filled. `qt` must
/// hold dim * kTileLanes floats.
inline void PackQueryLanes(const VecView* queries, size_t nq, size_t dim,
                           float* qt) {
  for (size_t d = 0; d < dim; ++d) {
    for (size_t lane = 0; lane < kTileLanes; ++lane) {
      qt[d * kTileLanes + lane] =
          lane < nq ? queries[lane].values[d] : 0.0f;
    }
  }
}

namespace internal {

inline void SquaredEuclideanLanesGeneric(const float* qt, const float* row,
                                         size_t dim, double* out) {
  double acc[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t d = 0; d < dim; ++d) {
    double rv = row[d];
    const float* q = qt + d * kTileLanes;
    for (size_t lane = 0; lane < kTileLanes; ++lane) {
      double diff = static_cast<double>(q[lane]) - rv;
      acc[lane] += diff * diff;
    }
  }
  for (size_t lane = 0; lane < kTileLanes; ++lane) out[lane] = acc[lane];
}

inline void L1LanesGeneric(const float* qt, const float* row, size_t dim,
                           double* out) {
  double acc[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t d = 0; d < dim; ++d) {
    double rv = row[d];
    const float* q = qt + d * kTileLanes;
    for (size_t lane = 0; lane < kTileLanes; ++lane) {
      acc[lane] += std::abs(static_cast<double>(q[lane]) - rv);
    }
  }
  for (size_t lane = 0; lane < kTileLanes; ++lane) out[lane] = acc[lane];
}

inline void DotLanesGeneric(const float* qt, const float* row, size_t dim,
                            double* out) {
  double acc[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t d = 0; d < dim; ++d) {
    double rv = row[d];
    const float* q = qt + d * kTileLanes;
    for (size_t lane = 0; lane < kTileLanes; ++lane) {
      acc[lane] += static_cast<double>(q[lane]) * rv;
    }
  }
  for (size_t lane = 0; lane < kTileLanes; ++lane) out[lane] = acc[lane];
}

#if DIVERSE_HAVE_AVX2_KERNELS

// The AVX2 lane kernels mirror the generic ones vector-op for scalar-op
// (sub/mul/add, no FMA contraction), so each lane's result is bit-identical
// to the scalar kernels regardless of which variant ran.

__attribute__((target("avx2"))) inline void SquaredEuclideanLanesAvx2(
    const float* qt, const float* row, size_t dim, double* out) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (size_t d = 0; d < dim; ++d) {
    __m256d rv = _mm256_set1_pd(static_cast<double>(row[d]));
    __m256 q8 = _mm256_loadu_ps(qt + d * kTileLanes);
    __m256d q0 = _mm256_cvtps_pd(_mm256_castps256_ps128(q8));
    __m256d q1 = _mm256_cvtps_pd(_mm256_extractf128_ps(q8, 1));
    __m256d d0 = _mm256_sub_pd(q0, rv);
    __m256d d1 = _mm256_sub_pd(q1, rv);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
  }
  _mm256_storeu_pd(out, acc0);
  _mm256_storeu_pd(out + 4, acc1);
}

__attribute__((target("avx2"))) inline void L1LanesAvx2(const float* qt,
                                                        const float* row,
                                                        size_t dim,
                                                        double* out) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (size_t d = 0; d < dim; ++d) {
    __m256d rv = _mm256_set1_pd(static_cast<double>(row[d]));
    __m256 q8 = _mm256_loadu_ps(qt + d * kTileLanes);
    __m256d q0 = _mm256_cvtps_pd(_mm256_castps256_ps128(q8));
    __m256d q1 = _mm256_cvtps_pd(_mm256_extractf128_ps(q8, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_and_pd(_mm256_sub_pd(q0, rv), abs_mask));
    acc1 = _mm256_add_pd(acc1, _mm256_and_pd(_mm256_sub_pd(q1, rv), abs_mask));
  }
  _mm256_storeu_pd(out, acc0);
  _mm256_storeu_pd(out + 4, acc1);
}

__attribute__((target("avx2"))) inline void DotLanesAvx2(const float* qt,
                                                         const float* row,
                                                         size_t dim,
                                                         double* out) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (size_t d = 0; d < dim; ++d) {
    __m256d rv = _mm256_set1_pd(static_cast<double>(row[d]));
    __m256 q8 = _mm256_loadu_ps(qt + d * kTileLanes);
    __m256d q0 = _mm256_cvtps_pd(_mm256_castps256_ps128(q8));
    __m256d q1 = _mm256_cvtps_pd(_mm256_extractf128_ps(q8, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(q0, rv));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(q1, rv));
  }
  _mm256_storeu_pd(out, acc0);
  _mm256_storeu_pd(out + 4, acc1);
}

#endif  // DIVERSE_HAVE_AVX2_KERNELS

}  // namespace internal

/// True when the AVX2 lane kernels are compiled in and the CPU supports
/// them. Informational: lane results are bit-identical either way.
inline bool TileSimdEnabled() {
#if DIVERSE_HAVE_AVX2_KERNELS
  static const bool enabled = __builtin_cpu_supports("avx2") != 0;
  return enabled;
#else
  return false;
#endif
}

/// out[lane] = |q_lane - row|^2 for each packed query lane, bit-identical
/// per lane to SquaredEuclidean on the same pair.
inline void SquaredEuclideanLanes(const float* qt, const float* row,
                                  size_t dim, double* out) {
#if DIVERSE_HAVE_AVX2_KERNELS
  if (TileSimdEnabled()) {
    internal::SquaredEuclideanLanesAvx2(qt, row, dim, out);
    return;
  }
#endif
  internal::SquaredEuclideanLanesGeneric(qt, row, dim, out);
}

/// out[lane] = |q_lane - row|_1, bit-identical per lane to L1.
inline void L1Lanes(const float* qt, const float* row, size_t dim,
                    double* out) {
#if DIVERSE_HAVE_AVX2_KERNELS
  if (TileSimdEnabled()) {
    internal::L1LanesAvx2(qt, row, dim, out);
    return;
  }
#endif
  internal::L1LanesGeneric(qt, row, dim, out);
}

/// In-place sqrt over `count` doubles. Uses packed SQRTPD where available:
/// IEEE 754 square root is correctly rounded, so the packed instruction is
/// bit-identical to std::sqrt on every element.
inline void SqrtLanes(double* vals, size_t count) {
#if defined(__x86_64__) && defined(__SSE2__)
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    _mm_storeu_pd(vals + i, _mm_sqrt_pd(_mm_loadu_pd(vals + i)));
  }
  for (; i < count; ++i) vals[i] = std::sqrt(vals[i]);
#else
  for (size_t i = 0; i < count; ++i) vals[i] = std::sqrt(vals[i]);
#endif
}

/// out[lane] = <q_lane, row>, bit-identical per lane to Dot.
inline void DotLanes(const float* qt, const float* row, size_t dim,
                     double* out) {
#if DIVERSE_HAVE_AVX2_KERNELS
  if (TileSimdEnabled()) {
    internal::DotLanesAvx2(qt, row, dim, out);
    return;
  }
#endif
  internal::DotLanesGeneric(qt, row, dim, out);
}

// ---------------------------------------------------------------------------
// fp32 screening kernels.
//
// The screen-then-certify engine (core/screen.h) sweeps candidates with
// *float* accumulation — the columnar arrays already store fp32 coordinates,
// so halving the accumulator width doubles the SIMD lane count and halves
// tile bandwidth — and re-evaluates in exact double only the candidates
// whose screened value lands within a certified error band of the decision
// threshold (Metric::ScreenErrorBound). Unlike the exact kernels above, the
// fp32 kernels promise no bit-exact relationship to the scalar reference:
// the per-metric bounds cover any summation order via the worst-case
// (sequential) gamma_n analysis, so each kernel is free to pick the order
// that vectorizes best. Every order is still *fixed in code* — never
// scheduling-dependent — so screened values, rescue sets, and evaluation
// counts are deterministic at any thread count; and the AVX2 variants mirror
// the generic ones op for op, so they are bit-identical to each other just
// like the exact lane kernels.

/// Queries per transposed fp32 lane block (twice the double lane width).
inline constexpr size_t kTileLanesF32 = 16;

/// Packs `nq` (<= kTileLanesF32) dense query views into the transposed
/// fp32 lane layout qt[d * kTileLanesF32 + lane]; unused lanes zero-filled.
/// `qt` must hold dim * kTileLanesF32 floats.
inline void PackQueryLanesF32(const VecView* queries, size_t nq, size_t dim,
                              float* qt) {
  for (size_t d = 0; d < dim; ++d) {
    for (size_t lane = 0; lane < kTileLanesF32; ++lane) {
      qt[d * kTileLanesF32 + lane] =
          lane < nq ? queries[lane].values[d] : 0.0f;
    }
  }
}

namespace internal {

// The baseline fp32 lane kernels are hand-written SSE2 on x86-64 (part of
// the base ISA, no dispatch needed): left to the auto-vectorizer, GCC
// chooses an outer-loop (across-coordinates) strategy for these 16-lane
// float loops whose shuffle/transpose overhead runs slower than the scalar
// double kernels. The intrinsics pin the natural in-lane direction; every
// vector op maps 1:1 onto the plain-loop fallback's scalar sequence, so
// all variants (plain, SSE2, AVX2) produce identical float bits.

#if defined(__x86_64__) && defined(__SSE2__)

inline void SquaredEuclideanLanesF32Generic(const float* qt, const float* row,
                                            size_t dim, float* out) {
  __m128 acc0 = _mm_setzero_ps();
  __m128 acc1 = _mm_setzero_ps();
  __m128 acc2 = _mm_setzero_ps();
  __m128 acc3 = _mm_setzero_ps();
  for (size_t d = 0; d < dim; ++d) {
    __m128 rv = _mm_set1_ps(row[d]);
    const float* q = qt + d * kTileLanesF32;
    __m128 d0 = _mm_sub_ps(_mm_loadu_ps(q), rv);
    __m128 d1 = _mm_sub_ps(_mm_loadu_ps(q + 4), rv);
    __m128 d2 = _mm_sub_ps(_mm_loadu_ps(q + 8), rv);
    __m128 d3 = _mm_sub_ps(_mm_loadu_ps(q + 12), rv);
    acc0 = _mm_add_ps(acc0, _mm_mul_ps(d0, d0));
    acc1 = _mm_add_ps(acc1, _mm_mul_ps(d1, d1));
    acc2 = _mm_add_ps(acc2, _mm_mul_ps(d2, d2));
    acc3 = _mm_add_ps(acc3, _mm_mul_ps(d3, d3));
  }
  _mm_storeu_ps(out, acc0);
  _mm_storeu_ps(out + 4, acc1);
  _mm_storeu_ps(out + 8, acc2);
  _mm_storeu_ps(out + 12, acc3);
}

inline void L1LanesF32Generic(const float* qt, const float* row, size_t dim,
                              float* out) {
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  __m128 acc0 = _mm_setzero_ps();
  __m128 acc1 = _mm_setzero_ps();
  __m128 acc2 = _mm_setzero_ps();
  __m128 acc3 = _mm_setzero_ps();
  for (size_t d = 0; d < dim; ++d) {
    __m128 rv = _mm_set1_ps(row[d]);
    const float* q = qt + d * kTileLanesF32;
    acc0 = _mm_add_ps(
        acc0, _mm_and_ps(_mm_sub_ps(_mm_loadu_ps(q), rv), abs_mask));
    acc1 = _mm_add_ps(
        acc1, _mm_and_ps(_mm_sub_ps(_mm_loadu_ps(q + 4), rv), abs_mask));
    acc2 = _mm_add_ps(
        acc2, _mm_and_ps(_mm_sub_ps(_mm_loadu_ps(q + 8), rv), abs_mask));
    acc3 = _mm_add_ps(
        acc3, _mm_and_ps(_mm_sub_ps(_mm_loadu_ps(q + 12), rv), abs_mask));
  }
  _mm_storeu_ps(out, acc0);
  _mm_storeu_ps(out + 4, acc1);
  _mm_storeu_ps(out + 8, acc2);
  _mm_storeu_ps(out + 12, acc3);
}

inline void DotLanesF32Generic(const float* qt, const float* row, size_t dim,
                               float* out) {
  __m128 acc0 = _mm_setzero_ps();
  __m128 acc1 = _mm_setzero_ps();
  __m128 acc2 = _mm_setzero_ps();
  __m128 acc3 = _mm_setzero_ps();
  for (size_t d = 0; d < dim; ++d) {
    __m128 rv = _mm_set1_ps(row[d]);
    const float* q = qt + d * kTileLanesF32;
    acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(q), rv));
    acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_loadu_ps(q + 4), rv));
    acc2 = _mm_add_ps(acc2, _mm_mul_ps(_mm_loadu_ps(q + 8), rv));
    acc3 = _mm_add_ps(acc3, _mm_mul_ps(_mm_loadu_ps(q + 12), rv));
  }
  _mm_storeu_ps(out, acc0);
  _mm_storeu_ps(out + 4, acc1);
  _mm_storeu_ps(out + 8, acc2);
  _mm_storeu_ps(out + 12, acc3);
}

#else  // !x86-64 SSE2

inline void SquaredEuclideanLanesF32Generic(const float* qt, const float* row,
                                            size_t dim, float* out) {
  float acc[kTileLanesF32] = {};
  for (size_t d = 0; d < dim; ++d) {
    float rv = row[d];
    const float* q = qt + d * kTileLanesF32;
    for (size_t lane = 0; lane < kTileLanesF32; ++lane) {
      float diff = q[lane] - rv;
      acc[lane] += diff * diff;
    }
  }
  for (size_t lane = 0; lane < kTileLanesF32; ++lane) out[lane] = acc[lane];
}

inline void L1LanesF32Generic(const float* qt, const float* row, size_t dim,
                              float* out) {
  float acc[kTileLanesF32] = {};
  for (size_t d = 0; d < dim; ++d) {
    float rv = row[d];
    const float* q = qt + d * kTileLanesF32;
    for (size_t lane = 0; lane < kTileLanesF32; ++lane) {
      acc[lane] += std::abs(q[lane] - rv);
    }
  }
  for (size_t lane = 0; lane < kTileLanesF32; ++lane) out[lane] = acc[lane];
}

inline void DotLanesF32Generic(const float* qt, const float* row, size_t dim,
                               float* out) {
  float acc[kTileLanesF32] = {};
  for (size_t d = 0; d < dim; ++d) {
    float rv = row[d];
    const float* q = qt + d * kTileLanesF32;
    for (size_t lane = 0; lane < kTileLanesF32; ++lane) {
      acc[lane] += q[lane] * rv;
    }
  }
  for (size_t lane = 0; lane < kTileLanesF32; ++lane) out[lane] = acc[lane];
}

#endif  // x86-64 SSE2

#if DIVERSE_HAVE_AVX2_KERNELS

// The fp32 AVX2 lane kernels mirror the generic loops vector-op for
// scalar-op (sub/mul/add per coordinate, vertical only), so each lane's
// float value is identical regardless of which variant ran — rescue sets do
// not depend on the AVX2 build flag or CPU.

__attribute__((target("avx2"))) inline void SquaredEuclideanLanesF32Avx2(
    const float* qt, const float* row, size_t dim, float* out) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  for (size_t d = 0; d < dim; ++d) {
    __m256 rv = _mm256_set1_ps(row[d]);
    __m256 q0 = _mm256_loadu_ps(qt + d * kTileLanesF32);
    __m256 q1 = _mm256_loadu_ps(qt + d * kTileLanesF32 + 8);
    __m256 d0 = _mm256_sub_ps(q0, rv);
    __m256 d1 = _mm256_sub_ps(q1, rv);
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(d0, d0));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(d1, d1));
  }
  _mm256_storeu_ps(out, acc0);
  _mm256_storeu_ps(out + 8, acc1);
}

__attribute__((target("avx2"))) inline void L1LanesF32Avx2(const float* qt,
                                                           const float* row,
                                                           size_t dim,
                                                           float* out) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  for (size_t d = 0; d < dim; ++d) {
    __m256 rv = _mm256_set1_ps(row[d]);
    __m256 q0 = _mm256_loadu_ps(qt + d * kTileLanesF32);
    __m256 q1 = _mm256_loadu_ps(qt + d * kTileLanesF32 + 8);
    acc0 = _mm256_add_ps(acc0, _mm256_and_ps(_mm256_sub_ps(q0, rv), abs_mask));
    acc1 = _mm256_add_ps(acc1, _mm256_and_ps(_mm256_sub_ps(q1, rv), abs_mask));
  }
  _mm256_storeu_ps(out, acc0);
  _mm256_storeu_ps(out + 8, acc1);
}

__attribute__((target("avx2"))) inline void DotLanesF32Avx2(const float* qt,
                                                            const float* row,
                                                            size_t dim,
                                                            float* out) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  for (size_t d = 0; d < dim; ++d) {
    __m256 rv = _mm256_set1_ps(row[d]);
    __m256 q0 = _mm256_loadu_ps(qt + d * kTileLanesF32);
    __m256 q1 = _mm256_loadu_ps(qt + d * kTileLanesF32 + 8);
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(q0, rv));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(q1, rv));
  }
  _mm256_storeu_ps(out, acc0);
  _mm256_storeu_ps(out + 8, acc1);
}

#endif  // DIVERSE_HAVE_AVX2_KERNELS

// Shared structure of the dense single-query fp32 kernels: eight partial
// accumulators filled 8 coordinates at a time (vectorizable without any
// reassociation by the compiler), a sequential tail accumulator, and a fixed
// pairwise reduction. The bound analysis covers this order like any other;
// the order depends only on n, so screened values stay deterministic. Low
// dimensions skip the 8-way structure — its reduction would cost more than
// the terms.
template <typename TermFn>
inline float Accumulate8F32(const float* a, const float* b, size_t n,
                            const TermFn& term) {
  if (n < 16) {
    float s = 0.0f;
    for (size_t d = 0; d < n; ++d) s += term(a[d], b[d]);
    return s;
  }
  float acc[8] = {};
  size_t n8 = n & ~size_t{7};
  for (size_t d = 0; d < n8; d += 8) {
    for (size_t j = 0; j < 8; ++j) acc[j] += term(a[d + j], b[d + j]);
  }
  float tail = 0.0f;
  for (size_t d = n8; d < n; ++d) tail += term(a[d], b[d]);
  float s0 = acc[0] + acc[4];
  float s1 = acc[1] + acc[5];
  float s2 = acc[2] + acc[6];
  float s3 = acc[3] + acc[7];
  return ((s0 + s2) + (s1 + s3)) + tail;
}

}  // namespace internal

/// out[lane] = |q_lane - row|^2 in fp32 for each packed query lane.
inline void SquaredEuclideanLanesF32(const float* qt, const float* row,
                                     size_t dim, float* out) {
#if DIVERSE_HAVE_AVX2_KERNELS
  if (TileSimdEnabled()) {
    internal::SquaredEuclideanLanesF32Avx2(qt, row, dim, out);
    return;
  }
#endif
  internal::SquaredEuclideanLanesF32Generic(qt, row, dim, out);
}

/// out[lane] = |q_lane - row|_1 in fp32.
inline void L1LanesF32(const float* qt, const float* row, size_t dim,
                       float* out) {
#if DIVERSE_HAVE_AVX2_KERNELS
  if (TileSimdEnabled()) {
    internal::L1LanesF32Avx2(qt, row, dim, out);
    return;
  }
#endif
  internal::L1LanesF32Generic(qt, row, dim, out);
}

/// out[lane] = <q_lane, row> in fp32.
inline void DotLanesF32(const float* qt, const float* row, size_t dim,
                        float* out) {
#if DIVERSE_HAVE_AVX2_KERNELS
  if (TileSimdEnabled()) {
    internal::DotLanesF32Avx2(qt, row, dim, out);
    return;
  }
#endif
  internal::DotLanesF32Generic(qt, row, dim, out);
}

/// Rescue mask over one 16-lane fp32 screen block: bit l is set iff lane
/// l's screened value cannot be certified-skipped against the row threshold
/// `thr` — i.e. !(vals[l] > thr && vals[l] <= FLT_MAX). NaN fails both
/// comparisons and +inf fails the FLT_MAX test, so overflowed accumulators
/// always rescue. This is the one compare the fused screened tile kernels
/// (Metric::ScreenedRelaxTile) pay per (16 centers x row); on realistic
/// sweeps the result is 0 for the vast majority of rows.
inline uint32_t RescueMask16F32(const float* vals, float thr) {
#if defined(__x86_64__) && defined(__SSE2__)
  const __m128 vthr = _mm_set1_ps(thr);
  const __m128 vmax = _mm_set1_ps(std::numeric_limits<float>::max());
  uint32_t skip = 0;
  for (size_t i = 0; i < 16; i += 4) {
    __m128 v = _mm_loadu_ps(vals + i);
    __m128 ok = _mm_and_ps(_mm_cmpgt_ps(v, vthr), _mm_cmple_ps(v, vmax));
    skip |= static_cast<uint32_t>(_mm_movemask_ps(ok)) << i;
  }
  return ~skip & 0xFFFFu;
#else
  uint32_t mask = 0;
  for (size_t l = 0; l < 16; ++l) {
    float v = vals[l];
    if (!(v > thr && v <= std::numeric_limits<float>::max())) {
      mask |= 1u << l;
    }
  }
  return mask;
#endif
}

/// Minimum of 16 fp32 lane values with every non-finite lane (NaN, ±inf —
/// overflowed screen accumulators, padding) replaced by +inf; returns +inf
/// when no lane is finite. The screened argmin machinery of the fused tile
/// kernels reduces a band-hit row's lane block through this in four packed
/// compares instead of a branchy scalar scan.
inline float MinFinite16F32(const float* vals) {
#if defined(__x86_64__) && defined(__SSE2__)
  const __m128 vmax = _mm_set1_ps(std::numeric_limits<float>::max());
  const __m128 vlow = _mm_set1_ps(-std::numeric_limits<float>::max());
  const __m128 vinf = _mm_set1_ps(std::numeric_limits<float>::infinity());
  __m128 acc = vinf;
  for (size_t i = 0; i < 16; i += 4) {
    __m128 v = _mm_loadu_ps(vals + i);
    __m128 finite = _mm_and_ps(_mm_cmpge_ps(v, vlow), _mm_cmple_ps(v, vmax));
    __m128 sel = _mm_or_ps(_mm_and_ps(finite, v), _mm_andnot_ps(finite, vinf));
    acc = _mm_min_ps(acc, sel);
  }
  __m128 sh = _mm_shuffle_ps(acc, acc, _MM_SHUFFLE(1, 0, 3, 2));
  acc = _mm_min_ps(acc, sh);
  sh = _mm_shuffle_ps(acc, acc, _MM_SHUFFLE(2, 3, 0, 1));
  acc = _mm_min_ps(acc, sh);
  return _mm_cvtss_f32(acc);
#else
  float m = std::numeric_limits<float>::infinity();
  for (size_t l = 0; l < 16; ++l) {
    float v = vals[l];
    if (v >= -std::numeric_limits<float>::max() &&
        v <= std::numeric_limits<float>::max() && v < m) {
      m = v;
    }
  }
  return m;
#endif
}

/// In-place fp32 sqrt over `count` floats (packed SQRTPS where available;
/// IEEE sqrt is correctly rounded, so identical to sqrtf per element).
inline void SqrtLanesF32(float* vals, size_t count) {
#if defined(__x86_64__) && defined(__SSE2__)
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    _mm_storeu_ps(vals + i, _mm_sqrt_ps(_mm_loadu_ps(vals + i)));
  }
  for (; i < count; ++i) vals[i] = std::sqrt(vals[i]);
#else
  for (size_t i = 0; i < count; ++i) vals[i] = std::sqrt(vals[i]);
#endif
}

/// fp32 squared Euclidean distance |a - b|^2 (any representation mix).
inline float SquaredEuclideanF32(const VecView& a, const VecView& b) {
  if (!a.is_sparse() && !b.is_sparse()) {
    return internal::Accumulate8F32(a.values, b.values, a.nnz,
                                    [](float x, float y) {
                                      float d = x - y;
                                      return d * d;
                                    });
  }
  float s = 0.0f;
  if (a.is_sparse() && b.is_sparse()) {
    internal::MergeSparse(
        a, b,
        [&s](float x, float y) {
          float d = x - y;
          s += d * d;
        },
        [&s](float x) { s += x * x; }, [&s](float y) { s += y * y; });
    return s;
  }
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  size_t j = 0;
  for (size_t i = 0; i < de.nnz; ++i) {
    float sparse_v = 0.0f;
    if (j < sp.nnz && sp.indices[j] == i) {
      sparse_v = sp.values[j];
      ++j;
    }
    float d = de.values[i] - sparse_v;
    s += d * d;
  }
  return s;
}

/// fp32 Euclidean distance |a - b|.
inline float EuclideanF32(const VecView& a, const VecView& b) {
  return std::sqrt(SquaredEuclideanF32(a, b));
}

/// fp32 L1 distance |a - b|_1 (any representation mix).
inline float L1F32(const VecView& a, const VecView& b) {
  if (!a.is_sparse() && !b.is_sparse()) {
    return internal::Accumulate8F32(
        a.values, b.values, a.nnz,
        [](float x, float y) { return std::abs(x - y); });
  }
  float s = 0.0f;
  if (a.is_sparse() && b.is_sparse()) {
    internal::MergeSparse(
        a, b, [&s](float x, float y) { s += std::abs(x - y); },
        [&s](float x) { s += std::abs(x); }, [&s](float y) { s += std::abs(y); });
    return s;
  }
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  size_t j = 0;
  for (size_t i = 0; i < de.nnz; ++i) {
    float sparse_v = 0.0f;
    if (j < sp.nnz && sp.indices[j] == i) {
      sparse_v = sp.values[j];
      ++j;
    }
    s += std::abs(de.values[i] - sparse_v);
  }
  return s;
}

/// fp32 inner product <a, b> (any representation mix).
inline float DotF32(const VecView& a, const VecView& b) {
  if (!a.is_sparse() && !b.is_sparse()) {
    return internal::Accumulate8F32(a.values, b.values, a.nnz,
                                    [](float x, float y) { return x * y; });
  }
  float s = 0.0f;
  if (a.is_sparse() && b.is_sparse()) {
    internal::MergeSparse(
        a, b, [&s](float x, float y) { s += x * y; }, [](float) {},
        [](float) {});
    return s;
  }
  const VecView& sp = a.is_sparse() ? a : b;
  const VecView& de = a.is_sparse() ? b : a;
  for (size_t i = 0; i < sp.nnz; ++i) {
    s += sp.values[i] * de.values[sp.indices[i]];
  }
  return s;
}

/// Polynomial arccos for the screened cosine kernels: the Abramowitz &
/// Stegun 4.4.46 7th-degree form, |poly - acos| <= 2e-8 over [0, 1]
/// (reflected for negatives), evaluated in fp32 (adding a few float ulps of
/// rounding). Total absolute error stays below 1e-5, which CosineBound
/// folds into the certified band — and which replaces a libm acos call
/// (the dominant per-pair cost of angular screening) with one sqrt and
/// eight multiply-adds. Requires x in [-1, 1].
inline float AcosScreenPoly(float x) {
  float ax = x < 0.0f ? -x : x;
  float s = std::sqrt(1.0f - ax);
  float p = -0.0012624911f;
  p = p * ax + 0.0066700901f;
  p = p * ax - 0.0170881256f;
  p = p * ax + 0.0308918810f;
  p = p * ax - 0.0501743046f;
  p = p * ax + 0.0889789874f;
  p = p * ax - 0.2145988016f;
  p = p * ax + 1.5707963050f;
  float r = s * p;
  return x < 0.0f ? 3.14159265358979f - r : r;
}

/// Screened angular cosine distance from an fp32-accumulated dot product.
/// The zero-norm conventions key off the *exact* double norms, so
/// convention-valued pairs carry no fp32 error at all; a non-finite dot
/// (fp32 overflow) yields NaN, which the certified comparisons of
/// core/screen.h treat as "always rescue". The arccos is the certified
/// AcosScreenPoly approximation, not libm acos.
inline double AngularCosineFromScreenedDot(double dot, double na, double nb) {
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return M_PI / 2.0;
  if (!std::isfinite(dot)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double c = dot / (na * nb);
  c = c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
  return AcosScreenPoly(static_cast<float>(c));
}

}  // namespace kernels
}  // namespace diverse

#endif  // DIVERSE_CORE_VECTOR_KERNELS_H_
