// Blocked sparse×sparse tile kernels (CSR query blocks vs CSR rows).
//
// The dense tile path (core/vector_kernels.h) vectorizes across queries by
// transposing a lane block once and streaming each data row through it. This
// header gives the sparse representation the same treatment: a block of up
// to kTileLanes sparse queries is *decoded once* into a packed lane block
// over the sorted union of their supports, and every CSR data row is then
// streamed a single time against all lanes. The per-pair two-pointer merge
// of the scalar kernels (which re-decodes both operands for every pair) is
// replaced by one shared decode per block plus one index walk per row.
//
// Bit-exactness contract. Every lane reproduces the scalar merge kernels of
// core/vector_kernels.h bit for bit:
//   * Euclidean / L1 walk the merged union of the *block* support U and the
//     row support in ascending index order. For a given lane, indices the
//     lane stores contribute exactly the scalar merge's terms in the scalar
//     merge's order; indices only other lanes store contribute
//     (0 - 0)^2 = +0.0 (resp. |0 - 0| = +0.0) when the row also lacks them,
//     and (0 - y)^2 = y*y (resp. |0 - y| = |y|) when the row has them —
//     IEEE-identical to the scalar merge's "only_b" terms. Adding +0.0 to a
//     nonnegative accumulator never changes its bits, so the widened walk is
//     bit-identical per lane to the per-pair merge.
//   * Dot streams exactly the common indices in ascending order (absent
//     lanes contribute a signed zero, which cannot alter the final angular
//     distance — see CosineMetric::DistanceTile); Jaccard counts
//     intersections in exact
//     integer arithmetic off a per-index presence bitmask, so stored zero
//     values keep their scalar-merge support semantics.
//
// Strategy selection. The decoded block supports two probe strategies:
//   * kMergeWalk — two-pointer walk of (union, row) index lists, with
//     galloping (exponential + binary search) through the longer list when
//     the nnz ratio is heavily skewed;
//   * kDirectIndex — a dim-sized slot table mapping index -> union position
//     for O(1) probes of each row index. Worth its O(dim) per-block clear
//     only for modest dimensions or large row blocks; the tile driver picks
//     per block using the Dataset's nnz statistics (core/dataset.h).
// Both strategies visit the same index positions in the same order, so the
// choice never changes results — only the cost of finding the positions.

#ifndef DIVERSE_CORE_SPARSE_KERNELS_H_
#define DIVERSE_CORE_SPARSE_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/vector_kernels.h"

namespace diverse {
namespace kernels {

/// Reusable workspace holding one decoded block of <= kTileLanes sparse
/// queries. Held thread_local by the tile driver so decode buffers are
/// allocated once per thread, not once per tile.
struct SparseTileScratch {
  /// Sorted union of the block lanes' stored indices.
  std::vector<uint32_t> indices;
  /// Packed lane values over the union: lanes[p * kTileLanes + l] is lane
  /// l's stored value at indices[p], 0.0f where lane l lacks the index.
  std::vector<float> lanes;
  /// Presence bitmask per union position: bit l set iff lane l *stores*
  /// indices[p] (distinguishes stored zeros from absent coordinates, which
  /// SupportJaccard's support semantics require).
  std::vector<uint8_t> mask;
  /// Direct-index mirror (kDirectIndex only): slot[idx] = union position of
  /// idx plus one, 0 when idx is not in the union. Sized to the ambient
  /// dimension and rebuilt per block.
  std::vector<uint32_t> slot;
  /// True when `slot` is valid for the current block.
  bool direct = false;
  /// Number of decoded lanes.
  size_t nq = 0;
  /// Stored coordinates per lane (Jaccard support sizes).
  size_t lane_nnz[kTileLanes] = {};
  /// Total stored coordinates across lanes (strategy input).
  size_t total_nnz = 0;

  // Pack-internal scratch (kept to reuse capacity).
  std::vector<uint32_t> tmp_indices;
};

/// Decodes `nq` (<= kTileLanes) sparse query views into `ws`. When
/// `direct_dim` is nonzero it is the ambient dimension and the direct-index
/// slot table is built; pass 0 to skip it (merge-walk probing only).
inline void PackSparseQueryLanes(const VecView* queries, size_t nq,
                                 size_t direct_dim, SparseTileScratch& ws) {
  ws.nq = nq;
  ws.total_nnz = 0;
  ws.tmp_indices.clear();
  for (size_t l = 0; l < nq; ++l) {
    ws.lane_nnz[l] = queries[l].nnz;
    ws.total_nnz += queries[l].nnz;
    ws.tmp_indices.insert(ws.tmp_indices.end(), queries[l].indices,
                          queries[l].indices + queries[l].nnz);
  }
  for (size_t l = nq; l < kTileLanes; ++l) ws.lane_nnz[l] = 0;
  std::sort(ws.tmp_indices.begin(), ws.tmp_indices.end());
  ws.tmp_indices.erase(
      std::unique(ws.tmp_indices.begin(), ws.tmp_indices.end()),
      ws.tmp_indices.end());
  std::swap(ws.indices, ws.tmp_indices);

  size_t u = ws.indices.size();
  ws.lanes.assign(u * kTileLanes, 0.0f);
  ws.mask.assign(u, 0);
  for (size_t l = 0; l < nq; ++l) {
    // The union is a superset of every lane's support, so a single forward
    // cursor locates each lane index.
    size_t p = 0;
    for (size_t i = 0; i < queries[l].nnz; ++i) {
      uint32_t idx = queries[l].indices[i];
      while (ws.indices[p] != idx) ++p;
      ws.lanes[p * kTileLanes + l] = queries[l].values[i];
      ws.mask[p] = static_cast<uint8_t>(ws.mask[p] | (1u << l));
    }
  }

  ws.direct = direct_dim > 0;
  if (ws.direct) {
    ws.slot.assign(direct_dim, 0);
    for (size_t p = 0; p < u; ++p) {
      ws.slot[ws.indices[p]] = static_cast<uint32_t>(p + 1);
    }
  }
}

namespace internal {

/// First position in sorted arr[from, n) with arr[pos] >= target, found by
/// exponential probing then binary search — O(log gap) instead of O(gap)
/// when consecutive targets land far apart (skewed nnz ratios).
inline size_t GallopLowerBound(const uint32_t* arr, size_t n, size_t from,
                               uint32_t target) {
  size_t step = 1;
  size_t hi = from;
  while (hi < n && arr[hi] < target) {
    from = hi + 1;
    hi += step;
    step <<= 1;
  }
  size_t end = hi < n ? hi : n;
  return static_cast<size_t>(
      std::lower_bound(arr + from, arr + end, target) - arr);
}

/// Streams the common indices of (ws.indices, r) in ascending order,
/// invoking hit(union_position, row_value_position) per match. Strategy:
/// direct slot probes when available, otherwise a two-pointer walk that
/// gallops through the longer list when the length ratio exceeds 8x.
template <typename HitFn>
inline void ForEachIntersection(const SparseTileScratch& ws, const VecView& r,
                                const HitFn& hit) {
  size_t u = ws.indices.size();
  if (ws.direct) {
    for (size_t j = 0; j < r.nnz; ++j) {
      uint32_t p = ws.slot[r.indices[j]];
      if (p != 0) hit(static_cast<size_t>(p - 1), j);
    }
    return;
  }
  const uint32_t* ui = ws.indices.data();
  if (u > 8 * r.nnz) {
    // Few row indices against a wide union: gallop through the union.
    size_t i = 0;
    for (size_t j = 0; j < r.nnz && i < u; ++j) {
      i = GallopLowerBound(ui, u, i, r.indices[j]);
      if (i < u && ui[i] == r.indices[j]) hit(i++, j);
    }
    return;
  }
  if (r.nnz > 8 * u) {
    // Wide row against a narrow union: gallop through the row.
    size_t j = 0;
    for (size_t i = 0; i < u && j < r.nnz; ++i) {
      j = GallopLowerBound(r.indices, r.nnz, j, ui[i]);
      if (j < r.nnz && r.indices[j] == ui[i]) hit(i, j++);
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < u && j < r.nnz) {
    if (ui[i] == r.indices[j]) {
      hit(i, j);
      ++i;
      ++j;
    } else if (ui[i] < r.indices[j]) {
      ++i;
    } else {
      ++j;
    }
  }
}

}  // namespace internal

/// out[l] = |q_l - r|^2 for every decoded lane, bit-identical per lane to
/// SquaredEuclidean on the sparse pair. Walks the merged union of the block
/// support and the row support in ascending index order (see the header
/// comment for why the block-widened union preserves bit-exactness).
inline void SparseSquaredEuclideanLanes(const SparseTileScratch& ws,
                                        const VecView& r, double* out) {
  double acc[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t u = ws.indices.size();
  size_t i = 0, j = 0;
  while (i < u && j < r.nnz) {
    uint32_t ui = ws.indices[i], rj = r.indices[j];
    if (ui == rj) {
      double rv = r.values[j];
      const float* q = ws.lanes.data() + i * kTileLanes;
      for (size_t l = 0; l < kTileLanes; ++l) {
        double d = static_cast<double>(q[l]) - rv;
        acc[l] += d * d;
      }
      ++i;
      ++j;
    } else if (ui < rj) {
      const float* q = ws.lanes.data() + i * kTileLanes;
      for (size_t l = 0; l < kTileLanes; ++l) {
        double d = static_cast<double>(q[l]);
        acc[l] += d * d;
      }
      ++i;
    } else {
      double rv = r.values[j];
      double t = rv * rv;
      for (size_t l = 0; l < kTileLanes; ++l) acc[l] += t;
      ++j;
    }
  }
  for (; i < u; ++i) {
    const float* q = ws.lanes.data() + i * kTileLanes;
    for (size_t l = 0; l < kTileLanes; ++l) {
      double d = static_cast<double>(q[l]);
      acc[l] += d * d;
    }
  }
  for (; j < r.nnz; ++j) {
    double rv = r.values[j];
    double t = rv * rv;
    for (size_t l = 0; l < kTileLanes; ++l) acc[l] += t;
  }
  for (size_t l = 0; l < kTileLanes; ++l) out[l] = acc[l];
}

/// out[l] = |q_l - r|_1 per decoded lane, bit-identical to L1 on the sparse
/// pair (same union-walk argument as SparseSquaredEuclideanLanes).
inline void SparseL1Lanes(const SparseTileScratch& ws, const VecView& r,
                          double* out) {
  double acc[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t u = ws.indices.size();
  size_t i = 0, j = 0;
  while (i < u && j < r.nnz) {
    uint32_t ui = ws.indices[i], rj = r.indices[j];
    if (ui == rj) {
      double rv = r.values[j];
      const float* q = ws.lanes.data() + i * kTileLanes;
      for (size_t l = 0; l < kTileLanes; ++l) {
        acc[l] += std::abs(static_cast<double>(q[l]) - rv);
      }
      ++i;
      ++j;
    } else if (ui < rj) {
      const float* q = ws.lanes.data() + i * kTileLanes;
      for (size_t l = 0; l < kTileLanes; ++l) {
        acc[l] += std::abs(static_cast<double>(q[l]));
      }
      ++i;
    } else {
      double t = std::abs(static_cast<double>(r.values[j]));
      for (size_t l = 0; l < kTileLanes; ++l) acc[l] += t;
      ++j;
    }
  }
  for (; i < u; ++i) {
    const float* q = ws.lanes.data() + i * kTileLanes;
    for (size_t l = 0; l < kTileLanes; ++l) {
      acc[l] += std::abs(static_cast<double>(q[l]));
    }
  }
  for (; j < r.nnz; ++j) {
    double t = std::abs(static_cast<double>(r.values[j]));
    for (size_t l = 0; l < kTileLanes; ++l) acc[l] += t;
  }
  for (size_t l = 0; l < kTileLanes; ++l) out[l] = acc[l];
}

/// out[l] = <q_l, r> per decoded lane. Streams exactly the common indices in
/// ascending order — the scalar sparse-merge dot's term sequence. Lanes that
/// lack a probed index accumulate 0.0f * value, a signed zero that can only
/// differ from the scalar accumulator when the entire dot is a signed zero,
/// which the angular-cosine postprocess maps to the identical distance.
inline void SparseDotLanes(const SparseTileScratch& ws, const VecView& r,
                           double* out) {
  double acc[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  internal::ForEachIntersection(ws, r, [&](size_t p, size_t j) {
    double rv = r.values[j];
    const float* q = ws.lanes.data() + p * kTileLanes;
    for (size_t l = 0; l < kTileLanes; ++l) {
      acc[l] += static_cast<double>(q[l]) * rv;
    }
  });
  for (size_t l = 0; l < kTileLanes; ++l) out[l] = acc[l];
}

/// fp32 screening variant of SparseSquaredEuclideanLanes: same union walk,
/// float accumulators. No bit-exactness promise — covered by the certified
/// error bound of Metric::ScreenErrorBound (the walk order is fixed, so
/// screened values are still deterministic at any thread count).
inline void SparseSquaredEuclideanLanesF32(const SparseTileScratch& ws,
                                           const VecView& r, float* out) {
  float acc[kTileLanes] = {};
  size_t u = ws.indices.size();
  size_t i = 0, j = 0;
  while (i < u && j < r.nnz) {
    uint32_t ui = ws.indices[i], rj = r.indices[j];
    if (ui == rj) {
      float rv = r.values[j];
      const float* q = ws.lanes.data() + i * kTileLanes;
      for (size_t l = 0; l < kTileLanes; ++l) {
        float d = q[l] - rv;
        acc[l] += d * d;
      }
      ++i;
      ++j;
    } else if (ui < rj) {
      const float* q = ws.lanes.data() + i * kTileLanes;
      for (size_t l = 0; l < kTileLanes; ++l) acc[l] += q[l] * q[l];
      ++i;
    } else {
      float rv = r.values[j];
      float t = rv * rv;
      for (size_t l = 0; l < kTileLanes; ++l) acc[l] += t;
      ++j;
    }
  }
  for (; i < u; ++i) {
    const float* q = ws.lanes.data() + i * kTileLanes;
    for (size_t l = 0; l < kTileLanes; ++l) acc[l] += q[l] * q[l];
  }
  for (; j < r.nnz; ++j) {
    float rv = r.values[j];
    float t = rv * rv;
    for (size_t l = 0; l < kTileLanes; ++l) acc[l] += t;
  }
  for (size_t l = 0; l < kTileLanes; ++l) out[l] = acc[l];
}

/// fp32 screening variant of SparseL1Lanes.
inline void SparseL1LanesF32(const SparseTileScratch& ws, const VecView& r,
                             float* out) {
  float acc[kTileLanes] = {};
  size_t u = ws.indices.size();
  size_t i = 0, j = 0;
  while (i < u && j < r.nnz) {
    uint32_t ui = ws.indices[i], rj = r.indices[j];
    if (ui == rj) {
      float rv = r.values[j];
      const float* q = ws.lanes.data() + i * kTileLanes;
      for (size_t l = 0; l < kTileLanes; ++l) acc[l] += std::abs(q[l] - rv);
      ++i;
      ++j;
    } else if (ui < rj) {
      const float* q = ws.lanes.data() + i * kTileLanes;
      for (size_t l = 0; l < kTileLanes; ++l) acc[l] += std::abs(q[l]);
      ++i;
    } else {
      float t = std::abs(r.values[j]);
      for (size_t l = 0; l < kTileLanes; ++l) acc[l] += t;
      ++j;
    }
  }
  for (; i < u; ++i) {
    const float* q = ws.lanes.data() + i * kTileLanes;
    for (size_t l = 0; l < kTileLanes; ++l) acc[l] += std::abs(q[l]);
  }
  for (; j < r.nnz; ++j) {
    float t = std::abs(r.values[j]);
    for (size_t l = 0; l < kTileLanes; ++l) acc[l] += t;
  }
  for (size_t l = 0; l < kTileLanes; ++l) out[l] = acc[l];
}

/// fp32 screening variant of SparseDotLanes (same intersection stream).
inline void SparseDotLanesF32(const SparseTileScratch& ws, const VecView& r,
                              float* out) {
  float acc[kTileLanes] = {};
  internal::ForEachIntersection(ws, r, [&](size_t p, size_t j) {
    float rv = r.values[j];
    const float* q = ws.lanes.data() + p * kTileLanes;
    for (size_t l = 0; l < kTileLanes; ++l) acc[l] += q[l] * rv;
  });
  for (size_t l = 0; l < kTileLanes; ++l) out[l] = acc[l];
}

/// Fused cosine-space screen over one decoded sparse query block: computes
/// the fp32 lane dots <q_l, r> (exactly SparseDotLanesF32's values, left in
/// dots[] for the rescue path) and returns the mask of lanes that need an
/// exact rescue. Lane l is certified-skippable — its exact angular distance
/// provably exceeds the row's current one — iff
///   dots[l] >= -FLT_MAX   (a negatively-overflowed dot certifies nothing)
///   && (double)dots[l] < scaled_thr * lane_norms[l],
/// where the caller folds cos(current distance), the certified cosine-space
/// error band, the safety slack, and the row norm into
///   scaled_thr = (cos(cur) - slack - e_c) * row_norm
/// (-inf for zero-norm rows, whose distances are convention values the
/// screen does not model). The per-lane skip test is thus one multiply and
/// one compare — no arccos anywhere on the skip path, which is what lets
/// sparse cosine corpora screen profitably (the unfused angular screen paid
/// a polynomial arccos per pair even when every lane skipped). NaN and +inf
/// dots fail the comparison and rescue; zero-norm lanes always rescue.
inline uint32_t SparseCosineScreenLanes(const SparseTileScratch& ws,
                                        const VecView& r, double scaled_thr,
                                        const double* lane_norms,
                                        float* dots) {
  SparseDotLanesF32(ws, r, dots);
  uint32_t mask = 0;
  for (size_t l = 0; l < ws.nq; ++l) {
    float s = dots[l];
    double ln = lane_norms[l];
    bool skip = ln > 0.0 && s >= -std::numeric_limits<float>::max() &&
                static_cast<double>(s) < scaled_thr * ln;
    if (!skip) mask |= 1u << l;
  }
  return mask;
}

/// out[l] = SupportJaccard(q_l, r) per decoded lane, exactly: intersections
/// are counted off the presence bitmask (stored zeros count as support, as
/// in the scalar sparse merge) and the final division uses the identical
/// integer operands.
inline void SparseJaccardLanes(const SparseTileScratch& ws, const VecView& r,
                               double* out) {
  uint32_t inter[kTileLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  internal::ForEachIntersection(ws, r, [&](size_t p, size_t) {
    uint8_t m = ws.mask[p];
    for (size_t l = 0; l < kTileLanes; ++l) {
      inter[l] += (m >> l) & 1u;
    }
  });
  for (size_t l = 0; l < ws.nq; ++l) {
    size_t uni = ws.lane_nnz[l] + r.nnz - inter[l];
    out[l] = uni == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(inter[l]) /
                             static_cast<double>(uni);
  }
}

}  // namespace kernels
}  // namespace diverse

#endif  // DIVERSE_CORE_SPARSE_KERNELS_H_
