// Metric index: a cover-style ball tree over a Dataset, and the lazy-greedy
// traversals that use it as a THIRD screening tier above the certified fp32
// screen (core/screen.h).
//
// The flat screened sweeps still touch every row per relax step: the fp32
// pass is cheap, but it is O(n) work k times over. For datasets with low
// doubling dimension (clustered corpora — the regime the paper's coreset
// constructions target), triangle-inequality bounds on whole subtrees can
// retire most of those rows without even the fp32 pass:
//
//   * Build() reorders the rows once (a leaf permutation) so every tree node
//     owns a CONTIGUOUS leaf-row range; surviving ranges are swept by the
//     existing screened kernels (ScreenedRelaxRange) on contiguous slabs.
//   * Each node stores a center row and a covering radius. For a center c
//     with computed distance dc to the node center, every row r in the node
//     satisfies  d(c, r) >= dc - radius  and  d(c, r) <= dc + radius  — up
//     to the rounding of the computed values, which Metric::IndexSlack
//     certifies and the 4x Inflate/Deflate band absorbs (derivation in the
//     README). A subtree whose deflated lower bound exceeds an upper bound
//     on what the rows' current distance-to-selected already achieves can
//     be pruned: no row in it can be improved by c, and (strictly) no tie
//     is possible, so assignments are untouched too.
//   * LazyGreedyGmm keeps STALE per-node upper bounds on the distance to
//     the chosen set and revalidates them against only the newest center —
//     Gonzalez's k sequential sweeps become k traversals of a shrinking
//     frontier. Pending (stashed) center ranks are replayed lazily when a
//     subtree is next visited, and a final Flush materializes every row.
//
// Everything here is BIT-IDENTICAL to the flat screened path (which is
// itself bit-identical to the exact double path): node bounds are inflated
// by the certified slack before any prune, every surviving pair goes through
// the same per-pair screen-then-rescue decisions as the flat sweep
// (restricted to fewer rows, so indexed exact-evaluation counts never exceed
// the flat screened baseline), and every argmax / assignment tie breaks on
// ORIGINAL row indices exactly like the flat scans. The index only moves
// cost. Traversals are single-threaded and deterministic; concurrent
// traversals over one shared (immutable) tree are safe.
//
// Indexing is gated: metrics must opt in (SupportsMetricIndexing — the
// triangle inequality is load-bearing; dot-product-style similarities stay
// flat), a global toggle mirrors the screening toggle, and a deterministic
// profitability probe estimates the doubling dimension of a sample before
// committing to a build (uniform high-dimensional data gates off).

#ifndef DIVERSE_CORE_COVER_TREE_H_
#define DIVERSE_CORE_COVER_TREE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/gmm.h"
#include "core/metric.h"

namespace diverse {

/// Process-global indexing toggle, default on. Results are bit-identical
/// either way (the mirror of SetScreeningEnabled for the metric-index tier);
/// the toggle exists for A/B benchmarking and as an escape hatch
/// (SolveOptions::indexing, --indexing=0).
bool IndexingEnabled();
void SetIndexingEnabled(bool enabled);

/// RAII override of the global indexing toggle (used by Solve and tests).
class ScopedIndexing {
 public:
  explicit ScopedIndexing(bool enabled);
  ScopedIndexing(const ScopedIndexing&) = delete;
  ScopedIndexing& operator=(const ScopedIndexing&) = delete;
  ~ScopedIndexing();

 private:
  bool prev_;
};

/// True when indexed traversals may run for `metric` (toggle on and the
/// metric opted into triangle-inequality pruning).
bool UseIndexing(const Metric& metric);

/// Deterministic profitability gate for the index. All fields are read-only
/// dataset/problem statistics in, one bool out — no scheduling dependence.
struct IndexGate {
  /// Structural minimums: below either, a build cannot amortize.
  size_t min_rows = 4096;
  size_t min_k = 64;
  /// Probe shape: a stride sample of min(probe_sample, n / 8) rows runs a
  /// farthest-first loop for min(probe_centers, k / 4) centers; the decay
  /// of the selection distances estimates the doubling dimension
  /// (d_hat = log(m - 1) / log(sel[1] / sel[m - 1])).
  size_t probe_sample = 1024;
  size_t probe_centers = 32;
  /// Index on iff the probe's d_hat is at most this.
  double max_probe_dim = 3.0;
  /// One-shot (multi-center relax) structural minimums: building a tree for
  /// a single pass only pays when both sides are large.
  size_t oneshot_min_rows = 65536;
  size_t oneshot_min_centers = 256;
  /// Test override: +1 forces indexing on (skips minimums and probe), -1
  /// forces it off, 0 uses the probe.
  int force = 0;
};

/// The process-global gate (tests swap it with SetIndexGateForTesting).
const IndexGate& GetIndexGate();
void SetIndexGateForTesting(const IndexGate& gate);

/// Deterministic verdict: should GMM(data, k) build and use the index?
/// Runs the stride-sample probe described on IndexGate (a few thousand
/// screened evaluations — O(sqrt) of one flat sweep at the minimums).
bool IndexProfitable(const Dataset& data, const Metric& metric, size_t k);

/// Deterministic verdict for the one-shot multi-center relax (k-center's
/// final assignment passes): `queries` are the centers. Folds the size
/// minimums AND the slack-coverage check — the tree's certified slack is
/// computed from `data`'s statistics, so query rows must be dominated by
/// them (dense queries need dense rows present, sparse support and norm
/// extremes must not exceed the data's own).
bool OneShotIndexProfitable(const Metric& metric, const Dataset& queries,
                            size_t nq, const Dataset& data);

/// Work counters of an indexed traversal. All values are deterministic
/// functions of the inputs (single-threaded traversal, deterministic
/// bounds); pruned_pairs / (pruned_pairs + applied_pairs) is the benchmark
/// pruned_pct.
struct CoverTreeQueryStats {
  uint64_t pruned_pairs = 0;   ///< rows retired by node-level prunes
  uint64_t applied_pairs = 0;  ///< rows swept by the screened leaf kernel
  uint64_t bound_evals = 0;    ///< exact center-to-node-center evaluations
  uint64_t node_visits = 0;    ///< Search/Flush node entries
  uint64_t leaf_opens = 0;     ///< leaf ranges entered
  uint64_t exact_evals = 0;    ///< exact rescues paid inside leaf sweeps
};

/// The ball tree. Immutable after Build; shareable across threads.
class CoverTree {
 public:
  /// One node over the contiguous leaf-row range [begin, end). Children of
  /// node i always have ids > i (the root is id 0), so left == 0 marks a
  /// leaf.
  struct Node {
    size_t begin = 0;
    size_t end = 0;
    size_t left = 0;   ///< child id, 0 = leaf
    size_t right = 0;  ///< child id, 0 = leaf
    size_t center = 0; ///< leaf-order row id of the node's center row
    size_t min_orig = 0;  ///< smallest ORIGINAL row id in the range
    double radius = 0.0;  ///< max computed d(center, row) over the range
  };

  /// Builds the tree: BFS median-bisector splits. Each node's center
  /// distances are INHERITED from its parent's split (left center = the
  /// node's pole A, right center = the parent center), so only the root
  /// pays a center sweep; a node then pays one sweep for its pole A
  /// (farthest row from the center) and partitions rows stably by the
  /// bisector key d(row, A) - d(row, center) against its median — a
  /// deterministic, depth-balanced permutation even on tie-heavy metrics.
  /// Leaves close at <= 256 rows, radius 0 (duplicates), or depth 64.
  /// Costs ~1 evaluation per row per level (build_evals()), through the
  /// batched row kernels, in certified fp32 when the screen bound allows
  /// (results stay bit-identical; see the .cc). Empty data yields an
  /// empty tree.
  static CoverTree Build(const Dataset& data, const Metric& metric);

  size_t size() const { return perm_.size(); }
  bool empty() const { return perm_.empty(); }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// The rows of the source dataset re-materialized in leaf order — the
  /// dataset the leaf sweeps run on (identical row content and aggregate
  /// statistics, so screening bounds and per-pair decisions match the flat
  /// sweep bit for bit). Columnar-only (Dataset::AssignGatherColumnar):
  /// kernels, norms, and stats are available, but the value-typed point()
  /// accessors are not — traversals always address it as the DATA side of
  /// the row kernels, which every metric that opts into indexing overrides.
  const Dataset& leaf_data() const { return leaf_data_; }

  /// perm()[leaf_row] = original row id; inv_perm() is the inverse.
  const std::vector<size_t>& perm() const { return perm_; }
  const std::vector<size_t>& inv_perm() const { return inv_perm_; }

  /// Distance evaluations paid by Build — fp32 sweeps when the certified
  /// screen bound is usable, exact doubles otherwise (reported separately
  /// from query-side counters; benchmarks amortize it over the k
  /// traversals).
  uint64_t build_evals() const { return build_evals_; }

  /// The certified kernel slack (Metric::IndexSlack of the data) and the 4x
  /// band transforms every prune chains through: Inflate(x) >= any true
  /// value whose computed value is <= x; Deflate(x) <= any true value whose
  /// computed value is >= x — with enough margin to chain three computed
  /// distances through one triangle-inequality step (README derivation).
  const ScreenBound& slack() const { return slack_; }
  double Inflate(double x) const {
    return x + 4.0 * (slack_.rel * x + slack_.abs);
  }
  double Deflate(double x) const {
    return x - 4.0 * (slack_.rel * x + slack_.abs);
  }

 private:
  std::vector<Node> nodes_;
  std::vector<size_t> perm_;
  std::vector<size_t> inv_perm_;
  Dataset leaf_data_;
  ScreenBound slack_;
  uint64_t build_evals_ = 0;
};

/// Gonzalez's farthest-first traversal over the index: bit-identical
/// GmmResult to Gmm(data, metric, k, first) — same selected rows, selection
/// distances, assignment, distance_to_selected, and range, byte for byte —
/// with per-step work proportional to the contended frontier instead of n.
/// Requires tree built over `data`, 1 <= k <= n, first < n. `stats`
/// (optional) accumulates the traversal counters.
GmmResult LazyGreedyGmm(const Dataset& data, const CoverTree& tree,
                        const Metric& metric, size_t k, size_t first = 0,
                        CoverTreeQueryStats* stats = nullptr);

/// Indexed drop-in for ScreenedRelaxTilesAndArgFarthest: relaxes
/// dist/assignment (ORIGINAL row order, spanning tree.size() rows) against
/// centers [q_begin, q_begin + nq) of `queries` and returns the argmax row,
/// all bit-identical to the flat sweep. One flush-style traversal carries
/// all nq centers; node bounds start from the incoming dist values. Callers
/// gate with OneShotIndexProfitable first (the slack-coverage check lives
/// there).
size_t IndexedRelaxTilesAndArgFarthest(const Metric& metric,
                                       const Dataset& queries, size_t q_begin,
                                       size_t nq, size_t rank_base,
                                       const CoverTree& tree,
                                       std::span<double> dist,
                                       std::span<size_t> assignment = {},
                                       CoverTreeQueryStats* stats = nullptr);

}  // namespace diverse

#endif  // DIVERSE_CORE_COVER_TREE_H_
