#include "core/tsp.h"

#include <algorithm>
#include <limits>

#include "core/mst.h"
#include "util/check.h"

namespace diverse {

double TourWeight(const DistanceMatrix& d, const std::vector<size_t>& tour) {
  if (tour.size() < 2) return 0.0;
  double w = 0.0;
  for (size_t i = 0; i < tour.size(); ++i) {
    w += d.at(tour[i], tour[(i + 1) % tour.size()]);
  }
  return w;
}

double TspWeightExact(const DistanceMatrix& d) {
  size_t n = d.size();
  DIVERSE_CHECK_LE(n, kTspExactLimit);
  if (n < 2) return 0.0;
  if (n == 2) return 2.0 * d.at(0, 1);

  // Held-Karp over subsets of {1..n-1} with vertex 0 fixed as tour start.
  // dp[mask][j] = min cost of a path starting at 0, visiting exactly the
  // vertices in `mask` (subset of {1..n-1}), and ending at j (j in mask).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  size_t m = n - 1;
  std::vector<double> dp((size_t{1} << m) * m, kInf);
  auto idx = [m](size_t mask, size_t j) { return mask * m + j; };

  for (size_t j = 0; j < m; ++j) {
    dp[idx(size_t{1} << j, j)] = d.at(0, j + 1);
  }
  for (size_t mask = 1; mask < (size_t{1} << m); ++mask) {
    for (size_t j = 0; j < m; ++j) {
      if (!(mask & (size_t{1} << j))) continue;
      double cur = dp[idx(mask, j)];
      if (cur == kInf) continue;
      for (size_t t = 0; t < m; ++t) {
        if (mask & (size_t{1} << t)) continue;
        size_t nmask = mask | (size_t{1} << t);
        double cand = cur + d.at(j + 1, t + 1);
        if (cand < dp[idx(nmask, t)]) dp[idx(nmask, t)] = cand;
      }
    }
  }
  size_t full = (size_t{1} << m) - 1;
  double best = kInf;
  for (size_t j = 0; j < m; ++j) {
    best = std::min(best, dp[idx(full, j)] + d.at(j + 1, 0));
  }
  return best;
}

namespace {

// Applies 2-opt moves until no move shortens the tour. Each move reverses a
// tour segment; convergence is guaranteed because the tour length strictly
// decreases. O(n^2) per sweep.
void TwoOptImprove(const DistanceMatrix& d, std::vector<size_t>& tour) {
  size_t n = tour.size();
  if (n < 4) return;
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i + 1 < n; ++i) {
      for (size_t j = i + 2; j < n; ++j) {
        // Edges (tour[i], tour[i+1]) and (tour[j], tour[j+1 mod n]).
        size_t a = tour[i], b = tour[i + 1];
        size_t c = tour[j], e = tour[(j + 1) % n];
        if (a == e) continue;  // adjacent edges share a vertex
        double delta = d.at(a, c) + d.at(b, e) - d.at(a, b) - d.at(c, e);
        if (delta < -1e-12) {
          std::reverse(tour.begin() + static_cast<ptrdiff_t>(i) + 1,
                       tour.begin() + static_cast<ptrdiff_t>(j) + 1);
          improved = true;
        }
      }
    }
  }
}

}  // namespace

std::vector<size_t> TspTourHeuristic(const DistanceMatrix& d) {
  size_t n = d.size();
  std::vector<size_t> tour;
  if (n == 0) return tour;
  tour.reserve(n);
  if (n <= 3) {
    for (size_t i = 0; i < n; ++i) tour.push_back(i);
    return tour;
  }

  // Double-tree: a preorder (DFS) walk of the MST visits every vertex once;
  // shortcutting repeated vertices yields a tour of weight <= 2 * w(MST)
  // <= 2 * w(TSP) on metric inputs.
  auto edges = MstEdges(d);
  std::vector<std::vector<size_t>> adj(n);
  for (const auto& [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(n, false);
  std::vector<size_t> stack = {0};
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    if (seen[v]) continue;
    seen[v] = true;
    tour.push_back(v);
    // Push in reverse so nearer children (as listed) are visited first.
    for (auto it = adj[v].rbegin(); it != adj[v].rend(); ++it) {
      if (!seen[*it]) stack.push_back(*it);
    }
  }
  DIVERSE_CHECK_EQ(tour.size(), n);
  TwoOptImprove(d, tour);
  return tour;
}

double TspWeightHeuristic(const DistanceMatrix& d) {
  return TourWeight(d, TspTourHeuristic(d));
}

double TspWeightAuto(const DistanceMatrix& d) {
  if (d.size() <= kTspExactLimit) return TspWeightExact(d);
  return TspWeightHeuristic(d);
}

}  // namespace diverse
