#include "core/metric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/dataset.h"
#include "core/sparse_kernels.h"
#include "core/vector_kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace diverse {

namespace {

// Rows per parallel range: aim for a fixed amount of coordinate work per
// range so dispatch overhead stays negligible at any dimension, with a floor
// that keeps ranges coarse for very high-dimensional rows. Range boundaries
// depend only on (n, grain), never on scheduling, so per-range reductions
// are deterministic at any thread count.
constexpr size_t kGrainOps = 16384;
constexpr size_t kMinGrainRows = 256;

size_t GrainRows(const Dataset& data) {
  size_t dim = std::max<size_t>(data.dim(), 1);
  return std::max(kMinGrainRows, kGrainOps / dim);
}

// out[i] = row_distance(data.row(begin + i)) for all i, in parallel.
template <typename RowFn>
void BatchMap(const Dataset& data, size_t begin, std::span<double> out,
              const RowFn& row_distance) {
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  GlobalThreadPool().ParallelForRanges(
      out.size(), GrainRows(data), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          out[i] = row_distance(data.row(begin + i));
        }
      });
}

// The fused relax-and-argmax sweep shared by all metrics. Each range
// records its first maximum; ranges combine in ascending order with a
// strict comparison, which reproduces the scalar loop's first-max-wins
// semantics exactly.
template <typename RowFn>
size_t BatchRelaxArgFarthest(const Dataset& data, std::span<double> dist,
                             std::span<size_t> assignment, size_t center_rank,
                             const RowFn& row_distance) {
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  // SIZE_MAX marks ranges a single inline call subsumed (the pool runs the
  // whole sweep as one range when the work is small or it has one worker).
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(
      n, grain, [&](size_t lo, size_t hi) {
        size_t local_best = lo;
        double local_val = -std::numeric_limits<double>::infinity();
        for (size_t i = lo; i < hi; ++i) {
          double d = row_distance(data.row(i));
          if (d < dist[i]) {
            dist[i] = d;
            if (!assignment.empty()) assignment[i] = center_rank;
          }
          if (dist[i] > local_val) {
            local_val = dist[i];
            local_best = i;
          }
        }
        range_best[lo / grain] = local_best;
      });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

kernels::VecView QueryView(const Point& query, const Dataset& data) {
  if (!data.empty()) DIVERSE_CHECK_EQ(query.dim(), data.dim());
  return query.View();
}

// --- Blocked many-vs-many tiles ------------------------------------------

void CheckTileArgs(const Dataset& queries, size_t q_begin, size_t nq,
                   const Dataset& data, size_t r_begin, size_t nr,
                   size_t out_stride) {
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  DIVERSE_CHECK_LE(r_begin + nr, data.size());
  DIVERSE_CHECK_GE(out_stride, nr);
  if (nq > 0 && nr > 0) DIVERSE_CHECK_EQ(queries.dim(), data.dim());
}

// --- Sparse tile strategy selection ---------------------------------------
// The sparse engine decodes a block of sparse query lanes once
// (core/sparse_kernels.h) and streams every sparse data row a single time
// against all lanes. Whether that beats the per-pair scalar merge depends on
// the data layout, not the operation, so the decisions below read only the
// block content and the Dataset's sparse-row statistics — deterministic
// inputs, so tiled results never depend on scheduling. Either choice is
// bit-identical to the scalar merge; the strategy only moves cost.

// Minimum sparse data rows per tile for the block decode to amortize.
constexpr size_t kSparseEngineMinRows = 4;
// Largest ambient dimension for the direct-index slot table (the table is
// cleared per query block; beyond this the O(dim) clear and its cache
// footprint outweigh the O(1) probes).
constexpr size_t kDirectIndexMaxDim = size_t{1} << 14;

// Dimension to build the direct-index mirror for, or 0 for merge-walk
// probing. Only intersection kernels (dot, Jaccard) probe; union-walk
// kernels (Euclidean, L1) stream both index lists and never look up.
size_t DirectIndexDim(const Dataset& data, size_t nr) {
  size_t dim = data.dim();
  if (dim == 0 || dim > kDirectIndexMaxDim) return 0;
  // Amortize the per-block O(dim) clear over the rows that will probe it.
  if (dim > 64 * nr) return 0;
  return dim;
}

// Union-walk profitability for Euclidean/L1 sparse blocks. The engine
// streams (U + nnz_r) merged positions per row with a branch-free
// kTileLanes-wide accumulate each; the per-pair merge walks
// (total_lane_nnz + sparse_lanes * nnz_r) positions one lane at a time with
// data-dependent branching. Measured on the BM_SparseTileEuclidean*
// workloads, one branch-free 8-lane position costs about 0.7x a branchy
// single-lane merge position (the merge's unpredictable three-way branch
// dominates, not the arithmetic), giving the 8x admit factor below. Blocks
// whose lanes share support (text corpora — Zipf vocabularies overlap
// heavily) pass with a wide margin; only blocks whose widened union would
// do nearly an order of magnitude more positions than the per-pair merges
// fall back (e.g. a lone sparse lane among dense ones against short rows).
bool UnionWalkProfitable(size_t union_size, size_t total_lane_nnz,
                         size_t sparse_lanes, double avg_row_nnz,
                         double col_hits_per_row) {
  double engine = static_cast<double>(kernels::kTileLanes) *
                  (static_cast<double>(union_size) + avg_row_nnz);
  double per_pair = static_cast<double>(total_lane_nnz) +
                    static_cast<double>(sparse_lanes) * avg_row_nnz;
  // When the transposed column mirror is available, credit the engine for
  // expected index matches (matched positions advance both cursors at
  // once).
  engine -= static_cast<double>(kernels::kTileLanes) * col_hits_per_row;
  return engine <= 8.0 * per_pair;
}

// Expected per-row index matches between the decoded block union and the
// sparse data rows, from the optional transposed column-occupancy mirror
// (0.0 when the mirror is not built — the estimate is advisory only).
double ExpectedColumnHits(const Dataset& data,
                          const kernels::SparseTileScratch& ws) {
  const std::vector<uint32_t>* occ = data.column_occupancy();
  if (occ == nullptr || data.sparse_stats().rows == 0) return 0.0;
  uint64_t hits = 0;
  for (uint32_t idx : ws.indices) hits += (*occ)[idx];
  return static_cast<double>(hits) /
         static_cast<double>(data.sparse_stats().rows);
}

// Shared tile driver for the four concrete metrics. Queries are processed in
// lane blocks of kernels::kTileLanes, each split by representation:
//   * dense lanes are transposed once (PackQueryLanes) and every dense data
//     row is streamed through the multi-query lane kernel (`lanes`,
//     bit-identical per lane to the scalar kernel) — only when
//     kHasDenseLanes (Jaccard has no dense lane kernel);
//   * sparse lanes are decoded once into the per-thread SparseTileScratch
//     and every sparse data row is streamed through the sparse lane kernel
//     (`sparse_lanes`, bit-identical per lane to the scalar merge);
//   * mixed pairs (dense lane x sparse row and vice versa) always run the
//     exact per-pair scalar kernel (`pair`), which is already O(nnz).
// Each data row is fetched a single time and handed to every group.
// `finish_lanes` turns a block of lane accumulators into the metric's
// distances in place (batched SQRTPD for Euclidean, the angular-cosine
// postprocess, nothing for L1/Jaccard); it runs for both the dense and the
// sparse group, over that group's compacted views.
// `sparse_union_walk` marks the union-walk kernels (Euclidean/L1), which
// are gated by UnionWalkProfitable and never build the direct index.
template <bool kHasDenseLanes, typename PairFn, typename LaneFn,
          typename SparseLanesFn, typename FinishLanesFn>
void BatchTile(const Dataset& queries, size_t q_begin, size_t nq,
               const Dataset& data, size_t r_begin, size_t nr, double* out,
               size_t out_stride, const PairFn& pair, const LaneFn& lanes,
               const SparseLanesFn& sparse_lanes, bool sparse_union_walk,
               const FinishLanesFn& finish_lanes) {
  CheckTileArgs(queries, q_begin, nq, data, r_begin, nr, out_stride);
  // Empty tiles are legal no-ops; bail before packing query lanes (the
  // lane pack walks data.dim() coordinates of each query, which is only
  // validated against the query dimension for nonempty tiles).
  if (nq == 0 || nr == 0) return;
  size_t dim = data.dim();
  thread_local std::vector<float> qt;  // transposed dense lane block
  thread_local kernels::SparseTileScratch sparse_ws;
  kernels::VecView dv[kernels::kTileLanes];  // compacted dense lane views
  kernels::VecView sv[kernels::kTileLanes];  // compacted sparse lane views
  size_t dense_id[kernels::kTileLanes];
  size_t sparse_id[kernels::kTileLanes];
  double lane_out[kernels::kTileLanes];
  const Dataset::SparseStats& stats = data.sparse_stats();
  for (size_t q0 = 0; q0 < nq; q0 += kernels::kTileLanes) {
    size_t qn = std::min(kernels::kTileLanes, nq - q0);
    size_t dn = 0, sn = 0;
    for (size_t lane = 0; lane < qn; ++lane) {
      kernels::VecView v = queries.row(q_begin + q0 + lane);
      if (v.is_sparse()) {
        sv[sn] = v;
        sparse_id[sn++] = lane;
      } else {
        dv[dn] = v;
        dense_id[dn++] = lane;
      }
    }
    bool dense_block = kHasDenseLanes && dim > 0 && dn > 0;
    if (dense_block) {
      qt.resize(dim * kernels::kTileLanes);
      kernels::PackQueryLanes(dv, dn, dim, qt.data());
    }
    bool sparse_block =
        sn > 0 && stats.rows > 0 && nr >= kSparseEngineMinRows;
    if (sparse_block) {
      size_t direct_dim =
          sparse_union_walk ? 0 : DirectIndexDim(data, nr);
      kernels::PackSparseQueryLanes(sv, sn, direct_dim, sparse_ws);
      if (sparse_union_walk &&
          !UnionWalkProfitable(sparse_ws.indices.size(),
                               sparse_ws.total_nnz, sn, stats.AvgNnz(),
                               ExpectedColumnHits(data, sparse_ws))) {
        sparse_block = false;
      }
    }
    for (size_t r = 0; r < nr; ++r) {
      kernels::VecView row = data.row(r_begin + r);
      if (!row.is_sparse()) {
        if (dense_block) {
          lanes(qt.data(), row.values, dim, lane_out);
          finish_lanes(lane_out, dv, row, dn);
          for (size_t i = 0; i < dn; ++i) {
            out[(q0 + dense_id[i]) * out_stride + r] = lane_out[i];
          }
        } else {
          for (size_t i = 0; i < dn; ++i) {
            out[(q0 + dense_id[i]) * out_stride + r] = pair(dv[i], row);
          }
        }
        for (size_t i = 0; i < sn; ++i) {
          out[(q0 + sparse_id[i]) * out_stride + r] = pair(sv[i], row);
        }
      } else {
        for (size_t i = 0; i < dn; ++i) {
          out[(q0 + dense_id[i]) * out_stride + r] = pair(dv[i], row);
        }
        if (sparse_block) {
          sparse_lanes(sparse_ws, row, lane_out);
          finish_lanes(lane_out, sv, row, sn);
          for (size_t i = 0; i < sn; ++i) {
            out[(q0 + sparse_id[i]) * out_stride + r] = lane_out[i];
          }
        } else {
          for (size_t i = 0; i < sn; ++i) {
            out[(q0 + sparse_id[i]) * out_stride + r] = pair(sv[i], row);
          }
        }
      }
    }
  }
}

}  // namespace

void Metric::DistanceToMany(const Point& query, const Dataset& data,
                            size_t begin, std::span<double> out) const {
  // Scalar fallback for metrics that do not provide a columnar kernel.
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = Distance(query, data.point(begin + i));
  }
}

void Metric::DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                          const Dataset& data, size_t r_begin, size_t nr,
                          double* out, size_t out_stride) const {
  // Scalar fallback for metrics that do not provide a columnar kernel.
  CheckTileArgs(queries, q_begin, nq, data, r_begin, nr, out_stride);
  for (size_t q = 0; q < nq; ++q) {
    for (size_t r = 0; r < nr; ++r) {
      out[q * out_stride + r] =
          Distance(queries.point(q_begin + q), data.point(r_begin + r));
    }
  }
}

size_t RelaxTilesAndArgFarthest(const Metric& metric, const Dataset& queries,
                                size_t q_begin, size_t nq, size_t rank_base,
                                const Dataset& data, std::span<double> dist,
                                std::span<size_t> assignment) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(nq, 1u);
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  // Row block per tile: small enough that a kQChunk x kRowBlock tile stays
  // cache-resident (the relax pass re-reads every tile entry right after it
  // is written), large enough to amortize the per-block query transpose.
  constexpr size_t kRowBlock = 256;
  // Centers per tile: bounds the scratch to kQChunk * kRowBlock doubles
  // (128 KiB); within one DistanceTile call each data row is fetched once
  // for all kQChunk centers.
  constexpr size_t kQChunk = 64;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(n, grain, [&](size_t lo, size_t hi) {
    thread_local std::vector<double> tile;
    size_t local_best = lo;
    double local_val = -std::numeric_limits<double>::infinity();
    for (size_t rb = lo; rb < hi; rb += kRowBlock) {
      size_t rn = std::min(kRowBlock, hi - rb);
      for (size_t qc = 0; qc < nq; qc += kQChunk) {
        size_t qn = std::min(kQChunk, nq - qc);
        tile.resize(qn * rn);
        metric.DistanceTile(queries, q_begin + qc, qn, data, rb, rn,
                            tile.data(), rn);
        // Relax centers in ascending rank order: identical to the
        // sequential one-center-at-a-time relax loop, including ties
        // (strictly smaller wins, earliest rank kept). Center-major order
        // streams the tile sequentially while the block's dist (and
        // assignment) slices stay cache-resident.
        for (size_t q = 0; q < qn; ++q) {
          const double* tile_row = tile.data() + q * rn;
          if (assignment.empty()) {
            for (size_t i = 0; i < rn; ++i) {
              if (tile_row[i] < dist[rb + i]) dist[rb + i] = tile_row[i];
            }
          } else {
            size_t rank = rank_base + qc + q;
            for (size_t i = 0; i < rn; ++i) {
              if (tile_row[i] < dist[rb + i]) {
                dist[rb + i] = tile_row[i];
                assignment[rb + i] = rank;
              }
            }
          }
        }
      }
      for (size_t i = rb; i < rb + rn; ++i) {
        if (dist[i] > local_val) {
          local_val = dist[i];
          local_best = i;
        }
      }
    }
    range_best[lo / grain] = local_best;
  });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

size_t Metric::RelaxAndArgFarthest(const Point& query, const Dataset& data,
                                   std::span<double> dist,
                                   std::span<size_t> assignment,
                                   size_t center_rank) const {
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;
  size_t best = 0;
  double best_val = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    double d = Distance(query, data.point(i));
    if (d < dist[i]) {
      dist[i] = d;
      if (!assignment.empty()) assignment[i] = center_rank;
    }
    if (dist[i] > best_val) {
      best_val = dist[i];
      best = i;
    }
  }
  return best;
}

double EuclideanMetric::Distance(const Point& a, const Point& b) const {
  return std::sqrt(a.SquaredEuclideanDistanceTo(b));
}

void EuclideanMetric::DistanceToMany(const Point& query, const Dataset& data,
                                     size_t begin,
                                     std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::Euclidean(row, q);
  });
}

size_t EuclideanMetric::RelaxAndArgFarthest(const Point& query,
                                            const Dataset& data,
                                            std::span<double> dist,
                                            std::span<size_t> assignment,
                                            size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::Euclidean(row, q);
                               });
}

void EuclideanMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                   size_t nq, const Dataset& data,
                                   size_t r_begin, size_t nr, double* out,
                                   size_t out_stride) const {
  BatchTile<true>(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::Euclidean(row, q);
      },
      kernels::SquaredEuclideanLanes, kernels::SparseSquaredEuclideanLanes,
      /*sparse_union_walk=*/true,
      [](double* vals, const kernels::VecView*, const kernels::VecView&,
         size_t qn) { kernels::SqrtLanes(vals, qn); });
}

double ManhattanMetric::Distance(const Point& a, const Point& b) const {
  return a.L1DistanceTo(b);
}

void ManhattanMetric::DistanceToMany(const Point& query, const Dataset& data,
                                     size_t begin,
                                     std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::L1(row, q);
  });
}

size_t ManhattanMetric::RelaxAndArgFarthest(const Point& query,
                                            const Dataset& data,
                                            std::span<double> dist,
                                            std::span<size_t> assignment,
                                            size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(
      data, dist, assignment, center_rank,
      [&q](const kernels::VecView& row) { return kernels::L1(row, q); });
}

void ManhattanMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                   size_t nq, const Dataset& data,
                                   size_t r_begin, size_t nr, double* out,
                                   size_t out_stride) const {
  BatchTile<true>(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::L1(row, q);
      },
      kernels::L1Lanes, kernels::SparseL1Lanes, /*sparse_union_walk=*/true,
      [](double*, const kernels::VecView*, const kernels::VecView&, size_t) {
      });
}

double CosineMetric::Distance(const Point& a, const Point& b) const {
  DIVERSE_CHECK_EQ(a.dim(), b.dim());
  return kernels::AngularCosine(a.View(), b.View());
}

void CosineMetric::DistanceToMany(const Point& query, const Dataset& data,
                                  size_t begin, std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::AngularCosine(row, q);
  });
}

size_t CosineMetric::RelaxAndArgFarthest(const Point& query,
                                         const Dataset& data,
                                         std::span<double> dist,
                                         std::span<size_t> assignment,
                                         size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::AngularCosine(row, q);
                               });
}

void CosineMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                size_t nq, const Dataset& data, size_t r_begin,
                                size_t nr, double* out,
                                size_t out_stride) const {
  BatchTile<true>(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::AngularCosine(row, q);
      },
      kernels::DotLanes, kernels::SparseDotLanes,
      /*sparse_union_walk=*/false,
      // Same postprocess as kernels::AngularCosine, with the lane-computed
      // dot products: identical zero-norm conventions, product, clamp, acos.
      [](double* vals, const kernels::VecView* qv, const kernels::VecView& row,
         size_t qn) {
        double na = row.norm;
        for (size_t lane = 0; lane < qn; ++lane) {
          double nb = qv[lane].norm;
          if (na == 0.0 && nb == 0.0) {
            vals[lane] = 0.0;
          } else if (na == 0.0 || nb == 0.0) {
            vals[lane] = M_PI / 2.0;
          } else {
            double c = vals[lane] / (na * nb);
            c = c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
            vals[lane] = std::acos(c);
          }
        }
      });
}

double JaccardMetric::Distance(const Point& a, const Point& b) const {
  return a.SupportJaccardDistanceTo(b);
}

void JaccardMetric::DistanceToMany(const Point& query, const Dataset& data,
                                   size_t begin, std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::SupportJaccard(row, q);
  });
}

size_t JaccardMetric::RelaxAndArgFarthest(const Point& query,
                                          const Dataset& data,
                                          std::span<double> dist,
                                          std::span<size_t> assignment,
                                          size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::SupportJaccard(row, q);
                               });
}

void JaccardMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                 size_t nq, const Dataset& data,
                                 size_t r_begin, size_t nr, double* out,
                                 size_t out_stride) const {
  // No dense lane kernel: support counting over dense rows is integer-exact
  // in any order and the devirtualized per-pair loop is already the win.
  // Sparse blocks, however, go through the decoded presence-bitmask walk —
  // intersections are counted once per block instead of re-merging both
  // index lists for every pair.
  BatchTile<false>(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::SupportJaccard(row, q);
      },
      [](const float*, const float*, size_t, double*) {},
      kernels::SparseJaccardLanes, /*sparse_union_walk=*/false,
      [](double*, const kernels::VecView*, const kernels::VecView&, size_t) {
      });
}

}  // namespace diverse
