#include "core/metric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/dataset.h"
#include "core/vector_kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace diverse {

namespace {

// Rows per parallel range: aim for a fixed amount of coordinate work per
// range so dispatch overhead stays negligible at any dimension, with a floor
// that keeps ranges coarse for very high-dimensional rows. Range boundaries
// depend only on (n, grain), never on scheduling, so per-range reductions
// are deterministic at any thread count.
constexpr size_t kGrainOps = 16384;
constexpr size_t kMinGrainRows = 256;

size_t GrainRows(const Dataset& data) {
  size_t dim = std::max<size_t>(data.dim(), 1);
  return std::max(kMinGrainRows, kGrainOps / dim);
}

// out[i] = row_distance(data.row(begin + i)) for all i, in parallel.
template <typename RowFn>
void BatchMap(const Dataset& data, size_t begin, std::span<double> out,
              const RowFn& row_distance) {
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  GlobalThreadPool().ParallelForRanges(
      out.size(), GrainRows(data), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          out[i] = row_distance(data.row(begin + i));
        }
      });
}

// The fused relax-and-argmax sweep shared by all metrics. Each range
// records its first maximum; ranges combine in ascending order with a
// strict comparison, which reproduces the scalar loop's first-max-wins
// semantics exactly.
template <typename RowFn>
size_t BatchRelaxArgFarthest(const Dataset& data, std::span<double> dist,
                             std::span<size_t> assignment, size_t center_rank,
                             const RowFn& row_distance) {
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  // SIZE_MAX marks ranges a single inline call subsumed (the pool runs the
  // whole sweep as one range when the work is small or it has one worker).
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(
      n, grain, [&](size_t lo, size_t hi) {
        size_t local_best = lo;
        double local_val = -std::numeric_limits<double>::infinity();
        for (size_t i = lo; i < hi; ++i) {
          double d = row_distance(data.row(i));
          if (d < dist[i]) {
            dist[i] = d;
            if (!assignment.empty()) assignment[i] = center_rank;
          }
          if (dist[i] > local_val) {
            local_val = dist[i];
            local_best = i;
          }
        }
        range_best[lo / grain] = local_best;
      });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

kernels::VecView QueryView(const Point& query, const Dataset& data) {
  if (!data.empty()) DIVERSE_CHECK_EQ(query.dim(), data.dim());
  return query.View();
}

// --- Blocked many-vs-many tiles ------------------------------------------

void CheckTileArgs(const Dataset& queries, size_t q_begin, size_t nq,
                   const Dataset& data, size_t r_begin, size_t nr,
                   size_t out_stride) {
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  DIVERSE_CHECK_LE(r_begin + nr, data.size());
  DIVERSE_CHECK_GE(out_stride, nr);
  if (nq > 0 && nr > 0) DIVERSE_CHECK_EQ(queries.dim(), data.dim());
}

// Shared tile driver for the four concrete metrics. Queries are processed in
// lane blocks of kernels::kTileLanes: every all-dense lane block is
// transposed once up front, and each data row is then fetched a single time
// and streamed through the lane kernel of every block (`lanes`,
// bit-identical per lane to the scalar kernel); any sparse row on either
// side falls back to the exact per-pair scalar kernel (`pair`).
// `finish_lanes` turns a block of lane accumulators into the metric's
// distances in place (batched SQRTPD for Euclidean, the angular-cosine
// postprocess, nothing for L1).
template <typename PairFn, typename LaneFn, typename FinishLanesFn>
void BatchTile(const Dataset& queries, size_t q_begin, size_t nq,
               const Dataset& data, size_t r_begin, size_t nr, double* out,
               size_t out_stride, const PairFn& pair, const LaneFn& lanes,
               const FinishLanesFn& finish_lanes) {
  CheckTileArgs(queries, q_begin, nq, data, r_begin, nr, out_stride);
  // Empty tiles are legal no-ops; bail before packing query lanes (the
  // lane pack walks data.dim() coordinates of each query, which is only
  // validated against the query dimension for nonempty tiles).
  if (nq == 0 || nr == 0) return;
  size_t dim = data.dim();
  thread_local std::vector<float> qt;  // transposed lane block
  kernels::VecView qv[kernels::kTileLanes];
  double lane_out[kernels::kTileLanes];
  for (size_t q0 = 0; q0 < nq; q0 += kernels::kTileLanes) {
    size_t qn = std::min(kernels::kTileLanes, nq - q0);
    bool lanes_ok = dim > 0;
    for (size_t lane = 0; lane < qn; ++lane) {
      qv[lane] = queries.row(q_begin + q0 + lane);
      lanes_ok = lanes_ok && !qv[lane].is_sparse();
    }
    if (lanes_ok) {
      qt.resize(dim * kernels::kTileLanes);
      kernels::PackQueryLanes(qv, qn, dim, qt.data());
      for (size_t r = 0; r < nr; ++r) {
        kernels::VecView row = data.row(r_begin + r);
        if (!row.is_sparse()) {
          lanes(qt.data(), row.values, dim, lane_out);
          finish_lanes(lane_out, qv, row, qn);
          for (size_t lane = 0; lane < qn; ++lane) {
            out[(q0 + lane) * out_stride + r] = lane_out[lane];
          }
        } else {
          for (size_t lane = 0; lane < qn; ++lane) {
            out[(q0 + lane) * out_stride + r] = pair(qv[lane], row);
          }
        }
      }
    } else {
      for (size_t lane = 0; lane < qn; ++lane) {
        for (size_t r = 0; r < nr; ++r) {
          out[(q0 + lane) * out_stride + r] =
              pair(qv[lane], data.row(r_begin + r));
        }
      }
    }
  }
}

}  // namespace

void Metric::DistanceToMany(const Point& query, const Dataset& data,
                            size_t begin, std::span<double> out) const {
  // Scalar fallback for metrics that do not provide a columnar kernel.
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = Distance(query, data.point(begin + i));
  }
}

void Metric::DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                          const Dataset& data, size_t r_begin, size_t nr,
                          double* out, size_t out_stride) const {
  // Scalar fallback for metrics that do not provide a columnar kernel.
  CheckTileArgs(queries, q_begin, nq, data, r_begin, nr, out_stride);
  for (size_t q = 0; q < nq; ++q) {
    for (size_t r = 0; r < nr; ++r) {
      out[q * out_stride + r] =
          Distance(queries.point(q_begin + q), data.point(r_begin + r));
    }
  }
}

size_t RelaxTilesAndArgFarthest(const Metric& metric, const Dataset& queries,
                                size_t q_begin, size_t nq, size_t rank_base,
                                const Dataset& data, std::span<double> dist,
                                std::span<size_t> assignment) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(nq, 1u);
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  // Row block per tile: small enough that a kQChunk x kRowBlock tile stays
  // cache-resident (the relax pass re-reads every tile entry right after it
  // is written), large enough to amortize the per-block query transpose.
  constexpr size_t kRowBlock = 256;
  // Centers per tile: bounds the scratch to kQChunk * kRowBlock doubles
  // (128 KiB); within one DistanceTile call each data row is fetched once
  // for all kQChunk centers.
  constexpr size_t kQChunk = 64;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(n, grain, [&](size_t lo, size_t hi) {
    thread_local std::vector<double> tile;
    size_t local_best = lo;
    double local_val = -std::numeric_limits<double>::infinity();
    for (size_t rb = lo; rb < hi; rb += kRowBlock) {
      size_t rn = std::min(kRowBlock, hi - rb);
      for (size_t qc = 0; qc < nq; qc += kQChunk) {
        size_t qn = std::min(kQChunk, nq - qc);
        tile.resize(qn * rn);
        metric.DistanceTile(queries, q_begin + qc, qn, data, rb, rn,
                            tile.data(), rn);
        // Relax centers in ascending rank order: identical to the
        // sequential one-center-at-a-time relax loop, including ties
        // (strictly smaller wins, earliest rank kept). Center-major order
        // streams the tile sequentially while the block's dist (and
        // assignment) slices stay cache-resident.
        for (size_t q = 0; q < qn; ++q) {
          const double* tile_row = tile.data() + q * rn;
          if (assignment.empty()) {
            for (size_t i = 0; i < rn; ++i) {
              if (tile_row[i] < dist[rb + i]) dist[rb + i] = tile_row[i];
            }
          } else {
            size_t rank = rank_base + qc + q;
            for (size_t i = 0; i < rn; ++i) {
              if (tile_row[i] < dist[rb + i]) {
                dist[rb + i] = tile_row[i];
                assignment[rb + i] = rank;
              }
            }
          }
        }
      }
      for (size_t i = rb; i < rb + rn; ++i) {
        if (dist[i] > local_val) {
          local_val = dist[i];
          local_best = i;
        }
      }
    }
    range_best[lo / grain] = local_best;
  });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

size_t Metric::RelaxAndArgFarthest(const Point& query, const Dataset& data,
                                   std::span<double> dist,
                                   std::span<size_t> assignment,
                                   size_t center_rank) const {
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;
  size_t best = 0;
  double best_val = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    double d = Distance(query, data.point(i));
    if (d < dist[i]) {
      dist[i] = d;
      if (!assignment.empty()) assignment[i] = center_rank;
    }
    if (dist[i] > best_val) {
      best_val = dist[i];
      best = i;
    }
  }
  return best;
}

double EuclideanMetric::Distance(const Point& a, const Point& b) const {
  return std::sqrt(a.SquaredEuclideanDistanceTo(b));
}

void EuclideanMetric::DistanceToMany(const Point& query, const Dataset& data,
                                     size_t begin,
                                     std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::Euclidean(row, q);
  });
}

size_t EuclideanMetric::RelaxAndArgFarthest(const Point& query,
                                            const Dataset& data,
                                            std::span<double> dist,
                                            std::span<size_t> assignment,
                                            size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::Euclidean(row, q);
                               });
}

void EuclideanMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                   size_t nq, const Dataset& data,
                                   size_t r_begin, size_t nr, double* out,
                                   size_t out_stride) const {
  BatchTile(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::Euclidean(row, q);
      },
      kernels::SquaredEuclideanLanes,
      [](double* vals, const kernels::VecView*, const kernels::VecView&,
         size_t qn) { kernels::SqrtLanes(vals, qn); });
}

double ManhattanMetric::Distance(const Point& a, const Point& b) const {
  return a.L1DistanceTo(b);
}

void ManhattanMetric::DistanceToMany(const Point& query, const Dataset& data,
                                     size_t begin,
                                     std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::L1(row, q);
  });
}

size_t ManhattanMetric::RelaxAndArgFarthest(const Point& query,
                                            const Dataset& data,
                                            std::span<double> dist,
                                            std::span<size_t> assignment,
                                            size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(
      data, dist, assignment, center_rank,
      [&q](const kernels::VecView& row) { return kernels::L1(row, q); });
}

void ManhattanMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                   size_t nq, const Dataset& data,
                                   size_t r_begin, size_t nr, double* out,
                                   size_t out_stride) const {
  BatchTile(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::L1(row, q);
      },
      kernels::L1Lanes,
      [](double*, const kernels::VecView*, const kernels::VecView&, size_t) {
      });
}

double CosineMetric::Distance(const Point& a, const Point& b) const {
  DIVERSE_CHECK_EQ(a.dim(), b.dim());
  return kernels::AngularCosine(a.View(), b.View());
}

void CosineMetric::DistanceToMany(const Point& query, const Dataset& data,
                                  size_t begin, std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::AngularCosine(row, q);
  });
}

size_t CosineMetric::RelaxAndArgFarthest(const Point& query,
                                         const Dataset& data,
                                         std::span<double> dist,
                                         std::span<size_t> assignment,
                                         size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::AngularCosine(row, q);
                               });
}

void CosineMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                size_t nq, const Dataset& data, size_t r_begin,
                                size_t nr, double* out,
                                size_t out_stride) const {
  BatchTile(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::AngularCosine(row, q);
      },
      kernels::DotLanes,
      // Same postprocess as kernels::AngularCosine, with the lane-computed
      // dot products: identical zero-norm conventions, product, clamp, acos.
      [](double* vals, const kernels::VecView* qv, const kernels::VecView& row,
         size_t qn) {
        double na = row.norm;
        for (size_t lane = 0; lane < qn; ++lane) {
          double nb = qv[lane].norm;
          if (na == 0.0 && nb == 0.0) {
            vals[lane] = 0.0;
          } else if (na == 0.0 || nb == 0.0) {
            vals[lane] = M_PI / 2.0;
          } else {
            double c = vals[lane] / (na * nb);
            c = c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
            vals[lane] = std::acos(c);
          }
        }
      });
}

double JaccardMetric::Distance(const Point& a, const Point& b) const {
  return a.SupportJaccardDistanceTo(b);
}

void JaccardMetric::DistanceToMany(const Point& query, const Dataset& data,
                                   size_t begin, std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::SupportJaccard(row, q);
  });
}

size_t JaccardMetric::RelaxAndArgFarthest(const Point& query,
                                          const Dataset& data,
                                          std::span<double> dist,
                                          std::span<size_t> assignment,
                                          size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::SupportJaccard(row, q);
                               });
}

void JaccardMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                 size_t nq, const Dataset& data,
                                 size_t r_begin, size_t nr, double* out,
                                 size_t out_stride) const {
  // Support counting is integer-exact in any order; the devirtualized
  // per-pair loop over cache-resident blocks is already the win here, so no
  // lane kernel — every pair runs the shared scalar merge.
  CheckTileArgs(queries, q_begin, nq, data, r_begin, nr, out_stride);
  for (size_t q = 0; q < nq; ++q) {
    kernels::VecView qv = queries.row(q_begin + q);
    for (size_t r = 0; r < nr; ++r) {
      out[q * out_stride + r] =
          kernels::SupportJaccard(data.row(r_begin + r), qv);
    }
  }
}

}  // namespace diverse
